/**
 * @file
 * Vector-indirect gather (the chapter 7 two-phase extension) on a
 * sparse-matrix workload: gather the values of one CSR row's column
 * indices from a dense vector — the access pattern of sparse
 * matrix-vector multiplication.
 */

#include <cstdio>
#include <vector>

#include "core/indirect.hh"
#include "core/pva_unit.hh"
#include "sim/random.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pva;

int
main()
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    constexpr WordAddr kIndexBase = 1 << 16; ///< CSR column indices
    constexpr WordAddr kDenseBase = 1 << 18; ///< The dense x vector
    constexpr std::uint32_t kNnz = 256;      ///< Nonzeros in the row

    // A sparse row: 256 strictly increasing random column indices into
    // a 64k dense vector.
    Random rng(7);
    std::vector<WordAddr> cols;
    WordAddr col = 0;
    for (std::uint32_t i = 0; i < kNnz; ++i) {
        col += 1 + rng.below(200);
        cols.push_back(col);
        sys.memory().write(kIndexBase + i, static_cast<Word>(col));
    }
    for (WordAddr c : cols)
        sys.memory().write(kDenseBase + c, static_cast<Word>(c * 13 + 1));

    // Phase 1 loads the indices; phase 2 broadcasts them so each bank
    // controller bit-mask selects and gathers its elements in parallel.
    IndirectRunResult r =
        runIndirectGather(sys, sim, kIndexBase, kNnz, kDenseBase);

    for (std::uint32_t i = 0; i < kNnz; ++i) {
        if (r.data[i] != static_cast<Word>(cols[i] * 13 + 1))
            fatal("gather mismatch at nnz %u", i);
    }

    std::printf("two-phase indirect gather of %u sparse elements:\n",
                kNnz);
    std::printf("  total %llu cycles (%.2f cycles/element), verified\n",
                static_cast<unsigned long long>(r.cycles),
                static_cast<double>(r.cycles) / kNnz);
    return 0;
}
