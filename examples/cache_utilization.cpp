/**
 * @file
 * The chapter 1 motivation, quantified: cache and bus utilization of a
 * strided walk, with and without the PVA.
 *
 * A processor sums every 32nd word of an array through an L2 cache.
 * Path A fills lines straight from the strided addresses: every
 * 128-byte line fetched contributes 4 useful bytes. Path B accesses an
 * Impulse-style dense shadow region; the PVA gathers each shadow line
 * from the strided real addresses, so every fetched word is useful and
 * the cache holds 32x more application data.
 */

#include <cstdio>

#include "cache/l2_cache.hh"
#include "core/pva_unit.hh"
#include "core/shadow.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pva;

namespace
{

constexpr std::uint32_t kStride = 32;
constexpr std::uint32_t kElems = 2048;
constexpr WordAddr kArray = 1 << 18;
constexpr WordAddr kShadow = 1 << 24; // unbacked dense view

} // anonymous namespace

int
main()
{
    // ---- Path A: strided accesses straight through the cache. -------
    PvaUnit mem_a("memA", PvaConfig{});
    Simulation sim_a;
    sim_a.add(&mem_a);
    CacheConfig cache_cfg; // 32 KB: 64 sets x 4 ways x 128 B
    L2Cache cache_a(cache_cfg, mem_a, sim_a);

    for (std::uint32_t i = 0; i < kElems; ++i)
        mem_a.memory().write(kArray + static_cast<WordAddr>(i) * kStride,
                             i);

    std::uint64_t sum_a = 0;
    for (std::uint32_t i = 0; i < kElems; ++i)
        sum_a += cache_a.read(kArray + static_cast<WordAddr>(i) * kStride);
    Cycle cycles_a = sim_a.now();

    // ---- Path B: the same walk through a PVA shadow region. ---------
    PvaUnit mem_b("memB", PvaConfig{});
    ShadowMemorySystem shadow("shadow", mem_b);
    shadow.mapShadow({kShadow, kElems, kArray, kStride});
    Simulation sim_b;
    sim_b.add(&shadow);
    L2Cache cache_b(cache_cfg, shadow, sim_b);

    for (std::uint32_t i = 0; i < kElems; ++i)
        mem_b.memory().write(kArray + static_cast<WordAddr>(i) * kStride,
                             i);

    std::uint64_t sum_b = 0;
    for (std::uint32_t i = 0; i < kElems; ++i)
        sum_b += cache_b.read(kShadow + i);
    Cycle cycles_b = sim_b.now();

    if (sum_a != sum_b)
        fatal("checksum mismatch");

    std::printf("summing %u elements at stride %u through a %llu-KB L2 "
                "cache:\n\n",
                kElems, kStride,
                static_cast<unsigned long long>(
                    cache_cfg.capacityWords() * 4 / 1024));
    std::printf("%-28s %14s %14s\n", "", "strided", "PVA shadow");
    std::printf("%-28s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(cycles_a),
                static_cast<unsigned long long>(cycles_b));
    std::printf("%-28s %14llu %14llu\n", "line fills",
                static_cast<unsigned long long>(cache_a.statMisses.value()),
                static_cast<unsigned long long>(
                    cache_b.statMisses.value()));
    std::printf("%-28s %14llu %14llu\n", "bus words fetched",
                static_cast<unsigned long long>(
                    cache_a.statWordsFetched.value()),
                static_cast<unsigned long long>(
                    cache_b.statWordsFetched.value()));
    std::printf("%-28s %13.1f%% %13.1f%%\n", "bus/cache utilization",
                100.0 * cache_a.busUtilization(),
                100.0 * cache_b.busUtilization());
    std::printf("\nchecksum %llu verified; the shadow path moves %.0fx "
                "fewer words and runs %.1fx faster\n",
                static_cast<unsigned long long>(sum_a),
                static_cast<double>(cache_a.statWordsFetched.value()) /
                    cache_b.statWordsFetched.value(),
                static_cast<double>(cycles_a) / cycles_b);
    return 0;
}
