/**
 * @file
 * Quickstart: build a PVA memory system, scatter a strided vector, then
 * gather it back, printing cycle counts.
 *
 * Demonstrates the core public API: PvaConfig/PvaUnit, VectorCommand,
 * Simulation, trySubmit/drainCompletions.
 */

#include <cstdio>
#include <vector>

#include "core/pva_unit.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pva;

namespace
{

/** Submit one command and run to completion; returns the data+cycles. */
Completion
runOne(PvaUnit &sys, Simulation &sim, const VectorCommand &cmd,
       const std::vector<Word> *write_data, Cycle *cycles)
{
    Cycle start = sim.now();
    if (!sys.trySubmit(cmd, 0, write_data))
        fatal("submit failed");
    Completion result;
    sim.runUntil([&] {
        auto done = sys.drainCompletions();
        if (done.empty())
            return false;
        result = std::move(done.front());
        return true;
    });
    *cycles = sim.now() - start;
    return result;
}

} // anonymous namespace

int
main()
{
    // A 16-bank word-interleaved SDRAM system, 128-byte cache lines —
    // the paper's prototype configuration.
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    // Scatter 32 words to every 19th word starting at word 4096.
    std::vector<Word> payload(32);
    for (unsigned i = 0; i < 32; ++i)
        payload[i] = 1000 + i;

    VectorCommand scatter;
    scatter.base = 4096;
    scatter.stride = 19;
    scatter.length = 32;
    scatter.isRead = false;

    Cycle write_cycles = 0;
    runOne(sys, sim, scatter, &payload, &write_cycles);
    std::printf("scattered 32 words at stride 19 in %llu cycles\n",
                static_cast<unsigned long long>(write_cycles));

    // Gather them back into a dense cache line.
    VectorCommand gather = scatter;
    gather.isRead = true;

    Cycle read_cycles = 0;
    Completion line = runOne(sys, sim, gather, nullptr, &read_cycles);
    std::printf("gathered them back in %llu cycles:\n",
                static_cast<unsigned long long>(read_cycles));
    for (unsigned i = 0; i < 32; ++i)
        std::printf("%s%u", i ? " " : "  ", line.data[i]);
    std::printf("\n");

    // Every element came back intact even though the words were spread
    // over all 16 banks.
    for (unsigned i = 0; i < 32; ++i) {
        if (line.data[i] != payload[i])
            fatal("gather mismatch at element %u", i);
    }
    std::printf("round trip verified.\n");
    return 0;
}
