/**
 * @file
 * Impulse-style shadow-space access (section 3.2 + section 4.3.2).
 *
 * The PVA was designed for the Impulse memory controller, where a
 * strided "shadow" view of an array is remapped by the controller: the
 * processor reads dense cache lines from the shadow region and the
 * controller gathers the strided elements from the real pages backing
 * it. A long vector spans several superpages that are not physically
 * contiguous, so the controller must SplitVector the request against
 * its TLB and issue one vector-bus operation per superpage.
 *
 * This example builds a 3-superpage virtual array with a scrambled
 * physical layout, splits a 768-element stride-5 gather against the
 * TLB, runs every sub-command through the PVA, and verifies the
 * reassembled data.
 */

#include <cstdio>
#include <vector>

#include "core/pva_unit.hh"
#include "core/split_vector.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pva;

int
main()
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    // Three 4096-word virtual superpages, physically out of order.
    constexpr std::uint32_t kPage = 4096;
    MmcTlb tlb;
    tlb.mapSuperpage(0 * kPage, 7 * kPage, kPage);
    tlb.mapSuperpage(1 * kPage, 3 * kPage, kPage);
    tlb.mapSuperpage(2 * kPage, 11 * kPage, kPage);

    // The application array: element i at virtual word 5*i.
    constexpr std::uint32_t kElems = 768; // spans 3840 words < 3 pages
    constexpr std::uint32_t kStride = 5;
    for (std::uint32_t i = 0; i < kElems; ++i) {
        WordAddr va = static_cast<WordAddr>(kStride) * i;
        sys.memory().write(tlb.lookup(va).phys, 0x5000 + i);
    }

    // The controller splits the virtual vector into per-superpage
    // physical vector commands (division-free, section 4.3.2) ...
    VectorCommand shadow;
    shadow.base = 0;
    shadow.stride = kStride;
    shadow.length = kElems;
    shadow.isRead = true;
    std::vector<VectorCommand> subs = splitVector(shadow, tlb);
    std::printf("split a %u-element stride-%u shadow gather into %zu "
                "per-superpage commands\n",
                kElems, kStride, subs.size());

    // ... then chops each into cache-line-sized bus operations.
    std::vector<VectorCommand> cmds;
    for (const VectorCommand &s : subs) {
        for (std::uint32_t off = 0; off < s.length; off += 32) {
            VectorCommand c = s;
            c.base = s.base + static_cast<WordAddr>(kStride) * off;
            c.length = std::min<std::uint32_t>(32, s.length - off);
            cmds.push_back(c);
        }
    }

    std::vector<std::vector<Word>> lines(cmds.size());
    std::size_t submitted = 0, completed = 0;
    sim.runUntil(
        [&] {
            while (submitted < cmds.size() &&
                   sys.trySubmit(cmds[submitted], submitted, nullptr))
                ++submitted;
            for (Completion &c : sys.drainCompletions()) {
                lines[c.tag] = std::move(c.data);
                ++completed;
            }
            return completed == cmds.size();
        },
        10000000);

    std::vector<Word> gathered;
    for (const auto &line : lines)
        gathered.insert(gathered.end(), line.begin(), line.end());
    if (gathered.size() != kElems)
        fatal("expected %u elements, got %zu", kElems, gathered.size());
    for (std::uint32_t i = 0; i < kElems; ++i) {
        if (gathered[i] != 0x5000 + i)
            fatal("element %u wrong: got 0x%x", i, gathered[i]);
    }

    std::printf("%u bus commands, %llu cycles, dense shadow lines "
                "verified across %zu scrambled superpages\n",
                static_cast<unsigned>(cmds.size()),
                static_cast<unsigned long long>(sim.now()),
                subs.size());
    return 0;
}
