/**
 * @file
 * STREAM-style bandwidth demo: runs the copy kernel at several strides
 * through the full kernel harness and reports effective bandwidth of
 * useful data (the application's elements, not the lines transferred),
 * on both the PVA and the cache-line baseline.
 */

#include <cstdio>

#include "kernels/sweep.hh"

using namespace pva;

int
main()
{
    constexpr double kClockMhz = 100.0; // the paper's memory clock
    constexpr double kBytes = 1024.0 * 4 * 2; // read + write streams

    std::printf("copy kernel: useful bandwidth vs stride "
                "(1024 elements, best alignment, 100 MHz clock)\n");
    std::printf("%-8s %14s %14s %10s\n", "stride", "PVA MB/s",
                "cacheline MB/s", "ratio");
    for (std::uint32_t s : paperStrides()) {
        MinMaxCycles pva =
            runAcrossAlignments(SystemKind::PvaSdram, KernelId::Copy, s);
        MinMaxCycles cl =
            runAcrossAlignments(SystemKind::CacheLine, KernelId::Copy, s);
        double bw_pva = kBytes / (pva.min / kClockMhz); // bytes/us = MB/s
        double bw_cl = kBytes / (cl.min / kClockMhz);
        std::printf("%-8u %14.1f %14.1f %9.1fx\n", s, bw_pva, bw_cl,
                    bw_pva / bw_cl);
    }
    return 0;
}
