/**
 * @file
 * FFT bit-reversal reordering through the memory controller (the
 * chapter 7 extension). Gathers a 4096-word array in bit-reversed order
 * — a pattern with pathological cache behaviour — and verifies the
 * permutation, comparing the PVA against the cache-line baseline.
 */

#include <cstdio>

#include "baselines/cacheline_system.hh"
#include "core/bit_reversal.hh"
#include "core/pva_unit.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pva;

namespace
{

constexpr std::uint32_t kCount = 4096;
constexpr WordAddr kBase = 1 << 16;

Cycle
baselineBitReversal(CacheLineSystem &sys)
{
    Simulation sim;
    sim.add(&sys);
    auto cmds = bitReversalCommands(kBase, kCount, 32, true);
    std::size_t submitted = 0, completed = 0;
    sim.runUntil(
        [&] {
            while (submitted < cmds.size() &&
                   sys.trySubmit(cmds[submitted], submitted, nullptr))
                ++submitted;
            completed += sys.drainCompletions().size();
            return completed == cmds.size();
        },
        100000000);
    return sim.now();
}

} // anonymous namespace

int
main()
{
    PvaUnit pva("pva", PvaConfig{});
    CacheLineSystem cacheline("cacheline");
    for (std::uint32_t i = 0; i < kCount; ++i) {
        pva.memory().write(kBase + i, i);
        cacheline.memory().write(kBase + i, i);
    }

    Simulation sim;
    sim.add(&pva);
    BitReversalResult r = runBitReversedGather(pva, sim, kBase, kCount);

    const unsigned bits = log2Exact(kCount);
    for (std::uint32_t i = 0; i < kCount; ++i) {
        if (r.data[i] != bitReverse(i, bits))
            fatal("bad permutation at %u", i);
    }

    Cycle t_cl = baselineBitReversal(cacheline);

    std::printf("bit-reversed gather of %u words (%u commands):\n",
                kCount, kCount / 32);
    std::printf("  PVA SDRAM:               %9llu cycles\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("  cache-line serial SDRAM: %9llu cycles\n",
                static_cast<unsigned long long>(t_cl));
    std::printf("  permutation verified; speedup %.1fx\n",
                static_cast<double>(t_cl) / r.cycles);
    return 0;
}
