/**
 * @file
 * The paper's motivating scenario: walking a row-major matrix by
 * columns. A column access is a base-stride vector with stride equal to
 * the row length; a conventional cache-line memory system transfers a
 * whole 128-byte line for every 4-byte element, while the PVA gathers
 * just the column.
 *
 * Sums each column of a 256x256 row-major matrix on the PVA system and
 * on the cache-line baseline and compares cycle counts.
 */

#include <cstdio>
#include <vector>

#include "baselines/cacheline_system.hh"
#include "core/pva_unit.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace pva;

namespace
{

constexpr unsigned kDim = 256;          ///< 256x256 words
constexpr WordAddr kMatrixBase = 1 << 16;

/** Sum column `col` via 32-element vector reads; returns cycles. */
Cycle
sumColumns(MemorySystem &sys, std::uint64_t *checksum)
{
    Simulation sim;
    sim.add(&sys);
    Cycle start = sim.now();
    std::uint64_t sum = 0;

    unsigned submitted = 0, completed = 0;
    std::vector<VectorCommand> cmds;
    for (unsigned col = 0; col < kDim; ++col) {
        for (unsigned chunk = 0; chunk < kDim / 32; ++chunk) {
            VectorCommand c;
            c.base = kMatrixBase + col +
                     static_cast<WordAddr>(chunk) * 32 * kDim;
            c.stride = kDim; // row length: column walk
            c.length = 32;
            c.isRead = true;
            cmds.push_back(c);
        }
    }

    sim.runUntil(
        [&] {
            while (submitted < cmds.size() &&
                   sys.trySubmit(cmds[submitted], submitted, nullptr)) {
                ++submitted;
            }
            for (Completion &c : sys.drainCompletions()) {
                for (Word w : c.data)
                    sum += w;
                ++completed;
            }
            return completed == cmds.size();
        },
        100000000);

    *checksum = sum;
    return sim.now() - start;
}

} // anonymous namespace

int
main()
{
    PvaUnit pva("pva", PvaConfig{});
    CacheLineSystem cacheline("cacheline");

    // Same matrix contents in both systems.
    for (unsigned r = 0; r < kDim; ++r) {
        for (unsigned c = 0; c < kDim; ++c) {
            Word v = r * 31 + c * 7;
            pva.memory().write(kMatrixBase + r * kDim + c, v);
            cacheline.memory().write(kMatrixBase + r * kDim + c, v);
        }
    }

    std::uint64_t sum_pva = 0, sum_cl = 0;
    Cycle t_pva = sumColumns(pva, &sum_pva);
    Cycle t_cl = sumColumns(cacheline, &sum_cl);

    if (sum_pva != sum_cl)
        fatal("checksum mismatch: %llu vs %llu",
              static_cast<unsigned long long>(sum_pva),
              static_cast<unsigned long long>(sum_cl));

    std::printf("column-major walk of a %ux%u row-major matrix "
                "(stride %u):\n", kDim, kDim, kDim);
    std::printf("  PVA SDRAM:               %9llu cycles\n",
                static_cast<unsigned long long>(t_pva));
    std::printf("  cache-line serial SDRAM: %9llu cycles\n",
                static_cast<unsigned long long>(t_cl));
    std::printf("  speedup: %.1fx (checksum %llu)\n",
                static_cast<double>(t_cl) / t_pva,
                static_cast<unsigned long long>(sum_pva));
    return 0;
}
