# Empty compiler generated dependencies file for pva_kernels.
# This may be replaced when dependencies are built.
