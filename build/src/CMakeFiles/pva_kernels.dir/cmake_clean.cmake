file(REMOVE_RECURSE
  "CMakeFiles/pva_kernels.dir/kernels/alignment.cc.o"
  "CMakeFiles/pva_kernels.dir/kernels/alignment.cc.o.d"
  "CMakeFiles/pva_kernels.dir/kernels/command_unit.cc.o"
  "CMakeFiles/pva_kernels.dir/kernels/command_unit.cc.o.d"
  "CMakeFiles/pva_kernels.dir/kernels/kernel.cc.o"
  "CMakeFiles/pva_kernels.dir/kernels/kernel.cc.o.d"
  "CMakeFiles/pva_kernels.dir/kernels/runner.cc.o"
  "CMakeFiles/pva_kernels.dir/kernels/runner.cc.o.d"
  "CMakeFiles/pva_kernels.dir/kernels/sweep.cc.o"
  "CMakeFiles/pva_kernels.dir/kernels/sweep.cc.o.d"
  "CMakeFiles/pva_kernels.dir/kernels/trace_file.cc.o"
  "CMakeFiles/pva_kernels.dir/kernels/trace_file.cc.o.d"
  "libpva_kernels.a"
  "libpva_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
