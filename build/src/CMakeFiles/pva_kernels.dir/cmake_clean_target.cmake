file(REMOVE_RECURSE
  "libpva_kernels.a"
)
