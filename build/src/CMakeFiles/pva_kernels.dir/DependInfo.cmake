
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/alignment.cc" "src/CMakeFiles/pva_kernels.dir/kernels/alignment.cc.o" "gcc" "src/CMakeFiles/pva_kernels.dir/kernels/alignment.cc.o.d"
  "/root/repo/src/kernels/command_unit.cc" "src/CMakeFiles/pva_kernels.dir/kernels/command_unit.cc.o" "gcc" "src/CMakeFiles/pva_kernels.dir/kernels/command_unit.cc.o.d"
  "/root/repo/src/kernels/kernel.cc" "src/CMakeFiles/pva_kernels.dir/kernels/kernel.cc.o" "gcc" "src/CMakeFiles/pva_kernels.dir/kernels/kernel.cc.o.d"
  "/root/repo/src/kernels/runner.cc" "src/CMakeFiles/pva_kernels.dir/kernels/runner.cc.o" "gcc" "src/CMakeFiles/pva_kernels.dir/kernels/runner.cc.o.d"
  "/root/repo/src/kernels/sweep.cc" "src/CMakeFiles/pva_kernels.dir/kernels/sweep.cc.o" "gcc" "src/CMakeFiles/pva_kernels.dir/kernels/sweep.cc.o.d"
  "/root/repo/src/kernels/trace_file.cc" "src/CMakeFiles/pva_kernels.dir/kernels/trace_file.cc.o" "gcc" "src/CMakeFiles/pva_kernels.dir/kernels/trace_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sdram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
