# Empty compiler generated dependencies file for pva_bus.
# This may be replaced when dependencies are built.
