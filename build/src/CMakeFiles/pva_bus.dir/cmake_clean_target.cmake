file(REMOVE_RECURSE
  "libpva_bus.a"
)
