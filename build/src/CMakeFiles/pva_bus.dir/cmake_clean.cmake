file(REMOVE_RECURSE
  "CMakeFiles/pva_bus.dir/bus/vector_bus.cc.o"
  "CMakeFiles/pva_bus.dir/bus/vector_bus.cc.o.d"
  "libpva_bus.a"
  "libpva_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
