# Empty compiler generated dependencies file for pva_baselines.
# This may be replaced when dependencies are built.
