file(REMOVE_RECURSE
  "CMakeFiles/pva_baselines.dir/baselines/cacheline_system.cc.o"
  "CMakeFiles/pva_baselines.dir/baselines/cacheline_system.cc.o.d"
  "CMakeFiles/pva_baselines.dir/baselines/gathering_system.cc.o"
  "CMakeFiles/pva_baselines.dir/baselines/gathering_system.cc.o.d"
  "CMakeFiles/pva_baselines.dir/baselines/pva_sram_system.cc.o"
  "CMakeFiles/pva_baselines.dir/baselines/pva_sram_system.cc.o.d"
  "libpva_baselines.a"
  "libpva_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
