file(REMOVE_RECURSE
  "libpva_baselines.a"
)
