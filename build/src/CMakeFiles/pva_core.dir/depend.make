# Empty dependencies file for pva_core.
# This may be replaced when dependencies are built.
