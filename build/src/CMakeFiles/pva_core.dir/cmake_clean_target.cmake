file(REMOVE_RECURSE
  "libpva_core.a"
)
