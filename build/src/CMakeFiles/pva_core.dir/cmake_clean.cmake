file(REMOVE_RECURSE
  "CMakeFiles/pva_core.dir/core/bank_controller.cc.o"
  "CMakeFiles/pva_core.dir/core/bank_controller.cc.o.d"
  "CMakeFiles/pva_core.dir/core/bit_reversal.cc.o"
  "CMakeFiles/pva_core.dir/core/bit_reversal.cc.o.d"
  "CMakeFiles/pva_core.dir/core/complexity.cc.o"
  "CMakeFiles/pva_core.dir/core/complexity.cc.o.d"
  "CMakeFiles/pva_core.dir/core/firsthit.cc.o"
  "CMakeFiles/pva_core.dir/core/firsthit.cc.o.d"
  "CMakeFiles/pva_core.dir/core/indirect.cc.o"
  "CMakeFiles/pva_core.dir/core/indirect.cc.o.d"
  "CMakeFiles/pva_core.dir/core/pla.cc.o"
  "CMakeFiles/pva_core.dir/core/pla.cc.o.d"
  "CMakeFiles/pva_core.dir/core/pva_unit.cc.o"
  "CMakeFiles/pva_core.dir/core/pva_unit.cc.o.d"
  "CMakeFiles/pva_core.dir/core/shadow.cc.o"
  "CMakeFiles/pva_core.dir/core/shadow.cc.o.d"
  "CMakeFiles/pva_core.dir/core/split_vector.cc.o"
  "CMakeFiles/pva_core.dir/core/split_vector.cc.o.d"
  "libpva_core.a"
  "libpva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
