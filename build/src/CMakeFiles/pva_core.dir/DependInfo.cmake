
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bank_controller.cc" "src/CMakeFiles/pva_core.dir/core/bank_controller.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/bank_controller.cc.o.d"
  "/root/repo/src/core/bit_reversal.cc" "src/CMakeFiles/pva_core.dir/core/bit_reversal.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/bit_reversal.cc.o.d"
  "/root/repo/src/core/complexity.cc" "src/CMakeFiles/pva_core.dir/core/complexity.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/complexity.cc.o.d"
  "/root/repo/src/core/firsthit.cc" "src/CMakeFiles/pva_core.dir/core/firsthit.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/firsthit.cc.o.d"
  "/root/repo/src/core/indirect.cc" "src/CMakeFiles/pva_core.dir/core/indirect.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/indirect.cc.o.d"
  "/root/repo/src/core/pla.cc" "src/CMakeFiles/pva_core.dir/core/pla.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/pla.cc.o.d"
  "/root/repo/src/core/pva_unit.cc" "src/CMakeFiles/pva_core.dir/core/pva_unit.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/pva_unit.cc.o.d"
  "/root/repo/src/core/shadow.cc" "src/CMakeFiles/pva_core.dir/core/shadow.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/shadow.cc.o.d"
  "/root/repo/src/core/split_vector.cc" "src/CMakeFiles/pva_core.dir/core/split_vector.cc.o" "gcc" "src/CMakeFiles/pva_core.dir/core/split_vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sdram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_bus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
