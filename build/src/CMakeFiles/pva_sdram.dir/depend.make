# Empty dependencies file for pva_sdram.
# This may be replaced when dependencies are built.
