file(REMOVE_RECURSE
  "libpva_sdram.a"
)
