file(REMOVE_RECURSE
  "CMakeFiles/pva_sdram.dir/sdram/device.cc.o"
  "CMakeFiles/pva_sdram.dir/sdram/device.cc.o.d"
  "CMakeFiles/pva_sdram.dir/sdram/geometry.cc.o"
  "CMakeFiles/pva_sdram.dir/sdram/geometry.cc.o.d"
  "CMakeFiles/pva_sdram.dir/sdram/sram_device.cc.o"
  "CMakeFiles/pva_sdram.dir/sdram/sram_device.cc.o.d"
  "libpva_sdram.a"
  "libpva_sdram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_sdram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
