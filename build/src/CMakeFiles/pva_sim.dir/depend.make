# Empty dependencies file for pva_sim.
# This may be replaced when dependencies are built.
