file(REMOVE_RECURSE
  "CMakeFiles/pva_sim.dir/sim/logging.cc.o"
  "CMakeFiles/pva_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/pva_sim.dir/sim/memory.cc.o"
  "CMakeFiles/pva_sim.dir/sim/memory.cc.o.d"
  "CMakeFiles/pva_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/pva_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/pva_sim.dir/sim/stats.cc.o"
  "CMakeFiles/pva_sim.dir/sim/stats.cc.o.d"
  "libpva_sim.a"
  "libpva_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
