file(REMOVE_RECURSE
  "libpva_sim.a"
)
