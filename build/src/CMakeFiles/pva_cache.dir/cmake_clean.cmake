file(REMOVE_RECURSE
  "CMakeFiles/pva_cache.dir/cache/l2_cache.cc.o"
  "CMakeFiles/pva_cache.dir/cache/l2_cache.cc.o.d"
  "libpva_cache.a"
  "libpva_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pva_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
