file(REMOVE_RECURSE
  "libpva_cache.a"
)
