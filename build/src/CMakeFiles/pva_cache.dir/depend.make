# Empty dependencies file for pva_cache.
# This may be replaced when dependencies are built.
