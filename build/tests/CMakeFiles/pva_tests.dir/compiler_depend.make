# Empty compiler generated dependencies file for pva_tests.
# This may be replaced when dependencies are built.
