
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bank_controller.cc" "tests/CMakeFiles/pva_tests.dir/test_bank_controller.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_bank_controller.cc.o.d"
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/pva_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/pva_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_command_unit.cc" "tests/CMakeFiles/pva_tests.dir/test_command_unit.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_command_unit.cc.o.d"
  "/root/repo/tests/test_complexity.cc" "tests/CMakeFiles/pva_tests.dir/test_complexity.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_complexity.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/pva_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/pva_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_features.cc" "tests/CMakeFiles/pva_tests.dir/test_features.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_features.cc.o.d"
  "/root/repo/tests/test_firsthit.cc" "tests/CMakeFiles/pva_tests.dir/test_firsthit.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_firsthit.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/pva_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_integration_grid.cc" "tests/CMakeFiles/pva_tests.dir/test_integration_grid.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_integration_grid.cc.o.d"
  "/root/repo/tests/test_kernels.cc" "tests/CMakeFiles/pva_tests.dir/test_kernels.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_kernels.cc.o.d"
  "/root/repo/tests/test_microarch.cc" "tests/CMakeFiles/pva_tests.dir/test_microarch.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_microarch.cc.o.d"
  "/root/repo/tests/test_misc.cc" "tests/CMakeFiles/pva_tests.dir/test_misc.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_misc.cc.o.d"
  "/root/repo/tests/test_paper_examples.cc" "tests/CMakeFiles/pva_tests.dir/test_paper_examples.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_paper_examples.cc.o.d"
  "/root/repo/tests/test_pla.cc" "tests/CMakeFiles/pva_tests.dir/test_pla.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_pla.cc.o.d"
  "/root/repo/tests/test_pva_unit.cc" "tests/CMakeFiles/pva_tests.dir/test_pva_unit.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_pva_unit.cc.o.d"
  "/root/repo/tests/test_sdram_device.cc" "tests/CMakeFiles/pva_tests.dir/test_sdram_device.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_sdram_device.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/pva_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/pva_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_split_vector.cc" "tests/CMakeFiles/pva_tests.dir/test_split_vector.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_split_vector.cc.o.d"
  "/root/repo/tests/test_stress.cc" "tests/CMakeFiles/pva_tests.dir/test_stress.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_stress.cc.o.d"
  "/root/repo/tests/test_trace_file.cc" "tests/CMakeFiles/pva_tests.dir/test_trace_file.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_trace_file.cc.o.d"
  "/root/repo/tests/test_vector_bus.cc" "tests/CMakeFiles/pva_tests.dir/test_vector_bus.cc.o" "gcc" "tests/CMakeFiles/pva_tests.dir/test_vector_bus.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pva_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sdram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
