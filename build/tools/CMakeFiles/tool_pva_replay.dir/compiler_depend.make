# Empty compiler generated dependencies file for tool_pva_replay.
# This may be replaced when dependencies are built.
