file(REMOVE_RECURSE
  "CMakeFiles/tool_pva_replay.dir/pva_replay.cc.o"
  "CMakeFiles/tool_pva_replay.dir/pva_replay.cc.o.d"
  "pva_replay"
  "pva_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_pva_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
