# Empty dependencies file for tool_pva_sim.
# This may be replaced when dependencies are built.
