file(REMOVE_RECURSE
  "CMakeFiles/tool_pva_sim.dir/pva_sim.cc.o"
  "CMakeFiles/tool_pva_sim.dir/pva_sim.cc.o.d"
  "pva_sim"
  "pva_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_pva_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
