file(REMOVE_RECURSE
  "CMakeFiles/bench_subcommand_latency.dir/bench_subcommand_latency.cc.o"
  "CMakeFiles/bench_subcommand_latency.dir/bench_subcommand_latency.cc.o.d"
  "bench_subcommand_latency"
  "bench_subcommand_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subcommand_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
