# Empty compiler generated dependencies file for bench_subcommand_latency.
# This may be replaced when dependencies are built.
