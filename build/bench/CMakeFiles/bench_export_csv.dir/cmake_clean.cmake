file(REMOVE_RECURSE
  "CMakeFiles/bench_export_csv.dir/bench_export_csv.cc.o"
  "CMakeFiles/bench_export_csv.dir/bench_export_csv.cc.o.d"
  "bench_export_csv"
  "bench_export_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_export_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
