# Empty compiler generated dependencies file for bench_export_csv.
# This may be replaced when dependencies are built.
