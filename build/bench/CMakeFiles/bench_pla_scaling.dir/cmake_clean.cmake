file(REMOVE_RECURSE
  "CMakeFiles/bench_pla_scaling.dir/bench_pla_scaling.cc.o"
  "CMakeFiles/bench_pla_scaling.dir/bench_pla_scaling.cc.o.d"
  "bench_pla_scaling"
  "bench_pla_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pla_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
