file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_speedups.dir/bench_headline_speedups.cc.o"
  "CMakeFiles/bench_headline_speedups.dir/bench_headline_speedups.cc.o.d"
  "bench_headline_speedups"
  "bench_headline_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
