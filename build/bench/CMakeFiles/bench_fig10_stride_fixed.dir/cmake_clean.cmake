file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stride_fixed.dir/bench_fig10_stride_fixed.cc.o"
  "CMakeFiles/bench_fig10_stride_fixed.dir/bench_fig10_stride_fixed.cc.o.d"
  "bench_fig10_stride_fixed"
  "bench_fig10_stride_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stride_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
