# Empty dependencies file for bench_fig10_stride_fixed.
# This may be replaced when dependencies are built.
