# Empty dependencies file for bench_bank_scaling.
# This may be replaced when dependencies are built.
