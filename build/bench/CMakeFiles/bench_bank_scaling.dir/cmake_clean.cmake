file(REMOVE_RECURSE
  "CMakeFiles/bench_bank_scaling.dir/bench_bank_scaling.cc.o"
  "CMakeFiles/bench_bank_scaling.dir/bench_bank_scaling.cc.o.d"
  "bench_bank_scaling"
  "bench_bank_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bank_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
