# Empty compiler generated dependencies file for bench_single_latency.
# This may be replaced when dependencies are built.
