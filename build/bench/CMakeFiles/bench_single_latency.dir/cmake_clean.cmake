file(REMOVE_RECURSE
  "CMakeFiles/bench_single_latency.dir/bench_single_latency.cc.o"
  "CMakeFiles/bench_single_latency.dir/bench_single_latency.cc.o.d"
  "bench_single_latency"
  "bench_single_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
