# Empty compiler generated dependencies file for bench_micro_firsthit.
# This may be replaced when dependencies are built.
