file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_firsthit.dir/bench_micro_firsthit.cc.o"
  "CMakeFiles/bench_micro_firsthit.dir/bench_micro_firsthit.cc.o.d"
  "bench_micro_firsthit"
  "bench_micro_firsthit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_firsthit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
