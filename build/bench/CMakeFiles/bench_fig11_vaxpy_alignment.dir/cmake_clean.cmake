file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vaxpy_alignment.dir/bench_fig11_vaxpy_alignment.cc.o"
  "CMakeFiles/bench_fig11_vaxpy_alignment.dir/bench_fig11_vaxpy_alignment.cc.o.d"
  "bench_fig11_vaxpy_alignment"
  "bench_fig11_vaxpy_alignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vaxpy_alignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
