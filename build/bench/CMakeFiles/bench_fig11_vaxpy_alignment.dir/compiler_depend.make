# Empty compiler generated dependencies file for bench_fig11_vaxpy_alignment.
# This may be replaced when dependencies are built.
