file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_kernels_by_stride.dir/bench_fig8_kernels_by_stride.cc.o"
  "CMakeFiles/bench_fig8_kernels_by_stride.dir/bench_fig8_kernels_by_stride.cc.o.d"
  "bench_fig8_kernels_by_stride"
  "bench_fig8_kernels_by_stride.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_kernels_by_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
