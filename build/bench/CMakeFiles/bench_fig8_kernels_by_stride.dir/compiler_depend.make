# Empty compiler generated dependencies file for bench_fig8_kernels_by_stride.
# This may be replaced when dependencies are built.
