# Empty dependencies file for bench_timing_sensitivity.
# This may be replaced when dependencies are built.
