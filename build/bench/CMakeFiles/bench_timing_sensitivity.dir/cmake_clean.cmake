file(REMOVE_RECURSE
  "CMakeFiles/bench_timing_sensitivity.dir/bench_timing_sensitivity.cc.o"
  "CMakeFiles/bench_timing_sensitivity.dir/bench_timing_sensitivity.cc.o.d"
  "bench_timing_sensitivity"
  "bench_timing_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
