# Empty dependencies file for cache_utilization.
# This may be replaced when dependencies are built.
