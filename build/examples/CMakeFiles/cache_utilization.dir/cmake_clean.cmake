file(REMOVE_RECURSE
  "CMakeFiles/cache_utilization.dir/cache_utilization.cpp.o"
  "CMakeFiles/cache_utilization.dir/cache_utilization.cpp.o.d"
  "cache_utilization"
  "cache_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
