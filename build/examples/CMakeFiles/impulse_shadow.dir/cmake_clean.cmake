file(REMOVE_RECURSE
  "CMakeFiles/impulse_shadow.dir/impulse_shadow.cpp.o"
  "CMakeFiles/impulse_shadow.dir/impulse_shadow.cpp.o.d"
  "impulse_shadow"
  "impulse_shadow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impulse_shadow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
