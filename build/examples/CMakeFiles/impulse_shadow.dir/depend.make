# Empty dependencies file for impulse_shadow.
# This may be replaced when dependencies are built.
