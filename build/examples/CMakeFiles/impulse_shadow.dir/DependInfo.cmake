
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/impulse_shadow.cpp" "examples/CMakeFiles/impulse_shadow.dir/impulse_shadow.cpp.o" "gcc" "examples/CMakeFiles/impulse_shadow.dir/impulse_shadow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pva_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sdram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pva_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
