# Empty dependencies file for sparse_gather.
# This may be replaced when dependencies are built.
