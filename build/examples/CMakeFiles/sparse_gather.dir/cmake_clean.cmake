file(REMOVE_RECURSE
  "CMakeFiles/sparse_gather.dir/sparse_gather.cpp.o"
  "CMakeFiles/sparse_gather.dir/sparse_gather.cpp.o.d"
  "sparse_gather"
  "sparse_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
