file(REMOVE_RECURSE
  "CMakeFiles/fft_bit_reversal.dir/fft_bit_reversal.cpp.o"
  "CMakeFiles/fft_bit_reversal.dir/fft_bit_reversal.cpp.o.d"
  "fft_bit_reversal"
  "fft_bit_reversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_bit_reversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
