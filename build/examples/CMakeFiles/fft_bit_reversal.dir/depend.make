# Empty dependencies file for fft_bit_reversal.
# This may be replaced when dependencies are built.
