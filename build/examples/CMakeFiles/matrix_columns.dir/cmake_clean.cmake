file(REMOVE_RECURSE
  "CMakeFiles/matrix_columns.dir/matrix_columns.cpp.o"
  "CMakeFiles/matrix_columns.dir/matrix_columns.cpp.o.d"
  "matrix_columns"
  "matrix_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
