# Empty dependencies file for matrix_columns.
# This may be replaced when dependencies are built.
