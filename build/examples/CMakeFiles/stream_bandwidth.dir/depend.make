# Empty dependencies file for stream_bandwidth.
# This may be replaced when dependencies are built.
