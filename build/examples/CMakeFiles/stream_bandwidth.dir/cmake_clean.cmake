file(REMOVE_RECURSE
  "CMakeFiles/stream_bandwidth.dir/stream_bandwidth.cpp.o"
  "CMakeFiles/stream_bandwidth.dir/stream_bandwidth.cpp.o.d"
  "stream_bandwidth"
  "stream_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
