/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Each bench prints, for a slice of the chapter 6 grid, the cycle
 * counts of the four memory systems with min/max over the five relative
 * alignments, plus execution time normalized to the PVA SDRAM minimum —
 * the same quantities annotated on the paper's bars.
 *
 * All grid points are dispatched through the SweepExecutor: the full
 * slice runs on a worker pool (--jobs N, default all hardware threads)
 * and is aggregated in issue order, so the printed tables are identical
 * to a serial run.
 */

#ifndef PVA_BENCH_COMMON_HH
#define PVA_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "kernels/sweep_executor.hh"
#include "sim/logging.hh"

namespace pva::benchutil
{

/** Worker count from a --jobs N argument (0 = all hardware threads). */
inline unsigned
parseJobs(int argc, char **argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs")) {
            char *end = nullptr;
            unsigned long n = std::strtoul(argv[i + 1], &end, 10);
            if (end == argv[i + 1] || *end != '\0')
                fatal("--jobs expects a number, got '%s'", argv[i + 1]);
            return static_cast<unsigned>(n);
        }
    }
    return 0;
}

/** Results of one (kernel, stride) cell across systems/alignments. */
struct Cell
{
    MinMaxCycles pva;
    MinMaxCycles cacheline;
    MinMaxCycles gathering;
    MinMaxCycles sram;
};

/**
 * Run the four systems at every alignment for each (kernel, stride)
 * cell, in parallel, and fold the results into per-cell min/max.
 * Panics on any functional mismatch, like runAcrossAlignments().
 */
inline std::vector<Cell>
runCells(const std::vector<std::pair<KernelId, std::uint32_t>> &cells,
         unsigned jobs)
{
    std::vector<SweepRequest> grid;
    const std::size_t aligns = alignmentPresets().size();
    grid.reserve(cells.size() * allSystems().size() * aligns);
    for (const auto &[kernel, stride] : cells) {
        for (SystemKind sys : allSystems()) {
            for (unsigned a = 0; a < aligns; ++a) {
                SweepRequest req;
                req.system = sys;
                req.kernel = kernel;
                req.stride = stride;
                req.alignment = a;
                grid.push_back(req);
            }
        }
    }

    SweepExecutor executor(jobs);
    std::vector<SweepPoint> points = executor.run(grid);

    std::vector<Cell> out(cells.size());
    std::size_t i = 0;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        for (SystemKind sys : allSystems()) {
            MinMaxCycles mm{kNeverCycle, 0};
            for (unsigned a = 0; a < aligns; ++a, ++i) {
                const SweepPoint &p = points[i];
                if (p.mismatches != 0)
                    panic("functional mismatch in %s/%s stride %u "
                          "alignment %u",
                          systemName(p.system),
                          kernelSpec(p.kernel).name.c_str(), p.stride,
                          p.alignment);
                mm.min = std::min(mm.min, p.cycles);
                mm.max = std::max(mm.max, p.cycles);
            }
            switch (sys) {
              case SystemKind::PvaSdram:
                out[c].pva = mm;
                break;
              case SystemKind::CacheLine:
                out[c].cacheline = mm;
                break;
              case SystemKind::Gathering:
                out[c].gathering = mm;
                break;
              case SystemKind::PvaSram:
                out[c].sram = mm;
                break;
            }
        }
    }
    return out;
}

inline double
pct(Cycle value, Cycle base)
{
    return 100.0 * static_cast<double>(value) /
           static_cast<double>(base);
}

inline void
printCellHeader()
{
    std::printf("%-8s %-7s | %9s %9s | %9s %8s | %9s %8s | %9s %9s\n",
                "kernel", "stride", "pva.min", "pva.max", "cline",
                "norm%", "gather", "norm%", "sram.min", "sram.max");
}

inline void
printCellRow(const char *kernel, std::uint32_t stride, const Cell &c)
{
    std::printf("%-8s %-7u | %9llu %9llu | %9llu %7.0f%% | %9llu %7.0f%% "
                "| %9llu %9llu\n",
                kernel, stride,
                static_cast<unsigned long long>(c.pva.min),
                static_cast<unsigned long long>(c.pva.max),
                static_cast<unsigned long long>(c.cacheline.min),
                pct(c.cacheline.min, c.pva.min),
                static_cast<unsigned long long>(c.gathering.min),
                pct(c.gathering.min, c.pva.min),
                static_cast<unsigned long long>(c.sram.min),
                static_cast<unsigned long long>(c.sram.max));
}

/** Figure 7/8 layout: one block per kernel, rows are strides. */
inline void
printKernelsByStride(const std::vector<KernelId> &kernels, unsigned jobs)
{
    std::vector<std::pair<KernelId, std::uint32_t>> cells;
    for (KernelId k : kernels)
        for (std::uint32_t s : paperStrides())
            cells.emplace_back(k, s);
    std::vector<Cell> results = runCells(cells, jobs);

    std::size_t i = 0;
    for (KernelId k : kernels) {
        const char *name = kernelSpec(k).name.c_str();
        std::printf("\n== %s: cycles vs stride (1024-element vectors, "
                    "min/max over %zu alignments) ==\n",
                    name, alignmentPresets().size());
        printCellHeader();
        for (std::uint32_t s : paperStrides())
            printCellRow(name, s, results[i++]);
    }
}

/** Figure 9/10 layout: one block per stride, rows are kernels. */
inline void
printStridesFixed(const std::vector<std::uint32_t> &strides,
                  unsigned jobs)
{
    std::vector<std::pair<KernelId, std::uint32_t>> cells;
    for (std::uint32_t s : strides)
        for (KernelId k : allKernels())
            cells.emplace_back(k, s);
    std::vector<Cell> results = runCells(cells, jobs);

    std::size_t i = 0;
    for (std::uint32_t s : strides) {
        std::printf("\n== stride %u: cycles per kernel (normalized to "
                    "PVA SDRAM min) ==\n",
                    s);
        printCellHeader();
        for (KernelId k : allKernels())
            printCellRow(kernelSpec(k).name.c_str(), s, results[i++]);
    }
}

} // namespace pva::benchutil

#endif // PVA_BENCH_COMMON_HH
