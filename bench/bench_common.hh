/**
 * @file
 * Shared table-printing helpers for the figure-reproduction benches.
 *
 * Each bench prints, for a slice of the chapter 6 grid, the cycle
 * counts of the four memory systems with min/max over the five relative
 * alignments, plus execution time normalized to the PVA SDRAM minimum —
 * the same quantities annotated on the paper's bars.
 */

#ifndef PVA_BENCH_COMMON_HH
#define PVA_BENCH_COMMON_HH

#include <cstdio>
#include <vector>

#include "kernels/sweep.hh"

namespace pva::benchutil
{

/** Results of one (kernel, stride) cell across systems/alignments. */
struct Cell
{
    MinMaxCycles pva;
    MinMaxCycles cacheline;
    MinMaxCycles gathering;
    MinMaxCycles sram;
};

inline Cell
runCell(KernelId kernel, std::uint32_t stride)
{
    Cell c;
    c.pva = runAcrossAlignments(SystemKind::PvaSdram, kernel, stride);
    c.cacheline =
        runAcrossAlignments(SystemKind::CacheLine, kernel, stride);
    c.gathering =
        runAcrossAlignments(SystemKind::Gathering, kernel, stride);
    c.sram = runAcrossAlignments(SystemKind::PvaSram, kernel, stride);
    return c;
}

inline double
pct(Cycle value, Cycle base)
{
    return 100.0 * static_cast<double>(value) /
           static_cast<double>(base);
}

inline void
printCellHeader()
{
    std::printf("%-8s %-7s | %9s %9s | %9s %8s | %9s %8s | %9s %9s\n",
                "kernel", "stride", "pva.min", "pva.max", "cline",
                "norm%", "gather", "norm%", "sram.min", "sram.max");
}

inline void
printCellRow(const char *kernel, std::uint32_t stride, const Cell &c)
{
    std::printf("%-8s %-7u | %9llu %9llu | %9llu %7.0f%% | %9llu %7.0f%% "
                "| %9llu %9llu\n",
                kernel, stride,
                static_cast<unsigned long long>(c.pva.min),
                static_cast<unsigned long long>(c.pva.max),
                static_cast<unsigned long long>(c.cacheline.min),
                pct(c.cacheline.min, c.pva.min),
                static_cast<unsigned long long>(c.gathering.min),
                pct(c.gathering.min, c.pva.min),
                static_cast<unsigned long long>(c.sram.min),
                static_cast<unsigned long long>(c.sram.max));
}

/** Figure 7/8 layout: one block per kernel, rows are strides. */
inline void
printKernelsByStride(const std::vector<KernelId> &kernels)
{
    for (KernelId k : kernels) {
        const char *name = kernelSpec(k).name.c_str();
        std::printf("\n== %s: cycles vs stride (1024-element vectors, "
                    "min/max over %zu alignments) ==\n",
                    name, alignmentPresets().size());
        printCellHeader();
        for (std::uint32_t s : paperStrides()) {
            Cell c = runCell(k, s);
            printCellRow(name, s, c);
        }
    }
}

/** Figure 9/10 layout: one block per stride, rows are kernels. */
inline void
printStridesFixed(const std::vector<std::uint32_t> &strides)
{
    for (std::uint32_t s : strides) {
        std::printf("\n== stride %u: cycles per kernel (normalized to "
                    "PVA SDRAM min) ==\n",
                    s);
        printCellHeader();
        for (KernelId k : allKernels()) {
            Cell c = runCell(k, s);
            printCellRow(kernelSpec(k).name.c_str(), s, c);
        }
    }
}

} // namespace pva::benchutil

#endif // PVA_BENCH_COMMON_HH
