/**
 * @file
 * Figure 10 reproduction: comparative performance of all kernels at
 * strides 8, 16, and 19.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    std::printf("Figure 10: comparative performance of all kernels with "
                "fixed stride (continued)\n");
    pva::benchutil::printStridesFixed(
        {8, 16, 19}, pva::benchutil::parseJobs(argc, argv));
    return 0;
}
