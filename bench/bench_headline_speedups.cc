/**
 * @file
 * The paper's headline numbers, recomputed over the full grid:
 *
 *  - "the PVA is able to load elements up to 32.8 times faster than a
 *    conventional memory system" (vs the cache-line interleaved serial
 *    system),
 *  - "and 3.3 times faster than a pipelined vector unit" (vs the
 *    gathering pipelined serial system),
 *  - "without hurting normal cache line fill performance" (stride 1
 *    parity), and
 *  - PVA SDRAM within ~15% of PVA SRAM (section 6.3.1).
 *
 * The full 960-point grid runs once on the SweepExecutor pool
 * (--jobs N, default all hardware threads) and the aggregates are
 * computed from the issue-ordered results.
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pva;

    std::vector<SweepRequest> grid = SweepExecutor::chapter6Grid();
    SweepExecutor executor(benchutil::parseJobs(argc, argv));
    std::vector<SweepPoint> points = executor.run(grid);

    // chapter6Grid order: systems, then kernels, strides, alignments.
    const std::size_t num_k = allKernels().size();
    const std::size_t num_s = paperStrides().size();
    const std::size_t num_a = alignmentPresets().size();
    auto at = [&](std::size_t sys, std::size_t k, std::size_t s,
                  std::size_t a) -> const SweepPoint & {
        return points[((sys * num_k + k) * num_s + s) * num_a + a];
    };
    auto min_cycles = [&](std::size_t sys, std::size_t k,
                          std::size_t s) {
        Cycle best = kNeverCycle;
        for (std::size_t a = 0; a < num_a; ++a)
            best = std::min(best, at(sys, k, s, a).cycles);
        return best;
    };
    constexpr std::size_t kPva = 0, kCacheLine = 1, kGathering = 2,
                          kSram = 3;

    double best_vs_cacheline = 0, best_vs_gathering = 0;
    double worst_stride1 = 0, worst_vs_sram = 0;
    std::uint32_t arg_cl = 0, arg_ga = 0;
    const char *k_cl = "", *k_ga = "";

    for (std::size_t ki = 0; ki < num_k; ++ki) {
        const char *name = kernelSpec(allKernels()[ki]).name.c_str();
        for (std::size_t si = 0; si < num_s; ++si) {
            std::uint32_t stride = paperStrides()[si];
            Cycle pva = min_cycles(kPva, ki, si);
            Cycle cl = min_cycles(kCacheLine, ki, si);
            Cycle ga = min_cycles(kGathering, ki, si);
            // SDRAM-vs-SRAM compares corresponding alignments (the
            // paper's figure 11 (b) pairing).
            double vs_sr = 0;
            for (std::size_t a = 0; a < num_a; ++a) {
                Cycle sd = at(kPva, ki, si, a).cycles;
                Cycle sr = at(kSram, ki, si, a).cycles;
                vs_sr = std::max(vs_sr,
                                 static_cast<double>(sd) / sr);
            }

            double vs_cl = static_cast<double>(cl) / pva;
            double vs_ga = static_cast<double>(ga) / pva;
            if (vs_cl > best_vs_cacheline) {
                best_vs_cacheline = vs_cl;
                arg_cl = stride;
                k_cl = name;
            }
            if (vs_ga > best_vs_gathering) {
                best_vs_gathering = vs_ga;
                arg_ga = stride;
                k_ga = name;
            }
            if (stride == 1) {
                worst_stride1 =
                    std::max(worst_stride1,
                             static_cast<double>(pva) / cl);
            }
            worst_vs_sram = std::max(worst_vs_sram, vs_sr);
        }
    }

    std::printf("Headline results over the full kernel/stride/alignment "
                "grid:\n\n");
    std::printf("Max speedup vs cache-line serial SDRAM: %.1fx "
                "(%s, stride %u)   [paper: up to 32.8x]\n",
                best_vs_cacheline, k_cl, arg_cl);
    std::printf("Max speedup vs gathering pipelined SDRAM: %.1fx "
                "(%s, stride %u)  [paper: up to 3.3x]\n",
                best_vs_gathering, k_ga, arg_ga);
    std::printf("Stride-1 PVA time vs cache-line system: %.2fx "
                "[paper: parity, cache-line system 100-109%% of PVA]\n",
                worst_stride1);
    std::printf("Worst PVA SDRAM / PVA SRAM ratio: %.2fx "
                "[paper: at most ~1.15x]\n",
                worst_vs_sram);
    return 0;
}
