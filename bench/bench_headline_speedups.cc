/**
 * @file
 * The paper's headline numbers, recomputed over the full grid:
 *
 *  - "the PVA is able to load elements up to 32.8 times faster than a
 *    conventional memory system" (vs the cache-line interleaved serial
 *    system),
 *  - "and 3.3 times faster than a pipelined vector unit" (vs the
 *    gathering pipelined serial system),
 *  - "without hurting normal cache line fill performance" (stride 1
 *    parity), and
 *  - PVA SDRAM within ~15% of PVA SRAM (section 6.3.1).
 */

#include <cstdio>

#include "kernels/sweep.hh"

int
main()
{
    using namespace pva;

    double best_vs_cacheline = 0, best_vs_gathering = 0;
    double worst_stride1 = 0, worst_vs_sram = 0;
    std::uint32_t arg_cl = 0, arg_ga = 0;
    const char *k_cl = "", *k_ga = "";

    for (KernelId k : allKernels()) {
        const char *name = kernelSpec(k).name.c_str();
        for (std::uint32_t s : paperStrides()) {
            MinMaxCycles pva =
                runAcrossAlignments(SystemKind::PvaSdram, k, s);
            MinMaxCycles cl =
                runAcrossAlignments(SystemKind::CacheLine, k, s);
            MinMaxCycles ga =
                runAcrossAlignments(SystemKind::Gathering, k, s);
            // SDRAM-vs-SRAM compares corresponding alignments (the
            // paper's figure 11 (b) pairing).
            double vs_sr = 0;
            for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
                Cycle sd = runPoint(SystemKind::PvaSdram, k, s, a).cycles;
                Cycle sr = runPoint(SystemKind::PvaSram, k, s, a).cycles;
                vs_sr = std::max(vs_sr,
                                 static_cast<double>(sd) / sr);
            }

            double vs_cl = static_cast<double>(cl.min) / pva.min;
            double vs_ga = static_cast<double>(ga.min) / pva.min;
            if (vs_cl > best_vs_cacheline) {
                best_vs_cacheline = vs_cl;
                arg_cl = s;
                k_cl = name;
            }
            if (vs_ga > best_vs_gathering) {
                best_vs_gathering = vs_ga;
                arg_ga = s;
                k_ga = name;
            }
            if (s == 1) {
                worst_stride1 =
                    std::max(worst_stride1,
                             static_cast<double>(pva.min) / cl.min);
            }
            worst_vs_sram = std::max(worst_vs_sram, vs_sr);
        }
    }

    std::printf("Headline results over the full kernel/stride/alignment "
                "grid:\n\n");
    std::printf("Max speedup vs cache-line serial SDRAM: %.1fx "
                "(%s, stride %u)   [paper: up to 32.8x]\n",
                best_vs_cacheline, k_cl, arg_cl);
    std::printf("Max speedup vs gathering pipelined SDRAM: %.1fx "
                "(%s, stride %u)  [paper: up to 3.3x]\n",
                best_vs_gathering, k_ga, arg_ga);
    std::printf("Stride-1 PVA time vs cache-line system: %.2fx "
                "[paper: parity, cache-line system 100-109%% of PVA]\n",
                worst_stride1);
    std::printf("Worst PVA SDRAM / PVA SRAM ratio: %.2fx "
                "[paper: at most ~1.15x]\n",
                worst_vs_sram);
    return 0;
}
