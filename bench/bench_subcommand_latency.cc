/**
 * @file
 * Subcommand-generation latency (sections 3.1 / 5.3).
 *
 * The paper's claim: the PVA generates per-bank subcommands in 2 cycles
 * for power-of-two strides and at most 5 cycles for other strides
 * (the Command Vector Memory System needs 15). This bench broadcasts a
 * single command at a quiet bank controller and counts cycles until the
 * first SDRAM operation issues, for every stride 1..32, with and
 * without the section 5.2.3 bypass paths.
 */

#include <cstdio>

#include "core/bank_controller.hh"
#include "sdram/device.hh"
#include "sim/memory.hh"

namespace
{

using namespace pva;

/** Cycles from broadcast to the first SDRAM command at bank 0. */
unsigned
latencyFor(std::uint32_t stride, bool bypass)
{
    Geometry geo;
    SdramTiming timing;
    SparseMemory mem;
    SdramDevice dev("dev", 0, geo, timing, mem);
    BcConfig cfg;
    cfg.bypassEnabled = bypass;
    BankController bc("bc", 0, geo, cfg, dev);

    VectorCommand cmd;
    cmd.base = 0; // bank 0 holds element 0: always a hit
    cmd.stride = stride;
    cmd.length = 32;
    cmd.isRead = true;

    const Cycle start = 100;
    for (Cycle t = 0; t < start; ++t)
        bc.tick(t);
    bc.observeVecCommand(start, cmd);
    for (Cycle t = start; t < start + 64; ++t) {
        bc.tick(t);
        if (dev.statActivates.value() + dev.statReads.value() > 0)
            return static_cast<unsigned>(t - start);
    }
    return 0;
}

} // anonymous namespace

int
main()
{
    std::printf("Subcommand generation latency (cycles from broadcast "
                "to first SDRAM op)\n");
    std::printf("%-8s %10s %12s\n", "stride", "bypassed", "no-bypass");
    unsigned worst_pow2 = 0, worst_other = 0;
    for (std::uint32_t s = 1; s <= 32; ++s) {
        unsigned with_bp = latencyFor(s, true);
        unsigned no_bp = latencyFor(s, false);
        std::printf("%-8u %10u %12u\n", s, with_bp, no_bp);
        if (isPowerOfTwo(s))
            worst_pow2 = std::max(worst_pow2, no_bp);
        else
            worst_other = std::max(worst_other, no_bp);
    }
    std::printf("\nWorst case power-of-two strides: %u cycles "
                "(paper: 2)\n", worst_pow2);
    std::printf("Worst case other strides:        %u cycles "
                "(paper: at most 5; CVMS: 15)\n", worst_other);
    return 0;
}
