/**
 * @file
 * Figure 7 reproduction: comparative performance of copy, saxpy, and
 * scale with varying stride across the four memory systems.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pva;
    std::printf("Figure 7: comparative performance with varying stride\n");
    benchutil::printKernelsByStride(
        {KernelId::Copy, KernelId::Saxpy, KernelId::Scale},
        benchutil::parseJobs(argc, argv));
    return 0;
}
