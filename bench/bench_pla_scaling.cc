/**
 * @file
 * Section 4.3.1 reproduction: FirstHit PLA complexity vs bank count.
 *
 * "For systems that use a PLA to compute the firsthit index, the
 * complexity of the PLA grows as the square of the number of banks...
 * [with the K1 organization] the complexity of the PLA increases
 * approximately linearly with the number of banks."
 */

#include <cstdio>

#include "core/pla.hh"

int
main()
{
    using namespace pva;

    std::printf("FirstHit PLA product terms vs bank count\n");
    std::printf("%-8s %12s %12s %18s %18s\n", "banks", "FullKi",
                "K1Multiply", "FullKi/banks", "FullKi growth");
    std::size_t prev = 0;
    for (unsigned m = 2; m <= 8; ++m) {
        unsigned banks = 1u << m;
        FirstHitPla full(m, FirstHitPla::Variant::FullKi);
        FirstHitPla k1(m, FirstHitPla::Variant::K1Multiply);
        std::size_t terms = full.productTerms();
        std::printf("%-8u %12zu %12zu %18.2f %17.2fx\n", banks, terms,
                    k1.productTerms(),
                    static_cast<double>(terms) / banks,
                    prev ? static_cast<double>(terms) / prev : 0.0);
        prev = terms;
    }
    std::printf("\nFullKi terms grow ~4x per bank doubling (quadratic); "
                "K1Multiply terms grow 2x (linear), matching the "
                "section 4.3.1 scaling claims.\n");
    return 0;
}
