/**
 * @file
 * google-benchmark microbenchmarks of the FirstHit/NextHit math: the
 * software cost of the operations the PVA implements in hardware.
 */

#include <benchmark/benchmark.h>

#include "core/firsthit.hh"
#include "core/pla.hh"

namespace
{

using namespace pva;

void
BM_FirstHitWord(benchmark::State &state)
{
    const unsigned m = static_cast<unsigned>(state.range(0));
    VectorCommand v;
    v.base = 12345;
    v.stride = 19;
    v.length = 32;
    unsigned bank = 0;
    for (auto _ : state) {
        bank = (bank + 1) & ((1u << m) - 1);
        benchmark::DoNotOptimize(firstHitWord(v, bank, m));
    }
}
BENCHMARK(BM_FirstHitWord)->Arg(3)->Arg(4)->Arg(5);

void
BM_FirstHitBrute(benchmark::State &state)
{
    const unsigned m = static_cast<unsigned>(state.range(0));
    Geometry geo(1u << m, 1);
    VectorCommand v;
    v.base = 12345;
    v.stride = 19;
    v.length = 32;
    unsigned bank = 0;
    for (auto _ : state) {
        bank = (bank + 1) & ((1u << m) - 1);
        benchmark::DoNotOptimize(firstHitBrute(v, bank, geo));
    }
}
BENCHMARK(BM_FirstHitBrute)->Arg(3)->Arg(4)->Arg(5);

void
BM_PlaLookup(benchmark::State &state)
{
    const unsigned m = 4;
    FirstHitPla pla(m, state.range(0) == 0
                           ? FirstHitPla::Variant::FullKi
                           : FirstHitPla::Variant::K1Multiply);
    std::uint32_t d = 0;
    for (auto _ : state) {
        d = (d + 1) & 15;
        benchmark::DoNotOptimize(pla.lookup(19 & 15, d, 32));
    }
}
BENCHMARK(BM_PlaLookup)->Arg(0)->Arg(1);

void
BM_PlaBuild(benchmark::State &state)
{
    const unsigned m = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        FirstHitPla pla(m, FirstHitPla::Variant::FullKi);
        benchmark::DoNotOptimize(pla.productTerms());
    }
}
BENCHMARK(BM_PlaBuild)->Arg(4)->Arg(6)->Arg(8);

void
BM_NextHitRecursive(benchmark::State &state)
{
    std::uint32_t stride = 1;
    for (auto _ : state) {
        stride = stride % 127 + 1;
        benchmark::DoNotOptimize(nextHitRecursive(3, stride, 4, 128));
    }
}
BENCHMARK(BM_NextHitRecursive);

void
BM_ExpandBankIndices(benchmark::State &state)
{
    Geometry geo(16, static_cast<unsigned>(state.range(0)));
    VectorCommand v;
    v.base = 999;
    v.stride = 19;
    v.length = 32;
    for (auto _ : state)
        benchmark::DoNotOptimize(expandBankIndices(v, 5, geo));
}
BENCHMARK(BM_ExpandBankIndices)->Arg(1)->Arg(4);

} // anonymous namespace
