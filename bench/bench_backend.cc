/**
 * @file
 * Backend bandwidth comparison (docs/DEVICE.md): the legacy part vs
 * the SALP subarray device vs deferred refresh, on scenarios built to
 * stress exactly what each backend changes.
 *
 *  - subarrayRotation: a 2^26-word stride rotates through the four
 *    subarray groups of one internal bank, so every access lands on a
 *    closed row of the legacy part while SALP keeps all four rows
 *    open — the conflict-heavy case of EXPERIMENTS.md.
 *  - rowPingPong: two copy streams on rows 0 and 2048 of the same
 *    internal bank; every read/write command pair forces a legacy row
 *    cycle, SALP holds both rows open.
 *  - refreshPressure: a saturated copy under tREFI=781 auto-refresh.
 *    Deferral moves the refresh blackouts, it does not remove them,
 *    so on a saturated stream this is a neutrality check (the win of
 *    deferred refresh is request latency around the boundary, not
 *    streaming bandwidth — see docs/DEVICE.md).
 *
 * Usage: bench_backend [--out FILE]
 *
 * Prints a summary and writes the JSON record (the archived
 * BENCH_BACKEND.json format, schemaVersion 1) to FILE when --out is
 * given. Exits nonzero if SALP loses its structural win on the
 * rotation scenario — the same bar the unit test holds.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "kernels/sweep.hh"

using namespace pva;

namespace
{

struct Scenario
{
    const char *name;
    KernelId kernel;
    WorkloadConfig workload;
    SystemConfig base;      ///< Shared knobs (timing, checker)
    MemBackend contender;   ///< Backend compared against Legacy
    Cycle legacyCycles = 0;
    Cycle contenderCycles = 0;

    double gainPct() const
    {
        return legacyCycles == 0
                   ? 0.0
                   : 100.0 *
                         (1.0 - static_cast<double>(contenderCycles) /
                                    static_cast<double>(legacyCycles));
    }
};

Cycle
runBackend(const Scenario &s, MemBackend backend)
{
    SystemConfig cfg = s.base;
    cfg.backend = backend;
    auto sys = makeSystem(SystemKind::PvaSdram, cfg);
    RunResult r = runKernelOn(*sys, s.kernel, s.workload);
    if (r.mismatches != 0) {
        std::fprintf(stderr, "FATAL: %s mismatched on backend %s\n",
                     s.name, backendName(backend));
        std::exit(1);
    }
    return r.cycles;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    std::vector<Scenario> scenarios;
    {
        Scenario s{};
        s.name = "subarrayRotation";
        s.kernel = KernelId::Scale;
        s.workload.stride = 1u << 26;
        s.workload.elements = 2048;
        s.workload.streamBases = {0};
        s.base.timingCheck = true;
        s.contender = MemBackend::Salp;
        scenarios.push_back(s);
    }
    {
        Scenario s{};
        s.name = "rowPingPong";
        s.kernel = KernelId::Copy;
        s.workload.stride = 16;
        s.workload.elements = 2048;
        s.workload.streamBases = {0, 1ull << 26};
        s.base.timingCheck = true;
        s.contender = MemBackend::Salp;
        scenarios.push_back(s);
    }
    {
        Scenario s{};
        s.name = "refreshPressure";
        s.kernel = KernelId::Copy;
        s.workload.stride = 4;
        s.workload.elements = 8192;
        s.workload.streamBases = {0, 1 << 20};
        s.base.timing.tREFI = 781;
        s.base.timingCheck = true;
        s.contender = MemBackend::DeferredRefresh;
        scenarios.push_back(s);
    }

    std::printf("%-18s %-9s %10s %10s %8s\n", "scenario", "vs",
                "legacy", "backend", "gain");
    for (Scenario &s : scenarios) {
        s.legacyCycles = runBackend(s, MemBackend::Legacy);
        s.contenderCycles = runBackend(s, s.contender);
        std::printf("%-18s %-9s %10llu %10llu %7.1f%%\n", s.name,
                    backendName(s.contender),
                    static_cast<unsigned long long>(s.legacyCycles),
                    static_cast<unsigned long long>(s.contenderCycles),
                    s.gainPct());
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << "{\n  \"schemaVersion\": 1,\n"
            << "  \"tool\": \"bench_backend\",\n"
            << "  \"scenarios\": {\n";
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
            const Scenario &s = scenarios[i];
            out << "    \"" << s.name << "\": {\n"
                << "      \"backend\": \"" << backendName(s.contender)
                << "\",\n"
                << "      \"legacyCycles\": " << s.legacyCycles
                << ",\n"
                << "      \"backendCycles\": " << s.contenderCycles
                << ",\n"
                << "      \"gainPct\": " << s.gainPct() << "\n"
                << "    }" << (i + 1 < scenarios.size() ? "," : "")
                << "\n";
        }
        out << "  }\n}\n";
        std::printf("wrote %s\n", out_path.c_str());
    }

    // The acceptance bar: SALP's win on the rotation scenario is
    // structural (open rows vs a forced row cycle per access) and
    // must not erode.
    if (scenarios[0].gainPct() < 20.0) {
        std::fprintf(stderr,
                     "FAIL: subarrayRotation SALP gain %.1f%% < 20%%\n",
                     scenarios[0].gainPct());
        return 1;
    }
    return 0;
}
