/**
 * @file
 * Throughput-latency curves under multi-stream open-loop load
 * (docs/TRAFFIC.md).
 *
 * The paper evaluates the PVA on back-to-back kernel traces — a
 * closed-loop, single-client workload. This bench asks the serving
 * question instead: as aggregate offered load rises, where does each
 * memory system saturate and what do the latency tails do on the way?
 * Four open-loop streams with disjoint regions and a fixed <B,S,L>
 * distribution (strides 1..8, full 32-element vectors) offer
 * 2..120 requests per kilocycle in aggregate; the PVA's bank
 * controllers overlap the streams' row activations across banks, so
 * it should sustain several times the throughput of the serial
 * cache-line baseline before its queueing knee.
 *
 * The ladder runs on the SweepExecutor pool (--jobs N), one
 * simulation per (system, load) point, and prints one block per
 * system plus the achieved-throughput crossover summary. The exact
 * CSV/JSON artifact comes from `pva_loadgen --load-sweep`.
 */

#include <cstdio>

#include "bench_common.hh"
#include "traffic/traffic_runner.hh"

int
main(int argc, char **argv)
{
    using namespace pva;

    LoadSweepConfig sc;
    for (unsigned i = 0; i < 4; ++i) {
        StreamConfig s;
        s.name = csprintf("s%u", i);
        s.mode = ArrivalMode::OpenLoop;
        s.requests = 512;
        s.seed = 1 + i;
        s.pattern.regionBase =
            static_cast<WordAddr>(i) * s.pattern.regionWords;
        sc.base.streams.push_back(std::move(s));
    }
    sc.offeredLoads = {2, 5, 10, 20, 40, 60, 80, 120};
    sc.jobs = benchutil::parseJobs(argc, argv);

    std::vector<LoadPoint> points = runLoadSweep(sc);

    const std::size_t loads = sc.offeredLoads.size();
    for (std::size_t si = 0; si < sc.systems.size(); ++si) {
        std::printf("\n== %s: 4 open-loop streams, stride 1-8, "
                    "32-element vectors ==\n",
                    systemName(sc.systems[si]));
        std::printf("%9s %10s %9s | %8s %6s %6s %6s | %9s\n",
                    "offered", "achieved", "words/cy", "lat.mean",
                    "p50", "p95", "p99", "inflight");
        for (std::size_t li = 0; li < loads; ++li) {
            const LoadPoint &p = points[si * loads + li];
            if (p.failed) {
                std::printf("%9g %21s: %s\n", p.offered, "FAILED",
                            p.error.c_str());
                continue;
            }
            const TrafficResult &r = p.result;
            std::printf("%9g %10.2f %9.3f | %8.1f %6llu %6llu %6llu "
                        "| %9.2f\n",
                        p.offered, r.requestsPerKilocycle,
                        r.wordsPerCycle, r.totalLatency.mean,
                        static_cast<unsigned long long>(
                            r.totalLatency.p50),
                        static_cast<unsigned long long>(
                            r.totalLatency.p95),
                        static_cast<unsigned long long>(
                            r.totalLatency.p99),
                        r.meanInFlight);
        }
    }

    // Saturation summary: the highest achieved throughput per system.
    std::printf("\n== saturation (max achieved requests/kilocycle) "
                "==\n");
    double pva_peak = 0.0;
    for (std::size_t si = 0; si < sc.systems.size(); ++si) {
        double peak = 0.0;
        for (std::size_t li = 0; li < loads; ++li) {
            const LoadPoint &p = points[si * loads + li];
            if (!p.failed && p.result.requestsPerKilocycle > peak)
                peak = p.result.requestsPerKilocycle;
        }
        if (si == 0)
            pva_peak = peak;
        std::printf("%-24s %8.2f req/kc%s\n",
                    systemName(sc.systems[si]), peak,
                    si == 0 || peak <= 0.0
                        ? ""
                        : csprintf("  (pva x%.2f)", pva_peak / peak)
                              .c_str());
    }
    return 0;
}
