/**
 * @file
 * Figure 11 reproduction: vaxpy detail across strides and the five
 * relative vector alignments.
 *
 * (a) PVA SDRAM: bars annotated with execution time normalized to the
 *     leftmost bar (stride 1, alignment 0).
 * (b) PVA SRAM: the same grid, annotated relative to the corresponding
 *     PVA SDRAM bar — the "how well does the scheduler hide DRAM
 *     overheads" measurement; the paper's claim is within ~15%.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pva;

    const auto &strides = paperStrides();
    const auto &aligns = alignmentPresets();

    std::vector<SweepRequest> grid;
    for (std::uint32_t s : strides) {
        for (unsigned a = 0; a < aligns.size(); ++a) {
            for (SystemKind sys :
                 {SystemKind::PvaSdram, SystemKind::PvaSram}) {
                SweepRequest req;
                req.system = sys;
                req.kernel = KernelId::Vaxpy;
                req.stride = s;
                req.alignment = a;
                grid.push_back(req);
            }
        }
    }
    SweepExecutor executor(benchutil::parseJobs(argc, argv));
    std::vector<SweepPoint> points = executor.run(grid);

    std::vector<std::vector<Cycle>> sdram(strides.size()),
        sram(strides.size());
    std::size_t i = 0;
    for (std::size_t si = 0; si < strides.size(); ++si) {
        for (unsigned a = 0; a < aligns.size(); ++a) {
            sdram[si].push_back(points[i++].cycles);
            sram[si].push_back(points[i++].cycles);
        }
    }

    std::printf("Figure 11 (a): vaxpy on PVA SDRAM, cycles "
                "(normalized to stride 1 / %s)\n",
                aligns[0].name.c_str());
    std::printf("%-8s", "stride");
    for (const auto &al : aligns)
        std::printf(" %14s", al.name.c_str());
    std::printf("\n");
    double base = static_cast<double>(sdram[0][0]);
    for (std::size_t si = 0; si < strides.size(); ++si) {
        std::printf("%-8u", strides[si]);
        for (unsigned a = 0; a < aligns.size(); ++a) {
            std::printf(" %7llu(%4.0f%%)",
                        static_cast<unsigned long long>(sdram[si][a]),
                        100.0 * sdram[si][a] / base);
        }
        std::printf("\n");
    }

    std::printf("\nFigure 11 (b): vaxpy on PVA SRAM, cycles "
                "(normalized to the corresponding SDRAM bar)\n");
    std::printf("%-8s", "stride");
    for (const auto &al : aligns)
        std::printf(" %14s", al.name.c_str());
    std::printf("\n");
    double worst = 0.0;
    for (std::size_t si = 0; si < strides.size(); ++si) {
        std::printf("%-8u", strides[si]);
        for (unsigned a = 0; a < aligns.size(); ++a) {
            double rel = 100.0 * sram[si][a] / sdram[si][a];
            // SDRAM overhead hidden if SDRAM is within ~15% of SRAM,
            // i.e. rel >= 87%.
            worst = std::max(worst, 100.0 * sdram[si][a] / sram[si][a]);
            std::printf(" %7llu(%4.0f%%)",
                        static_cast<unsigned long long>(sram[si][a]),
                        rel);
        }
        std::printf("\n");
    }
    std::printf("\nWorst-case PVA SDRAM slowdown vs PVA SRAM: %.1f%% "
                "(paper: at most ~115%%)\n",
                worst);
    return 0;
}
