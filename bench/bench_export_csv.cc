/**
 * @file
 * Full-grid CSV export: every (system, kernel, stride, alignment) cell
 * of the chapter 6 evaluation as machine-readable rows, for plotting
 * the figures outside the repo. Writes pva_results.csv in the current
 * directory and echoes the row count.
 */

#include <cstdio>
#include <fstream>

#include "kernels/sweep.hh"

int
main()
{
    using namespace pva;

    std::ofstream csv("pva_results.csv");
    csv << "system,kernel,stride,alignment,cycles,mismatches\n";
    unsigned rows = 0;
    for (SystemKind sys :
         {SystemKind::PvaSdram, SystemKind::CacheLine,
          SystemKind::Gathering, SystemKind::PvaSram}) {
        for (KernelId k : allKernels()) {
            for (std::uint32_t s : paperStrides()) {
                for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
                    SweepPoint p = runPoint(sys, k, s, a);
                    csv << systemName(sys) << ','
                        << kernelSpec(k).name << ',' << s << ','
                        << alignmentPresets()[a].name << ',' << p.cycles
                        << ',' << p.mismatches << '\n';
                    ++rows;
                }
            }
        }
    }
    std::printf("wrote pva_results.csv: %u grid points "
                "(4 systems x 8 kernels x 6 strides x 5 alignments)\n",
                rows);
    return 0;
}
