/**
 * @file
 * Full-grid CSV export: every (system, kernel, stride, alignment) cell
 * of the chapter 6 evaluation as machine-readable rows, for plotting
 * the figures outside the repo. Writes pva_results.csv in the current
 * directory and echoes the row count.
 *
 * The grid runs on the SweepExecutor worker pool (--jobs N, default
 * all hardware threads); results are aggregated in issue order, so the
 * CSV is byte-identical to a serial (--jobs 1) run.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_common.hh"
#include "kernels/sweep_executor.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace pva;

    unsigned jobs = benchutil::parseJobs(argc, argv);

    std::vector<SweepRequest> grid = SweepExecutor::chapter6Grid();
    SweepExecutor executor(jobs);
    executor.onProgress([](const SweepProgress &p) {
        if (p.done % 160 == 0 || p.done == p.total)
            inform("sweep: %zu/%zu points done", p.done, p.total);
    });
    std::vector<SweepPoint> points = executor.run(grid);

    std::ofstream csv("pva_results.csv");
    writeCsv(csv, points);

    std::printf("wrote pva_results.csv: %zu grid points "
                "(4 systems x 8 kernels x 6 strides x 5 alignments) "
                "on %u worker(s)\n",
                points.size(), executor.jobs());
    executor.stats().dump(std::cout);
    return executor.stats().scalar("sweep.mismatches") == 0 ? 0 : 1;
}
