/**
 * @file
 * Bank-count scaling study (section 4.3.1): copy-kernel cycles as the
 * PVA grows from 4 to 64 banks, at unit, power-of-two, and prime
 * strides. More banks help strided access until the bus (16 data
 * cycles per line) becomes the bottleneck.
 */

#include <cstdio>

#include "kernels/sweep.hh"

int
main()
{
    using namespace pva;

    std::printf("PVA bank-count scaling: copy cycles (1024 elements)\n");
    std::printf("%-8s %11s %11s %11s %11s\n", "banks", "stride 1",
                "stride 8", "stride 16", "stride 19");
    for (unsigned banks : {4u, 8u, 16u, 32u, 64u}) {
        SystemConfig cfg;
        cfg.geometry = Geometry(banks, 1);
        std::printf("%-8u", banks);
        for (std::uint32_t s : {1u, 8u, 16u, 19u}) {
            SweepRequest req;
            req.kernel = KernelId::Copy;
            req.stride = s;
            req.config = cfg;
            SweepPoint p = runPoint(req);
            std::printf(" %11llu",
                        static_cast<unsigned long long>(p.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nStride 16 improves with bank count (fewer elements "
                "per bank); unit and prime\nstrides are bus-bound and "
                "flat beyond a handful of banks.\n");
    return 0;
}
