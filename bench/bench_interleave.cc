/**
 * @file
 * Interleaving-scheme study (the section 3.3 Hsu/Smith discussion):
 * word-interleaved vs block-interleaved PVA across strides. Block
 * interleave keeps unit-stride lines in one bank (good spatial
 * locality per device, the Hsu/Smith result for plain vector machines)
 * but loses the PVA's bank-level parallelism for strided access.
 */

#include <cstdio>

#include "kernels/sweep.hh"

int
main()
{
    using namespace pva;

    std::printf("Interleave factor vs stride: copy cycles "
                "(16 banks, 1024 elements)\n");
    std::printf("%-16s", "words/block");
    for (std::uint32_t s : paperStrides())
        std::printf(" %9u", s);
    std::printf("\n");

    for (unsigned n : {1u, 2u, 4u, 8u, 32u}) {
        SystemConfig cfg;
        cfg.geometry = Geometry(16, n);
        std::printf("%-16u", n);
        for (std::uint32_t s : paperStrides()) {
            SweepRequest req;
            req.kernel = KernelId::Copy;
            req.stride = s;
            req.config = cfg;
            SweepPoint p = runPoint(req);
            std::printf(" %9llu",
                        static_cast<unsigned long long>(p.cycles));
        }
        std::printf("\n");
    }
    std::printf("\nTradeoff: block interleave spreads power-of-two "
                "strides (whose low address bits\nvanish) across more "
                "banks — N=32 fixes the stride-16 single-bank "
                "hotspot — but\nslightly hurts unit stride by "
                "serializing each line in one bank, and needs N\n"
                "copies of the FirstHit logic per controller (section "
                "4.3.1). The paper's\nprototype picks word interleave "
                "for the cheapest FirstHit hardware.\n");
    return 0;
}
