/**
 * @file
 * Ablation of the access scheduler's design choices (chapter 5):
 *
 *  - Vector Context window size (the paper implements 4),
 *  - the ManageRow open-row policy vs always-close / always-open,
 *  - the section 5.2.3 bypass paths.
 *
 * Each row reports cycles for the vaxpy kernel (the paper's detail
 * kernel) at a row-friendly stride (1), a single-bank stride (16) and
 * a full-parallelism prime stride (19), alignment preset 0.
 */

#include <cstdio>

#include "kernels/sweep.hh"

namespace
{

using namespace pva;

void
row(const char *label, const SystemConfig &cfg)
{
    std::printf("%-34s", label);
    for (std::uint32_t s : {1u, 16u, 19u}) {
        SweepRequest req;
        req.system = SystemKind::PvaSdram;
        req.kernel = KernelId::Vaxpy;
        req.stride = s;
        req.config = cfg;
        SweepPoint p = runPoint(req);
        if (p.mismatches != 0)
            std::printf(" %11s", "MISMATCH");
        else
            std::printf(" %11llu",
                        static_cast<unsigned long long>(p.cycles));
    }
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    std::printf("Scheduler ablation: vaxpy cycles (1024 elements)\n");
    std::printf("%-34s %11s %11s %11s\n", "configuration", "stride 1",
                "stride 16", "stride 19");

    SystemConfig base;
    row("baseline (4 VCs, managed, bypass)", base);

    for (unsigned vcs : {1u, 2u, 8u}) {
        SystemConfig cfg;
        cfg.bc.vectorContexts = vcs;
        char label[64];
        std::snprintf(label, sizeof(label), "%u vector context%s", vcs,
                      vcs == 1 ? "" : "s");
        row(label, cfg);
    }

    {
        SystemConfig cfg;
        cfg.bc.rowPolicy = RowPolicy::AlwaysClose;
        row("always-close rows (closed page)", cfg);
        cfg.bc.rowPolicy = RowPolicy::AlwaysOpen;
        row("always-open rows (open page)", cfg);
    }

    {
        SystemConfig cfg;
        cfg.bc.bypassEnabled = false;
        row("bypass paths disabled", cfg);
    }

    {
        SystemConfig cfg;
        cfg.bc.fhcLatency = 4;
        row("4-cycle FirstHit multiply-add", cfg);
    }

    {
        SystemConfig cfg;
        cfg.timing.tREFI = 781; // 64 ms / 8192 rows at 100 MHz
        row("with auto-refresh (tREFI=781)", cfg);
    }

    std::printf("\nShape: the open-row policy dominates — a closed-page "
                "policy pays a full\nactivate per element and is ~4x "
                "worse at the single-bank stride 16, while the\n"
                "ManageRow predictor tracks the always-open optimum on "
                "these streaming kernels.\nVC count, bypasses, and FHC "
                "latency are second-order once the transaction\n"
                "pipeline is full; refresh costs ~1%% of cycles.\n");
    return 0;
}
