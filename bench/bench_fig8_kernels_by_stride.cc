/**
 * @file
 * Figure 8 reproduction: comparative performance of swap, tridiag, and
 * vaxpy (plus the unrolled copy2/scale2) with varying stride.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace pva;
    std::printf("Figure 8: comparative performance with varying stride "
                "(continued)\n");
    benchutil::printKernelsByStride({KernelId::Swap, KernelId::Tridiag,
                                     KernelId::Vaxpy, KernelId::Copy2,
                                     KernelId::Scale2},
                                    benchutil::parseJobs(argc, argv));
    return 0;
}
