/**
 * @file
 * Figure 8 reproduction: comparative performance of swap, tridiag, and
 * vaxpy (plus the unrolled copy2/scale2) with varying stride.
 */

#include "bench_common.hh"

int
main()
{
    using namespace pva;
    std::printf("Figure 8: comparative performance with varying stride "
                "(continued)\n");
    benchutil::printKernelsByStride({KernelId::Swap, KernelId::Tridiag,
                                     KernelId::Vaxpy, KernelId::Copy2,
                                     KernelId::Scale2});
    return 0;
}
