/**
 * @file
 * Pinned hot-path performance benchmark for the CI regression gate
 * (docs/PERFORMANCE.md). Two scenarios exercise the saturated tick
 * path — the regime the event core cannot skip, where raw
 * cycles/second is pure hot-loop cost:
 *
 *  - saturatedSweep: every kernel at stride 16 (the power-of-two worst
 *    case: all traffic serialized on a handful of banks, controllers
 *    busy nearly every processed cycle), 4096-element vectors, event
 *    clocking, serial executor;
 *  - trafficThroughput: four closed-loop streams driving the PVA
 *    system at full window occupancy through the arbiter.
 *
 * Every parameter is pinned so runs are comparable across commits;
 * each scenario runs --reps times (default 3) and the fastest rep is
 * reported, which discards scheduler noise on shared CI runners.
 *
 * Usage: bench_perf [--out FILE] [--reps N]
 *
 * Prints a human-readable summary and, with --out, writes the
 * versioned JSON record (schemaVersion 1) that scripts/check_perf.py
 * compares against the committed BENCH_PERF_BASELINE.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hh"
#include "traffic/traffic_runner.hh"

using namespace pva;

namespace
{

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Measurement
{
    const char *name = "";
    Cycle cycles = 0;      ///< Simulated cycles per rep
    double bestMillis = 0; ///< Fastest rep
    unsigned reps = 0;

    double cyclesPerSecond() const
    {
        return bestMillis > 0.0
                   ? 1000.0 * static_cast<double>(cycles) / bestMillis
                   : 0.0;
    }
};

/** All kernels at stride 16, event clocking, serial; total cycles. */
std::uint64_t
runSaturatedSweep(double &millis)
{
    std::vector<SweepRequest> grid;
    for (KernelId k : allKernels()) {
        SweepRequest req;
        req.kernel = k;
        req.stride = 16;
        req.elements = 4096;
        req.config.clocking = ClockingMode::Event;
        grid.push_back(req);
    }
    SweepExecutor executor(1); // serial: wall time measures the core
    auto t0 = std::chrono::steady_clock::now();
    SweepReport report = executor.runReport(grid);
    millis = millisSince(t0);
    std::uint64_t cycles = 0;
    for (const SweepPoint &p : report.points) {
        if (p.mismatches != 0)
            fatal("functional mismatch at stride 16");
        cycles += p.cycles;
    }
    return cycles;
}

/** Closed-loop saturating traffic through the arbiter. */
std::uint64_t
runTrafficThroughput(double &millis)
{
    TrafficConfig tc;
    tc.config.clocking = ClockingMode::Event;
    for (unsigned i = 0; i < 4; ++i) {
        StreamConfig s;
        s.mode = ArrivalMode::ClosedLoop;
        s.window = 8;
        s.requests = 1500;
        s.seed = 1 + i;
        s.pattern.regionBase = i * (1 << 20);
        tc.streams.push_back(std::move(s));
    }
    tc.limits.maxCycles = 100000000;
    auto t0 = std::chrono::steady_clock::now();
    TrafficResult r = runTraffic(tc);
    millis = millisSince(t0);
    return r.cycles;
}

Measurement
measure(const char *name, std::uint64_t (*run)(double &),
        unsigned reps)
{
    Measurement m;
    m.name = name;
    m.reps = reps;
    for (unsigned rep = 0; rep < reps; ++rep) {
        double millis = 0.0;
        std::uint64_t cycles = run(millis);
        if (rep == 0) {
            m.cycles = cycles;
            m.bestMillis = millis;
        } else {
            if (cycles != m.cycles)
                fatal("%s nondeterministic: rep %u simulated %llu "
                      "cycles, rep 0 simulated %llu",
                      name, rep,
                      static_cast<unsigned long long>(cycles),
                      static_cast<unsigned long long>(m.cycles));
            m.bestMillis = std::min(m.bestMillis, millis);
        }
    }
    return m;
}

void
jsonMeasurement(std::ostream &os, const Measurement &m)
{
    os << "    \"" << m.name << "\": {\n"
       << "      \"cycles\": " << m.cycles << ",\n"
       << "      \"bestMillis\": " << m.bestMillis << ",\n"
       << "      \"cyclesPerSecond\": "
       << static_cast<std::uint64_t>(m.cyclesPerSecond()) << ",\n"
       << "      \"reps\": " << m.reps << "\n"
       << "    }";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    unsigned reps = 3;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
        else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
    }
    if (reps == 0)
        reps = 1;

    Measurement sweep = measure("saturatedSweep", runSaturatedSweep,
                                reps);
    Measurement traffic = measure("trafficThroughput",
                                  runTrafficThroughput, reps);

    for (const Measurement *m : {&sweep, &traffic}) {
        std::printf("%-18s %9llu cycles, best of %u: %8.1f ms, "
                    "%.3g Mcycles/s\n",
                    m->name,
                    static_cast<unsigned long long>(m->cycles),
                    m->reps, m->bestMillis,
                    m->cyclesPerSecond() / 1e6);
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "cannot open %s\n",
                         out_path.c_str());
            return 1;
        }
        out << "{\n  \"schemaVersion\": 1,\n"
            << "  \"tool\": \"bench_perf\",\n"
            << "  \"scenarios\": {\n";
        jsonMeasurement(out, sweep);
        out << ",\n";
        jsonMeasurement(out, traffic);
        out << "\n  }\n}\n";
        std::printf("wrote %s\n", out_path.c_str());
    }
    return 0;
}
