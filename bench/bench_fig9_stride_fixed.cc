/**
 * @file
 * Figure 9 reproduction: comparative performance of all kernels at
 * strides 1 and 4.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    std::printf("Figure 9: comparative performance of all kernels with "
                "fixed stride\n");
    pva::benchutil::printStridesFixed(
        {1, 4}, pva::benchutil::parseJobs(argc, argv));
    return 0;
}
