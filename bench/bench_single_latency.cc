/**
 * @file
 * Unloaded single-command latency: cycles from submit to data return
 * for one isolated vector read, per stride, on the PVA SDRAM and PVA
 * SRAM systems. Complements the throughput-oriented figure benches:
 * this is the latency a single L2 miss would see.
 */

#include <cstdio>

#include "kernels/sweep.hh"
#include "sim/simulation.hh"

namespace
{

using namespace pva;

Cycle
singleReadLatency(bool sram, std::uint32_t stride)
{
    auto sys = makeSystem(sram ? SystemKind::PvaSram
                               : SystemKind::PvaSdram);
    Simulation sim;
    sim.add(sys.get());

    VectorCommand c;
    c.base = 12345;
    c.stride = stride;
    c.length = 32;
    c.isRead = true;
    sys->trySubmit(c, 0, nullptr);
    sim.runUntil([&] { return !sys->drainCompletions().empty(); });
    return sim.now();
}

} // anonymous namespace

int
main()
{
    std::printf("Unloaded 32-element vector read latency (cycles)\n");
    std::printf("%-8s %10s %10s %12s\n", "stride", "SDRAM", "SRAM",
                "DRAM cost");
    for (std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 19u, 32u, 33u}) {
        Cycle d = singleReadLatency(false, s);
        Cycle r = singleReadLatency(true, s);
        std::printf("%-8u %10llu %10llu %11lld\n", s,
                    static_cast<unsigned long long>(d),
                    static_cast<unsigned long long>(r),
                    static_cast<long long>(d - r));
    }
    std::printf("\nThe floor is 17 bus cycles (command + 16 data) plus "
                "the per-bank access time.\nDRAM exposes only ~3 cycles "
                "(one RAS+CAS; later activates overlap); strides that\n"
                "serialize one bank (16, 32) are slower on both "
                "technologies alike.\n");
    return 0;
}
