/**
 * @file
 * DRAM timing sensitivity: how well do the scheduling heuristics hide
 * slower DRAM? Sweeps RAS/CAS/precharge latencies and reports the
 * PVA SDRAM : PVA SRAM cycle ratio for vaxpy (the figure 11 (b)
 * question at other design points). A ratio near 1.0 means the
 * scheduler is hiding the DRAM overhead entirely.
 */

#include <cstdio>

#include "kernels/sweep.hh"

int
main()
{
    using namespace pva;

    struct TimingPoint
    {
        const char *name;
        SdramTiming t;
    };
    const TimingPoint points[] = {
        {"paper (2-2-2, tRAS 5)", {2, 2, 2, 5, 7, 2, 0, 10}},
        {"fast (1-1-1, tRAS 3)", {1, 1, 1, 3, 4, 1, 0, 10}},
        {"slow (3-3-3, tRAS 7)", {3, 3, 3, 7, 10, 3, 0, 10}},
        {"very slow (5-5-5, tRAS 12)", {5, 5, 5, 12, 17, 5, 0, 10}},
    };

    std::printf("DRAM timing sensitivity: vaxpy PVA-SDRAM/PVA-SRAM "
                "cycle ratio\n");
    std::printf("%-28s %10s %10s %10s\n", "timing", "stride 1",
                "stride 16", "stride 19");
    for (const TimingPoint &tp : points) {
        SystemConfig sdram_cfg;
        sdram_cfg.timing = tp.t;

        std::printf("%-28s", tp.name);
        for (std::uint32_t s : {1u, 16u, 19u}) {
            SweepRequest sdram_req;
            sdram_req.kernel = KernelId::Vaxpy;
            sdram_req.stride = s;
            sdram_req.config = sdram_cfg;
            SweepRequest sram_req = sdram_req;
            sram_req.system = SystemKind::PvaSram;
            sram_req.config = SystemConfig{};
            SweepPoint d = runPoint(sdram_req);
            SweepPoint r = runPoint(sram_req);
            std::printf(" %9.3fx",
                        static_cast<double>(d.cycles) / r.cycles);
        }
        std::printf("\n");
    }
    std::printf("\nUnit and prime strides stay near 1.0x (overheads "
                "hidden behind 16-bank\nparallelism); single-bank "
                "stride 16 degrades as DRAM latencies grow.\n");
    return 0;
}
