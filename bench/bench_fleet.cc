/**
 * @file
 * Hierarchical arbitration scaling benchmark (docs/TRAFFIC.md).
 *
 * The fleet arbiter's design claim is O(log n) work per grant: tenant
 * arbiters keep lazy heaps over their own streams, the root keeps
 * heaps over tenant bests, and idle streams cost nothing. This
 * harness measures that claim directly — closed-loop fleets from 10^2
 * to 10^5 streams, a fixed number of requests per stream, wall time
 * divided by grants issued. If per-grant cost were linear in streams,
 * the 10^5 point would be ~1000x the 10^2 point; logarithmic growth
 * keeps the ratio within a small factor.
 *
 * Everything is pinned (event clocking, FIFO policy, one shard so a
 * single arbiter instance carries the whole fleet, serial executor)
 * so the number is arbitration cost, not worker-pool throughput.
 *
 * Usage: bench_fleet [--out FILE] [--reps N] [--max-streams N]
 *
 * Prints a per-point table and, with --out, the versioned JSON record
 * (schemaVersion 1) the CI perf job archives as BENCH_FLEET.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/fleet_runner.hh"

using namespace pva;

namespace
{

struct Point
{
    std::uint64_t streams = 0;
    std::uint64_t tenants = 0;
    std::uint64_t grants = 0;
    Cycle cycles = 0;
    double bestMillis = 0.0;
    unsigned reps = 0;

    double nsPerGrant() const
    {
        return grants ? 1e6 * bestMillis / static_cast<double>(grants)
                      : 0.0;
    }
};

fleet::FleetConfig
configFor(std::uint64_t streams)
{
    // ~64 streams per tenant keeps both hierarchy levels populated;
    // tiny vectors and per-stream request counts keep the memory
    // system out of the way so the arbiter dominates the profile.
    fleet::FleetConfig fc;
    fc.config.clocking = ClockingMode::Event;
    fc.shards = 1;
    fc.jobs = 1;

    fleet::TenantSpec spec;
    spec.streamsPerTenant = 64;
    spec.count = static_cast<unsigned>(
        (streams + spec.streamsPerTenant - 1) / spec.streamsPerTenant);
    if (streams < spec.streamsPerTenant) {
        spec.count = 1;
        spec.streamsPerTenant = static_cast<unsigned>(streams);
    }
    spec.stream.mode = ArrivalMode::ClosedLoop;
    spec.stream.window = 1;
    spec.stream.requests = 2;
    spec.stream.queueCapacity = 4;
    spec.stream.pattern.minLength = 8;
    spec.stream.pattern.maxLength = 8;
    spec.stream.pattern.regionWords = 1 << 10;
    spec.regionStrideWords = 1 << 10;
    fc.tenants.push_back(spec);
    fc.limits.maxCycles = 2000000000ULL;
    return fc;
}

Point
measure(std::uint64_t streams, unsigned reps)
{
    const fleet::FleetConfig fc = configFor(streams);
    Point p;
    p.streams = static_cast<std::uint64_t>(fc.tenants[0].count) *
                fc.tenants[0].streamsPerTenant;
    p.tenants = fc.tenants[0].count;
    p.reps = reps;
    for (unsigned r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const fleet::FleetResult result = fleet::runFleet(fc);
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (r == 0 || ms < p.bestMillis)
            p.bestMillis = ms;
        p.grants = result.grants;
        p.cycles = result.cycles;
    }
    return p;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    unsigned reps = 3;
    std::uint64_t max_streams = 100000;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (!std::strcmp(argv[i], "--max-streams") &&
                   i + 1 < argc) {
            max_streams = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: bench_fleet [--out FILE] [--reps N] "
                         "[--max-streams N]\n");
            return 2;
        }
    }

    std::vector<Point> points;
    for (std::uint64_t n : {100ULL, 1000ULL, 10000ULL, 100000ULL}) {
        if (n > max_streams)
            break;
        points.push_back(measure(n, reps));
        const Point &p = points.back();
        std::printf("streams %7llu  tenants %5llu  grants %8llu  "
                    "best %9.2f ms  %8.1f ns/grant\n",
                    static_cast<unsigned long long>(p.streams),
                    static_cast<unsigned long long>(p.tenants),
                    static_cast<unsigned long long>(p.grants),
                    p.bestMillis, p.nsPerGrant());
        std::fflush(stdout);
    }

    if (points.size() >= 2) {
        const Point &lo = points.front();
        const Point &hi = points.back();
        const double streams_ratio =
            static_cast<double>(hi.streams) / lo.streams;
        const double cost_ratio =
            lo.nsPerGrant() > 0.0 ? hi.nsPerGrant() / lo.nsPerGrant()
                                  : 0.0;
        std::printf("scaling: %gx streams -> %.2fx ns/grant "
                    "(linear would be %gx)\n",
                    streams_ratio, cost_ratio, streams_ratio);
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         out_path.c_str());
            return 1;
        }
        out << "{\"schemaVersion\": 1, \"tool\": \"bench_fleet\", "
            << "\"reps\": " << reps << ", \"points\": [";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point &p = points[i];
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "%s{\"streams\": %llu, \"tenants\": %llu, "
                          "\"grants\": %llu, \"cycles\": %llu, "
                          "\"bestMillis\": %.3f, \"nsPerGrant\": %.1f}",
                          i ? ", " : "",
                          static_cast<unsigned long long>(p.streams),
                          static_cast<unsigned long long>(p.tenants),
                          static_cast<unsigned long long>(p.grants),
                          static_cast<unsigned long long>(p.cycles),
                          p.bestMillis, p.nsPerGrant());
            out << buf;
        }
        out << "]}\n";
    }
    return 0;
}
