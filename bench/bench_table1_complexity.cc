/**
 * @file
 * Table 1 reproduction: bank-controller hardware complexity.
 *
 * Prints the structural cost model's primitive counts for the paper's
 * prototype configuration (M = 16, 4 VCs, 8-entry FIFO, 8 outstanding
 * transactions, FullKi PLA) in the paper's Table 1 format, then shows
 * how the counts move when key parameters change.
 */

#include <iostream>

#include "core/complexity.hh"

int
main()
{
    using namespace pva;

    BcParameters def;
    std::cout << "Table 1: synthesis summary (structural cost model, "
                 "calibrated to the paper's prototype)\n\n";
    printTable1(std::cout, estimateBankController(def));

    std::cout << "\nScaling: total gates vs configuration\n";
    std::cout << "config                               gates      RAM\n";
    auto row = [](const char *label, const GateCounts &g) {
        std::printf("%-36s %7llu %7llu B\n", label,
                    static_cast<unsigned long long>(g.totalGates()),
                    static_cast<unsigned long long>(g.ramBytes));
    };
    row("default (M=16, 4 VCs, FullKi PLA)", estimateBankController(def));

    BcParameters p = def;
    p.plaVariant = FirstHitPla::Variant::K1Multiply;
    row("K1-multiply PLA", estimateBankController(p));

    p = def;
    p.vectorContexts = 8;
    row("8 vector contexts", estimateBankController(p));

    p = def;
    p.banks = 64;
    row("M=64 banks, FullKi PLA", estimateBankController(p));

    p = def;
    p.banks = 64;
    p.plaVariant = FirstHitPla::Variant::K1Multiply;
    row("M=64 banks, K1-multiply PLA", estimateBankController(p));

    return 0;
}
