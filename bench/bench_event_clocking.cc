/**
 * @file
 * Wall-clock benchmark of the wake-scheduled simulation core
 * (docs/SIMULATION.md): the same workloads run under
 * ClockingMode::Exhaustive and ClockingMode::Event, results are
 * checked for cycle-exact agreement, and the wall-time ratio is
 * reported. Two scenarios bracket the design space:
 *
 *  - the stride-16 kernel sweep (power-of-two worst case: serialized
 *    bank traffic, long quiescent stretches on the idle controllers);
 *  - low-load open-loop traffic (the latency-measurement regime of
 *    docs/TRAFFIC.md, where the machine is idle almost always and the
 *    event core skips nearly every cycle).
 *
 * Usage: bench_event_clocking [--out FILE]
 *
 * Prints a human-readable summary to stdout and writes the JSON
 * record (the committed BENCH_EVENT_CLOCKING.json format) to FILE
 * when --out is given.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hh"
#include "traffic/traffic_runner.hh"

using namespace pva;

namespace
{

double
millisSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

struct Scenario
{
    const char *name = "";
    double exhaustiveMillis = 0.0;
    double eventMillis = 0.0;
    Cycle cycles = 0;                ///< Simulated cycles (both modes)
    std::uint64_t simTicks = 0;      ///< Event mode: cycles processed
    std::uint64_t cyclesSkipped = 0; ///< Event mode: cycles jumped

    double speedup() const
    {
        return eventMillis > 0.0 ? exhaustiveMillis / eventMillis
                                 : 0.0;
    }
};

/** All kernels at stride 16, serial, one mode; returns total cycles. */
std::uint64_t
runStride16Sweep(ClockingMode mode, double &millis,
                 std::uint64_t &ticks, std::uint64_t &skipped)
{
    std::vector<SweepRequest> grid;
    for (KernelId k : allKernels()) {
        SweepRequest req;
        req.kernel = k;
        req.stride = 16;
        req.elements = 4096;
        req.config.clocking = mode;
        grid.push_back(req);
    }
    SweepExecutor executor(1); // serial: wall time measures the core
    auto t0 = std::chrono::steady_clock::now();
    SweepReport report = executor.runReport(grid);
    millis = millisSince(t0);
    ticks = report.simTicks;
    skipped = report.cyclesSkipped;
    std::uint64_t cycles = 0;
    for (const SweepPoint &p : report.points)
        cycles += p.cycles;
    return cycles;
}

/** Low-load open-loop traffic, one mode. */
std::uint64_t
runLowLoadTraffic(ClockingMode mode, double &millis,
                  std::uint64_t &ticks, std::uint64_t &skipped)
{
    TrafficConfig tc;
    tc.config.clocking = mode;
    for (unsigned i = 0; i < 2; ++i) {
        StreamConfig s;
        s.mode = ArrivalMode::OpenLoop;
        s.requestsPerKilocycle = 0.05; // one request per 20k cycles
        s.requests = 300;
        s.seed = 1 + i;
        s.pattern.regionBase = i * (1 << 20);
        tc.streams.push_back(std::move(s));
    }
    tc.limits.maxCycles = 100000000;
    auto t0 = std::chrono::steady_clock::now();
    TrafficResult r = runTraffic(tc);
    millis = millisSince(t0);
    ticks = r.simTicks;
    skipped = r.cyclesSkipped;
    return r.cycles;
}

Scenario
measure(const char *name,
        std::uint64_t (*run)(ClockingMode, double &, std::uint64_t &,
                             std::uint64_t &))
{
    Scenario s;
    s.name = name;
    std::uint64_t ex_ticks = 0, ex_skipped = 0;
    std::uint64_t ex_cycles =
        run(ClockingMode::Exhaustive, s.exhaustiveMillis, ex_ticks,
            ex_skipped);
    std::uint64_t ev_cycles = run(ClockingMode::Event, s.eventMillis,
                                  s.simTicks, s.cyclesSkipped);
    s.cycles = ex_cycles;
    if (ex_cycles != ev_cycles) {
        std::fprintf(stderr,
                     "FATAL: %s diverged: exhaustive %llu cycles, "
                     "event %llu cycles\n",
                     name,
                     static_cast<unsigned long long>(ex_cycles),
                     static_cast<unsigned long long>(ev_cycles));
        std::exit(1);
    }
    return s;
}

void
jsonScenario(std::ostream &os, const Scenario &s)
{
    os << "  \"" << s.name << "\": {\n"
       << "    \"exhaustiveMillis\": " << s.exhaustiveMillis << ",\n"
       << "    \"eventMillis\": " << s.eventMillis << ",\n"
       << "    \"speedup\": " << s.speedup() << ",\n"
       << "    \"cycles\": " << s.cycles << ",\n"
       << "    \"simTicks\": " << s.simTicks << ",\n"
       << "    \"cyclesSkipped\": " << s.cyclesSkipped << "\n"
       << "  }";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
            out_path = argv[++i];
    }

    Scenario sweep = measure("stride16Sweep", runStride16Sweep);
    Scenario traffic = measure("openLoopTraffic", runLowLoadTraffic);

    for (const Scenario *s : {&sweep, &traffic}) {
        std::printf("%-16s exhaustive %8.1f ms, event %8.1f ms, "
                    "speedup %5.1fx  (%llu cycles, %llu processed, "
                    "%llu skipped)\n",
                    s->name, s->exhaustiveMillis, s->eventMillis,
                    s->speedup(),
                    static_cast<unsigned long long>(s->cycles),
                    static_cast<unsigned long long>(s->simTicks),
                    static_cast<unsigned long long>(s->cyclesSkipped));
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << "{\n";
        jsonScenario(out, sweep);
        out << ",\n";
        jsonScenario(out, traffic);
        out << "\n}\n";
        std::printf("wrote %s\n", out_path.c_str());
    }

    // The acceptance bar: the idle-heavy scenario must be at least
    // 3x faster under event clocking.
    if (traffic.speedup() < 3.0) {
        std::fprintf(stderr,
                     "FAIL: open-loop traffic speedup %.2fx < 3x\n",
                     traffic.speedup());
        return 1;
    }
    return 0;
}
