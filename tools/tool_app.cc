#include "tool_app.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <utility>

#include "sim/sim_error.hh"
#include "sim/trace.hh"

namespace pva::tools
{

namespace
{

const char *
rowPolicyName(RowPolicy policy)
{
    switch (policy) {
      case RowPolicy::Managed: return "managed";
      case RowPolicy::AlwaysOpen: return "open";
      case RowPolicy::AlwaysClose: return "close";
    }
    return "?";
}

unsigned long long
parseNum(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0')
        fatal("%s expects a number, got '%s'", flag.c_str(),
              value.c_str());
    return n;
}

double
parseReal(const std::string &flag, const std::string &value)
{
    char *end = nullptr;
    double d = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0')
        fatal("%s expects a number, got '%s'", flag.c_str(),
              value.c_str());
    return d;
}

} // anonymous namespace

/**
 * The live trace session, kept behind a pointer so untraced builds
 * need no trace types at all and ToolApp's layout is identical in
 * both configurations.
 */
struct ToolApp::TraceState
{
#if PVA_TRACE_ENABLED
    std::optional<trace::TraceSession> session;
#endif
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

ToolApp::ToolApp(std::string tool_name)
    : name(std::move(tool_name)),
      traceState(std::make_unique<TraceState>())
{
}

ToolApp::~ToolApp() = default;

void
ToolApp::flag(const char *flag_name, const char *help,
              std::function<void()> handler)
{
    Spec s;
    s.name = flag_name;
    s.help = help;
    s.takesValue = false;
    s.apply = [handler = std::move(handler)](const std::string &,
                                             const std::string &) {
        handler();
    };
    specs.push_back(std::move(s));
}

void
ToolApp::option(const char *flag_name, const char *metavar,
                const char *help,
                std::function<void(const std::string &)> handler)
{
    Spec s;
    s.name = flag_name;
    s.metavar = metavar;
    s.help = help;
    s.takesValue = true;
    s.apply = [handler = std::move(handler)](const std::string &,
                                             const std::string &v) {
        handler(v);
    };
    specs.push_back(std::move(s));
}

void
ToolApp::numOption(const char *flag_name, const char *metavar,
                   const char *help,
                   std::function<void(unsigned long long)> handler)
{
    Spec s;
    s.name = flag_name;
    s.metavar = metavar;
    s.help = help;
    s.takesValue = true;
    s.apply = [handler = std::move(handler)](const std::string &f,
                                             const std::string &v) {
        handler(parseNum(f, v));
    };
    specs.push_back(std::move(s));
}

void
ToolApp::realOption(const char *flag_name, const char *metavar,
                    const char *help,
                    std::function<void(double)> handler)
{
    Spec s;
    s.name = flag_name;
    s.metavar = metavar;
    s.help = help;
    s.takesValue = true;
    s.apply = [handler = std::move(handler)](const std::string &f,
                                             const std::string &v) {
        handler(parseReal(f, v));
    };
    specs.push_back(std::move(s));
}

void
ToolApp::positional(const char *metavar,
                    std::function<void(const std::string &)> handler)
{
    positionalMetavar = metavar;
    positionalHandler = std::move(handler);
}

void
ToolApp::addSystemFlags(SystemConfig &config)
{
    configToValidate = &config;
    numOption("--banks", "N", "external bank count (power of two)",
              [&config](unsigned long long n) {
                  config.geometry =
                      Geometry(n, config.geometry.interleave());
              });
    numOption("--interleave", "N",
              "words per consecutive block in one bank",
              [&config](unsigned long long n) {
                  config.geometry =
                      Geometry(config.geometry.banks(), n);
              });
    numOption("--vcs", "N", "vector contexts per bank controller",
              [&config](unsigned long long n) {
                  config.bc.vectorContexts = n;
              });
    option("--row-policy", "managed|open|close",
           "bank-controller row management policy",
           [this, &config](const std::string &p) {
               if (p == "managed")
                   config.bc.rowPolicy = RowPolicy::Managed;
               else if (p == "open")
                   config.bc.rowPolicy = RowPolicy::AlwaysOpen;
               else if (p == "close")
                   config.bc.rowPolicy = RowPolicy::AlwaysClose;
               else
                   usage();
           });
    numOption("--refresh", "TREFI",
              "auto-refresh interval in cycles (0 = off)",
              [&config](unsigned long long n) {
                  config.timing.tREFI = n;
              });
    option("--backend", "legacy|salp|deferred",
           "memory-device backend (docs/DEVICE.md)",
           [&config](const std::string &v) {
               if (!parseMemBackend(v, config.backend))
                   fatal("--backend expects 'legacy', 'salp' or "
                         "'deferred', got '%s'", v.c_str());
           });
    numOption("--subarrays", "N",
              "row-buffer subarrays per internal bank (salp backend)",
              [&config](unsigned long long n) {
                  config.salpSubarrays = n;
              });
    numOption("--refresh-window", "N",
              "max cycles a refresh may move (deferred backend; "
              "0 = tREFI/2)",
              [&config](unsigned long long n) {
                  config.refreshDeferWindow = n;
              });
    option("--clocking", "exhaustive|event",
           "simulation clocking discipline",
           [&config](const std::string &mode) {
               if (!parseClockingMode(mode, config.clocking))
                   fatal("--clocking expects 'exhaustive' or "
                         "'event', got '%s'", mode.c_str());
           });
    flag("--check", "attach the redundant timing/data checker",
         [&config] { config.timingCheck = true; });
    option("--batching", "on|off",
           "batched bank-controller ticking (off = tick every BC "
           "every cycle, the reference behaviour)",
           [&config](const std::string &v) {
               if (v == "on")
                   config.batchTicking = true;
               else if (v == "off")
                   config.batchTicking = false;
               else
                   fatal("--batching expects 'on' or 'off', got '%s'",
                         v.c_str());
           });
    numOption("--fault-seed", "N", "fault-injection RNG seed",
              [&config](unsigned long long n) {
                  config.faults.seed = n;
              });
    realOption("--fault-refresh", "R", "refresh-stall fault rate",
               [&config](double r) {
                   config.faults.refreshStallRate = r;
               });
    realOption("--fault-bc-stall", "R",
               "bank-controller stall fault rate",
               [&config](double r) { config.faults.bcStallRate = r; });
    realOption("--fault-drop", "R", "dropped-transfer fault rate",
               [&config](double r) {
                   config.faults.dropTransferRate = r;
               });
    realOption("--fault-corrupt", "R", "FirstHit corruption fault rate",
               [&config](double r) {
                   config.faults.corruptFirstHitRate = r;
               });
}

void
ToolApp::addWorkloadFlags(ToolOptions &opts)
{
    option("--kernel", "NAME",
           "benchmark kernel (copy saxpy scale swap tridiag vaxpy "
           "copy2 scale2)",
           [&opts](const std::string &v) { opts.kernel = v; });
    numOption("--stride", "N", "element stride in words",
              [&opts](unsigned long long n) { opts.stride = n; });
    numOption("--alignment", "0-4", "stream base alignment preset",
              [&opts](unsigned long long n) { opts.alignment = n; });
    option("--system", "pva|cacheline|gathering|sram",
           "memory system under test",
           [&opts](const std::string &v) { opts.system = v; });
    numOption("--elements", "N", "vector elements per stream",
              [&opts](unsigned long long n) { opts.elements = n; });
}

void
ToolApp::addExecutorFlags(unsigned &jobs, unsigned &retries,
                          double &point_timeout)
{
    numOption("--jobs", "N", "sweep workers (0 = hardware threads)",
              [&jobs](unsigned long long n) { jobs = n; });
    numOption("--retries", "N", "attempt budget per sweep point",
              [&retries](unsigned long long n) { retries = n; });
    realOption("--point-timeout", "MS",
               "per-point wall-clock watchdog in milliseconds",
               [&point_timeout](double d) { point_timeout = d; });
}

void
ToolApp::addOutputFlags(bool &stats, bool &json)
{
    flag("--stats", "dump the full stat set as text",
         [&stats] { stats = true; });
    flag("--json", "emit the versioned JSON envelope (docs/API.md)",
         [&json] { json = true; });
}

void
ToolApp::addTraceFlags()
{
    traceFlagsAdded = true;
    option("--trace-out", "FILE",
           "write a Chrome/Perfetto event trace (needs PVA_TRACE=ON)",
           [this](const std::string &v) { trace.outPath = v; });
    option("--trace-filter", "GLOBS",
           "comma-separated track globs, e.g. 'bc*,pva/frontend'",
           [this](const std::string &v) { trace.filter = v; });
    numOption("--trace-buffer", "N",
              "trace buffer capacity in events (drops beyond)",
              [this](unsigned long long n) {
                  trace.bufferCap = n;
              });
    flag("--profile",
         "sampling profile of trace events, reported after the run "
         "(needs PVA_TRACE=ON)",
         [this] {
             if (trace.profilePeriod == 0)
                 trace.profilePeriod = 64;
         });
    numOption("--profile-period", "N",
              "sample every Nth trace event (implies --profile)",
              [this](unsigned long long n) {
                  if (n == 0 || n > UINT32_MAX)
                      fatal("--profile-period expects 1..2^32-1");
                  trace.profilePeriod =
                      static_cast<std::uint32_t>(n);
              });
}

const ToolApp::Spec *
ToolApp::find(const std::string &flag) const
{
    for (const Spec &s : specs) {
        if (s.name == flag)
            return &s;
    }
    return nullptr;
}

void
ToolApp::parse(int argc, char **argv)
{
    // Flag handlers and validate() can throw SimError(Config) (e.g.
    // the Geometry constructor on a non-power-of-two --banks); parse
    // runs before run()'s catch, so turn those into the same clean
    // one-line fatal here.
    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--help" || arg == "-h")
                usage();
            bool isFlag =
                arg.size() >= 2 && arg[0] == '-' && arg[1] == '-';
            if (!isFlag && positionalHandler) {
                positionalHandler(arg);
                continue;
            }
            const Spec *spec = find(arg);
            if (!spec)
                usage();
            if (!spec->takesValue) {
                spec->apply(arg, std::string());
                continue;
            }
            if (++i >= argc)
                usage();
            spec->apply(arg, argv[i]);
        }
        // Fail fast on unsupportable knob combinations.
        if (configToValidate)
            configToValidate->validate();
    } catch (const SimError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        std::exit(1);
    }
}

void
ToolApp::usage() const
{
    std::fprintf(stderr, "usage: %s [options]%s%s\n",
                 name.c_str(), positionalMetavar.empty() ? "" : " ",
                 positionalMetavar.c_str());
    for (const Spec &s : specs) {
        std::string head = s.name;
        if (s.takesValue)
            head += " " + s.metavar;
        std::fprintf(stderr, "  %-28s %s\n", head.c_str(),
                     s.help.c_str());
    }
    std::exit(2);
}

int
ToolApp::run(const std::function<int()> &body)
{
#if PVA_TRACE_ENABLED
    if (trace.active() || trace.profiling()) {
        trace::TraceConfig tc;
        tc.bufferCapacity = trace.bufferCap;
        tc.filter = trace.filter;
        tc.profilePeriod = trace.profilePeriod;
        traceState->session.emplace(tc);
        trace::setSession(&*traceState->session);
    }
#else
    if (trace.active())
        fatal("--trace-out needs a traced build; configure with "
              "-DPVA_TRACE=ON");
    if (trace.profiling())
        fatal("--profile needs a traced build; configure with "
              "-DPVA_TRACE=ON");
#endif

    int rc;
    try {
        rc = body();
    } catch (const SimError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }

#if PVA_TRACE_ENABLED
    if (traceState->session) {
        trace::setSession(nullptr);
        trace::TraceSession &s = *traceState->session;
        traceState->recorded = s.recorded();
        traceState->dropped = s.dropped();
        if (trace.profiling()) {
            // The sampling profile: where the simulation's activity
            // (as seen by the PVA_TRACE instrumentation) concentrated.
            std::vector<trace::ProfileEntry> report =
                s.profileReport();
            inform("profile: %llu samples (1 in %u events), top %zu "
                   "of %zu (track/event: samples ~events)",
                   static_cast<unsigned long long>(s.profileSamples()),
                   s.profilePeriod(),
                   std::min<std::size_t>(report.size(), 20),
                   report.size());
            for (std::size_t i = 0; i < report.size() && i < 20; ++i) {
                const trace::ProfileEntry &e = report[i];
                inform("  %s/%s %s: %llu ~%llu", e.process.c_str(),
                       e.track.c_str(), e.name ? e.name : "?",
                       static_cast<unsigned long long>(e.samples),
                       static_cast<unsigned long long>(
                           e.estimatedEvents));
            }
        }
        if (trace.active()) {
            std::ofstream out(trace.outPath);
            if (!out)
                fatal("cannot open '%s'", trace.outPath.c_str());
            s.exportChromeJson(out);
            inform("trace: %llu events (%llu dropped) on %zu tracks "
                   "-> %s",
                   static_cast<unsigned long long>(
                       traceState->recorded),
                   static_cast<unsigned long long>(
                       traceState->dropped),
                   s.trackCount(), trace.outPath.c_str());
        }
        traceState->session.reset();
    }
#endif
    return rc;
}

std::uint64_t
ToolApp::traceRecorded() const
{
#if PVA_TRACE_ENABLED
    if (traceState->session)
        return traceState->session->recorded();
#endif
    return traceState->recorded;
}

std::uint64_t
ToolApp::traceDropped() const
{
#if PVA_TRACE_ENABLED
    if (traceState->session)
        return traceState->session->dropped();
#endif
    return traceState->dropped;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += (c >= 0 && c < 0x20) ? ' ' : c;
    }
    out += '"';
    return out;
}

JsonEnvelope::JsonEnvelope(
    std::ostream &stream, const ToolApp &app,
    const SystemConfig &config,
    const std::vector<std::pair<std::string, std::string>>
        &config_extras)
    : os(stream)
{
    os << "{\"schemaVersion\": " << kJsonSchemaVersion
       << ", \"tool\": " << jsonQuote(app.toolName())
       << ", \"config\": {\"banks\": " << config.geometry.banks()
       << ", \"interleave\": " << config.geometry.interleave()
       << ", \"lineWords\": " << config.bc.lineWords
       << ", \"vectorContexts\": " << config.bc.vectorContexts
       << ", \"rowPolicy\": "
       << jsonQuote(rowPolicyName(config.bc.rowPolicy))
       << ", \"refreshInterval\": " << config.timing.tREFI
       << ", \"backend\": " << jsonQuote(backendName(config.backend))
       << ", \"clocking\": "
       << jsonQuote(clockingModeName(config.clocking))
       << ", \"timingCheck\": "
       << (config.timingCheck ? "true" : "false")
       << ", \"faultsEnabled\": "
       << (config.faults.enabled() ? "true" : "false");
    for (const auto &[key, raw] : config_extras)
        os << ", " << jsonQuote(key) << ": " << raw;
    os << "}";
}

JsonEnvelope::~JsonEnvelope()
{
    os << "}\n";
}

std::ostream &
JsonEnvelope::section(const char *key)
{
    os << ", \"" << key << "\": ";
    return os;
}

void
JsonEnvelope::traceSection(const ToolApp &app)
{
    if (!app.traceOptions().active())
        return;
    section("trace")
        << "{\"out\": " << jsonQuote(app.traceOptions().outPath)
        << ", \"recorded\": " << app.traceRecorded()
        << ", \"dropped\": " << app.traceDropped() << "}";
}

} // namespace pva::tools
