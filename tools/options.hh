/**
 * @file
 * Shared command-line parsing for the pva tools.
 *
 * Both pva_sim and pva_replay accept the same flag vocabulary; the
 * parser fills one SystemConfig (system construction knobs) plus the
 * workload selection (kernel, stride, alignment, elements) and tool
 * behaviour flags (--stats, --json, --sweep, --jobs, trace path).
 */

#ifndef PVA_TOOLS_OPTIONS_HH
#define PVA_TOOLS_OPTIONS_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/system_config.hh"
#include "kernels/sweep.hh"
#include "sim/logging.hh"

namespace pva::tools
{

/** Everything a tool invocation can configure. */
struct ToolOptions
{
    std::string kernel = "copy";
    std::string system = "pva";
    std::uint32_t stride = 19;
    unsigned alignment = 0;
    std::uint32_t elements = 1024;
    bool stats = false;     ///< Dump the stat set as text after the run
    bool json = false;      ///< Dump the stat set as JSON after the run
    bool sweep = false;     ///< pva_sim: run the full chapter 6 grid
    unsigned jobs = 0;      ///< Sweep workers (0 = hardware threads)
    unsigned retries = 3;   ///< Sweep attempt budget per point
    double pointTimeout = 0.0; ///< Per-point wall-clock watchdog (ms)
    std::string tracePath = "-"; ///< pva_replay positional argument
    SystemConfig config{};
};

[[noreturn]] inline void
usage(const char *text)
{
    std::fputs(text, stderr);
    std::exit(2);
}

/**
 * Parse argv into a ToolOptions, exiting with @p usage_text on any
 * unknown flag. A bare non-flag argument is taken as the trace path.
 */
inline ToolOptions
parseToolOptions(int argc, char **argv, const char *usage_text)
{
    ToolOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage(usage_text);
            return argv[i];
        };
        // Numeric flag values must be wholly numeric; fatal beats an
        // uncaught std::invalid_argument out of std::stoul.
        auto nextNum = [&]() -> unsigned long {
            std::string value = next();
            char *end = nullptr;
            unsigned long n = std::strtoul(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0')
                fatal("%s expects a number, got '%s'", arg.c_str(),
                      value.c_str());
            return n;
        };
        auto nextReal = [&]() -> double {
            std::string value = next();
            char *end = nullptr;
            double d = std::strtod(value.c_str(), &end);
            if (value.empty() || *end != '\0')
                fatal("%s expects a number, got '%s'", arg.c_str(),
                      value.c_str());
            return d;
        };
        if (arg == "--kernel") {
            opts.kernel = next();
        } else if (arg == "--stride") {
            opts.stride = nextNum();
        } else if (arg == "--alignment") {
            opts.alignment = nextNum();
        } else if (arg == "--system") {
            opts.system = next();
        } else if (arg == "--elements") {
            opts.elements = nextNum();
        } else if (arg == "--banks") {
            opts.config.geometry =
                Geometry(nextNum(),
                         opts.config.geometry.interleave());
        } else if (arg == "--interleave") {
            opts.config.geometry =
                Geometry(opts.config.geometry.banks(),
                         nextNum());
        } else if (arg == "--vcs") {
            opts.config.bc.vectorContexts = nextNum();
        } else if (arg == "--row-policy") {
            std::string p = next();
            if (p == "managed")
                opts.config.bc.rowPolicy = RowPolicy::Managed;
            else if (p == "open")
                opts.config.bc.rowPolicy = RowPolicy::AlwaysOpen;
            else if (p == "close")
                opts.config.bc.rowPolicy = RowPolicy::AlwaysClose;
            else
                usage(usage_text);
        } else if (arg == "--refresh") {
            opts.config.timing.tREFI = nextNum();
        } else if (arg == "--clocking") {
            std::string mode = next();
            if (!parseClockingMode(mode, opts.config.clocking))
                fatal("--clocking expects 'exhaustive' or 'event', "
                      "got '%s'", mode.c_str());
        } else if (arg == "--check") {
            opts.config.timingCheck = true;
        } else if (arg == "--fault-seed") {
            opts.config.faults.seed = nextNum();
        } else if (arg == "--fault-refresh") {
            opts.config.faults.refreshStallRate = nextReal();
        } else if (arg == "--fault-bc-stall") {
            opts.config.faults.bcStallRate = nextReal();
        } else if (arg == "--fault-drop") {
            opts.config.faults.dropTransferRate = nextReal();
        } else if (arg == "--fault-corrupt") {
            opts.config.faults.corruptFirstHitRate = nextReal();
        } else if (arg == "--retries") {
            opts.retries = nextNum();
        } else if (arg == "--point-timeout") {
            opts.pointTimeout = nextReal();
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--sweep") {
            opts.sweep = true;
        } else if (arg == "--jobs") {
            opts.jobs = nextNum();
        } else if (!arg.empty() && arg[0] != '-') {
            opts.tracePath = arg;
        } else if (arg == "-") {
            opts.tracePath = arg;
        } else {
            usage(usage_text);
        }
    }
    // Fail fast on unsupportable knob combinations (throws
    // SimError(Config); the tools' main() catches and reports it).
    opts.config.validate();
    return opts;
}

/** Map the --system name to a SystemKind; fatal on unknown names. */
inline SystemKind
systemKindFor(const ToolOptions &opts)
{
    for (SystemKind kind : allSystems()) {
        if (opts.system == systemShortName(kind))
            return kind;
    }
    fatal("unknown system '%s' (try: pva cacheline gathering sram)",
          opts.system.c_str());
}

/** Map the --kernel name to a KernelId; fatal on unknown names. */
inline KernelId
kernelFor(const ToolOptions &opts)
{
    for (KernelId k : allKernels()) {
        if (kernelSpec(k).name == opts.kernel)
            return k;
    }
    fatal("unknown kernel '%s' (try: copy saxpy scale swap tridiag "
          "vaxpy copy2 scale2)",
          opts.kernel.c_str());
}

/** Build the workload for the selected kernel/stride/alignment. */
inline WorkloadConfig
workloadFor(const ToolOptions &opts)
{
    if (opts.alignment >= alignmentPresets().size())
        fatal("alignment must be 0..%zu",
              alignmentPresets().size() - 1);
    const KernelSpec &spec = kernelSpec(kernelFor(opts));
    WorkloadConfig wl;
    wl.stride = opts.stride;
    wl.elements = opts.elements;
    wl.lineWords = opts.config.bc.lineWords;
    wl.streamBases = streamBases(alignmentPresets()[opts.alignment],
                                 spec.numStreams, opts.stride,
                                 opts.elements);
    return wl;
}

} // namespace pva::tools

#endif // PVA_TOOLS_OPTIONS_HH
