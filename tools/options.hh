/**
 * @file
 * Shared option state for the pva tools.
 *
 * ToolOptions is the knob bag pva_sim and pva_replay fill through the
 * ToolApp flag layer (tools/tool_app.hh): one SystemConfig (system
 * construction knobs) plus the workload selection (kernel, stride,
 * alignment, elements) and tool behaviour flags. The helpers map the
 * --system/--kernel names onto the simulator's enums and build the
 * workload for a selected grid point.
 */

#ifndef PVA_TOOLS_OPTIONS_HH
#define PVA_TOOLS_OPTIONS_HH

#include <string>

#include "core/system_config.hh"
#include "kernels/sweep.hh"
#include "sim/logging.hh"

namespace pva::tools
{

/** Everything a tool invocation can configure. */
struct ToolOptions
{
    std::string kernel = "copy";
    std::string system = "pva";
    std::uint32_t stride = 19;
    unsigned alignment = 0;
    std::uint32_t elements = 1024;
    bool stats = false;     ///< Dump the stat set as text after the run
    bool json = false;      ///< Emit the JSON envelope (docs/API.md)
    bool sweep = false;     ///< pva_sim: run the full chapter 6 grid
    unsigned jobs = 0;      ///< Sweep workers (0 = hardware threads)
    unsigned retries = 3;   ///< Sweep attempt budget per point
    double pointTimeout = 0.0; ///< Per-point wall-clock watchdog (ms)
    std::string checkpointPath; ///< Sweep journal (empty = disabled)
    bool resume = false;        ///< Restore completed points from it
    std::string quarantineDir;  ///< Repro capsules for failed points
    std::string reproPath;      ///< pva_replay: capsule to re-execute
    std::string tracePath = "-"; ///< pva_replay positional argument
    SystemConfig config{};
};

/** Map the --system name to a SystemKind; fatal on unknown names. */
inline SystemKind
systemKindFor(const ToolOptions &opts)
{
    for (SystemKind kind : allSystems()) {
        if (opts.system == systemShortName(kind))
            return kind;
    }
    fatal("unknown system '%s' (try: pva cacheline gathering sram)",
          opts.system.c_str());
}

/** Map the --kernel name to a KernelId; fatal on unknown names. */
inline KernelId
kernelFor(const ToolOptions &opts)
{
    for (KernelId k : allKernels()) {
        if (kernelSpec(k).name == opts.kernel)
            return k;
    }
    fatal("unknown kernel '%s' (try: copy saxpy scale swap tridiag "
          "vaxpy copy2 scale2)",
          opts.kernel.c_str());
}

/** Build the workload for the selected kernel/stride/alignment. */
inline WorkloadConfig
workloadFor(const ToolOptions &opts)
{
    if (opts.alignment >= alignmentPresets().size())
        fatal("alignment must be 0..%zu",
              alignmentPresets().size() - 1);
    const KernelSpec &spec = kernelSpec(kernelFor(opts));
    WorkloadConfig wl;
    wl.stride = opts.stride;
    wl.elements = opts.elements;
    wl.lineWords = opts.config.bc.lineWords;
    wl.streamBases = streamBases(alignmentPresets()[opts.alignment],
                                 spec.numStreams, opts.stride,
                                 opts.elements);
    return wl;
}

} // namespace pva::tools

#endif // PVA_TOOLS_OPTIONS_HH
