/**
 * @file
 * pva_sim — command-line driver for the kernel harness.
 *
 * Usage:
 *   pva_sim [--kernel NAME] [--stride N] [--alignment N]
 *           [--system pva|cacheline|gathering|sram] [--elements N]
 *           [--banks N] [--interleave N] [--vcs N]
 *           [--row-policy managed|open|close] [--refresh TREFI]
 *           [--stats] [--json] [--sweep] [--jobs N]
 *
 * Runs one grid point and prints the cycle count (and optionally the
 * full statistics dump, as text or JSON). With no arguments: copy,
 * stride 19, aligned, on the PVA prototype. With --sweep: runs the
 * full chapter 6 grid (under the configured system knobs) on a worker
 * pool and writes the CSV rows to stdout.
 */

#include <cstdio>
#include <iostream>

#include "kernels/runner.hh"
#include "kernels/sweep_executor.hh"
#include "options.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

const char *kUsage =
    "usage: pva_sim [--kernel NAME] [--stride N] [--alignment 0-4]\n"
    "               [--system pva|cacheline|gathering|sram]\n"
    "               [--elements N] [--banks N] [--interleave N]\n"
    "               [--vcs N] [--row-policy managed|open|close]\n"
    "               [--refresh TREFI] [--stats] [--json]\n"
    "               [--sweep] [--jobs N]\n";

int
runSweep(const ToolOptions &opts)
{
    SweepExecutor executor(opts.jobs);
    executor.onProgress([](const SweepProgress &p) {
        if (p.done % 160 == 0 || p.done == p.total)
            inform("sweep: %zu/%zu points done", p.done, p.total);
    });
    std::vector<SweepPoint> points = executor.run(
        SweepExecutor::chapter6Grid(opts.elements, opts.config));
    writeCsv(std::cout, points);
    if (opts.stats)
        executor.stats().dump(std::cerr);
    if (opts.json)
        executor.stats().dumpJson(std::cerr);
    return executor.stats().scalar("sweep.mismatches") == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ToolOptions opts = parseToolOptions(argc, argv, kUsage);
    if (opts.sweep)
        return runSweep(opts);

    KernelId kernel = kernelFor(opts);
    const KernelSpec &spec = kernelSpec(kernel);
    WorkloadConfig wl = workloadFor(opts);

    auto sys = makeSystem(systemKindFor(opts), opts.config);
    RunResult r = runKernelOn(*sys, kernel, wl);
    std::printf("%s stride=%u alignment=%s system=%s elements=%u: "
                "%llu cycles, %zu mismatches\n",
                spec.name.c_str(), opts.stride,
                alignmentPresets()[opts.alignment].name.c_str(),
                opts.system.c_str(), opts.elements,
                static_cast<unsigned long long>(r.cycles),
                r.mismatches);
    if (opts.stats)
        sys->stats().dump(std::cout);
    if (opts.json)
        sys->stats().dumpJson(std::cout);
    return r.mismatches == 0 ? 0 : 1;
}
