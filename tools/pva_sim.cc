/**
 * @file
 * pva_sim — command-line driver for the kernel harness.
 *
 * Usage:
 *   pva_sim [--kernel NAME] [--stride N] [--alignment N]
 *           [--system pva|cacheline|gathering|sram] [--elements N]
 *           [--banks N] [--interleave N] [--vcs N]
 *           [--row-policy managed|open|close] [--stats]
 *
 * Runs one grid point and prints the cycle count (and optionally the
 * full statistics dump). With no arguments: copy, stride 19, aligned,
 * on the PVA prototype.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "kernels/runner.hh"
#include "kernels/sweep.hh"
#include "sim/logging.hh"

using namespace pva;

namespace
{

KernelId
kernelByName(const std::string &name)
{
    for (KernelId k : allKernels()) {
        if (kernelSpec(k).name == name)
            return k;
    }
    fatal("unknown kernel '%s' (try: copy saxpy scale swap tridiag "
          "vaxpy copy2 scale2)",
          name.c_str());
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: pva_sim [--kernel NAME] [--stride N] [--alignment 0-4]\n"
        "               [--system pva|cacheline|gathering|sram]\n"
        "               [--elements N] [--banks N] [--interleave N]\n"
        "               [--vcs N] [--row-policy managed|open|close]\n"
        "               [--refresh TREFI] [--stats]\n");
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string kernel_name = "copy";
    std::string system_name = "pva";
    std::uint32_t stride = 19;
    unsigned alignment = 0;
    std::uint32_t elements = 1024;
    bool dump_stats = false;
    PvaConfig pva_cfg;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        if (arg == "--kernel") {
            kernel_name = next();
        } else if (arg == "--stride") {
            stride = std::stoul(next());
        } else if (arg == "--alignment") {
            alignment = std::stoul(next());
        } else if (arg == "--system") {
            system_name = next();
        } else if (arg == "--elements") {
            elements = std::stoul(next());
        } else if (arg == "--banks") {
            pva_cfg.geometry =
                Geometry(std::stoul(next()),
                         pva_cfg.geometry.interleave());
        } else if (arg == "--interleave") {
            pva_cfg.geometry = Geometry(pva_cfg.geometry.banks(),
                                        std::stoul(next()));
        } else if (arg == "--vcs") {
            pva_cfg.bc.vectorContexts = std::stoul(next());
        } else if (arg == "--row-policy") {
            std::string p = next();
            if (p == "managed")
                pva_cfg.bc.rowPolicy = RowPolicy::Managed;
            else if (p == "open")
                pva_cfg.bc.rowPolicy = RowPolicy::AlwaysOpen;
            else if (p == "close")
                pva_cfg.bc.rowPolicy = RowPolicy::AlwaysClose;
            else
                usage();
        } else if (arg == "--refresh") {
            pva_cfg.timing.tREFI = std::stoul(next());
        } else if (arg == "--stats") {
            dump_stats = true;
        } else {
            usage();
        }
    }

    KernelId kernel = kernelByName(kernel_name);
    const KernelSpec &spec = kernelSpec(kernel);
    if (alignment >= alignmentPresets().size())
        fatal("alignment must be 0..%zu", alignmentPresets().size() - 1);

    WorkloadConfig wl;
    wl.stride = stride;
    wl.elements = elements;
    wl.streamBases = streamBases(alignmentPresets()[alignment],
                                 spec.numStreams, stride, elements);

    std::unique_ptr<MemorySystem> sys;
    if (system_name == "pva") {
        sys = std::make_unique<PvaUnit>("pva", pva_cfg);
    } else if (system_name == "sram") {
        pva_cfg.useSram = true;
        sys = std::make_unique<PvaUnit>("sram", pva_cfg);
    } else if (system_name == "cacheline") {
        sys = makeSystem(SystemKind::CacheLine, "cacheline");
    } else if (system_name == "gathering") {
        sys = makeSystem(SystemKind::Gathering, "gathering");
    } else {
        usage();
    }

    RunResult r = runKernelOn(*sys, kernel, wl);
    std::printf("%s stride=%u alignment=%s system=%s elements=%u: "
                "%llu cycles, %zu mismatches\n",
                spec.name.c_str(), stride,
                alignmentPresets()[alignment].name.c_str(),
                system_name.c_str(), elements,
                static_cast<unsigned long long>(r.cycles),
                r.mismatches);
    if (dump_stats)
        sys->stats().dump(std::cout);
    return r.mismatches == 0 ? 0 : 1;
}
