/**
 * @file
 * pva_sim — command-line driver for the kernel harness.
 *
 * Usage:
 *   pva_sim [--kernel NAME] [--stride N] [--alignment N]
 *           [--system pva|cacheline|gathering|sram] [--elements N]
 *           [--banks N] [--interleave N] [--vcs N]
 *           [--row-policy managed|open|close] [--refresh TREFI]
 *           [--check] [--fault-seed N] [--fault-refresh R]
 *           [--fault-bc-stall R] [--fault-drop R] [--fault-corrupt R]
 *           [--retries N] [--point-timeout MS]
 *           [--stats] [--json] [--sweep] [--jobs N]
 *
 * Runs one grid point and prints the cycle count (and optionally the
 * full statistics dump, as text or JSON). With no arguments: copy,
 * stride 19, aligned, on the PVA prototype. With --sweep: runs the
 * full chapter 6 grid (under the configured system knobs) on a worker
 * pool and writes the CSV rows to stdout; each point is isolated by
 * the executor's retry/watchdog harness and the final SweepReport
 * accounts for every point (printed as JSON to stderr with --json).
 *
 * --check attaches the redundant TimingChecker; --fault-* enable
 * deterministic fault injection (see docs/ROBUSTNESS.md). Structured
 * simulation errors (SimError) exit with status 1 and a one-line
 * diagnostic instead of aborting.
 */

#include <cstdio>
#include <iostream>

#include "kernels/runner.hh"
#include "kernels/sweep_executor.hh"
#include "options.hh"
#include "sim/sim_error.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

const char *kUsage =
    "usage: pva_sim [--kernel NAME] [--stride N] [--alignment 0-4]\n"
    "               [--system pva|cacheline|gathering|sram]\n"
    "               [--elements N] [--banks N] [--interleave N]\n"
    "               [--vcs N] [--row-policy managed|open|close]\n"
    "               [--refresh TREFI] [--check]\n"
    "               [--clocking exhaustive|event]\n"
    "               [--fault-seed N] [--fault-refresh R]\n"
    "               [--fault-bc-stall R] [--fault-drop R]\n"
    "               [--fault-corrupt R] [--retries N]\n"
    "               [--point-timeout MS] [--stats] [--json]\n"
    "               [--sweep] [--jobs N]\n";

int
runSweep(const ToolOptions &opts)
{
    SweepExecutor executor(opts.jobs);
    executor.setMaxAttempts(opts.retries);
    executor.setPointTimeout(opts.pointTimeout);
    executor.onProgress([](const SweepProgress &p) {
        if (p.done % 160 == 0 || p.done == p.total)
            inform("sweep: %zu/%zu points done", p.done, p.total);
    });
    SweepReport report = executor.runReport(
        SweepExecutor::chapter6Grid(opts.elements, opts.config));
    writeCsv(std::cout, report.points);
    for (const PointFailure &f : report.failures) {
        warn("sweep point %zu (%s/%s stride %u alignment %u) failed "
             "after %u attempts: %s",
             f.index, systemShortName(f.system),
             kernelSpec(f.kernel).name.c_str(), f.stride, f.alignment,
             f.attempts, f.error.c_str());
    }
    if (opts.stats)
        executor.stats().dump(std::cerr);
    if (opts.json) {
        executor.stats().dumpJson(std::cerr);
        report.dumpJson(std::cerr);
    }
    bool clean = report.allOk() &&
                 executor.stats().scalar("sweep.mismatches") == 0;
    return clean ? 0 : 1;
}

int
runOnce(const ToolOptions &opts)
{
    KernelId kernel = kernelFor(opts);
    const KernelSpec &spec = kernelSpec(kernel);
    WorkloadConfig wl = workloadFor(opts);

    auto sys = makeSystem(systemKindFor(opts), opts.config);
    RunLimits limits;
    limits.clocking = opts.config.clocking;
    if (opts.pointTimeout > 0.0)
        limits.timeoutMillis = opts.pointTimeout;
    RunResult r = runKernelOn(*sys, kernel, wl, limits);
    std::printf("%s stride=%u alignment=%s system=%s elements=%u: "
                "%llu cycles, %zu mismatches\n",
                spec.name.c_str(), opts.stride,
                alignmentPresets()[opts.alignment].name.c_str(),
                opts.system.c_str(), opts.elements,
                static_cast<unsigned long long>(r.cycles),
                r.mismatches);
    std::printf("clocking=%s simTicks=%llu cyclesSkipped=%llu "
                "cyclesPerSecond=%llu\n",
                clockingModeName(opts.config.clocking),
                static_cast<unsigned long long>(r.simTicks),
                static_cast<unsigned long long>(r.cyclesSkipped),
                static_cast<unsigned long long>(r.cyclesPerSecond));
    if (opts.stats)
        sys->stats().dump(std::cout);
    if (opts.json)
        sys->stats().dumpJson(std::cout);
    return r.mismatches == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        ToolOptions opts = parseToolOptions(argc, argv, kUsage);
        return opts.sweep ? runSweep(opts) : runOnce(opts);
    } catch (const SimError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
