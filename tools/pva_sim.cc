/**
 * @file
 * pva_sim — command-line driver for the kernel harness.
 *
 * Runs one grid point and prints the cycle count, or with --sweep the
 * full chapter 6 grid (under the configured system knobs) on a worker
 * pool, writing the CSV rows to stdout; each point is isolated by the
 * executor's retry/watchdog harness and the final SweepReport
 * accounts for every point.
 *
 * Flags come from the shared ToolApp layer (tools/tool_app.hh), so
 * the vocabulary matches pva_replay and pva_loadgen; run `pva_sim
 * --help` for the generated list. --json replaces the human-readable
 * lines with one versioned JSON envelope (docs/API.md) on stdout
 * (single run) or stderr (--sweep, keeping the CSV on stdout);
 * --trace-out writes a Chrome/Perfetto event trace of the run
 * (docs/OBSERVABILITY.md, needs a PVA_TRACE=ON build).
 *
 * --check attaches the redundant TimingChecker; --fault-* enable
 * deterministic fault injection (see docs/ROBUSTNESS.md). Structured
 * simulation errors (SimError) exit with status 1 and a one-line
 * diagnostic instead of aborting.
 */

#include <cstdio>
#include <iostream>

#include "kernels/runner.hh"
#include "kernels/sweep_executor.hh"
#include "options.hh"
#include "tool_app.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

int
runSweep(const ToolApp &app, const ToolOptions &opts)
{
    SweepExecutor executor(opts.jobs);
    executor.setMaxAttempts(opts.retries);
    executor.setPointTimeout(opts.pointTimeout);
    executor.setCheckpoint(
        {opts.checkpointPath, opts.resume, opts.quarantineDir});
    executor.onProgress([](const SweepProgress &p) {
        if (p.done % 160 == 0 || p.done == p.total)
            inform("sweep: %zu/%zu points done", p.done, p.total);
    });
    SweepReport report = executor.runReport(
        SweepExecutor::chapter6Grid(opts.elements, opts.config));
    if (report.resumed > 0) {
        inform("sweep: restored %zu completed points from '%s'",
               report.resumed, opts.checkpointPath.c_str());
    }
    writeCsv(std::cout, report.points);
    for (const PointFailure &f : report.failures) {
        warn("sweep point %zu (%s/%s stride %u alignment %u) failed "
             "after %u attempts: %s",
             f.index, systemShortName(f.system),
             kernelSpec(f.kernel).name.c_str(), f.stride, f.alignment,
             f.attempts, f.error.c_str());
    }
    for (const QuarantineRecord &q : report.quarantine) {
        inform("quarantined point %zu: repro capsule %s "
               "(pva_replay --repro)",
               q.index, q.capsulePath.c_str());
    }
    if (opts.stats)
        executor.stats().dump(std::cerr);
    if (opts.json) {
        // The CSV owns stdout under --sweep; the envelope goes to
        // stderr so both can be captured independently.
        JsonEnvelope env(std::cerr, app, opts.config,
                         {{"elements", std::to_string(opts.elements)}});
        executor.stats().dumpJson(env.section("stats"));
        report.dumpJson(env.section("sweep"));
        env.traceSection(app);
    }
    bool clean = report.allOk() &&
                 executor.stats().scalar("sweep.mismatches") == 0;
    return clean ? 0 : 1;
}

int
runOnce(const ToolApp &app, const ToolOptions &opts)
{
    KernelId kernel = kernelFor(opts);
    const KernelSpec &spec = kernelSpec(kernel);
    WorkloadConfig wl = workloadFor(opts);

    auto sys = makeSystem(systemKindFor(opts), opts.config);
    RunLimits limits;
    limits.clocking = opts.config.clocking;
    if (opts.pointTimeout > 0.0)
        limits.timeoutMillis = opts.pointTimeout;
    RunResult r = runKernelOn(*sys, kernel, wl, limits);
    if (opts.json) {
        JsonEnvelope env(
            std::cout, app, opts.config,
            {{"kernel", jsonQuote(spec.name)},
             {"system", jsonQuote(opts.system)},
             {"stride", std::to_string(opts.stride)},
             {"alignment", std::to_string(opts.alignment)},
             {"elements", std::to_string(opts.elements)}});
        env.section("run")
            << "{\"cycles\": " << r.cycles
            << ", \"mismatches\": " << r.mismatches
            << ", \"simTicks\": " << r.simTicks
            << ", \"cyclesSkipped\": " << r.cyclesSkipped
            << ", \"cyclesPerSecond\": " << r.cyclesPerSecond << "}";
        sys->stats().dumpJson(env.section("stats"));
        env.traceSection(app);
    } else {
        std::printf("%s stride=%u alignment=%s system=%s elements=%u: "
                    "%llu cycles, %zu mismatches\n",
                    spec.name.c_str(), opts.stride,
                    alignmentPresets()[opts.alignment].name.c_str(),
                    opts.system.c_str(), opts.elements,
                    static_cast<unsigned long long>(r.cycles),
                    r.mismatches);
        std::printf("clocking=%s simTicks=%llu cyclesSkipped=%llu "
                    "cyclesPerSecond=%llu\n",
                    clockingModeName(opts.config.clocking),
                    static_cast<unsigned long long>(r.simTicks),
                    static_cast<unsigned long long>(r.cyclesSkipped),
                    static_cast<unsigned long long>(r.cyclesPerSecond));
    }
    if (opts.stats)
        sys->stats().dump(opts.json ? std::cerr : std::cout);
    return r.mismatches == 0 ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ToolOptions opts;
    ToolApp app("pva_sim");
    app.addWorkloadFlags(opts);
    app.addSystemFlags(opts.config);
    app.flag("--sweep", "run the full chapter 6 grid",
             [&opts] { opts.sweep = true; });
    app.option("--checkpoint", "FILE",
               "journal completed sweep points to FILE (JSONL, "
               "fsync'd per point; docs/ROBUSTNESS.md)",
               [&opts](const std::string &v) {
                   opts.checkpointPath = v;
               });
    app.flag("--resume",
             "restore completed points from the --checkpoint journal "
             "instead of rerunning them",
             [&opts] { opts.resume = true; });
    app.option("--quarantine-dir", "DIR",
               "write a standalone repro capsule per failed point "
               "into DIR (pva_replay --repro)",
               [&opts](const std::string &v) {
                   opts.quarantineDir = v;
               });
    app.addExecutorFlags(opts.jobs, opts.retries, opts.pointTimeout);
    app.addOutputFlags(opts.stats, opts.json);
    app.addTraceFlags();
    app.parse(argc, argv);
    if (opts.resume && opts.checkpointPath.empty())
        fatal("--resume needs --checkpoint FILE");
    if ((!opts.checkpointPath.empty() || !opts.quarantineDir.empty()) &&
        !opts.sweep) {
        fatal("--checkpoint/--quarantine-dir only apply to --sweep");
    }
    return app.run([&] {
        return opts.sweep ? runSweep(app, opts) : runOnce(app, opts);
    });
}
