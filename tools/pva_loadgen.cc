/**
 * @file
 * pva_loadgen — multi-stream traffic driver (docs/TRAFFIC.md).
 *
 * Usage:
 *   pva_loadgen [--streams N] [--policy fifo|rr|priority] [--aging N]
 *               [--mode closed|open] [--window N] [--rate R]
 *               [--requests N] [--seed S] [--queue-cap N]
 *               [--priority-ramp] [--read-frac F]
 *               [--min-stride N] [--max-stride N]
 *               [--min-length N] [--max-length N] [--region-words N]
 *               [--indirect] [--trace FILE]
 *               [--system pva|cacheline|gathering|sram]
 *               [--banks N] [--interleave N] [--vcs N] [--check]
 *               [--fault-seed N] [--fault-refresh R]
 *               [--fault-bc-stall R] [--fault-drop R]
 *               [--fault-corrupt R]
 *               [--load-sweep] [--loads A,B,C] [--systems a,b,c]
 *               [--jobs N] [--retries N] [--max-cycles N]
 *               [--point-timeout MS] [--stats] [--json] [--csv]
 *
 * Default: one traffic run (closed-loop, 4 streams, FIFO arbitration)
 * on the selected system; prints a human-readable service summary, or
 * the full per-stream JSON with --json, or the whole registered stat
 * set with --stats.
 *
 * With --load-sweep: forces every stream open-loop and runs the
 * offered-load ladder (--loads, aggregate requests per kilocycle)
 * across the systems of --systems on the SweepExecutor worker pool,
 * emitting the throughput-latency curves as CSV to stdout (or JSON
 * with --json). Points are deterministic for a given seed regardless
 * of --jobs; failed points survive as status=failed rows.
 *
 * Stream i gets seed (--seed + i) and, with --priority-ramp,
 * priority i (stream N-1 most urgent) for exercising the priority
 * policy's starvation guard.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "traffic/traffic_runner.hh"

using namespace pva;

namespace
{

const char *kUsage =
    "usage: pva_loadgen [--streams N] [--policy fifo|rr|priority]\n"
    "                   [--aging N] [--mode closed|open] [--window N]\n"
    "                   [--rate R] [--requests N] [--seed S]\n"
    "                   [--queue-cap N] [--priority-ramp]\n"
    "                   [--read-frac F] [--min-stride N]\n"
    "                   [--max-stride N] [--min-length N]\n"
    "                   [--max-length N] [--region-words N]\n"
    "                   [--indirect] [--trace FILE]\n"
    "                   [--system pva|cacheline|gathering|sram]\n"
    "                   [--banks N] [--interleave N] [--vcs N]\n"
    "                   [--check] [--clocking exhaustive|event]\n"
    "                   [--fault-seed N] [--fault-refresh R]\n"
    "                   [--fault-bc-stall R] [--fault-drop R]\n"
    "                   [--fault-corrupt R] [--load-sweep]\n"
    "                   [--loads A,B,C] [--systems a,b,c] [--jobs N]\n"
    "                   [--retries N] [--max-cycles N]\n"
    "                   [--point-timeout MS] [--stats] [--json]\n"
    "                   [--csv]\n";

[[noreturn]] void
usage()
{
    std::fputs(kUsage, stderr);
    std::exit(2);
}

/** Everything one pva_loadgen invocation configures. */
struct LoadgenOptions
{
    unsigned streams = 4;
    std::string policy = "fifo";
    Cycle aging = 1024;
    std::string mode = "closed";
    unsigned window = 4;
    double rate = 10.0;          ///< Per-stream open-loop rate
    std::uint64_t requests = 256;
    std::uint64_t seed = 1;
    unsigned queueCap = 16;
    bool priorityRamp = false;
    std::string tracePath;
    PatternConfig pattern;
    std::string system = "pva";
    std::string systems = "pva,cacheline,gathering";
    bool loadSweep = false;
    std::string loads = "2,5,10,20,40,80";
    unsigned jobs = 0;
    unsigned retries = 3;
    Cycle maxCycles = 50000000;
    double pointTimeout = 0.0;
    bool stats = false;
    bool json = false;
    bool csv = false;
    SystemConfig config{};
};

SystemKind
kindFor(const std::string &name)
{
    for (SystemKind kind : allSystems()) {
        if (name == systemShortName(kind))
            return kind;
    }
    fatal("unknown system '%s' (try: pva cacheline gathering sram)",
          name.c_str());
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

LoadgenOptions
parseOptions(int argc, char **argv)
{
    LoadgenOptions opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (++i >= argc)
                usage();
            return argv[i];
        };
        auto nextNum = [&]() -> unsigned long long {
            std::string value = next();
            char *end = nullptr;
            unsigned long long n =
                std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0')
                fatal("%s expects a number, got '%s'", arg.c_str(),
                      value.c_str());
            return n;
        };
        auto nextReal = [&]() -> double {
            std::string value = next();
            char *end = nullptr;
            double d = std::strtod(value.c_str(), &end);
            if (value.empty() || *end != '\0')
                fatal("%s expects a number, got '%s'", arg.c_str(),
                      value.c_str());
            return d;
        };
        if (arg == "--streams") {
            opts.streams = nextNum();
        } else if (arg == "--policy") {
            opts.policy = next();
        } else if (arg == "--aging") {
            opts.aging = nextNum();
        } else if (arg == "--mode") {
            opts.mode = next();
        } else if (arg == "--window") {
            opts.window = nextNum();
        } else if (arg == "--rate") {
            opts.rate = nextReal();
        } else if (arg == "--requests") {
            opts.requests = nextNum();
        } else if (arg == "--seed") {
            opts.seed = nextNum();
        } else if (arg == "--queue-cap") {
            opts.queueCap = nextNum();
        } else if (arg == "--priority-ramp") {
            opts.priorityRamp = true;
        } else if (arg == "--read-frac") {
            opts.pattern.readFraction = nextReal();
        } else if (arg == "--min-stride") {
            opts.pattern.minStride = nextNum();
        } else if (arg == "--max-stride") {
            opts.pattern.maxStride = nextNum();
        } else if (arg == "--min-length") {
            opts.pattern.minLength = nextNum();
        } else if (arg == "--max-length") {
            opts.pattern.maxLength = nextNum();
        } else if (arg == "--region-words") {
            opts.pattern.regionWords = nextNum();
        } else if (arg == "--indirect") {
            opts.pattern.mode = VectorCommand::Mode::Indirect;
        } else if (arg == "--trace") {
            opts.tracePath = next();
        } else if (arg == "--system") {
            opts.system = next();
        } else if (arg == "--systems") {
            opts.systems = next();
        } else if (arg == "--load-sweep") {
            opts.loadSweep = true;
        } else if (arg == "--loads") {
            opts.loads = next();
        } else if (arg == "--jobs") {
            opts.jobs = nextNum();
        } else if (arg == "--retries") {
            opts.retries = nextNum();
        } else if (arg == "--max-cycles") {
            opts.maxCycles = nextNum();
        } else if (arg == "--point-timeout") {
            opts.pointTimeout = nextReal();
        } else if (arg == "--banks") {
            opts.config.geometry =
                Geometry(nextNum(), opts.config.geometry.interleave());
        } else if (arg == "--interleave") {
            opts.config.geometry =
                Geometry(opts.config.geometry.banks(), nextNum());
        } else if (arg == "--vcs") {
            opts.config.bc.vectorContexts = nextNum();
        } else if (arg == "--check") {
            opts.config.timingCheck = true;
        } else if (arg == "--clocking") {
            std::string mode = next();
            if (!parseClockingMode(mode, opts.config.clocking))
                fatal("--clocking expects 'exhaustive' or 'event', "
                      "got '%s'", mode.c_str());
        } else if (arg == "--fault-seed") {
            opts.config.faults.seed = nextNum();
        } else if (arg == "--fault-refresh") {
            opts.config.faults.refreshStallRate = nextReal();
        } else if (arg == "--fault-bc-stall") {
            opts.config.faults.bcStallRate = nextReal();
        } else if (arg == "--fault-drop") {
            opts.config.faults.dropTransferRate = nextReal();
        } else if (arg == "--fault-corrupt") {
            opts.config.faults.corruptFirstHitRate = nextReal();
        } else if (arg == "--stats") {
            opts.stats = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--csv") {
            opts.csv = true;
        } else {
            usage();
        }
    }
    opts.config.validate();
    return opts;
}

TrafficConfig
trafficConfigFor(const LoadgenOptions &opts)
{
    TrafficConfig tc;
    tc.system = kindFor(opts.system);
    tc.config = opts.config;
    if (!parseArbPolicy(opts.policy, tc.arbiter.policy))
        fatal("unknown policy '%s' (try: fifo rr priority)",
              opts.policy.c_str());
    tc.arbiter.agingThreshold = opts.aging;
    tc.limits.maxCycles = opts.maxCycles;
    tc.limits.timeoutMillis = opts.pointTimeout;

    ArrivalMode mode;
    if (opts.mode == "closed")
        mode = ArrivalMode::ClosedLoop;
    else if (opts.mode == "open")
        mode = ArrivalMode::OpenLoop;
    else
        fatal("unknown mode '%s' (try: closed open)",
              opts.mode.c_str());
    if (!opts.tracePath.empty())
        mode = ArrivalMode::Trace;

    for (unsigned i = 0; i < opts.streams; ++i) {
        StreamConfig s;
        s.mode = mode;
        s.window = opts.window;
        s.requestsPerKilocycle = opts.rate;
        s.requests = opts.requests;
        s.priority = opts.priorityRamp ? i : 0;
        s.queueCapacity = opts.queueCap;
        s.seed = opts.seed + i;
        s.pattern = opts.pattern;
        // Disjoint regions keep the streams from aliasing each other.
        s.pattern.regionBase =
            opts.pattern.regionBase + i * opts.pattern.regionWords;
        s.tracePath = opts.tracePath;
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

int
runSweep(const LoadgenOptions &opts)
{
    LoadSweepConfig sc;
    sc.base = trafficConfigFor(opts);
    for (const std::string &l : splitCommas(opts.loads))
        sc.offeredLoads.push_back(std::strtod(l.c_str(), nullptr));
    sc.systems.clear();
    for (const std::string &s : splitCommas(opts.systems))
        sc.systems.push_back(kindFor(s));
    sc.jobs = opts.jobs;
    sc.retries = opts.retries;

    std::vector<LoadPoint> points = runLoadSweep(sc);
    if (opts.json)
        writeLoadJson(std::cout, points);
    else
        writeLoadCsv(std::cout, points);

    bool clean = true;
    for (const LoadPoint &p : points) {
        if (p.failed) {
            warn("load point %s @ %g req/kc failed after %u "
                 "attempts: %s",
                 systemShortName(p.system), p.offered, p.attempts,
                 p.error.c_str());
            clean = false;
        }
    }
    return clean ? 0 : 1;
}

int
runOnce(const LoadgenOptions &opts)
{
    TrafficConfig tc = trafficConfigFor(opts);
    TrafficResult r =
        runTraffic(tc, opts.stats ? &std::cerr : nullptr);

    if (opts.json) {
        r.dumpJson(std::cout);
        std::cout << '\n';
        return 0;
    }
    if (opts.csv) {
        LoadPoint p;
        p.system = tc.system;
        p.offered = opts.rate * opts.streams;
        p.result = r;
        writeLoadCsvHeader(std::cout);
        writeLoadCsvRow(std::cout, p);
        return 0;
    }

    std::printf("system=%s policy=%s streams=%zu: %llu requests "
                "(%llu words) in %llu cycles\n",
                systemShortName(tc.system),
                arbPolicyName(tc.arbiter.policy), tc.streams.size(),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.words),
                static_cast<unsigned long long>(r.cycles));
    std::printf("  throughput %.3f req/kcycle, %.3f words/cycle, "
                "mean in-flight %.2f, bc utilization %.1f%%\n",
                r.requestsPerKilocycle, r.wordsPerCycle,
                r.meanInFlight, 100.0 * r.bcUtilization);
    std::printf("  clocking=%s simTicks=%llu cyclesSkipped=%llu "
                "cyclesPerSecond=%llu\n",
                clockingModeName(tc.config.clocking),
                static_cast<unsigned long long>(r.simTicks),
                static_cast<unsigned long long>(r.cyclesSkipped),
                static_cast<unsigned long long>(r.cyclesPerSecond));
    auto line = [](const char *name, const LatencySummary &s) {
        std::printf("  %-8s mean %8.1f  p50 %6llu  p95 %6llu  "
                    "p99 %6llu  p999 %6llu  max %6llu\n",
                    name, s.mean,
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p95),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.p999),
                    static_cast<unsigned long long>(s.max));
    };
    line("queue", r.queueDelay);
    line("service", r.serviceLatency);
    line("total", r.totalLatency);
    for (const StreamResult &s : r.streams) {
        std::printf("  %s: %llu/%llu done, deferrals %llu, "
                    "queue peak %llu, total p99 %llu\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.deferrals),
                    static_cast<unsigned long long>(s.queuePeak),
                    static_cast<unsigned long long>(
                        s.totalLatency.p99));
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        LoadgenOptions opts = parseOptions(argc, argv);
        return opts.loadSweep ? runSweep(opts) : runOnce(opts);
    } catch (const SimError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
