/**
 * @file
 * pva_loadgen — multi-stream traffic driver (docs/TRAFFIC.md).
 *
 * Default: one traffic run (closed-loop, 4 streams, FIFO arbitration)
 * on the selected system; prints a human-readable service summary,
 * the versioned JSON envelope with --json (docs/API.md), a CSV row
 * with --csv, or the whole registered stat set with --stats.
 *
 * With --load-sweep: forces every stream open-loop and runs the
 * offered-load ladder (--loads, aggregate requests per kilocycle)
 * across the systems of --systems on the SweepExecutor worker pool,
 * emitting the throughput-latency curves as CSV to stdout (or JSON
 * with --json). Points are deterministic for a given seed regardless
 * of --jobs; failed points survive as status=failed rows.
 *
 * Stream i gets seed (--seed + i) and, with --priority-ramp,
 * priority i (stream N-1 most urgent) for exercising the priority
 * policy's starvation guard.
 *
 * Shared flags (system knobs, --clocking, --check, --fault-*,
 * --stats/--json, --trace-*) come from the ToolApp layer
 * (tools/tool_app.hh) with the same vocabulary as pva_sim and
 * pva_replay; run `pva_loadgen --help` for the generated list.
 * --trace-out writes a Chrome/Perfetto event trace of the run
 * (docs/OBSERVABILITY.md, needs a PVA_TRACE=ON build).
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "fleet/daemon.hh"
#include "fleet/scenario.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "tool_app.hh"
#include "traffic/traffic_runner.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

/** Everything one pva_loadgen invocation configures. */
struct LoadgenOptions
{
    unsigned streams = 4;
    std::string policy = "fifo";
    Cycle aging = 1024;
    std::string mode = "closed";
    unsigned window = 4;
    double rate = 10.0;          ///< Per-stream open-loop rate
    std::uint64_t requests = 256;
    std::uint64_t seed = 1;
    unsigned queueCap = 16;
    bool shed = false;           ///< Deadline/overload load shedding
    Cycle deadline = 0;          ///< Queueing-delay budget (cycles)
    double shedWatermark = 0.75; ///< Queue-depth shed fraction
    /** Explicit-set tracking so flag contradictions (a shed knob with
     *  shedding off) fail loudly instead of being silently ignored. */
    bool deadlineSet = false;
    bool watermarkSet = false;
    bool priorityRamp = false;
    std::string tracePath;
    PatternConfig pattern;
    std::string system = "pva";
    std::string systems = "pva,cacheline,gathering";
    bool loadSweep = false;
    std::string loads = "2,5,10,20,40,80";
    unsigned jobs = 0;
    unsigned retries = 3;
    Cycle maxCycles = 50000000;
    double pointTimeout = 0.0;
    bool stats = false;
    bool json = false;
    bool csv = false;
    // Fleet mode (docs/TRAFFIC.md "Fleet-scale traffic").
    bool fleet = false;
    unsigned tenants = 4;
    unsigned streamsPerTenant = 4;
    unsigned shards = 1;
    bool perStreamStats = false;
    std::string scenarioPath;
    // Daemon mode.
    bool serve = false;
    std::string spoolDir;
    std::string outDir;
    std::uint64_t pollMs = 200;
    std::uint64_t maxScenarios = 0;
    SystemConfig config{};
};

SystemKind
kindFor(const std::string &name)
{
    for (SystemKind kind : allSystems()) {
        if (name == systemShortName(kind))
            return kind;
    }
    fatal("unknown system '%s' (try: pva cacheline gathering sram)",
          name.c_str());
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        if (comma > start)
            out.push_back(list.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

void
addLoadgenFlags(ToolApp &app, LoadgenOptions &opts)
{
    app.numOption("--streams", "N", "concurrent request streams",
                  [&opts](unsigned long long n) { opts.streams = n; });
    app.option("--policy", "fifo|rr|priority", "arbitration policy",
               [&opts](const std::string &v) { opts.policy = v; });
    app.numOption("--aging", "N", "priority aging threshold (cycles)",
                  [&opts](unsigned long long n) { opts.aging = n; });
    app.option("--mode", "closed|open", "arrival process",
               [&opts](const std::string &v) { opts.mode = v; });
    app.numOption("--window", "N", "closed-loop window per stream",
                  [&opts](unsigned long long n) { opts.window = n; });
    app.realOption("--rate", "R",
                   "per-stream open-loop rate (req/kilocycle)",
                   [&opts](double d) { opts.rate = d; });
    app.numOption("--requests", "N", "requests per stream",
                  [&opts](unsigned long long n) { opts.requests = n; });
    app.numOption("--seed", "S", "base pattern seed (stream i: S+i)",
                  [&opts](unsigned long long n) { opts.seed = n; });
    app.numOption("--queue-cap", "N", "per-stream admission queue cap",
                  [&opts](unsigned long long n) { opts.queueCap = n; });
    app.option("--shed", "on|off",
               "deadline/overload load shedding (docs/TRAFFIC.md; "
               "default off, off is bit-identical to older builds)",
               [&opts](const std::string &v) {
                   if (v == "on")
                       opts.shed = true;
                   else if (v == "off")
                       opts.shed = false;
                   else
                       fatal("--shed takes on|off, not '%s'", v.c_str());
               });
    app.numOption("--deadline", "N",
                  "queueing-delay budget before a request is shed "
                  "(cycles; 0 = no deadline; needs --shed on)",
                  [&opts](unsigned long long n) {
                      opts.deadline = n;
                      opts.deadlineSet = true;
                  });
    app.realOption("--shed-watermark", "F",
                   "queue-depth fraction where overload shedding "
                   "starts (>= 1 disables; default 0.75; needs "
                   "--shed on)",
                   [&opts](double d) {
                       opts.shedWatermark = d;
                       opts.watermarkSet = true;
                   });
    app.flag("--priority-ramp",
             "give stream i priority i (N-1 most urgent)",
             [&opts] { opts.priorityRamp = true; });
    app.realOption("--read-frac", "F", "fraction of reads in 0..1",
                   [&opts](double d) { opts.pattern.readFraction = d; });
    app.numOption("--min-stride", "N", "minimum generated stride",
                  [&opts](unsigned long long n) {
                      opts.pattern.minStride = n;
                  });
    app.numOption("--max-stride", "N", "maximum generated stride",
                  [&opts](unsigned long long n) {
                      opts.pattern.maxStride = n;
                  });
    app.numOption("--min-length", "N", "minimum vector length",
                  [&opts](unsigned long long n) {
                      opts.pattern.minLength = n;
                  });
    app.numOption("--max-length", "N", "maximum vector length",
                  [&opts](unsigned long long n) {
                      opts.pattern.maxLength = n;
                  });
    app.numOption("--region-words", "N", "address region per stream",
                  [&opts](unsigned long long n) {
                      opts.pattern.regionWords = n;
                  });
    app.flag("--indirect", "generate indirect (vector-indexed) accesses",
             [&opts] {
                 opts.pattern.mode = VectorCommand::Mode::Indirect;
             });
    app.option("--trace", "FILE", "replay stream arrivals from FILE",
               [&opts](const std::string &v) { opts.tracePath = v; });
    app.option("--system", "pva|cacheline|gathering|sram",
               "memory system under test",
               [&opts](const std::string &v) { opts.system = v; });
    app.option("--systems", "a,b,c", "systems for --load-sweep",
               [&opts](const std::string &v) { opts.systems = v; });
    app.flag("--load-sweep", "run the offered-load ladder",
             [&opts] { opts.loadSweep = true; });
    app.option("--loads", "A,B,C",
               "offered loads (aggregate req/kilocycle)",
               [&opts](const std::string &v) { opts.loads = v; });
    app.numOption("--max-cycles", "N", "per-run simulated-cycle budget",
                  [&opts](unsigned long long n) {
                      opts.maxCycles = n;
                  });
    app.flag("--csv", "emit the run as a load-curve CSV row",
             [&opts] { opts.csv = true; });

    // Fleet and daemon modes (docs/TRAFFIC.md "Fleet-scale traffic").
    app.flag("--fleet",
             "run a sharded tenant fleet under hierarchical "
             "arbitration instead of a single flat run",
             [&opts] { opts.fleet = true; });
    app.numOption("--tenants", "N", "tenants in the fleet",
                  [&opts](unsigned long long n) { opts.tenants = n; });
    app.numOption("--streams-per-tenant", "N",
                  "request streams per tenant",
                  [&opts](unsigned long long n) {
                      opts.streamsPerTenant = n;
                  });
    app.numOption("--shards", "N",
                  "memory-system shards the fleet is partitioned "
                  "across (results are identical at any --jobs)",
                  [&opts](unsigned long long n) { opts.shards = n; });
    app.flag("--per-stream-stats",
             "keep per-stream counters in fleet mode (memory-heavy)",
             [&opts] { opts.perStreamStats = true; });
    app.option("--scenario", "FILE",
               "run one fleet scenario JSON file and print its "
               "versioned result line",
               [&opts](const std::string &v) { opts.scenarioPath = v; });
    app.flag("--serve",
             "daemon mode: poll --spool for scenario files, stream "
             "result lines, drain gracefully on SIGTERM",
             [&opts] { opts.serve = true; });
    app.option("--spool", "DIR", "scenario spool directory (--serve)",
               [&opts](const std::string &v) { opts.spoolDir = v; });
    app.option("--out-dir", "DIR",
               "also write per-scenario result files here (--serve)",
               [&opts](const std::string &v) { opts.outDir = v; });
    app.numOption("--poll-ms", "N",
                  "spool poll interval in milliseconds (--serve)",
                  [&opts](unsigned long long n) { opts.pollMs = n; });
    app.numOption("--max-scenarios", "N",
                  "exit after N scenarios (--serve; 0 = run until "
                  "signalled)",
                  [&opts](unsigned long long n) {
                      opts.maxScenarios = n;
                  });
}

/**
 * Reject contradictions instead of silently ignoring a knob: a shed
 * budget or watermark the user explicitly set does nothing while
 * shedding is off, which is exactly the kind of quiet misconfiguration
 * a capacity-planning run cannot afford.
 */
void
validateOptions(const LoadgenOptions &opts)
{
    if (!opts.shed && (opts.deadlineSet || opts.watermarkSet)) {
        throw SimError(
            SimErrorKind::Config, "loadgen", kNeverCycle,
            csprintf("%s has no effect while shedding is off; add "
                     "--shed on or drop the flag",
                     opts.deadlineSet ? "--deadline"
                                      : "--shed-watermark"));
    }
    if (opts.serve && opts.spoolDir.empty()) {
        throw SimError(SimErrorKind::Config, "loadgen", kNeverCycle,
                       "--serve requires --spool DIR");
    }
    if (!opts.serve &&
        (!opts.spoolDir.empty() || !opts.outDir.empty())) {
        throw SimError(SimErrorKind::Config, "loadgen", kNeverCycle,
                       "--spool/--out-dir only make sense with "
                       "--serve");
    }
    if (opts.fleet && opts.loadSweep) {
        throw SimError(SimErrorKind::Config, "loadgen", kNeverCycle,
                       "--fleet and --load-sweep are separate modes; "
                       "pick one");
    }
    if (!opts.tracePath.empty() && opts.fleet) {
        throw SimError(SimErrorKind::Config, "loadgen", kNeverCycle,
                       "--trace replay is not available in fleet "
                       "mode");
    }
}

TrafficConfig
trafficConfigFor(const LoadgenOptions &opts)
{
    TrafficConfig tc;
    tc.system = kindFor(opts.system);
    tc.config = opts.config;
    if (!parseArbPolicy(opts.policy, tc.arbiter.policy))
        fatal("unknown policy '%s' (try: fifo rr priority)",
              opts.policy.c_str());
    tc.arbiter.agingThreshold = opts.aging;
    tc.arbiter.shed.enabled = opts.shed;
    tc.arbiter.shed.defaultDeadline = opts.deadline;
    tc.arbiter.shed.queueHighWatermark = opts.shedWatermark;
    tc.limits.maxCycles = opts.maxCycles;
    tc.limits.timeoutMillis = opts.pointTimeout;

    ArrivalMode mode;
    if (opts.mode == "closed")
        mode = ArrivalMode::ClosedLoop;
    else if (opts.mode == "open")
        mode = ArrivalMode::OpenLoop;
    else
        fatal("unknown mode '%s' (try: closed open)",
              opts.mode.c_str());
    if (!opts.tracePath.empty())
        mode = ArrivalMode::Trace;

    for (unsigned i = 0; i < opts.streams; ++i) {
        StreamConfig s;
        s.mode = mode;
        s.window = opts.window;
        s.requestsPerKilocycle = opts.rate;
        s.requests = opts.requests;
        s.priority = opts.priorityRamp ? i : 0;
        s.queueCapacity = opts.queueCap;
        s.seed = opts.seed + i;
        s.pattern = opts.pattern;
        // Disjoint regions keep the streams from aliasing each other.
        s.pattern.regionBase =
            opts.pattern.regionBase + i * opts.pattern.regionWords;
        s.tracePath = opts.tracePath;
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

int
runSweep(const ToolApp &app, const LoadgenOptions &opts)
{
    LoadSweepConfig sc;
    sc.base = trafficConfigFor(opts);
    for (const std::string &l : splitCommas(opts.loads))
        sc.offeredLoads.push_back(std::strtod(l.c_str(), nullptr));
    sc.systems.clear();
    for (const std::string &s : splitCommas(opts.systems))
        sc.systems.push_back(kindFor(s));
    sc.jobs = opts.jobs;
    sc.retries = opts.retries;

    std::vector<LoadPoint> points = runLoadSweep(sc);
    if (opts.json) {
        JsonEnvelope env(std::cout, app, opts.config,
                         {{"loads", jsonQuote(opts.loads)},
                          {"systems", jsonQuote(opts.systems)},
                          {"streams", std::to_string(opts.streams)}});
        writeLoadJson(env.section("loadSweep"), points);
        env.traceSection(app);
    } else {
        writeLoadCsv(std::cout, points);
    }

    bool clean = true;
    for (const LoadPoint &p : points) {
        if (p.failed) {
            warn("load point %s @ %g req/kc failed after %u "
                 "attempts: %s",
                 systemShortName(p.system), p.offered, p.attempts,
                 p.error.c_str());
            clean = false;
        }
    }
    return clean ? 0 : 1;
}

int
runOnce(const ToolApp &app, const LoadgenOptions &opts)
{
    TrafficConfig tc = trafficConfigFor(opts);
    TrafficResult r =
        runTraffic(tc, opts.stats ? &std::cerr : nullptr);

    if (opts.json) {
        JsonEnvelope env(
            std::cout, app, opts.config,
            {{"system", jsonQuote(opts.system)},
             {"policy", jsonQuote(opts.policy)},
             {"mode", jsonQuote(opts.mode)},
             {"streams", std::to_string(opts.streams)},
             {"requests", std::to_string(opts.requests)}});
        r.dumpJson(env.section("traffic"));
        env.traceSection(app);
        return 0;
    }
    if (opts.csv) {
        LoadPoint p;
        p.system = tc.system;
        p.offered = opts.rate * opts.streams;
        p.result = r;
        writeLoadCsvHeader(std::cout);
        writeLoadCsvRow(std::cout, p);
        return 0;
    }

    std::printf("system=%s policy=%s streams=%zu: %llu requests "
                "(%llu words) in %llu cycles\n",
                systemShortName(tc.system),
                arbPolicyName(tc.arbiter.policy), tc.streams.size(),
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.words),
                static_cast<unsigned long long>(r.cycles));
    std::printf("  throughput %.3f req/kcycle, %.3f words/cycle, "
                "mean in-flight %.2f, bc utilization %.1f%%\n",
                r.requestsPerKilocycle, r.wordsPerCycle,
                r.meanInFlight, 100.0 * r.bcUtilization);
    if (r.shed > 0) {
        std::printf("  shed %llu requests (%.1f%% of consumed work) "
                    "to protect served latency\n",
                    static_cast<unsigned long long>(r.shed),
                    100.0 * r.shedRate);
    }
    std::printf("  clocking=%s simTicks=%llu cyclesSkipped=%llu "
                "cyclesPerSecond=%llu\n",
                clockingModeName(tc.config.clocking),
                static_cast<unsigned long long>(r.simTicks),
                static_cast<unsigned long long>(r.cyclesSkipped),
                static_cast<unsigned long long>(r.cyclesPerSecond));
    auto line = [](const char *name, const LatencySummary &s) {
        std::printf("  %-8s mean %8.1f  p50 %6llu  p95 %6llu  "
                    "p99 %6llu  p999 %6llu  max %6llu\n",
                    name, s.mean,
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p95),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.p999),
                    static_cast<unsigned long long>(s.max));
    };
    line("queue", r.queueDelay);
    line("service", r.serviceLatency);
    line("total", r.totalLatency);
    for (const StreamResult &s : r.streams) {
        std::printf("  %s: %llu/%llu done, deferrals %llu, "
                    "queue peak %llu, total p99 %llu\n",
                    s.name.c_str(),
                    static_cast<unsigned long long>(s.completed),
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.deferrals),
                    static_cast<unsigned long long>(s.queuePeak),
                    static_cast<unsigned long long>(
                        s.totalLatency.p99));
    }
    return 0;
}

fleet::FleetConfig
fleetConfigFor(const LoadgenOptions &opts)
{
    fleet::FleetConfig fc;
    fc.system = kindFor(opts.system);
    fc.config = opts.config;
    if (!parseArbPolicy(opts.policy, fc.arbiter.policy))
        fatal("unknown policy '%s' (try: fifo rr priority)",
              opts.policy.c_str());
    fc.arbiter.agingThreshold = opts.aging;
    fc.arbiter.shed.enabled = opts.shed;
    fc.arbiter.shed.defaultDeadline = opts.deadline;
    fc.arbiter.shed.queueHighWatermark = opts.shedWatermark;
    fc.limits.maxCycles = opts.maxCycles;
    fc.limits.timeoutMillis = opts.pointTimeout;
    fc.shards = opts.shards;
    fc.jobs = opts.jobs;
    fc.retries = opts.retries;
    fc.perStreamStats = opts.perStreamStats;

    fleet::TenantSpec spec;
    spec.count = opts.tenants;
    spec.streamsPerTenant = opts.streamsPerTenant;
    spec.stream.window = opts.window;
    spec.stream.requestsPerKilocycle = opts.rate;
    spec.stream.requests = opts.requests;
    spec.stream.queueCapacity = opts.queueCap;
    spec.stream.seed = opts.seed;
    spec.stream.pattern = opts.pattern;
    if (opts.mode == "closed")
        spec.stream.mode = ArrivalMode::ClosedLoop;
    else if (opts.mode == "open")
        spec.stream.mode = ArrivalMode::OpenLoop;
    else
        fatal("unknown mode '%s' (try: closed open)",
              opts.mode.c_str());
    // Disjoint per-stream regions, same policy as the flat path.
    spec.regionStrideWords = opts.pattern.regionWords;
    fc.tenants.push_back(std::move(spec));
    return fc;
}

int
runFleetOnce(const ToolApp &app, const LoadgenOptions &opts)
{
    const fleet::FleetConfig fc = fleetConfigFor(opts);
    const fleet::FleetResult r = fleet::runFleet(fc);

    if (opts.json) {
        JsonEnvelope env(
            std::cout, app, opts.config,
            {{"system", jsonQuote(opts.system)},
             {"policy", jsonQuote(opts.policy)},
             {"tenants", std::to_string(opts.tenants)},
             {"streamsPerTenant",
              std::to_string(opts.streamsPerTenant)},
             {"shards", std::to_string(fc.shards)}});
        r.dumpJson(env.section("fleet"));
        env.traceSection(app);
        return 0;
    }

    std::printf("fleet system=%s policy=%s tenants=%llu streams=%llu "
                "shards=%u\n",
                systemShortName(fc.system),
                arbPolicyName(fc.arbiter.policy),
                static_cast<unsigned long long>(r.tenants),
                static_cast<unsigned long long>(r.streams), r.shards);
    std::printf("  %llu requests (%llu words) in %llu cycles "
                "(makespan), %llu grants\n",
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.words),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.grants));
    std::printf("  throughput %.3f req/kcycle, %.3f words/cycle, "
                "mean in-flight %.2f\n",
                r.requestsPerKilocycle, r.wordsPerCycle,
                r.meanInFlight);
    if (r.shed > 0) {
        std::printf("  shed %llu requests (%.1f%% of consumed work)\n",
                    static_cast<unsigned long long>(r.shed),
                    100.0 * r.shedRate);
    }
    auto line = [](const char *name, const LatencySummary &s) {
        std::printf("  %-8s mean %8.1f  p50 %6llu  p95 %6llu  "
                    "p99 %6llu  p999 %6llu  max %6llu\n",
                    name, s.mean,
                    static_cast<unsigned long long>(s.p50),
                    static_cast<unsigned long long>(s.p95),
                    static_cast<unsigned long long>(s.p99),
                    static_cast<unsigned long long>(s.p999),
                    static_cast<unsigned long long>(s.max));
    };
    line("queue", r.queueDelay);
    line("service", r.serviceLatency);
    line("total", r.totalLatency);
    if (opts.stats) {
        for (const fleet::TenantResult &t : r.tenantResults) {
            std::printf("  %s (shard %u): %llu arrivals, %llu done, "
                        "deferrals %llu, shed %llu, queue peak %llu, "
                        "total p99 %llu\n",
                        t.name.c_str(), t.shard,
                        static_cast<unsigned long long>(t.arrivals),
                        static_cast<unsigned long long>(t.completed),
                        static_cast<unsigned long long>(t.deferrals),
                        static_cast<unsigned long long>(
                            t.shedDeadline + t.shedOverload),
                        static_cast<unsigned long long>(t.queuePeak),
                        static_cast<unsigned long long>(
                            t.totalLatency.p99));
        }
    }
    return 0;
}

int
runScenario(const LoadgenOptions &opts)
{
    fleet::Scenario scenario =
        fleet::loadScenarioFile(opts.scenarioPath);
    scenario.config.jobs = opts.jobs;
    scenario.config.retries = opts.retries;
    const fleet::FleetResult result = fleet::runFleet(scenario.config);
    fleet::writeScenarioResult(std::cout, scenario, result);
    return 0;
}

int
runServe(const LoadgenOptions &opts)
{
    fleet::DaemonConfig dc;
    dc.spoolDir = opts.spoolDir;
    dc.outDir = opts.outDir;
    dc.pollMillis = opts.pollMs;
    dc.maxScenarios = opts.maxScenarios;
    dc.jobs = opts.jobs;
    dc.retries = opts.retries;
    fleet::runDaemon(dc, std::cout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    LoadgenOptions opts;
    ToolApp app("pva_loadgen");
    addLoadgenFlags(app, opts);
    app.addSystemFlags(opts.config);
    app.addExecutorFlags(opts.jobs, opts.retries, opts.pointTimeout);
    app.addOutputFlags(opts.stats, opts.json);
    app.addTraceFlags();
    app.parse(argc, argv);
    return app.run([&] {
        validateOptions(opts);
        if (opts.serve)
            return runServe(opts);
        if (!opts.scenarioPath.empty())
            return runScenario(opts);
        if (opts.fleet)
            return runFleetOnce(app, opts);
        return opts.loadSweep ? runSweep(app, opts)
                              : runOnce(app, opts);
    });
}
