/**
 * @file
 * pva_replay — replay a vector-command trace file against a memory
 * system (see src/kernels/trace_file.hh for the format).
 *
 * Usage: pva_replay [--system pva|cacheline|gathering|sram] [--stats]
 *                   [trace-file | - for stdin]
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>

#include "kernels/sweep.hh"
#include "kernels/trace_file.hh"
#include "sim/logging.hh"

using namespace pva;

int
main(int argc, char **argv)
{
    std::string system_name = "pva";
    std::string path = "-";
    bool dump_stats = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--system" && i + 1 < argc) {
            system_name = argv[++i];
        } else if (arg == "--stats") {
            dump_stats = true;
        } else {
            path = arg;
        }
    }

    TraceFile trace;
    std::string error;
    bool ok;
    if (path == "-") {
        ok = parseTrace(std::cin, trace, error);
    } else {
        std::ifstream in(path);
        if (!in)
            fatal("cannot open '%s'", path.c_str());
        ok = parseTrace(in, trace, error);
    }
    if (!ok)
        fatal("%s: %s", path.c_str(), error.c_str());

    SystemKind kind;
    if (system_name == "pva")
        kind = SystemKind::PvaSdram;
    else if (system_name == "sram")
        kind = SystemKind::PvaSram;
    else if (system_name == "cacheline")
        kind = SystemKind::CacheLine;
    else if (system_name == "gathering")
        kind = SystemKind::Gathering;
    else
        fatal("unknown system '%s'", system_name.c_str());

    auto sys = makeSystem(kind, system_name);
    ReplayResult r = replayTrace(*sys, trace);
    std::printf("%llu commands in %llu cycles, read checksum "
                "%016llx\n",
                static_cast<unsigned long long>(r.commands),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.readChecksum));
    if (dump_stats)
        sys->stats().dump(std::cout);
    return 0;
}
