/**
 * @file
 * pva_replay — replay a vector-command trace file against a memory
 * system (see src/kernels/trace_file.hh for the format).
 *
 * Usage: pva_replay [--system pva|cacheline|gathering|sram]
 *                   [--banks N] [--interleave N] [--vcs N]
 *                   [--row-policy managed|open|close] [--refresh TREFI]
 *                   [--stats] [--json] [trace-file | - for stdin]
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "kernels/trace_file.hh"
#include "options.hh"
#include "sim/sim_error.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

const char *kUsage =
    "usage: pva_replay [--system pva|cacheline|gathering|sram]\n"
    "                  [--banks N] [--interleave N] [--vcs N]\n"
    "                  [--row-policy managed|open|close]\n"
    "                  [--refresh TREFI] [--clocking exhaustive|event]\n"
    "                  [--stats] [--json] [trace-file | - for stdin]\n";

} // anonymous namespace

namespace
{

int
runReplay(int argc, char **argv)
{
    ToolOptions opts = parseToolOptions(argc, argv, kUsage);

    TraceFile trace;
    std::string error;
    bool ok;
    if (opts.tracePath == "-") {
        ok = parseTrace(std::cin, trace, error);
    } else {
        std::ifstream in(opts.tracePath);
        if (!in)
            fatal("cannot open '%s'", opts.tracePath.c_str());
        ok = parseTrace(in, trace, error);
    }
    if (!ok)
        fatal("%s: %s", opts.tracePath.c_str(), error.c_str());

    auto sys = makeSystem(systemKindFor(opts), opts.config);
    ReplayResult r = replayTrace(*sys, trace, opts.config.clocking);
    std::printf("%llu commands in %llu cycles, read checksum "
                "%016llx\n",
                static_cast<unsigned long long>(r.commands),
                static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.readChecksum));
    if (opts.stats)
        sys->stats().dump(std::cout);
    if (opts.json)
        sys->stats().dumpJson(std::cout);
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    try {
        return runReplay(argc, argv);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    }
}
