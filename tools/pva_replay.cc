/**
 * @file
 * pva_replay — replay a vector-command trace file against a memory
 * system (see src/kernels/trace_file.hh for the format).
 *
 * Flags come from the shared ToolApp layer (tools/tool_app.hh) with
 * the same system/fault/trace vocabulary as pva_sim and pva_loadgen;
 * run `pva_replay --help` for the generated list. The one positional
 * argument is the trace file ('-' or absent reads stdin). --json
 * emits the versioned JSON envelope of docs/API.md; --trace-out
 * writes a Chrome/Perfetto event trace of the replay
 * (docs/OBSERVABILITY.md, needs a PVA_TRACE=ON build).
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "kernels/repro_capsule.hh"
#include "kernels/trace_file.hh"
#include "options.hh"
#include "sim/sim_error.hh"
#include "tool_app.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

int
runReplay(const ToolApp &app, const ToolOptions &opts)
{
    TraceFile trace;
    std::string error;
    bool ok;
    if (opts.tracePath == "-") {
        ok = parseTrace(std::cin, trace, error);
    } else {
        std::ifstream in(opts.tracePath);
        if (!in)
            fatal("cannot open '%s'", opts.tracePath.c_str());
        ok = parseTrace(in, trace, error);
    }
    if (!ok)
        fatal("%s: %s", opts.tracePath.c_str(), error.c_str());

    auto sys = makeSystem(systemKindFor(opts), opts.config);
    ReplayResult r = replayTrace(*sys, trace, opts.config.clocking);
    if (opts.json) {
        JsonEnvelope env(std::cout, app, opts.config,
                         {{"system", jsonQuote(opts.system)},
                          {"traceFile", jsonQuote(opts.tracePath)}});
        env.section("replay")
            << "{\"commands\": " << r.commands
            << ", \"cycles\": " << r.cycles << ", \"readChecksum\": "
            << jsonQuote(csprintf("%016llx",
                                  static_cast<unsigned long long>(
                                      r.readChecksum)))
            << "}";
        sys->stats().dumpJson(env.section("stats"));
        env.traceSection(app);
    } else {
        std::printf("%llu commands in %llu cycles, read checksum "
                    "%016llx\n",
                    static_cast<unsigned long long>(r.commands),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.readChecksum));
    }
    if (opts.stats)
        sys->stats().dump(opts.json ? std::cerr : std::cout);
    return 0;
}

/**
 * Re-execute a quarantine capsule (docs/ROBUSTNESS.md). Exit 0 when
 * the replay behaves as the capsule recorded — the same SimError for a
 * failure capsule, clean completion for an empty-error one — and 1
 * when the outcome diverges.
 */
int
runRepro(const ToolApp &app, const ToolOptions &opts)
{
    ReproCapsule capsule = loadCapsule(opts.reproPath);
    inform("repro: %s/%s stride %u alignment %u elements %u "
           "fingerprint %016llx",
           systemShortName(capsule.request.system),
           kernelSpec(capsule.request.kernel).name.c_str(),
           capsule.request.stride, capsule.request.alignment,
           capsule.request.elements,
           static_cast<unsigned long long>(capsule.fingerprint));
    std::string observed;
    SweepPoint point{};
    bool completed = false;
    try {
        point = replayCapsule(capsule);
        completed = true;
    } catch (const SimError &e) {
        observed = e.what();
    }

    bool reproduced = completed ? capsule.error.empty()
                                : sameSimError(observed, capsule.error);
    if (opts.json) {
        JsonEnvelope env(std::cout, app, capsule.request.config,
                         {{"capsule", jsonQuote(opts.reproPath)}});
        env.section("repro")
            << "{\"reproduced\": " << (reproduced ? "true" : "false")
            << ", \"completed\": " << (completed ? "true" : "false")
            << ", \"recordedError\": " << jsonQuote(capsule.error)
            << ", \"observedError\": " << jsonQuote(observed) << "}";
        env.traceSection(app);
    } else if (completed) {
        std::printf("replay completed cleanly (%llu cycles, %zu "
                    "mismatches); capsule recorded %s\n",
                    static_cast<unsigned long long>(point.cycles),
                    point.mismatches,
                    capsule.error.empty() ? "a clean run"
                                          : capsule.error.c_str());
    } else {
        std::printf("replay raised: %s\n", observed.c_str());
        std::printf("capsule recorded: %s\n", capsule.error.c_str());
    }
    if (reproduced) {
        inform("repro: outcome matches the capsule");
        return 0;
    }
    warn("repro: outcome DIVERGES from the capsule");
    return 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    ToolOptions opts;
    ToolApp app("pva_replay");
    app.option("--system", "pva|cacheline|gathering|sram",
               "memory system under test",
               [&opts](const std::string &v) { opts.system = v; });
    app.addSystemFlags(opts.config);
    app.option("--repro", "CAPSULE",
               "re-execute a quarantine repro capsule instead of a "
               "trace (docs/ROBUSTNESS.md); exit 0 iff the recorded "
               "outcome reproduces",
               [&opts](const std::string &v) { opts.reproPath = v; });
    app.addOutputFlags(opts.stats, opts.json);
    app.addTraceFlags();
    app.positional("[trace-file | - for stdin]",
                   [&opts](const std::string &v) {
                       opts.tracePath = v;
                   });
    app.parse(argc, argv);
    return app.run([&] {
        return opts.reproPath.empty() ? runReplay(app, opts)
                                      : runRepro(app, opts);
    });
}
