/**
 * @file
 * Shared application layer for the pva command-line tools.
 *
 * ToolApp is a declarative flag parser: each tool registers its flags
 * (name, metavar, help, handler) once, and the common flag sets —
 * system construction (--banks/--vcs/--row-policy/--refresh/
 * --clocking/--check/--fault-*), workload selection, executor knobs,
 * output selection (--stats/--json) and tracing (--trace-out/
 * --trace-filter/--trace-buffer) — come from one place, so pva_sim,
 * pva_replay and pva_loadgen accept the same vocabulary with the same
 * validation and the same generated usage text.
 *
 * run() wraps the tool body in the standard SimError/exception
 * handler and, when --trace-out was given (and tracing is compiled
 * in, see sim/trace.hh), opens a TraceSession around the body and
 * exports the Chrome trace JSON afterwards.
 *
 * JsonEnvelope implements the versioned JSON output API of
 * docs/API.md: every tool's --json output is one object of the form
 *   {"schemaVersion": 1, "tool": "...", "config": {...}, <sections>}
 * so downstream scripts parse a single shape across tools.
 */

#ifndef PVA_TOOLS_TOOL_APP_HH
#define PVA_TOOLS_TOOL_APP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "options.hh"

namespace pva::tools
{

/** Version of the JSON output API every tool emits (docs/API.md). */
constexpr int kJsonSchemaVersion = 1;

/** The shared --trace-* flag values. */
struct TraceOptions
{
    std::string outPath; ///< --trace-out; empty = tracing inactive
    std::string filter;  ///< --trace-filter component glob(s)
    std::size_t bufferCap = 1u << 19; ///< --trace-buffer (events)
    /** --profile / --profile-period: sampling period (0 = off). */
    std::uint32_t profilePeriod = 0;

    bool active() const { return !outPath.empty(); }
    bool profiling() const { return profilePeriod != 0; }
};

/** Declarative flag parser + tool lifecycle (see file comment). */
class ToolApp
{
  public:
    explicit ToolApp(std::string tool_name);
    ~ToolApp();

    /** @name Flag registration
     * Handlers run during parse(), in command-line order. @{ */
    /** A value-less switch, e.g. --check. */
    void flag(const char *name, const char *help,
              std::function<void()> handler);
    /** A string-valued option, e.g. --kernel NAME. */
    void option(const char *name, const char *metavar, const char *help,
                std::function<void(const std::string &)> handler);
    /** An unsigned-integer option; fatal on a non-numeric value. */
    void numOption(const char *name, const char *metavar,
                   const char *help,
                   std::function<void(unsigned long long)> handler);
    /** A real-valued option; fatal on a non-numeric value. */
    void realOption(const char *name, const char *metavar,
                    const char *help,
                    std::function<void(double)> handler);
    /** Accept one bare (non-flag) argument, e.g. a trace file path. */
    void positional(const char *metavar,
                    std::function<void(const std::string &)> handler);
    /** @} */

    /** @name Common flag sets @{ */
    /** --banks/--interleave/--vcs/--row-policy/--refresh/--clocking/
     *  --check/--fault-*; config is validated after parsing. */
    void addSystemFlags(SystemConfig &config);
    /** --kernel/--stride/--alignment/--system/--elements. */
    void addWorkloadFlags(ToolOptions &opts);
    /** --jobs/--retries/--point-timeout. */
    void addExecutorFlags(unsigned &jobs, unsigned &retries,
                          double &point_timeout);
    /** --stats/--json. */
    void addOutputFlags(bool &stats, bool &json);
    /** --trace-out/--trace-filter/--trace-buffer/--profile/
     *  --profile-period. */
    void addTraceFlags();
    /** @} */

    /**
     * Parse argv. Unknown flags (or a missing value) print the
     * generated usage text and exit(2). Any SystemConfig registered
     * via addSystemFlags() is validated afterwards.
     */
    void parse(int argc, char **argv);

    /** Print the generated usage text and exit(2). */
    [[noreturn]] void usage() const;

    const std::string &toolName() const { return name; }
    const TraceOptions &traceOptions() const { return trace; }

    /**
     * Run the tool body under the standard try/catch (SimError and
     * std::exception exit 1 with a one-line diagnostic) and the trace
     * session lifecycle: when --trace-out is set, a TraceSession is
     * installed before @p body and the Chrome trace JSON is written
     * (with an event/drop summary on stderr) after it. In a build
     * without PVA_TRACE, --trace-out is a fatal error instead of a
     * silent no-op.
     */
    int run(const std::function<int()> &body);

    /** Recorded/dropped counts of the active session (0 when off). */
    std::uint64_t traceRecorded() const;
    std::uint64_t traceDropped() const;

  private:
    struct Spec
    {
        std::string name;    ///< Including leading dashes
        std::string metavar; ///< Empty for value-less switches
        std::string help;
        std::function<void(const std::string &flag,
                           const std::string &value)> apply;
        bool takesValue = false;
    };

    const Spec *find(const std::string &flag) const;

    std::string name;
    std::vector<Spec> specs;
    std::string positionalMetavar;
    std::function<void(const std::string &)> positionalHandler;
    SystemConfig *configToValidate = nullptr;
    TraceOptions trace;
    bool traceFlagsAdded = false;

    struct TraceState; ///< Hides the session type from untraced builds
    std::unique_ptr<TraceState> traceState;
};

/**
 * Versioned JSON envelope (docs/API.md). The constructor opens the
 * object and writes schemaVersion/tool/config; section() appends
 * ', "<key>": ' and hands back the stream for the caller to write the
 * payload; the destructor closes the object.
 */
class JsonEnvelope
{
  public:
    /**
     * @param config_extras  extra key/value pairs merged into the
     *        "config" object; values are raw JSON (use jsonQuote for
     *        strings).
     */
    JsonEnvelope(std::ostream &os, const ToolApp &app,
                 const SystemConfig &config,
                 const std::vector<std::pair<std::string, std::string>>
                     &config_extras = {});
    ~JsonEnvelope();

    JsonEnvelope(const JsonEnvelope &) = delete;
    JsonEnvelope &operator=(const JsonEnvelope &) = delete;

    /** Start section @p key; caller writes one JSON value to the
     *  returned stream. */
    std::ostream &section(const char *key);

    /**
     * Append the "trace" accounting section (out path, recorded,
     * dropped); no-op when the app traced nothing.
     */
    void traceSection(const ToolApp &app);

  private:
    std::ostream &os;
};

/** Quote + escape @p s as a JSON string literal. */
std::string jsonQuote(const std::string &s);

} // namespace pva::tools

#endif // PVA_TOOLS_TOOL_APP_HH
