/**
 * @file
 * Trace-file parser and replay tests: grammar acceptance/rejection with
 * line-numbered errors, barrier semantics, functional replay, and
 * cross-system checksum agreement.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/cacheline_system.hh"
#include "core/pva_unit.hh"
#include "kernels/trace_file.hh"

namespace pva
{
namespace
{

TraceFile
mustParse(const std::string &text)
{
    std::istringstream in(text);
    TraceFile t;
    std::string error;
    EXPECT_TRUE(parseTrace(in, t, error)) << error;
    return t;
}

std::string
mustFail(const std::string &text)
{
    std::istringstream in(text);
    TraceFile t;
    std::string error;
    EXPECT_FALSE(parseTrace(in, t, error));
    return error;
}

TEST(TraceParser, AcceptsFullGrammar)
{
    TraceFile t = mustParse("# a comment\n"
                            "poke 0x10 42\n"
                            "read 100 19 32\n"
                            "\n"
                            "barrier\n"
                            "write 200 2 16 0xdead # trailing comment\n");
    ASSERT_EQ(t.ops.size(), 4u);
    EXPECT_EQ(t.ops[0].kind, TraceOp::Kind::Poke);
    EXPECT_EQ(t.ops[0].addr, 0x10u);
    EXPECT_EQ(t.ops[0].value, 42u);
    EXPECT_EQ(t.ops[1].kind, TraceOp::Kind::Read);
    EXPECT_EQ(t.ops[1].cmd.stride, 19u);
    EXPECT_EQ(t.ops[2].kind, TraceOp::Kind::Barrier);
    EXPECT_EQ(t.ops[3].kind, TraceOp::Kind::Write);
    EXPECT_EQ(t.ops[3].value, 0xdeadu);
}

TEST(TraceParser, RejectsWithLineNumbers)
{
    EXPECT_NE(mustFail("read 1 2\n").find("line 1"), std::string::npos);
    EXPECT_NE(mustFail("poke 1 2\nfrob 3\n").find("line 2"),
              std::string::npos);
    EXPECT_NE(mustFail("read 0 0 32\n").find("stride"),
              std::string::npos);
    EXPECT_NE(mustFail("read 0 1 33\n").find("length"),
              std::string::npos);
    EXPECT_NE(mustFail("read 0 1 bad\n").find("number"),
              std::string::npos);
    EXPECT_NE(mustFail("barrier 1\n").find("barrier"),
              std::string::npos);
    EXPECT_NE(mustFail("write 0 1 8\n").find("seed"), std::string::npos);
}

TEST(TraceReplay, WriteThenReadThroughBarrier)
{
    // The barrier orders the scatter before the gather, so the read
    // must see the written values.
    TraceFile t = mustParse("write 1000 19 32 500\n"
                            "barrier\n"
                            "read 1000 19 32\n");
    PvaUnit sys("pva", PvaConfig{});
    ReplayResult r = replayTrace(sys, t);
    EXPECT_EQ(r.commands, 2u);
    EXPECT_GT(r.cycles, 0u);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(sys.memory().read(1000 + 19ull * i), 500 + i);
}

TEST(TraceReplay, PokeSeedsMemoryForReads)
{
    TraceFile t = mustParse("poke 64 7\n"
                            "read 64 1 1\n");
    PvaUnit a("a", PvaConfig{});
    ReplayResult ra = replayTrace(a, t);

    // Same trace without the poke gathers different (background) data.
    TraceFile t2 = mustParse("read 64 1 1\n");
    PvaUnit b("b", PvaConfig{});
    ReplayResult rb = replayTrace(b, t2);
    EXPECT_NE(ra.readChecksum, rb.readChecksum);
}

TEST(TraceReplay, ChecksumAgreesAcrossSystems)
{
    // Functional behaviour is system independent: the PVA and the
    // cache-line baseline must gather identical data.
    const std::string text = "poke 5 123\n"
                             "write 2000 7 32 900\n"
                             "barrier\n"
                             "read 2000 7 32\n"
                             "read 0 3 32\n"
                             "barrier\n"
                             "read 2000 7 16\n";
    TraceFile t = mustParse(text);
    PvaUnit pva("pva", PvaConfig{});
    CacheLineSystem cl("cl");
    ReplayResult rp = replayTrace(pva, t);
    ReplayResult rc = replayTrace(cl, t);
    EXPECT_EQ(rp.readChecksum, rc.readChecksum);
    EXPECT_EQ(rp.commands, rc.commands);
    EXPECT_NE(rp.cycles, rc.cycles) << "timing differs, data agrees";
}

TEST(TraceReplay, ManyCommandsRespectTransactionLimit)
{
    std::ostringstream text;
    for (int i = 0; i < 100; ++i)
        text << "read " << i * 32 << " 1 32\n";
    TraceFile t = mustParse(text.str());
    PvaUnit sys("pva", PvaConfig{});
    ReplayResult r = replayTrace(sys, t);
    EXPECT_EQ(r.commands, 100u);
    // Bus-bound lower bound: 100 lines x 17 bus cycles.
    EXPECT_GT(r.cycles, 1700u);
}

} // anonymous namespace
} // namespace pva
