/**
 * @file
 * Differential tests for the wake-scheduled (event) simulation core:
 * ClockingMode::Event must reproduce the exhaustive stepper exactly —
 * identical cycle counts, completions, and statistics — on every
 * system kind, with the protocol checker attached, across refresh
 * schedules, deterministic fault timelines, and the traffic subsystem,
 * while actually skipping idle cycles where the workload allows.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "kernels/runner.hh"
#include "kernels/sweep.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"
#include "traffic/traffic_runner.hh"

namespace pva
{
namespace
{

constexpr std::uint32_t kElems = 256;

/** Dump @p set with the "sim.*" gauges removed: simTicks and
 *  cyclesSkipped legitimately differ between clocking modes, and
 *  cyclesPerSecond is wall-clock noise. Everything else must match. */
std::string
filteredDump(const StatSet &set)
{
    std::ostringstream raw;
    set.dump(raw);
    std::istringstream in(raw.str());
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("sim.", 0) != 0)
            out << line << '\n';
    }
    return out.str();
}

struct Outcome
{
    Cycle cycles = 0;
    std::size_t mismatches = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t cyclesSkipped = 0;
    std::string stats;
};

Outcome
runKernelPoint(SystemKind kind, const SystemConfig &config,
               KernelId kernel, std::uint32_t stride, ClockingMode mode)
{
    auto sys = makeSystem(kind, config);
    const KernelSpec &spec = kernelSpec(kernel);
    WorkloadConfig wl;
    wl.stride = stride;
    wl.elements = kElems;
    wl.lineWords = config.bc.lineWords;
    wl.streamBases = streamBases(alignmentPresets()[0],
                                 spec.numStreams, stride, kElems);
    RunLimits limits;
    limits.clocking = mode;
    RunResult r = runKernelOn(*sys, kernel, wl, limits);
    return {r.cycles, r.mismatches, r.simTicks, r.cyclesSkipped,
            filteredDump(sys->stats())};
}

void
expectKernelParity(SystemKind kind, const SystemConfig &config,
                   KernelId kernel, std::uint32_t stride)
{
    Outcome ex = runKernelPoint(kind, config, kernel, stride,
                                ClockingMode::Exhaustive);
    Outcome ev = runKernelPoint(kind, config, kernel, stride,
                                ClockingMode::Event);
    EXPECT_EQ(ex.cycles, ev.cycles)
        << systemShortName(kind) << "/" << kernelSpec(kernel).name
        << " stride " << stride;
    EXPECT_EQ(ex.mismatches, ev.mismatches);
    EXPECT_EQ(ev.mismatches, 0u);
    EXPECT_EQ(ex.stats, ev.stats)
        << systemShortName(kind) << "/" << kernelSpec(kernel).name
        << " stride " << stride;
    // The exhaustive stepper never skips; the event core accounts for
    // every cycle either processed or skipped.
    EXPECT_EQ(ex.cyclesSkipped, 0u);
    EXPECT_EQ(ex.simTicks, static_cast<std::uint64_t>(ex.cycles));
    EXPECT_EQ(ev.simTicks + ev.cyclesSkipped, ex.simTicks);
}

class EventClockingGrid : public ::testing::TestWithParam<SystemKind>
{
};

TEST_P(EventClockingGrid, KernelsAreCycleExact)
{
    SystemConfig config;
    config.timingCheck = true;
    for (KernelId k : {KernelId::Copy, KernelId::Tridiag}) {
        for (std::uint32_t stride : {1u, 16u, 19u})
            expectKernelParity(GetParam(), config, k, stride);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, EventClockingGrid,
                         ::testing::ValuesIn(allSystems()),
                         [](const auto &info) {
                             return std::string(
                                 systemShortName(info.param));
                         });

void
expectBatchingParity(SystemKind kind, SystemConfig config,
                     KernelId kernel, std::uint32_t stride,
                     ClockingMode mode)
{
    config.batchTicking = true;
    Outcome batched = runKernelPoint(kind, config, kernel, stride,
                                     mode);
    config.batchTicking = false;
    Outcome reference = runKernelPoint(kind, config, kernel, stride,
                                       mode);
    EXPECT_EQ(batched.cycles, reference.cycles)
        << systemShortName(kind) << "/" << kernelSpec(kernel).name
        << " stride " << stride << " " << clockingModeName(mode);
    EXPECT_EQ(batched.mismatches, 0u);
    EXPECT_EQ(reference.mismatches, 0u);
    EXPECT_EQ(batched.stats, reference.stats)
        << systemShortName(kind) << "/" << kernelSpec(kernel).name
        << " stride " << stride << " " << clockingModeName(mode);
}

TEST_P(EventClockingGrid, BatchedTickingMatchesReferenceAcrossGrid)
{
    // batchTicking=false ticks every bank controller every processed
    // cycle (the pre-optimization reference behaviour); true skips
    // controllers whose cached wake lies in the future. The two must
    // agree bit-for-bit — cycle count and the entire stat set — on
    // every system, under both steppers, with the checker attached.
    SystemConfig config;
    config.timingCheck = true;
    for (KernelId k : {KernelId::Copy, KernelId::Vaxpy}) {
        for (std::uint32_t stride : {1u, 16u, 19u}) {
            for (ClockingMode mode :
                 {ClockingMode::Exhaustive, ClockingMode::Event})
                expectBatchingParity(GetParam(), config, k, stride,
                                     mode);
        }
    }
}

TEST(EventClocking, BatchedTickingMatchesReferenceUnderRefresh)
{
    // Refresh is the hard case for batching: an idle controller must
    // still wake at every tREFI boundary to run the device's refresh
    // clock, or dev.refreshes diverges.
    SystemConfig config;
    config.timingCheck = true;
    config.timing.tREFI = 700;
    for (SystemKind kind :
         {SystemKind::PvaSdram, SystemKind::CacheLine})
        expectBatchingParity(kind, config, KernelId::Copy, 19,
                             ClockingMode::Event);
}

TEST(EventClocking, RefreshScheduleIsCycleExact)
{
    SystemConfig config;
    config.timingCheck = true;
    config.timing.tREFI = 700; // deliberately off the default
    for (SystemKind kind : {SystemKind::PvaSdram, SystemKind::CacheLine})
        expectKernelParity(kind, config, KernelId::Copy, 19);
}

TEST(EventClocking, FaultTimelinesAreCycleExact)
{
    // Fault draws are per processed tick; the event core pins
    // injected systems to every-cycle ticking so the RNG streams and
    // the resulting fault timelines stay identical.
    SystemConfig config;
    config.timingCheck = true;
    config.faults.seed = 11;
    config.faults.refreshStallRate = 0.002;
    config.faults.bcStallRate = 0.002;
    expectKernelParity(SystemKind::PvaSdram, config, KernelId::Vaxpy,
                       19);
}

TrafficConfig
trafficConfig(ClockingMode mode, ArrivalMode arrivals, double rate)
{
    TrafficConfig tc;
    tc.config.timingCheck = true;
    tc.config.clocking = mode;
    tc.arbiter.policy = ArbPolicy::Priority;
    for (unsigned i = 0; i < 2; ++i) {
        StreamConfig s;
        s.mode = arrivals;
        s.window = 2;
        s.requestsPerKilocycle = rate;
        s.requests = 48;
        s.priority = i;
        s.queueCapacity = 4;
        s.seed = 1 + i;
        s.pattern.regionBase = i * (1 << 20);
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

void
expectTrafficParity(ArrivalMode arrivals, double rate)
{
    std::ostringstream ex_dump, ev_dump;
    TrafficResult ex = runTraffic(
        trafficConfig(ClockingMode::Exhaustive, arrivals, rate),
        &ex_dump);
    TrafficResult ev = runTraffic(
        trafficConfig(ClockingMode::Event, arrivals, rate), &ev_dump);

    EXPECT_EQ(ex.cycles, ev.cycles);
    EXPECT_EQ(ex.completed, ev.completed);
    EXPECT_EQ(ex.words, ev.words);
    EXPECT_EQ(ex.meanInFlight, ev.meanInFlight);
    EXPECT_EQ(ex.totalLatency.p99, ev.totalLatency.p99);
    EXPECT_EQ(ex.queueDelay.mean, ev.queueDelay.mean);
    ASSERT_EQ(ex.streams.size(), ev.streams.size());
    for (std::size_t i = 0; i < ex.streams.size(); ++i) {
        EXPECT_EQ(ex.streams[i].deferrals, ev.streams[i].deferrals);
        EXPECT_EQ(ex.streams[i].queuePeak, ev.streams[i].queuePeak);
        EXPECT_EQ(ex.streams[i].completed, ev.streams[i].completed);
    }

    // The dumps interleave ServiceStats and the system's StatSet;
    // strip the clocking gauges from both before comparing.
    auto filter = [](const std::string &text) {
        std::istringstream in(text);
        std::ostringstream out;
        std::string line;
        while (std::getline(in, line)) {
            if (line.rfind("sim.", 0) != 0)
                out << line << '\n';
        }
        return out.str();
    };
    EXPECT_EQ(filter(ex_dump.str()), filter(ev_dump.str()));
}

TEST(EventClocking, ClosedLoopTrafficIsCycleExact)
{
    expectTrafficParity(ArrivalMode::ClosedLoop, 0.0);
}

TEST(EventClocking, OpenLoopTrafficIsCycleExact)
{
    expectTrafficParity(ArrivalMode::OpenLoop, 5.0);
}

TEST(EventClocking, LowLoadTrafficActuallySkips)
{
    // The headline win: at 0.2 req/kcycle the machine is idle almost
    // always, and the event core must skip the vast majority of
    // cycles, not just match the exhaustive stepper.
    TrafficConfig tc =
        trafficConfig(ClockingMode::Event, ArrivalMode::OpenLoop, 0.2);
    TrafficResult r = runTraffic(tc);
    EXPECT_GT(r.cycles, 100000u);
    EXPECT_GT(r.cyclesSkipped, (r.cycles * 9) / 10);
    EXPECT_LT(r.simTicks, r.cycles / 10);
}

/** A component that is quiescent for long stretches: wakes every
 *  250 cycles and does nothing in between. */
class SparseComponent : public Component
{
  public:
    SparseComponent() : Component("sparse") {}
    void tick(Cycle now) override { lastTick = now; }
    Cycle nextWakeAfter(Cycle now) const override { return now + 250; }
    Cycle lastTick = 0;
};

TEST(EventClocking, CycleWatchdogTripsAtTheSameCycle)
{
    // A wake beyond the cycle budget must not let the clock overshoot:
    // the jump clamps to the limit and the watchdog reports the same
    // cycle the exhaustive stepper would.
    for (ClockingMode mode :
         {ClockingMode::Exhaustive, ClockingMode::Event}) {
        Simulation sim(mode);
        SparseComponent comp;
        sim.add(&comp);
        EXPECT_THROW(sim.runUntil([] { return false; }, 100),
                     SimError);
        EXPECT_EQ(sim.now(), 100u);
        if (mode == ClockingMode::Event) {
            EXPECT_GT(sim.cyclesSkipped(), 0u);
        }
    }
}

TEST(EventClocking, ExternalWakesEndSkippedSpans)
{
    // requestWake() is how non-Component drivers (the traffic
    // arbiter) get scheduled: a posted wake must bound the jump.
    Simulation sim(ClockingMode::Event);
    SparseComponent comp;
    sim.add(&comp);
    sim.requestWake(40);
    std::size_t iterations = 0;
    sim.runUntil([&] {
        ++iterations;
        return sim.now() >= 40;
    });
    EXPECT_EQ(sim.now(), 40u);
    // 0 -> 40 -> done: the span [1, 39] is not processed.
    EXPECT_EQ(iterations, 2u);
    EXPECT_EQ(sim.cyclesSkipped(), 39u);
}

TEST(EventClocking, ModeNamesRoundTrip)
{
    ClockingMode mode = ClockingMode::Exhaustive;
    EXPECT_TRUE(parseClockingMode("event", mode));
    EXPECT_EQ(mode, ClockingMode::Event);
    EXPECT_TRUE(parseClockingMode("exhaustive", mode));
    EXPECT_EQ(mode, ClockingMode::Exhaustive);
    EXPECT_FALSE(parseClockingMode("lazy", mode));
    EXPECT_STREQ(clockingModeName(ClockingMode::Event), "event");
    EXPECT_STREQ(clockingModeName(ClockingMode::Exhaustive),
                 "exhaustive");
}

} // anonymous namespace
} // namespace pva
