/**
 * @file
 * Randomized stress tests: heavy mixed traffic through the full PVA
 * unit and through individual bank controllers, across modes, strides,
 * lengths, and configurations. The SDRAM device model panics on any
 * timing violation, so these runs double as scheduler-legality checks.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/bit_reversal.hh"
#include "core/pva_unit.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

/** Pump @p rounds random commands through @p sys with full pipelining,
 *  mirroring writes in software and checking every gather. */
void
pump(PvaUnit &sys, Random &rng, unsigned rounds)
{
    Simulation sim;
    sim.add(&sys);
    std::map<WordAddr, Word> mirror;

    struct Pending
    {
        VectorCommand cmd;
    };
    std::map<std::uint64_t, Pending> inflight;
    std::uint64_t next_tag = 0;
    unsigned completed = 0;

    sim.runUntil(
        [&] {
            for (Completion &c : sys.drainCompletions()) {
                const Pending &p = inflight.at(c.tag);
                if (p.cmd.isRead) {
                    for (std::uint32_t i = 0; i < p.cmd.length; ++i) {
                        WordAddr a = p.cmd.element(i);
                        Word expect =
                            mirror.count(a)
                                ? mirror[a]
                                : SparseMemory::backgroundPattern(a);
                        EXPECT_EQ(c.data[i], expect)
                            << "tag " << c.tag << " elem " << i;
                    }
                }
                inflight.erase(c.tag);
                ++completed;
            }
            while (next_tag < rounds && inflight.size() < 8) {
                VectorCommand cmd;
                std::uint64_t kind = rng.below(10);
                cmd.base = rng.below(1 << 22);
                cmd.length =
                    1 + static_cast<std::uint32_t>(rng.below(32));
                cmd.isRead = rng.below(3) != 0; // 2/3 reads
                if (kind < 6) {
                    cmd.stride =
                        1 + static_cast<std::uint32_t>(rng.below(64));
                } else if (kind < 8) {
                    cmd.mode = VectorCommand::Mode::Indirect;
                    cmd.indices.resize(cmd.length);
                    for (auto &ix : cmd.indices)
                        ix = rng.below(1 << 16);
                } else {
                    cmd.mode = VectorCommand::Mode::BitReversal;
                    cmd.revBits = 10;
                    cmd.revOffset = rng.below(1024 - cmd.length);
                }

                // A command whose elements collide with addresses of a
                // still-inflight command could race (the paper's WAW
                // caveat); keep the fuzz deterministic by avoiding
                // in-flight overlap via disjoint 4 MiB panes per tag
                // parity... simpler: writes use a software mirror
                // updated at submit, and we only check reads whose
                // addresses are not written by any inflight write.
                bool conflicts = false;
                for (auto &[tag, p] : inflight) {
                    if (p.cmd.isRead)
                        continue;
                    for (std::uint32_t i = 0;
                         !conflicts && i < cmd.length; ++i) {
                        for (std::uint32_t j = 0; j < p.cmd.length;
                             ++j) {
                            if (cmd.element(i) == p.cmd.element(j)) {
                                conflicts = true;
                                break;
                            }
                        }
                    }
                    if (conflicts)
                        break;
                }
                if (conflicts)
                    break; // retry next cycle

                std::vector<Word> data;
                const std::vector<Word> *wd = nullptr;
                if (!cmd.isRead) {
                    data.resize(cmd.length);
                    for (std::uint32_t i = 0; i < cmd.length; ++i) {
                        data[i] = static_cast<Word>(rng.next());
                        mirror[cmd.element(i)] = data[i];
                    }
                    wd = &data;
                }
                if (!sys.trySubmit(cmd, next_tag, wd))
                    break;
                inflight.emplace(next_tag, Pending{cmd});
                ++next_tag;
            }
            return completed >= rounds;
        },
        20000000);
}

TEST(Stress, MixedModesFullPipeline)
{
    PvaUnit sys("pva", PvaConfig{});
    Random rng(0xabc);
    pump(sys, rng, 300);
}

TEST(Stress, SmallBankCount)
{
    PvaConfig cfg;
    cfg.geometry = Geometry(4, 1);
    PvaUnit sys("pva", cfg);
    Random rng(0x123);
    pump(sys, rng, 150);
}

TEST(Stress, BlockInterleaved)
{
    PvaConfig cfg;
    cfg.geometry = Geometry(8, 4);
    PvaUnit sys("pva", cfg);
    Random rng(0x456);
    pump(sys, rng, 150);
}

TEST(Stress, WithRefreshAndSmallVcWindow)
{
    PvaConfig cfg;
    cfg.bc.vectorContexts = 1;
    cfg.timing.tREFI = 97; // frequent, prime: hits odd phases
    PvaUnit sys("pva", cfg);
    Random rng(0x789);
    pump(sys, rng, 150);
}

TEST(Stress, ClosedPagePolicy)
{
    PvaConfig cfg;
    cfg.bc.rowPolicy = RowPolicy::AlwaysClose;
    PvaUnit sys("pva", cfg);
    Random rng(0xdef);
    pump(sys, rng, 150);
}

TEST(Stress, SramVariant)
{
    PvaConfig cfg;
    cfg.useSram = true;
    PvaUnit sys("pva", cfg);
    Random rng(0x321);
    pump(sys, rng, 200);
}

} // anonymous namespace
} // namespace pva
