/**
 * @file
 * Load-shedding tests (docs/TRAFFIC.md): with shedding disabled the
 * arbiter is bit-identical to a neutrally-configured shedding arbiter;
 * under saturation a deadline budget bounds the queueing delay of
 * every *served* request while shedding a nonzero remainder; overload
 * shedding keeps closed-loop runs draining; and the behavior is
 * cycle-exact across exhaustive and event clocking.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/clocking.hh"
#include "traffic/traffic_runner.hh"

namespace pva
{
namespace
{

/** Four open-loop streams offering well past what the PVA serves. */
TrafficConfig
saturatedConfig()
{
    TrafficConfig tc;
    tc.system = SystemKind::PvaSdram;
    tc.limits.maxCycles = 2000000;
    for (unsigned i = 0; i < 4; ++i) {
        StreamConfig s;
        s.name = "s" + std::to_string(i);
        s.mode = ArrivalMode::OpenLoop;
        s.requestsPerKilocycle = 150.0;
        s.requests = 120;
        s.queueCapacity = 8;
        s.seed = 7 + i;
        s.pattern.regionBase =
            static_cast<WordAddr>(i) * s.pattern.regionWords;
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

std::string
resultJson(const TrafficResult &r)
{
    std::ostringstream os;
    r.dumpJson(os);
    return os.str();
}

TEST(TrafficShed, NeutralSheddingIsBitIdenticalToOff)
{
    TrafficConfig off = saturatedConfig();
    off.arbiter.shed.enabled = false;

    // Shedding enabled but with no deadline and the watermark at
    // capacity never drops anything — it must not perturb a single
    // cycle of the shed-off behavior.
    TrafficConfig neutral = saturatedConfig();
    neutral.arbiter.shed.enabled = true;
    neutral.arbiter.shed.defaultDeadline = 0;
    neutral.arbiter.shed.queueHighWatermark = 1.0;

    TrafficResult a = runTraffic(off);
    TrafficResult b = runTraffic(neutral);
    EXPECT_EQ(b.shed, 0u);
    EXPECT_EQ(resultJson(a), resultJson(b));
}

TEST(TrafficShed, DeadlineBoundsServedLatencyUnderSaturation)
{
    const Cycle deadline = 300;

    TrafficConfig off = saturatedConfig();
    TrafficResult unshed = runTraffic(off);
    ASSERT_GT(unshed.queueDelay.max, deadline)
        << "the saturated reference must actually overload the queue";

    TrafficConfig on = saturatedConfig();
    on.arbiter.shed.enabled = true;
    on.arbiter.shed.defaultDeadline = deadline;
    TrafficResult shed = runTraffic(on);

    EXPECT_GT(shed.shed, 0u);
    EXPECT_GT(shed.completed, 0u);
    EXPECT_GT(shed.shedRate, 0.0);
    // Every served request was granted while still inside its budget,
    // so the whole queue-delay distribution (p99 and max included) is
    // capped by the deadline.
    EXPECT_LE(shed.queueDelay.max, deadline);
    EXPECT_LE(shed.queueDelay.p99, deadline);
    EXPECT_LT(shed.queueDelay.max, unshed.queueDelay.max);

    std::uint64_t perStreamShed = 0;
    for (const StreamResult &s : shed.streams)
        perStreamShed += s.shedDeadline + s.shedOverload;
    EXPECT_EQ(perStreamShed, shed.shed);
}

TEST(TrafficShed, OverloadWatermarkKeepsClosedLoopDraining)
{
    TrafficConfig tc;
    tc.system = SystemKind::PvaSdram;
    tc.limits.maxCycles = 2000000;
    tc.arbiter.shed.enabled = true;
    tc.arbiter.shed.defaultDeadline = 100;
    tc.arbiter.shed.queueHighWatermark = 0.5;
    for (unsigned i = 0; i < 2; ++i) {
        StreamConfig s;
        s.name = "c" + std::to_string(i);
        s.mode = ArrivalMode::ClosedLoop;
        s.window = 6;
        s.requests = 60;
        s.queueCapacity = 4; // watermark 0.5 -> shed from depth 2
        s.seed = 11 + i;
        s.pattern.regionBase =
            static_cast<WordAddr>(i) * s.pattern.regionWords;
        tc.streams.push_back(std::move(s));
    }

    TrafficResult r = runTraffic(tc);
    EXPECT_GT(r.shed, 0u);
    std::uint64_t emitted = 0;
    for (const StreamResult &s : r.streams) {
        EXPECT_EQ(s.requests, 60u) << s.name
            << ": shedding must keep the closed loop offering load";
        emitted += s.requests;
    }
    // Every emitted request is accounted for: served or shed.
    EXPECT_EQ(r.completed + r.shed, emitted);
}

TEST(TrafficShed, EventClockingMatchesExhaustiveWithSheddingOn)
{
    auto configure = [](ClockingMode mode) {
        TrafficConfig tc = saturatedConfig();
        tc.arbiter.shed.enabled = true;
        tc.arbiter.shed.defaultDeadline = 200;
        tc.arbiter.shed.queueHighWatermark = 0.75;
        tc.config.clocking = mode;
        return tc;
    };
    TrafficResult ex = runTraffic(configure(ClockingMode::Exhaustive));
    TrafficResult ev = runTraffic(configure(ClockingMode::Event));

    EXPECT_EQ(ex.cycles, ev.cycles);
    EXPECT_EQ(ex.completed, ev.completed);
    EXPECT_EQ(ex.shed, ev.shed);
    EXPECT_EQ(ex.words, ev.words);
    EXPECT_EQ(ex.queueDelay.max, ev.queueDelay.max);
    EXPECT_EQ(ex.totalLatency.p99, ev.totalLatency.p99);
    for (std::size_t i = 0; i < ex.streams.size(); ++i) {
        EXPECT_EQ(ex.streams[i].shedDeadline,
                  ev.streams[i].shedDeadline) << i;
        EXPECT_EQ(ex.streams[i].shedOverload,
                  ev.streams[i].shedOverload) << i;
        EXPECT_EQ(ex.streams[i].completed, ev.streams[i].completed)
            << i;
    }
    EXPECT_GT(ev.cyclesSkipped, 0u)
        << "event clocking should actually skip cycles";
    EXPECT_GT(ex.shed, 0u);
}

} // anonymous namespace
} // namespace pva
