/**
 * @file
 * Simulation-kernel tests: stats, sparse memory, the cycle driver,
 * deterministic RNG, and string formatting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "expect_sim_error.hh"
#include "sim/logging.hh"
#include "sim/memory.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace pva
{
namespace
{

TEST(Stats, ScalarAccumulates)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Stats, DistributionTracksMoments)
{
    Distribution d(10);
    for (std::uint64_t v : {5u, 15u, 25u, 15u})
        d.sample(v);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.minValue(), 5u);
    EXPECT_EQ(d.maxValue(), 25u);
    EXPECT_DOUBLE_EQ(d.mean(), 15.0);
    ASSERT_GE(d.buckets().size(), 3u);
    EXPECT_EQ(d.buckets()[0], 1u); // [0,10)
    EXPECT_EQ(d.buckets()[1], 2u); // [10,20)
    EXPECT_EQ(d.buckets()[2], 1u); // [20,30)
}

TEST(Stats, StatSetDumpsSorted)
{
    Scalar a, b;
    a += 1;
    b += 2;
    StatSet set;
    set.addScalar("z.second", &b);
    set.addScalar("a.first", &a);
    std::ostringstream os;
    set.dump(os);
    EXPECT_EQ(os.str(), "a.first 1\nz.second 2\n");
    EXPECT_EQ(set.scalar("z.second"), 2u);
    EXPECT_TRUE(set.hasScalar("a.first"));
    EXPECT_FALSE(set.hasScalar("missing"));
}

TEST(Stats, StatSetDistributionLookup)
{
    Distribution d(10);
    d.sample(5);
    d.sample(15);
    StatSet set;
    set.addDistribution("lat", &d);
    EXPECT_TRUE(set.hasDistribution("lat"));
    EXPECT_FALSE(set.hasDistribution("missing"));
    EXPECT_EQ(&set.distribution("lat"), &d);
    EXPECT_EQ(set.distribution("lat").samples(), 2u);
}

TEST(StatsDeath, MissingDistributionPanics)
{
    StatSet set;
    EXPECT_DEATH(set.distribution("nope"), "no distribution");
}

TEST(Stats, StatSetDumpsJson)
{
    Scalar a, b;
    a += 7;
    b += 9;
    Distribution d(10);
    d.sample(5);
    d.sample(15);
    d.sample(15);
    StatSet set;
    set.addScalar("z.second", &b);
    set.addScalar("a.first", &a);
    set.addDistribution("lat", &d);
    std::ostringstream os;
    set.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\"scalars\": {\"a.first\": 7, \"z.second\": 9}, "
              "\"distributions\": {\"lat\": {\"samples\": 3, "
              "\"min\": 5, \"max\": 15, \"mean\": 11.6667, "
              "\"bucketWidth\": 10, \"buckets\": [1, 2]}}, "
              "\"histograms\": {}}\n");
}

TEST(Stats, EmptyStatSetDumpsEmptyJson)
{
    StatSet set;
    std::ostringstream os;
    set.dumpJson(os);
    EXPECT_EQ(os.str(),
              "{\"scalars\": {}, \"distributions\": {}, "
              "\"histograms\": {}}\n");
}

TEST(StatsDeath, DuplicateNamePanics)
{
    Scalar a;
    StatSet set;
    set.addScalar("x", &a);
    EXPECT_DEATH(set.addScalar("x", &a), "duplicate");
}

TEST(SparseMemory, ReadsBackWrites)
{
    SparseMemory mem;
    mem.write(0, 1);
    mem.write(1023, 2);
    mem.write(1024, 3);
    mem.write(1ull << 40, 4);
    EXPECT_EQ(mem.read(0), 1u);
    EXPECT_EQ(mem.read(1023), 2u);
    EXPECT_EQ(mem.read(1024), 3u);
    EXPECT_EQ(mem.read(1ull << 40), 4u);
    EXPECT_EQ(mem.residentPages(), 3u); // 0, 1, and the far page
}

TEST(SparseMemory, UnwrittenWordsReadBackgroundPattern)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read(7), SparseMemory::backgroundPattern(7));
    // Writing a neighbour must not disturb the pattern of other words
    // on the same page.
    mem.write(8, 99);
    EXPECT_EQ(mem.read(7), SparseMemory::backgroundPattern(7));
    EXPECT_EQ(mem.read(9), SparseMemory::backgroundPattern(9));
}

TEST(SparseMemory, BackgroundPatternIsAddressUnique)
{
    // Distinct addresses give distinct data (locally): gather tests rely
    // on this to detect address mix-ups.
    SparseMemory mem;
    for (WordAddr a = 0; a < 1000; ++a)
        EXPECT_NE(mem.read(a), mem.read(a + 1)) << a;
}

class Counter : public Component
{
  public:
    Counter() : Component("counter") {}
    void tick(Cycle) override { ++count; }
    unsigned count = 0;
};

TEST(Simulation, TicksComponentsInOrder)
{
    Simulation sim;
    Counter a, b;
    sim.add(&a);
    sim.add(&b);
    sim.step();
    sim.step();
    EXPECT_EQ(sim.now(), 2u);
    EXPECT_EQ(a.count, 2u);
    EXPECT_EQ(b.count, 2u);
}

TEST(Simulation, RunUntilStopsAtPredicate)
{
    Simulation sim;
    Counter c;
    sim.add(&c);
    Cycle end = sim.runUntil([&] { return c.count >= 10; });
    EXPECT_EQ(end, 10u);
}

TEST(SimulationDeath, WatchdogThrows)
{
    Simulation sim;
    test::expectSimError(
        [&] { sim.runUntil([] { return false; }, 100); },
        SimErrorKind::Watchdog, "watchdog");
    EXPECT_EQ(sim.now(), 100u) << "watchdog fired at the cycle budget";
}

TEST(Random, IsDeterministicPerSeed)
{
    Random a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Random, RangeIsInclusive)
{
    Random r(1);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("bank %u at %s", 3u, "cycle"), "bank 3 at cycle");
    EXPECT_EQ(csprintf("%05d", 42), "00042");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(Types, BitHelpers)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(4096), 12u);
    EXPECT_EQ(trailingZeros(12), 2u);
    EXPECT_EQ(trailingZeros(1), 0u);
    EXPECT_EQ(trailingZeros(0), 0u);
}

} // anonymous namespace
} // namespace pva
