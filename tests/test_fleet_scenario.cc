/**
 * @file
 * Scenario-file tests: the JSON → FleetConfig mapping, the strict
 * unknown-key/type rejection that keeps spool input honest, and the
 * one-line result document both the one-shot path and the daemon
 * emit.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "expect_sim_error.hh"
#include "fleet/scenario.hh"
#include "sim/sim_error.hh"

using namespace pva;

namespace
{

const char *kFull = R"({
  "kind": "fleet",
  "name": "capacity-a",
  "system": "cacheline",
  "policy": "priority",
  "aging": 2048,
  "clocking": "exhaustive",
  "check": true,
  "shards": 3,
  "seed": 42,
  "maxCycles": 123456,
  "perStreamStats": true,
  "shed": {"enabled": true, "deadline": 250, "watermark": 0.5},
  "tenants": [
    {"name": "web", "count": 4, "streamsPerTenant": 2,
     "regionStrideWords": 8192,
     "stream": {"mode": "open", "window": 6, "rate": 33.5,
                "requests": 77, "priority": 3, "queueCap": 9,
                "deadline": 111,
                "pattern": {"regionBase": 64, "regionWords": 8192,
                            "minStride": 2, "maxStride": 5,
                            "minLength": 16, "maxLength": 24,
                            "readFraction": 0.25, "indirect": true}}},
    {"name": "batch", "count": 1, "streamsPerTenant": 1}
  ]
})";

void
expectScenarioError(const std::string &text, const std::string &substr)
{
    test::expectSimError(
        [&] { fleet::parseScenarioText(text); }, SimErrorKind::Config,
        substr);
}

} // anonymous namespace

TEST(FleetScenario, FullDocumentMapsOntoFleetConfig)
{
    const fleet::Scenario sc = fleet::parseScenarioText(kFull);
    EXPECT_EQ(sc.name, "capacity-a");
    const fleet::FleetConfig &fc = sc.config;
    EXPECT_EQ(fc.system, SystemKind::CacheLine);
    EXPECT_EQ(fc.arbiter.policy, ArbPolicy::Priority);
    EXPECT_EQ(fc.arbiter.agingThreshold, 2048u);
    EXPECT_EQ(fc.config.clocking, ClockingMode::Exhaustive);
    EXPECT_TRUE(fc.config.timingCheck);
    EXPECT_EQ(fc.shards, 3u);
    EXPECT_EQ(fc.limits.maxCycles, 123456u);
    EXPECT_TRUE(fc.perStreamStats);
    EXPECT_TRUE(fc.arbiter.shed.enabled);
    EXPECT_EQ(fc.arbiter.shed.defaultDeadline, 250u);
    EXPECT_DOUBLE_EQ(fc.arbiter.shed.queueHighWatermark, 0.5);

    ASSERT_EQ(fc.tenants.size(), 2u);
    const fleet::TenantSpec &web = fc.tenants[0];
    EXPECT_EQ(web.name, "web");
    EXPECT_EQ(web.count, 4u);
    EXPECT_EQ(web.streamsPerTenant, 2u);
    EXPECT_EQ(web.regionStrideWords, 8192u);
    EXPECT_EQ(web.stream.mode, ArrivalMode::OpenLoop);
    EXPECT_EQ(web.stream.window, 6u);
    EXPECT_DOUBLE_EQ(web.stream.requestsPerKilocycle, 33.5);
    EXPECT_EQ(web.stream.requests, 77u);
    EXPECT_EQ(web.stream.priority, 3u);
    EXPECT_EQ(web.stream.queueCapacity, 9u);
    EXPECT_EQ(web.stream.deadline, 111u);
    EXPECT_EQ(web.stream.seed, 42u); // top-level seed as template base
    EXPECT_EQ(web.stream.pattern.regionBase, 64u);
    EXPECT_EQ(web.stream.pattern.minStride, 2u);
    EXPECT_EQ(web.stream.pattern.maxStride, 5u);
    EXPECT_EQ(web.stream.pattern.minLength, 16u);
    EXPECT_EQ(web.stream.pattern.maxLength, 24u);
    EXPECT_DOUBLE_EQ(web.stream.pattern.readFraction, 0.25);
    EXPECT_EQ(web.stream.pattern.mode, VectorCommand::Mode::Indirect);

    // The minimal tenant rides on defaults.
    const fleet::TenantSpec &batch = fc.tenants[1];
    EXPECT_EQ(batch.name, "batch");
    EXPECT_EQ(batch.stream.mode, ArrivalMode::ClosedLoop);
    EXPECT_EQ(batch.stream.seed, 42u);
}

TEST(FleetScenario, MinimalDocumentUsesDefaults)
{
    const fleet::Scenario sc = fleet::parseScenarioText(
        "{\"kind\": \"fleet\", \"tenants\": [{}]}");
    EXPECT_EQ(sc.name, "fleet");
    EXPECT_EQ(sc.config.system, SystemKind::PvaSdram);
    EXPECT_EQ(sc.config.arbiter.policy, ArbPolicy::Fifo);
    EXPECT_EQ(sc.config.shards, 1u);
    ASSERT_EQ(sc.config.tenants.size(), 1u);
    EXPECT_EQ(sc.config.tenants[0].count, 1u);
    EXPECT_EQ(sc.config.tenants[0].streamsPerTenant, 1u);
}

TEST(FleetScenario, BackendKeyRoundTrips)
{
    const fleet::Scenario sc = fleet::parseScenarioText(
        "{\"kind\": \"fleet\", \"backend\": \"salp\", "
        "\"subarrays\": 8, \"refreshWindow\": 64, \"tenants\": [{}]}");
    EXPECT_EQ(sc.config.config.backend, MemBackend::Salp);
    EXPECT_EQ(sc.config.config.salpSubarrays, 8u);
    EXPECT_EQ(sc.config.config.refreshDeferWindow, 64u);

    // Absent key: the legacy part, exactly as before backends existed.
    const fleet::Scenario def = fleet::parseScenarioText(
        "{\"kind\": \"fleet\", \"tenants\": [{}]}");
    EXPECT_EQ(def.config.config.backend, MemBackend::Legacy);
}

TEST(FleetScenario, UnknownBackendValueIsRejectedWithItsPath)
{
    expectScenarioError(
        "{\"kind\": \"fleet\", \"backend\": \"hbm\", "
        "\"tenants\": [{}]}",
        "scenario.backend");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"backend\": 3, \"tenants\": [{}]}",
        "backend");
}

TEST(FleetScenario, UnknownKeysAreRejectedWithTheirPath)
{
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenant\": []}", "tenant");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": [{\"streams\": 4}]}",
        "streams");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": "
        "[{\"stream\": {\"rps\": 4}}]}",
        "rps");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": "
        "[{\"stream\": {\"pattern\": {\"stride\": 4}}}]}",
        "stride");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"shed\": {\"deadlines\": 5}, "
        "\"tenants\": [{}]}",
        "deadlines");
}

TEST(FleetScenario, WrongKindsAndTypesAreRejected)
{
    expectScenarioError("[]", "object");
    expectScenarioError("{\"tenants\": [{}]}", "kind");
    expectScenarioError(
        "{\"kind\": \"traffic\", \"tenants\": [{}]}", "kind");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": {}}", "tenants");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": []}", "tenants");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"shards\": 0, \"tenants\": [{}]}",
        "shards");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"shards\": -2, \"tenants\": [{}]}",
        "shards");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"system\": \"vax\", "
        "\"tenants\": [{}]}",
        "vax");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"policy\": \"lifo\", "
        "\"tenants\": [{}]}",
        "lifo");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"clocking\": \"warp\", "
        "\"tenants\": [{}]}",
        "warp");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": "
        "[{\"stream\": {\"mode\": \"batch\"}}]}",
        "mode");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": "
        "[{\"stream\": {\"pattern\": {\"readFraction\": 1.5}}}]}",
        "readFraction");
    expectScenarioError(
        "{\"kind\": \"fleet\", \"tenants\": [{\"count\": 0}]}",
        "count");
    expectScenarioError("{\"kind\": \"fleet\", \"tenants\"",
                        "parse failed");
}

TEST(FleetScenario, ResultLineIsVersionedAndSingleLine)
{
    fleet::Scenario sc;
    sc.name = "smoke \"quoted\"";
    fleet::FleetResult r;
    r.cycles = 10;
    r.shards = 1;
    std::ostringstream os;
    fleet::writeScenarioResult(os, sc, r);
    const std::string line = os.str();
    EXPECT_EQ(line.find("{\"schemaVersion\": 1, "
                        "\"tool\": \"pva_loadgen\", "
                        "\"scenario\": \"smoke \\\"quoted\\\"\", "
                        "\"fleet\": {"),
              0u);
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1); // exactly one line
}
