/**
 * @file
 * SDRAM device-model tests: the restimer timing constraints (tRCD, CAS
 * latency, tRP, tRAS, tRC, tWR), open-row state, auto-precharge,
 * data-bus turnaround, and the SRAM comparison device.
 */

#include <gtest/gtest.h>

#include "expect_sim_error.hh"
#include "sdram/device.hh"
#include "sdram/sram_device.hh"
#include "sim/memory.hh"

namespace pva
{
namespace
{

class SdramDeviceTest : public ::testing::Test
{
  protected:
    SdramDeviceTest() : dev("dev", 0, geo, timing, mem) {}

    DeviceOp
    activate(WordAddr addr)
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Activate;
        op.addr = addr;
        return op;
    }

    DeviceOp
    read(WordAddr addr, bool auto_pre = false)
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Read;
        op.addr = addr;
        op.autoPrecharge = auto_pre;
        return op;
    }

    DeviceOp
    write(WordAddr addr, Word data, bool auto_pre = false)
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Write;
        op.addr = addr;
        op.writeData = data;
        op.autoPrecharge = auto_pre;
        return op;
    }

    DeviceOp
    precharge(unsigned ibank)
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Precharge;
        op.internalBank = ibank;
        return op;
    }

    Geometry geo{16, 1};
    SdramTiming timing{};
    SparseMemory mem;
    SdramDevice dev;
};

TEST_F(SdramDeviceTest, ReadRequiresOpenMatchingRow)
{
    // Bank-local word 0 of bank 0 is flat word 0; a row is 512 columns,
    // so flat words 0 and 512*16 share internal bank 0 but words
    // 512*16*4*... Let's use decompose to build addresses.
    EXPECT_FALSE(dev.canIssue(read(0), 0)) << "row closed";
    ASSERT_TRUE(dev.canIssue(activate(0), 0));
    dev.issue(activate(0), 0);
    EXPECT_TRUE(dev.anyRowOpen(0));
    EXPECT_TRUE(dev.isRowOpen(0, 0));

    // tRCD = 2: access legal from cycle 2, not at 1.
    EXPECT_FALSE(dev.canIssue(read(0), 1));
    EXPECT_TRUE(dev.canIssue(read(0), 2));

    // A different row in the same internal bank is not accessible.
    WordAddr other_row = geo.compose(0, {0, 1, 0});
    EXPECT_FALSE(dev.canIssue(read(other_row), 2));
}

TEST_F(SdramDeviceTest, CasLatencyDelaysReadData)
{
    dev.issue(activate(0), 0);
    dev.issue(read(0), 2);
    ReadReturn r;
    EXPECT_FALSE(dev.popReady(2, r));
    EXPECT_FALSE(dev.popReady(3, r));
    ASSERT_TRUE(dev.popReady(4, r)); // tCL = 2
    EXPECT_EQ(r.readyAt, 4u);
    EXPECT_EQ(r.data, SparseMemory::backgroundPattern(0));
}

TEST_F(SdramDeviceTest, PipelinedReadsOnePerCycle)
{
    dev.issue(activate(0), 0);
    // Columns 0,1,2 of the open row: flat words 0, 16, 32.
    dev.issue(read(0), 2);
    dev.issue(read(16), 3);
    dev.issue(read(32), 4);
    ReadReturn r;
    ASSERT_TRUE(dev.popReady(4, r));
    ASSERT_TRUE(dev.popReady(5, r));
    ASSERT_TRUE(dev.popReady(6, r));
    EXPECT_EQ(dev.statRowHitAccesses.value(), 2u);
}

TEST_F(SdramDeviceTest, OneCommandPerCycle)
{
    dev.issue(activate(0), 0);
    WordAddr ib1 = geo.compose(0, {1, 0, 0});
    // A second command in cycle 0 is illegal even to another bank.
    EXPECT_FALSE(dev.canIssue(activate(ib1), 0));
    EXPECT_TRUE(dev.canIssue(activate(ib1), 1));
}

TEST_F(SdramDeviceTest, TrasGatesPrecharge)
{
    dev.issue(activate(0), 0);
    EXPECT_FALSE(dev.canIssue(precharge(0), 3));
    EXPECT_FALSE(dev.canIssue(precharge(0), 4));
    EXPECT_TRUE(dev.canIssue(precharge(0), 5)) << "tRAS = 5";
    dev.issue(precharge(0), 5);
    EXPECT_FALSE(dev.anyRowOpen(0));
    // tRP = 2 after precharge.
    EXPECT_FALSE(dev.canIssue(activate(0), 6));
    EXPECT_TRUE(dev.canIssue(activate(0), 7));
}

TEST_F(SdramDeviceTest, TrcGatesBackToBackActivates)
{
    dev.issue(activate(0), 0);
    dev.issue(read(0, true), 2); // auto-precharge closes the row
    EXPECT_FALSE(dev.anyRowOpen(0));
    // tRAS(5) then tRP(2): next activate at cycle 7 at the earliest,
    // also satisfying tRC = 7.
    EXPECT_FALSE(dev.canIssue(activate(0), 6));
    EXPECT_TRUE(dev.canIssue(activate(0), 7));
}

TEST_F(SdramDeviceTest, WriteRecoveryDelaysAutoPrecharge)
{
    dev.issue(activate(0), 0);
    dev.issue(write(0, 42, true), 2);
    EXPECT_EQ(mem.read(0), 42u);
    EXPECT_FALSE(dev.anyRowOpen(0));
    // Write data on cycle 3, tWR = 2 -> precharge starts at 5, tRP = 2
    // -> activate legal at 7.
    EXPECT_FALSE(dev.canIssue(activate(0), 6));
    EXPECT_TRUE(dev.canIssue(activate(0), 7));
}

TEST_F(SdramDeviceTest, BusTurnaroundBetweenReadAndWrite)
{
    dev.issue(activate(0), 0);
    dev.issue(read(0), 2); // data on pins at cycle 4
    // A write at cycle 4 would put data at 5: only 1 cycle after the
    // read data — turnaround requires a gap.
    EXPECT_FALSE(dev.canIssue(write(16, 1), 4));
    EXPECT_TRUE(dev.canIssue(write(16, 1), 5)); // data at 6, gap ok
}

TEST_F(SdramDeviceTest, ConsecutiveSameDirectionNoTurnaround)
{
    dev.issue(activate(0), 0);
    dev.issue(write(0, 1), 2);
    EXPECT_TRUE(dev.canIssue(write(16, 2), 3));
}

TEST_F(SdramDeviceTest, InternalBanksAreIndependent)
{
    WordAddr ib1 = geo.compose(0, {1, 7, 3});
    dev.issue(activate(0), 0);
    dev.issue(activate(ib1), 1);
    EXPECT_TRUE(dev.isRowOpen(0, 0));
    EXPECT_TRUE(dev.isRowOpen(1, 7));
    // Accesses to both open rows interleave freely.
    EXPECT_TRUE(dev.canIssue(read(0), 2));
    dev.issue(read(0), 2);
    EXPECT_TRUE(dev.canIssue(read(geo.compose(0, {1, 7, 3})), 3));
}

TEST_F(SdramDeviceTest, LastRowTracksAcrossCloses)
{
    EXPECT_EQ(dev.lastRow(0), 0xffffffffu) << "never opened";
    WordAddr row5 = geo.compose(0, {0, 5, 0});
    dev.issue(activate(row5), 0);
    dev.issue(precharge(0), 5);
    EXPECT_EQ(dev.lastRow(0), 5u);
}

TEST_F(SdramDeviceTest, StatsCountOperations)
{
    dev.issue(activate(0), 0);
    dev.issue(read(0), 2);
    dev.issue(read(16, true), 3);
    EXPECT_EQ(dev.statActivates.value(), 1u);
    EXPECT_EQ(dev.statReads.value(), 2u);
    EXPECT_EQ(dev.statPrecharges.value(), 1u); // the auto-precharge
}

TEST_F(SdramDeviceTest, QuiescentAfterDrain)
{
    dev.issue(activate(0), 0);
    dev.issue(read(0), 2);
    EXPECT_FALSE(dev.quiescent());
    ReadReturn r;
    ASSERT_TRUE(dev.popReady(10, r));
    EXPECT_TRUE(dev.quiescent());
}

TEST_F(SdramDeviceTest, IllegalIssueThrows)
{
    test::expectSimError([&] { dev.issue(read(0), 0); },
                         SimErrorKind::Protocol, "illegal");
}

TEST(SramDevice, SingleCycleAccessNoRowState)
{
    Geometry geo(16, 1);
    SparseMemory mem;
    SramDevice dev("sram", 0, geo, mem);

    EXPECT_TRUE(dev.anyRowOpen(0));
    EXPECT_TRUE(dev.isRowOpen(3, 12345));

    DeviceOp rd;
    rd.kind = DeviceOp::Kind::Read;
    rd.addr = 48;
    ASSERT_TRUE(dev.canIssue(rd, 0));
    dev.issue(rd, 0);
    ReadReturn r;
    ASSERT_TRUE(dev.popReady(1, r)) << "single-cycle access";
    EXPECT_EQ(r.data, SparseMemory::backgroundPattern(48));

    DeviceOp act;
    act.kind = DeviceOp::Kind::Activate;
    EXPECT_FALSE(dev.canIssue(act, 5)) << "SRAM never activates";
}

TEST(SramDevice, OneWordPerCycle)
{
    Geometry geo(16, 1);
    SparseMemory mem;
    SramDevice dev("sram", 0, geo, mem);
    DeviceOp rd;
    rd.kind = DeviceOp::Kind::Read;
    rd.addr = 0;
    dev.issue(rd, 0);
    EXPECT_FALSE(dev.canIssue(rd, 0));
    EXPECT_TRUE(dev.canIssue(rd, 1));
}

} // anonymous namespace
} // namespace pva
