/**
 * @file
 * Memory-backend tests: policy resolution, the legacy differential
 * anchor (a SALP device whose traffic stays inside one subarray must
 * be cycle-identical to the legacy part), event/exhaustive exactness
 * of the new backends, the deferred-refresh debt rules, and the SALP
 * bandwidth win on subarray-conflicting streams.
 */

#include <gtest/gtest.h>

#include "expect_sim_error.hh"
#include "kernels/sweep.hh"
#include "sdram/backend.hh"
#include "sdram/timing_checker.hh"

namespace pva
{
namespace
{

SystemConfig
salpConfig(unsigned subarrays = 4)
{
    SystemConfig c;
    c.backend = MemBackend::Salp;
    c.salpSubarrays = subarrays;
    return c;
}

SystemConfig
deferredConfig(unsigned t_refi, unsigned window = 0)
{
    SystemConfig c;
    c.backend = MemBackend::DeferredRefresh;
    c.timing.tREFI = t_refi;
    c.refreshDeferWindow = window;
    return c;
}

// --------------------------------------------------------------------
// Policy resolution

TEST(BackendPolicyTest, LegacyDefaultsToOneSlotPerInternalBank)
{
    BackendPolicy pol = resolveBackendPolicy(MemBackend::Legacy, 13, 0,
                                             0, 4, 0);
    EXPECT_EQ(pol.subarrays(), 1u);
    EXPECT_EQ(pol.slotOf(3, 0x1fff), 3u);
    EXPECT_EQ(pol.slotCount(4), 4u);
}

TEST(BackendPolicyTest, SalpSplitsTheHighRowBits)
{
    BackendPolicy pol = resolveBackendPolicy(MemBackend::Salp, 13, 0, 0,
                                             4, 0);
    EXPECT_EQ(pol.subarrays(), 4u);
    EXPECT_EQ(pol.subShift, 11u);
    EXPECT_EQ(pol.subarrayOf(0), 0u);
    EXPECT_EQ(pol.subarrayOf(2048), 1u);
    EXPECT_EQ(pol.slotOf(3, 2048), (3u << 2) | 1u);
    EXPECT_EQ(pol.slotCount(4), 16u);
}

TEST(BackendPolicyTest, SalpRejectsBadSubarrayCounts)
{
    test::expectSimError(
        [] { resolveBackendPolicy(MemBackend::Salp, 13, 0, 0, 3, 0); },
        SimErrorKind::Config, "power of two");
    test::expectSimError(
        [] { resolveBackendPolicy(MemBackend::Salp, 13, 0, 0, 1, 0); },
        SimErrorKind::Config, "power of two");
    test::expectSimError(
        [] {
            resolveBackendPolicy(MemBackend::Salp, 3, 0, 0, 8, 0);
        },
        SimErrorKind::Config, "row bits");
}

TEST(BackendPolicyTest, DeferredRequiresRefreshAndBoundsTheWindow)
{
    test::expectSimError(
        [] {
            resolveBackendPolicy(MemBackend::DeferredRefresh, 13, 0, 0,
                                 4, 0);
        },
        SimErrorKind::Config, "tREFI");
    test::expectSimError(
        [] {
            resolveBackendPolicy(MemBackend::DeferredRefresh, 13, 8, 10,
                                 4, 0);
        },
        SimErrorKind::Config, "drain");
    test::expectSimError(
        [] {
            resolveBackendPolicy(MemBackend::DeferredRefresh, 13, 100,
                                 10, 4, 500);
        },
        SimErrorKind::Config, "refreshDeferWindow");
    BackendPolicy pol = resolveBackendPolicy(
        MemBackend::DeferredRefresh, 13, 300, 10, 4, 0);
    EXPECT_EQ(pol.deferWindow, 150u); // defaults to tREFI / 2
}

TEST(BackendPolicyTest, ConfigValidateRejectsBadBackendKnobs)
{
    SystemConfig cfg = salpConfig(6);
    test::expectSimError([&] { cfg.validate(); }, SimErrorKind::Config,
                         "power of two");
    SystemConfig d;
    d.backend = MemBackend::DeferredRefresh; // tREFI left at 0
    test::expectSimError([&] { d.validate(); }, SimErrorKind::Config,
                         "tREFI");
}

// --------------------------------------------------------------------
// Legacy differential anchor
//
// The alignment presets keep every stream under address 2^26, so all
// rows fall below 2048 and a 4-subarray SALP device routes every
// access through subarray 0 of each internal bank. With one live slot
// per internal bank the SALP timing state collapses onto the legacy
// state, so the two backends must agree cycle for cycle — any drift
// means the row-slot refactor changed legacy behavior.

TEST(BackendDifferential, SalpSingleSubarrayMatchesLegacyCycleExactly)
{
    for (KernelId kernel :
         {KernelId::Copy, KernelId::Saxpy, KernelId::Tridiag}) {
        for (std::uint32_t stride : {1u, 4u, 19u}) {
            for (unsigned alignment : {0u, 3u}) {
                for (ClockingMode clocking :
                     {ClockingMode::Event, ClockingMode::Exhaustive}) {
                    SweepRequest legacy;
                    legacy.kernel = kernel;
                    legacy.stride = stride;
                    legacy.alignment = alignment;
                    legacy.elements = 512;
                    legacy.config.clocking = clocking;
                    legacy.config.timingCheck = true;
                    SweepRequest salp = legacy;
                    salp.config.backend = MemBackend::Salp;
                    SweepPoint a = runPoint(legacy);
                    SweepPoint b = runPoint(salp);
                    EXPECT_EQ(a.mismatches, 0u);
                    EXPECT_EQ(b.mismatches, 0u);
                    EXPECT_EQ(a.cycles, b.cycles)
                        << kernelSpec(kernel).name << " stride "
                        << stride << " alignment " << alignment
                        << " clocking "
                        << clockingModeName(clocking);
                }
            }
        }
    }
}

TEST(BackendDifferential, SalpMatchesLegacyUnderRefreshAndFaults)
{
    SweepRequest legacy;
    legacy.kernel = KernelId::Swap;
    legacy.stride = 8;
    legacy.elements = 512;
    legacy.config.timing.tREFI = 300;
    legacy.config.timingCheck = true;
    legacy.config.faults.seed = 11;
    legacy.config.faults.refreshStallRate = 0.02;
    SweepRequest salp = legacy;
    salp.config.backend = MemBackend::Salp;
    SweepPoint a = runPoint(legacy);
    SweepPoint b = runPoint(salp);
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(b.mismatches, 0u);
    EXPECT_EQ(a.cycles, b.cycles);
}

// --------------------------------------------------------------------
// Event clocking exactness of the new backends

TEST(BackendClocking, EventMatchesExhaustiveOnSalpAndDeferred)
{
    std::vector<SystemConfig> configs = {salpConfig(),
                                         deferredConfig(250)};
    for (const SystemConfig &base : configs) {
        for (KernelId kernel : {KernelId::Copy, KernelId::Vaxpy}) {
            for (std::uint32_t stride : {4u, 19u}) {
                SweepRequest ev;
                ev.kernel = kernel;
                ev.stride = stride;
                ev.elements = 512;
                ev.config = base;
                ev.config.timingCheck = true;
                ev.config.clocking = ClockingMode::Event;
                SweepRequest ex = ev;
                ex.config.clocking = ClockingMode::Exhaustive;
                SweepPoint a = runPoint(ev);
                SweepPoint b = runPoint(ex);
                EXPECT_EQ(a.mismatches, 0u);
                EXPECT_EQ(b.mismatches, 0u);
                EXPECT_EQ(a.cycles, b.cycles)
                    << backendName(base.backend) << " "
                    << kernelSpec(kernel).name << " stride " << stride;
                EXPECT_LT(a.simTicks, b.simTicks)
                    << "event stepper processed every cycle";
            }
        }
    }
}

// --------------------------------------------------------------------
// Deferred refresh behavior

TEST(DeferredRefresh, MovesBoundariesAndStaysCheckerClean)
{
    SystemConfig cfg = deferredConfig(200);
    cfg.timingCheck = true;
    auto sys = makeSystem(SystemKind::PvaSdram, cfg);

    WorkloadConfig wl;
    wl.stride = 4;
    wl.elements = 2048;
    wl.streamBases = {0, 1 << 20};
    RunResult r = runKernelOn(*sys, KernelId::Copy, wl);
    EXPECT_EQ(r.mismatches, 0u);

    std::uint64_t moved = 0, applied = 0;
    for (unsigned b = 0; b < 16; ++b) {
        moved += sys->stats().scalar(
            csprintf("dev%u.deferredRefreshes", b));
        moved += sys->stats().scalar(
            csprintf("dev%u.advancedRefreshes", b));
        applied +=
            sys->stats().scalar(csprintf("dev%u.refreshes", b));
    }
    EXPECT_GT(applied, 0u);
    EXPECT_GT(moved, 0u) << "no refresh ever left its tREFI boundary";
}

TEST(DeferredRefresh, WatchdogMidDeferralFailsCleanAndRetriesOk)
{
    // The cycle watchdog expires while boundaries are still deferred:
    // the run must die with SimError(Watchdog) — not a protocol
    // violation from the refresh bookkeeping — and succeed outright
    // when re-run with an adequate budget (the sweep executor's retry
    // path).
    SweepRequest req;
    req.kernel = KernelId::Copy;
    req.stride = 4;
    req.elements = 1024;
    req.config = deferredConfig(200, 100);
    req.config.timingCheck = true;
    SweepRequest tight = req;
    tight.limits.maxCycles = 350;
    test::expectSimError([&] { runPoint(tight); },
                         SimErrorKind::Watchdog, "watchdog");
    SweepPoint p = runPoint(req);
    EXPECT_EQ(p.mismatches, 0u);
}

TEST(DeferredRefresh, ComposesWithInjectedRefreshFaults)
{
    // Fault-injected refresh stalls land on arbitrary cycles and
    // satisfy no tREFI boundary; the deferral machinery must keep its
    // coverage bookkeeping consistent underneath them.
    SweepRequest req;
    req.kernel = KernelId::Copy;
    req.stride = 4;
    req.elements = 1024;
    req.config = deferredConfig(250);
    req.config.timingCheck = true;
    req.config.faults.seed = 7;
    req.config.faults.refreshStallRate = 0.05;
    SweepPoint p = runPoint(req);
    EXPECT_EQ(p.mismatches, 0u);
}

// --------------------------------------------------------------------
// Checker rule sets

class DeferredCheckerTest : public ::testing::Test
{
  protected:
    Geometry geo{16, 1};
    SdramTiming times = [] {
        SdramTiming t;
        t.tREFI = 100;
        t.tRFC = 10;
        return t;
    }();
    BackendPolicy pol = resolveBackendPolicy(
        MemBackend::DeferredRefresh, geo.rowBits(), times.tREFI,
        times.tRFC, 4, 50);
    TimingChecker checker{geo, times, 16, 8, 32, pol};

    DeviceOp
    activate(std::uint32_t row) const
    {
        DeviceCoords c;
        c.col = 0;
        c.internalBank = 0;
        c.row = row;
        DeviceOp op;
        op.kind = DeviceOp::Kind::Activate;
        op.addr = geo.compose(0, c);
        return op;
    }
};

TEST_F(DeferredCheckerTest, DebtWindowSaturationIsCaught)
{
    // Boundary 100 may defer until 150; a command at 151 with the
    // boundary still unpaid exceeds the debt bound.
    checker.onCommand("dev0", 0, activate(3), 140);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, activate(5), 151); },
        SimErrorKind::Protocol, "refresh debt");
}

TEST_F(DeferredCheckerTest, DeferredCoverageWithinWindowIsAccepted)
{
    checker.onRefresh(0, 130, 140, 100); // 30 cycles late: in window
    checker.onRefresh(0, 190, 200, 200); // 10 cycles early: in window
    checker.onCommand("dev0", 0, activate(3), 240);
}

TEST_F(DeferredCheckerTest, OutOfOrderCoverageIsCaught)
{
    test::expectSimError(
        [&] { checker.onRefresh(0, 130, 140, 200); },
        SimErrorKind::Protocol, "out of order");
}

TEST_F(DeferredCheckerTest, PullInBeyondWindowIsCaught)
{
    test::expectSimError([&] { checker.onRefresh(0, 10, 20, 100); },
                         SimErrorKind::Protocol, "pulled in");
}

TEST_F(DeferredCheckerTest, DeferralBeyondWindowIsCaught)
{
    test::expectSimError([&] { checker.onRefresh(0, 151, 161, 100); },
                         SimErrorKind::Protocol, "deferred");
}

TEST_F(DeferredCheckerTest, InjectedRefreshSatisfiesNoBoundary)
{
    // An injected (fault) refresh holds the pins busy but covers
    // nothing: the scheduled boundary must still be paid on time.
    checker.onRefresh(0, 40, 50, 0);
    checker.onCommand("dev0", 0, activate(3), 149); // debt still legal
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, activate(5), 160); },
        SimErrorKind::Protocol, "refresh debt");
}

TEST(SalpCheckerTest, SubarrayScopedRowRules)
{
    Geometry geo{16, 1};
    SdramTiming times{};
    BackendPolicy pol =
        resolveBackendPolicy(MemBackend::Salp, geo.rowBits(), 0, 0, 4, 0);
    TimingChecker checker{geo, times, 16, 8, 32, pol};

    auto activate = [&](std::uint32_t row) {
        DeviceCoords c;
        c.col = 0;
        c.internalBank = 0;
        c.row = row;
        DeviceOp op;
        op.kind = DeviceOp::Kind::Activate;
        op.addr = geo.compose(0, c);
        return op;
    };

    // Rows 3 and 2048 live in different subarrays of internal bank 0:
    // back-to-back activates (one command-bus cycle apart) are legal.
    checker.onCommand("dev0", 0, activate(3), 0);
    checker.onCommand("dev0", 0, activate(2048), 1);
    // A second activate in an open subarray is still a violation.
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, activate(4), 10); },
        SimErrorKind::Protocol, "subarray");

    // Precharge must name a subarray the backend actually has.
    DeviceOp pre;
    pre.kind = DeviceOp::Kind::Precharge;
    pre.internalBank = 0;
    pre.subarray = 7;
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, pre, 20); },
        SimErrorKind::Protocol, "names subarray");
}

// --------------------------------------------------------------------
// The SALP payoff: subarray-conflicting streams

TEST(SalpBandwidth, BeatsLegacyOnSubarrayConflictingStreams)
{
    // A 2^26-word stride walks rows 0, 2048, 4096, 6144 of internal
    // bank 0 in external bank 0 — one subarray per access, wrapping
    // every four elements. The legacy part pays a full row cycle on
    // every access (each element lands on a closed row); SALP keeps
    // all four rows open in their own subarrays and streams row hits
    // after the first rotation.
    WorkloadConfig wl;
    wl.stride = 1u << 26;
    wl.elements = 512;
    wl.streamBases = {0};

    auto legacy = makeSystem(SystemKind::PvaSdram, SystemConfig{});
    RunResult a = runKernelOn(*legacy, KernelId::Scale, wl);

    auto salp = makeSystem(SystemKind::PvaSdram, salpConfig());
    RunResult b = runKernelOn(*salp, KernelId::Scale, wl);

    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(b.mismatches, 0u);
    EXPECT_LT(b.cycles, a.cycles) << "SALP lost its row buffers";
    // The win must be structural (open-row hits), not noise.
    EXPECT_LT(b.cycles * 100, a.cycles * 80)
        << "expected at least a 20% cycle win from subarray overlap";
}

} // anonymous namespace
} // namespace pva
