/**
 * @file
 * Tests for the chapter 7 extensions: two-phase vector-indirect
 * scatter/gather and bit-reversed application vectors, end to end
 * through the PVA unit.
 */

#include <gtest/gtest.h>

#include "core/bit_reversal.hh"
#include "core/indirect.hh"
#include "core/pva_unit.hh"
#include "expect_sim_error.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

TEST(BitReverse, Function)
{
    EXPECT_EQ(bitReverse(0b000, 3), 0b000u);
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b011, 3), 0b110u);
    EXPECT_EQ(bitReverse(0b110101, 6), 0b101011u);
    // Involution: reversing twice is the identity.
    for (std::uint64_t v = 0; v < 256; ++v)
        EXPECT_EQ(bitReverse(bitReverse(v, 8), 8), v);
}

TEST(BitReversalCommands, CoverThePermutationExactly)
{
    auto cmds = bitReversalCommands(1000, 128, 32, true);
    ASSERT_EQ(cmds.size(), 4u);
    std::vector<bool> seen(128, false);
    for (const auto &c : cmds) {
        EXPECT_EQ(c.mode, VectorCommand::Mode::BitReversal);
        for (std::uint32_t i = 0; i < c.length; ++i) {
            WordAddr a = c.element(i);
            ASSERT_GE(a, 1000u);
            ASSERT_LT(a, 1128u);
            EXPECT_FALSE(seen[a - 1000]) << "duplicate address";
            seen[a - 1000] = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(BitReversalCommandsDeath, RequiresPowerOfTwo)
{
    test::expectSimError([] { bitReversalCommands(0, 100, 32, true); },
                         SimErrorKind::Config, "power of two");
}

TEST(BitReversal, GatherPermutesThroughThePva)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    constexpr std::uint32_t N = 256;
    for (std::uint32_t i = 0; i < N; ++i)
        sys.memory().write(5000 + i, 0xc000 + i);

    BitReversalResult r = runBitReversedGather(sys, sim, 5000, N);
    ASSERT_EQ(r.data.size(), N);
    for (std::uint32_t i = 0; i < N; ++i)
        EXPECT_EQ(r.data[i], 0xc000 + bitReverse(i, 8)) << "i=" << i;
    EXPECT_GT(r.cycles, 0u);
}

TEST(IndirectPhases, CommandConstruction)
{
    auto p1 = indirectPhase1(2000, 70, 32);
    ASSERT_EQ(p1.size(), 3u);
    EXPECT_EQ(p1[0].base, 2000u);
    EXPECT_EQ(p1[0].stride, 1u);
    EXPECT_EQ(p1[2].length, 6u);

    std::vector<WordAddr> idx(70);
    for (unsigned i = 0; i < 70; ++i)
        idx[i] = 3 * i + 1;
    auto p2 = indirectPhase2(9000, idx, 32, true);
    ASSERT_EQ(p2.size(), 3u);
    EXPECT_EQ(p2[1].mode, VectorCommand::Mode::Indirect);
    EXPECT_EQ(p2[1].element(0), 9000 + 3ull * 32 + 1);
}

TEST(Indirect, GatherThroughThePva)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    constexpr std::uint32_t N = 100;
    Random rng(3);
    std::vector<WordAddr> idx;
    for (std::uint32_t i = 0; i < N; ++i) {
        // Random within disjoint per-element windows: distinct targets.
        idx.push_back(i * 100 + rng.below(100));
        sys.memory().write(4000 + i, static_cast<Word>(idx.back()));
        sys.memory().write(200000 + idx.back(),
                           static_cast<Word>(0xd000 + i));
    }

    IndirectRunResult r = runIndirectGather(sys, sim, 4000, N, 200000);
    ASSERT_EQ(r.data.size(), N);
    for (std::uint32_t i = 0; i < N; ++i)
        EXPECT_EQ(r.data[i], 0xd000 + i) << "i=" << i;
}

TEST(Indirect, ScatterThroughThePva)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    constexpr std::uint32_t N = 64;
    std::vector<WordAddr> idx;
    std::vector<Word> values(N);
    for (std::uint32_t i = 0; i < N; ++i) {
        idx.push_back(17ull * i + 5); // distinct targets
        values[i] = 0xe000 + i;
        sys.memory().write(4000 + i, static_cast<Word>(idx.back()));
    }

    runIndirectScatter(sys, sim, 4000, N, 300000, values);
    for (std::uint32_t i = 0; i < N; ++i)
        EXPECT_EQ(sys.memory().read(300000 + idx[i]), values[i]);
}

TEST(Indirect, DuplicateIndicesGatherTheSameWord)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    for (std::uint32_t i = 0; i < 32; ++i)
        sys.memory().write(4000 + i, 55); // all indices the same
    sys.memory().write(100000 + 55, 0x1234);

    IndirectRunResult r = runIndirectGather(sys, sim, 4000, 32, 100000);
    for (Word w : r.data)
        EXPECT_EQ(w, 0x1234u);
}

TEST(Indirect, PhaseTwoCostsReflectBroadcastOverhead)
{
    // An indirect command's sub-vectors only become schedulable after
    // the index broadcast (length/2 cycles): a 32-element indirect read
    // must take longer than the equivalent strided read.
    PvaUnit a("a", PvaConfig{}), b("b", PvaConfig{});
    std::vector<WordAddr> idx;
    for (std::uint32_t i = 0; i < 32; ++i)
        idx.push_back(19ull * i);

    Cycle t_ind, t_str;
    {
        Simulation sim;
        sim.add(&a);
        auto cmds = indirectPhase2(0, idx, 32, true);
        ASSERT_EQ(cmds.size(), 1u);
        a.trySubmit(cmds[0], 0, nullptr);
        sim.runUntil([&] { return !a.drainCompletions().empty(); });
        t_ind = sim.now();
    }
    {
        Simulation sim;
        sim.add(&b);
        VectorCommand c;
        c.base = 0;
        c.stride = 19;
        c.length = 32;
        c.isRead = true;
        b.trySubmit(c, 0, nullptr);
        sim.runUntil([&] { return !b.drainCompletions().empty(); });
        t_str = sim.now();
    }
    EXPECT_GT(t_ind, t_str);
}

} // anonymous namespace
} // namespace pva
