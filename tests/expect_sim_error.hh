/**
 * @file
 * Shared assertion for SimError-throwing call sites: checks the error
 * kind and that what() carries the expected diagnostic substring.
 */

#ifndef PVA_TESTS_EXPECT_SIM_ERROR_HH
#define PVA_TESTS_EXPECT_SIM_ERROR_HH

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "sim/sim_error.hh"

namespace pva::test
{

template <typename Fn>
void
expectSimError(Fn &&fn, SimErrorKind kind, const std::string &substr)
{
    try {
        std::forward<Fn>(fn)();
        ADD_FAILURE() << "expected SimError[" << simErrorKindName(kind)
                      << "] containing '" << substr << "', got no throw";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), kind) << e.what();
        EXPECT_NE(std::string(e.what()).find(substr), std::string::npos)
            << "diagnostic '" << e.what() << "' lacks '" << substr << "'";
    }
}

} // namespace pva::test

#endif // PVA_TESTS_EXPECT_SIM_ERROR_HH
