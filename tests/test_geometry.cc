/**
 * @file
 * Address-mapping tests: bank decode, device coordinates, and the
 * compose/decompose round trip for word and block interleaves.
 */

#include <gtest/gtest.h>

#include "expect_sim_error.hh"
#include "sdram/geometry.hh"

namespace pva
{
namespace
{

TEST(Geometry, DefaultsMatchThePrototype)
{
    Geometry geo;
    EXPECT_EQ(geo.banks(), 16u);
    EXPECT_EQ(geo.bankBits(), 4u);
    EXPECT_EQ(geo.interleave(), 1u);
    EXPECT_EQ(geo.internalBanks(), 4u);
    // Micron 256 Mbit class: 8192 rows x 4 banks x 512 cols.
    EXPECT_EQ(geo.wordsPerBank(), 8192ull * 4 * 512);
}

TEST(Geometry, WordInterleaveBankIsLowBits)
{
    Geometry geo(16, 1);
    for (WordAddr w : {0ull, 1ull, 15ull, 16ull, 31ull, 12345ull})
        EXPECT_EQ(geo.bankOf(w), w % 16);
}

TEST(Geometry, CacheLineInterleaveBankSkipsBlockOffset)
{
    // N = 32-word lines over 16 banks: DecodeBank = (w >> 5) mod 16.
    Geometry geo(16, 32);
    EXPECT_EQ(geo.bankOf(0), 0u);
    EXPECT_EQ(geo.bankOf(31), 0u);
    EXPECT_EQ(geo.bankOf(32), 1u);
    EXPECT_EQ(geo.bankOf(32 * 16), 0u);
    EXPECT_EQ(geo.bankOf(32 * 17 + 5), 1u);
}

TEST(Geometry, BankLocalIsDenseWithinOneBank)
{
    Geometry geo(4, 2);
    // Bank 1 holds words 2,3, 10,11, 18,19, ... — local indices 0,1,2,...
    std::vector<WordAddr> bank1;
    for (WordAddr w = 0; w < 64; ++w) {
        if (geo.bankOf(w) == 1)
            bank1.push_back(geo.bankLocal(w));
    }
    for (std::size_t i = 0; i < bank1.size(); ++i)
        EXPECT_EQ(bank1[i], i);
}

TEST(Geometry, ComposeInvertsDecompose)
{
    for (unsigned interleave : {1u, 4u}) {
        Geometry geo(16, interleave, 9, 2, 13);
        for (WordAddr w : {WordAddr{0}, WordAddr{17}, WordAddr{511},
                           WordAddr{8192}, WordAddr{1234567},
                           geo.wordsPerBank() * 16 - 1}) {
            unsigned bank = geo.bankOf(w);
            DeviceCoords c = geo.decompose(w);
            EXPECT_EQ(geo.compose(bank, c), w) << "w=" << w;
            EXPECT_LT(c.col, 512u);
            EXPECT_LT(c.internalBank, 4u);
            EXPECT_LT(c.row, 8192u);
        }
    }
}

TEST(Geometry, ConsecutiveWordsInBankSweepColumnsFirst)
{
    Geometry geo(16, 1);
    // Words 0, 16, 32 ... live in bank 0 at columns 0, 1, 2 ...
    for (unsigned i = 0; i < 512; ++i) {
        DeviceCoords c = geo.decompose(static_cast<WordAddr>(i) * 16);
        EXPECT_EQ(c.col, i);
        EXPECT_EQ(c.internalBank, 0u);
        EXPECT_EQ(c.row, 0u);
    }
    // The 512th bank-local word crosses into internal bank 1.
    DeviceCoords c = geo.decompose(512ull * 16);
    EXPECT_EQ(c.col, 0u);
    EXPECT_EQ(c.internalBank, 1u);
    EXPECT_EQ(c.row, 0u);
}

TEST(GeometryDeath, RejectsNonPowerOfTwo)
{
    test::expectSimError([] { Geometry(12, 1); }, SimErrorKind::Config,
                         "power");
    test::expectSimError([] { Geometry(16, 3); }, SimErrorKind::Config,
                         "power");
}

} // anonymous namespace
} // namespace pva
