/**
 * @file
 * Baseline memory-system tests: cost accounting (line fills, serial
 * command cycles), functional correctness, serial ordering, and the
 * outstanding-transaction limit.
 */

#include <gtest/gtest.h>

#include "baselines/cacheline_system.hh"
#include "baselines/gathering_system.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

VectorCommand
cmd(WordAddr base, std::uint32_t stride, bool read = true,
    std::uint32_t len = 32)
{
    VectorCommand c;
    c.base = base;
    c.stride = stride;
    c.length = len;
    c.isRead = read;
    return c;
}

Cycle
runOne(MemorySystem &sys, const VectorCommand &c,
       const std::vector<Word> *wd, std::vector<Word> *out = nullptr)
{
    Simulation sim;
    sim.add(&sys);
    EXPECT_TRUE(sys.trySubmit(c, 0, wd));
    sim.runUntil([&] {
        auto done = sys.drainCompletions();
        if (done.empty())
            return false;
        if (out)
            *out = std::move(done.front().data);
        return true;
    });
    return sim.now();
}

TEST(CacheLineSystem, DistinctLineCounting)
{
    // Stride 1: 32 consecutive words from an aligned base = 1 line.
    EXPECT_EQ(CacheLineSystem::distinctLines(cmd(0, 1), 32), 1u);
    // Unaligned base straddles two lines.
    EXPECT_EQ(CacheLineSystem::distinctLines(cmd(16, 1), 32), 2u);
    // Stride 32: one line per element.
    EXPECT_EQ(CacheLineSystem::distinctLines(cmd(0, 32), 32), 32u);
    // Stride 19: floor reuse — elements 0,1 may share a line sometimes.
    unsigned d19 = CacheLineSystem::distinctLines(cmd(0, 19), 32);
    EXPECT_GT(d19, 16u);
    EXPECT_LT(d19, 32u);
}

TEST(CacheLineSystem, PaperAccountingFillsPerElement)
{
    CacheLineSystem sys("cl");
    // Paper accounting: stride 19 -> floor(32/19) = 1 element per line.
    EXPECT_EQ(sys.lineFills(cmd(0, 19)), 32u);
    EXPECT_EQ(sys.lineFills(cmd(0, 16)), 16u);
    EXPECT_EQ(sys.lineFills(cmd(0, 4)), 4u);
    EXPECT_EQ(sys.lineFills(cmd(0, 1)), 1u);
    EXPECT_EQ(sys.lineFills(cmd(0, 64)), 32u);
}

TEST(CacheLineSystem, OptimisticReuseUsesDistinctLines)
{
    CacheLineConfig cfg;
    cfg.optimisticLineReuse = true;
    CacheLineSystem sys("cl", cfg);
    EXPECT_EQ(sys.lineFills(cmd(0, 19)),
              CacheLineSystem::distinctLines(cmd(0, 19), 32));
}

TEST(CacheLineSystem, TwentyCyclesPerLine)
{
    CacheLineSystem sys("cl");
    Cycle t = runOne(sys, cmd(0, 1), nullptr);
    // 1 line x 20 cycles (plus a queue-entry cycle).
    EXPECT_GE(t, 20u);
    EXPECT_LE(t, 22u);
    EXPECT_EQ(sys.statLineFills.value(), 1u);
}

TEST(CacheLineSystem, FunctionalGatherAndScatter)
{
    CacheLineSystem sys("cl");
    std::vector<Word> wd(32);
    for (unsigned i = 0; i < 32; ++i)
        wd[i] = 7000 + i;
    runOne(sys, cmd(500, 19, false), &wd);
    std::vector<Word> rd;
    runOne(sys, cmd(500, 19, true), nullptr, &rd);
    EXPECT_EQ(rd, wd);
}

TEST(CacheLineSystem, SerialQueueCompletesInOrder)
{
    CacheLineSystem sys("cl");
    Simulation sim;
    sim.add(&sys);
    for (std::uint64_t t = 0; t < 4; ++t)
        ASSERT_TRUE(sys.trySubmit(cmd(t * 4096, 1), t, nullptr));
    EXPECT_FALSE(sys.busy() == false);
    std::vector<std::uint64_t> order;
    sim.runUntil([&] {
        for (Completion &c : sys.drainCompletions())
            order.push_back(c.tag);
        return order.size() == 4;
    });
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(CacheLineSystem, EightOutstandingLimit)
{
    CacheLineSystem sys("cl");
    for (std::uint64_t t = 0; t < 8; ++t)
        ASSERT_TRUE(sys.trySubmit(cmd(t, 1), t, nullptr));
    EXPECT_FALSE(sys.trySubmit(cmd(0, 1), 9, nullptr));
}

TEST(GatheringSystem, CommandCycleAccounting)
{
    GatheringSystem sys("ga");
    // tRP + tRCD + tCL + L + L/2 = 2+2+2+32+16 = 54.
    EXPECT_EQ(sys.commandCycles(cmd(0, 19)), 54u);
    EXPECT_EQ(sys.commandCycles(cmd(0, 1, true, 16)), 30u);
}

TEST(GatheringSystem, CostIsStrideIndependent)
{
    Cycle prev = 0;
    for (std::uint32_t s : {1u, 4u, 19u, 100u}) {
        GatheringSystem sys("ga");
        Cycle t = runOne(sys, cmd(0, s), nullptr);
        if (prev) {
            EXPECT_EQ(t, prev) << "gathering cost ignores stride";
        }
        prev = t;
    }
}

TEST(GatheringSystem, FunctionalRoundTrip)
{
    GatheringSystem sys("ga");
    std::vector<Word> wd(32);
    for (unsigned i = 0; i < 32; ++i)
        wd[i] = 1234 + 3 * i;
    runOne(sys, cmd(321, 7, false), &wd);
    std::vector<Word> rd;
    runOne(sys, cmd(321, 7, true), nullptr, &rd);
    EXPECT_EQ(rd, wd);
    EXPECT_EQ(sys.statElements.value(), 64u);
}

TEST(Baselines, AgreeFunctionallyWithEachOther)
{
    // Same writes through both systems leave the same memory image.
    CacheLineSystem a("cl");
    GatheringSystem b("ga");
    std::vector<Word> wd(32);
    for (unsigned i = 0; i < 32; ++i)
        wd[i] = i * i;
    runOne(a, cmd(77, 5, false), &wd);
    runOne(b, cmd(77, 5, false), &wd);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(a.memory().read(77 + 5 * i), b.memory().read(77 + 5 * i));
}

} // anonymous namespace
} // namespace pva
