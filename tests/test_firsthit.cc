/**
 * @file
 * Unit and property tests for the chapter 4 FirstHit/NextHit algorithms:
 * the fast word-interleave theorems against the brute-force definition,
 * over the full (bank count, stride, base, length) parameter space.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/firsthit.hh"

namespace pva
{
namespace
{

TEST(DecomposeStride, OddStrideHasZeroS)
{
    StrideDecomposition d = decomposeStride(19, 4);
    EXPECT_EQ(d.strideModM, 3u); // 19 mod 16
    EXPECT_EQ(d.s, 0u);
    EXPECT_EQ(d.sigma, 3u);
    EXPECT_EQ(d.delta, 16u); // 2^(4-0): all 16 banks hit
}

TEST(DecomposeStride, PaperExampleStride12)
{
    // S = 12 = 3 * 2^2, so s = 2: only every 4th bank hit.
    StrideDecomposition d = decomposeStride(12, 4);
    EXPECT_EQ(d.s, 2u);
    EXPECT_EQ(d.sigma, 3u);
    EXPECT_EQ(d.delta, 4u);
}

TEST(DecomposeStride, MultipleOfMStaysInOneBank)
{
    StrideDecomposition d = decomposeStride(32, 4);
    EXPECT_TRUE(d.wholeVectorInOneBank());
    EXPECT_EQ(d.delta, 1u);
}

TEST(ComputeK1, IsModularInverseOfSigma)
{
    // K1 = sigma^-1 mod 2^(m-s): verify (K1 * sigma) mod 2^(m-s) == 1.
    for (unsigned m = 1; m <= 8; ++m) {
        const std::uint32_t M = 1u << m;
        for (std::uint32_t sm = 1; sm < M; ++sm) {
            unsigned s = trailingZeros(sm);
            std::uint32_t sigma = sm >> s;
            std::uint32_t delta = 1u << (m - s);
            std::uint32_t k1 = computeK1(sm, m);
            EXPECT_LT(k1, delta) << "K1 < 2^(m-s) (theorem 4.3 basis)";
            EXPECT_EQ((static_cast<std::uint64_t>(k1) * sigma) % delta,
                      1u % delta)
                << "m=" << m << " sm=" << sm;
        }
    }
}

TEST(NextHitWord, PaperStride10Example)
{
    // M = 16, stride 10 = 5 * 2^1: delta = 2^(4-1) = 8 — consecutive
    // elements hit banks 2,12,6,0,10,4,14,8,2,... (period 8).
    EXPECT_EQ(nextHitWord(10, 4), 8u);
    VectorCommand v;
    v.base = 2;
    v.stride = 10;
    v.length = 32;
    Geometry geo(16, 1);
    std::vector<unsigned> banks;
    for (unsigned i = 0; i < 9; ++i)
        banks.push_back(geo.bankOf(v.element(i)));
    EXPECT_EQ(banks, (std::vector<unsigned>{2, 12, 6, 0, 10, 4, 14, 8, 2}));
}

/** Parameter point for the exhaustive fast-vs-brute sweep. */
struct SweepParam
{
    unsigned m;
    std::uint32_t stride;
};

class FirstHitSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(FirstHitSweep, MatchesBruteForceForAllBanksAndBases)
{
    const auto [m, stride] = GetParam();
    const unsigned M = 1u << m;
    Geometry geo(M, 1);
    for (std::uint32_t base : {0u, 1u, 5u, M - 1, M + 3, 1000u}) {
        for (std::uint32_t length : {1u, 7u, 32u}) {
            VectorCommand v;
            v.base = base;
            v.stride = stride;
            v.length = length;
            for (unsigned b = 0; b < M; ++b) {
                FirstHit fast = firstHitWord(v, b, m);
                FirstHit brute = firstHitBrute(v, b, geo);
                EXPECT_EQ(fast, brute)
                    << "m=" << m << " S=" << stride << " B=" << base
                    << " L=" << length << " bank=" << b;
            }
        }
    }
}

std::vector<SweepParam>
sweepParams()
{
    std::vector<SweepParam> p;
    for (unsigned m : {1u, 2u, 3u, 4u, 5u}) {
        for (std::uint32_t s = 1; s <= (2u << m) + 3; ++s)
            p.push_back({m, s});
    }
    return p;
}

INSTANTIATE_TEST_SUITE_P(AllStrides, FirstHitSweep,
                         ::testing::ValuesIn(sweepParams()));

TEST(SubVector, PartitionsTheVectorAcrossBanks)
{
    // Every vector index must appear in exactly one bank's sub-vector.
    for (unsigned m : {2u, 4u}) {
        const unsigned M = 1u << m;
        for (std::uint32_t stride = 1; stride <= 2 * M + 1; ++stride) {
            for (std::uint32_t base : {0u, 3u, 17u}) {
                VectorCommand v;
                v.base = base;
                v.stride = stride;
                v.length = 32;
                std::vector<unsigned> hit_count(v.length, 0);
                for (unsigned b = 0; b < M; ++b) {
                    SubVector sv = subVectorWord(v, b, m);
                    if (!sv.hit)
                        continue;
                    for (std::uint32_t j = 0; j < sv.count; ++j) {
                        std::uint32_t idx = sv.index(j);
                        ASSERT_LT(idx, v.length);
                        ++hit_count[idx];
                    }
                }
                for (std::uint32_t i = 0; i < v.length; ++i) {
                    EXPECT_EQ(hit_count[i], 1u)
                        << "m=" << m << " S=" << stride << " B=" << base
                        << " index " << i;
                }
            }
        }
    }
}

TEST(SubVector, ElementsActuallyLiveInTheBank)
{
    Geometry geo(16, 1);
    for (std::uint32_t stride = 1; stride <= 40; ++stride) {
        VectorCommand v;
        v.base = 12345;
        v.stride = stride;
        v.length = 32;
        for (unsigned b = 0; b < 16; ++b) {
            SubVector sv = subVectorWord(v, b, 4);
            for (std::uint32_t j = 0; sv.hit && j < sv.count; ++j) {
                EXPECT_EQ(geo.bankOf(v.element(sv.index(j))), b)
                    << "S=" << stride << " bank=" << b << " j=" << j;
            }
        }
    }
}

TEST(ExpandBankIndices, MatchesBruteForceUnderBlockInterleave)
{
    // Section 4.1.3: the logical-bank transform must reproduce the
    // physical bank assignment for cache-line interleaved systems.
    for (unsigned interleave : {1u, 2u, 4u, 8u}) {
        Geometry geo(8, interleave);
        for (std::uint32_t stride = 1; stride <= 20; ++stride) {
            for (std::uint32_t base : {0u, 5u, 63u}) {
                VectorCommand v;
                v.base = base;
                v.stride = stride;
                v.length = 32;
                for (unsigned b = 0; b < 8; ++b) {
                    std::vector<std::uint32_t> expect;
                    for (std::uint32_t i = 0; i < v.length; ++i) {
                        if (geo.bankOf(v.element(i)) == b)
                            expect.push_back(i);
                    }
                    EXPECT_EQ(expandBankIndices(v, b, geo), expect)
                        << "N=" << interleave << " S=" << stride
                        << " B=" << base << " bank=" << b;
                }
            }
        }
    }
}

TEST(NextHitRecursive, MatchesBruteForceOverParameterSpace)
{
    // The section 4.1.2 recursive algorithm vs the definitional scan,
    // across block sizes, system sizes, offsets and strides.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (std::uint32_t nm : {n * 4, n * 8, n * 16}) {
            for (std::uint32_t theta = 0; theta < n; ++theta) {
                for (std::uint32_t stride = 1; stride < nm; ++stride) {
                    auto brute = nextHitBrute(theta, stride, n, nm);
                    ASSERT_TRUE(brute.has_value())
                        << "theta=" << theta << " S=" << stride
                        << " N=" << n << " NM=" << nm;
                    EXPECT_EQ(nextHitRecursive(theta, stride, n, nm),
                              *brute)
                        << "theta=" << theta << " S=" << stride
                        << " N=" << n << " NM=" << nm;
                }
            }
        }
    }
}

TEST(NextHitWord, AgreesWithRecursiveForWordInterleave)
{
    // For N = 1 the general algorithm must reduce to theorem 4.4.
    for (unsigned m : {2u, 3u, 4u}) {
        const std::uint32_t M = 1u << m;
        for (std::uint32_t stride = 1; stride < M; ++stride)
            EXPECT_EQ(nextHitRecursive(0, stride, 1, M),
                      nextHitWord(stride, m))
                << "m=" << m << " S=" << stride;
    }
}

TEST(FirstHit, ZeroLengthNeverHits)
{
    VectorCommand v;
    v.base = 0;
    v.stride = 1;
    v.length = 0;
    EXPECT_FALSE(firstHitWord(v, 0, 4).hit);
}

TEST(FirstHit, PaperCase1Example)
{
    // B=0, S=8, L=16 with M=8 banks (word view): banks 0,2,4,6 repeat.
    // (The paper's example uses N=4,M=8; in word view NM=32, S=8.)
    VectorCommand v;
    v.base = 0;
    v.stride = 8;
    v.length = 16;
    Geometry geo(32, 1);
    std::vector<unsigned> seq;
    for (unsigned i = 0; i < 8; ++i)
        seq.push_back(geo.bankOf(v.element(i)));
    EXPECT_EQ(seq, (std::vector<unsigned>{0, 8, 16, 24, 0, 8, 16, 24}));
}

} // anonymous namespace
} // namespace pva
