/**
 * @file
 * Tests for the design-space features beyond the paper's prototype
 * point: block-interleaved PVA (N copies of the FirstHit logic), SDRAM
 * auto-refresh, and the open-row policy ablation knobs.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/pva_unit.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

std::map<std::uint64_t, Completion>
collectN(MemorySystem &sys, Simulation &sim, std::size_t n)
{
    std::map<std::uint64_t, Completion> done;
    sim.runUntil(
        [&] {
            for (Completion &c : sys.drainCompletions()) {
                std::uint64_t tag = c.tag;
                done.emplace(tag, std::move(c));
            }
            return done.size() >= n;
        },
        10000000);
    return done;
}

VectorCommand
readCmd(WordAddr base, std::uint32_t stride, std::uint32_t len = 32)
{
    VectorCommand c;
    c.base = base;
    c.stride = stride;
    c.length = len;
    c.isRead = true;
    return c;
}

class BlockInterleave : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(BlockInterleave, GathersCorrectlyAtEveryStride)
{
    PvaConfig cfg;
    cfg.geometry = Geometry(16, GetParam());
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);

    std::uint64_t tag = 0;
    for (std::uint32_t stride : {1u, 2u, 7u, 16u, 19u, 33u}) {
        VectorCommand c = readCmd(12345, stride);
        ASSERT_TRUE(sys.trySubmit(c, tag, nullptr));
        auto done = collectN(sys, sim, 1);
        const auto &data = done.at(tag).data;
        for (std::uint32_t i = 0; i < 32; ++i) {
            EXPECT_EQ(data[i],
                      SparseMemory::backgroundPattern(c.element(i)))
                << "N=" << GetParam() << " S=" << stride << " i=" << i;
        }
        ++tag;
    }
}

TEST_P(BlockInterleave, ScatterRoundTrip)
{
    PvaConfig cfg;
    cfg.geometry = Geometry(8, GetParam());
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);

    std::vector<Word> payload(32);
    for (unsigned i = 0; i < 32; ++i)
        payload[i] = 0xf00 + i;
    VectorCommand wr = readCmd(999, 13);
    wr.isRead = false;
    ASSERT_TRUE(sys.trySubmit(wr, 0, &payload));
    collectN(sys, sim, 1);
    ASSERT_TRUE(sys.trySubmit(readCmd(999, 13), 1, nullptr));
    auto done = collectN(sys, sim, 1);
    EXPECT_EQ(done.at(1).data, payload);
}

INSTANTIATE_TEST_SUITE_P(InterleaveFactors, BlockInterleave,
                         ::testing::Values(2, 4, 8, 32));

TEST(BlockInterleave, UnitStrideUsesFewerBanksThanWordInterleave)
{
    // With 32-word blocks over 16 banks, one 32-element unit-stride
    // line lives entirely in one bank; word interleave spreads it over
    // all 16. Check via per-BC element stats.
    PvaConfig block_cfg;
    block_cfg.geometry = Geometry(16, 32);
    PvaUnit block("block", block_cfg);
    PvaUnit word("word", PvaConfig{});

    for (PvaUnit *sys : {&block, &word}) {
        Simulation sim;
        sim.add(sys);
        ASSERT_TRUE(sys->trySubmit(readCmd(0, 1), 0, nullptr));
        collectN(*sys, sim, 1);
    }
    EXPECT_EQ(block.stats().scalar("bc0.elements"), 32u);
    EXPECT_EQ(block.stats().scalar("bc1.elements"), 0u);
    EXPECT_EQ(word.stats().scalar("bc0.elements"), 2u);
    EXPECT_EQ(word.stats().scalar("bc15.elements"), 2u);
}

TEST(Refresh, StealsCyclesAndClosesRows)
{
    PvaConfig with, without;
    with.timing.tREFI = 50; // absurdly frequent, to make it visible
    with.timing.tRFC = 10;

    Cycle t_with, t_without;
    for (auto *p : {&with, &without}) {
        PvaUnit sys("pva", *p);
        Simulation sim;
        sim.add(&sys);
        std::vector<Word> expect(32);
        // Stride 16 concentrates all elements in one bank: the run is
        // device-bound, so stolen refresh cycles are visible end to end.
        VectorCommand c = readCmd(777, 16);
        for (unsigned i = 0; i < 32; ++i)
            expect[i] = SparseMemory::backgroundPattern(c.element(i));
        // Several back-to-back reads so refreshes land mid-stream.
        for (std::uint64_t t = 0; t < 6; ++t)
            ASSERT_TRUE(sys.trySubmit(c, t, nullptr));
        auto done = collectN(sys, sim, 6);
        for (auto &[tag, comp] : done)
            EXPECT_EQ(comp.data, expect) << "refresh must not corrupt";
        (p == &with ? t_with : t_without) = sim.now();
        if (p == &with) {
            EXPECT_GT(sys.stats().scalar("dev0.refreshes"), 0u);
        }
    }
    EXPECT_GT(t_with, t_without) << "refresh steals bandwidth";
}

TEST(Refresh, DisabledByDefault)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    ASSERT_TRUE(sys.trySubmit(readCmd(0, 1), 0, nullptr));
    collectN(sys, sim, 1);
    EXPECT_EQ(sys.stats().scalar("dev0.refreshes"), 0u);
}

Cycle
runPolicyWorkload(RowPolicy policy)
{
    PvaConfig cfg;
    cfg.bc.rowPolicy = policy;
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);
    // Row-friendly workload: consecutive unit-stride lines walk the
    // same rows, so AlwaysClose should pay extra activates. Submit
    // within the 8-transaction window, then refill as completions
    // arrive.
    std::uint64_t submitted = 0, completed = 0;
    sim.runUntil(
        [&] {
            while (submitted < 16 &&
                   sys.trySubmit(readCmd(submitted * 32, 1), submitted,
                                 nullptr)) {
                ++submitted;
            }
            completed += sys.drainCompletions().size();
            return completed == 16;
        },
        1000000);
    return sim.now();
}

TEST(RowPolicy, ManagedBeatsAlwaysCloseOnRowFriendlyStreams)
{
    Cycle managed = runPolicyWorkload(RowPolicy::Managed);
    Cycle closed = runPolicyWorkload(RowPolicy::AlwaysClose);
    Cycle open = runPolicyWorkload(RowPolicy::AlwaysOpen);
    EXPECT_LE(managed, closed);
    // On a pure streaming workload Managed should track AlwaysOpen.
    EXPECT_LE(managed, open + open / 10);
}

TEST(RowPolicy, AllPoliciesAreFunctionallyEquivalent)
{
    for (RowPolicy p : {RowPolicy::Managed, RowPolicy::AlwaysClose,
                        RowPolicy::AlwaysOpen}) {
        PvaConfig cfg;
        cfg.bc.rowPolicy = p;
        PvaUnit sys("pva", cfg);
        Simulation sim;
        sim.add(&sys);
        std::vector<Word> payload(32);
        for (unsigned i = 0; i < 32; ++i)
            payload[i] = 0xaa00 + i;
        VectorCommand wr = readCmd(4242, 7);
        wr.isRead = false;
        ASSERT_TRUE(sys.trySubmit(wr, 0, &payload));
        collectN(sys, sim, 1);
        ASSERT_TRUE(sys.trySubmit(readCmd(4242, 7), 1, nullptr));
        auto done = collectN(sys, sim, 1);
        EXPECT_EQ(done.at(1).data, payload)
            << "policy " << static_cast<int>(p);
    }
}

} // anonymous namespace
} // namespace pva
