/**
 * @file
 * Fleet subsystem tests.
 *
 * The load-bearing one is the differential: a single-tenant fleet
 * under the hierarchical FleetArbiter must be cycle-exact against the
 * flat StreamArbiter across systems, policies, clocking modes, and
 * shed configurations — same drain cycle, same latency distributions,
 * same counters. That is what licenses every fleet-scale number the
 * capacity-planning recipes produce.
 *
 * The rest holds the sharded runner to its determinism contract
 * (byte-identical JSON at any worker count), checks conservation
 * across tenants, and cross-checks the MessageBus telemetry path
 * against the arbiter's own counters.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "expect_sim_error.hh"
#include "fleet/fleet_runner.hh"
#include "sim/sim_error.hh"
#include "traffic/traffic_runner.hh"

using namespace pva;

namespace
{

/** The fleet runner's per-stream seed mix (fleet/fleet_runner.hh). */
constexpr std::uint64_t kSeedStep = 0x9e3779b97f4a7c15ULL;

struct Variant
{
    SystemKind system;
    ArbPolicy policy;
    ClockingMode clocking;
    bool shed;
};

std::string
variantName(const Variant &v)
{
    std::string s = systemShortName(v.system);
    s += "/";
    s += arbPolicyName(v.policy);
    s += "/";
    s += clockingModeName(v.clocking);
    s += v.shed ? "/shed" : "/noshed";
    return s;
}

/** Shared stream shape: open-loop so shedding has queues to cut. */
StreamConfig
templateStream(bool shed)
{
    StreamConfig s;
    s.mode = ArrivalMode::OpenLoop;
    s.requestsPerKilocycle = shed ? 60.0 : 20.0;
    s.requests = 48;
    s.queueCapacity = 8;
    s.seed = 9;
    s.pattern.minLength = 8;
    s.pattern.maxLength = 8;
    s.pattern.regionWords = 1 << 14;
    return s;
}

fleet::FleetConfig
fleetConfig(const Variant &v, unsigned streams)
{
    fleet::FleetConfig fc;
    fc.system = v.system;
    fc.config.clocking = v.clocking;
    fc.arbiter.policy = v.policy;
    fc.arbiter.agingThreshold = 512;
    fc.arbiter.shed.enabled = v.shed;
    fc.arbiter.shed.defaultDeadline = 400;
    fc.arbiter.shed.queueHighWatermark = 0.75;
    fc.perStreamStats = true;

    fleet::TenantSpec spec;
    spec.count = 1;
    spec.streamsPerTenant = streams;
    spec.stream = templateStream(v.shed);
    spec.regionStrideWords = spec.stream.pattern.regionWords;
    fc.tenants.push_back(spec);
    return fc;
}

/** The flat twin: same streams, same seeds, same regions. */
TrafficConfig
flatTwin(const Variant &v, unsigned streams)
{
    TrafficConfig tc;
    tc.system = v.system;
    tc.config.clocking = v.clocking;
    tc.arbiter.policy = v.policy;
    tc.arbiter.agingThreshold = 512;
    tc.arbiter.shed.enabled = v.shed;
    tc.arbiter.shed.defaultDeadline = 400;
    tc.arbiter.shed.queueHighWatermark = 0.75;
    const StreamConfig base = templateStream(v.shed);
    for (unsigned g = 0; g < streams; ++g) {
        StreamConfig s = base;
        s.seed = base.seed + kSeedStep * (g + 1);
        s.pattern.regionBase =
            base.pattern.regionBase + g * base.pattern.regionWords;
        if (v.policy == ArbPolicy::Priority)
            s.priority = 0;
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

void
expectSummaryEq(const LatencySummary &a, const LatencySummary &b,
                const std::string &what)
{
    EXPECT_EQ(a.samples, b.samples) << what;
    EXPECT_EQ(a.min, b.min) << what;
    EXPECT_EQ(a.max, b.max) << what;
    EXPECT_DOUBLE_EQ(a.mean, b.mean) << what;
    EXPECT_EQ(a.p50, b.p50) << what;
    EXPECT_EQ(a.p95, b.p95) << what;
    EXPECT_EQ(a.p99, b.p99) << what;
    EXPECT_EQ(a.p999, b.p999) << what;
}

std::string
jsonOf(const fleet::FleetResult &r)
{
    std::ostringstream os;
    r.dumpJson(os);
    return os.str();
}

} // anonymous namespace

TEST(FleetDifferential, SingleTenantMatchesFlatArbiterExactly)
{
    const unsigned streams = 6;
    for (SystemKind system :
         {SystemKind::PvaSdram, SystemKind::CacheLine}) {
        for (ArbPolicy policy : {ArbPolicy::Fifo, ArbPolicy::RoundRobin,
                                 ArbPolicy::Priority}) {
            for (ClockingMode clocking :
                 {ClockingMode::Exhaustive, ClockingMode::Event}) {
                for (bool shed : {false, true}) {
                    const Variant v{system, policy, clocking, shed};
                    SCOPED_TRACE(variantName(v));
                    const TrafficResult flat =
                        runTraffic(flatTwin(v, streams));
                    const fleet::FleetResult hier =
                        fleet::runFleet(fleetConfig(v, streams));

                    EXPECT_EQ(hier.cycles, flat.cycles);
                    EXPECT_EQ(hier.completed, flat.completed);
                    EXPECT_EQ(hier.words, flat.words);
                    EXPECT_EQ(hier.shed, flat.shed);
                    expectSummaryEq(hier.queueDelay, flat.queueDelay,
                                    "queueDelay");
                    expectSummaryEq(hier.serviceLatency,
                                    flat.serviceLatency,
                                    "serviceLatency");
                    expectSummaryEq(hier.totalLatency,
                                    flat.totalLatency, "totalLatency");
                    // Telemetry observed on the bus must agree with
                    // the counters the arbiter kept itself.
                    EXPECT_EQ(hier.busGrants, hier.grants);
                    EXPECT_EQ(hier.busSheds, hier.shed);
                }
            }
        }
    }
}

TEST(FleetDifferential, PriorityRampMatchesFlatUnderAging)
{
    // Distinct priorities exercise the aged-head starvation guard in
    // the hierarchical root arbiter.
    Variant v{SystemKind::PvaSdram, ArbPolicy::Priority,
              ClockingMode::Event, false};
    const unsigned streams = 5;

    fleet::FleetConfig fc;
    fc.system = v.system;
    fc.arbiter.policy = v.policy;
    fc.arbiter.agingThreshold = 256;
    fc.perStreamStats = true;
    for (unsigned g = 0; g < streams; ++g) {
        fleet::TenantSpec spec;
        spec.name = "p";
        spec.count = 1;
        spec.streamsPerTenant = 1;
        spec.stream = templateStream(false);
        spec.stream.priority = g;
        spec.stream.seed = 9 + 100 * g;
        spec.stream.pattern.regionBase =
            static_cast<WordAddr>(g) << 14;
        fc.tenants.push_back(spec);
    }

    TrafficConfig tc;
    tc.system = v.system;
    tc.arbiter.policy = v.policy;
    tc.arbiter.agingThreshold = 256;
    for (unsigned g = 0; g < streams; ++g) {
        StreamConfig s = templateStream(false);
        s.priority = g;
        // Tenant g's only stream has global index g.
        s.seed = (9 + 100 * g) + kSeedStep * (g + 1);
        s.pattern.regionBase = static_cast<WordAddr>(g) << 14;
        tc.streams.push_back(std::move(s));
    }

    const TrafficResult flat = runTraffic(tc);
    const fleet::FleetResult hier = fleet::runFleet(fc);
    EXPECT_EQ(hier.cycles, flat.cycles);
    EXPECT_EQ(hier.completed, flat.completed);
    expectSummaryEq(hier.totalLatency, flat.totalLatency,
                    "totalLatency");
}

TEST(FleetRunner, ResultsAreByteIdenticalAcrossWorkerCounts)
{
    Variant v{SystemKind::PvaSdram, ArbPolicy::Fifo,
              ClockingMode::Event, true};
    fleet::FleetConfig fc = fleetConfig(v, 2);
    fc.tenants[0].count = 8;
    fc.tenants[0].name = "t";
    fc.shards = 4;
    fc.perStreamStats = false;

    std::string first;
    for (unsigned jobs : {1u, 2u, 8u}) {
        fc.jobs = jobs;
        const std::string dump = jsonOf(fleet::runFleet(fc));
        if (first.empty())
            first = dump;
        else
            EXPECT_EQ(dump, first) << "jobs=" << jobs;
    }
}

TEST(FleetRunner, ReshardingPreservesPerTenantWork)
{
    // Offered work is a pure function of the scenario; sharding only
    // changes which streams contend. Per-tenant completions must be
    // identical at any shard count (each shard is its own memory
    // system, so per-tenant latency legitimately changes).
    Variant v{SystemKind::PvaSdram, ArbPolicy::Fifo,
              ClockingMode::Event, false};
    fleet::FleetConfig fc = fleetConfig(v, 2);
    fc.tenants[0].count = 6;

    std::vector<std::uint64_t> completions;
    for (unsigned shards : {1u, 2u, 6u}) {
        fc.shards = shards;
        const fleet::FleetResult r = fleet::runFleet(fc);
        std::vector<std::uint64_t> got;
        for (const fleet::TenantResult &t : r.tenantResults)
            got.push_back(t.completed);
        ASSERT_EQ(got.size(), 6u);
        if (completions.empty())
            completions = got;
        else
            EXPECT_EQ(got, completions) << "shards=" << shards;
    }
}

TEST(FleetRunner, MultiTenantTotalsAreConserved)
{
    Variant v{SystemKind::PvaSdram, ArbPolicy::RoundRobin,
              ClockingMode::Event, true};
    fleet::FleetConfig fc = fleetConfig(v, 3);
    fc.tenants[0].count = 5;
    fc.shards = 2;

    const fleet::FleetResult r = fleet::runFleet(fc);
    EXPECT_EQ(r.tenants, 5u);
    EXPECT_EQ(r.streams, 15u);
    EXPECT_EQ(r.shards, 2u);
    std::uint64_t completed = 0, shed = 0, words = 0;
    for (const fleet::TenantResult &t : r.tenantResults) {
        completed += t.completed;
        shed += t.shedDeadline + t.shedOverload;
        words += t.words;
    }
    EXPECT_EQ(completed, r.completed);
    EXPECT_EQ(shed, r.shed);
    EXPECT_EQ(words, r.words);
    EXPECT_EQ(r.grants, r.completed);
    EXPECT_EQ(r.busGrants, r.grants);
    EXPECT_EQ(r.busSheds, r.shed);
    // Every stream either completed or shed its offered requests.
    EXPECT_EQ(r.completed + r.shed,
              static_cast<std::uint64_t>(15 * 48));
}

TEST(FleetRunner, TimingCheckComposesAtFleetScale)
{
    // Disjoint per-stream regions keep the shadow-memory check clean.
    Variant v{SystemKind::PvaSdram, ArbPolicy::Fifo,
              ClockingMode::Event, false};
    fleet::FleetConfig fc = fleetConfig(v, 2);
    fc.tenants[0].count = 3;
    fc.config.timingCheck = true;
    fc.tenants[0].stream.pattern.readFraction = 0.5;
    const fleet::FleetResult r = fleet::runFleet(fc);
    EXPECT_EQ(r.completed, 6u * 48u);
}

TEST(FleetRunner, RejectsEmptyAndMalformedFleets)
{
    fleet::FleetConfig fc;
    test::expectSimError([&] { fleet::runFleet(fc); },
                         SimErrorKind::Config, "tenant");

    fleet::TenantSpec spec;
    spec.count = 0;
    fc.tenants.push_back(spec);
    test::expectSimError([&] { fleet::runFleet(fc); },
                         SimErrorKind::Config, "count");

    fc.tenants[0].count = 1;
    fc.tenants[0].streamsPerTenant = 0;
    test::expectSimError([&] { fleet::runFleet(fc); },
                         SimErrorKind::Config, "streams");
}
