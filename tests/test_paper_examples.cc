/**
 * @file
 * The worked examples printed in the paper, as executable tests.
 * Section 4.1.2 gives four bank-sequence examples for an N=4, M=8
 * cache-line interleaved system; lemma 4.2 gives the stride-12 and
 * stride-10 patterns; section 4.1.3 gives the logical-bank view of a
 * W=4, N=2, M=2 system.
 */

#include <gtest/gtest.h>

#include "core/firsthit.hh"

namespace pva
{
namespace
{

/** Bank of element i under N-word block interleave over M banks. */
std::vector<unsigned>
bankSequence(WordAddr base, std::uint32_t stride, std::uint32_t count,
             unsigned banks, unsigned interleave)
{
    Geometry geo(banks, interleave);
    VectorCommand v;
    v.base = base;
    v.stride = stride;
    v.length = count;
    std::vector<unsigned> seq;
    for (std::uint32_t i = 0; i < count; ++i)
        seq.push_back(geo.bankOf(v.element(i)));
    return seq;
}

TEST(PaperExamples, Section412Example1)
{
    // "B=0, S=8, L=16 ... The repeating sequence of banks hit by this
    // vector is 0,2,4,6,0,2,4,6,..." (M=8, N=4).
    auto seq = bankSequence(0, 8, 16, 8, 4);
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(seq[i], (2 * i) % 8) << "i=" << i;
}

TEST(PaperExamples, Section412Example2)
{
    // "B=5, S=8, L=16 ... sequence 1,3,5,7,1,3,5,7,..."
    auto seq = bankSequence(5, 8, 16, 8, 4);
    std::vector<unsigned> expect = {1, 3, 5, 7};
    for (std::uint32_t i = 0; i < 16; ++i)
        EXPECT_EQ(seq[i], expect[i % 4]) << "i=" << i;
}

TEST(PaperExamples, Section412Example3)
{
    // "B=0, S=9, L=4 ... sequence of banks hit is 0,2,4,6" (case 2.1).
    auto seq = bankSequence(0, 9, 4, 8, 4);
    EXPECT_EQ(seq, (std::vector<unsigned>{0, 2, 4, 6}));
}

TEST(PaperExamples, Section412Example4)
{
    // "B=0, S=9, L=10 ... 0,2,4,6,1,3,5,7,2,4" — the delta-theta
    // carry shifts the sequence (case 2.2).
    auto seq = bankSequence(0, 9, 10, 8, 4);
    EXPECT_EQ(seq,
              (std::vector<unsigned>{0, 2, 4, 6, 1, 3, 5, 7, 2, 4}));
}

TEST(PaperExamples, Lemma42Stride12)
{
    // "if S = 12, and thus s = 2, then only every 4th bank controller
    // may contain an element of the vector" (M=16, word interleave).
    VectorCommand v;
    v.base = 0;
    v.stride = 12;
    v.length = 64;
    for (unsigned b = 0; b < 16; ++b) {
        FirstHit fh = firstHitWord(v, b, 4);
        EXPECT_EQ(fh.hit, b % 4 == 0) << "bank " << b;
    }
}

TEST(PaperExamples, Lemma42Stride10Sequence)
{
    // "if M = 16, consecutive elements of a vector of stride 10 hit in
    // banks 2,12,6,0,10,4,14,8,2, etc." (base at bank 2).
    auto seq = bankSequence(2, 10, 9, 16, 1);
    EXPECT_EQ(seq,
              (std::vector<unsigned>{2, 12, 6, 0, 10, 4, 14, 8, 2}));
}

TEST(PaperExamples, Section413LogicalView)
{
    // Figure 4/5: a W*N*M = 4*2*2 system viewed as 16 logical banks
    // L0..L15, where word w belongs to logical bank w mod 16 and
    // physical bank (w >> 3) mod 2 (8 words per physical block).
    Geometry physical(2, 8); // W*N = 8 words per block, M = 2
    for (WordAddr w = 0; w < 64; ++w) {
        unsigned logical = static_cast<unsigned>(w % 16);
        EXPECT_EQ(physical.bankOf(w), logical / 8)
            << "logical bank " << logical;
    }
}

TEST(PaperExamples, AbstractVectorExample)
{
    // "vector V = <A, 4, 5> designates elements A[0], A[4], A[8],
    // A[12], and A[16]".
    VectorCommand v;
    v.base = 1000; // &A[0]
    v.stride = 4;
    v.length = 5;
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(v.element(i), 1000 + 4 * i);
}

} // anonymous namespace
} // namespace pva
