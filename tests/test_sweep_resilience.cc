/**
 * @file
 * Resilient-sweep tests: a bad or hung grid point is isolated, retried
 * within its budget, and accounted for in the SweepReport while the
 * rest of the sweep completes; config validation fails fast with a
 * SimError(Config); and both watchdogs fire well before the suite's
 * ctest timeout.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>

#include "expect_sim_error.hh"
#include "kernels/sweep_executor.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

SweepRequest
smallPoint(std::uint32_t stride = 3)
{
    SweepRequest req;
    req.kernel = KernelId::Copy;
    req.stride = stride;
    req.elements = 128;
    return req;
}

TEST(SweepResilience, BadPointIsIsolatedAndTheSweepCompletes)
{
    std::vector<SweepRequest> grid = {smallPoint(1), smallPoint(7),
                                      smallPoint(19)};
    grid[1].config.bc.lineWords = 0; // rejected by validate()

    SweepExecutor ex(2);
    ex.setMaxAttempts(2);
    SweepReport report = ex.runReport(grid);

    ASSERT_EQ(report.points.size(), 3u);
    EXPECT_EQ(report.ok, 2u);
    EXPECT_EQ(report.retried, 0u);
    EXPECT_EQ(report.failed, 1u);
    EXPECT_FALSE(report.allOk());

    EXPECT_EQ(report.points[0].status, PointStatus::Ok);
    EXPECT_EQ(report.points[1].status, PointStatus::Failed);
    EXPECT_EQ(report.points[2].status, PointStatus::Ok);
    EXPECT_EQ(report.points[0].mismatches, 0u);
    EXPECT_EQ(report.points[2].mismatches, 0u);

    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].index, 1u);
    EXPECT_EQ(report.failures[0].attempts, 2u);
    EXPECT_NE(report.failures[0].error.find("lineWords"),
              std::string::npos)
        << report.failures[0].error;
    EXPECT_EQ(ex.stats().scalar("sweep.failures"), 1u);
}

TEST(SweepResilience, CycleWatchdogFailsFastWithoutRetry)
{
    std::vector<SweepRequest> grid = {smallPoint()};
    grid[0].limits.maxCycles = 10; // far below what the kernel needs

    SweepExecutor ex(1);
    SweepReport report = ex.runReport(grid);

    ASSERT_EQ(report.failed, 1u);
    EXPECT_EQ(report.points[0].status, PointStatus::Failed);
    EXPECT_EQ(report.points[0].attempts, 1u)
        << "watchdog expiries are deterministic and must not be retried";
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_NE(report.failures[0].error.find("watchdog"),
              std::string::npos)
        << report.failures[0].error;
}

TEST(SweepResilience, WallClockWatchdogTripsQuickly)
{
    // A point that never converges must be cut off by the wall-clock
    // watchdog in ~the configured budget — not by the 300 s ctest
    // timeout. The predicate below never becomes true, simulating a
    // hung point.
    Simulation sim;
    auto t0 = std::chrono::steady_clock::now();
    test::expectSimError(
        [&] {
            sim.runUntil([] { return false; }, 4000000000ULL, 50.0);
        },
        SimErrorKind::Watchdog, "wall-clock");
    double millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    EXPECT_LT(millis, 5000.0)
        << "watchdog took " << millis << " ms for a 50 ms budget";
}

TEST(SweepResilience, HungPointFailsViaExecutorTimeout)
{
    // The executor-level default timeout reaches points that set no
    // budget themselves.
    std::vector<SweepRequest> grid = {smallPoint()};
    grid[0].elements = 4096;
    grid[0].stride = 19;
    // Make the point effectively hang: a huge cycle budget with a tiny
    // wall-clock allowance. (A real hang would spin the same way; the
    // watchdog cannot tell and should not care.)
    grid[0].limits.maxCycles = 4000000000ULL;

    SweepExecutor ex(1);
    ex.setPointTimeout(0.001); // expire essentially immediately
    auto t0 = std::chrono::steady_clock::now();
    SweepReport report = ex.runReport(grid);
    double millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    ASSERT_EQ(report.failed, 1u);
    EXPECT_EQ(report.points[0].attempts, 1u);
    EXPECT_NE(report.failures[0].error.find("wall-clock"),
              std::string::npos)
        << report.failures[0].error;
    EXPECT_LT(millis, 60000.0);
}

TEST(SweepResilience, PersistentCorruptionExhaustsTheAttemptBudget)
{
    // corruptFirstHitRate = 1.0 corrupts every sub-vector on every
    // attempt, so each retry (with its advanced fault seed) fails
    // again: the point must consume the full budget and end Failed.
    std::vector<SweepRequest> grid = {smallPoint()};
    grid[0].config.timingCheck = true;
    grid[0].config.faults.corruptFirstHitRate = 1.0;

    SweepExecutor ex(1);
    ex.setMaxAttempts(3);
    SweepReport report = ex.runReport(grid);

    ASSERT_EQ(report.failed, 1u);
    EXPECT_EQ(report.points[0].status, PointStatus::Failed);
    EXPECT_EQ(report.points[0].attempts, 3u);
    EXPECT_EQ(ex.stats().scalar("sweep.retries"), 2u);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].attempts, 3u);
}

TEST(SweepResilience, ReportJsonAccountsForEveryPoint)
{
    std::vector<SweepRequest> grid = {smallPoint(1), smallPoint(7)};
    grid[1].config.bc.transactions = 0; // invalid

    SweepExecutor ex(1);
    ex.setMaxAttempts(1);
    SweepReport report = ex.runReport(grid);
    std::ostringstream os;
    report.dumpJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"points\": 2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"ok\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"failed\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"index\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"kernel\": \"copy\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("transactions"), std::string::npos)
        << "the failure diagnostic should name the bad knob: " << json;
    EXPECT_NE(json.find("\"error\": \""), std::string::npos) << json;
}

TEST(SweepResilience, ValidateRejectsUnsupportableConfigs)
{
    using test::expectSimError;
    {
        SystemConfig c;
        c.bc.lineWords = 0;
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "lineWords");
    }
    {
        SystemConfig c;
        c.bc.lineWords = 31; // odd
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "even");
    }
    {
        SystemConfig c;
        c.bc.transactions = 300;
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "transactions");
    }
    {
        SystemConfig c;
        c.timing.tRAS = 9;
        c.timing.tRC = 5; // shorter than tRAS
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "tRC");
    }
    {
        SystemConfig c;
        c.timing.tREFI = 1000;
        c.timing.tRFC = 0;
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "tRFC");
    }
    {
        SystemConfig c;
        c.faults.dropTransferRate = 1.5;
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "dropTransferRate");
    }
    {
        SystemConfig c;
        c.geometry = Geometry(2, 64); // 64-word blocks > 32-word line
        expectSimError([&] { c.validate(); }, SimErrorKind::Config,
                       "interleave");
    }
    // Geometry itself rejects non-power-of-two shapes.
    test::expectSimError([] { Geometry g(12, 1); },
                         SimErrorKind::Config, "power of two");
}

TEST(SweepResilience, DefaultAndPaperConfigsValidate)
{
    SystemConfig{}.validate();
    SystemConfig refresh;
    refresh.timing.tREFI = 1562;
    refresh.timing.tRFC = 10;
    refresh.validate();
    SystemConfig checked;
    checked.timingCheck = true;
    checked.faults.dropTransferRate = 0.001;
    checked.validate();
}

} // anonymous namespace
} // namespace pva
