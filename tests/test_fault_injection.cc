/**
 * @file
 * Fault-injection tests: drops are recovered with correct data, a
 * corrupted FirstHit result is detected by the shadow gather model
 * instead of completing silently wrong, timing-only faults (refresh
 * and BC stalls) never change results, and a faulted sweep is
 * bit-deterministic for a given seed regardless of worker count.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/pva_unit.hh"
#include "expect_sim_error.hh"
#include "kernels/sweep_executor.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

/** Drive @p sys until @p n completions arrive; returns them by tag. */
std::map<std::uint64_t, Completion>
collectN(MemorySystem &sys, Simulation &sim, std::size_t n)
{
    std::map<std::uint64_t, Completion> done;
    sim.runUntil(
        [&] {
            for (Completion &c : sys.drainCompletions()) {
                std::uint64_t tag = c.tag;
                done.emplace(tag, std::move(c));
            }
            return done.size() >= n;
        },
        1000000);
    return done;
}

VectorCommand
readCmd(WordAddr base, std::uint32_t stride, std::uint32_t len = 32)
{
    VectorCommand c;
    c.base = base;
    c.stride = stride;
    c.length = len;
    c.isRead = true;
    return c;
}

/** Sum a per-bank scalar ("bc0.x" ... "bc15.x") across all banks. */
std::uint64_t
sumBankStat(PvaUnit &sys, const char *suffix)
{
    std::uint64_t total = 0;
    for (unsigned b = 0; b < 16; ++b)
        total += sys.stats().scalar(csprintf("bc%u.%s", b, suffix));
    return total;
}

std::uint64_t
sumDeviceStat(PvaUnit &sys, const char *suffix)
{
    std::uint64_t total = 0;
    for (unsigned b = 0; b < 16; ++b)
        total += sys.stats().scalar(csprintf("dev%u.%s", b, suffix));
    return total;
}

TEST(FaultInjection, DroppedTransfersAreRecoveredWithCorrectData)
{
    PvaConfig cfg;
    cfg.timingCheck = true;
    cfg.faults.dropTransferRate = 0.05;
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);

    std::vector<VectorCommand> cmds;
    std::uint64_t tag = 0;
    for (unsigned round = 0; round < 8; ++round) {
        for (std::uint64_t t = 0; t < 4; ++t) {
            VectorCommand c = readCmd(10000 * tag + 5, 2 * t + 3);
            cmds.push_back(c);
            ASSERT_TRUE(sys.trySubmit(c, tag, nullptr));
            ++tag;
        }
        auto done = collectN(sys, sim, 4);
        ASSERT_EQ(done.size(), 4u);
        for (const auto &[t, c] : done) {
            for (std::uint32_t i = 0; i < 32; ++i)
                ASSERT_EQ(c.data[i], SparseMemory::backgroundPattern(
                                         cmds[t].element(i)))
                    << "tag " << t << " elem " << i;
        }
    }

    // ~64 of the ~1024 read returns should have been dropped, and
    // every drop recovered by a retried sub-vector access.
    EXPECT_GT(sumBankStat(sys, "droppedReturns"), 0u);
    EXPECT_GT(sumBankStat(sys, "recoveries"), 0u);
}

TEST(FaultInjection, CorruptedFirstHitIsDetectedNotSilent)
{
    PvaConfig cfg;
    cfg.timingCheck = true;
    cfg.faults.corruptFirstHitRate = 1.0;
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);
    ASSERT_TRUE(sys.trySubmit(readCmd(777, 7), 0, nullptr));
    test::expectSimError(
        [&] {
            sim.runUntil([&] {
                return !sys.drainCompletions().empty();
            });
        },
        SimErrorKind::Corruption, "slot");
    EXPECT_GT(sumBankStat(sys, "corruptedFirstHits"), 0u);
}

TEST(FaultInjection, TimingFaultsPerturbLatencyNotResults)
{
    // Injected refreshes and BC scheduler stalls delay work; they must
    // never change what a kernel computes, and the protocol checker
    // must accept the perturbed schedules (a stalled device still obeys
    // tRCD/tRP/turnaround).
    SweepRequest req;
    req.kernel = KernelId::Saxpy;
    req.stride = 7;
    req.elements = 512;
    req.config.timingCheck = true;
    SweepPoint clean = runPoint(req);

    req.config.faults.refreshStallRate = 0.002;
    req.config.faults.bcStallRate = 0.01;
    SweepPoint faulted = runPoint(req);

    EXPECT_EQ(clean.mismatches, 0u);
    EXPECT_EQ(faulted.mismatches, 0u);
    EXPECT_GT(faulted.cycles, clean.cycles)
        << "stalls and extra refreshes must cost cycles";
}

TEST(FaultInjection, InjectedRefreshesAreCounted)
{
    PvaConfig cfg;
    cfg.timingCheck = true;
    cfg.faults.refreshStallRate = 0.01;
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);
    for (std::uint64_t t = 0; t < 8; ++t)
        ASSERT_TRUE(sys.trySubmit(readCmd(t * 997, 5), t, nullptr));
    collectN(sys, sim, 8);
    EXPECT_GT(sumDeviceStat(sys, "injectedRefreshes"), 0u);
}

TEST(FaultInjection, SameSeedGivesIdenticalSweepReport)
{
    // Injection decisions come from per-component splitmix64 streams
    // seeded from the plan, so a faulted sweep is reproducible
    // bit-for-bit — including across different worker counts.
    SystemConfig config;
    config.timingCheck = true;
    config.faults.seed = 0xabcdef;
    config.faults.refreshStallRate = 0.002;
    config.faults.dropTransferRate = 0.01;
    config.faults.bcStallRate = 0.005;

    std::vector<SweepRequest> grid;
    for (std::uint32_t stride : {1u, 7u, 16u, 19u}) {
        SweepRequest req;
        req.kernel = KernelId::Copy;
        req.stride = stride;
        req.elements = 256;
        req.config = config;
        grid.push_back(req);
    }

    auto runOnce = [&](unsigned jobs) {
        SweepExecutor ex(jobs);
        return ex.runReport(grid);
    };
    SweepReport a = runOnce(2);
    SweepReport b = runOnce(2);
    SweepReport c = runOnce(1);

    auto expectSame = [](const SweepReport &x, const SweepReport &y) {
        ASSERT_EQ(x.points.size(), y.points.size());
        for (std::size_t i = 0; i < x.points.size(); ++i) {
            EXPECT_EQ(x.points[i].cycles, y.points[i].cycles) << i;
            EXPECT_EQ(x.points[i].mismatches, y.points[i].mismatches);
            EXPECT_EQ(x.points[i].status, y.points[i].status);
            EXPECT_EQ(x.points[i].attempts, y.points[i].attempts);
        }
        EXPECT_EQ(x.ok, y.ok);
        EXPECT_EQ(x.retried, y.retried);
        EXPECT_EQ(x.failed, y.failed);
    };
    expectSame(a, b);
    expectSame(a, c);
    for (const SweepPoint &p : a.points)
        EXPECT_EQ(p.mismatches, 0u);
}

TEST(FaultInjection, DifferentSeedsExploreDifferentTimelines)
{
    SweepRequest req;
    req.kernel = KernelId::Copy;
    req.stride = 19;
    req.elements = 512;
    req.config.timingCheck = true;
    req.config.faults.refreshStallRate = 0.005;
    req.config.faults.bcStallRate = 0.01;
    SweepPoint a = runPoint(req);
    req.config.faults.seed ^= 0x12345;
    SweepPoint b = runPoint(req);
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(b.mismatches, 0u);
    EXPECT_NE(a.cycles, b.cycles)
        << "a different seed should inject at different cycles";
}

} // anonymous namespace
} // namespace pva
