/**
 * @file
 * Vector bus tests: request/data multiplexing, reservation windows for
 * staged line transfers, same-cycle snooping, and occupancy statistics.
 */

#include <gtest/gtest.h>

#include "bus/vector_bus.hh"

namespace pva
{
namespace
{

BusRequest
vecRead(std::uint8_t txn)
{
    VectorCommand c;
    c.base = 0;
    c.stride = 1;
    c.length = 32;
    return {BusOpcode::VecRead, c, txn};
}

TEST(VectorBus, RequestTakesOneCycle)
{
    VectorBus bus(32);
    EXPECT_TRUE(bus.requestFree(0));
    bus.drive(0, vecRead(0));
    EXPECT_FALSE(bus.requestFree(0));
    EXPECT_TRUE(bus.requestFree(1));
}

TEST(VectorBus, StageReservesDataCycles)
{
    VectorBus bus(32);
    EXPECT_EQ(bus.dataCycles(), 16u) << "128 B at 2 words/cycle";
    bus.drive(0, {BusOpcode::StageRead, {}, 3});
    // Cycle 0 is the request; 1..16 are data; 17 is free again.
    for (Cycle t = 0; t <= 16; ++t)
        EXPECT_FALSE(bus.requestFree(t)) << "t=" << t;
    EXPECT_TRUE(bus.requestFree(17));
}

TEST(VectorBus, SnoopSeesSameCycleOnly)
{
    VectorBus bus(32);
    EXPECT_FALSE(bus.snoop(0).has_value());
    bus.drive(5, vecRead(2));
    auto req = bus.snoop(5);
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->opcode, BusOpcode::VecRead);
    EXPECT_EQ(req->txn, 2u);
    EXPECT_FALSE(bus.snoop(6).has_value());
}

TEST(VectorBus, CountsRequestAndDataCycles)
{
    VectorBus bus(32);
    bus.drive(0, vecRead(0));
    bus.drive(1, {BusOpcode::StageRead, {}, 0});
    bus.drive(18, {BusOpcode::StageWrite, {}, 1});
    EXPECT_EQ(bus.statRequestCycles.value(), 3u);
    EXPECT_EQ(bus.statDataCycles.value(), 32u);
}

TEST(VectorBusDeath, DrivingBusyBusPanics)
{
    VectorBus bus(32);
    bus.drive(0, {BusOpcode::StageRead, {}, 0});
    EXPECT_DEATH(bus.drive(4, vecRead(1)), "busy");
}

TEST(VectorBusDeath, OddLineLengthIsFatal)
{
    EXPECT_EXIT(VectorBus(31), ::testing::ExitedWithCode(1), "even");
}

} // anonymous namespace
} // namespace pva
