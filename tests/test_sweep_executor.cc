/**
 * @file
 * SweepExecutor tests: the parallel path must be bit-identical to the
 * serial path (issue-order aggregation), the canonical grid must have
 * the canonical shape, and progress/stat reporting must add up.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "kernels/sweep_executor.hh"

namespace pva
{
namespace
{

/** A reduced grid exercising all four systems: 4 systems x 2 kernels
 *  x 3 strides x 5 alignments = 120 points at 128 elements. */
std::vector<SweepRequest>
reducedGrid()
{
    std::vector<SweepRequest> grid;
    for (SystemKind sys : allSystems()) {
        for (KernelId k : {KernelId::Copy, KernelId::Vaxpy}) {
            for (std::uint32_t s : {1u, 16u, 19u}) {
                for (unsigned a = 0; a < alignmentPresets().size();
                     ++a) {
                    SweepRequest req;
                    req.system = sys;
                    req.kernel = k;
                    req.stride = s;
                    req.alignment = a;
                    req.elements = 128;
                    grid.push_back(req);
                }
            }
        }
    }
    return grid;
}

TEST(SweepExecutor, ParallelMatchesSerialBitForBit)
{
    std::vector<SweepRequest> grid = reducedGrid();

    SweepExecutor serial(1);
    SweepExecutor parallel(4);
    ASSERT_EQ(serial.jobs(), 1u);
    ASSERT_EQ(parallel.jobs(), 4u);

    std::vector<SweepPoint> a = serial.run(grid);
    std::vector<SweepPoint> b = parallel.run(grid);

    ASSERT_EQ(a.size(), grid.size());
    ASSERT_EQ(b.size(), grid.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].system, b[i].system) << i;
        EXPECT_EQ(a[i].kernel, b[i].kernel) << i;
        EXPECT_EQ(a[i].stride, b[i].stride) << i;
        EXPECT_EQ(a[i].alignment, b[i].alignment) << i;
        EXPECT_EQ(a[i].cycles, b[i].cycles) << i;
        EXPECT_EQ(a[i].mismatches, b[i].mismatches) << i;
    }

    // The derived CSV must be byte-identical too.
    std::ostringstream csv_serial, csv_parallel;
    writeCsv(csv_serial, a);
    writeCsv(csv_parallel, b);
    EXPECT_EQ(csv_serial.str(), csv_parallel.str());
}

TEST(SweepExecutor, Chapter6GridHasCanonicalShapeAndOrder)
{
    std::vector<SweepRequest> grid = SweepExecutor::chapter6Grid(256);
    ASSERT_EQ(grid.size(), 4u * 8u * 6u * 5u);

    // Systems outermost, alignments innermost.
    EXPECT_EQ(grid.front().system, SystemKind::PvaSdram);
    EXPECT_EQ(grid.front().kernel, allKernels().front());
    EXPECT_EQ(grid.front().stride, paperStrides().front());
    EXPECT_EQ(grid.front().alignment, 0u);
    EXPECT_EQ(grid.back().system, SystemKind::PvaSram);
    EXPECT_EQ(grid.back().kernel, allKernels().back());
    EXPECT_EQ(grid.back().stride, paperStrides().back());
    EXPECT_EQ(grid.back().alignment,
              static_cast<unsigned>(alignmentPresets().size() - 1));
    for (const SweepRequest &req : grid)
        EXPECT_EQ(req.elements, 256u);
}

TEST(SweepExecutor, ReportsProgressAndStats)
{
    std::vector<SweepRequest> grid;
    for (std::uint32_t s : {1u, 19u}) {
        SweepRequest req;
        req.kernel = KernelId::Copy;
        req.stride = s;
        req.elements = 128;
        grid.push_back(req);
    }

    SweepExecutor executor(2);
    std::atomic<std::size_t> calls{0};
    std::size_t max_done = 0;
    executor.onProgress([&](const SweepProgress &p) {
        ++calls;
        EXPECT_EQ(p.total, grid.size());
        EXPECT_GE(p.millis, 0.0);
        max_done = std::max(max_done, p.done);
    });
    std::vector<SweepPoint> points = executor.run(grid);

    EXPECT_EQ(calls.load(), grid.size());
    EXPECT_EQ(max_done, grid.size());
    EXPECT_EQ(executor.stats().scalar("sweep.points"), grid.size());
    EXPECT_EQ(executor.stats().scalar("sweep.mismatches"), 0u);
    EXPECT_EQ(executor.stats().scalar("sweep.simCycles"),
              points[0].cycles + points[1].cycles);
    EXPECT_TRUE(executor.stats().hasDistribution("sweep.pointMillis"));
    EXPECT_EQ(
        executor.stats().distribution("sweep.pointMillis").samples(),
        grid.size());
}

TEST(SweepExecutor, CsvFormatMatchesBenchExport)
{
    SweepPoint p{SystemKind::PvaSdram, KernelId::Vaxpy, 19, 0, 1234, 0};
    std::ostringstream os;
    writeCsvHeader(os);
    writeCsvRow(os, p);
    EXPECT_EQ(os.str(),
              "system,kernel,stride,alignment,cycles,mismatches\n"
              "PVA SDRAM,vaxpy,19," +
                  alignmentPresets()[0].name + ",1234,0\n");
}

TEST(SweepExecutor, ZeroJobsPicksHardwareConcurrency)
{
    SweepExecutor executor(0);
    EXPECT_GE(executor.jobs(), 1u);
}

} // anonymous namespace
} // namespace pva
