/**
 * @file
 * Vector Command Unit tests: dependence enforcement, out-of-order
 * issue past blocked operations, gathered-data capture, and the
 * consistency semantics of section 5.2.4 at the system level.
 */

#include <gtest/gtest.h>

#include "core/pva_unit.hh"
#include "kernels/command_unit.hh"
#include "kernels/runner.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

KernelOp
makeRead(WordAddr base, std::uint32_t stride = 1)
{
    KernelOp op;
    op.cmd.base = base;
    op.cmd.stride = stride;
    op.cmd.length = 32;
    op.cmd.isRead = true;
    return op;
}

KernelOp
makeWrite(WordAddr base, Word seed, std::vector<std::size_t> deps,
          std::uint32_t stride = 1)
{
    KernelOp op;
    op.cmd.base = base;
    op.cmd.stride = stride;
    op.cmd.length = 32;
    op.cmd.isRead = false;
    op.deps = std::move(deps);
    op.writeData.resize(32);
    for (unsigned i = 0; i < 32; ++i)
        op.writeData[i] = seed + i;
    return op;
}

TEST(CommandUnit, WriteWaitsForItsReads)
{
    // A write depending on a read must not be submitted before the
    // read completes. Detect via the PVA stats: at no point may the
    // write's VEC_WRITE precede the read completion — easiest check is
    // the final latency relation plus functional correctness.
    KernelTrace trace;
    trace.ops.push_back(makeRead(0));
    trace.ops.push_back(makeWrite(4096, 100, {0}));
    trace.expectedWrites.clear();
    for (unsigned i = 0; i < 32; ++i)
        trace.expectedWrites.emplace_back(4096 + i, 100 + i);

    PvaUnit sys("pva", PvaConfig{});
    RunResult r = runTrace(sys, trace);
    EXPECT_EQ(r.mismatches, 0u);
    // Serialized: read (~26 cycles) then write (~20+): well above the
    // overlapped lower bound of ~35.
    EXPECT_GT(r.cycles, 45u);
}

TEST(CommandUnit, IndependentOpsOverlap)
{
    // Two independent reads pipeline on the bus; a dependent pair
    // cannot. Compare total cycles.
    KernelTrace indep;
    indep.ops.push_back(makeRead(0));
    indep.ops.push_back(makeRead(8192));

    KernelTrace dep;
    dep.ops.push_back(makeRead(0));
    dep.ops.push_back(makeRead(8192));
    dep.ops[1].deps = {0};

    PvaUnit a("a", PvaConfig{}), b("b", PvaConfig{});
    Cycle t_indep = runTrace(a, indep).cycles;
    Cycle t_dep = runTrace(b, dep).cycles;
    EXPECT_LT(t_indep, t_dep);
}

TEST(CommandUnit, IssuesPastBlockedOps)
{
    // Op 1 depends on op 0; op 2 is independent and must issue without
    // waiting for op 1 (out-of-order issue window).
    KernelTrace trace;
    trace.ops.push_back(makeRead(0));
    trace.ops.push_back(makeWrite(4096, 5, {0}));
    trace.ops.push_back(makeRead(16384));

    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    VectorCommandUnit vcu(sys, trace);

    // After a few cycles, ops 0 and 2 must be in flight (2 reads
    // submitted) while op 1 waits.
    for (int i = 0; i < 3; ++i) {
        vcu.service();
        sim.step();
    }
    EXPECT_EQ(sys.stats().scalar("frontend.reads"), 2u);
    EXPECT_EQ(sys.stats().scalar("frontend.writes"), 0u);

    sim.runUntil([&] { return vcu.service(); });
    EXPECT_EQ(sys.stats().scalar("frontend.writes"), 1u);
}

TEST(CommandUnit, CapturesGatheredData)
{
    KernelTrace trace;
    trace.ops.push_back(makeRead(100, 3));
    PvaUnit sys("pva", PvaConfig{});
    for (unsigned i = 0; i < 32; ++i)
        sys.memory().write(100 + 3 * i, 0x40 + i);

    Simulation sim;
    sim.add(&sys);
    VectorCommandUnit vcu(sys, trace);
    sim.runUntil([&] { return vcu.service(); });

    ASSERT_EQ(vcu.readData()[0].size(), 32u);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(vcu.readData()[0][i], 0x40 + i);
}

TEST(Consistency, ReadAfterWriteThroughDependences)
{
    // RAW at the same addresses: with the dependence edge the gather
    // sees the scattered data (the section 5.2.4 guarantee relies on
    // the bus ordering that our dependence edges preserve).
    KernelTrace trace;
    trace.ops.push_back(makeWrite(2048, 77, {}));
    trace.ops.push_back(makeRead(2048));
    trace.ops[1].deps = {0};

    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    VectorCommandUnit vcu(sys, trace);
    sim.runUntil([&] { return vcu.service(); });
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(vcu.readData()[1][i], 77u + i);
}

TEST(Consistency, BackToBackWritesLastValueWins)
{
    // WAW to the same vector, ordered by a dependence edge: the second
    // write's data must be the final memory image.
    KernelTrace trace;
    trace.ops.push_back(makeWrite(2048, 100, {}));
    trace.ops.push_back(makeWrite(2048, 900, {0}));

    PvaUnit sys("pva", PvaConfig{});
    runTrace(sys, trace);
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(sys.memory().read(2048 + i), 900u + i);
}

TEST(Stats, LatencyDistributionsAreSampled)
{
    KernelTrace trace;
    trace.ops.push_back(makeRead(0));
    trace.ops.push_back(makeWrite(4096, 1, {}));
    PvaUnit sys("pva", PvaConfig{});
    runTrace(sys, trace);
    std::ostringstream os;
    sys.stats().dump(os);
    EXPECT_NE(os.str().find("frontend.readLatency.samples 1"),
              std::string::npos);
    EXPECT_NE(os.str().find("frontend.writeLatency.samples 1"),
              std::string::npos);
}

} // anonymous namespace
} // namespace pva
