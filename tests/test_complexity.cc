/**
 * @file
 * Hardware-complexity model tests: the default configuration reproduces
 * the paper's Table 1 exactly, and the counts scale in the right
 * direction with each structural parameter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/complexity.hh"

namespace pva
{
namespace
{

TEST(Complexity, DefaultMatchesTable1)
{
    GateCounts g = estimateBankController(BcParameters{});
    EXPECT_EQ(g.and2, 1193u);
    EXPECT_EQ(g.dff, 1039u);
    EXPECT_EQ(g.dlatch, 32u);
    EXPECT_EQ(g.inv, 1627u);
    EXPECT_EQ(g.mux2, 183u);
    EXPECT_EQ(g.nand2, 5488u);
    EXPECT_EQ(g.nor2, 843u);
    EXPECT_EQ(g.or2, 194u);
    EXPECT_EQ(g.xor2, 500u);
    EXPECT_EQ(g.pulldown, 13u);
    EXPECT_EQ(g.tristate, 1849u);
    EXPECT_EQ(g.ramBytes, 2048u); // 2 KB staging RAM
}

TEST(Complexity, MoreVectorContextsCostMoreState)
{
    BcParameters p;
    GateCounts base = estimateBankController(p);
    p.vectorContexts = 8;
    GateCounts big = estimateBankController(p);
    EXPECT_GT(big.dff, base.dff);
    EXPECT_GT(big.xor2, base.xor2) << "more next-address adders";
    EXPECT_GT(big.totalGates(), base.totalGates());
}

TEST(Complexity, DeeperFifoCostsMoreRegisterFile)
{
    BcParameters p;
    GateCounts base = estimateBankController(p);
    p.fifoEntries = 16;
    GateCounts big = estimateBankController(p);
    EXPECT_GT(big.dff, base.dff);
    EXPECT_GT(big.tristate, base.tristate) << "more RF bit lines";
}

TEST(Complexity, K1PlaShrinksTheFabricAtManyBanks)
{
    BcParameters full, k1;
    full.banks = 128;
    k1.banks = 128;
    k1.plaVariant = FirstHitPla::Variant::K1Multiply;
    EXPECT_LT(estimateBankController(k1).totalGates(),
              estimateBankController(full).totalGates() / 2)
        << "section 4.3.1: the K1 organization is the scalable one";
}

TEST(Complexity, StagingRamScalesWithTransactionsAndLine)
{
    BcParameters p;
    p.transactions = 4;
    EXPECT_EQ(estimateBankController(p).ramBytes, 1024u);
    p.transactions = 8;
    p.lineBytes = 256;
    EXPECT_EQ(estimateBankController(p).ramBytes, 4096u);
}

TEST(Complexity, PrintTable1Format)
{
    std::ostringstream os;
    printTable1(os, estimateBankController(BcParameters{}));
    std::string s = os.str();
    EXPECT_NE(s.find("NAND2            5488"), std::string::npos);
    EXPECT_NE(s.find("On-chip RAM      2048 bytes"), std::string::npos);
}

} // anonymous namespace
} // namespace pva
