/**
 * @file
 * Merge-algebra tests for LogHistogram and ServiceStats.
 *
 * The fleet layer's determinism contract rests on one property: the
 * reductions that fold shard results into a FleetResult are
 * associative and order-independent, so any execution schedule over
 * the same work yields byte-identical aggregates. These tests pin
 * that algebra directly — merge trees vs sequential folds, shuffled
 * merge orders, and the quantile error bound surviving a merge.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "traffic/service_stats.hh"

using namespace pva;

namespace
{

std::vector<std::uint64_t>
lcgValues(std::uint64_t seed, std::size_t count, std::uint64_t span)
{
    std::vector<std::uint64_t> out;
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < count; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        out.push_back((x >> 16) % span);
    }
    return out;
}

LogHistogram
histOf(const std::vector<std::uint64_t> &values)
{
    LogHistogram h;
    for (std::uint64_t v : values)
        h.sample(v);
    return h;
}

void
expectHistEq(const LogHistogram &a, const LogHistogram &b)
{
    EXPECT_EQ(a.samples(), b.samples());
    EXPECT_EQ(a.minValue(), b.minValue());
    EXPECT_EQ(a.maxValue(), b.maxValue());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.nonZeroBuckets(), b.nonZeroBuckets());
}

} // anonymous namespace

TEST(LogHistogramMerge, MergeEqualsDirectSampling)
{
    const auto all = lcgValues(7, 4000, 1 << 20);
    LogHistogram direct = histOf(all);

    LogHistogram merged;
    for (std::size_t part = 0; part < 4; ++part) {
        LogHistogram h;
        for (std::size_t i = part; i < all.size(); i += 4)
            h.sample(all[i]);
        merged.merge(h);
    }
    expectHistEq(merged, direct);
}

TEST(LogHistogramMerge, MergeIsAssociative)
{
    const auto a = lcgValues(1, 500, 1 << 12);
    const auto b = lcgValues(2, 700, 1 << 18);
    const auto c = lcgValues(3, 300, 1 << 6);

    // (a + b) + c
    LogHistogram left = histOf(a);
    left.merge(histOf(b));
    left.merge(histOf(c));

    // a + (b + c)
    LogHistogram bc = histOf(b);
    bc.merge(histOf(c));
    LogHistogram right = histOf(a);
    right.merge(bc);

    expectHistEq(left, right);
}

TEST(LogHistogramMerge, MergeIsOrderIndependent)
{
    std::vector<LogHistogram> parts;
    for (std::uint64_t s = 0; s < 8; ++s)
        parts.push_back(histOf(lcgValues(s + 1, 250, 1 << (8 + s))));

    LogHistogram forward;
    for (const LogHistogram &h : parts)
        forward.merge(h);

    std::vector<std::size_t> order{3, 7, 0, 5, 1, 6, 2, 4};
    LogHistogram shuffled;
    for (std::size_t i : order)
        shuffled.merge(parts[i]);

    expectHistEq(forward, shuffled);
    for (double p : {50.0, 95.0, 99.0, 99.9}) {
        EXPECT_EQ(forward.percentile(p), shuffled.percentile(p))
            << "p" << p;
    }
}

TEST(LogHistogramMerge, MergingEmptyIsIdentity)
{
    LogHistogram h = histOf(lcgValues(11, 100, 1000));
    const auto before = h.nonZeroBuckets();
    LogHistogram empty;
    h.merge(empty);
    EXPECT_EQ(h.nonZeroBuckets(), before);
    EXPECT_EQ(h.samples(), 100u);

    LogHistogram onto;
    onto.merge(h);
    expectHistEq(onto, h);
}

TEST(LogHistogramMerge, QuantileErrorBoundSurvivesMerge)
{
    // Buckets are a fixed global partition with 2^3 linear slots per
    // octave, so any percentile answer is the upper edge of the
    // sample's bucket: at most one sub-bucket (~1/8 relative) above
    // the true value. Merging must not widen that bound.
    const auto all = lcgValues(23, 8000, 1 << 24);
    std::vector<std::uint64_t> sorted = all;
    std::sort(sorted.begin(), sorted.end());

    LogHistogram merged;
    for (std::size_t part = 0; part < 8; ++part) {
        LogHistogram h;
        for (std::size_t i = part; i < all.size(); i += 8)
            h.sample(all[i]);
        merged.merge(h);
    }

    for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        const std::uint64_t est = merged.percentile(p);
        const std::size_t rank = static_cast<std::size_t>(
            std::min<double>(sorted.size() - 1,
                             p / 100.0 * sorted.size()));
        const std::uint64_t exact = sorted[rank];
        EXPECT_GE(est, exact) << "p" << p;
        // Upper edge of the exact value's bucket is the worst case.
        const std::uint64_t edge = LogHistogram::bucketLowerBound(
            LogHistogram::bucketIndex(exact) + 1);
        EXPECT_LE(est, edge) << "p" << p;
        const double rel =
            exact ? (static_cast<double>(est) - exact) / exact : 0.0;
        EXPECT_LE(rel, 0.125 + 1e-9) << "p" << p;
    }
}

namespace
{

/** Feed deterministic pseudo-traffic into a two-stream ServiceStats. */
ServiceStats
syntheticStats(std::uint64_t seed, unsigned events,
               ServiceStats::Detail detail)
{
    ServiceStats s({"a", "b"}, detail, "t");
    std::uint64_t x = seed;
    auto next = [&x] {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        return x >> 33;
    };
    for (unsigned i = 0; i < events; ++i) {
        const unsigned stream = next() % 2;
        s.onArrival(stream);
        s.onQueueDepth(stream, next() % 16);
        switch (next() % 8) {
          case 0:
            s.onDeferred(stream);
            break;
          case 1:
            s.onShedDeadline(stream);
            break;
          case 2:
            s.onShedOverload(stream);
            break;
          default: {
            const Cycle qd = next() % 500;
            const Cycle svc = 20 + next() % 300;
            s.onSubmit(stream, qd);
            s.onComplete(stream, svc, qd + svc, 8, true);
            break;
          }
        }
        s.onCycle(next() % 4);
    }
    return s;
}

void
expectServiceStatsEq(const ServiceStats &a, const ServiceStats &b)
{
    EXPECT_EQ(a.arrivalsTotal(), b.arrivalsTotal());
    EXPECT_EQ(a.deferralsTotal(), b.deferralsTotal());
    EXPECT_EQ(a.shedDeadlineTotal(), b.shedDeadlineTotal());
    EXPECT_EQ(a.shedOverloadTotal(), b.shedOverloadTotal());
    EXPECT_EQ(a.queuePeakTotal(), b.queuePeakTotal());
    EXPECT_EQ(a.completedTotal(), b.completedTotal());
    EXPECT_EQ(a.wordsTotal(), b.wordsTotal());
    expectHistEq(a.aggregateQueueDelayHist(),
                 b.aggregateQueueDelayHist());
    expectHistEq(a.aggregateServiceLatencyHist(),
                 b.aggregateServiceLatencyHist());
    expectHistEq(a.aggregateTotalLatencyHist(),
                 b.aggregateTotalLatencyHist());
}

} // anonymous namespace

TEST(ServiceStatsMerge, MergeIsAssociative)
{
    const auto detail = ServiceStats::Detail::AggregateOnly;
    // (a + b) + c
    ServiceStats left({}, detail, "m");
    {
        ServiceStats ab({}, detail, "ab");
        ab.mergeFrom(syntheticStats(101, 400, detail));
        ab.mergeFrom(syntheticStats(202, 300, detail));
        left.mergeFrom(ab);
        left.mergeFrom(syntheticStats(303, 500, detail));
    }
    // a + (b + c)
    ServiceStats right({}, detail, "m2");
    {
        ServiceStats bc({}, detail, "bc");
        bc.mergeFrom(syntheticStats(202, 300, detail));
        bc.mergeFrom(syntheticStats(303, 500, detail));
        right.mergeFrom(syntheticStats(101, 400, detail));
        right.mergeFrom(bc);
    }
    expectServiceStatsEq(left, right);
}

TEST(ServiceStatsMerge, MergeIsOrderIndependent)
{
    const auto detail = ServiceStats::Detail::AggregateOnly;
    std::vector<std::uint64_t> seeds{5, 17, 29, 43, 61};

    ServiceStats forward({}, detail, "f");
    for (std::uint64_t s : seeds)
        forward.mergeFrom(syntheticStats(s, 200 + s, detail));

    ServiceStats reverse({}, detail, "r");
    for (auto it = seeds.rbegin(); it != seeds.rend(); ++it)
        reverse.mergeFrom(syntheticStats(*it, 200 + *it, detail));

    expectServiceStatsEq(forward, reverse);
    const LatencySummary fs = forward.aggregateTotalLatency();
    const LatencySummary rs = reverse.aggregateTotalLatency();
    EXPECT_EQ(fs.p50, rs.p50);
    EXPECT_EQ(fs.p99, rs.p99);
    EXPECT_EQ(fs.p999, rs.p999);
    EXPECT_EQ(fs.max, rs.max);
}

TEST(ServiceStatsMerge, PerStreamCountersMergeIndexWise)
{
    const auto detail = ServiceStats::Detail::PerStream;
    ServiceStats a = syntheticStats(7, 300, detail);
    const std::uint64_t arrivals_before = a.arrivalsTotal();
    ServiceStats b = syntheticStats(8, 200, detail);
    a.mergeFrom(b);
    EXPECT_EQ(a.arrivalsTotal(), arrivals_before + b.arrivalsTotal());
    // The aggregate view over merged per-stream slots must agree with
    // the merged aggregate slot itself.
    ServiceStats agg({}, ServiceStats::Detail::AggregateOnly, "agg");
    agg.mergeFrom(syntheticStats(7, 300, detail));
    agg.mergeFrom(syntheticStats(8, 200, detail));
    expectServiceStatsEq(a, agg);
}
