/**
 * @file
 * Microarchitectural fidelity tests: exact SDRAM operation counts and
 * row-hit behaviour for controlled access patterns, verifying that the
 * scheduler and ManageRow policy do what chapter 5 describes.
 */

#include <gtest/gtest.h>

#include "core/pva_unit.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

VectorCommand
readCmd(WordAddr base, std::uint32_t stride, std::uint32_t len = 32)
{
    VectorCommand c;
    c.base = base;
    c.stride = stride;
    c.length = len;
    c.isRead = true;
    return c;
}

/** Run one or more commands to completion on a fresh unit. */
void
runAll(PvaUnit &sys, const std::vector<VectorCommand> &cmds)
{
    Simulation sim;
    sim.add(&sys);
    std::size_t submitted = 0, completed = 0;
    sim.runUntil(
        [&] {
            while (submitted < cmds.size() &&
                   sys.trySubmit(cmds[submitted], submitted, nullptr))
                ++submitted;
            completed += sys.drainCompletions().size();
            return completed == cmds.size();
        },
        1000000);
}

std::uint64_t
sumStat(PvaUnit &sys, const char *suffix)
{
    std::uint64_t total = 0;
    for (unsigned b = 0; b < sys.config().geometry.banks(); ++b)
        total += sys.stats().scalar(csprintf("dev%u.%s", b, suffix));
    return total;
}

TEST(Microarch, UnitStrideReadOpCounts)
{
    // 32 elements over 16 banks: 2 reads per bank, 1 activate per bank
    // (both elements are consecutive columns of the same row).
    PvaUnit sys("pva", PvaConfig{});
    runAll(sys, {readCmd(0, 1)});
    EXPECT_EQ(sumStat(sys, "reads"), 32u);
    EXPECT_EQ(sumStat(sys, "activates"), 16u);
    EXPECT_EQ(sumStat(sys, "rowHitAccesses"), 16u)
        << "the second read of each bank hits the open row";
}

TEST(Microarch, Stride16ConcentratesInOneBank)
{
    // All 32 elements in bank 0, one row (32 * 16 words = 512 = one
    // row-stripe): exactly 1 activate, 32 reads, 31 row hits.
    PvaUnit sys("pva", PvaConfig{});
    runAll(sys, {readCmd(0, 16)});
    EXPECT_EQ(sys.stats().scalar("dev0.reads"), 32u);
    EXPECT_EQ(sys.stats().scalar("dev0.activates"), 1u);
    EXPECT_EQ(sys.stats().scalar("dev0.rowHitAccesses"), 31u);
    for (unsigned b = 1; b < 16; ++b)
        EXPECT_EQ(sys.stats().scalar(csprintf("dev%u.reads", b)), 0u);
}

TEST(Microarch, ConsecutiveLinesReuseOpenRows)
{
    // Two back-to-back unit-stride lines fall in the same rows; the
    // ManageRow policy must keep rows open so the second command adds
    // zero activates.
    PvaUnit sys("pva", PvaConfig{});
    runAll(sys, {readCmd(0, 1), readCmd(32, 1)});
    EXPECT_EQ(sumStat(sys, "reads"), 64u);
    EXPECT_EQ(sumStat(sys, "activates"), 16u)
        << "second command rides the open rows";
    EXPECT_EQ(sumStat(sys, "rowHitAccesses"), 48u);
}

TEST(Microarch, RowConflictForcesPrechargeAndReactivate)
{
    // Two commands to the same internal banks but different rows: the
    // second must close and re-open (activates double; precharges
    // appear).
    PvaUnit sys("pva", PvaConfig{});
    // Row stripe is 8192 words; 4 internal banks -> same internal bank
    // again at 4 * 8192 words.
    runAll(sys, {readCmd(0, 1), readCmd(4 * 8192, 1)});
    EXPECT_EQ(sumStat(sys, "activates"), 32u);
    EXPECT_GE(sumStat(sys, "precharges"), 16u);
}

TEST(Microarch, ClosedPagePolicyPrechargesEveryAccess)
{
    PvaConfig cfg;
    cfg.bc.rowPolicy = RowPolicy::AlwaysClose;
    PvaUnit sys("pva", cfg);
    runAll(sys, {readCmd(0, 1)});
    // Auto-precharge after each of the 32 accesses; every access needs
    // its own activate.
    EXPECT_EQ(sumStat(sys, "activates"), 32u);
    EXPECT_EQ(sumStat(sys, "precharges"), 32u);
    EXPECT_EQ(sumStat(sys, "rowHitAccesses"), 0u);
}

TEST(Microarch, InternalBankPipelining)
{
    // Stride 16 within one external bank but spanning two internal
    // banks (columns 0..511 are ibank 0, 512.. are ibank 1): the
    // scheduler opens both rows and overlaps.
    PvaUnit sys("pva", PvaConfig{});
    // Elements at perBank words 16..47? Use base so elements straddle
    // the 512-column boundary: perBankWord = 496 + i.
    WordAddr base = 496 * 16; // bank 0, column 496
    runAll(sys, {readCmd(base, 16)});
    EXPECT_EQ(sys.stats().scalar("dev0.activates"), 2u)
        << "one row in each internal bank";
    EXPECT_EQ(sys.stats().scalar("dev0.reads"), 32u);
}

TEST(Microarch, OddStrideUsesAllBanksEvenly)
{
    PvaUnit sys("pva", PvaConfig{});
    runAll(sys, {readCmd(7, 19)});
    for (unsigned b = 0; b < 16; ++b)
        EXPECT_EQ(sys.stats().scalar(csprintf("dev%u.reads", b)), 2u)
            << "bank " << b;
}

TEST(Microarch, BusCycleAccounting)
{
    // One read: VEC_READ + STAGE_READ requests, 16 data cycles.
    // One write: STAGE_WRITE + VEC_WRITE requests, 16 data cycles.
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    std::vector<Word> data(32, 1);
    VectorCommand wr = readCmd(4096, 1);
    wr.isRead = false;
    ASSERT_TRUE(sys.trySubmit(readCmd(0, 1), 0, nullptr));
    ASSERT_TRUE(sys.trySubmit(wr, 1, &data));
    unsigned completed = 0;
    sim.runUntil([&] {
        completed += sys.drainCompletions().size();
        return completed == 2;
    });
    EXPECT_EQ(sys.stats().scalar("bus.requestCycles"), 4u);
    EXPECT_EQ(sys.stats().scalar("bus.dataCycles"), 32u);
}

TEST(Microarch, SchedulerHidesFhcLatencyUnderLoad)
{
    // Section 5.2.2: "When the scheduler is busy, this [FHC] delay is
    // completely hidden". Eight pipelined non-power-of-two reads must
    // cost the same per command as power-of-two ones.
    PvaUnit a("a", PvaConfig{}), b("b", PvaConfig{});
    std::vector<VectorCommand> odd, pow2;
    for (unsigned i = 0; i < 8; ++i) {
        odd.push_back(readCmd(i * 8192, 19));
        pow2.push_back(readCmd(i * 8192, 16 + 0)); // stride 16? no:
    }
    // Use stride 1 for the power-of-two reference (same bus cost).
    pow2.clear();
    for (unsigned i = 0; i < 8; ++i)
        pow2.push_back(readCmd(i * 8192, 1));

    Simulation sa;
    sa.add(&a);
    std::size_t done_a = 0, sub_a = 0;
    sa.runUntil([&] {
        while (sub_a < odd.size() &&
               a.trySubmit(odd[sub_a], sub_a, nullptr))
            ++sub_a;
        done_a += a.drainCompletions().size();
        return done_a == odd.size();
    });

    Simulation sb;
    sb.add(&b);
    std::size_t done_b = 0, sub_b = 0;
    sb.runUntil([&] {
        while (sub_b < pow2.size() &&
               b.trySubmit(pow2[sub_b], sub_b, nullptr))
            ++sub_b;
        done_b += b.drainCompletions().size();
        return done_b == pow2.size();
    });

    // Within a few cycles of each other: the 3-cycle FHC path is off
    // the critical path once the bus pipeline fills.
    EXPECT_NEAR(static_cast<double>(sa.now()),
                static_cast<double>(sb.now()), 8.0);
}

} // anonymous namespace
} // namespace pva
