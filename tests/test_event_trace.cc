/**
 * @file
 * Event-tracing tests (docs/OBSERVABILITY.md): Chrome-trace export
 * well-formedness (B/E pairing per track, monotonic timestamps,
 * activate -> CAS -> precharge phases), drop accounting at the buffer
 * cap, track filtering, and the differential guarantee that an
 * installed session changes no cycle counts. The versioned JSON
 * envelope (docs/API.md) is checked in both build flavours; the
 * trace-specific tests compile only with PVA_TRACE=ON and the
 * untraced build instead pins trace::enabled() == false.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/trace.hh"
#include "tool_app.hh"

using namespace pva;
using namespace pva::tools;

namespace
{

TEST(JsonEnvelope, CarriesSchemaVersionToolAndConfig)
{
    ToolApp app("enveloped");
    SystemConfig config;
    std::ostringstream os;
    {
        JsonEnvelope env(os, app, config,
                         {{"kernel", jsonQuote("copy")}});
        env.section("run") << "{\"cycles\": 42}";
    }
    const std::string out = os.str();
    EXPECT_EQ(out.rfind("{\"schemaVersion\": 1, \"tool\": "
                        "\"enveloped\"", 0), 0u) << out;
    EXPECT_NE(out.find("\"config\": {\"banks\": 16"),
              std::string::npos) << out;
    EXPECT_NE(out.find("\"kernel\": \"copy\""), std::string::npos);
    EXPECT_NE(out.find("\"run\": {\"cycles\": 42}"),
              std::string::npos);
    EXPECT_EQ(out.substr(out.size() - 2), "}\n");
}

TEST(JsonEnvelope, QuoteEscapesSpecials)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b\\c"), "\"a\\\"b\\\\c\"");
    EXPECT_EQ(jsonQuote(std::string("x\ny")), "\"x y\"");
}

} // anonymous namespace

#if PVA_TRACE_ENABLED

#include <map>
#include <utility>
#include <vector>

#include "kernels/runner.hh"
#include "kernels/sweep.hh"
#include "traffic/traffic_runner.hh"

namespace
{

/** Install a session for one scope; always uninstalls. */
struct ScopedSession
{
    explicit ScopedSession(trace::TraceConfig cfg = {}) : s(cfg)
    {
        trace::setSession(&s);
    }
    ~ScopedSession() { trace::setSession(nullptr); }
    trace::TraceSession s;
};

RunResult
runCopyStride16(ClockingMode mode = ClockingMode::Event)
{
    SystemConfig config;
    config.clocking = mode;
    auto sys = makeSystem(SystemKind::PvaSdram, config);
    const KernelSpec &spec = kernelSpec(KernelId::Copy);
    WorkloadConfig wl;
    wl.stride = 16;
    wl.elements = 256;
    wl.lineWords = config.bc.lineWords;
    wl.streamBases =
        streamBases(alignmentPresets()[0], spec.numStreams, 16, 256);
    RunLimits limits;
    limits.clocking = mode;
    return runKernelOn(*sys, KernelId::Copy, wl, limits);
}

TrafficConfig
smallTraffic(unsigned streams, std::uint64_t requests)
{
    TrafficConfig tc;
    for (unsigned i = 0; i < streams; ++i) {
        StreamConfig s;
        s.mode = ArrivalMode::ClosedLoop;
        s.requests = requests;
        s.seed = 1 + i;
        s.pattern.regionWords = 1 << 16;
        s.pattern.regionBase = static_cast<WordAddr>(i) << 16;
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

/** The exporter emits one JSON object per line; pull the fields the
 *  assertions need with plain string scanning. */
struct EventLine
{
    std::string ph;
    std::string name;
    long pid = -1;
    long tid = -1;
    long long ts = -1;
};

std::string
stringField(const std::string &line, const std::string &key)
{
    std::string tag = "\"" + key + "\": \"";
    std::size_t at = line.find(tag);
    if (at == std::string::npos)
        return {};
    at += tag.size();
    return line.substr(at, line.find('"', at) - at);
}

long long
numField(const std::string &line, const std::string &key)
{
    std::string tag = "\"" + key + "\": ";
    std::size_t at = line.find(tag);
    if (at == std::string::npos)
        return -1;
    return std::stoll(line.substr(at + tag.size()));
}

std::vector<EventLine>
parseEventLines(const std::string &json)
{
    std::vector<EventLine> out;
    std::istringstream in(json);
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("{\"name\"", 0) != 0 &&
            line.rfind("{\"ph\"", 0) != 0)
            continue;
        EventLine e;
        e.ph = stringField(line, "ph");
        e.name = stringField(line, "name");
        e.pid = numField(line, "pid");
        e.tid = numField(line, "tid");
        e.ts = numField(line, "ts");
        if (!e.ph.empty())
            out.push_back(std::move(e));
    }
    return out;
}

TEST(EventTrace, KernelExportIsWellFormedChromeTrace)
{
    ScopedSession scoped;
    RunResult r = runCopyStride16();
    ASSERT_EQ(r.mismatches, 0u);
    trace::setSession(nullptr);

    std::ostringstream os;
    scoped.s.exportChromeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(scoped.s.dropped(), 0u);
    EXPECT_NE(json.find("\"pvaTrace\": {\"schemaVersion\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

    std::vector<EventLine> events = parseEventLines(json);
    ASSERT_FALSE(events.empty());

    // B/E stack discipline per (pid, tid) track; monotonic ts; the
    // SDRAM protocol phases all present and ordered.
    std::map<std::pair<long, long>, std::vector<std::string>> open;
    long long lastTs = -1;
    long long firstActivate = -1, firstCas = -1, lastPrecharge = -1;
    for (const EventLine &e : events) {
        if (e.ph == "M")
            continue;
        ASSERT_TRUE(e.ph == "B" || e.ph == "E" || e.ph == "i" ||
                    e.ph == "C")
            << e.ph;
        ASSERT_GE(e.ts, lastTs) << "timestamps must be sorted";
        lastTs = e.ts;
        ASSERT_GT(e.pid, 0);
        ASSERT_GT(e.tid, 0);
        auto &stack = open[{e.pid, e.tid}];
        if (e.ph == "B") {
            stack.push_back(e.name);
        } else if (e.ph == "E") {
            ASSERT_FALSE(stack.empty())
                << "E without B on track " << e.tid;
            ASSERT_EQ(stack.back(), e.name);
            stack.pop_back();
        }
        if (e.name == "activate" && firstActivate < 0)
            firstActivate = e.ts;
        if (e.name == "cas_read" && firstCas < 0)
            firstCas = e.ts;
        if (e.name == "auto_precharge" || e.name == "precharge")
            lastPrecharge = e.ts;
    }
    for (const auto &[track, stack] : open)
        EXPECT_TRUE(stack.empty())
            << "unclosed span on pid " << track.first << " tid "
            << track.second;
    ASSERT_GE(firstActivate, 0) << "no activate traced";
    ASSERT_GE(firstCas, 0) << "no CAS traced";
    ASSERT_GE(lastPrecharge, 0) << "no precharge traced";
    EXPECT_LE(firstActivate, firstCas);
    EXPECT_LE(firstCas, lastPrecharge);
}

TEST(EventTrace, TrafficRunEmitsArbiterLifecycle)
{
    ScopedSession scoped;
    TrafficResult r = runTraffic(smallTraffic(2, 16));
    trace::setSession(nullptr);
    ASSERT_GT(r.completed, 0u);

    bool sawEnqueue = false, sawGrant = false, sawComplete = false;
    for (const trace::Event &e : scoped.s.snapshot()) {
        std::string name = e.name;
        sawEnqueue = sawEnqueue || name == "enqueue";
        sawGrant = sawGrant || name == "grant";
        sawComplete = sawComplete || name == "complete";
    }
    EXPECT_TRUE(sawEnqueue);
    EXPECT_TRUE(sawGrant);
    EXPECT_TRUE(sawComplete);
}

TEST(EventTrace, DropsBeyondBufferCapKeepEarliest)
{
    trace::TraceConfig cfg;
    cfg.bufferCapacity = 8;
    trace::TraceSession s(cfg);
    std::uint32_t t = s.registerTrack("p", "t");
    ASSERT_NE(t, 0u);
    for (int i = 0; i < 20; ++i)
        s.record(t, trace::Phase::Instant, i, "e", "i", i);
    EXPECT_EQ(s.recorded(), 8u);
    EXPECT_EQ(s.dropped(), 12u);
    std::vector<trace::Event> kept = s.snapshot();
    ASSERT_EQ(kept.size(), 8u);
    EXPECT_EQ(kept.front().ts, 0u); // earliest events are retained
    EXPECT_EQ(kept.back().ts, 7u);

    std::ostringstream os;
    s.exportChromeJson(os);
    EXPECT_NE(os.str().find("\"dropped\": 12"), std::string::npos);
}

TEST(EventTrace, FilterDisablesNonMatchingTracks)
{
    trace::TraceConfig cfg;
    cfg.filter = "bc*,traffic/arbiter";
    trace::TraceSession s(cfg);
    EXPECT_NE(s.registerTrack("pva", "bc0"), 0u);
    EXPECT_NE(s.registerTrack("traffic", "arbiter"), 0u);
    EXPECT_EQ(s.registerTrack("pva", "frontend"), 0u);
    EXPECT_EQ(s.registerTrack("sim", "clock"), 0u);
    // Recording to a filtered (0) track is a counted-nowhere no-op.
    s.record(0, trace::Phase::Instant, 1, "e");
    EXPECT_EQ(s.recorded(), 0u);
    EXPECT_EQ(s.dropped(), 0u);
}

TEST(EventTrace, GlobMatchSemantics)
{
    EXPECT_TRUE(trace::globMatch("bc*", "bc12"));
    EXPECT_TRUE(trace::globMatch("*", "anything"));
    EXPECT_TRUE(trace::globMatch("pva/txn?", "pva/txn3"));
    EXPECT_TRUE(trace::globMatch("*bus*", "vector bus"));
    EXPECT_FALSE(trace::globMatch("bc*", "dev0"));
    EXPECT_FALSE(trace::globMatch("txn?", "txn12"));
}

TEST(EventTrace, InstalledSessionChangesNoCycleCounts)
{
    RunResult bare = runCopyStride16();
    RunResult traced;
    {
        ScopedSession scoped;
        traced = runCopyStride16();
    }
    EXPECT_EQ(bare.cycles, traced.cycles);
    EXPECT_EQ(bare.simTicks, traced.simTicks);
    EXPECT_EQ(bare.cyclesSkipped, traced.cyclesSkipped);
    EXPECT_EQ(bare.mismatches, traced.mismatches);

    TrafficResult tBare = runTraffic(smallTraffic(2, 12));
    TrafficResult tTraced;
    {
        ScopedSession scoped;
        tTraced = runTraffic(smallTraffic(2, 12));
    }
    EXPECT_EQ(tBare.cycles, tTraced.cycles);
    EXPECT_EQ(tBare.completed, tTraced.completed);
    EXPECT_EQ(tBare.simTicks, tTraced.simTicks);
}

} // anonymous namespace

#else // !PVA_TRACE_ENABLED

TEST(EventTrace, CompiledOutInDefaultBuild)
{
    // The macros expand to nothing and enabled() is a compile-time
    // false; the CI symbol guard additionally asserts no pva::trace::
    // symbol reaches the default binaries.
    static_assert(!pva::trace::enabled(),
                  "default build must not compile tracing in");
    SUCCEED();
}

#endif // PVA_TRACE_ENABLED
