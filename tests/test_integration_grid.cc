/**
 * @file
 * Reduced-scale reproduction of the full chapter 6 grid as a test:
 * every kernel x stride x alignment on the PVA runs functionally clean,
 * and the paper's headline orderings hold (PVA >= cache-line baseline
 * at stride 1, PVA way ahead at prime strides, SDRAM close to SRAM).
 * The benches rerun the same grid at full scale.
 */

#include <gtest/gtest.h>

#include "kernels/sweep.hh"

namespace pva
{
namespace
{

constexpr std::uint32_t kElems = 256; // 8 chunks: fast but pipelined

struct GridParam
{
    KernelId kernel;
    std::uint32_t stride;
};

class PaperGrid : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(PaperGrid, PvaIsCorrectAtEveryAlignment)
{
    const auto [kernel, stride] = GetParam();
    for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
        SweepPoint p =
            runPoint(SystemKind::PvaSdram, kernel, stride, a, kElems);
        EXPECT_EQ(p.mismatches, 0u)
            << kernelSpec(kernel).name << " stride " << stride
            << " alignment " << a;
    }
}

TEST_P(PaperGrid, SdramTracksSramWithinTwentyPercent)
{
    const auto [kernel, stride] = GetParam();
    SweepPoint sdram =
        runPoint(SystemKind::PvaSdram, kernel, stride, 1, kElems);
    SweepPoint sram =
        runPoint(SystemKind::PvaSram, kernel, stride, 1, kElems);
    EXPECT_LE(sdram.cycles, sram.cycles + sram.cycles / 5)
        << kernelSpec(kernel).name << " stride " << stride;
}

std::vector<GridParam>
gridParams()
{
    std::vector<GridParam> p;
    for (KernelId k : allKernels())
        for (std::uint32_t s : paperStrides())
            p.push_back({k, s});
    return p;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllStrides, PaperGrid,
                         ::testing::ValuesIn(gridParams()));

TEST(PaperShape, CacheLineBaselineDegradesWithStride)
{
    // Figure 7 shape: normalized cache-line time grows monotonically
    // in stride (power-of-two strides) and explodes at primes.
    Cycle prev_ratio_x100 = 0;
    for (std::uint32_t s : {1u, 2u, 4u, 8u, 16u}) {
        Cycle pva =
            runPoint(SystemKind::PvaSdram, KernelId::Scale, s, 0, kElems)
                .cycles;
        Cycle cl =
            runPoint(SystemKind::CacheLine, KernelId::Scale, s, 0, kElems)
                .cycles;
        Cycle ratio_x100 = cl * 100 / pva;
        EXPECT_GT(ratio_x100, prev_ratio_x100) << "stride " << s;
        prev_ratio_x100 = ratio_x100;
    }
}

TEST(PaperShape, PrimeStrideRestoresFullParallelism)
{
    // Section 6.3.1: stride 19 performs like stride 1 on the PVA while
    // traditional systems behave like stride 16.
    Cycle s1 =
        runPoint(SystemKind::PvaSdram, KernelId::Scale, 1, 0, kElems)
            .cycles;
    Cycle s16 =
        runPoint(SystemKind::PvaSdram, KernelId::Scale, 16, 0, kElems)
            .cycles;
    Cycle s19 =
        runPoint(SystemKind::PvaSdram, KernelId::Scale, 19, 0, kElems)
            .cycles;
    EXPECT_LT(s19, s1 + s1 / 10) << "stride 19 ~ stride 1";
    EXPECT_GT(s16, s19) << "stride 16 is the PVA's worst case";
}

TEST(PaperShape, GatheringBaselineIsStrideInsensitiveAndSlower)
{
    for (std::uint32_t s : {1u, 8u, 19u}) {
        Cycle pva =
            runPoint(SystemKind::PvaSdram, KernelId::Copy, s, 0, kElems)
                .cycles;
        Cycle ga =
            runPoint(SystemKind::Gathering, KernelId::Copy, s, 0, kElems)
                .cycles;
        EXPECT_GT(ga, 2 * pva) << "stride " << s;
        EXPECT_LT(ga, 4 * pva) << "stride " << s;
    }
}

TEST(PaperShape, UnrollingHelpsSlightlyOnThePva)
{
    // Section 6.3: copy2/scale2 give the PVA a slight edge only.
    Cycle copy =
        runPoint(SystemKind::PvaSdram, KernelId::Copy, 4, 0, kElems)
            .cycles;
    Cycle copy2 =
        runPoint(SystemKind::PvaSdram, KernelId::Copy2, 4, 0, kElems)
            .cycles;
    EXPECT_LE(copy2, copy + copy / 20);
}

} // anonymous namespace
} // namespace pva
