/**
 * @file
 * Reduced-scale reproduction of the full chapter 6 grid as a test:
 * every kernel x stride x alignment on the PVA runs functionally clean,
 * and the paper's headline orderings hold (PVA >= cache-line baseline
 * at stride 1, PVA way ahead at prime strides, SDRAM close to SRAM).
 * The benches rerun the same grid at full scale.
 *
 * Grid points are simulated through the SweepExecutor worker pool:
 * each (system, kernel, stride) row runs its five alignments in
 * parallel and is memoized, so ctest's per-test processes only pay for
 * the rows they assert on, and the full reduced grid runs once in the
 * EveryGridPointIsFunctionallyClean sweep.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "kernels/sweep_executor.hh"

namespace pva
{
namespace
{

constexpr std::uint32_t kElems = 256; // 8 chunks: fast but pipelined

/** One (system, kernel, stride) row — all five alignments — run in
 *  parallel on the executor pool and memoized. */
const std::vector<SweepPoint> &
alignmentRow(SystemKind system, KernelId kernel, std::uint32_t stride)
{
    using Key = std::tuple<SystemKind, KernelId, std::uint32_t>;
    static std::map<Key, std::vector<SweepPoint>> cache;
    auto [it, fresh] =
        cache.try_emplace(Key{system, kernel, stride});
    if (fresh) {
        std::vector<SweepRequest> row;
        for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
            SweepRequest req;
            req.system = system;
            req.kernel = kernel;
            req.stride = stride;
            req.alignment = a;
            req.elements = kElems;
            row.push_back(req);
        }
        SweepExecutor executor;
        it->second = executor.run(row);
    }
    return it->second;
}

const SweepPoint &
gridPoint(SystemKind system, KernelId kernel, std::uint32_t stride,
          unsigned alignment)
{
    return alignmentRow(system, kernel, stride).at(alignment);
}

Cycle
cyclesAt(SystemKind system, KernelId kernel, std::uint32_t stride,
         unsigned alignment)
{
    return gridPoint(system, kernel, stride, alignment).cycles;
}

struct GridParam
{
    KernelId kernel;
    std::uint32_t stride;
};

class PaperGrid : public ::testing::TestWithParam<GridParam>
{
};

TEST_P(PaperGrid, PvaIsCorrectAtEveryAlignment)
{
    const auto [kernel, stride] = GetParam();
    for (unsigned a = 0; a < alignmentPresets().size(); ++a) {
        const SweepPoint &p =
            gridPoint(SystemKind::PvaSdram, kernel, stride, a);
        EXPECT_EQ(p.mismatches, 0u)
            << kernelSpec(kernel).name << " stride " << stride
            << " alignment " << a;
    }
}

TEST_P(PaperGrid, SdramTracksSramWithinTwentyPercent)
{
    const auto [kernel, stride] = GetParam();
    Cycle sdram = cyclesAt(SystemKind::PvaSdram, kernel, stride, 1);
    Cycle sram = cyclesAt(SystemKind::PvaSram, kernel, stride, 1);
    EXPECT_LE(sdram, sram + sram / 5)
        << kernelSpec(kernel).name << " stride " << stride;
}

std::vector<GridParam>
gridParams()
{
    std::vector<GridParam> p;
    for (KernelId k : allKernels())
        for (std::uint32_t s : paperStrides())
            p.push_back({k, s});
    return p;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllStrides, PaperGrid,
                         ::testing::ValuesIn(gridParams()));

TEST(PaperShape, EveryGridPointIsFunctionallyClean)
{
    // The full reduced grid (4 systems x 8 kernels x 6 strides x
    // 5 alignments) through the parallel executor in one sweep.
    SweepExecutor executor;
    std::vector<SweepPoint> grid =
        executor.run(SweepExecutor::chapter6Grid(kElems));
    ASSERT_EQ(grid.size(), 4u * 8u * 6u * 5u);
    for (const SweepPoint &p : grid) {
        EXPECT_EQ(p.mismatches, 0u)
            << systemName(p.system) << "/"
            << kernelSpec(p.kernel).name << " stride " << p.stride
            << " alignment " << p.alignment;
    }
    EXPECT_EQ(executor.stats().scalar("sweep.points"), grid.size());
    EXPECT_EQ(executor.stats().scalar("sweep.mismatches"), 0u);
}

TEST(PaperShape, CacheLineBaselineDegradesWithStride)
{
    // Figure 7 shape: normalized cache-line time grows monotonically
    // in stride (power-of-two strides) and explodes at primes.
    Cycle prev_ratio_x100 = 0;
    for (std::uint32_t s : {1u, 2u, 4u, 8u, 16u}) {
        Cycle pva = cyclesAt(SystemKind::PvaSdram, KernelId::Scale, s, 0);
        Cycle cl = cyclesAt(SystemKind::CacheLine, KernelId::Scale, s, 0);
        Cycle ratio_x100 = cl * 100 / pva;
        EXPECT_GT(ratio_x100, prev_ratio_x100) << "stride " << s;
        prev_ratio_x100 = ratio_x100;
    }
}

TEST(PaperShape, PrimeStrideRestoresFullParallelism)
{
    // Section 6.3.1: stride 19 performs like stride 1 on the PVA while
    // traditional systems behave like stride 16.
    Cycle s1 = cyclesAt(SystemKind::PvaSdram, KernelId::Scale, 1, 0);
    Cycle s16 = cyclesAt(SystemKind::PvaSdram, KernelId::Scale, 16, 0);
    Cycle s19 = cyclesAt(SystemKind::PvaSdram, KernelId::Scale, 19, 0);
    EXPECT_LT(s19, s1 + s1 / 10) << "stride 19 ~ stride 1";
    EXPECT_GT(s16, s19) << "stride 16 is the PVA's worst case";
}

TEST(PaperShape, GatheringBaselineIsStrideInsensitiveAndSlower)
{
    for (std::uint32_t s : {1u, 8u, 19u}) {
        Cycle pva = cyclesAt(SystemKind::PvaSdram, KernelId::Copy, s, 0);
        Cycle ga = cyclesAt(SystemKind::Gathering, KernelId::Copy, s, 0);
        EXPECT_GT(ga, 2 * pva) << "stride " << s;
        EXPECT_LT(ga, 4 * pva) << "stride " << s;
    }
}

TEST(PaperShape, UnrollingHelpsSlightlyOnThePva)
{
    // Section 6.3: copy2/scale2 give the PVA a slight edge only.
    Cycle copy = cyclesAt(SystemKind::PvaSdram, KernelId::Copy, 4, 0);
    Cycle copy2 = cyclesAt(SystemKind::PvaSdram, KernelId::Copy2, 4, 0);
    EXPECT_LE(copy2, copy + copy / 20);
}

} // anonymous namespace
} // namespace pva
