/**
 * @file
 * SplitVector / MMC TLB tests (section 4.3.2): sub-commands never cross
 * superpages, cover the original vector exactly and in order, and the
 * division-free lower bound always makes progress.
 */

#include <gtest/gtest.h>

#include "core/split_vector.hh"
#include "expect_sim_error.hh"

namespace pva
{
namespace
{

MmcTlb
contiguousTlb(WordAddr vbase, unsigned pages, std::uint32_t page_size,
              WordAddr pbase)
{
    MmcTlb tlb;
    for (unsigned i = 0; i < pages; ++i)
        tlb.mapSuperpage(vbase + i * page_size, pbase + i * page_size,
                         page_size);
    return tlb;
}

TEST(MmcTlb, ContiguousWindowTranslatesAcrossPages)
{
    MmcTlb tlb = contiguousTlb(0x4000, 4, 0x1000, 0x20000);
    EXPECT_EQ(tlb.lookup(0x4000).phys, 0x20000u);
    EXPECT_EQ(tlb.lookup(0x6fff).phys, 0x22fffu);
    EXPECT_EQ(tlb.lookup(0x7abc).phys, 0x23abcu);
}

TEST(MmcTlb, TranslatesWithinPage)
{
    MmcTlb tlb;
    tlb.mapSuperpage(0x1000, 0x9000, 0x1000);
    auto t = tlb.lookup(0x1234);
    EXPECT_EQ(t.phys, 0x9234u);
    EXPECT_EQ(t.pageSize, 0x1000u);
}

TEST(MmcTlbDeath, MissAndMisalignmentAreFatal)
{
    MmcTlb tlb;
    tlb.mapSuperpage(0x1000, 0x9000, 0x1000);
    test::expectSimError([&] { tlb.lookup(0x5000); },
                         SimErrorKind::Config, "TLB miss");
    MmcTlb bad;
    test::expectSimError([&] { bad.mapSuperpage(0x10, 0x9000, 0x1000); },
                         SimErrorKind::Config, "aligned");
    test::expectSimError(
        [&] { bad.mapSuperpage(0x1000, 0x9000, 0xfff); },
        SimErrorKind::Config, "power of two");
}

TEST(SplitVector, IdentityMapSinglePageIsOneCommand)
{
    MmcTlb tlb;
    tlb.identityMap(0, 1 << 16, 1 << 16);
    VectorCommand v;
    v.base = 100;
    v.stride = 7;
    v.length = 32;
    auto subs = splitVector(v, tlb);
    ASSERT_EQ(subs.size(), 1u);
    EXPECT_EQ(subs[0].base, 100u);
    EXPECT_EQ(subs[0].length, 32u);
}

/** Property checks shared by the parameterized sweep. */
void
checkSplit(const VectorCommand &v, const MmcTlb &tlb)
{
    auto subs = splitVector(v, tlb);

    // (1) Concatenated sub-command elements == translated originals.
    std::vector<WordAddr> expect, got;
    for (std::uint32_t i = 0; i < v.length; ++i)
        expect.push_back(tlb.lookup(v.element(i)).phys);
    for (const VectorCommand &s : subs) {
        EXPECT_EQ(s.stride, v.stride);
        EXPECT_EQ(s.isRead, v.isRead);
        for (std::uint32_t i = 0; i < s.length; ++i)
            got.push_back(s.element(i));
    }
    EXPECT_EQ(got, expect);

    // (2) No sub-command crosses a superpage boundary.
    for (const VectorCommand &s : subs) {
        auto t0 = tlb.lookup(s.base); // phys==virt under identity maps
        WordAddr page_start = s.base & ~(WordAddr{t0.pageSize} - 1);
        WordAddr last = s.element(s.length - 1);
        EXPECT_GE(last, page_start);
        EXPECT_LT(last, page_start + t0.pageSize)
            << "stride=" << v.stride << " base=" << v.base;
    }
}

struct SplitParam
{
    std::uint32_t stride;
    std::uint32_t page_size;
};

class SplitVectorSweep : public ::testing::TestWithParam<SplitParam>
{
};

TEST_P(SplitVectorSweep, CoversExactlyAndNeverCrossesPages)
{
    const auto [stride, page_size] = GetParam();
    MmcTlb tlb;
    tlb.identityMap(0, 1 << 21, page_size);
    for (WordAddr base : {WordAddr{0}, WordAddr{1}, WordAddr{100},
                          WordAddr{page_size - 1},
                          WordAddr{3 * page_size - 5}}) {
        VectorCommand v;
        v.base = base;
        v.stride = stride;
        v.length = 1024;
        checkSplit(v, tlb);
    }
}

INSTANTIATE_TEST_SUITE_P(
    StridesAndPages, SplitVectorSweep,
    ::testing::Values(SplitParam{1, 1024}, SplitParam{2, 1024},
                      SplitParam{3, 1024}, SplitParam{7, 4096},
                      SplitParam{16, 4096}, SplitParam{19, 1024},
                      SplitParam{19, 8192}, SplitParam{33, 2048},
                      SplitParam{128, 1024}, SplitParam{1023, 1024}));

TEST(SplitVector, NonContiguousPhysicalPages)
{
    // Virtual pages mapped to scattered physical pages: the split must
    // chase the mapping page by page.
    MmcTlb tlb;
    tlb.mapSuperpage(0, 0x10000, 0x1000);
    tlb.mapSuperpage(0x1000, 0x50000, 0x1000);
    tlb.mapSuperpage(0x2000, 0x30000, 0x1000);

    VectorCommand v;
    v.base = 0xff0;
    v.stride = 8;
    v.length = 1024;
    auto subs = splitVector(v, tlb);
    ASSERT_GE(subs.size(), 3u);
    // First sub-command covers the tail of physical page 0x10000.
    EXPECT_EQ(subs[0].base, 0x10ff0u);
    std::vector<WordAddr> expect;
    for (std::uint32_t i = 0; i < v.length; ++i)
        expect.push_back(tlb.lookup(v.element(i)).phys);
    std::vector<WordAddr> got;
    for (const auto &s : subs)
        for (std::uint32_t i = 0; i < s.length; ++i)
            got.push_back(s.element(i));
    EXPECT_EQ(got, expect);
}

TEST(SplitVector, StrideLargerThanPageMakesProgress)
{
    // Each element lands on its own page: the lower bound clamps to 1
    // per iteration and the loop still terminates.
    MmcTlb tlb;
    tlb.identityMap(0, 1 << 16, 1024);
    VectorCommand v;
    v.base = 512;
    v.stride = 2048;
    v.length = 16;
    auto subs = splitVector(v, tlb);
    EXPECT_EQ(subs.size(), 16u);
    for (const auto &s : subs)
        EXPECT_EQ(s.length, 1u);
}

TEST(SplitVectorDeath, ZeroStrideIsFatal)
{
    MmcTlb tlb;
    tlb.identityMap(0, 4096, 4096);
    VectorCommand v;
    v.base = 0;
    v.stride = 0;
    v.length = 4;
    test::expectSimError([&] { splitVector(v, tlb); },
                         SimErrorKind::Config, "stride");
}

} // anonymous namespace
} // namespace pva
