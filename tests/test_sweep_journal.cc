/**
 * @file
 * Checkpoint/resume and quarantine tests (docs/ROBUSTNESS.md): the
 * journal round-trips durably completed points, tolerates a torn final
 * record, refuses foreign grids, and a crash-interrupted sweep resumed
 * from its journal produces CSV and JSON byte-identical to the
 * uninterrupted run across worker counts; failed points yield repro
 * capsules that pva_replay-style replayCapsule re-executes to the same
 * SimError.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "expect_sim_error.hh"
#include "kernels/repro_capsule.hh"
#include "kernels/sweep_executor.hh"
#include "kernels/sweep_journal.hh"

namespace pva
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
spit(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
}

SweepRequest
smallPoint(std::uint32_t stride = 3, unsigned alignment = 0)
{
    SweepRequest req;
    req.kernel = KernelId::Copy;
    req.stride = stride;
    req.alignment = alignment;
    req.elements = 128;
    return req;
}

/** A small mixed grid with one deterministic persistent failure. */
std::vector<SweepRequest>
mixedGrid()
{
    std::vector<SweepRequest> grid;
    for (std::uint32_t stride : {1u, 3u, 7u, 19u}) {
        grid.push_back(smallPoint(stride, 0));
        grid.push_back(smallPoint(stride, 1));
    }
    grid.push_back(smallPoint(4));
    // corruptFirstHitRate = 1.0 corrupts every attempt (including the
    // retry's advanced fault timeline), so this point reliably
    // exhausts the budget and lands in quarantine.
    grid.back().config.timingCheck = true;
    grid.back().config.faults.corruptFirstHitRate = 1.0;
    grid.push_back(smallPoint(5));
    return grid;
}

struct RunOutput
{
    SweepReport report;
    std::string csv;
    std::string json;
};

RunOutput
runGrid(const std::vector<SweepRequest> &grid, unsigned jobs,
        const CheckpointOptions &cp = {})
{
    SweepExecutor ex(jobs);
    ex.setMaxAttempts(2);
    ex.setCheckpoint(cp);
    RunOutput out;
    out.report = ex.runReport(grid);
    std::ostringstream c;
    writeCsv(c, out.report.points);
    out.csv = c.str();
    std::ostringstream j;
    out.report.dumpJson(j);
    out.json = j.str();
    return out;
}

TEST(SweepJournal, FingerprintCoversBehaviorDeterminingState)
{
    SweepRequest a = smallPoint();
    SweepRequest b = a;
    EXPECT_EQ(fingerprintRequest(a), fingerprintRequest(b));

    b.stride = 4;
    EXPECT_NE(fingerprintRequest(a), fingerprintRequest(b));
    b = a;
    b.config.faults.seed += 1;
    EXPECT_NE(fingerprintRequest(a), fingerprintRequest(b));
    b = a;
    b.config.timing.tCL += 1;
    EXPECT_NE(fingerprintRequest(a), fingerprintRequest(b));
    b = a;
    b.limits.maxCycles = 12345;
    EXPECT_NE(fingerprintRequest(a), fingerprintRequest(b));
    // The wall-clock budget never changes simulated behavior and must
    // not poison resume across machines of different speed.
    b = a;
    b.limits.timeoutMillis = 5000.0;
    EXPECT_EQ(fingerprintRequest(a), fingerprintRequest(b));

    std::vector<SweepRequest> g1 = {a, smallPoint(7)};
    std::vector<SweepRequest> g2 = {smallPoint(7), a};
    EXPECT_NE(fingerprintGrid(g1), fingerprintGrid(g2))
        << "grid fingerprints must be order-sensitive";
}

TEST(SweepJournal, RecordsRoundTripThroughTheFile)
{
    const std::string path = tempPath("journal_roundtrip.jsonl");
    std::remove(path.c_str());
    std::vector<SweepRequest> grid = {smallPoint(1), smallPoint(7)};
    const std::uint64_t fp = fingerprintGrid(grid);

    {
        SweepJournal journal(path, fp, grid.size());
        SweepPoint p{SystemKind::PvaSdram, KernelId::Copy, 1, 0, 321, 0};
        p.simTicks = 300;
        p.cyclesSkipped = 21;
        p.attempts = 2;
        p.status = PointStatus::Retried;
        journal.append({0, p, ""});
        SweepPoint f{SystemKind::PvaSdram, KernelId::Copy, 7, 0, 0, 0};
        f.status = PointStatus::Failed;
        f.attempts = 2;
        journal.append({1, f, "[corruption] it broke \"badly\""});
    }

    SweepJournal::LoadResult loaded =
        SweepJournal::load(path, fp, grid.size());
    ASSERT_TRUE(loaded.exists);
    EXPECT_FALSE(loaded.tornTail);
    ASSERT_EQ(loaded.records.size(), 2u);
    EXPECT_EQ(loaded.records[0].index, 0u);
    EXPECT_EQ(loaded.records[0].point.cycles, 321u);
    EXPECT_EQ(loaded.records[0].point.simTicks, 300u);
    EXPECT_EQ(loaded.records[0].point.cyclesSkipped, 21u);
    EXPECT_EQ(loaded.records[0].point.status, PointStatus::Retried);
    EXPECT_EQ(loaded.records[0].point.attempts, 2u);
    EXPECT_EQ(loaded.records[1].index, 1u);
    EXPECT_EQ(loaded.records[1].point.status, PointStatus::Failed);
    EXPECT_EQ(loaded.records[1].error,
              "[corruption] it broke \"badly\"");
    EXPECT_EQ(loaded.validBytes, slurp(path).size());
}

TEST(SweepJournal, TornFinalLineIsDiscardedNotFatal)
{
    const std::string path = tempPath("journal_torn.jsonl");
    std::remove(path.c_str());
    std::vector<SweepRequest> grid = {smallPoint(1), smallPoint(7)};
    const std::uint64_t fp = fingerprintGrid(grid);
    {
        SweepJournal journal(path, fp, grid.size());
        journal.append(
            {0, SweepPoint{SystemKind::PvaSdram, KernelId::Copy, 1, 0,
                           100, 0},
             ""});
    }
    const std::string intact = slurp(path);
    spit(path, intact + "{\"index\": 1, \"system\": \"pva");

    SweepJournal::LoadResult loaded =
        SweepJournal::load(path, fp, grid.size());
    ASSERT_TRUE(loaded.exists);
    EXPECT_TRUE(loaded.tornTail);
    ASSERT_EQ(loaded.records.size(), 1u);
    EXPECT_EQ(loaded.validBytes, intact.size());

    // Resuming truncates the torn tail before appending, leaving a
    // fully intact journal again.
    {
        SweepJournal journal(path, fp, grid.size(), loaded.validBytes);
        journal.append(
            {1, SweepPoint{SystemKind::PvaSdram, KernelId::Copy, 7, 0,
                           200, 0},
             ""});
    }
    SweepJournal::LoadResult again =
        SweepJournal::load(path, fp, grid.size());
    EXPECT_FALSE(again.tornTail);
    ASSERT_EQ(again.records.size(), 2u);
    EXPECT_EQ(again.records[1].point.cycles, 200u);
}

TEST(SweepJournal, RefusesForeignGridsAndCorruptRecords)
{
    const std::string path = tempPath("journal_refuse.jsonl");
    std::remove(path.c_str());
    std::vector<SweepRequest> grid = {smallPoint(1), smallPoint(7)};
    const std::uint64_t fp = fingerprintGrid(grid);
    {
        SweepJournal journal(path, fp, grid.size());
        journal.append(
            {0, SweepPoint{SystemKind::PvaSdram, KernelId::Copy, 1, 0,
                           100, 0},
             ""});
    }

    test::expectSimError(
        [&] { SweepJournal::load(path, fp ^ 1, grid.size()); },
        SimErrorKind::Config, "refusing");
    test::expectSimError(
        [&] { SweepJournal::load(path, fp, grid.size() + 1); },
        SimErrorKind::Config, "points");

    // A corrupt *complete* (newline-terminated) line is flagged, not
    // silently skipped: only the final line may legitimately be torn.
    spit(path, slurp(path) + "this is not json\n");
    test::expectSimError(
        [&] { SweepJournal::load(path, fp, grid.size()); },
        SimErrorKind::Corruption, "journal");

    // A missing file is a fresh start, not an error.
    SweepJournal::LoadResult missing = SweepJournal::load(
        tempPath("journal_never_written.jsonl"), fp, grid.size());
    EXPECT_FALSE(missing.exists);
}

TEST(SweepJournal, ResumedSweepIsByteIdenticalToUninterrupted)
{
    std::vector<SweepRequest> grid = mixedGrid();
    const RunOutput reference = runGrid(grid, 1);
    ASSERT_EQ(reference.report.failed, 1u);

    for (unsigned jobs : {1u, 3u}) {
        const std::string path = tempPath(
            "journal_resume_j" + std::to_string(jobs) + ".jsonl");
        std::remove(path.c_str());

        // Full journaled run (single worker: journal order == issue
        // order), then simulate a SIGKILL after 4 durable points by
        // truncating the journal to header + 4 records and appending
        // a torn half-record.
        runGrid(grid, 1, {path, false, ""});
        std::istringstream lines(slurp(path));
        std::string line, prefix;
        for (int i = 0; i < 5 && std::getline(lines, line); ++i)
            prefix += line + "\n";
        spit(path, prefix + "{\"index\": 8, \"system\": \"pv");

        const RunOutput resumed = runGrid(grid, jobs, {path, true, ""});
        EXPECT_EQ(resumed.report.resumed, 4u) << "jobs=" << jobs;
        EXPECT_EQ(resumed.csv, reference.csv) << "jobs=" << jobs;
        EXPECT_EQ(resumed.json, reference.json) << "jobs=" << jobs;

        // Resuming the now-complete journal reruns nothing and still
        // reproduces the same bytes.
        const RunOutput done = runGrid(grid, jobs, {path, true, ""});
        EXPECT_EQ(done.report.resumed, grid.size());
        EXPECT_EQ(done.csv, reference.csv);
        EXPECT_EQ(done.json, reference.json);
    }
}

TEST(SweepJournal, QuarantinedPointYieldsAReplayableCapsule)
{
    std::vector<SweepRequest> grid = mixedGrid();
    const std::string dir = tempPath("quarantine_capsules");
    const RunOutput out = runGrid(grid, 2, {"", false, dir});

    ASSERT_EQ(out.report.failed, 1u);
    ASSERT_EQ(out.report.quarantine.size(), 1u);
    const QuarantineRecord &q = out.report.quarantine[0];
    EXPECT_EQ(q.attempts, 2u);
    EXPECT_NE(q.error.find("fingerprint="), std::string::npos)
        << "failure text should name the capsule: " << q.error;
    EXPECT_NE(q.error.find("faultSeed="), std::string::npos) << q.error;

    ReproCapsule capsule = loadCapsule(q.capsulePath);
    EXPECT_EQ(capsule.fingerprint, q.fingerprint);
    EXPECT_EQ(capsule.attempts, 2u);
    EXPECT_EQ(capsule.request.config.faults.seed, q.faultSeed);
    ASSERT_FALSE(capsule.error.empty());
    // The capsule stores the raw error; the report's is the enriched
    // version of the same failure.
    EXPECT_NE(q.error.find(capsule.error), std::string::npos)
        << q.error << " vs " << capsule.error;

    // Replaying the capsule re-executes the exact failing attempt and
    // dies the same way.
    std::string observed;
    try {
        replayCapsule(capsule);
    } catch (const SimError &e) {
        observed = e.what();
    }
    ASSERT_FALSE(observed.empty()) << "failure did not reproduce";
    EXPECT_TRUE(sameSimError(observed, capsule.error))
        << observed << " vs " << capsule.error;
}

TEST(SweepJournal, SameSimErrorToleratesWallClockVariance)
{
    EXPECT_TRUE(sameSimError(
        "[watchdog] simulation: wall-clock watchdog expired after "
        "51 ms (budget 50 ms)",
        "[watchdog] simulation: wall-clock watchdog expired after "
        "63 ms (budget 50 ms)"));
    EXPECT_FALSE(sameSimError(
        "[watchdog] simulation: wall-clock watchdog expired after "
        "51 ms (budget 50 ms)",
        "[watchdog] simulation: wall-clock watchdog expired after "
        "63 ms (budget 99 ms)"));
    EXPECT_TRUE(sameSimError("[config] bc: lineWords must be > 0",
                             "[config] bc: lineWords must be > 0"));
    EXPECT_FALSE(sameSimError("[config] bc: lineWords must be > 0",
                              "[config] bc: transactions must be > 0"));
}

} // anonymous namespace
} // namespace pva
