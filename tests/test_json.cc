/**
 * @file
 * sim/json parser tests: round trips, grammar rejection, and the
 * hostile inputs a spool-fed daemon actually sees — deep nesting,
 * exotic escapes, non-finite numbers, and torn (truncated) documents.
 */

#include <string>

#include <gtest/gtest.h>

#include "sim/json.hh"

using namespace pva;

namespace
{

json::Value
parseOk(const std::string &text)
{
    json::Value v;
    std::string error;
    EXPECT_TRUE(json::parse(text, v, error)) << error << "\n" << text;
    return v;
}

void
expectReject(const std::string &text)
{
    json::Value v;
    std::string error;
    EXPECT_FALSE(json::parse(text, v, error)) << text;
    EXPECT_FALSE(error.empty()) << text;
}

} // anonymous namespace

TEST(JsonParser, RoundTripsAllValueKinds)
{
    const json::Value v = parseOk(
        "{\"null\": null, \"t\": true, \"f\": false, "
        "\"int\": 18446744073709551615, \"neg\": -12, "
        "\"real\": 2.5e-3, \"str\": \"hi\", "
        "\"arr\": [1, [2, 3], {\"k\": 4}]}");
    ASSERT_TRUE(v.isObject());
    EXPECT_TRUE(v.find("null")->isNull());
    EXPECT_TRUE(v.find("t")->boolean());
    EXPECT_FALSE(v.find("f")->boolean());

    bool ok = true;
    // 64-bit integers round trip exactly (numbers keep source text).
    EXPECT_EQ(v.find("int")->asU64(ok), 18446744073709551615ULL);
    EXPECT_TRUE(ok);
    EXPECT_DOUBLE_EQ(v.find("real")->asDouble(ok), 2.5e-3);
    EXPECT_TRUE(ok);
    EXPECT_EQ(v.find("str")->string(), "hi");
    ASSERT_TRUE(v.find("arr")->isArray());
    EXPECT_EQ(v.find("arr")->array().size(), 3u);
    EXPECT_EQ(v.find("arr")->array()[1].array()[1].asU64(ok), 3u);
    EXPECT_TRUE(ok);

    // asU64 on a negative or fractional number clears ok.
    ok = true;
    v.find("neg")->asU64(ok);
    EXPECT_FALSE(ok);
    ok = true;
    v.find("real")->asU64(ok);
    EXPECT_FALSE(ok);
}

TEST(JsonParser, EscapeAndParseAreInverses)
{
    const std::string nasty =
        "quote\" backslash\\ slash/ tab\t newline\n cr\r "
        "bell\x07 nul-adjacent\x01 high\xc3\xa9";
    const std::string doc =
        "{\"k\": \"" + json::escape(nasty) + "\"}";
    const json::Value v = parseOk(doc);
    EXPECT_EQ(v.find("k")->string(), nasty);
}

TEST(JsonParser, DecodesStandardAndUnicodeEscapes)
{
    const json::Value v = parseOk(
        "{\"s\": \"a\\u0041\\t\\n\\r\\b\\f\\\\\\/\\\"z\"}");
    EXPECT_EQ(v.find("s")->string(), "aA\t\n\r\b\f\\/\"z");
    // Truncated and malformed escapes are rejected, not passed
    // through.
    expectReject("{\"s\": \"\\u12\"}");
    expectReject("{\"s\": \"\\x41\"}");
    expectReject("{\"s\": \"\\\"}");
    expectReject("{\"s\": \"dangling");
}

TEST(JsonParser, RejectsNaNAndInfinity)
{
    // The grammar has no non-finite numbers; a stats writer bug that
    // leaks "nan" must fail the reader loudly.
    expectReject("{\"v\": NaN}");
    expectReject("{\"v\": nan}");
    expectReject("{\"v\": Infinity}");
    expectReject("{\"v\": -Infinity}");
    expectReject("{\"v\": inf}");
    // ...while ordinary extreme-but-finite literals stay fine.
    const json::Value v = parseOk("{\"v\": 1e308}");
    bool ok = true;
    EXPECT_DOUBLE_EQ(v.find("v")->asDouble(ok), 1e308);
    EXPECT_TRUE(ok);
}

TEST(JsonParser, NestingDepthIsBoundedNotUnbounded)
{
    // Acceptable depth parses...
    std::string shallow;
    for (int i = 0; i < 20; ++i)
        shallow += "[";
    shallow += "1";
    for (int i = 0; i < 20; ++i)
        shallow += "]";
    parseOk(shallow);

    // ...while adversarial depth is refused instead of overflowing
    // the recursive-descent stack.
    std::string deep;
    for (int i = 0; i < 100000; ++i)
        deep += "[";
    deep += "1";
    for (int i = 0; i < 100000; ++i)
        deep += "]";
    expectReject(deep);

    std::string deep_obj;
    for (int i = 0; i < 100000; ++i)
        deep_obj += "{\"k\":";
    deep_obj += "1";
    for (int i = 0; i < 100000; ++i)
        deep_obj += "}";
    expectReject(deep_obj);
}

TEST(JsonParser, RejectsTornDocuments)
{
    // A daemon can observe a scenario file mid-write; every prefix of
    // a valid document must fail cleanly rather than yield a
    // half-parsed tree.
    const std::string whole =
        "{\"kind\": \"fleet\", \"tenants\": [{\"name\": \"web\", "
        "\"count\": 3, \"stream\": {\"rate\": 12.5}}]}";
    parseOk(whole);
    for (std::size_t cut = 1; cut < whole.size(); ++cut) {
        json::Value v;
        std::string error;
        const bool accepted =
            json::parse(whole.substr(0, cut), v, error);
        EXPECT_FALSE(accepted) << "prefix length " << cut;
    }
}

TEST(JsonParser, RejectsTrailingGarbageAndBareGrammarViolations)
{
    expectReject("");
    expectReject("   ");
    expectReject("{} extra");
    expectReject("[1, 2,]");
    expectReject("{\"a\": 1,}");
    expectReject("{\"a\" 1}");
    expectReject("{a: 1}");
    expectReject("[01]");
    expectReject("[+1]");
    expectReject("[1.]");
    expectReject("[.5]");
    expectReject("tru");
    expectReject("nulll");
}
