/**
 * @file
 * PVA unit integration tests: full read/write transactions through the
 * bus protocol, transaction-limit behaviour, concurrent mixed traffic,
 * the SRAM variant, and a randomized scatter/gather fuzz.
 */

#include <gtest/gtest.h>

#include <map>

#include "baselines/pva_sram_system.hh"
#include "core/pva_unit.hh"
#include "expect_sim_error.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

/** Drive @p sys until @p n completions arrive; returns them by tag. */
std::map<std::uint64_t, Completion>
collectN(MemorySystem &sys, Simulation &sim, std::size_t n)
{
    std::map<std::uint64_t, Completion> done;
    sim.runUntil(
        [&] {
            for (Completion &c : sys.drainCompletions()) {
                std::uint64_t tag = c.tag;
                done.emplace(tag, std::move(c));
            }
            return done.size() >= n;
        },
        1000000);
    return done;
}

VectorCommand
readCmd(WordAddr base, std::uint32_t stride, std::uint32_t len = 32)
{
    VectorCommand c;
    c.base = base;
    c.stride = stride;
    c.length = len;
    c.isRead = true;
    return c;
}

TEST(PvaUnit, WriteThenReadRoundTrip)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    std::vector<Word> payload(32);
    for (unsigned i = 0; i < 32; ++i)
        payload[i] = 0xbeef0000 + i;

    VectorCommand wr = readCmd(777, 13);
    wr.isRead = false;
    ASSERT_TRUE(sys.trySubmit(wr, 0, &payload));
    collectN(sys, sim, 1);

    ASSERT_TRUE(sys.trySubmit(readCmd(777, 13), 1, nullptr));
    auto done = collectN(sys, sim, 1);
    EXPECT_EQ(done.at(1).data, payload);
}

TEST(PvaUnit, EightOutstandingTransactionsMax)
{
    PvaUnit sys("pva", PvaConfig{});
    for (std::uint64_t t = 0; t < 8; ++t)
        ASSERT_TRUE(sys.trySubmit(readCmd(t * 100, 3), t, nullptr));
    EXPECT_FALSE(sys.trySubmit(readCmd(0, 1), 99, nullptr))
        << "ninth submit must fail";
    EXPECT_TRUE(sys.busy());

    Simulation sim;
    sim.add(&sys);
    auto done = collectN(sys, sim, 8);
    EXPECT_EQ(done.size(), 8u);
    EXPECT_FALSE(sys.busy());
    EXPECT_TRUE(sys.trySubmit(readCmd(0, 1), 99, nullptr));
}

TEST(PvaUnit, ConcurrentReadsReturnDistinctCorrectData)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    std::vector<VectorCommand> cmds;
    for (std::uint64_t t = 0; t < 8; ++t) {
        VectorCommand c = readCmd(1000 + t * 7919, 2 * t + 1);
        cmds.push_back(c);
        ASSERT_TRUE(sys.trySubmit(c, t, nullptr));
    }
    auto done = collectN(sys, sim, 8);
    for (std::uint64_t t = 0; t < 8; ++t) {
        const auto &data = done.at(t).data;
        ASSERT_EQ(data.size(), 32u);
        for (std::uint32_t i = 0; i < 32; ++i) {
            EXPECT_EQ(data[i], SparseMemory::backgroundPattern(
                                   cmds[t].element(i)))
                << "txn " << t << " elem " << i;
        }
    }
}

TEST(PvaUnit, ShortVectorCommands)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    for (std::uint32_t len : {1u, 2u, 5u, 31u}) {
        ASSERT_TRUE(sys.trySubmit(readCmd(17, 19, len), len, nullptr));
        auto done = collectN(sys, sim, 1);
        ASSERT_EQ(done.at(len).data.size(), len);
        for (std::uint32_t i = 0; i < len; ++i)
            EXPECT_EQ(done.at(len).data[i],
                      SparseMemory::backgroundPattern(17 + 19ull * i));
    }
}

TEST(PvaUnit, MixedReadWriteTrafficIsConsistent)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);

    // Write two disjoint vectors and read them back concurrently.
    std::vector<Word> wa(32), wb(32);
    for (unsigned i = 0; i < 32; ++i) {
        wa[i] = 0xa0000 + i;
        wb[i] = 0xb0000 + i;
    }
    VectorCommand cwa = readCmd(5000, 3);
    cwa.isRead = false;
    VectorCommand cwb = readCmd(9000, 19);
    cwb.isRead = false;
    ASSERT_TRUE(sys.trySubmit(cwa, 0, &wa));
    ASSERT_TRUE(sys.trySubmit(cwb, 1, &wb));
    collectN(sys, sim, 2);

    ASSERT_TRUE(sys.trySubmit(readCmd(5000, 3), 2, nullptr));
    ASSERT_TRUE(sys.trySubmit(readCmd(9000, 19), 3, nullptr));
    auto done = collectN(sys, sim, 2);
    EXPECT_EQ(done.at(2).data, wa);
    EXPECT_EQ(done.at(3).data, wb);
}

TEST(PvaUnit, SramVariantIsFunctionallyIdenticalAndFaster)
{
    PvaUnit sdram("sdram", PvaConfig{});
    PvaSramSystem sram("sram");

    VectorCommand c = readCmd(123, 19);
    Cycle t_sdram, t_sram;
    std::vector<Word> d_sdram, d_sram;
    {
        Simulation sim;
        sim.add(&sdram);
        sdram.trySubmit(c, 0, nullptr);
        auto done = collectN(sdram, sim, 1);
        t_sdram = sim.now();
        d_sdram = done.at(0).data;
    }
    {
        Simulation sim;
        sim.add(&sram);
        sram.trySubmit(c, 0, nullptr);
        auto done = collectN(sram, sim, 1);
        t_sram = sim.now();
        d_sram = done.at(0).data;
    }
    EXPECT_EQ(d_sdram, d_sram);
    EXPECT_LT(t_sram, t_sdram) << "SRAM has no RAS/precharge latency";
}

TEST(PvaUnit, StatsAreRegisteredAndCount)
{
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    sys.trySubmit(readCmd(0, 1), 0, nullptr);
    collectN(sys, sim, 1);
    EXPECT_EQ(sys.stats().scalar("frontend.reads"), 1u);
    EXPECT_EQ(sys.stats().scalar("bus.requestCycles"), 2u)
        << "VEC_READ + STAGE_READ";
    EXPECT_EQ(sys.stats().scalar("bus.dataCycles"), 16u);
    // Stride 1 over 16 banks: each bank read 2 elements.
    EXPECT_EQ(sys.stats().scalar("bc0.elements"), 2u);
    EXPECT_EQ(sys.stats().scalar("dev0.reads"), 2u);
}

TEST(PvaUnit, RandomScatterGatherFuzz)
{
    // Randomized end-to-end consistency: interleave writes and reads of
    // random strided vectors; a software mirror checks every gathered
    // line against what the writes should have produced.
    PvaUnit sys("pva", PvaConfig{});
    Simulation sim;
    sim.add(&sys);
    Random rng(0xfeed);
    std::map<WordAddr, Word> mirror;

    std::uint64_t tag = 0;
    for (unsigned round = 0; round < 40; ++round) {
        VectorCommand c;
        c.base = rng.below(1 << 20);
        c.stride = 1 + static_cast<std::uint32_t>(rng.below(40));
        c.length = 1 + static_cast<std::uint32_t>(rng.below(32));
        c.isRead = rng.below(2) == 0;

        if (c.isRead) {
            ASSERT_TRUE(sys.trySubmit(c, tag, nullptr));
            auto done = collectN(sys, sim, 1);
            const auto &data = done.at(tag).data;
            for (std::uint32_t i = 0; i < c.length; ++i) {
                WordAddr a = c.element(i);
                Word expect = mirror.count(a)
                                  ? mirror[a]
                                  : SparseMemory::backgroundPattern(a);
                ASSERT_EQ(data[i], expect)
                    << "round " << round << " elem " << i;
            }
        } else {
            std::vector<Word> data(c.length);
            for (std::uint32_t i = 0; i < c.length; ++i) {
                data[i] = static_cast<Word>(rng.next());
                mirror[c.element(i)] = data[i];
            }
            ASSERT_TRUE(sys.trySubmit(c, tag, &data));
            auto done = collectN(sys, sim, 1);
            ASSERT_TRUE(done.count(tag));
        }
        ++tag;
    }
}

TEST(PvaUnitDeath, BadSubmitsAreFatal)
{
    PvaUnit sys("pva", PvaConfig{});
    VectorCommand too_long = readCmd(0, 1, 33);
    test::expectSimError([&] { sys.trySubmit(too_long, 0, nullptr); },
                         SimErrorKind::Config, "length");
    VectorCommand wr = readCmd(0, 1);
    wr.isRead = false;
    test::expectSimError([&] { sys.trySubmit(wr, 0, nullptr); },
                         SimErrorKind::Config, "write data");
}

} // anonymous namespace
} // namespace pva
