/**
 * @file
 * Differential testing: the four memory systems are timing models of
 * the same functional memory, so any random command sequence must
 * leave identical memory images and gather identical data on all of
 * them — only cycle counts may differ.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "kernels/sweep.hh"
#include "kernels/trace_file.hh"
#include "sim/random.hh"

namespace pva
{
namespace
{

/** Generate a random but well-formed trace: writes and reads over a
 *  handful of regions, with barriers making the data flow
 *  deterministic. */
std::string
randomTraceText(std::uint64_t seed, unsigned commands)
{
    Random rng(seed);
    std::ostringstream out;
    for (unsigned i = 0; i < commands; ++i) {
        std::uint64_t region = rng.below(4) * (1 << 16);
        std::uint64_t base = region + rng.below(2000);
        std::uint64_t stride = 1 + rng.below(40);
        std::uint64_t length = 1 + rng.below(32);
        if (rng.below(3) == 0) {
            out << "write " << base << " " << stride << " " << length
                << " " << rng.below(100000) << "\n";
            // Barrier after each write keeps read-after-write
            // deterministic across systems with different timing.
            out << "barrier\n";
        } else {
            out << "read " << base << " " << stride << " " << length
                << "\n";
        }
    }
    return out.str();
}

class Differential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Differential, AllSystemsAgreeFunctionally)
{
    std::string text = randomTraceText(GetParam(), 60);
    std::istringstream in(text);
    TraceFile trace;
    std::string error;
    ASSERT_TRUE(parseTrace(in, trace, error)) << error;

    std::uint64_t ref_checksum = 0;
    bool first = true;
    for (SystemKind kind :
         {SystemKind::PvaSdram, SystemKind::CacheLine,
          SystemKind::Gathering, SystemKind::PvaSram}) {
        auto sys = makeSystem(kind);
        ReplayResult r = replayTrace(*sys, trace);
        if (first) {
            ref_checksum = r.readChecksum;
            first = false;
        } else {
            EXPECT_EQ(r.readChecksum, ref_checksum)
                << systemName(kind) << " seed " << GetParam();
        }
        // The final memory image must match too: spot-check the
        // regions' first words against the PVA image by re-reading
        // through replay is redundant; compare a sample directly.
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Differential, MemoryImagesMatchAfterIdenticalTraces)
{
    std::string text = randomTraceText(99, 40);
    std::istringstream in1(text), in2(text);
    TraceFile trace;
    std::string error;
    ASSERT_TRUE(parseTrace(in1, trace, error));

    auto a = makeSystem(SystemKind::PvaSdram);
    auto b = makeSystem(SystemKind::Gathering);
    replayTrace(*a, trace);
    replayTrace(*b, trace);
    // Compare every address any write in the trace touched.
    for (const TraceOp &op : trace.ops) {
        if (op.kind != TraceOp::Kind::Write)
            continue;
        for (std::uint32_t i = 0; i < op.cmd.length; ++i) {
            WordAddr addr = op.cmd.element(i);
            EXPECT_EQ(a->memory().read(addr), b->memory().read(addr))
                << "addr " << addr;
        }
    }
}

} // anonymous namespace
} // namespace pva
