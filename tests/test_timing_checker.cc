/**
 * @file
 * TimingChecker tests: deliberately illegal SDRAM command schedules
 * must be reported as SimError(Protocol) with a cycle-stamped
 * diagnostic, shadow-model audits must catch missing or misdirected
 * gathers, and a clean PVA run under the checker must pass silently.
 */

#include <gtest/gtest.h>

#include "core/pva_unit.hh"
#include "expect_sim_error.hh"
#include "kernels/sweep.hh"
#include "sdram/timing_checker.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

class TimingCheckerTest : public ::testing::Test
{
  protected:
    Geometry geo{16, 1};
    SdramTiming times{}; // tRCD 2, tCL 2, tRP 2, tRAS 5, tRC 7, tWR 2
    TimingChecker checker{geo, times, 16, 8, 32};

    /** Flat address in bank 0 at the given device coordinates. */
    WordAddr
    at(std::uint32_t row, unsigned ibank = 0, std::uint32_t col = 0) const
    {
        DeviceCoords c;
        c.col = col;
        c.internalBank = ibank;
        c.row = row;
        return geo.compose(0, c);
    }

    DeviceOp
    activate(WordAddr addr) const
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Activate;
        op.addr = addr;
        return op;
    }

    DeviceOp
    precharge(unsigned ibank) const
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Precharge;
        op.internalBank = ibank;
        return op;
    }

    DeviceOp
    read(WordAddr addr, bool auto_pre = false) const
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Read;
        op.addr = addr;
        op.autoPrecharge = auto_pre;
        return op;
    }

    DeviceOp
    write(WordAddr addr) const
    {
        DeviceOp op;
        op.kind = DeviceOp::Kind::Write;
        op.addr = addr;
        return op;
    }
};

TEST_F(TimingCheckerTest, LegalScheduleIsAccepted)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    checker.onCommand("dev0", 0, read(at(3)), 2);          // tRCD met
    checker.onCommand("dev0", 0, read(at(3, 0, 1)), 3);    // row hit
    checker.onCommand("dev0", 0, precharge(0), 5);         // tRAS met
    checker.onCommand("dev0", 0, activate(at(4)), 7);      // tRP met
    EXPECT_EQ(checker.statCommands.value(), 5u);
}

TEST_F(TimingCheckerTest, RasToCasTooEarlyIsCaught)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, read(at(3)), 1); },
        SimErrorKind::Protocol, "tRCD");
}

TEST_F(TimingCheckerTest, ActivateWithoutPrechargeIsCaught)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, activate(at(9)), 20); },
        SimErrorKind::Protocol, "missing precharge");
}

TEST_F(TimingCheckerTest, EarlyPrechargeViolatesTras)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, precharge(0), 2); },
        SimErrorKind::Protocol, "tRAS");
}

TEST_F(TimingCheckerTest, EarlyActivateAfterPrechargeViolatesTrp)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    checker.onCommand("dev0", 0, precharge(0), 5);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, activate(at(4)), 6); },
        SimErrorKind::Protocol, "tRP");
}

TEST_F(TimingCheckerTest, BusTurnaroundViolationIsCaught)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    checker.onCommand("dev0", 0, read(at(3)), 2); // data at cycle 4
    // A write at cycle 4 puts data at 5, adjacent to the read's data
    // cycle with reversed polarity: the mandatory turnaround bubble is
    // missing.
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, write(at(3, 0, 1)), 4); },
        SimErrorKind::Protocol, "turnaround");
}

TEST_F(TimingCheckerTest, DoubleCommandBusDriveIsCaught)
{
    checker.onCommand("dev0", 0, activate(at(3)), 0);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, precharge(1), 0); },
        SimErrorKind::Protocol, "twice");
}

TEST_F(TimingCheckerTest, CommandDuringRefreshIsCaught)
{
    checker.onRefresh(0, 0, 10);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, activate(at(3)), 5); },
        SimErrorKind::Protocol, "refresh");
    // Exactly at busy_until the device is available again.
    checker.onCommand("dev0", 0, activate(at(3)), 10);
}

TEST_F(TimingCheckerTest, AccessOnClosedOrWrongRowIsCaught)
{
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, read(at(3)), 0); },
        SimErrorKind::Protocol, "closed");
    checker.onCommand("dev0", 0, activate(at(3)), 5);
    test::expectSimError(
        [&] { checker.onCommand("dev0", 0, read(at(4)), 8); },
        SimErrorKind::Protocol, "open");
}

TEST_F(TimingCheckerTest, GatherAuditCatchesMissingSlot)
{
    VectorCommand cmd;
    cmd.base = 64;
    cmd.stride = 16;
    cmd.length = 4;
    cmd.isRead = true;
    cmd.txn = 2;
    checker.beginTxn(cmd);
    std::vector<Word> line(4, 0);
    for (std::uint32_t i = 0; i < 3; ++i) { // slot 3 never arrives
        DeviceOp op = read(cmd.element(i));
        op.txn = 2;
        op.slot = static_cast<std::uint8_t>(i);
        checker.onReadData(i, op, 1000 + i);
        line[i] = 1000 + i;
    }
    test::expectSimError([&] { checker.verifyGather(cmd, line, 50); },
                         SimErrorKind::Corruption, "never gathered");
}

TEST_F(TimingCheckerTest, GatherAuditCatchesWrongAddressAndData)
{
    VectorCommand cmd;
    cmd.base = 64;
    cmd.stride = 16;
    cmd.length = 2;
    cmd.isRead = true;
    cmd.txn = 0;
    checker.beginTxn(cmd);
    std::vector<Word> line = {7, 8};
    DeviceOp op0 = read(cmd.element(0) + 1); // gathered the wrong word
    op0.txn = 0;
    op0.slot = 0;
    checker.onReadData(0, op0, 7);
    DeviceOp op1 = read(cmd.element(1));
    op1.txn = 0;
    op1.slot = 1;
    checker.onReadData(1, op1, 8);
    test::expectSimError([&] { checker.verifyGather(cmd, line, 9); },
                         SimErrorKind::Corruption, "address");

    checker.beginTxn(cmd);
    op0.addr = cmd.element(0);
    checker.onReadData(0, op0, 7);
    checker.onReadData(1, op1, 999); // staged line disagrees
    test::expectSimError([&] { checker.verifyGather(cmd, line, 9); },
                         SimErrorKind::Corruption, "staged");
}

TEST_F(TimingCheckerTest, ScatterAuditCatchesMissingWrite)
{
    VectorCommand cmd;
    cmd.base = 0;
    cmd.stride = 16;
    cmd.length = 2;
    cmd.isRead = false;
    cmd.txn = 1;
    checker.beginTxn(cmd);
    std::vector<Word> data = {11, 22};
    DeviceOp op = write(cmd.element(0));
    op.txn = 1;
    op.slot = 0;
    op.writeData = 11;
    checker.onWriteData(0, op);
    test::expectSimError([&] { checker.verifyScatter(cmd, data, 30); },
                         SimErrorKind::Corruption, "never written");
}

TEST(TimingCheckerIntegration, CleanPvaRunPassesTheChecker)
{
    // A full kernel under the checker: every device command is
    // verified and every line audited, with zero violations.
    SweepRequest req;
    req.kernel = KernelId::Vaxpy;
    req.stride = 19;
    req.elements = 512;
    req.config.timingCheck = true;
    SweepPoint p = runPoint(req);
    EXPECT_EQ(p.mismatches, 0u);
    EXPECT_EQ(p.status, PointStatus::Ok);
}

TEST(TimingCheckerIntegration, CheckerCoversRefreshTraffic)
{
    // Auto-refresh interleaves REF commands with the gather stream;
    // the checker must model the refresh window instead of flagging
    // the post-refresh activates.
    SweepRequest req;
    req.kernel = KernelId::Copy;
    req.stride = 4;
    req.elements = 512;
    req.config.timing.tREFI = 300;
    req.config.timingCheck = true;
    SweepPoint p = runPoint(req);
    EXPECT_EQ(p.mismatches, 0u);
}

TEST(TimingCheckerIntegration, CheckerStatsAreRegistered)
{
    PvaConfig cfg;
    cfg.timingCheck = true;
    PvaUnit sys("pva", cfg);
    Simulation sim;
    sim.add(&sys);
    VectorCommand cmd;
    cmd.base = 100;
    cmd.stride = 7;
    cmd.length = 32;
    cmd.isRead = true;
    ASSERT_TRUE(sys.trySubmit(cmd, 1, nullptr));
    sim.runUntil([&] { return !sys.drainCompletions().empty(); },
                 100000);
    EXPECT_GT(sys.stats().scalar("checker.commands"), 0u);
    EXPECT_EQ(sys.stats().scalar("checker.gathers"), 1u);
}

} // anonymous namespace
} // namespace pva
