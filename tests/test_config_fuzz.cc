/**
 * @file
 * Configuration fuzz smoke test: seeded random mutations of
 * SystemConfig (including hostile geometry shapes, zeroed resources,
 * inverted timing constraints, and out-of-range fault rates) must
 * either validate cleanly or fail with a structured SimError — never
 * an uncaught exception, assertion, or crash. Configs that survive
 * validation occasionally run a small bounded point to shake out
 * late (construction- or run-time) failures, which must also surface
 * as SimErrors.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "kernels/sweep.hh"
#include "sdram/geometry.hh"
#include "sim/random.hh"
#include "sim/sim_error.hh"

namespace pva
{
namespace
{

/** Adversarial value pools: boundary, zero, huge, and benign values. */
constexpr unsigned kUnsignedPool[] = {0,  1,  2,  3,   4,   5,
                                      8,  12, 16, 31,  32,  33,
                                      64, 97, 256, 4096};
constexpr double kRatePool[] = {-1.0, -0.001, 0.0, 0.0001, 0.5,
                                0.999, 1.0, 1.001, 2.0, 1e9};

unsigned
pickUnsigned(Random &rng)
{
    return kUnsignedPool[rng.below(std::size(kUnsignedPool))];
}

double
pickRate(Random &rng)
{
    return kRatePool[rng.below(std::size(kRatePool))];
}

/** Apply one random mutation (geometry rebuilds may throw the
 *  structured rejection straight from the Geometry constructor). */
void
mutate(Random &rng, SystemConfig &cfg)
{
    switch (rng.below(20)) {
      case 0:
        cfg.geometry = Geometry(pickUnsigned(rng), pickUnsigned(rng));
        break;
      case 1:
        cfg.geometry =
            Geometry(16, 1, pickUnsigned(rng) % 24,
                     pickUnsigned(rng) % 8, pickUnsigned(rng) % 24);
        break;
      case 2:
        cfg.timing.tRCD = pickUnsigned(rng);
        break;
      case 3:
        cfg.timing.tCL = pickUnsigned(rng);
        break;
      case 4:
        cfg.timing.tRP = pickUnsigned(rng);
        break;
      case 5:
        cfg.timing.tRAS = pickUnsigned(rng);
        break;
      case 6:
        cfg.timing.tRC = pickUnsigned(rng);
        break;
      case 7:
        cfg.timing.tWR = pickUnsigned(rng);
        break;
      case 8:
        cfg.timing.tREFI = pickUnsigned(rng);
        break;
      case 9:
        cfg.timing.tRFC = pickUnsigned(rng);
        break;
      case 10:
        cfg.bc.fifoEntries = pickUnsigned(rng);
        break;
      case 11:
        cfg.bc.vectorContexts = pickUnsigned(rng);
        break;
      case 12:
        cfg.bc.lineWords = pickUnsigned(rng);
        break;
      case 13:
        cfg.bc.transactions = pickUnsigned(rng);
        break;
      case 14:
        cfg.bc.fhcLatency = pickUnsigned(rng);
        break;
      case 15:
        cfg.maxOutstanding = pickUnsigned(rng);
        break;
      case 16:
        cfg.faults.seed = rng.next();
        break;
      case 17:
        cfg.faults.refreshStallRate = pickRate(rng);
        cfg.faults.bcStallRate = pickRate(rng);
        break;
      case 18:
        cfg.faults.dropTransferRate = pickRate(rng);
        cfg.faults.corruptFirstHitRate = pickRate(rng);
        break;
      case 19:
        cfg.bc.bypassEnabled = rng.below(2) != 0;
        cfg.optimisticLineReuse = rng.below(2) != 0;
        cfg.timingCheck = rng.below(2) != 0;
        break;
    }
}

TEST(ConfigFuzz, MutatedConfigsFailOnlyWithStructuredErrors)
{
    Random rng(0xc0ffee);
    unsigned validated = 0;
    unsigned rejected = 0;
    unsigned executed = 0;

    for (unsigned iter = 0; iter < 300; ++iter) {
        SystemConfig cfg;
        bool valid = false;
        try {
            const unsigned mutations =
                1 + static_cast<unsigned>(rng.below(4));
            for (unsigned m = 0; m < mutations; ++m)
                mutate(rng, cfg);
            cfg.validate();
            valid = true;
        } catch (const SimError &e) {
            // Structured rejection is the contract: a category, a
            // component, and a non-empty diagnostic.
            EXPECT_NE(e.what()[0], '\0');
            EXPECT_EQ(e.kind(), SimErrorKind::Config)
                << "iteration " << iter << ": " << e.what();
            ++rejected;
            continue;
        } catch (const std::exception &e) {
            FAIL() << "iteration " << iter
                   << ": non-SimError escaped: " << e.what();
        }
        ASSERT_TRUE(valid);
        ++validated;

        // Every 8th surviving config also has to *run* without
        // anything but a SimError escaping (fault injection and the
        // cycle watchdog make several kinds legitimate). Monster
        // geometries are skipped: thousands of bank controllers
        // stepping a bounded run is pure wall-clock with no new
        // coverage over the validation pass.
        if (validated % 8 != 0 || cfg.geometry.banks() > 64)
            continue;
        ++executed;
        SweepRequest req;
        req.kernel = KernelId::Copy;
        req.stride = 3;
        req.elements = 32;
        req.config = cfg;
        req.limits.maxCycles = 20000;
        try {
            runPoint(req);
        } catch (const SimError &e) {
            EXPECT_NE(e.what()[0], '\0');
        } catch (const std::exception &e) {
            FAIL() << "iteration " << iter
                   << ": non-SimError escaped runPoint: " << e.what();
        }
    }

    // The pools are adversarial enough that both outcomes must occur;
    // otherwise the fuzzer is not exercising anything.
    EXPECT_GT(validated, 10u);
    EXPECT_GT(rejected, 10u);
    EXPECT_GT(executed, 0u);
}

} // anonymous namespace
} // namespace pva
