/**
 * @file
 * L2 cache and shadow-region tests: hit/miss behaviour, LRU
 * replacement, write-back correctness, utilization accounting, and the
 * Impulse shadow remapping semantics.
 */

#include <gtest/gtest.h>

#include "baselines/cacheline_system.hh"
#include "cache/l2_cache.hh"
#include "core/pva_unit.hh"
#include "core/shadow.hh"
#include "expect_sim_error.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

class CacheTest : public ::testing::Test
{
  protected:
    CacheTest() : mem("mem", PvaConfig{})
    {
        sim.add(&mem);
        cfg.sets = 4;
        cfg.ways = 2;
        cfg.lineWords = 32;
        cache = std::make_unique<L2Cache>(cfg, mem, sim);
    }

    PvaUnit mem;
    Simulation sim;
    CacheConfig cfg;
    std::unique_ptr<L2Cache> cache;
};

TEST_F(CacheTest, MissThenHit)
{
    mem.memory().write(100, 42);
    EXPECT_EQ(cache->read(100), 42u);
    EXPECT_EQ(cache->statMisses.value(), 1u);
    EXPECT_EQ(cache->read(100), 42u);
    EXPECT_EQ(cache->read(101), SparseMemory::backgroundPattern(101));
    EXPECT_EQ(cache->statHits.value(), 2u) << "same line";
    EXPECT_EQ(cache->statMisses.value(), 1u);
}

TEST_F(CacheTest, LruEvictsOldestWay)
{
    // Three lines mapping to the same set (4 sets x 32 words: lines
    // 128 words apart in the same set) in a 2-way set.
    const WordAddr a = 0, b = 4 * 32, c = 8 * 32;
    cache->read(a);
    cache->read(b);
    cache->read(a); // refresh a's LRU stamp
    cache->read(c); // evicts b
    EXPECT_EQ(cache->statMisses.value(), 3u);
    cache->read(a);
    EXPECT_EQ(cache->statMisses.value(), 3u) << "a still resident";
    cache->read(b);
    EXPECT_EQ(cache->statMisses.value(), 4u) << "b was evicted";
}

TEST_F(CacheTest, WritebackOnDirtyEviction)
{
    const WordAddr a = 0, b = 4 * 32, c = 8 * 32;
    cache->write(a, 0x1111);
    cache->read(b);
    cache->read(c); // evicts dirty a -> writeback
    EXPECT_EQ(cache->statWritebacks.value(), 1u);
    EXPECT_EQ(mem.memory().read(a), 0x1111u);
    // Re-reading a misses and returns the written value.
    EXPECT_EQ(cache->read(a), 0x1111u);
}

TEST_F(CacheTest, FlushWritesAllDirtyLines)
{
    cache->write(10, 7);
    cache->write(200, 8);
    EXPECT_NE(mem.memory().read(10), 7u) << "still dirty in cache";
    cache->flush();
    EXPECT_EQ(mem.memory().read(10), 7u);
    EXPECT_EQ(mem.memory().read(200), 8u);
    EXPECT_EQ(cache->statWritebacks.value(), 2u);
}

TEST_F(CacheTest, UtilizationCountsDistinctTouchedWords)
{
    cache->read(0);
    cache->read(0); // same word twice: one use
    cache->read(5);
    EXPECT_EQ(cache->statWordsFetched.value(), 32u);
    EXPECT_EQ(cache->statWordsUsed.value(), 2u);
    EXPECT_NEAR(cache->busUtilization(), 2.0 / 32.0, 1e-9);
}

TEST_F(CacheTest, StridedWalkWastesBandwidth)
{
    // One word used per fetched line at stride 32.
    for (WordAddr i = 0; i < 16; ++i)
        cache->read(i * 32);
    EXPECT_EQ(cache->statMisses.value(), 16u);
    EXPECT_NEAR(cache->busUtilization(), 1.0 / 32.0, 1e-9);
}

TEST(ShadowRegion, RemapsUnitStrideFillsToGathers)
{
    PvaUnit inner("pva", PvaConfig{});
    ShadowMemorySystem shadow("shadow", inner);
    shadow.mapShadow({1 << 20, 1024, 5000, 32});
    Simulation sim;
    sim.add(&shadow);

    for (std::uint32_t i = 0; i < 64; ++i)
        inner.memory().write(5000 + 32ull * i, 0x8800 + i);

    VectorCommand c;
    c.base = (1 << 20) + 16; // shadow element 16
    c.stride = 1;
    c.length = 32;
    c.isRead = true;
    ASSERT_TRUE(shadow.trySubmit(c, 0, nullptr));
    std::vector<Word> data;
    sim.runUntil([&] {
        auto done = shadow.drainCompletions();
        if (done.empty())
            return false;
        data = std::move(done.front().data);
        return true;
    });
    ASSERT_EQ(data.size(), 32u);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(data[i], 0x8800 + 16 + i);
    EXPECT_EQ(shadow.remappedCommands(), 1u);
}

TEST(ShadowRegion, NonShadowCommandsPassThrough)
{
    PvaUnit inner("pva", PvaConfig{});
    ShadowMemorySystem shadow("shadow", inner);
    shadow.mapShadow({1 << 20, 64, 5000, 8});
    Simulation sim;
    sim.add(&shadow);

    VectorCommand c;
    c.base = 123;
    c.stride = 3;
    c.length = 32;
    c.isRead = true;
    ASSERT_TRUE(shadow.trySubmit(c, 0, nullptr));
    std::vector<Word> data;
    sim.runUntil([&] {
        auto done = shadow.drainCompletions();
        if (done.empty())
            return false;
        data = std::move(done.front().data);
        return true;
    });
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(data[i], SparseMemory::backgroundPattern(123 + 3ull * i));
    EXPECT_EQ(shadow.remappedCommands(), 0u);
}

TEST(ShadowRegion, StridedShadowAccessComposesStrides)
{
    // Reading every 2nd shadow element = every 2*stride real words.
    PvaUnit inner("pva", PvaConfig{});
    ShadowMemorySystem shadow("shadow", inner);
    shadow.mapShadow({1 << 20, 256, 9000, 5});
    Simulation sim;
    sim.add(&shadow);

    VectorCommand c;
    c.base = 1 << 20;
    c.stride = 2;
    c.length = 32;
    c.isRead = true;
    ASSERT_TRUE(shadow.trySubmit(c, 0, nullptr));
    std::vector<Word> data;
    sim.runUntil([&] {
        auto done = shadow.drainCompletions();
        if (done.empty())
            return false;
        data = std::move(done.front().data);
        return true;
    });
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(data[i],
                  SparseMemory::backgroundPattern(9000 + 10ull * i));
}

TEST(ShadowRegionDeath, RejectsBadRegions)
{
    PvaUnit inner("pva", PvaConfig{});
    ShadowMemorySystem shadow("shadow", inner);
    shadow.mapShadow({1000, 100, 0, 4});
    test::expectSimError([&] { shadow.mapShadow({1050, 100, 0, 4}); },
                         SimErrorKind::Config, "overlap");
    test::expectSimError([&] { shadow.mapShadow({5000, 0, 0, 4}); },
                         SimErrorKind::Config, "length");

    VectorCommand crossing;
    crossing.base = 1090;
    crossing.stride = 1;
    crossing.length = 32; // runs past shadow end at 1100
    crossing.isRead = true;
    test::expectSimError([&] { shadow.trySubmit(crossing, 0, nullptr); },
                         SimErrorKind::Config, "boundary");
}

TEST(CacheWithShadow, ShadowPathReachesFullUtilization)
{
    PvaUnit inner("pva", PvaConfig{});
    ShadowMemorySystem shadow("shadow", inner);
    shadow.mapShadow({1 << 20, 512, 7777, 32});
    Simulation sim;
    sim.add(&shadow);
    CacheConfig cfg;
    cfg.sets = 4;
    cfg.ways = 2;
    L2Cache cache(cfg, shadow, sim);

    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < 512; ++i)
        sum += cache.read((1 << 20) + i);
    EXPECT_DOUBLE_EQ(cache.busUtilization(), 1.0);
    EXPECT_EQ(cache.statMisses.value(), 512u / 32);
    (void)sum;
}

} // anonymous namespace
} // namespace pva
