/**
 * @file
 * LogHistogram unit tests: bucket index math, percentile queries, and
 * StatSet registration/dump integration.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/stats.hh"

using namespace pva;

TEST(LogHistogram, ValuesBelowTheLinearRangeMapToThemselves)
{
    for (std::uint64_t v = 0; v < (1ULL << LogHistogram::kSubBits); ++v)
        EXPECT_EQ(LogHistogram::bucketIndex(v), v);
}

TEST(LogHistogram, OctaveIndexingMatchesHandComputedBuckets)
{
    // kSubBits = 3: eight linear sub-buckets per octave.
    EXPECT_EQ(LogHistogram::bucketIndex(8), 8u);
    EXPECT_EQ(LogHistogram::bucketIndex(15), 15u);
    EXPECT_EQ(LogHistogram::bucketIndex(16), 16u);
    EXPECT_EQ(LogHistogram::bucketIndex(17), 16u); // same sub-bucket
    EXPECT_EQ(LogHistogram::bucketIndex(31), 23u);
    EXPECT_EQ(LogHistogram::bucketIndex(~0ULL),
              LogHistogram::kBucketCount - 1);
}

TEST(LogHistogram, BucketLowerBoundInvertsBucketIndex)
{
    EXPECT_EQ(LogHistogram::bucketLowerBound(23), 30u);
    // Every value's bucket lower bound is <= the value, and the value
    // is below the next bucket's lower bound.
    for (std::uint64_t v : {1ULL, 7ULL, 8ULL, 100ULL, 4096ULL,
                            123456789ULL}) {
        unsigned idx = LogHistogram::bucketIndex(v);
        EXPECT_LE(LogHistogram::bucketLowerBound(idx), v);
        if (idx + 1 < LogHistogram::kBucketCount)
            EXPECT_LT(v, LogHistogram::bucketLowerBound(idx + 1));
    }
}

TEST(LogHistogram, EmptyHistogramReportsZeros)
{
    LogHistogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p999(), 0u);
}

TEST(LogHistogram, SingleSampleIsEveryPercentile)
{
    LogHistogram h;
    h.sample(12345);
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.minValue(), 12345u);
    EXPECT_EQ(h.maxValue(), 12345u);
    EXPECT_DOUBLE_EQ(h.mean(), 12345.0);
    EXPECT_EQ(h.p50(), 12345u);
    EXPECT_EQ(h.p95(), 12345u);
    EXPECT_EQ(h.p999(), 12345u);
}

TEST(LogHistogram, PercentilesAreOrderedAndWithinLogResolution)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.sample(v);
    EXPECT_EQ(h.samples(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 500.5);

    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_LE(h.p99(), h.p999());
    EXPECT_LE(h.p999(), h.maxValue());
    EXPECT_GE(h.p50(), h.minValue());

    // 8 sub-buckets per octave bound the relative error at 12.5%.
    EXPECT_GE(h.p50(), 500u);
    EXPECT_LE(h.p50(), 570u);
    EXPECT_GE(h.p99(), 990u);
    // Percentiles clamp to the observed maximum.
    EXPECT_LE(h.p999(), 1000u);
}

TEST(LogHistogram, ResetForgetsEverything)
{
    LogHistogram h;
    h.sample(7);
    h.sample(70000);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.p50(), 0u);
}

TEST(StatSetHistogram, RegisteredHistogramsAppearInDumps)
{
    StatSet set;
    LogHistogram lat;
    set.addHistogram("lat", &lat);
    lat.sample(100);
    lat.sample(200);

    ASSERT_TRUE(set.hasHistogram("lat"));
    EXPECT_EQ(set.histogram("lat").samples(), 2u);

    std::ostringstream text;
    set.dump(text);
    EXPECT_NE(text.str().find("lat.samples 2"), std::string::npos);
    EXPECT_NE(text.str().find("lat.p50"), std::string::npos);

    std::ostringstream json;
    set.dumpJson(json);
    EXPECT_NE(json.str().find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.str().find("\"lat\""), std::string::npos);
}
