/**
 * @file
 * Kernel-harness tests: trace construction per kernel (command shapes,
 * dependences, unroll grouping), reference semantics, alignment
 * presets, and full runs on every memory system with functional
 * verification.
 */

#include <gtest/gtest.h>

#include "kernels/alignment.hh"
#include "kernels/runner.hh"
#include "kernels/sweep.hh"

namespace pva
{
namespace
{

WorkloadConfig
smallConfig(KernelId id, std::uint32_t stride, std::uint32_t elements = 128)
{
    const KernelSpec &spec = kernelSpec(id);
    WorkloadConfig cfg;
    cfg.stride = stride;
    cfg.elements = elements;
    cfg.streamBases = streamBases(alignmentPresets()[0], spec.numStreams,
                                  stride, elements);
    return cfg;
}

TEST(KernelSpecs, TableMatchesThePaper)
{
    EXPECT_EQ(allKernels().size(), 8u);
    EXPECT_EQ(kernelSpec(KernelId::Copy).name, "copy");
    EXPECT_EQ(kernelSpec(KernelId::Vaxpy).numStreams, 3u);
    EXPECT_EQ(kernelSpec(KernelId::Vaxpy).readStreams.size(), 3u);
    EXPECT_EQ(kernelSpec(KernelId::Swap).writeStreams.size(), 2u);
    EXPECT_EQ(kernelSpec(KernelId::Copy2).unroll, 2u);
    EXPECT_EQ(kernelSpec(KernelId::Tridiag).readStreams,
              (std::vector<unsigned>{1, 2}));
}

TEST(BuildTrace, CopyShape)
{
    SparseMemory mem;
    auto cfg = smallConfig(KernelId::Copy, 3);
    KernelTrace t = buildTrace(kernelSpec(KernelId::Copy), cfg, mem);
    // 128 elements / 32 = 4 chunks, each R x then W y.
    ASSERT_EQ(t.ops.size(), 8u);
    for (unsigned c = 0; c < 4; ++c) {
        const KernelOp &rd = t.ops[2 * c];
        const KernelOp &wr = t.ops[2 * c + 1];
        EXPECT_TRUE(rd.cmd.isRead);
        EXPECT_FALSE(wr.cmd.isRead);
        EXPECT_EQ(rd.cmd.base, cfg.streamBases[0] + 3ull * 32 * c);
        EXPECT_EQ(wr.cmd.base, cfg.streamBases[1] + 3ull * 32 * c);
        EXPECT_EQ(wr.deps, (std::vector<std::size_t>{2 * c}));
        // copy: write data equals the source values.
        for (unsigned i = 0; i < 32; ++i) {
            EXPECT_EQ(wr.writeData[i],
                      mem.read(rd.cmd.element(i)));
        }
    }
}

TEST(BuildTrace, Copy2GroupsCommands)
{
    SparseMemory mem;
    auto cfg = smallConfig(KernelId::Copy2, 1);
    KernelTrace t = buildTrace(kernelSpec(KernelId::Copy2), cfg, mem);
    // Groups of 2 chunks: R,R,W,W per group.
    ASSERT_EQ(t.ops.size(), 8u);
    EXPECT_TRUE(t.ops[0].cmd.isRead);
    EXPECT_TRUE(t.ops[1].cmd.isRead);
    EXPECT_FALSE(t.ops[2].cmd.isRead);
    EXPECT_FALSE(t.ops[3].cmd.isRead);
    EXPECT_EQ(t.ops[2].deps, (std::vector<std::size_t>{0}));
    EXPECT_EQ(t.ops[3].deps, (std::vector<std::size_t>{1}));
}

TEST(BuildTrace, SaxpySemantics)
{
    SparseMemory mem;
    auto cfg = smallConfig(KernelId::Saxpy, 2, 32);
    for (unsigned i = 0; i < 32; ++i) {
        mem.write(cfg.streamBases[0] + 2 * i, 10 + i); // x
        mem.write(cfg.streamBases[1] + 2 * i, 100 * i); // y
    }
    KernelTrace t = buildTrace(kernelSpec(KernelId::Saxpy), cfg, mem);
    ASSERT_EQ(t.ops.size(), 3u); // R x, R y, W y
    EXPECT_EQ(t.ops[2].deps, (std::vector<std::size_t>{0, 1}));
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(t.ops[2].writeData[i], 100 * i + 3 * (10 + i));
}

TEST(BuildTrace, SwapSemantics)
{
    SparseMemory mem;
    auto cfg = smallConfig(KernelId::Swap, 5, 32);
    KernelTrace t = buildTrace(kernelSpec(KernelId::Swap), cfg, mem);
    ASSERT_EQ(t.ops.size(), 4u); // R x, R y, W x, W y
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_EQ(t.ops[2].writeData[i],
                  mem.read(cfg.streamBases[1] + 5 * i));
        EXPECT_EQ(t.ops[3].writeData[i],
                  mem.read(cfg.streamBases[0] + 5 * i));
    }
}

TEST(BuildTrace, TridiagRecurrence)
{
    SparseMemory mem;
    auto cfg = smallConfig(KernelId::Tridiag, 1, 32);
    KernelTrace t = buildTrace(kernelSpec(KernelId::Tridiag), cfg, mem);
    ASSERT_EQ(t.ops.size(), 3u); // R y, R z, W x
    Word prev = mem.read(cfg.streamBases[0] - 1);
    for (unsigned i = 0; i < 32; ++i) {
        Word y = mem.read(cfg.streamBases[1] + i);
        Word z = mem.read(cfg.streamBases[2] + i);
        Word expect = z * (y - prev);
        EXPECT_EQ(t.ops[2].writeData[i], expect) << "i=" << i;
        prev = expect;
    }
}

TEST(BuildTrace, ExpectedWritesMatchWriteData)
{
    SparseMemory mem;
    for (KernelId k : allKernels()) {
        auto cfg = smallConfig(k, 7);
        KernelTrace t = buildTrace(kernelSpec(k), cfg, mem);
        std::size_t write_words = 0;
        for (const KernelOp &op : t.ops)
            if (!op.cmd.isRead)
                write_words += op.cmd.length;
        EXPECT_EQ(t.expectedWrites.size(), write_words)
            << kernelSpec(k).name;
    }
}

TEST(Alignment, FivePresetsWithDistinctSkews)
{
    const auto &presets = alignmentPresets();
    ASSERT_EQ(presets.size(), 5u);
    EXPECT_EQ(presets[0].skews, (std::vector<WordAddr>{0, 0, 0}));
    // Streams never overlap even at the largest stride.
    for (const auto &p : presets) {
        auto bases = streamBases(p, 3, 19, 1024);
        for (unsigned j = 0; j + 1 < 3; ++j)
            EXPECT_GE(bases[j + 1], bases[j] + 19ull * 1024)
                << p.name << " stream " << j;
    }
}

TEST(Alignment, AlignedPresetStartsEveryStreamOnBankZero)
{
    auto bases = streamBases(alignmentPresets()[0], 3, 4, 1024);
    for (WordAddr b : bases)
        EXPECT_EQ(b % 8192, 0u);
}

/** Every kernel on every system, small workload: must verify cleanly. */
struct RunParam
{
    KernelId kernel;
    SystemKind system;
};

class KernelRuns : public ::testing::TestWithParam<RunParam>
{
};

TEST_P(KernelRuns, FunctionallyCorrectOnStride7)
{
    const auto [kernel, system] = GetParam();
    auto sys = makeSystem(system);
    const KernelSpec &spec = kernelSpec(kernel);
    WorkloadConfig cfg;
    cfg.stride = 7;
    cfg.elements = 256;
    cfg.streamBases =
        streamBases(alignmentPresets()[2], spec.numStreams, 7, 256);
    RunResult r = runKernelOn(*sys, kernel, cfg);
    EXPECT_EQ(r.mismatches, 0u);
    EXPECT_GT(r.cycles, 0u);
}

std::vector<RunParam>
runParams()
{
    std::vector<RunParam> p;
    for (KernelId k : allKernels()) {
        for (SystemKind s :
             {SystemKind::PvaSdram, SystemKind::CacheLine,
              SystemKind::Gathering, SystemKind::PvaSram}) {
            p.push_back({k, s});
        }
    }
    return p;
}

INSTANTIATE_TEST_SUITE_P(AllKernelsAllSystems, KernelRuns,
                         ::testing::ValuesIn(runParams()));

TEST(Sweep, PvaBeatsCacheLineAtLargeStride)
{
    SweepPoint pva = runPoint(SystemKind::PvaSdram, KernelId::Copy, 19, 0,
                              256);
    SweepPoint cl = runPoint(SystemKind::CacheLine, KernelId::Copy, 19, 0,
                             256);
    EXPECT_EQ(pva.mismatches, 0u);
    EXPECT_EQ(cl.mismatches, 0u);
    EXPECT_GT(cl.cycles, 10 * pva.cycles);
}

TEST(Sweep, StrideOneIsComparable)
{
    SweepPoint pva =
        runPoint(SystemKind::PvaSdram, KernelId::Copy, 1, 0, 256);
    SweepPoint cl =
        runPoint(SystemKind::CacheLine, KernelId::Copy, 1, 0, 256);
    EXPECT_LT(pva.cycles, 2 * cl.cycles);
    EXPECT_LT(cl.cycles, 2 * pva.cycles);
}

TEST(Sweep, MinMaxAcrossAlignments)
{
    MinMaxCycles mm =
        runAcrossAlignments(SystemKind::PvaSdram, KernelId::Scale, 4, 256);
    EXPECT_LE(mm.min, mm.max);
    EXPECT_GT(mm.min, 0u);
}

} // anonymous namespace
} // namespace pva
