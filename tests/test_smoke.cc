/**
 * @file
 * Build smoke test: a single strided read through the full PVA unit.
 */

#include <gtest/gtest.h>

#include "core/pva_unit.hh"
#include "sim/simulation.hh"

namespace pva
{
namespace
{

TEST(Smoke, SingleStridedReadGathers)
{
    PvaUnit sys("pva", PvaConfig{});

    // Poke a recognizable pattern at stride 3 from word 1000.
    for (std::uint32_t i = 0; i < 32; ++i)
        sys.memory().write(1000 + 3 * i, 0xabc0000 + i);

    VectorCommand cmd;
    cmd.base = 1000;
    cmd.stride = 3;
    cmd.length = 32;
    cmd.isRead = true;

    ASSERT_TRUE(sys.trySubmit(cmd, 42, nullptr));

    Simulation sim;
    sim.add(&sys);
    std::vector<Completion> done;
    sim.runUntil(
        [&] {
            for (Completion &c : sys.drainCompletions())
                done.push_back(std::move(c));
            return !done.empty();
        },
        100000);

    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tag, 42u);
    ASSERT_EQ(done[0].data.size(), 32u);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(done[0].data[i], 0xabc0000 + i) << "element " << i;
}

} // anonymous namespace
} // namespace pva
