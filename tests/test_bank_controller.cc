/**
 * @file
 * Bank-controller white-box tests: FHP participation decisions, staging
 * completion, gather correctness per bank, FHC latency, bypass paths,
 * write scatter, and the extension (indirect/bit-reversal) request
 * handling.
 */

#include <gtest/gtest.h>

#include "core/bank_controller.hh"
#include "expect_sim_error.hh"
#include "sdram/sram_device.hh"
#include "sim/logging.hh"

namespace pva
{
namespace
{

class BcTest : public ::testing::Test
{
  protected:
    BcTest()
        : dev("dev", kBank, geo, timing, mem),
          bc("bc", kBank, geo, cfg, dev)
    {
    }

    /** Tick the BC through [from, to). */
    void
    run(Cycle from, Cycle to)
    {
        for (Cycle t = from; t < to; ++t)
            bc.tick(t);
    }

    static constexpr unsigned kBank = 3;
    Geometry geo{16, 1};
    SdramTiming timing{};
    BcConfig cfg{};
    SparseMemory mem;
    SdramDevice dev;
    BankController bc;
};

TEST_F(BcTest, NonParticipatingCommandCompletesImmediately)
{
    VectorCommand cmd;
    cmd.base = 0;    // bank 0
    cmd.stride = 16; // every element stays in bank 0
    cmd.length = 32;
    cmd.isRead = true;
    cmd.txn = 5;
    bc.observeVecCommand(0, cmd);
    EXPECT_TRUE(bc.txnComplete(5)) << "no elements here";
    EXPECT_EQ(bc.statCommandsSeen.value(), 1u);
    EXPECT_EQ(bc.statCommandsHit.value(), 0u);
}

TEST_F(BcTest, GathersExactlyItsSubVector)
{
    // Stride 5 (odd): all 16 banks participate, 2 elements each.
    VectorCommand cmd;
    cmd.base = 0;
    cmd.stride = 5;
    cmd.length = 32;
    cmd.isRead = true;
    cmd.txn = 1;

    for (std::uint32_t i = 0; i < 32; ++i)
        mem.write(cmd.element(i), 0x500 + i);

    bc.observeVecCommand(0, cmd);
    EXPECT_FALSE(bc.txnComplete(1));
    run(0, 40);
    ASSERT_TRUE(bc.txnComplete(1));

    std::vector<Word> line(32, 0xdead);
    bc.collectInto(1, line);

    SubVector sv = subVectorWord(cmd, kBank, 4);
    ASSERT_TRUE(sv.hit);
    EXPECT_EQ(sv.count, 2u);
    unsigned filled = 0;
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (line[i] != 0xdead) {
            EXPECT_EQ(line[i], 0x500 + i);
            ++filled;
        }
    }
    EXPECT_EQ(filled, sv.count) << "only this bank's slots written";
    EXPECT_EQ(bc.statElements.value(), sv.count);
}

TEST_F(BcTest, ScattersWriteDataToTheRightAddresses)
{
    VectorCommand cmd;
    cmd.base = 3; // starts in this bank
    cmd.stride = 7;
    cmd.length = 32;
    cmd.isRead = false;
    cmd.txn = 2;

    std::vector<Word> line(32);
    for (unsigned i = 0; i < 32; ++i)
        line[i] = 0x9000 + i;

    bc.loadWriteLine(2, line);
    bc.observeVecCommand(0, cmd);
    run(0, 60);
    ASSERT_TRUE(bc.txnComplete(2));

    SubVector sv = subVectorWord(cmd, kBank, 4);
    for (std::uint32_t j = 0; j < sv.count; ++j) {
        std::uint32_t idx = sv.index(j);
        EXPECT_EQ(mem.read(cmd.element(idx)), 0x9000 + idx);
    }
    // Addresses of other banks' elements were not touched.
    for (std::uint32_t i = 0; i < 32; ++i) {
        if (geo.bankOf(cmd.element(i)) != kBank) {
            EXPECT_EQ(mem.read(cmd.element(i)),
                      SparseMemory::backgroundPattern(cmd.element(i)));
        }
    }
}

TEST_F(BcTest, ReleaseTxnFreesStaging)
{
    VectorCommand cmd;
    cmd.base = 3;
    cmd.stride = 16;
    cmd.length = 32;
    cmd.isRead = true;
    cmd.txn = 0;
    bc.observeVecCommand(0, cmd);
    run(0, 200);
    ASSERT_TRUE(bc.txnComplete(0));
    bc.releaseTxn(0);
    EXPECT_FALSE(bc.txnComplete(0)) << "inactive after release";
    // The id can be reused immediately.
    bc.observeVecCommand(200, cmd);
    run(200, 400);
    EXPECT_TRUE(bc.txnComplete(0));
}

TEST_F(BcTest, StrideMultipleOfMKeepsWholeVectorHere)
{
    // Bank 3 + stride 16: all 32 elements in this bank, delta = 1.
    VectorCommand cmd;
    cmd.base = 3;
    cmd.stride = 16;
    cmd.length = 32;
    cmd.isRead = true;
    cmd.txn = 4;
    bc.observeVecCommand(0, cmd);
    run(0, 200);
    ASSERT_TRUE(bc.txnComplete(4));
    std::vector<Word> line(32, 0);
    bc.collectInto(4, line);
    for (std::uint32_t i = 0; i < 32; ++i)
        EXPECT_EQ(line[i], SparseMemory::backgroundPattern(3 + 16 * i));
    EXPECT_EQ(bc.statElements.value(), 32u);
}

TEST_F(BcTest, IndirectModeSelectsByBankMask)
{
    VectorCommand cmd;
    cmd.mode = VectorCommand::Mode::Indirect;
    cmd.base = 1000;
    cmd.length = 8;
    cmd.isRead = true;
    cmd.txn = 6;
    // base 1000 = bank 8; element banks: (1000+idx) mod 16, so offsets
    // congruent to 11 mod 16 land in bank 3.
    cmd.indices = {11, 27, 4, 43, 7, 59, 75, 99};
    std::vector<std::uint32_t> mine;
    for (std::uint32_t i = 0; i < 8; ++i) {
        if ((1000 + cmd.indices[i]) % 16 == kBank)
            mine.push_back(i);
        mem.write(cmd.element(i), 0x700 + i);
    }
    ASSERT_FALSE(mine.empty()) << "test data must include bank 3 hits";

    bc.observeVecCommand(0, cmd);
    run(0, 60);
    ASSERT_TRUE(bc.txnComplete(6));
    std::vector<Word> line(8, 0xdead);
    bc.collectInto(6, line);
    for (std::uint32_t i = 0; i < 8; ++i) {
        if (std::find(mine.begin(), mine.end(), i) != mine.end())
            EXPECT_EQ(line[i], 0x700 + i);
        else
            EXPECT_EQ(line[i], 0xdeadu);
    }
}

TEST_F(BcTest, IdleReflectsOutstandingWork)
{
    EXPECT_TRUE(bc.idle());
    VectorCommand cmd;
    cmd.base = 3;
    cmd.stride = 1;
    cmd.length = 32;
    cmd.isRead = true;
    cmd.txn = 7;
    bc.observeVecCommand(0, cmd);
    EXPECT_FALSE(bc.idle());
    run(0, 100);
    EXPECT_TRUE(bc.idle());
}

/** Measure cycles from broadcast to the first device command. */
unsigned
firstOpLatency(std::uint32_t stride, bool bypass)
{
    Geometry geo(16, 1);
    SdramTiming timing;
    SparseMemory mem;
    SdramDevice dev("dev", 0, geo, timing, mem);
    BcConfig cfg;
    cfg.bypassEnabled = bypass;
    BankController bc("bc", 0, geo, cfg, dev);

    VectorCommand cmd;
    cmd.base = 0;
    cmd.stride = stride;
    cmd.length = 32;
    cmd.isRead = true;
    bc.observeVecCommand(10, cmd);
    for (Cycle t = 10; t < 60; ++t) {
        bc.tick(t);
        if (dev.statActivates.value() > 0)
            return static_cast<unsigned>(t - 10);
    }
    return 0;
}

TEST(BcLatency, PowerOfTwoStridesTakeTwoCycles)
{
    for (std::uint32_t s : {1u, 2u, 4u, 8u, 16u, 32u}) {
        EXPECT_EQ(firstOpLatency(s, false), 2u) << "S=" << s;
        EXPECT_EQ(firstOpLatency(s, true), 1u) << "bypassed, S=" << s;
    }
}

TEST(BcLatency, OtherStridesTakeAtMostFiveCycles)
{
    for (std::uint32_t s = 3; s <= 31; ++s) {
        if (isPowerOfTwo(s))
            continue;
        unsigned normal = firstOpLatency(s, false);
        unsigned bypassed = firstOpLatency(s, true);
        EXPECT_LE(normal, 5u) << "S=" << s;
        EXPECT_EQ(bypassed + 1, normal)
            << "the FHC->VC bypass saves one cycle, S=" << s;
    }
}

TEST_F(BcTest, FhcSerializesNonPowerOfTwoRequests)
{
    // Two non-power-of-two requests back to back: the second's address
    // calculation waits for the 2-cycle multiply-add of the first.
    VectorCommand a, b;
    a.base = 3;
    a.stride = 5;
    a.length = 32;
    a.isRead = true;
    a.txn = 0;
    b = a;
    b.base = 3 + 4096;
    b.txn = 1;
    bc.observeVecCommand(0, a);
    bc.observeVecCommand(0, b); // same broadcast cycle is impossible on
                                // the real bus, but exercises FHC queuing
    run(0, 120);
    EXPECT_TRUE(bc.txnComplete(0));
    EXPECT_TRUE(bc.txnComplete(1));
}

TEST_F(BcTest, TxnReuseThrows)
{
    VectorCommand cmd;
    cmd.base = 3;
    cmd.stride = 1;
    cmd.length = 32;
    cmd.isRead = true;
    cmd.txn = 0;
    bc.observeVecCommand(0, cmd);
    test::expectSimError([&] { bc.observeVecCommand(1, cmd); },
                         SimErrorKind::Protocol, "reused");
}

} // anonymous namespace
} // namespace pva
