/**
 * @file
 * Edge cases and error paths not covered by the per-module suites:
 * workload validation, sweep API, stats CSV/bucket-cap behaviour, and
 * the N>1 partition property of the logical-bank transform.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/firsthit.hh"
#include "expect_sim_error.hh"
#include "kernels/runner.hh"
#include "kernels/sweep.hh"
#include "sim/stats.hh"

namespace pva
{
namespace
{

TEST(WorkloadValidation, ElementCountMustBeLineMultiple)
{
    SparseMemory mem;
    WorkloadConfig cfg;
    cfg.stride = 1;
    cfg.elements = 100; // not a multiple of 32
    cfg.streamBases = {0, 100000};
    test::expectSimError(
        [&] { buildTrace(kernelSpec(KernelId::Copy), cfg, mem); },
        SimErrorKind::Config, "multiple");
}

TEST(WorkloadValidation, MissingStreamBasesIsFatal)
{
    SparseMemory mem;
    WorkloadConfig cfg;
    cfg.stride = 1;
    cfg.elements = 32;
    cfg.streamBases = {0}; // copy needs two streams
    test::expectSimError(
        [&] { buildTrace(kernelSpec(KernelId::Copy), cfg, mem); },
        SimErrorKind::Config, "stream bases");
}

TEST(SweepApi, RunPointHonoursConfig)
{
    // A 4-bank PVA must be slower than the 16-bank prototype at a
    // parallel stride (fewer banks to spread over).
    SweepRequest small;
    small.kernel = KernelId::Copy;
    small.stride = 19;
    small.elements = 256;
    small.config.geometry = Geometry(4, 1);
    SweepRequest proto = small;
    proto.config = SystemConfig{};
    SweepPoint a = runPoint(small);
    SweepPoint b = runPoint(proto);
    EXPECT_EQ(a.mismatches, 0u);
    EXPECT_EQ(b.mismatches, 0u);
    EXPECT_GT(a.cycles, b.cycles);
}

TEST(SweepApi, SystemNames)
{
    EXPECT_STREQ(systemName(SystemKind::PvaSdram), "PVA SDRAM");
    EXPECT_STREQ(systemName(SystemKind::CacheLine),
                 "cache-line serial SDRAM");
    EXPECT_STREQ(systemName(SystemKind::Gathering),
                 "gathering pipelined SDRAM");
    EXPECT_STREQ(systemName(SystemKind::PvaSram), "PVA SRAM");
}

TEST(Stats, CsvDump)
{
    Scalar a;
    a += 5;
    StatSet set;
    set.addScalar("x.y", &a);
    std::ostringstream os;
    set.dumpCsv(os);
    EXPECT_EQ(os.str(), "stat,value\nx.y,5\n");
}

TEST(Stats, DistributionTailCollapsesIntoLastBucket)
{
    Distribution d(1);
    d.sample(10);
    d.sample(1u << 20); // far beyond the 4096-bucket cap
    EXPECT_EQ(d.buckets().size(), 4096u);
    EXPECT_EQ(d.buckets().back(), 1u);
    EXPECT_EQ(d.maxValue(), 1u << 20);
}

TEST(LogicalBankTransform, PartitionHoldsUnderBlockInterleave)
{
    // Every vector index appears in exactly one physical bank's list
    // for N > 1 too.
    for (unsigned n : {2u, 4u, 8u}) {
        Geometry geo(8, n);
        for (std::uint32_t stride = 1; stride <= 24; ++stride) {
            VectorCommand v;
            v.base = 12345;
            v.stride = stride;
            v.length = 32;
            std::vector<unsigned> count(v.length, 0);
            for (unsigned b = 0; b < 8; ++b) {
                for (std::uint32_t idx : expandBankIndices(v, b, geo))
                    ++count[idx];
            }
            for (std::uint32_t i = 0; i < v.length; ++i)
                EXPECT_EQ(count[i], 1u)
                    << "N=" << n << " S=" << stride << " i=" << i;
        }
    }
}

TEST(RunnerApi, ReportsMismatchesOnCorruption)
{
    // Sanity-check that verifyTrace actually detects wrong data: build
    // a trace, run it, then corrupt one word.
    auto sys = makeSystem(SystemKind::PvaSdram);
    WorkloadConfig cfg;
    cfg.stride = 3;
    cfg.elements = 32;
    cfg.streamBases = {1000, 50000};
    KernelTrace trace =
        buildTrace(kernelSpec(KernelId::Copy), cfg, sys->memory());
    RunResult r = runTrace(*sys, trace);
    ASSERT_EQ(r.mismatches, 0u);
    sys->memory().write(trace.expectedWrites[5].first,
                        trace.expectedWrites[5].second + 1);
    EXPECT_EQ(verifyTrace(trace, sys->memory()), 1u);
}

} // anonymous namespace
} // namespace pva
