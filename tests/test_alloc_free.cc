/**
 * @file
 * Heap-allocation regression test for the saturated tick path.
 *
 * The hot-path engineering contract (docs/PERFORMANCE.md) is that the
 * steady-state tick loop performs no heap allocation: subcommand
 * FIFOs and vector-context queues live in capacity-preserving
 * RingDeques, staging lines come from the unit's line pool, and the
 * completion hand-off reuses drained buffers. This test replaces the
 * global operator new with a counting wrapper, warms a PVA system
 * with one full stride-16 run (pools, queues and latency histograms
 * grow to their steady-state capacity), then runs a second full
 * kernel on the same simulation clock and asserts the allocation
 * counter did not move between the start of the second run and its
 * last completion.
 *
 * The override counts every allocation in the whole test binary; the
 * other tests are unaffected beyond the one relaxed increment.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "kernels/command_unit.hh"
#include "kernels/runner.hh"
#include "kernels/sweep.hh"
#include "sim/simulation.hh"

namespace
{

std::atomic<std::uint64_t> allocCount{0};

} // anonymous namespace

void *
operator new(std::size_t n)
{
    allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace pva
{
namespace
{

TEST(AllocFree, SaturatedTickPathAllocatesNothingAfterWarmup)
{
    SystemConfig config;
    auto sys = makeSystem(SystemKind::PvaSdram, config);

    const KernelSpec &spec = kernelSpec(KernelId::Copy);
    WorkloadConfig wl;
    wl.stride = 16;
    wl.elements = 4096;
    wl.lineWords = config.bc.lineWords;
    wl.streamBases = streamBases(alignmentPresets()[0],
                                 spec.numStreams, 16, wl.elements);

    // One simulation clock for both passes: the device's resource
    // timers hold absolute cycles, so restarting the clock would give
    // the second pass artificial head-of-run waits (and larger
    // latency-histogram samples than warmup provisioned for).
    Simulation sim(ClockingMode::Event);
    sim.add(sys.get());

    // Warmup: one full run grows every pool, queue, scratch buffer
    // and stat histogram to its steady-state capacity.
    {
        KernelTrace warm = buildTrace(spec, wl, sys->memory());
        VectorCommandUnit vcu(*sys, warm);
        sim.runUntil([&] { return vcu.service(); }, 50000000);
        ASSERT_EQ(verifyTrace(warm, sys->memory()), 0u);
    }

    // Second pass, with construction — trace build, command unit —
    // outside the counted window. Only the clocked region must be
    // allocation-free.
    KernelTrace trace = buildTrace(spec, wl, sys->memory());
    VectorCommandUnit vcu(*sys, trace);

    std::uint64_t before = allocCount.load(std::memory_order_relaxed);
    sim.runUntil([&] { return vcu.service(); }, 50000000);
    std::uint64_t after = allocCount.load(std::memory_order_relaxed);

    EXPECT_EQ(after - before, 0u)
        << "the saturated tick path heap-allocated "
        << (after - before) << " times after warmup";
    EXPECT_EQ(verifyTrace(trace, sys->memory()), 0u);
}

} // anonymous namespace
} // namespace pva
