/**
 * @file
 * Traffic subsystem tests: arbiter policy behaviour, backpressure,
 * open-loop reproducibility, determinism across worker counts, and
 * composition with the fault-injection/retry harness.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "kernels/sweep_executor.hh"
#include "sim/sim_error.hh"
#include "traffic/traffic_runner.hh"

using namespace pva;

namespace
{

/** A small mixed-stride multi-stream config with disjoint regions. */
TrafficConfig
smallConfig(unsigned streams, ArrivalMode mode, std::uint64_t requests)
{
    TrafficConfig tc;
    for (unsigned i = 0; i < streams; ++i) {
        StreamConfig s;
        s.mode = mode;
        s.requests = requests;
        s.seed = 1 + i;
        s.pattern.regionWords = 1 << 16;
        s.pattern.regionBase = static_cast<WordAddr>(i) << 16;
        tc.streams.push_back(std::move(s));
    }
    return tc;
}

std::string
jsonOf(const TrafficResult &r)
{
    std::ostringstream os;
    r.dumpJson(os);
    return os.str();
}

} // anonymous namespace

TEST(TrafficStream, OpenLoopArrivalsAreBitReproduciblePerSeed)
{
    StreamConfig cfg;
    cfg.mode = ArrivalMode::OpenLoop;
    cfg.requests = 64;
    cfg.requestsPerKilocycle = 25.0;
    cfg.seed = 42;

    auto arrivals = [](const StreamConfig &c) {
        StreamSource src(c, 0, 32);
        std::vector<Cycle> out;
        Cycle now = 0;
        while (!src.exhausted()) {
            while (!src.arrivalReady(now))
                ++now;
            TrafficRequest r = src.emit(now);
            out.push_back(r.arrival);
            src.onComplete();
        }
        return out;
    };

    std::vector<Cycle> a = arrivals(cfg);
    std::vector<Cycle> b = arrivals(cfg);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]);

    StreamConfig other = cfg;
    other.seed = 43;
    EXPECT_NE(arrivals(other), a);
}

TEST(TrafficStream, CommandSequenceIsIndependentOfOfferedLoad)
{
    StreamConfig slow;
    slow.mode = ArrivalMode::OpenLoop;
    slow.requests = 32;
    slow.requestsPerKilocycle = 2.0;
    StreamConfig fast = slow;
    fast.requestsPerKilocycle = 200.0;

    auto commands = [](const StreamConfig &c) {
        StreamSource src(c, 0, 32);
        std::vector<std::pair<WordAddr, std::uint32_t>> out;
        Cycle now = 0;
        while (!src.exhausted()) {
            while (!src.arrivalReady(now))
                ++now;
            TrafficRequest r = src.emit(now);
            out.emplace_back(r.cmd.base, r.cmd.stride);
        }
        return out;
    };
    EXPECT_EQ(commands(slow), commands(fast));
}

TEST(TrafficStream, RejectsUnsupportableConfigs)
{
    StreamConfig cfg;
    cfg.pattern.minLength = 64; // > the 32-word line
    EXPECT_THROW(StreamSource(cfg, 0, 32), SimError);

    StreamConfig zero;
    zero.queueCapacity = 0;
    EXPECT_THROW(StreamSource(zero, 0, 32), SimError);

    StreamConfig rate;
    rate.mode = ArrivalMode::OpenLoop;
    rate.requestsPerKilocycle = 0.0;
    EXPECT_THROW(StreamSource(rate, 0, 32), SimError);
}

TEST(TrafficArbiter, AllPoliciesDrainEveryStream)
{
    for (ArbPolicy policy :
         {ArbPolicy::Fifo, ArbPolicy::RoundRobin, ArbPolicy::Priority}) {
        TrafficConfig tc = smallConfig(3, ArrivalMode::ClosedLoop, 40);
        tc.arbiter.policy = policy;
        TrafficResult r = runTraffic(tc);
        EXPECT_EQ(r.completed, 3u * 40u) << arbPolicyName(policy);
        ASSERT_EQ(r.streams.size(), 3u);
        for (const StreamResult &s : r.streams)
            EXPECT_EQ(s.completed, 40u) << arbPolicyName(policy);
    }
}

TEST(TrafficArbiter, PolicyRunsAreDeterministic)
{
    for (ArbPolicy policy :
         {ArbPolicy::Fifo, ArbPolicy::RoundRobin, ArbPolicy::Priority}) {
        TrafficConfig tc = smallConfig(2, ArrivalMode::OpenLoop, 48);
        for (StreamConfig &s : tc.streams)
            s.requestsPerKilocycle = 40.0;
        tc.arbiter.policy = policy;
        EXPECT_EQ(jsonOf(runTraffic(tc)), jsonOf(runTraffic(tc)))
            << arbPolicyName(policy);
    }
}

TEST(TrafficArbiter, AgingBoundsLowPriorityQueueDelay)
{
    // One low-priority stream competing with a high-priority stream
    // under heavy open-loop load. Without the aging guard the
    // low-priority queue only drains behind the whole high-priority
    // stream; with it, every head request is served within a bounded
    // wait of the threshold.
    auto lowPriorityMaxDelay = [](Cycle aging) {
        TrafficConfig tc = smallConfig(2, ArrivalMode::OpenLoop, 150);
        for (StreamConfig &s : tc.streams) {
            s.requestsPerKilocycle = 60.0;
            s.queueCapacity = 8;
        }
        tc.streams[1].priority = 10;
        tc.arbiter.policy = ArbPolicy::Priority;
        tc.arbiter.agingThreshold = aging;
        TrafficResult r = runTraffic(tc);
        EXPECT_EQ(r.streams[0].completed, 150u);
        return r.streams[0].queueDelay.max;
    };

    std::uint64_t guarded = lowPriorityMaxDelay(512);
    std::uint64_t unguarded = lowPriorityMaxDelay(1u << 30);
    EXPECT_LT(guarded, unguarded);
    // The head waits at most the threshold plus the time to drain the
    // previously aged cohort (one bounded queue's worth of service).
    EXPECT_LT(guarded, 512u + 4096u);
}

TEST(TrafficArbiter, BackpressureBoundsQueuesWithoutLosingRequests)
{
    TrafficConfig tc = smallConfig(2, ArrivalMode::OpenLoop, 120);
    for (StreamConfig &s : tc.streams) {
        s.requestsPerKilocycle = 200.0; // far past saturation
        s.queueCapacity = 4;
    }
    TrafficResult r = runTraffic(tc);
    EXPECT_EQ(r.completed, 2u * 120u);
    std::uint64_t deferrals = 0;
    for (const StreamResult &s : r.streams) {
        EXPECT_EQ(s.completed, 120u);
        EXPECT_LE(s.queuePeak, 4u);
        deferrals += s.deferrals;
    }
    EXPECT_GT(deferrals, 0u);
    // Deferred arrivals keep their stamps, so the backlog is visible
    // as queueing delay.
    EXPECT_GT(r.queueDelay.max, 0u);
}

TEST(TrafficRunner, ResultsAreIdenticalAcrossWorkerCounts)
{
    LoadSweepConfig sc;
    sc.base = smallConfig(2, ArrivalMode::OpenLoop, 40);
    sc.offeredLoads = {10.0, 40.0};
    sc.systems = {SystemKind::PvaSdram, SystemKind::Gathering};

    auto csvWithJobs = [&](unsigned jobs) {
        LoadSweepConfig c = sc;
        c.jobs = jobs;
        std::ostringstream os;
        writeLoadCsv(os, runLoadSweep(c));
        return os.str();
    };
    std::string serial = csvWithJobs(1);
    EXPECT_EQ(serial, csvWithJobs(4));
    EXPECT_NE(serial.find("pva,"), std::string::npos);
    EXPECT_NE(serial.find("gathering,"), std::string::npos);
}

TEST(TrafficRunner, AchievedThroughputIsMonotoneInOfferedLoad)
{
    LoadSweepConfig sc;
    sc.base = smallConfig(2, ArrivalMode::OpenLoop, 64);
    sc.offeredLoads = {5.0, 20.0, 80.0};
    sc.systems = {SystemKind::PvaSdram};
    std::vector<LoadPoint> points = runLoadSweep(sc);
    ASSERT_EQ(points.size(), 3u);
    for (std::size_t i = 1; i < points.size(); ++i) {
        ASSERT_FALSE(points[i].failed);
        EXPECT_GE(points[i].result.requestsPerKilocycle,
                  points[i - 1].result.requestsPerKilocycle * 0.999);
        EXPECT_GE(points[i].result.totalLatency.p99,
                  points[i - 1].result.totalLatency.p99);
    }
}

TEST(TrafficFaults, FaultedRunsAreReproduciblePerSeed)
{
    TrafficConfig tc = smallConfig(2, ArrivalMode::OpenLoop, 48);
    for (StreamConfig &s : tc.streams)
        s.requestsPerKilocycle = 40.0;
    tc.config.faults.bcStallRate = 0.02;
    tc.config.faults.refreshStallRate = 0.001;
    tc.config.faults.seed = 7;

    std::string first = jsonOf(runTraffic(tc));
    EXPECT_EQ(first, jsonOf(runTraffic(tc)));

    TrafficConfig other = tc;
    other.config.faults.seed = 8;
    EXPECT_NE(jsonOf(runTraffic(other)), first);
}

TEST(TrafficFaults, RetriedPointsProduceIdenticalServiceStats)
{
    // A transient harness failure (not a simulation fault) must not
    // change the retried point's results: the rerun sees the same
    // seeds, so its ServiceStats are byte-identical to an undisturbed
    // run.
    TrafficConfig tc = smallConfig(2, ArrivalMode::OpenLoop, 32);
    for (StreamConfig &s : tc.streams)
        s.requestsPerKilocycle = 30.0;

    std::string undisturbed = jsonOf(runTraffic(tc));

    SweepExecutor executor(2);
    executor.setMaxAttempts(3);
    std::vector<std::string> results(2);
    TaskReport report = executor.runTasks(
        2, [&](std::size_t i, unsigned attempt) {
            if (i == 1 && attempt == 0)
                throw SimError(SimErrorKind::Overflow, "test", 0,
                               "injected transient failure");
            results[i] = jsonOf(runTraffic(tc));
        });
    EXPECT_TRUE(report.allOk());
    EXPECT_EQ(report.retried, 1u);
    EXPECT_EQ(results[0], undisturbed);
    EXPECT_EQ(results[1], undisturbed);
}
