/**
 * @file
 * FirstHit PLA tests: both organizations agree with each other and with
 * the analytic algorithm, delta lookups match theorem 4.4, and the
 * product-term counts scale as section 4.3.1 claims.
 */

#include <gtest/gtest.h>

#include "core/pla.hh"

namespace pva
{
namespace
{

class PlaVariants : public ::testing::TestWithParam<unsigned>
{
  protected:
    unsigned m() const { return GetParam(); }
};

TEST_P(PlaVariants, BothOrganizationsMatchTheAnalyticFirstHit)
{
    const unsigned m = this->m();
    const std::uint32_t M = 1u << m;
    FirstHitPla full(m, FirstHitPla::Variant::FullKi);
    FirstHitPla k1(m, FirstHitPla::Variant::K1Multiply);

    for (std::uint32_t stride = 1; stride <= 2 * M; ++stride) {
        for (std::uint32_t base = 0; base < M; ++base) {
            VectorCommand v;
            v.base = base;
            v.stride = stride;
            v.length = 32;
            for (unsigned bank = 0; bank < M; ++bank) {
                std::uint32_t d = (bank + M - base) & (M - 1);
                FirstHit expect = firstHitWord(v, bank, m);
                EXPECT_EQ(full.lookup(stride & (M - 1), d, 32), expect)
                    << "FullKi m=" << m << " S=" << stride << " B="
                    << base << " bank=" << bank;
                EXPECT_EQ(k1.lookup(stride & (M - 1), d, 32), expect)
                    << "K1 m=" << m << " S=" << stride << " B=" << base
                    << " bank=" << bank;
            }
        }
    }
}

TEST_P(PlaVariants, DeltaMatchesTheorem44)
{
    const unsigned m = this->m();
    const std::uint32_t M = 1u << m;
    FirstHitPla pla(m, FirstHitPla::Variant::K1Multiply);
    for (std::uint32_t sm = 0; sm < M; ++sm)
        EXPECT_EQ(pla.delta(sm), nextHitWord(sm, m)) << "sm=" << sm;
}

INSTANTIATE_TEST_SUITE_P(BankCounts, PlaVariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Pla, LengthGatesTheHit)
{
    FirstHitPla pla(4, FirstHitPla::Variant::FullKi);
    // Stride 3 (odd): bank at distance d first hit at Ki = K1*d mod 16.
    // Find a d whose Ki is large and check the length cutoff.
    std::uint32_t k1 = computeK1(3, 4);
    for (std::uint32_t d = 1; d < 16; ++d) {
        std::uint32_t ki = (k1 * d) % 16;
        FirstHit fh = pla.lookup(3, d, ki); // length == ki: just too short
        EXPECT_FALSE(fh.hit) << "d=" << d;
        fh = pla.lookup(3, d, ki + 1);
        EXPECT_TRUE(fh.hit);
        EXPECT_EQ(fh.index, ki);
    }
}

TEST(Pla, ZeroLengthNeverHits)
{
    FirstHitPla pla(4, FirstHitPla::Variant::FullKi);
    EXPECT_FALSE(pla.lookup(1, 0, 0).hit);
}

TEST(Pla, TableSizes)
{
    FirstHitPla full(4, FirstHitPla::Variant::FullKi);
    FirstHitPla k1(4, FirstHitPla::Variant::K1Multiply);
    EXPECT_EQ(full.tableEntries(), 256u); // M^2
    EXPECT_EQ(k1.tableEntries(), 16u);    // M
}

TEST(Pla, ProductTermScaling)
{
    // Section 4.3.1: FullKi quadratic, K1Multiply linear.
    std::size_t prev_full = 0, prev_k1 = 0;
    for (unsigned m = 3; m <= 7; ++m) {
        FirstHitPla full(m, FirstHitPla::Variant::FullKi);
        FirstHitPla k1(m, FirstHitPla::Variant::K1Multiply);
        if (prev_full) {
            double growth = static_cast<double>(full.productTerms()) /
                            prev_full;
            EXPECT_NEAR(growth, 4.0, 0.15) << "m=" << m;
            EXPECT_EQ(k1.productTerms(), 2 * prev_k1);
        }
        prev_full = full.productTerms();
        prev_k1 = k1.productTerms();
    }
}

TEST(PlaDeath, OutOfRangeLookupPanics)
{
    FirstHitPla pla(4, FirstHitPla::Variant::FullKi);
    EXPECT_DEATH(pla.lookup(16, 0, 32), "out of range");
    EXPECT_DEATH(pla.lookup(0, 16, 32), "out of range");
    EXPECT_DEATH(pla.delta(99), "out of range");
}

} // anonymous namespace
} // namespace pva
