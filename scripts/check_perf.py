#!/usr/bin/env python3
"""Compare a bench_perf run against the committed baseline.

Usage: check_perf.py CURRENT.json BASELINE.json [--tolerance PCT]

Both files are bench_perf --out records (schemaVersion 1; see
docs/PERFORMANCE.md). For every scenario in the baseline, the current
cyclesPerSecond must be no more than --tolerance percent (default 15)
below the baseline value; being faster never fails.

Exit status is structured so CI steps can tell a real regression from
a broken input without parsing output (and the script never exits on a
traceback):

  0  gate passed
  1  performance regression (or missing/invalid scenario values)
  2  usage error (bad command line; argparse)
  3  missing or unreadable input file, or invalid JSON
  4  schemaVersion mismatch
  5  no scenarios in a record
"""

import argparse
import json
import sys

EXPECTED_SCHEMA = 1

EXIT_REGRESSION = 1
EXIT_BAD_FILE = 3
EXIT_BAD_SCHEMA = 4
EXIT_NO_SCENARIOS = 5


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            record = json.load(f)
    except OSError as e:
        print(f"{path}: cannot read: {e.strerror or e}", file=sys.stderr)
        sys.exit(EXIT_BAD_FILE)
    except json.JSONDecodeError as e:
        print(f"{path}: invalid JSON: {e}", file=sys.stderr)
        sys.exit(EXIT_BAD_FILE)
    if not isinstance(record, dict):
        print(f"{path}: expected a JSON object", file=sys.stderr)
        sys.exit(EXIT_BAD_FILE)
    schema = record.get("schemaVersion")
    if schema != EXPECTED_SCHEMA:
        print(f"{path}: schemaVersion {schema!r}, "
              f"expected {EXPECTED_SCHEMA}", file=sys.stderr)
        sys.exit(EXIT_BAD_SCHEMA)
    scenarios = record.get("scenarios")
    if not isinstance(scenarios, dict) or not scenarios:
        print(f"{path}: no scenarios", file=sys.stderr)
        sys.exit(EXIT_NO_SCENARIOS)
    return scenarios


def cycles_per_second(scenario):
    value = scenario.get("cyclesPerSecond", 0)
    return value if isinstance(value, (int, float)) else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="bench_perf --out of this build")
    parser.add_argument("baseline", help="committed baseline record")
    parser.add_argument("--tolerance", type=float, default=15.0,
                        metavar="PCT",
                        help="max allowed slowdown in percent "
                             "(default %(default)s)")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failed = False
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"FAIL {name}: missing from {args.current}")
            failed = True
            continue
        base_cps = cycles_per_second(base)
        cur_cps = cycles_per_second(current[name])
        if base_cps <= 0 or cur_cps <= 0:
            print(f"FAIL {name}: non-positive cyclesPerSecond "
                  f"(baseline {base_cps}, current {cur_cps})")
            failed = True
            continue
        delta = 100.0 * (cur_cps - base_cps) / base_cps
        floor = base_cps * (1.0 - args.tolerance / 100.0)
        verdict = "FAIL" if cur_cps < floor else "ok"
        print(f"{verdict:4} {name}: {cur_cps:,.0f} cycles/s vs "
              f"baseline {base_cps:,.0f} ({delta:+.1f}%, "
              f"floor -{args.tolerance:g}%)")
        if cur_cps < floor:
            failed = True

    extra = sorted(set(current) - set(baseline))
    if extra:
        print(f"note: scenarios not in baseline (unchecked): "
              f"{', '.join(extra)}")

    if failed:
        print("perf regression gate FAILED — if the slowdown is "
              "intended, refresh the baseline (docs/PERFORMANCE.md)")
        return EXIT_REGRESSION
    print("perf regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
