/**
 * @file
 * Independent SDRAM protocol and data-integrity checker.
 *
 * The bank controllers already consult a restimer scoreboard
 * (SdramDevice::canIssue) before issuing, but nothing verified that the
 * scoreboard itself is right. The TimingChecker is a redundant observer
 * with its own timing state: every command a device commits is replayed
 * against a second implementation of the tRCD / tCL / tRP / tRAS / tRC
 * / tWR / refresh / data-bus-turnaround rules, and any disagreement is
 * reported as a SimError(Protocol) with component and cycle context
 * instead of silently trusting the scheduler.
 *
 * The checker also keeps a shadow model of every in-flight transaction:
 * the address and data of each word a device actually read or wrote is
 * recorded per (transaction, line slot), and when the front end
 * completes a gather (or scatter) the staged line is verified slot by
 * slot — every element present, gathered from the address the vector
 * command names, carrying the device's data. Dropped staging transfers
 * and corrupted FirstHit results (see sim/fault.hh) surface here as
 * SimError(Corruption) rather than as a silently wrong line.
 *
 * One checker instance serves a whole PvaUnit (all banks); devices and
 * the front end feed it through the hooks below. All hooks are called
 * from the single simulation thread of one system instance.
 */

#ifndef PVA_SDRAM_TIMING_CHECKER_HH
#define PVA_SDRAM_TIMING_CHECKER_HH

#include <string>
#include <vector>

#include "core/vector_command.hh"
#include "sdram/device.hh"
#include "sdram/geometry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace pva
{

/** Redundant protocol verifier and per-transaction shadow model. */
class TimingChecker
{
  public:
    /** Sentinel for onRefresh's @p covered: infer coverage from the
     *  cycle (the legacy rule), for callers predating backends. */
    static constexpr Cycle kInferCovered = kNeverCycle;

    /** @p policy selects the per-backend rule set (subarray-scoped
     *  row-cycle rules for SALP, debt-window refresh audit for
     *  DeferredRefresh); the default is the legacy part. */
    TimingChecker(const Geometry &geo, const SdramTiming &timing,
                  unsigned banks, unsigned transactions,
                  unsigned line_words,
                  const BackendPolicy &policy = BackendPolicy{});

    /** @name Timing layer (SDRAM devices only)
     * Called by SdramDevice as it commits commands; throws
     * SimError(Protocol) on any rule violation. @{ */
    void onCommand(const std::string &device, unsigned bank,
                   const DeviceOp &op, Cycle now);
    /** A refresh closed every row slot of @p bank and holds the device
     *  busy until @p busy_until. @p covered names the tREFI boundary
     *  this refresh satisfies: 0 for an injected refresh (satisfies
     *  none), kInferCovered to infer legacy-style from the cycle. On a
     *  DeferredRefresh backend, coverage must be in order and within
     *  the policy window of the boundary, or SimError(Protocol). */
    void onRefresh(unsigned bank, Cycle now, Cycle busy_until,
                   Cycle covered = kInferCovered);
    /** @} */

    /** @name Data shadow layer (all devices)
     * Record the words devices actually transfer. @{ */
    void onReadData(unsigned bank, const DeviceOp &op, Word data);
    void onWriteData(unsigned bank, const DeviceOp &op);
    /** @} */

    /** @name Transaction verification (front end)
     * beginTxn() arms the shadow slots when a command is broadcast;
     * verifyGather()/verifyScatter() audit the completed line and throw
     * SimError(Corruption) on any divergence. @{ */
    void beginTxn(const VectorCommand &cmd);
    void verifyGather(const VectorCommand &cmd,
                      const std::vector<Word> &line, Cycle now);
    void verifyScatter(const VectorCommand &cmd,
                       const std::vector<Word> &data, Cycle now);
    void releaseTxn(std::uint8_t txn);
    /** @} */

    /** @name Statistics @{ */
    Scalar statCommands; ///< Device commands verified
    Scalar statGathers;  ///< Read lines audited
    Scalar statScatters; ///< Write lines audited
    /** @} */

    void registerStats(StatSet &set, const std::string &prefix) const;

  private:
    /** Shadow timing state of one row slot (internal bank on legacy
     *  backends, (internal bank, subarray) on SALP). */
    struct IBankState
    {
        bool open = false;
        std::uint32_t row = 0;
        Cycle activateAt = 0;       ///< Command cycle of the last activate
        bool everActivated = false;
        Cycle prechargeStartAt = 0; ///< When the last precharge began
        bool everPrecharged = false;
        Cycle writeDataAt = 0;      ///< Last write's data-pin cycle
        bool everWritten = false;
    };

    /** Shadow timing state of one external bank device. */
    struct DeviceState
    {
        std::vector<IBankState> ibanks; ///< Indexed by row slot
        Cycle lastCommandAt = kNeverCycle; ///< One command bus per device
        Cycle lastDataAt = 0;              ///< Data pin occupancy
        bool lastDataWasRead = true;
        bool anyDataYet = false;
        Cycle refreshBusyUntil = 0;
        /** Latest tREFI boundary a scheduled refresh has covered.
         *  Audits event clocking: every boundary inside a skipped
         *  span must still have produced its onRefresh before the
         *  next command (the device catch-up runs at tick start). */
        Cycle refreshSeenThrough = 0;
    };

    /** What a device transferred for one (transaction, slot). */
    struct SlotRecord
    {
        bool seen = false;
        WordAddr addr = 0;
        Word data = 0;
    };

    [[noreturn]] void violation(const std::string &device, Cycle now,
                                const std::string &detail) const;

    SlotRecord &slotOf(unsigned bank, const DeviceOp &op);

    const Geometry &geometry;
    SdramTiming times;
    BackendPolicy pol;
    std::vector<DeviceState> devs;
    std::vector<std::vector<SlotRecord>> txnSlots; ///< [txn][slot]
};

} // namespace pva

#endif // PVA_SDRAM_TIMING_CHECKER_HH
