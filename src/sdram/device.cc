#include "sdram/device.hh"

#include "sdram/timing_checker.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/trace.hh"

namespace pva
{

SdramDevice::SdramDevice(std::string name, unsigned bank_index,
                         const Geometry &geo, const SdramTiming &timing,
                         SparseMemory &backing,
                         const BackendPolicy &policy)
    : BankDevice(std::move(name), bank_index, geo, backing), times(timing)
{
    pol = policy;
    const unsigned slots = pol.slotCount(geo.internalBanks());
    accessReady.assign(slots, 0);
    prechargeReady.assign(slots, 0);
    activateReady.assign(slots, 0);
    openRows.assign(slots, 0);
    lastOpenedRows.assign(slots, 0);
    rowOpen.assign(slots, 0);
    everOpened.assign(slots, 0);
    freshActivate.assign(slots, 0);
}

Cycle
SdramDevice::dataCycleOf(const DeviceOp &op, Cycle now) const
{
    // Read data appears after the CAS latency; write data is driven on
    // the cycle after the command (the controller owns the pins then).
    return op.kind == DeviceOp::Kind::Read ? now + times.tCL : now + 1;
}

void
SdramDevice::applyRefresh(Cycle now, Cycle covered)
{
    PVA_TRACE_BLOCK(
        // Only a refresh starting from idle opens a span; an overlap
        // extension would nest B/E pairs on the track.
        if (refreshBusyUntil <= now) {
            PVA_TRACE_BEGIN(traceTrack(), now, "refresh");
            PVA_TRACE_END(traceTrack(), now + times.tRFC, "refresh");
        });
    refreshBusyUntil = std::max(refreshBusyUntil, now + times.tRFC);
    for (std::size_t b = 0; b < rowOpen.size(); ++b) {
        rowOpen[b] = 0;
        activateReady[b] = std::max(activateReady[b], refreshBusyUntil);
    }
    if (checker)
        checker->onRefresh(bankIndex, now, refreshBusyUntil, covered);
}

void
SdramDevice::tickRefresh(Cycle now)
{
    if (injector && injector->refreshStall()) {
        ++statInjectedRefreshes;
        applyRefresh(now, 0);
    }
    if (times.tREFI == 0)
        return;
    if (pol.kind == MemBackend::DeferredRefresh) {
        tickRefreshDeferred(now);
        return;
    }
    // Catch up on every boundary reached so far, in order. The event
    // stepper only skips spans where this bank controller is idle, so
    // a multi-boundary catch-up happens with no row open and no access
    // pending; applying each refresh at its boundary cycle reproduces
    // the exhaustive stepper's state and refresh count exactly.
    Cycle latest = (now / times.tREFI) * times.tREFI;
    while (lastRefreshApplied < latest) {
        Cycle boundary = lastRefreshApplied + times.tREFI;
        lastRefreshApplied = boundary;
        ++statRefreshes;
        applyRefresh(boundary, boundary);
    }
}

void
SdramDevice::tickRefreshDeferred(Cycle now)
{
    // Push-out: an overdue boundary waits while work is in flight, up
    // to deferWindow cycles past its due time, then is forced. Applied
    // in order; stacked overdue refreshes coalesce at the same cycle
    // (applyRefresh only extends the busy period monotonically), which
    // bounds the debt at ceil(window / tREFI) + 1 boundaries.
    Cycle due = lastRefreshApplied + times.tREFI;
    while (due <= now) {
        if (now < due + pol.deferWindow && busyForRefresh())
            return; // defer; later boundaries wait in order too
        lastRefreshApplied = due;
        ++statRefreshes;
        if (now > due)
            ++statDeferredRefreshes;
        applyRefresh(now, due);
        due += times.tREFI;
    }
    // Pull-in: while fully idle, take the next boundary early (at most
    // deferWindow ahead) so future work finds the debt already paid.
    if (due - now <= pol.deferWindow && refreshBusyUntil <= now &&
        !busyForRefresh()) {
        lastRefreshApplied = due;
        ++statRefreshes;
        ++statAdvancedRefreshes;
        applyRefresh(now, due);
    }
}

Cycle
SdramDevice::nextTimingEventAfter(Cycle now) const
{
    Cycle wake = kNeverCycle;
    auto consider = [&](Cycle c) {
        if (c > now && c < wake)
            wake = c;
    };

    if (!pending.empty()) {
        Cycle ready = pending.front().readyAt;
        consider(ready > now ? ready : now + 1);
    }
    if (lastCommandCycle != kNeverCycle)
        consider(lastCommandCycle + 1); // command bus frees
    consider(refreshBusyUntil);
    for (std::size_t b = 0; b < accessReady.size(); ++b) {
        consider(accessReady[b]);
        consider(prechargeReady[b]);
        consider(activateReady[b]);
    }
    if (anyDataYet) {
        // First cycles at which the data-pin occupancy / turnaround
        // rules admit a new read (data at now + tCL) or write (data at
        // now + 1): same polarity needs data > lastDataCycle, a
        // reversal needs data >= lastDataCycle + 2.
        for (Cycle base : {lastDataCycle + 1, lastDataCycle + 2}) {
            if (base > times.tCL)
                consider(base - times.tCL); // read thresholds
            consider(base - 1);             // write thresholds
        }
    }
    if (times.tREFI != 0) {
        if (pol.kind == MemBackend::DeferredRefresh) {
            // Wake at the pull-in opportunity, the boundary itself and
            // the forced deadline of the next uncovered boundary; a
            // busy-device wake at any of them is a harmless no-op tick.
            Cycle due = lastRefreshApplied + times.tREFI;
            if (due > pol.deferWindow)
                consider(due - pol.deferWindow);
            consider(due);
            consider(due + pol.deferWindow);
        } else {
            consider((now / times.tREFI + 1) * times.tREFI);
        }
    }
    return wake;
}

void
SdramDevice::enableFaults(const FaultPlan &plan, std::uint64_t stream)
{
    injector = std::make_unique<FaultInjector>(plan, stream);
}

bool
SdramDevice::canIssue(const DeviceOp &op, Cycle now) const
{
    if (lastCommandCycle != kNeverCycle && now <= lastCommandCycle)
        return false; // one command per cycle on the command bus
    if (now < refreshBusyUntil)
        return false; // mid-refresh: the whole device is unavailable

    switch (op.kind) {
      case DeviceOp::Kind::Activate: {
        DeviceCoords c = geometry.decompose(op.addr);
        const unsigned s = slotIndex(c.internalBank, c.row);
        return rowOpen[s] == 0 && now >= activateReady[s];
      }
      case DeviceOp::Kind::Precharge: {
        const unsigned s = (op.internalBank << pol.subBits) | op.subarray;
        return rowOpen[s] != 0 && now >= prechargeReady[s];
      }
      case DeviceOp::Kind::Read:
      case DeviceOp::Kind::Write: {
        DeviceCoords c = geometry.decompose(op.addr);
        const unsigned ib = slotIndex(c.internalBank, c.row);
        if (rowOpen[ib] == 0 || openRows[ib] != c.row ||
            now < accessReady[ib]) {
            return false;
        }
        // With auto-precharge the device delays the internal precharge
        // until tRAS/tWR allow, so no extra condition here.
        Cycle data = dataCycleOf(op, now);
        if (anyDataYet) {
            bool is_read = op.kind == DeviceOp::Kind::Read;
            // One word per pin-cycle, monotonically increasing.
            if (data <= lastDataCycle)
                return false;
            // One-cycle turnaround on polarity reversal (section 5.2.5).
            if (is_read != lastDataWasRead && data < lastDataCycle + 2)
                return false;
        }
        return true;
      }
    }
    return false;
}

void
SdramDevice::issue(const DeviceOp &op, Cycle now)
{
    if (!canIssue(op, now)) {
        throw SimError(SimErrorKind::Protocol, name(), now,
                       csprintf("illegal command kind %d issued (restimer "
                                "scoreboard disagreement)",
                                static_cast<int>(op.kind)));
    }
    if (checker)
        checker->onCommand(name(), bankIndex, op, now);
    lastCommandCycle = now;

    switch (op.kind) {
      case DeviceOp::Kind::Activate: {
        DeviceCoords c = geometry.decompose(op.addr);
        const unsigned ib = slotIndex(c.internalBank, c.row);
        rowOpen[ib] = 1;
        openRows[ib] = c.row;
        lastOpenedRows[ib] = c.row;
        everOpened[ib] = 1;
        freshActivate[ib] = 1;
        accessReady[ib] = now + times.tRCD;
        prechargeReady[ib] = now + times.tRAS;
        activateReady[ib] = now + times.tRC;
        ++statActivates;
        PVA_TRACE_INSTANT(traceTrack(), now, "activate", "ibank",
                          c.internalBank, "row", c.row);
        break;
      }
      case DeviceOp::Kind::Precharge: {
        const unsigned ib = (op.internalBank << pol.subBits) | op.subarray;
        rowOpen[ib] = 0;
        activateReady[ib] = std::max(activateReady[ib], now + times.tRP);
        ++statPrecharges;
        PVA_TRACE_INSTANT(traceTrack(), now, "precharge", "ibank",
                          op.internalBank);
        break;
      }
      case DeviceOp::Kind::Read:
      case DeviceOp::Kind::Write: {
        DeviceCoords c = geometry.decompose(op.addr);
        const unsigned ib = slotIndex(c.internalBank, c.row);
        bool is_read = op.kind == DeviceOp::Kind::Read;
        Cycle data = dataCycleOf(op, now);
        PVA_TRACE_BLOCK(
            if (anyDataYet && is_read != lastDataWasRead)
                PVA_TRACE_INSTANT(traceTrack(), now, "turnaround");
            PVA_TRACE_INSTANT(traceTrack(), now,
                              is_read ? "cas_read" : "cas_write",
                              "txn", op.txn, "data", data););
        lastDataCycle = data;
        lastDataWasRead = is_read;
        anyDataYet = true;

        if (!freshActivate[ib])
            ++statRowHitAccesses;
        freshActivate[ib] = 0;

        if (is_read) {
            ++statReads;
            Word value = memory.read(op.addr);
            if (checker)
                checker->onReadData(bankIndex, op, value);
            ReadReturn &rr = pending.pushBack();
            rr.readyAt = data;
            rr.data = value;
            rr.txn = op.txn;
            rr.slot = op.slot;
        } else {
            ++statWrites;
            memory.write(op.addr, op.writeData);
            if (checker)
                checker->onWriteData(bankIndex, op);
            prechargeReady[ib] =
                std::max(prechargeReady[ib], data + times.tWR);
        }

        if (op.autoPrecharge) {
            // The device performs the precharge internally once tRAS and
            // tWR are satisfied; from the controller's view the row is
            // closed now and a new activate is legal tRP after that.
            Cycle internal_start =
                std::max(prechargeReady[ib],
                         is_read ? now + 1 : data + times.tWR);
            rowOpen[ib] = 0;
            activateReady[ib] =
                std::max(activateReady[ib], internal_start + times.tRP);
            ++statPrecharges;
            PVA_TRACE_INSTANT(traceTrack(), now, "auto_precharge",
                              "ibank", c.internalBank);
        }
        break;
      }
    }
}

void
SdramDevice::throwClosedRowQuery(unsigned ibank) const
{
    throw SimError(SimErrorKind::Protocol, name(), kNeverCycle,
                   csprintf("openRow queried on closed internal bank %u",
                            ibank));
}

void
SdramDevice::registerStats(StatSet &set, const std::string &prefix) const
{
    set.addScalar(prefix + ".activates", &statActivates);
    set.addScalar(prefix + ".precharges", &statPrecharges);
    set.addScalar(prefix + ".reads", &statReads);
    set.addScalar(prefix + ".writes", &statWrites);
    set.addScalar(prefix + ".rowHitAccesses", &statRowHitAccesses);
    set.addScalar(prefix + ".refreshes", &statRefreshes);
    set.addScalar(prefix + ".injectedRefreshes", &statInjectedRefreshes);
    set.addScalar(prefix + ".deferredRefreshes", &statDeferredRefreshes);
    set.addScalar(prefix + ".advancedRefreshes", &statAdvancedRefreshes);
}

} // namespace pva
