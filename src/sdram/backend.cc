#include "sdram/backend.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

const char *
backendName(MemBackend kind)
{
    switch (kind) {
      case MemBackend::Legacy:
        return "legacy";
      case MemBackend::Salp:
        return "salp";
      case MemBackend::DeferredRefresh:
        return "deferred";
    }
    return "?";
}

bool
parseMemBackend(const std::string &text, MemBackend &out)
{
    for (MemBackend k : allBackends()) {
        if (text == backendName(k)) {
            out = k;
            return true;
        }
    }
    return false;
}

const std::vector<MemBackend> &
allBackends()
{
    static const std::vector<MemBackend> all = {
        MemBackend::Legacy,
        MemBackend::Salp,
        MemBackend::DeferredRefresh,
    };
    return all;
}

BackendPolicy
resolveBackendPolicy(MemBackend kind, unsigned row_bits, unsigned t_refi,
                     unsigned t_rfc, unsigned salp_subarrays,
                     unsigned defer_window)
{
    auto reject = [](const std::string &detail) {
        throw SimError(SimErrorKind::Config, "config.backend", kNeverCycle,
                       detail);
    };

    BackendPolicy pol;
    pol.kind = kind;
    switch (kind) {
      case MemBackend::Legacy:
        break;
      case MemBackend::Salp: {
        unsigned n = salp_subarrays;
        if (n < 2 || (n & (n - 1)) != 0) {
            reject(csprintf("salpSubarrays %u must be a power of two "
                            ">= 2", n));
        }
        unsigned bits = 0;
        while ((1u << bits) < n)
            ++bits;
        if (bits >= row_bits) {
            reject(csprintf("salpSubarrays %u needs %u row bits but the "
                            "geometry has only %u", n, bits, row_bits));
        }
        pol.subBits = bits;
        pol.subShift = row_bits - bits;
        break;
      }
      case MemBackend::DeferredRefresh: {
        if (t_refi == 0) {
            reject("backend deferred requires tREFI refresh (pass "
                   "--refresh)");
        }
        if (t_refi < t_rfc) {
            reject(csprintf("backend deferred requires tREFI %u >= tRFC "
                            "%u (refresh debt could never drain)",
                            t_refi, t_rfc));
        }
        Cycle window = defer_window == 0 ? t_refi / 2 : defer_window;
        if (window == 0 || window > 4ull * t_refi) {
            reject(csprintf("refreshDeferWindow %llu outside 1..4*tREFI "
                            "(%u)",
                            static_cast<unsigned long long>(window),
                            4 * t_refi));
        }
        pol.deferWindow = window;
        break;
      }
    }
    return pol;
}

} // namespace pva
