/**
 * @file
 * Memory-system geometry and address mapping.
 *
 * The paper's prototype is a 16-bank word-interleaved system (M = 16,
 * N = 1) where each bank is one 32-bit-wide SDRAM device with four
 * internal banks. This class also supports cache-line (block)
 * interleaving with N > 1 words per block so that the logical-bank
 * transformation of section 4.1.3 can be exercised.
 *
 * Word-address layout for interleave N = 2^n over M = 2^m banks:
 *
 *     | bank-local high bits | bank (m bits) | block offset (n bits) |
 *
 * DecodeBank(addr) = (wordAddr >> n) mod M, exactly the paper's
 * bit-select definition.
 */

#ifndef PVA_SDRAM_GEOMETRY_HH
#define PVA_SDRAM_GEOMETRY_HH

#include <cstdint>

#include "sim/types.hh"

namespace pva
{

/** Coordinates of a word inside one SDRAM device. */
struct DeviceCoords
{
    unsigned internalBank;
    std::uint32_t row;
    std::uint32_t col;

    bool
    operator==(const DeviceCoords &o) const
    {
        return internalBank == o.internalBank && row == o.row &&
               col == o.col;
    }
};

/** Static description of the memory system's shape. */
class Geometry
{
  public:
    /**
     * @param banks        number of external banks M (power of two).
     * @param interleave   words per consecutive block in one bank, N
     *                     (power of two; 1 = word interleave).
     * @param col_bits     column address bits per internal bank.
     * @param ibank_bits   internal-bank address bits (2 for 4 banks).
     * @param row_bits     row address bits.
     */
    Geometry(unsigned banks = 16, unsigned interleave = 1,
             unsigned col_bits = 9, unsigned ibank_bits = 2,
             unsigned row_bits = 13);

    unsigned banks() const { return numBanks; }
    unsigned bankBits() const { return mBits; }
    unsigned interleave() const { return numInterleave; }
    unsigned interleaveBits() const { return nBits; }
    unsigned internalBanks() const { return 1u << ibankBits; }
    unsigned colBits() const { return columnBits; }
    unsigned rowBits() const { return rowAddressBits; }

    /** Words of capacity per external bank. */
    std::uint64_t
    wordsPerBank() const
    {
        return 1ULL << (columnBits + ibankBits + rowAddressBits);
    }

    /** The paper's DecodeBank(): which external bank holds this word. */
    unsigned
    bankOf(WordAddr w) const
    {
        return static_cast<unsigned>((w >> nBits) & (numBanks - 1));
    }

    /** Bank-local word index (dense within one bank). */
    WordAddr
    bankLocal(WordAddr w) const
    {
        WordAddr block = w >> (nBits + mBits);
        WordAddr offset = w & ((1ULL << nBits) - 1);
        return (block << nBits) | offset;
    }

    /** Map a flat word address to device coordinates within its bank.
     *  Inline: the restimer scoreboard decomposes every candidate op
     *  on the scheduler hot path. */
    DeviceCoords
    decompose(WordAddr w) const
    {
        WordAddr local = bankLocal(w);
        DeviceCoords c;
        c.col =
            static_cast<std::uint32_t>(local & ((1ULL << columnBits) - 1));
        c.internalBank = static_cast<unsigned>(
            (local >> columnBits) & ((1ULL << ibankBits) - 1));
        c.row = static_cast<std::uint32_t>(
            (local >> (columnBits + ibankBits)) &
            ((1ULL << rowAddressBits) - 1));
        return c;
    }

    /** Inverse of decompose() for bank @p bank. */
    WordAddr compose(unsigned bank, const DeviceCoords &c) const;

  private:
    unsigned numBanks;
    unsigned mBits;
    unsigned numInterleave;
    unsigned nBits;
    unsigned columnBits;
    unsigned ibankBits;
    unsigned rowAddressBits;
};

} // namespace pva

#endif // PVA_SDRAM_GEOMETRY_HH
