#include "sdram/timing_checker.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

TimingChecker::TimingChecker(const Geometry &geo, const SdramTiming &timing,
                             unsigned banks, unsigned transactions,
                             unsigned line_words,
                             const BackendPolicy &policy)
    : geometry(geo), times(timing), pol(policy), devs(banks),
      txnSlots(transactions,
               std::vector<SlotRecord>(line_words))
{
    for (DeviceState &d : devs)
        d.ibanks.resize(pol.slotCount(geo.internalBanks()));
}

void
TimingChecker::violation(const std::string &device, Cycle now,
                         const std::string &detail) const
{
    throw SimError(SimErrorKind::Protocol, "checker." + device, now,
                   detail);
}

void
TimingChecker::onCommand(const std::string &device, unsigned bank,
                         const DeviceOp &op, Cycle now)
{
    ++statCommands;
    DeviceState &d = devs.at(bank);

    if (d.lastCommandAt != kNeverCycle && now <= d.lastCommandAt) {
        violation(device, now,
                  csprintf("command bus driven twice (previous command "
                           "at cycle %llu)",
                           static_cast<unsigned long long>(
                               d.lastCommandAt)));
    }
    if (now < d.refreshBusyUntil) {
        violation(device, now,
                  csprintf("command issued during refresh (busy until "
                           "cycle %llu)",
                           static_cast<unsigned long long>(
                               d.refreshBusyUntil)));
    }
    if (times.tREFI != 0) {
        if (pol.kind == MemBackend::DeferredRefresh) {
            // Refresh-debt bound: the oldest uncovered boundary may be
            // deferred at most deferWindow cycles; past its deadline
            // no further command is legal until it is paid.
            Cycle next_due = d.refreshSeenThrough + times.tREFI;
            if (next_due + pol.deferWindow < now) {
                violation(device, now,
                          csprintf("refresh debt bound exceeded: "
                                   "boundary %llu deferred past its "
                                   "deadline %llu",
                                   static_cast<unsigned long long>(
                                       next_due),
                                   static_cast<unsigned long long>(
                                       next_due + pol.deferWindow)));
            }
        } else {
            // Skipped-span audit: every scheduled tREFI boundary up to
            // now must have been applied (and reported via onRefresh)
            // before a command may issue — event clocking is not
            // allowed to jump a refresh boundary away.
            Cycle due = (now / times.tREFI) * times.tREFI;
            if (due > d.refreshSeenThrough) {
                violation(device, now,
                          csprintf("scheduled refresh at cycle %llu was "
                                   "skipped (refresh seen through cycle "
                                   "%llu)",
                                   static_cast<unsigned long long>(due),
                                   static_cast<unsigned long long>(
                                       d.refreshSeenThrough)));
            }
        }
    }
    d.lastCommandAt = now;

    switch (op.kind) {
      case DeviceOp::Kind::Activate: {
        DeviceCoords c = geometry.decompose(op.addr);
        // SALP subarray scoping: the row-cycle rules (tRP/tRC here,
        // tRAS/tRCD/tWR below) bind per row slot, so activates to
        // different subarrays of one internal bank may overlap.
        IBankState &ib = d.ibanks.at(pol.slotOf(c.internalBank, c.row));
        if (ib.open) {
            violation(device, now,
                      csprintf("activate on open internal bank %u "
                               "subarray %u (missing precharge)",
                               c.internalBank, pol.subarrayOf(c.row)));
        }
        if (ib.everPrecharged &&
            now < ib.prechargeStartAt + times.tRP) {
            violation(device, now,
                      csprintf("tRP violated: activate %llu cycles "
                               "after precharge, need %u",
                               static_cast<unsigned long long>(
                                   now - ib.prechargeStartAt),
                               times.tRP));
        }
        if (ib.everActivated && now < ib.activateAt + times.tRC) {
            violation(device, now,
                      csprintf("tRC violated: activate %llu cycles "
                               "after activate, need %u",
                               static_cast<unsigned long long>(
                                   now - ib.activateAt),
                               times.tRC));
        }
        ib.open = true;
        ib.row = c.row;
        ib.activateAt = now;
        ib.everActivated = true;
        break;
      }
      case DeviceOp::Kind::Precharge: {
        if (op.subarray >= pol.subarrays()) {
            violation(device, now,
                      csprintf("precharge names subarray %u but the "
                               "backend has %u per internal bank",
                               op.subarray, pol.subarrays()));
        }
        IBankState &ib = d.ibanks.at(
            (op.internalBank << pol.subBits) | op.subarray);
        if (!ib.open) {
            violation(device, now,
                      csprintf("precharge on closed internal bank %u",
                               op.internalBank));
        }
        if (now < ib.activateAt + times.tRAS) {
            violation(device, now,
                      csprintf("tRAS violated: precharge %llu cycles "
                               "after activate, need %u",
                               static_cast<unsigned long long>(
                                   now - ib.activateAt),
                               times.tRAS));
        }
        if (ib.everWritten && now < ib.writeDataAt + times.tWR) {
            violation(device, now,
                      csprintf("tWR violated: precharge %llu cycles "
                               "after write data, need %u",
                               static_cast<unsigned long long>(
                                   now - ib.writeDataAt),
                               times.tWR));
        }
        ib.open = false;
        ib.prechargeStartAt = now;
        ib.everPrecharged = true;
        break;
      }
      case DeviceOp::Kind::Read:
      case DeviceOp::Kind::Write: {
        DeviceCoords c = geometry.decompose(op.addr);
        IBankState &ib = d.ibanks.at(pol.slotOf(c.internalBank, c.row));
        bool is_read = op.kind == DeviceOp::Kind::Read;
        if (!ib.open) {
            violation(device, now,
                      csprintf("%s on closed internal bank %u",
                               is_read ? "read" : "write",
                               c.internalBank));
        }
        if (ib.row != c.row) {
            violation(device, now,
                      csprintf("%s to row %u but row %u is open",
                               is_read ? "read" : "write", c.row,
                               ib.row));
        }
        if (now < ib.activateAt + times.tRCD) {
            violation(device, now,
                      csprintf("tRCD violated: access %llu cycles "
                               "after activate, need %u",
                               static_cast<unsigned long long>(
                                   now - ib.activateAt),
                               times.tRCD));
        }
        Cycle data = is_read ? now + times.tCL : now + 1;
        if (d.anyDataYet) {
            if (data <= d.lastDataAt) {
                violation(device, now,
                          csprintf("data bus conflict: data cycle %llu "
                                   "not after %llu",
                                   static_cast<unsigned long long>(data),
                                   static_cast<unsigned long long>(
                                       d.lastDataAt)));
            }
            if (is_read != d.lastDataWasRead &&
                data < d.lastDataAt + 2) {
                violation(device, now,
                          csprintf("bus turnaround violated: polarity "
                                   "reversal with data cycles %llu and "
                                   "%llu adjacent",
                                   static_cast<unsigned long long>(
                                       d.lastDataAt),
                                   static_cast<unsigned long long>(
                                       data)));
            }
        }
        d.lastDataAt = data;
        d.lastDataWasRead = is_read;
        d.anyDataYet = true;
        if (!is_read) {
            ib.writeDataAt = data;
            ib.everWritten = true;
        }
        if (op.autoPrecharge) {
            // The device starts the internal precharge once tRAS (and
            // tWR for writes) allow; model the same effective start so
            // the follow-up activate's tRP check is exact.
            Cycle start = ib.activateAt + times.tRAS;
            if (is_read)
                start = std::max(start, now + 1);
            else
                start = std::max(start, data + times.tWR);
            if (ib.everWritten)
                start = std::max(start, ib.writeDataAt + times.tWR);
            ib.open = false;
            ib.prechargeStartAt = start;
            ib.everPrecharged = true;
        }
        break;
      }
    }
}

void
TimingChecker::onRefresh(unsigned bank, Cycle now, Cycle busy_until,
                         Cycle covered)
{
    DeviceState &d = devs.at(bank);
    d.refreshBusyUntil = std::max(d.refreshBusyUntil, busy_until);
    if (covered == kInferCovered) {
        // Legacy inference for callers without coverage info: a
        // refresh on a tREFI boundary is the scheduled one (injected
        // refreshes land on arbitrary cycles and satisfy nothing).
        covered = (times.tREFI != 0 && now != 0 &&
                   now % times.tREFI == 0)
                      ? now
                      : 0;
    }
    if (covered != 0 && times.tREFI != 0) {
        if (pol.kind == MemBackend::DeferredRefresh) {
            // Coverage must be in order (no boundary skipped) and the
            // applying refresh within deferWindow of its boundary on
            // either side.
            Cycle expect = d.refreshSeenThrough + times.tREFI;
            if (covered != expect) {
                violation(csprintf("bank%u", bank), now,
                          csprintf("refresh covers boundary %llu out "
                                   "of order (expected %llu)",
                                   static_cast<unsigned long long>(
                                       covered),
                                   static_cast<unsigned long long>(
                                       expect)));
            }
            if (covered > now + pol.deferWindow) {
                violation(csprintf("bank%u", bank), now,
                          csprintf("refresh pulled in %llu cycles "
                                   "before boundary %llu (window %llu)",
                                   static_cast<unsigned long long>(
                                       covered - now),
                                   static_cast<unsigned long long>(
                                       covered),
                                   static_cast<unsigned long long>(
                                       pol.deferWindow)));
            }
            if (now > covered + pol.deferWindow) {
                violation(csprintf("bank%u", bank), now,
                          csprintf("refresh deferred %llu cycles past "
                                   "boundary %llu (window %llu)",
                                   static_cast<unsigned long long>(
                                       now - covered),
                                   static_cast<unsigned long long>(
                                       covered),
                                   static_cast<unsigned long long>(
                                       pol.deferWindow)));
            }
            d.refreshSeenThrough = covered;
        } else if (covered > d.refreshSeenThrough) {
            d.refreshSeenThrough = covered;
        }
    }
    for (IBankState &ib : d.ibanks) {
        ib.open = false;
        // A post-refresh activate is legal exactly at busy_until; the
        // tRP rule is expressed through the precharge start time.
        ib.prechargeStartAt =
            busy_until > times.tRP ? busy_until - times.tRP : 0;
        ib.everPrecharged = true;
        (void)now;
    }
}

TimingChecker::SlotRecord &
TimingChecker::slotOf(unsigned bank, const DeviceOp &op)
{
    (void)bank;
    return txnSlots.at(op.txn).at(op.slot);
}

void
TimingChecker::onReadData(unsigned bank, const DeviceOp &op, Word data)
{
    SlotRecord &rec = slotOf(bank, op);
    rec.seen = true;
    rec.addr = op.addr;
    rec.data = data;
}

void
TimingChecker::onWriteData(unsigned bank, const DeviceOp &op)
{
    SlotRecord &rec = slotOf(bank, op);
    rec.seen = true;
    rec.addr = op.addr;
    rec.data = op.writeData;
}

void
TimingChecker::beginTxn(const VectorCommand &cmd)
{
    for (SlotRecord &rec : txnSlots.at(cmd.txn))
        rec = SlotRecord{};
}

void
TimingChecker::verifyGather(const VectorCommand &cmd,
                            const std::vector<Word> &line, Cycle now)
{
    ++statGathers;
    const std::vector<SlotRecord> &slots = txnSlots.at(cmd.txn);
    for (std::uint32_t i = 0; i < cmd.length; ++i) {
        const SlotRecord &rec = slots.at(i);
        if (!rec.seen) {
            throw SimError(
                SimErrorKind::Corruption, "checker.gather", now,
                csprintf("txn %u slot %u was never gathered (element "
                         "address %llu)",
                         cmd.txn, i,
                         static_cast<unsigned long long>(
                             cmd.element(i))));
        }
        if (rec.addr != cmd.element(i)) {
            throw SimError(
                SimErrorKind::Corruption, "checker.gather", now,
                csprintf("txn %u slot %u gathered from address %llu, "
                         "command names %llu",
                         cmd.txn, i,
                         static_cast<unsigned long long>(rec.addr),
                         static_cast<unsigned long long>(
                             cmd.element(i))));
        }
        if (i < line.size() && line[i] != rec.data) {
            throw SimError(
                SimErrorKind::Corruption, "checker.gather", now,
                csprintf("txn %u slot %u staged %u but the device "
                         "read %u",
                         cmd.txn, i, line[i], rec.data));
        }
    }
}

void
TimingChecker::verifyScatter(const VectorCommand &cmd,
                             const std::vector<Word> &data, Cycle now)
{
    ++statScatters;
    const std::vector<SlotRecord> &slots = txnSlots.at(cmd.txn);
    for (std::uint32_t i = 0; i < cmd.length; ++i) {
        const SlotRecord &rec = slots.at(i);
        if (!rec.seen) {
            throw SimError(
                SimErrorKind::Corruption, "checker.scatter", now,
                csprintf("txn %u slot %u was never written (element "
                         "address %llu)",
                         cmd.txn, i,
                         static_cast<unsigned long long>(
                             cmd.element(i))));
        }
        if (rec.addr != cmd.element(i)) {
            throw SimError(
                SimErrorKind::Corruption, "checker.scatter", now,
                csprintf("txn %u slot %u written to address %llu, "
                         "command names %llu",
                         cmd.txn, i,
                         static_cast<unsigned long long>(rec.addr),
                         static_cast<unsigned long long>(
                             cmd.element(i))));
        }
        if (i < data.size() && rec.data != data[i]) {
            throw SimError(
                SimErrorKind::Corruption, "checker.scatter", now,
                csprintf("txn %u slot %u committed %u but the line "
                         "holds %u",
                         cmd.txn, i, rec.data, data[i]));
        }
    }
}

void
TimingChecker::releaseTxn(std::uint8_t txn)
{
    for (SlotRecord &rec : txnSlots.at(txn))
        rec = SlotRecord{};
}

void
TimingChecker::registerStats(StatSet &set, const std::string &prefix) const
{
    set.addScalar(prefix + ".commands", &statCommands);
    set.addScalar(prefix + ".gathers", &statGathers);
    set.addScalar(prefix + ".scatters", &statScatters);
}

} // namespace pva
