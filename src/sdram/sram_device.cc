#include "sdram/sram_device.hh"

#include "sdram/timing_checker.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

SramDevice::SramDevice(std::string name, unsigned bank_index,
                       const Geometry &geo, SparseMemory &backing)
    : BankDevice(std::move(name), bank_index, geo, backing)
{
}

bool
SramDevice::canIssue(const DeviceOp &op, Cycle now) const
{
    if (lastCommandCycle != kNeverCycle && now <= lastCommandCycle)
        return false;
    switch (op.kind) {
      case DeviceOp::Kind::Activate:
      case DeviceOp::Kind::Precharge:
        // Rows are always "open"; the scheduler never needs these.
        return false;
      case DeviceOp::Kind::Read:
      case DeviceOp::Kind::Write:
        // One word per data-pin cycle; access completes next cycle.
        return !anyDataYet || now + 1 > lastDataCycle;
    }
    return false;
}

Cycle
SramDevice::nextTimingEventAfter(Cycle now) const
{
    Cycle wake = kNeverCycle;
    auto consider = [&](Cycle c) {
        if (c > now && c < wake)
            wake = c;
    };
    if (!pending.empty()) {
        Cycle ready = pending.front().readyAt;
        consider(ready > now ? ready : now + 1);
    }
    if (lastCommandCycle != kNeverCycle)
        consider(lastCommandCycle + 1); // command bus frees
    if (anyDataYet)
        consider(lastDataCycle); // data pins free (access legal again)
    return wake;
}

void
SramDevice::issue(const DeviceOp &op, Cycle now)
{
    if (!canIssue(op, now)) {
        throw SimError(SimErrorKind::Protocol, name(), now,
                       "illegal SRAM op (scoreboard disagreement)");
    }
    lastCommandCycle = now;
    lastDataCycle = now + 1;
    anyDataYet = true;

    if (op.kind == DeviceOp::Kind::Read) {
        ++statReads;
        Word value = memory.read(op.addr);
        if (checker)
            checker->onReadData(bankIndex, op, value);
        ReadReturn &rr = pending.pushBack();
        rr.readyAt = now + 1;
        rr.data = value;
        rr.txn = op.txn;
        rr.slot = op.slot;
    } else {
        ++statWrites;
        memory.write(op.addr, op.writeData);
        if (checker)
            checker->onWriteData(bankIndex, op);
    }
}

} // namespace pva
