#include "sdram/sram_device.hh"

#include "sim/logging.hh"

namespace pva
{

SramDevice::SramDevice(std::string name, unsigned bank_index,
                       const Geometry &geo, SparseMemory &backing)
    : BankDevice(std::move(name), bank_index, geo, backing)
{
}

bool
SramDevice::canIssue(const DeviceOp &op, Cycle now) const
{
    if (lastCommandCycle != kNeverCycle && now <= lastCommandCycle)
        return false;
    switch (op.kind) {
      case DeviceOp::Kind::Activate:
      case DeviceOp::Kind::Precharge:
        // Rows are always "open"; the scheduler never needs these.
        return false;
      case DeviceOp::Kind::Read:
      case DeviceOp::Kind::Write:
        // One word per data-pin cycle; access completes next cycle.
        return !anyDataYet || now + 1 > lastDataCycle;
    }
    return false;
}

void
SramDevice::issue(const DeviceOp &op, Cycle now)
{
    if (!canIssue(op, now))
        panic("%s: illegal SRAM op at cycle %llu", name().c_str(),
              static_cast<unsigned long long>(now));
    lastCommandCycle = now;
    lastDataCycle = now + 1;
    anyDataYet = true;

    if (op.kind == DeviceOp::Kind::Read) {
        ++statReads;
        pending.push_back({now + 1, memory.read(op.addr), op.txn, op.slot});
    } else {
        ++statWrites;
        memory.write(op.addr, op.writeData);
    }
}

} // namespace pva
