#include "sdram/geometry.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

Geometry::Geometry(unsigned banks, unsigned interleave, unsigned col_bits,
                   unsigned ibank_bits, unsigned row_bits)
    : numBanks(banks), numInterleave(interleave), columnBits(col_bits),
      ibankBits(ibank_bits), rowAddressBits(row_bits)
{
    if (!isPowerOfTwo(banks)) {
        throw SimError(SimErrorKind::Config, "geometry", kNeverCycle,
                       csprintf("bank count %u is not a power of two",
                                banks));
    }
    if (!isPowerOfTwo(interleave)) {
        throw SimError(SimErrorKind::Config, "geometry", kNeverCycle,
                       csprintf("interleave factor %u is not a power "
                                "of two", interleave));
    }
    mBits = log2Exact(banks);
    nBits = log2Exact(interleave);
}

WordAddr
Geometry::compose(unsigned bank, const DeviceCoords &c) const
{
    WordAddr local = (static_cast<WordAddr>(c.row)
                      << (columnBits + ibankBits)) |
                     (static_cast<WordAddr>(c.internalBank) << columnBits) |
                     c.col;
    WordAddr block = local >> nBits;
    WordAddr offset = local & ((1ULL << nBits) - 1);
    return (block << (nBits + mBits)) |
           (static_cast<WordAddr>(bank) << nBits) | offset;
}

} // namespace pva
