/**
 * @file
 * Pluggable memory-backend policy for the SDRAM device layer.
 *
 * The device model grew up as the paper's fixed 1999 SDRAM part; the
 * backend seam generalizes its per-internal-bank timing state to
 * per-row-slot state so richer parts slot in without a second device
 * class (docs/DEVICE.md):
 *
 *  - Legacy: one row buffer per internal bank — the paper's part.
 *    One slot per internal bank; bit-identical to the pre-backend
 *    model.
 *  - Salp: subarray-level parallelism (Kim et al., PAPERS.md). Each
 *    internal bank is split into 2^subBits subarrays, each with its
 *    own row buffer and row-cycle timers (tRCD/tRAS/tRC scoped per
 *    subarray); the command bus and data pins stay shared, so a
 *    single access is in flight at a time but activates to different
 *    subarrays of one internal bank may overlap.
 *  - DeferredRefresh: refresh-access parallelism (Chang et al.,
 *    PAPERS.md). tREFI boundaries may be pulled in early while the
 *    device is idle or pushed out past in-flight work, each by at
 *    most deferWindow cycles; at boundary + deferWindow the refresh
 *    is forced regardless.
 *
 * A BackendPolicy is resolved once at construction (geometry- and
 * timing-checked) and then read through inline accessors on the
 * scheduler hot path; slot indices are (ibank << subBits) | subarray,
 * so the legacy policy degenerates to slot == internal bank and the
 * refactored code paths are cycle-exact with the old ones.
 */

#ifndef PVA_SDRAM_BACKEND_HH
#define PVA_SDRAM_BACKEND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace pva
{

/** Which device backend a memory system models. */
enum class MemBackend : std::uint8_t
{
    Legacy,          ///< The paper's SDRAM part (one row buffer / ibank)
    Salp,            ///< Subarray-level parallelism (Kim et al.)
    DeferredRefresh, ///< tREFI pull-in/push-out (Chang et al.)
};

/** Canonical CLI/JSON spelling ("legacy", "salp", "deferred"). */
const char *backendName(MemBackend kind);

/** Parse a backend spelling; false (and @p out untouched) if unknown. */
bool parseMemBackend(const std::string &text, MemBackend &out);

/** Every backend, in a stable order (for sweeps and help text). */
const std::vector<MemBackend> &allBackends();

/**
 * Resolved backend policy: the row-slot mapping plus the refresh
 * discipline, shared by SdramDevice, BankController and TimingChecker
 * so all three agree on what a "row slot" is.
 */
struct BackendPolicy
{
    MemBackend kind = MemBackend::Legacy;
    /** log2(subarrays per internal bank); 0 except for Salp. */
    unsigned subBits = 0;
    /**
     * row >> subShift == subarray index. For subBits == 0 the shift
     * lands past every row bit, so the subarray is always 0 and
     * slotOf() degenerates to the internal-bank index.
     */
    unsigned subShift = 31;
    /** Max cycles a tREFI boundary may move (DeferredRefresh only). */
    Cycle deferWindow = 0;

    unsigned subarrays() const { return 1u << subBits; }

    unsigned
    subarrayOf(std::uint32_t row) const
    {
        return static_cast<unsigned>(row >> subShift);
    }

    /** Row-slot index of @p row within internal bank @p ibank. */
    unsigned
    slotOf(unsigned ibank, std::uint32_t row) const
    {
        return (ibank << subBits) | subarrayOf(row);
    }

    /** Total row slots of a device with @p internal_banks banks. */
    unsigned
    slotCount(unsigned internal_banks) const
    {
        return internal_banks << subBits;
    }
};

/**
 * Validate and resolve a backend configuration against the geometry's
 * row width and the refresh timing. Throws SimError(Config) naming the
 * offending knob. @p defer_window 0 means "auto" (tREFI / 2).
 */
BackendPolicy resolveBackendPolicy(MemBackend kind, unsigned row_bits,
                                   unsigned t_refi, unsigned t_rfc,
                                   unsigned salp_subarrays,
                                   unsigned defer_window);

} // namespace pva

#endif // PVA_SDRAM_BACKEND_HH
