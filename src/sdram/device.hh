/**
 * @file
 * SDRAM device model with restimer-style timing enforcement.
 *
 * One BankDevice represents the 32-bit-wide SDRAM behind one external
 * bank of the memory system (the prototype builds it from Micron
 * 256 Mbit x16 parts). It has four internal banks, each with an open-row
 * register, and enforces the timing constraints the paper's "restimers"
 * scoreboard (section 5.2.5): tRCD, CAS latency, tRP, tRAS, tRC, tWR,
 * plus the one-cycle data-bus turnaround on polarity reversal.
 *
 * Protocol: the bank controller calls canIssue() to probe legality in
 * the current cycle and issue() to commit an operation. At most one
 * command per cycle may be issued (one command bus). Read data appears
 * tCL cycles later and is retrieved with popReady().
 *
 * Hot-path layout (docs/PERFORMANCE.md): the per-internal-bank state
 * lives in struct-of-arrays form — the three restimer deadlines in
 * contiguous Cycle arrays scanned by nextTimingEventAfter(), the
 * open/row registers in parallel arrays touched by the row predicates
 * the bank-controller scheduler polls every cycle. The row predicates
 * and the idle-tick fast path are defined inline and SdramDevice is
 * final, so a caller holding a concrete SdramDevice* (the bank
 * controller's devirtualized fast path) pays no virtual dispatch.
 */

#ifndef PVA_SDRAM_DEVICE_HH
#define PVA_SDRAM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sdram/geometry.hh"
#include "sim/component.hh"
#include "sim/fault.hh"
#include "sim/memory.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace pva
{

class TimingChecker;

/** SDRAM timing parameters in memory-clock cycles. */
struct SdramTiming
{
    unsigned tRCD = 2; ///< Activate to read/write (the paper's 2-cycle RAS)
    unsigned tCL = 2;  ///< Read command to data (2-cycle CAS)
    unsigned tRP = 2;  ///< Precharge to activate
    unsigned tRAS = 5; ///< Activate to precharge
    unsigned tRC = 7;  ///< Activate to activate, same internal bank
    unsigned tWR = 2;  ///< Write data to precharge
    /**
     * Auto-refresh interval in cycles (0 disables refresh, the paper's
     * idealization). A 64 ms / 8192-row part at 100 MHz refreshes every
     * ~781 cycles.
     */
    unsigned tREFI = 0;
    unsigned tRFC = 10; ///< Refresh cycle time (all banks unavailable)
};

/** One operation a bank controller can ask a device to perform. */
struct DeviceOp
{
    enum class Kind { Activate, Precharge, Read, Write };

    Kind kind;
    WordAddr addr = 0;        ///< Flat word address (Read/Write/Activate)
    bool autoPrecharge = false; ///< Read/Write with auto-precharge
    Word writeData = 0;
    std::uint8_t txn = 0;     ///< Transaction id tag
    std::uint8_t slot = 0;    ///< Word index within the cache line
    unsigned internalBank = 0; ///< For Precharge (no address needed)
};

/** A read completion: data valid on the device pins at @c readyAt. */
struct ReadReturn
{
    Cycle readyAt;
    Word data;
    std::uint8_t txn;
    std::uint8_t slot;
};

/**
 * Abstract bank-storage device. SdramDevice implements the full dynamic
 * RAM behaviour; SramDevice (sram_device.hh) the idealized static RAM of
 * the paper's PVA-SRAM comparison system.
 */
class BankDevice : public Component
{
  public:
    BankDevice(std::string name, unsigned bank_index, const Geometry &geo,
               SparseMemory &backing)
        : Component(std::move(name)), bankIndex(bank_index), geometry(geo),
          memory(backing)
    {
    }

    /** May @p op legally issue in cycle @p now? Side-effect free. */
    virtual bool canIssue(const DeviceOp &op, Cycle now) const = 0;

    /** Commit @p op in cycle @p now. Throws SimError(Protocol) if
     *  illegal (scoreboard bug). */
    virtual void issue(const DeviceOp &op, Cycle now) = 0;

    /** Attach the redundant protocol/data checker (may be null). */
    void setChecker(TimingChecker *c) { checker = c; }

    /** Is some row open (bank active) in internal bank @p ibank? */
    virtual bool anyRowOpen(unsigned ibank) const = 0;

    /** Is row @p row open in internal bank @p ibank? */
    virtual bool isRowOpen(unsigned ibank, std::uint32_t row) const = 0;

    /** The row currently open in @p ibank (valid iff anyRowOpen()). */
    virtual std::uint32_t openRow(unsigned ibank) const = 0;

    /** Row last opened in @p ibank (valid even after close; for the
     *  autoprecharge predictor's "last row address" input). */
    virtual std::uint32_t lastRow(unsigned ibank) const = 0;

    /** Pop a read completion whose data is valid at or before @p now. */
    bool
    popReady(Cycle now, ReadReturn &out)
    {
        if (pending.empty() || pending.front().readyAt > now)
            return false;
        out = pending.front();
        pending.popFront();
        return true;
    }

    /** True iff no read data remains in flight. */
    bool quiescent() const { return pending.empty(); }

    /**
     * Earliest cycle (> @p now) at which this device's timing state
     * can change on its own: pending read data maturing, restimer
     * thresholds (tRCD/tRP/tRAS/tRC), data-pin occupancy clearing,
     * command-bus release, refresh completion, or the next tREFI
     * boundary. kNeverCycle if nothing is scheduled. Conservative
     * (early) answers are allowed; this feeds the owning bank
     * controller's Component::nextWakeAfter.
     */
    virtual Cycle
    nextTimingEventAfter(Cycle now) const
    {
        if (pending.empty())
            return kNeverCycle;
        Cycle ready = pending.front().readyAt;
        return ready > now ? ready : now + 1;
    }

    unsigned bank() const { return bankIndex; }

    void tick(Cycle) override {}

  protected:
    unsigned bankIndex;
    const Geometry &geometry;
    SparseMemory &memory;
    TimingChecker *checker = nullptr;
    RingDeque<ReadReturn> pending; ///< Ordered by readyAt.
};

/** The dynamic-RAM device with full timing state. */
class SdramDevice final : public BankDevice
{
  public:
    SdramDevice(std::string name, unsigned bank_index, const Geometry &geo,
                const SdramTiming &timing, SparseMemory &backing);

    bool canIssue(const DeviceOp &op, Cycle now) const override;
    void issue(const DeviceOp &op, Cycle now) override;

    bool
    anyRowOpen(unsigned ibank) const override
    {
        return rowOpen[ibank] != 0;
    }

    bool
    isRowOpen(unsigned ibank, std::uint32_t row) const override
    {
        return rowOpen[ibank] != 0 && openRows[ibank] == row;
    }

    std::uint32_t
    openRow(unsigned ibank) const override
    {
        if (rowOpen[ibank] == 0)
            throwClosedRowQuery(ibank);
        return openRows[ibank];
    }

    std::uint32_t
    lastRow(unsigned ibank) const override
    {
        return everOpened[ibank] ? lastOpenedRows[ibank] : 0xffffffffu;
    }

    /**
     * Apply pending auto-refresh: at each tREFI boundary all internal
     * banks precharge and the device is unavailable for tRFC cycles.
     * Called by the bank controller at the top of every processed
     * cycle; under event clocking it catches up on every boundary the
     * skipped span crossed, in order, so the refresh count and row
     * state match the exhaustive stepper exactly. The common case —
     * refresh disabled, no fault injector — is an inline early-out.
     */
    void
    tick(Cycle now) override
    {
        if (injector || times.tREFI != 0)
            tickRefresh(now);
    }

    Cycle nextTimingEventAfter(Cycle now) const override;

    /** Enable fault injection (spontaneous refresh stalls) for this
     *  device, drawing decisions from the plan's stream @p stream. */
    void enableFaults(const FaultPlan &plan, std::uint64_t stream);

    /** @name Statistics @{ */
    Scalar statActivates;
    Scalar statPrecharges;
    Scalar statReads;
    Scalar statWrites;
    Scalar statRowHitAccesses; ///< Read/write without a fresh activate
    Scalar statRefreshes;
    Scalar statInjectedRefreshes; ///< Fault-injected refresh stalls
    /** @} */

    void registerStats(StatSet &set, const std::string &prefix) const;

  private:
    /** When would @p op's word occupy the device data pins? */
    Cycle dataCycleOf(const DeviceOp &op, Cycle now) const;

    /** Close every internal bank and hold the device busy for tRFC. */
    void applyRefresh(Cycle now);

    /** Refresh/fault slow path behind the inline tick() early-out. */
    void tickRefresh(Cycle now);

    [[noreturn]] void throwClosedRowQuery(unsigned ibank) const;

    SdramTiming times;

    /** @name Per-internal-bank state, struct-of-arrays
     * Indexed by internal bank. The three restimer deadline arrays are
     * contiguous so the wake scan in nextTimingEventAfter() walks flat
     * Cycle memory; the row registers sit in their own arrays for the
     * scheduler's row predicates.
     * @{ */
    std::vector<Cycle> accessReady;    ///< tRCD satisfied
    std::vector<Cycle> prechargeReady; ///< tRAS / tWR satisfied
    std::vector<Cycle> activateReady;  ///< tRP / tRC satisfied
    std::vector<std::uint32_t> openRows;
    std::vector<std::uint32_t> lastOpenedRows;
    std::vector<std::uint8_t> rowOpen;
    std::vector<std::uint8_t> everOpened;
    std::vector<std::uint8_t> freshActivate; ///< No access since activate
    /** @} */

    std::unique_ptr<FaultInjector> injector;

    Cycle lastCommandCycle = kNeverCycle; ///< One command bus per device
    Cycle lastDataCycle = 0;              ///< Data pin occupancy high-water
    bool lastDataWasRead = true;
    bool anyDataYet = false;
    Cycle lastRefreshApplied = 0;
    Cycle refreshBusyUntil = 0;
};

} // namespace pva

#endif // PVA_SDRAM_DEVICE_HH
