/**
 * @file
 * SDRAM device model with restimer-style timing enforcement.
 *
 * One BankDevice represents the 32-bit-wide SDRAM behind one external
 * bank of the memory system (the prototype builds it from Micron
 * 256 Mbit x16 parts). It has four internal banks, each with an open-row
 * register, and enforces the timing constraints the paper's "restimers"
 * scoreboard (section 5.2.5): tRCD, CAS latency, tRP, tRAS, tRC, tWR,
 * plus the one-cycle data-bus turnaround on polarity reversal.
 *
 * Protocol: the bank controller calls canIssue() to probe legality in
 * the current cycle and issue() to commit an operation. At most one
 * command per cycle may be issued (one command bus). Read data appears
 * tCL cycles later and is retrieved with popReady().
 *
 * Hot-path layout (docs/PERFORMANCE.md): the per-row-slot state lives
 * in struct-of-arrays form — the three restimer deadlines in
 * contiguous Cycle arrays scanned by nextTimingEventAfter(), the
 * open/row registers in parallel arrays touched by the row predicates
 * the bank-controller scheduler polls every cycle. The row predicates
 * and the idle-tick fast path are defined inline and SdramDevice is
 * final, so a caller holding a concrete SdramDevice* (the bank
 * controller's devirtualized fast path) pays no virtual dispatch.
 *
 * Backends (docs/DEVICE.md): a "row slot" is one row buffer with its
 * own restimers. The legacy backend has one slot per internal bank —
 * exactly the original model. The SALP backend splits each internal
 * bank into subarrays with a slot each (shared command bus and data
 * pins); the deferred-refresh backend keeps legacy slots but moves
 * tREFI boundaries within a bounded window around in-flight work. All
 * three are data-driven off a resolved BackendPolicy, so the one
 * final class keeps the devirtualized dispatch.
 */

#ifndef PVA_SDRAM_DEVICE_HH
#define PVA_SDRAM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sdram/backend.hh"
#include "sdram/geometry.hh"
#include "sim/component.hh"
#include "sim/fault.hh"
#include "sim/memory.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace pva
{

class TimingChecker;

/** SDRAM timing parameters in memory-clock cycles. */
struct SdramTiming
{
    unsigned tRCD = 2; ///< Activate to read/write (the paper's 2-cycle RAS)
    unsigned tCL = 2;  ///< Read command to data (2-cycle CAS)
    unsigned tRP = 2;  ///< Precharge to activate
    unsigned tRAS = 5; ///< Activate to precharge
    unsigned tRC = 7;  ///< Activate to activate, same internal bank
    unsigned tWR = 2;  ///< Write data to precharge
    /**
     * Auto-refresh interval in cycles (0 disables refresh, the paper's
     * idealization). A 64 ms / 8192-row part at 100 MHz refreshes every
     * ~781 cycles.
     */
    unsigned tREFI = 0;
    unsigned tRFC = 10; ///< Refresh cycle time (all banks unavailable)
};

/** One operation a bank controller can ask a device to perform. */
struct DeviceOp
{
    enum class Kind { Activate, Precharge, Read, Write };

    Kind kind;
    WordAddr addr = 0;        ///< Flat word address (Read/Write/Activate)
    bool autoPrecharge = false; ///< Read/Write with auto-precharge
    Word writeData = 0;
    std::uint8_t txn = 0;     ///< Transaction id tag
    std::uint8_t slot = 0;    ///< Word index within the cache line
    unsigned internalBank = 0; ///< For Precharge (no address needed)
    /** For Precharge on a SALP backend: which subarray of
     *  @c internalBank to close (always 0 on single-slot backends). */
    unsigned subarray = 0;
};

/** A read completion: data valid on the device pins at @c readyAt. */
struct ReadReturn
{
    Cycle readyAt;
    Word data;
    std::uint8_t txn;
    std::uint8_t slot;
};

/**
 * Abstract bank-storage device. SdramDevice implements the full dynamic
 * RAM behaviour; SramDevice (sram_device.hh) the idealized static RAM of
 * the paper's PVA-SRAM comparison system.
 */
class BankDevice : public Component
{
  public:
    BankDevice(std::string name, unsigned bank_index, const Geometry &geo,
               SparseMemory &backing)
        : Component(std::move(name)), bankIndex(bank_index), geometry(geo),
          memory(backing)
    {
    }

    /** May @p op legally issue in cycle @p now? Side-effect free. */
    virtual bool canIssue(const DeviceOp &op, Cycle now) const = 0;

    /** Commit @p op in cycle @p now. Throws SimError(Protocol) if
     *  illegal (scoreboard bug). */
    virtual void issue(const DeviceOp &op, Cycle now) = 0;

    /** Attach the redundant protocol/data checker (may be null). */
    void setChecker(TimingChecker *c) { checker = c; }

    /** Is some row open (bank active) in internal bank @p ibank? */
    virtual bool anyRowOpen(unsigned ibank) const = 0;

    /** Is row @p row open (in its row slot of internal bank @p ibank)? */
    virtual bool isRowOpen(unsigned ibank, std::uint32_t row) const = 0;

    /** The row currently open in @p ibank (valid iff anyRowOpen()).
     *  On a multi-slot backend: the first open slot's row. */
    virtual std::uint32_t openRow(unsigned ibank) const = 0;

    /** Row last opened in @p ibank (valid even after close; for the
     *  autoprecharge predictor's "last row address" input). */
    virtual std::uint32_t lastRow(unsigned ibank) const = 0;

    /** @name Row-slot predicates
     * The scheduler's view: all three address the row slot that holds
     * @p row on this backend (the whole internal bank on legacy, its
     * subarray on SALP). @{ */
    /** Does the slot holding @p row currently have some row open? */
    virtual bool slotRowOpen(unsigned ibank, std::uint32_t row) const = 0;

    /** The row open in @p row's slot (valid iff slotRowOpen()). */
    virtual std::uint32_t openRowAt(unsigned ibank,
                                    std::uint32_t row) const = 0;

    /** The row last opened in @p row's slot (0xffffffff if never). */
    virtual std::uint32_t lastRowAt(unsigned ibank,
                                    std::uint32_t row) const = 0;
    /** @} */

    /** The resolved backend policy (legacy single-slot by default). */
    const BackendPolicy &backendPolicy() const { return pol; }

    /** Pop a read completion whose data is valid at or before @p now. */
    bool
    popReady(Cycle now, ReadReturn &out)
    {
        if (pending.empty() || pending.front().readyAt > now)
            return false;
        out = pending.front();
        pending.popFront();
        return true;
    }

    /** True iff no read data remains in flight. */
    bool quiescent() const { return pending.empty(); }

    /**
     * Earliest cycle (> @p now) at which this device's timing state
     * can change on its own: pending read data maturing, restimer
     * thresholds (tRCD/tRP/tRAS/tRC), data-pin occupancy clearing,
     * command-bus release, refresh completion, or the next tREFI
     * boundary. kNeverCycle if nothing is scheduled. Conservative
     * (early) answers are allowed; this feeds the owning bank
     * controller's Component::nextWakeAfter.
     */
    virtual Cycle
    nextTimingEventAfter(Cycle now) const
    {
        if (pending.empty())
            return kNeverCycle;
        Cycle ready = pending.front().readyAt;
        return ready > now ? ready : now + 1;
    }

    unsigned bank() const { return bankIndex; }

    void tick(Cycle) override {}

  protected:
    unsigned bankIndex;
    const Geometry &geometry;
    SparseMemory &memory;
    TimingChecker *checker = nullptr;
    BackendPolicy pol{}; ///< Resolved by the concrete device's ctor.
    RingDeque<ReadReturn> pending; ///< Ordered by readyAt.
};

/** The dynamic-RAM device with full timing state. */
class SdramDevice final : public BankDevice
{
  public:
    /** @p policy must come from resolveBackendPolicy() (the default is
     *  the legacy single-slot part). */
    SdramDevice(std::string name, unsigned bank_index, const Geometry &geo,
                const SdramTiming &timing, SparseMemory &backing,
                const BackendPolicy &policy = BackendPolicy{});

    bool canIssue(const DeviceOp &op, Cycle now) const override;
    void issue(const DeviceOp &op, Cycle now) override;

    /** Row-slot index of (@p ibank, @p row) under this backend. */
    unsigned
    slotIndex(unsigned ibank, std::uint32_t row) const
    {
        return pol.slotOf(ibank, row);
    }

    bool
    anyRowOpen(unsigned ibank) const override
    {
        const unsigned base = ibank << pol.subBits;
        for (unsigned s = base; s < base + pol.subarrays(); ++s) {
            if (rowOpen[s] != 0)
                return true;
        }
        return false;
    }

    bool
    isRowOpen(unsigned ibank, std::uint32_t row) const override
    {
        const unsigned s = slotIndex(ibank, row);
        return rowOpen[s] != 0 && openRows[s] == row;
    }

    std::uint32_t
    openRow(unsigned ibank) const override
    {
        const unsigned base = ibank << pol.subBits;
        for (unsigned s = base; s < base + pol.subarrays(); ++s) {
            if (rowOpen[s] != 0)
                return openRows[s];
        }
        throwClosedRowQuery(ibank);
    }

    std::uint32_t
    lastRow(unsigned ibank) const override
    {
        const unsigned base = ibank << pol.subBits;
        for (unsigned s = base; s < base + pol.subarrays(); ++s) {
            if (everOpened[s])
                return lastOpenedRows[s];
        }
        return 0xffffffffu;
    }

    bool
    slotRowOpen(unsigned ibank, std::uint32_t row) const override
    {
        return rowOpen[slotIndex(ibank, row)] != 0;
    }

    std::uint32_t
    openRowAt(unsigned ibank, std::uint32_t row) const override
    {
        return openRows[slotIndex(ibank, row)];
    }

    std::uint32_t
    lastRowAt(unsigned ibank, std::uint32_t row) const override
    {
        const unsigned s = slotIndex(ibank, row);
        return everOpened[s] ? lastOpenedRows[s] : 0xffffffffu;
    }

    /**
     * Apply pending auto-refresh: at each tREFI boundary all internal
     * banks precharge and the device is unavailable for tRFC cycles.
     * Called by the bank controller at the top of every processed
     * cycle; under event clocking it catches up on every boundary the
     * skipped span crossed, in order, so the refresh count and row
     * state match the exhaustive stepper exactly. The common case —
     * refresh disabled, no fault injector — is an inline early-out.
     */
    void
    tick(Cycle now) override
    {
        if (injector || times.tREFI != 0)
            tickRefresh(now);
    }

    Cycle nextTimingEventAfter(Cycle now) const override;

    /** Enable fault injection (spontaneous refresh stalls) for this
     *  device, drawing decisions from the plan's stream @p stream. */
    void enableFaults(const FaultPlan &plan, std::uint64_t stream);

    /** @name Statistics @{ */
    Scalar statActivates;
    Scalar statPrecharges;
    Scalar statReads;
    Scalar statWrites;
    Scalar statRowHitAccesses; ///< Read/write without a fresh activate
    Scalar statRefreshes;
    Scalar statInjectedRefreshes; ///< Fault-injected refresh stalls
    Scalar statDeferredRefreshes; ///< Applied after their boundary
    Scalar statAdvancedRefreshes; ///< Pulled in before their boundary
    /** @} */

    void registerStats(StatSet &set, const std::string &prefix) const;

  private:
    /** When would @p op's word occupy the device data pins? */
    Cycle dataCycleOf(const DeviceOp &op, Cycle now) const;

    /** Close every row slot and hold the device busy for tRFC.
     *  @p covered names the tREFI boundary this refresh satisfies
     *  (0 for an injected refresh that satisfies none). */
    void applyRefresh(Cycle now, Cycle covered);

    /** Refresh/fault slow path behind the inline tick() early-out. */
    void tickRefresh(Cycle now);

    /** The DeferredRefresh discipline: pull-in/push-out within the
     *  policy window, forced at boundary + window. */
    void tickRefreshDeferred(Cycle now);

    /** Would a refresh right now collide with in-flight work (open
     *  rows, read data still maturing)? Deferral predicate; depends
     *  only on device state, never on the clock, so skipped spans
     *  cannot change its answer (event-clocking exactness). */
    bool
    busyForRefresh() const
    {
        if (!pending.empty())
            return true;
        for (std::uint8_t open : rowOpen) {
            if (open)
                return true;
        }
        return false;
    }

    [[noreturn]] void throwClosedRowQuery(unsigned ibank) const;

    SdramTiming times;

    /** @name Per-row-slot state, struct-of-arrays
     * Indexed by row slot (BackendPolicy::slotOf — the internal bank
     * on legacy backends, (ibank, subarray) on SALP). The three
     * restimer deadline arrays are contiguous so the wake scan in
     * nextTimingEventAfter() walks flat Cycle memory; the row
     * registers sit in their own arrays for the scheduler's row
     * predicates.
     * @{ */
    std::vector<Cycle> accessReady;    ///< tRCD satisfied
    std::vector<Cycle> prechargeReady; ///< tRAS / tWR satisfied
    std::vector<Cycle> activateReady;  ///< tRP / tRC satisfied
    std::vector<std::uint32_t> openRows;
    std::vector<std::uint32_t> lastOpenedRows;
    std::vector<std::uint8_t> rowOpen;
    std::vector<std::uint8_t> everOpened;
    std::vector<std::uint8_t> freshActivate; ///< No access since activate
    /** @} */

    std::unique_ptr<FaultInjector> injector;

    Cycle lastCommandCycle = kNeverCycle; ///< One command bus per device
    Cycle lastDataCycle = 0;              ///< Data pin occupancy high-water
    bool lastDataWasRead = true;
    bool anyDataYet = false;
    Cycle lastRefreshApplied = 0;
    Cycle refreshBusyUntil = 0;
};

} // namespace pva

#endif // PVA_SDRAM_DEVICE_HH
