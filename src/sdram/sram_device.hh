/**
 * @file
 * Idealized SRAM bank device for the paper's PVA-SRAM comparison.
 *
 * Section 6.1: "Based on static RAM, this system incurs no precharge or
 * RAS latencies: all memory accesses take a single cycle." Rows are
 * always considered open so the scheduler never issues activates or
 * precharges; reads return data the next cycle. The data pins still
 * carry at most one word per cycle so that bank-level serialization —
 * the one source of alignment sensitivity left in an SRAM system —
 * is preserved.
 */

#ifndef PVA_SDRAM_SRAM_DEVICE_HH
#define PVA_SDRAM_SRAM_DEVICE_HH

#include "sdram/device.hh"

namespace pva
{

/** Single-cycle static-RAM bank. */
class SramDevice final : public BankDevice
{
  public:
    SramDevice(std::string name, unsigned bank_index, const Geometry &geo,
               SparseMemory &backing);

    bool canIssue(const DeviceOp &op, Cycle now) const override;
    void issue(const DeviceOp &op, Cycle now) override;
    bool anyRowOpen(unsigned) const override { return true; }
    bool isRowOpen(unsigned, std::uint32_t) const override { return true; }
    std::uint32_t openRow(unsigned) const override { return 0; }
    std::uint32_t lastRow(unsigned) const override { return 0; }
    bool slotRowOpen(unsigned, std::uint32_t) const override
    {
        return true;
    }
    std::uint32_t openRowAt(unsigned, std::uint32_t) const override
    {
        return 0;
    }
    std::uint32_t lastRowAt(unsigned, std::uint32_t) const override
    {
        return 0;
    }

    Cycle nextTimingEventAfter(Cycle now) const override;

    Scalar statReads;
    Scalar statWrites;

  private:
    Cycle lastCommandCycle = kNeverCycle;
    Cycle lastDataCycle = 0;
    bool anyDataYet = false;
};

} // namespace pva

#endif // PVA_SDRAM_SRAM_DEVICE_HH
