/**
 * @file
 * The "parallel vector access SRAM" comparison system (section 6.1).
 *
 * The same PVA parallel access scheme, bank controllers, and bus
 * protocol, but over single-cycle static RAM banks: no precharge or RAS
 * latencies. Comparing the SDRAM PVA against this system measures how
 * well the PVA scheduling heuristics hide dynamic-RAM overheads (the
 * paper's claim: within ~15%).
 */

#ifndef PVA_BASELINES_PVA_SRAM_SYSTEM_HH
#define PVA_BASELINES_PVA_SRAM_SYSTEM_HH

#include "core/pva_unit.hh"

namespace pva
{

/** PVA over SRAM banks. */
class PvaSramSystem : public PvaUnit
{
  public:
    PvaSramSystem(std::string name, PvaConfig config = {})
        : PvaUnit(std::move(name), sramify(config))
    {
    }

  private:
    static PvaConfig
    sramify(PvaConfig config)
    {
        config.useSram = true;
        return config;
    }
};

} // namespace pva

#endif // PVA_BASELINES_PVA_SRAM_SYSTEM_HH
