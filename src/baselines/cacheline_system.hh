/**
 * @file
 * The "cache line interleaved serial SDRAM" baseline (section 6.1).
 *
 * An idealized 16-module SDRAM system optimized for cache-line fills:
 * the memory bus is 64 bits, L2 lines are 128 bytes, the SDRAMs need
 * two cycles each for RAS and CAS and burst 16 cycles, and precharge is
 * optimistically overlapped — so every line fill costs exactly
 * 2 + 2 + 16 = 20 cycles. The system performs no gathering: a strided
 * vector command touches however many distinct cache lines its elements
 * fall in, and each is transferred in full, serially.
 */

#ifndef PVA_BASELINES_CACHELINE_SYSTEM_HH
#define PVA_BASELINES_CACHELINE_SYSTEM_HH

#include <deque>

#include "core/memory_system.hh"
#include "sim/stats.hh"

namespace pva
{

/** Configuration of the cache-line-fill baseline. */
struct CacheLineConfig
{
    unsigned lineWords = 32;      ///< 128-byte lines
    unsigned rasCycles = 2;
    unsigned casCycles = 2;
    unsigned burstCycles = 16;    ///< 128 bytes over the 64-bit bus
    unsigned maxOutstanding = 8;  ///< Bus transaction limit
    /**
     * When false (the paper's accounting), a strided command performs
     * floor(lineWords/stride)-elements-per-line fills, i.e. lines that
     * happen to hold a second element at non-power-of-two strides are
     * refetched. When true, each distinct line is fetched once (an
     * optimistic cache that keeps every line resident).
     */
    bool optimisticLineReuse = false;

    unsigned
    cyclesPerLine() const
    {
        return rasCycles + casCycles + burstCycles;
    }
};

/** Serial cache-line-fill memory system. */
class CacheLineSystem final : public MemorySystem
{
  public:
    CacheLineSystem(std::string name, const CacheLineConfig &config = {});

    bool trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                   const std::vector<Word> *write_data) override;
    void drainCompletionsInto(std::vector<Completion> &out) override;
    bool busy() const override;
    std::size_t inFlight() const override { return queue.size(); }
    SparseMemory &memory() override { return backing; }
    StatSet &stats() override { return statSet; }

    void tick(Cycle now) override;

    /** Wake contract: the head job's finishAt, or quiescent. */
    Cycle nextWakeAfter(Cycle now) const override;

    /** Distinct cache lines touched by @p cmd (the baseline's cost
     *  driver). */
    static unsigned distinctLines(const VectorCommand &cmd,
                                  unsigned line_words);

    /** Line fills @p cmd costs under the configured accounting. */
    unsigned lineFills(const VectorCommand &cmd) const;

    Scalar statCommands;
    Scalar statLineFills;

  private:
    struct Job
    {
        VectorCommand cmd;
        std::uint64_t tag;
        std::vector<Word> writeData;
        Cycle finishAt = 0;
        bool started = false;
    };

    void finish(Job &job);

    CacheLineConfig cfg;
    SparseMemory backing;
    std::deque<Job> queue;
    std::vector<Completion> completions;
    StatSet statSet;
    bool tickActivity = false; ///< Did the last tick change state?
};

} // namespace pva

#endif // PVA_BASELINES_CACHELINE_SYSTEM_HH
