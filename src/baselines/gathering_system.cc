#include "baselines/gathering_system.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

GatheringSystem::GatheringSystem(std::string name,
                                 const GatheringConfig &config)
    : MemorySystem(std::move(name)), cfg(config)
{
    statSet.addScalar("commands", &statCommands);
    statSet.addScalar("elements", &statElements);
    registerSimStats(statSet);
}

bool
GatheringSystem::trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                           const std::vector<Word> *write_data)
{
    if (queue.size() >= cfg.maxOutstanding)
        return false;
    if (!cmd.isRead &&
        (write_data == nullptr || write_data->size() < cmd.length)) {
        throw SimError(SimErrorKind::Config, name(), kNeverCycle,
                       "write command lacks write data");
    }
    Job job;
    job.cmd = cmd;
    job.tag = tag;
    if (!cmd.isRead)
        job.writeData = *write_data;
    queue.push_back(std::move(job));
    ++statCommands;
    return true;
}

void
GatheringSystem::finish(Job &job)
{
    Completion c;
    c.tag = job.tag;
    if (job.cmd.isRead) {
        c.data.resize(job.cmd.length);
        for (std::uint32_t i = 0; i < job.cmd.length; ++i)
            c.data[i] = backing.read(job.cmd.element(i));
    } else {
        for (std::uint32_t i = 0; i < job.cmd.length; ++i)
            backing.write(job.cmd.element(i), job.writeData[i]);
    }
    completions.push_back(std::move(c));
}

void
GatheringSystem::tick(Cycle now)
{
    tickActivity = false;
    if (queue.empty())
        return;
    Job &head = queue.front();
    if (!head.started) {
        head.finishAt = now + commandCycles(head.cmd);
        statElements += head.cmd.length;
        head.started = true;
        tickActivity = true;
    }
    if (now >= head.finishAt) {
        finish(head);
        queue.pop_front();
        tickActivity = true;
    }
}

Cycle
GatheringSystem::nextWakeAfter(Cycle now) const
{
    if (tickActivity)
        return now + 1;
    if (queue.empty())
        return kNeverCycle;
    const Job &head = queue.front();
    if (!head.started || head.finishAt <= now)
        return now + 1;
    return head.finishAt;
}

void
GatheringSystem::drainCompletionsInto(std::vector<Completion> &out)
{
    out.clear();
    std::swap(out, completions);
}

bool
GatheringSystem::busy() const
{
    return !queue.empty();
}

} // namespace pva
