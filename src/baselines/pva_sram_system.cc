// PvaSramSystem is header-only (a thin configuration wrapper over
// PvaUnit); this translation unit anchors the library target.
#include "baselines/pva_sram_system.hh"
