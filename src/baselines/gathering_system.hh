/**
 * @file
 * The "gathering pipelined serial SDRAM" baseline (section 6.1).
 *
 * A 16-module word-interleaved SDRAM system with a closed-page policy
 * that gathers vectors element by element: addresses issue serially,
 * one per cycle, but RAS latencies overlap with activity on other banks
 * for all but the first element of each command, and commands never
 * cross DRAM pages. Precharge is paid once at the start of each vector
 * command. Per 32-element command the cost is therefore
 * tRP + tRCD + tCL + L cycles.
 */

#ifndef PVA_BASELINES_GATHERING_SYSTEM_HH
#define PVA_BASELINES_GATHERING_SYSTEM_HH

#include <deque>

#include "core/memory_system.hh"
#include "sdram/device.hh"
#include "sim/stats.hh"

namespace pva
{

/** Configuration of the serial gathering baseline. */
struct GatheringConfig
{
    SdramTiming timing{};
    unsigned maxOutstanding = 8;
};

/** Serial element-gathering memory system. */
class GatheringSystem final : public MemorySystem
{
  public:
    GatheringSystem(std::string name, const GatheringConfig &config = {});

    bool trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                   const std::vector<Word> *write_data) override;
    void drainCompletionsInto(std::vector<Completion> &out) override;
    bool busy() const override;
    std::size_t inFlight() const override { return queue.size(); }
    SparseMemory &memory() override { return backing; }
    StatSet &stats() override { return statSet; }

    void tick(Cycle now) override;

    /** Wake contract: the head job's finishAt, or quiescent. */
    Cycle nextWakeAfter(Cycle now) const override;

    /**
     * Cycles one command occupies the serial pipeline: precharge + RAS
     * + CAS once per command, then one address cycle per element on the
     * shared bus (this is the serial address stream the PVA's broadcast
     * eliminates) plus the compacted data cycles (2 words/cycle), which
     * cannot overlap the next command's addresses on the multiplexed
     * bus.
     */
    unsigned
    commandCycles(const VectorCommand &cmd) const
    {
        return cfg.timing.tRP + cfg.timing.tRCD + cfg.timing.tCL +
               cmd.length + cmd.length / 2;
    }

    Scalar statCommands;
    Scalar statElements;

  private:
    struct Job
    {
        VectorCommand cmd;
        std::uint64_t tag;
        std::vector<Word> writeData;
        Cycle finishAt = 0;
        bool started = false;
    };

    void finish(Job &job);

    GatheringConfig cfg;
    SparseMemory backing;
    std::deque<Job> queue;
    std::vector<Completion> completions;
    StatSet statSet;
    bool tickActivity = false; ///< Did the last tick change state?
};

} // namespace pva

#endif // PVA_BASELINES_GATHERING_SYSTEM_HH
