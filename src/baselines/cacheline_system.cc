#include "baselines/cacheline_system.hh"

#include <algorithm>
#include <unordered_set>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

CacheLineSystem::CacheLineSystem(std::string name,
                                 const CacheLineConfig &config)
    : MemorySystem(std::move(name)), cfg(config)
{
    statSet.addScalar("commands", &statCommands);
    statSet.addScalar("lineFills", &statLineFills);
    registerSimStats(statSet);
}

unsigned
CacheLineSystem::distinctLines(const VectorCommand &cmd,
                               unsigned line_words)
{
    std::unordered_set<WordAddr> lines;
    for (std::uint32_t i = 0; i < cmd.length; ++i)
        lines.insert(cmd.element(i) / line_words);
    return static_cast<unsigned>(lines.size());
}

unsigned
CacheLineSystem::lineFills(const VectorCommand &cmd) const
{
    if (cfg.optimisticLineReuse || cmd.mode != VectorCommand::Mode::Stride)
        return distinctLines(cmd, cfg.lineWords);
    // The paper's accounting: floor(lineWords/stride) useful elements
    // per fetched line; one fill per element beyond that.
    unsigned per_line = cmd.stride >= cfg.lineWords
                            ? 1
                            : std::max(1u, cfg.lineWords / cmd.stride);
    return (cmd.length + per_line - 1) / per_line;
}

bool
CacheLineSystem::trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                           const std::vector<Word> *write_data)
{
    if (queue.size() >= cfg.maxOutstanding)
        return false;
    if (!cmd.isRead &&
        (write_data == nullptr || write_data->size() < cmd.length)) {
        throw SimError(SimErrorKind::Config, name(), kNeverCycle,
                       "write command lacks write data");
    }
    Job job;
    job.cmd = cmd;
    job.tag = tag;
    if (!cmd.isRead)
        job.writeData = *write_data;
    queue.push_back(std::move(job));
    ++statCommands;
    return true;
}

void
CacheLineSystem::finish(Job &job)
{
    Completion c;
    c.tag = job.tag;
    if (job.cmd.isRead) {
        c.data.resize(job.cmd.length);
        for (std::uint32_t i = 0; i < job.cmd.length; ++i)
            c.data[i] = backing.read(job.cmd.element(i));
    } else {
        for (std::uint32_t i = 0; i < job.cmd.length; ++i)
            backing.write(job.cmd.element(i), job.writeData[i]);
    }
    completions.push_back(std::move(c));
}

void
CacheLineSystem::tick(Cycle now)
{
    tickActivity = false;
    if (queue.empty())
        return;
    Job &head = queue.front();
    if (!head.started) {
        unsigned lines = lineFills(head.cmd);
        statLineFills += lines;
        head.finishAt = now + static_cast<Cycle>(lines) *
                                  cfg.cyclesPerLine();
        head.started = true;
        tickActivity = true;
    }
    if (now >= head.finishAt) {
        finish(head);
        queue.pop_front();
        tickActivity = true;
        // The next command starts on the following tick; the serial
        // controller processes one command at a time.
    }
}

Cycle
CacheLineSystem::nextWakeAfter(Cycle now) const
{
    if (tickActivity)
        return now + 1;
    if (queue.empty())
        return kNeverCycle;
    const Job &head = queue.front();
    if (!head.started || head.finishAt <= now)
        return now + 1;
    return head.finishAt;
}

void
CacheLineSystem::drainCompletionsInto(std::vector<Completion> &out)
{
    out.clear();
    std::swap(out, completions);
}

bool
CacheLineSystem::busy() const
{
    return !queue.empty();
}

} // namespace pva
