#include "core/pla.hh"

#include "sim/logging.hh"

namespace pva
{

FirstHitPla::FirstHitPla(unsigned m, Variant variant)
    : mBits(m), plaVariant(variant)
{
    const std::uint32_t M = 1u << m;

    // The K1 side table is always built: delta() needs it, and the
    // K1Multiply variant derives Ki from it.
    k1Table.resize(M);
    for (std::uint32_t sm = 0; sm < M; ++sm) {
        K1Entry &e = k1Table[sm];
        StrideDecomposition sd = decomposeStride(sm, m);
        if (sd.wholeVectorInOneBank()) {
            e.oneBank = true;
            e.delta = 1;
            continue;
        }
        e.s = sd.s;
        e.delta = sd.delta;
        e.k1 = computeK1(sm, m);
    }

    if (variant == Variant::FullKi) {
        kiTable.resize(static_cast<std::size_t>(M) * M);
        for (std::uint32_t sm = 0; sm < M; ++sm) {
            for (std::uint32_t d = 0; d < M; ++d) {
                KiEntry &e = kiTable[sm * M + d];
                if (d == 0) {
                    e.hit = true;
                    e.ki = 0;
                    continue;
                }
                const K1Entry &k1e = k1Table[sm];
                if (k1e.oneBank)
                    continue; // only d == 0 hits
                if (d & ((1u << k1e.s) - 1))
                    continue; // lemma 4.2
                e.hit = true;
                e.ki = static_cast<std::uint32_t>(
                    (static_cast<std::uint64_t>(k1e.k1) * (d >> k1e.s)) %
                    k1e.delta);
            }
        }
    }
}

FirstHit
FirstHitPla::lookup(std::uint32_t stride_mod_m, std::uint32_t d,
                    std::uint32_t length) const
{
    const std::uint32_t M = 1u << mBits;
    if (stride_mod_m >= M || d >= M)
        panic("PLA lookup out of range: sm=%u d=%u M=%u", stride_mod_m, d,
              M);
    if (length == 0)
        return {};

    std::uint32_t ki;
    bool hit;
    if (plaVariant == Variant::FullKi) {
        const KiEntry &e = kiTable[stride_mod_m * M + d];
        hit = e.hit;
        ki = e.ki;
    } else {
        const K1Entry &e = k1Table[stride_mod_m];
        if (d == 0) {
            hit = true;
            ki = 0;
        } else if (e.oneBank || (d & ((1u << e.s) - 1))) {
            hit = false;
            ki = 0;
        } else {
            hit = true;
            ki = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(e.k1) * (d >> e.s)) % e.delta);
        }
    }
    if (!hit || ki >= length)
        return {};
    return {true, ki};
}

std::uint32_t
FirstHitPla::delta(std::uint32_t stride_mod_m) const
{
    const std::uint32_t M = 1u << mBits;
    if (stride_mod_m >= M)
        panic("PLA delta lookup out of range: sm=%u", stride_mod_m);
    return k1Table[stride_mod_m].delta;
}

std::size_t
FirstHitPla::tableEntries() const
{
    return plaVariant == Variant::FullKi ? kiTable.size() : k1Table.size();
}

std::size_t
FirstHitPla::productTerms() const
{
    if (plaVariant == Variant::FullKi) {
        std::size_t terms = 0;
        for (const KiEntry &e : kiTable)
            if (e.hit)
                ++terms;
        return terms;
    }
    return k1Table.size();
}

} // namespace pva
