/**
 * @file
 * The PVA FirstHit()/NextHit() algorithms of chapter 4.
 *
 * Given a broadcast vector V = <B, S, L>, every bank controller must
 * determine — without expanding the vector — the index of the first
 * element that lands in its bank (FirstHit) and the constant index
 * increment between consecutive elements in the same bank (NextHit).
 *
 * This module implements:
 *  - the brute-force reference (definitional; used by tests),
 *  - the fast word-interleave algorithm of Theorems 4.3/4.4
 *    (FirstHit = (K1 * i) mod 2^(m-s), NextHit = 2^(m-s)),
 *  - the general recursive NextHit of section 4.1.2 for cache-line
 *    interleaved systems, and
 *  - the logical-bank transformation of section 4.1.3 that reduces
 *    block/cache-line interleave (and wide banks) to word interleave.
 */

#ifndef PVA_CORE_FIRSTHIT_HH
#define PVA_CORE_FIRSTHIT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/vector_command.hh"
#include "sdram/geometry.hh"
#include "sim/types.hh"

namespace pva
{

/** Result of FirstHit(V, b): index of the first element in bank b. */
struct FirstHit
{
    bool hit = false;
    std::uint32_t index = 0;

    bool operator==(const FirstHit &o) const
    {
        return hit == o.hit && (!hit || index == o.index);
    }
};

/** The paper's S = sigma * 2^s decomposition of a stride modulo M. */
struct StrideDecomposition
{
    std::uint32_t strideModM; ///< S mod M (lemma 4.1: all that matters)
    unsigned s;               ///< trailing zeros of (S mod M)
    std::uint32_t sigma;      ///< odd part of (S mod M)
    std::uint32_t delta;      ///< NextHit = 2^(m-s) (theorem 4.4)

    /** True iff the stride is congruent to 0 mod M: the whole vector
     *  stays in the one bank holding V.B. */
    bool
    wholeVectorInOneBank() const
    {
        return strideModM == 0;
    }
};

/** Decompose stride @p stride for an M = 2^m bank system. */
StrideDecomposition decomposeStride(std::uint32_t stride, unsigned m);

/**
 * K1 of theorem 4.3: the smallest vector index that hits the bank at
 * distance 2^s from the base bank. Defined for stride_mod_m != 0.
 */
std::uint32_t computeK1(std::uint32_t stride_mod_m, unsigned m);

/**
 * Fast FirstHit for a word-interleaved system of M = 2^m banks
 * (theorem 4.3). O(1): a table lookup plus a multiply-and-mask in
 * hardware; here computed directly.
 */
FirstHit firstHitWord(const VectorCommand &v, unsigned bank, unsigned m);

/** NextHit for word interleave (theorem 4.4): 2^(m-s); 1 if S mod M == 0
 *  (every element stays in one bank). */
std::uint32_t nextHitWord(std::uint32_t stride, unsigned m);

/**
 * Brute-force FirstHit reference: walk the vector until an element maps
 * to @p bank under @p geo. Definitional; O(L).
 */
FirstHit firstHitBrute(const VectorCommand &v, unsigned bank,
                       const Geometry &geo);

/**
 * Brute-force NextHit reference for cache-line interleave: least p >= 1
 * such that (theta + p*stride) mod NM < N, i.e. the revisit period of a
 * bank's block frame. Returns nullopt if no revisit within NM steps
 * (cannot happen for stride < NM, asserted in tests).
 */
std::optional<std::uint32_t> nextHitBrute(std::uint32_t theta,
                                          std::uint32_t stride, unsigned n_words,
                                          std::uint32_t nm);

/**
 * The recursive NextHit of section 4.1.2 (the paper's C listing, with
 * the implicit global N made explicit). @p theta is the offset of the
 * known hit within the bank's block (0 <= theta < n_words), @p stride
 * the vector stride mod NM (0 < stride < nm), @p nm = N*M.
 */
std::uint32_t nextHitRecursive(std::uint32_t theta, std::uint32_t stride,
                               unsigned n_words, std::uint32_t nm);

/**
 * All vector indices that hit @p bank, in increasing order — the bank's
 * sub-vector. Uses the logical-bank transformation for N > 1: physical
 * bank b owns logical word-interleaved banks [b*N, (b+1)*N) of an
 * (N*M)-bank system, each contributing an arithmetic sequence
 * K_i + j*delta' that is merged here.
 */
std::vector<std::uint32_t> expandBankIndices(const VectorCommand &v,
                                             unsigned bank,
                                             const Geometry &geo);

/**
 * The sub-vector of @p bank expressed as the hardware sees it for word
 * interleave: first index and constant increment (count derived from L).
 * Only valid for N == 1 geometries.
 */
struct SubVector
{
    bool hit = false;
    std::uint32_t firstIndex = 0;
    std::uint32_t delta = 1;
    std::uint32_t count = 0;

    /** Vector index of the j-th element of this bank's sub-vector. */
    std::uint32_t
    index(std::uint32_t j) const
    {
        return firstIndex + delta * j;
    }
};

/** Compute the word-interleave sub-vector of @p bank. */
SubVector subVectorWord(const VectorCommand &v, unsigned bank, unsigned m);

} // namespace pva

#endif // PVA_CORE_FIRSTHIT_HH
