/**
 * @file
 * The PVA Bank Controller (section 5.2.2).
 *
 * One BC owns one external SDRAM (or SRAM) bank and, for every vector
 * command broadcast on the Vector Bus, independently identifies and
 * accesses the sub-vector that lives in its bank. Its subcomponents
 * mirror figure 6 of the paper:
 *
 *  - FirstHit Predictor (FHP): snoops broadcasts; 1 cycle to decide
 *    hit/no-hit and, for power-of-two strides, to compute the firsthit
 *    address.
 *  - Request FIFO (RQF) over a Register File (RF): 8 entries buffering
 *    requests not yet assigned to vector contexts.
 *  - FirstHit Calculate (FHC): a 2-cycle multiply-and-add that finishes
 *    the firsthit address for non-power-of-two strides, working in
 *    parallel with the scheduler so its latency hides when the BC is
 *    busy.
 *  - Access Scheduler (SCHED) with 4 Vector Contexts (VCs) and
 *    daisy-chained Scheduling Policy Units: expands each sub-vector by
 *    shift-and-add, reorders activates/precharges above reads/writes
 *    when they do not conflict with rows in use, and applies the
 *    ManageRow() open-row policy with per-internal-bank autoprecharge
 *    predictors.
 *  - Staging Units: per-transaction line buffers for gathered read data
 *    and scattered write data, driving the wired-OR
 *    transaction-complete lines.
 *
 * Bypass paths (section 5.2.3): with an empty RQF a power-of-two-stride
 * request goes straight to a VC one cycle early, and a lone
 * non-power-of-two request skips the register-file writeback cycle.
 *
 * Hot-path notes (docs/PERFORMANCE.md): the RQF and VC window live in
 * RingDeques so the busy tick path recycles queue slots instead of
 * allocating; staging units reset in place, keeping their line-buffer
 * capacity across transactions; and the BC caches a concrete
 * SdramDevice pointer so every per-cycle device query (row predicates,
 * refresh tick, restimer probes) devirtualizes — the virtual BankDevice
 * interface is only exercised for the SRAM comparison system.
 */

#ifndef PVA_CORE_BANK_CONTROLLER_HH
#define PVA_CORE_BANK_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/firsthit.hh"
#include "core/pla.hh"
#include "core/vector_command.hh"
#include "sdram/device.hh"
#include "sim/component.hh"
#include "sim/fault.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"

namespace pva
{

/** Open-row management policy (ablation of the ManageRow heuristics). */
enum class RowPolicy
{
    Managed,     ///< The paper's predictor-driven ManageRow() algorithm
    AlwaysClose, ///< Auto-precharge every access (closed-page policy)
    AlwaysOpen,  ///< Never auto-precharge (open-page policy)
};

/** Structural configuration of a bank controller. */
struct BcConfig
{
    unsigned fifoEntries = 8;     ///< Request FIFO / Register File depth
    unsigned vectorContexts = 4;  ///< VC window size
    unsigned lineWords = 32;      ///< Elements per cache-line command
    unsigned transactions = 8;    ///< Outstanding bus transactions
    unsigned fhcLatency = 2;      ///< Multiply-and-add cycles (section 5.3)
    bool bypassEnabled = true;    ///< Section 5.2.3 bypass paths
    RowPolicy rowPolicy = RowPolicy::Managed;
    FirstHitPla::Variant plaVariant = FirstHitPla::Variant::FullKi;
};

/** One bank's controller. */
class BankController final : public Component
{
  public:
    BankController(std::string name, unsigned bank, const Geometry &geo,
                   const BcConfig &config, BankDevice &dev);

    /**
     * FHP snoop: called in the cycle a VEC_READ/VEC_WRITE broadcast
     * appears on the bus. Decides participation and queues the request.
     */
    void observeVecCommand(Cycle now, const VectorCommand &cmd);

    /**
     * Deliver scattered write data for transaction @p txn (the full
     * cache line as sent during the STAGE_WRITE data cycles; the BC
     * keeps the words its sub-vector needs).
     */
    void loadWriteLine(std::uint8_t txn, const std::vector<Word> &line);

    /** Has this BC finished its share of transaction @p txn? (Its
     *  contribution to the wired-OR transaction-complete line.)
     *  Polled per gathering transaction per cycle, so inline. */
    bool
    txnComplete(std::uint8_t txn) const
    {
        const Staging &st = staging[txn];
        return st.active && st.got >= st.expected;
    }

    /** Copy this BC's gathered words for @p txn into the line buffer
     *  @p out (indexed by vector element position). */
    void collectInto(std::uint8_t txn, std::vector<Word> &out) const;

    /** Free the staging resources of @p txn after the line is staged. */
    void releaseTxn(std::uint8_t txn);

    void tick(Cycle now) override;

    /**
     * Wake contract (sim/component.hh): next cycle this BC could act.
     * Any tick that did work answers now + 1; an idle-but-pending BC
     * answers the earliest device timing event or FIFO visibility
     * cycle; a fully idle BC answers kNeverCycle. Fault injection
     * draws from its RNG stream once per tick, so an attached injector
     * pins the BC to every-cycle ticking to keep the stream
     * tick-indexed (and fault timelines identical across modes).
     *
     * The same contract backs both the Simulation event core and the
     * owning PvaUnit's batched per-BC ticking (its cached wake cycles).
     */
    Cycle nextWakeAfter(Cycle now) const override;

    /**
     * Bring the occupancy statistics current through cycle @p now - 1,
     * crediting every not-yet-accounted cycle with the frozen queue
     * state. Cycles this BC did not tick — whether skipped by event
     * clocking or by the front end's batched per-BC ticking — left the
     * queues untouched, so the frozen credit reproduces the exhaustive
     * every-cycle accounting exactly. Called before anything mutates
     * the BC in cycle @p now; ticking accounts @p now itself.
     */
    void
    creditFrozen(Cycle now)
    {
        if (now <= accountedCycles)
            return;
        Cycle gap = now - accountedCycles;
        statVcOccupancy += vcs.size() * gap;
        if (vcs.size() >= cfg.vectorContexts)
            statVcFullCycles += gap;
        statFifoOccupancy += fifo.size() * gap;
        accountedCycles = now;
    }

    /** Nothing queued, scheduled, or in flight. */
    bool idle() const;

    /** Vector Contexts currently holding a request (0..vectorContexts). */
    unsigned vcsInUse() const { return static_cast<unsigned>(vcs.size()); }

    /** Request FIFO entries currently occupied (0..fifoEntries). */
    unsigned fifoDepth() const
    {
        return static_cast<unsigned>(fifo.size());
    }

    /**
     * Enable fault injection for this BC (scheduler stalls, dropped
     * read returns, corrupted FirstHit results) on stream @p stream.
     * Dropped returns are detected and re-fetched by the recovery
     * logic in tick(); corruption is left for the TimingChecker.
     */
    void enableFaults(const FaultPlan &plan, std::uint64_t stream);

    const Geometry &geometry() const { return geo; }
    BankDevice &device() { return dev; }

    /** @name Statistics @{ */
    Scalar statCommandsSeen;
    Scalar statCommandsHit;
    Scalar statElements;
    Scalar statBypasses;
    Scalar statSchedActiveCycles;
    Scalar statStallCycles;       ///< Fault-injected scheduler stalls
    Scalar statDroppedReturns;    ///< Fault-injected lost read words
    Scalar statRecoveries;        ///< Sub-vector re-fetches issued
    Scalar statCorruptedFirstHits; ///< Fault-injected FHP corruptions
    Scalar statVcOccupancy;       ///< Sum over ticks of occupied VCs
    Scalar statVcFullCycles;      ///< Ticks with every VC occupied
    Scalar statFifoOccupancy;     ///< Sum over ticks of RQF entries
    Scalar statFifoPeak;          ///< Deepest RQF occupancy seen
    /** @} */

    void registerStats(StatSet &set, const std::string &prefix) const;

  private:
    /** A queued vector request (Register File entry). */
    struct Request
    {
        VectorCommand cmd;
        SubVector sub;
        Cycle visibleAt; ///< When the scheduler may dequeue it (ACC set)
        /** Explicit element list for Indirect/BitReversal commands
         *  (parallel arrays: device address, line slot). */
        std::vector<WordAddr> explicitAddrs;
        std::vector<std::uint8_t> explicitSlots;
    };

    /** A vector request being expanded by the access scheduler. */
    struct VectorContext
    {
        VectorCommand cmd;
        SubVector sub;
        std::uint32_t issued = 0; ///< Elements already sent to the device
        WordAddr firstAddr = 0;   ///< Address of the firsthit element
        WordAddr stepWords = 0;   ///< stride << (m - s), the VC increment
        bool firstOpDone = false; ///< Autoprecharge predictor captured
        std::vector<WordAddr> explicitAddrs;
        std::vector<std::uint8_t> explicitSlots;

        std::uint32_t
        count() const
        {
            return explicitAddrs.empty()
                ? sub.count
                : static_cast<std::uint32_t>(explicitAddrs.size());
        }

        bool done() const { return issued >= count(); }

        /** Device address of sub-vector element @p j. */
        WordAddr
        addrAt(std::uint32_t j) const
        {
            return explicitAddrs.empty() ? firstAddr + stepWords * j
                                         : explicitAddrs[j];
        }

        /** Line slot (vector index) of sub-vector element @p j. */
        std::uint32_t
        slotAt(std::uint32_t j) const
        {
            return explicitAddrs.empty() ? sub.index(j)
                                         : explicitSlots[j];
        }
    };

    /** Per-transaction staging state. */
    struct Staging
    {
        bool active = false;
        bool isRead = true;
        std::uint32_t expected = 0;
        std::uint32_t got = 0;
        std::vector<Word> line;  ///< Read gather / write scatter data
        std::vector<std::uint8_t> valid; ///< Read slots gathered so far
        bool haveWriteData = false;
        /** The command and sub-vector this BC committed to, captured
         *  at observe time for drop-recovery (populated only under
         *  fault injection; parallel arrays addr/slot). */
        VectorCommand cmd;
        std::vector<WordAddr> respAddrs;
        std::vector<std::uint8_t> respSlots;

        bool complete() const { return !active || got >= expected; }

        /** Return to the inactive state keeping buffer capacity. */
        void
        reset()
        {
            active = false;
            isRead = true;
            expected = 0;
            got = 0;
            haveWriteData = false;
            respAddrs.clear();
            respSlots.clear();
        }
    };

    void drainDeviceReturns(Cycle now);
    void dequeueIntoVc(Cycle now);
    bool tryActivatePrecharge(Cycle now);
    bool tryReadWrite(Cycle now);

    /** Account cycle @p now's end-of-tick occupancy. */
    void
    accountCycle(Cycle now)
    {
        statVcOccupancy += vcs.size();
        if (vcs.size() >= cfg.vectorContexts)
            ++statVcFullCycles;
        statFifoOccupancy += fifo.size();
        if (fifo.size() > statFifoPeak.value())
            statFifoPeak += fifo.size() - statFifoPeak.value();
        accountedCycles = now + 1;
    }

    /** Re-fetch gathered-but-lost elements of quiescent, incomplete
     *  read transactions (fault-injection recovery path). */
    void maybeRecover(Cycle now);

    /** Is any queued or scheduled work still tagged @p txn? */
    bool hasWorkFor(std::uint8_t txn) const;

    /** Row-slot index of device coordinates @p c under the device's
     *  backend (the internal bank on legacy, (ibank, subarray) on
     *  SALP) — the granularity all row predicates work at. */
    unsigned
    slotOf(const DeviceCoords &c) const
    {
        return bpol.slotOf(c.internalBank, c.row);
    }

    /** Does any VC other than @p except have its next element on the
     *  open row of @p target's row slot? (bank_hit/morehit_predict) */
    bool otherVcHitsOpenRow(const DeviceCoords &target,
                            const VectorContext *except) const;

    /**
     * Does any VC older than vcs[@p vc_index] have its next element on
     * the open row of @p target's row slot? Used to gate precharges:
     * blocking on *younger* VCs' hit predictions would let a
     * polarity-stalled young VC deadlock an old one (the daisy chain
     * gives the oldest pending operation priority).
     */
    bool olderVcHitsOpenRow(const DeviceCoords &target,
                            std::size_t vc_index) const;

    /** Does any VC's next element map to @p target's row slot with a
     *  row different from its open row? (bank_close_predict) */
    bool anyVcMissesOpenRow(const DeviceCoords &target) const;

    /** ManageRow(): should the read/write for @p vc at @p c auto-
     *  precharge its row? */
    bool decideAutoPrecharge(const VectorContext &vc,
                             const DeviceCoords &c);

    /** @name Devirtualized device access
     * The concrete device type is fixed at construction; caching the
     * SdramDevice downcast turns the per-cycle row predicates, refresh
     * tick and restimer probes into direct (mostly inline) calls. The
     * virtual fallback serves the SRAM comparison system.
     * @{ */
    bool
    devIsRowOpen(unsigned ibank, std::uint32_t row) const
    {
        return sdram ? sdram->isRowOpen(ibank, row)
                     : dev.isRowOpen(ibank, row);
    }

    /** Does the row slot holding @p c have some row open? */
    bool
    devSlotRowOpen(const DeviceCoords &c) const
    {
        return sdram ? sdram->slotRowOpen(c.internalBank, c.row)
                     : dev.slotRowOpen(c.internalBank, c.row);
    }

    /** The row open in @p c's slot (valid iff devSlotRowOpen()). */
    std::uint32_t
    devOpenRowAt(const DeviceCoords &c) const
    {
        return sdram ? sdram->openRowAt(c.internalBank, c.row)
                     : dev.openRowAt(c.internalBank, c.row);
    }

    std::uint32_t
    devLastRowAt(const DeviceCoords &c) const
    {
        return sdram ? sdram->lastRowAt(c.internalBank, c.row)
                     : dev.lastRowAt(c.internalBank, c.row);
    }

    bool
    devCanIssue(const DeviceOp &op, Cycle now) const
    {
        return sdram ? sdram->canIssue(op, now) : dev.canIssue(op, now);
    }

    void
    devIssue(const DeviceOp &op, Cycle now)
    {
        if (sdram)
            sdram->issue(op, now);
        else
            dev.issue(op, now);
    }

    void
    devTick(Cycle now)
    {
        if (sdram)
            sdram->tick(now);
        else
            dev.tick(now);
    }

    Cycle
    devNextTimingEventAfter(Cycle now) const
    {
        return sdram ? sdram->nextTimingEventAfter(now)
                     : dev.nextTimingEventAfter(now);
    }
    /** @} */

    const Geometry &geo;
    BcConfig cfg;
    BankDevice &dev;
    SdramDevice *sdram = nullptr; ///< Concrete downcast of dev (or null)
    BackendPolicy bpol;           ///< Copy of dev's resolved policy
    FirstHitPla pla;
    unsigned bankIndex = 0;

    RingDeque<Request> fifo;      ///< RQF (oldest at front)
    RingDeque<VectorContext> vcs; ///< Oldest at front (highest prio)
    std::vector<Staging> staging; ///< Indexed by transaction id
    std::vector<bool> autoPrePredict; ///< Per row slot (section 5.2.2)
    std::unique_ptr<FaultInjector> injector;

    /** Scratch element lists for observeVecCommand's explicit-mode
     *  expansion (swapped into the queued Request, so capacity
     *  circulates instead of being reallocated per command). */
    std::vector<WordAddr> scratchAddrs;
    std::vector<std::uint8_t> scratchSlots;

    Cycle fhcBusyUntil = 0; ///< FHC pipeline occupancy
    Cycle lastDequeue = kNeverCycle;
    Cycle accountedCycles = 0; ///< Cycles [0, this) occupancy-accounted
    bool tickActivity = false; ///< Did the last tick change state?

    bool lastDirRead = true; ///< SDRAM data bus polarity
    bool anyDirYet = false;

    /** @name Trace occupancy caches
     * Last counter values emitted, so the trace records occupancy
     * only when it changes. Unused (but harmless) in untraced builds.
     * @{ */
    std::size_t traceLastVcs = SIZE_MAX;
    std::size_t traceLastFifo = SIZE_MAX;
    /** @} */
};

} // namespace pva

#endif // PVA_CORE_BANK_CONTROLLER_HH
