#include "core/pva_unit.hh"

#include "sdram/sram_device.hh"
#include "sdram/timing_checker.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/trace.hh"

namespace pva
{

PvaUnit::PvaUnit(std::string name, const PvaConfig &config)
    : MemorySystem(std::move(name)), cfg(config),
      vectorBus(config.bc.lineWords), txns(config.bc.transactions),
      bcScanFrom(config.bc.transactions, 0)
{
    const unsigned banks = cfg.geometry.banks();
    const BackendPolicy pol = cfg.backendPolicy();
    if (cfg.timingCheck) {
        checker = std::make_unique<TimingChecker>(
            cfg.geometry, cfg.timing, banks, cfg.bc.transactions,
            cfg.bc.lineWords, pol);
    }
    devices.reserve(banks);
    bcs.reserve(banks);
    for (unsigned b = 0; b < banks; ++b) {
        std::string dev_name = csprintf("%s.dev%u", this->name().c_str(), b);
        if (cfg.useSram) {
            devices.push_back(std::make_unique<SramDevice>(
                dev_name, b, cfg.geometry, backing));
        } else {
            auto dev = std::make_unique<SdramDevice>(
                dev_name, b, cfg.geometry, cfg.timing, backing, pol);
            if (cfg.faults.enabled())
                dev->enableFaults(cfg.faults, b * 2);
            devices.push_back(std::move(dev));
        }
        devices.back()->setChecker(checker.get());
        bcs.push_back(std::make_unique<BankController>(
            csprintf("%s.bc%u", this->name().c_str(), b), b, cfg.geometry,
            cfg.bc, *devices.back()));
        if (cfg.faults.enabled())
            bcs.back()->enableFaults(cfg.faults, b * 2 + 1);
    }
    bcWake.assign(banks, 0);
    submitOrder.reserve(cfg.bc.transactions);
    linePool.reserve(cfg.bc.transactions);

    vectorBus.registerStats(statSet, "bus");
    if (checker)
        checker->registerStats(statSet, "checker");
    statSet.addScalar("frontend.reads", &statReads);
    statSet.addScalar("frontend.writes", &statWrites);
    statSet.addScalar("frontend.ctxOccupancy", &statCtxOccupancy);
    statSet.addScalar("frontend.ctxFullCycles", &statCtxFullCycles);
    statSet.addDistribution("frontend.readLatency", &statReadLatency);
    statSet.addDistribution("frontend.writeLatency", &statWriteLatency);
    registerSimStats(statSet);
    for (unsigned b = 0; b < banks; ++b) {
        bcs[b]->registerStats(statSet, csprintf("bc%u", b));
        if (!cfg.useSram) {
            static_cast<SdramDevice *>(devices[b].get())
                ->registerStats(statSet, csprintf("dev%u", b));
        }
    }

    PVA_TRACE_BLOCK(
        // One trace "process" per memory system, one track per
        // component. Registration happens once here; the hot paths
        // only ever touch the resulting integer ids.
        if (trace::TraceSession *s = trace::session()) {
            const std::string &proc = this->name();
            setTraceTrack(s->registerTrack(proc, "frontend"));
            vectorBus.setTraceTrack(s->registerTrack(proc, "bus"));
            txnTracks.assign(txns.size(), 0);
            for (std::size_t i = 0; i < txns.size(); ++i) {
                txnTracks[i] =
                    s->registerTrack(proc, csprintf("txn%zu", i));
            }
            for (unsigned b = 0; b < banks; ++b) {
                bcs[b]->setTraceTrack(
                    s->registerTrack(proc, csprintf("bc%u", b)));
                devices[b]->setTraceTrack(
                    s->registerTrack(proc, csprintf("dev%u", b)));
            }
        });
}

PvaUnit::~PvaUnit() = default;

bool
PvaUnit::trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                   const std::vector<Word> *write_data)
{
    if (cmd.length == 0 || cmd.length > cfg.bc.lineWords) {
        throw SimError(SimErrorKind::Config, name(), lastTickCycle,
                       csprintf("vector command length %u out of range "
                                "(1..%u)", cmd.length, cfg.bc.lineWords));
    }
    if (!cmd.isRead &&
        (write_data == nullptr || write_data->size() < cmd.length)) {
        throw SimError(SimErrorKind::Config, name(), lastTickCycle,
                       "write command lacks write data");
    }

    for (std::uint8_t id = 0; id < txns.size(); ++id) {
        if (txns[id].state != TxnState::Free)
            continue;
        Txn &t = txns[id];
        t.cmd = cmd;
        t.cmd.txn = id;
        t.tag = tag;
        t.state = cmd.isRead ? TxnState::QueuedRead : TxnState::QueuedWrite;
        t.acceptedAt = lastTickCycle;
        if (!cmd.isRead)
            t.writeData = *write_data;
        else
            t.writeData.clear();
        submitOrder.pushBack() = id;
        ++activeTxns;
        if (cmd.isRead)
            ++statReads;
        else
            ++statWrites;
        PVA_TRACE_BEGIN(txnTrack(id), t.acceptedAt,
                        cmd.isRead ? "read" : "write", "stride",
                        cmd.stride, "len", cmd.length);
        return true;
    }
    return false;
}

bool
PvaUnit::allBcsComplete(std::uint8_t id)
{
    unsigned &from = bcScanFrom[id];
    for (; from < bcs.size(); ++from) {
        if (!bcs[from]->txnComplete(id))
            return false;
    }
    return true;
}

void
PvaUnit::finishRead(std::uint8_t id, Cycle now)
{
    Txn &t = txns[id];
    statReadLatency.sample(now - t.acceptedAt);
    Completion &c = completions.emplace_back();
    c.tag = t.tag;
    c.data = takeLine();
    c.data.assign(t.cmd.length, 0);
    for (const auto &bc : bcs)
        bc->collectInto(id, c.data);
    if (checker) {
        checker->verifyGather(t.cmd, c.data, now);
        checker->releaseTxn(id);
    }
    for (const auto &bc : bcs)
        bc->releaseTxn(id);
    t.state = TxnState::Free;
    --activeTxns;
    PVA_TRACE_END(txnTrack(id), now, "read", "latency",
                  now - t.acceptedAt);
}

void
PvaUnit::finishWrite(std::uint8_t id, Cycle now)
{
    Txn &t = txns[id];
    statWriteLatency.sample(now - t.acceptedAt);
    if (checker) {
        checker->verifyScatter(t.cmd, t.writeData, now);
        checker->releaseTxn(id);
    }
    Completion &c = completions.emplace_back();
    c.tag = t.tag;
    c.data.clear();
    for (const auto &bc : bcs)
        bc->releaseTxn(id);
    t.state = TxnState::Free;
    --activeTxns;
    PVA_TRACE_END(txnTrack(id), now, "write", "latency",
                  now - t.acceptedAt);
}

void
PvaUnit::tick(Cycle now)
{
    lastTickCycle = now;
    tickActivity = false;

    // BC occupancy accounting is lazy: each controller credits its own
    // sat-out cycles at the top of its tick, and observeVecCommand
    // credits before a broadcast grows the FIFO. A controller that
    // sleeps to the end of the run needs no credit at all — it could
    // only sleep that long with empty queues, whose frozen
    // contribution is zero.

    // --- 1. Untimed/timed state transitions (observing BC state as of
    //        the end of the previous cycle). ---------------------------
    for (std::uint8_t id = 0; id < txns.size(); ++id) {
        Txn &t = txns[id];
        switch (t.state) {
          case TxnState::Gathering:
            if (allBcsComplete(id)) {
                t.state = TxnState::StagePending;
                tickActivity = true;
                PVA_TRACE_INSTANT(txnTrack(id), now, "gathered");
            }
            break;
          case TxnState::Staging:
            if (now >= t.readyAt) {
                finishRead(id, now);
                tickActivity = true;
            }
            break;
          case TxnState::WriteData:
            if (now >= t.readyAt) {
                t.state = TxnState::VecWritePending;
                tickActivity = true;
            }
            break;
          case TxnState::Scattering:
            if (allBcsComplete(id)) {
                finishWrite(id, now);
                tickActivity = true;
            }
            break;
          default:
            break;
        }
    }

    // --- 2. Bus arbitration: at most one request cycle. ---------------
    if (vectorBus.requestFree(now)) {
        // Priority 1: stage completed reads (frees transaction slots).
        std::uint8_t chosen = 0;
        bool found = false;
        for (std::uint8_t id = 0; id < txns.size(); ++id) {
            if (txns[id].state == TxnState::StagePending) {
                chosen = id;
                found = true;
                break;
            }
        }
        if (found) {
            vectorBus.drive(now, {BusOpcode::StageRead, txns[chosen].cmd,
                                  chosen});
            txns[chosen].state = TxnState::Staging;
            txns[chosen].readyAt = now + vectorBus.dataCycles();
            tickActivity = true;
            PVA_TRACE_INSTANT(txnTrack(chosen), now, "stage");
        } else {
            // Priority 2: broadcast VEC_WRITE for writes whose data
            // cycles have finished.
            for (std::uint8_t id = 0; id < txns.size(); ++id) {
                if (txns[id].state == TxnState::VecWritePending) {
                    chosen = id;
                    found = true;
                    break;
                }
            }
            if (found) {
                Txn &t = txns[chosen];
                vectorBus.drive(now, {BusOpcode::VecWrite, t.cmd, chosen});
                if (checker)
                    checker->beginTxn(t.cmd);
                bcScanFrom[chosen] = 0;
                wakeAllBcs(now);
                for (const auto &bc : bcs)
                    bc->observeVecCommand(now, t.cmd);
                t.state = TxnState::Scattering;
                tickActivity = true;
                PVA_TRACE_INSTANT(txnTrack(chosen), now, "scatter");
            } else if (!submitOrder.empty()) {
                // Priority 3: start the oldest queued command.
                std::uint8_t id = submitOrder.front();
                Txn &t = txns[id];
                if (t.state == TxnState::QueuedRead) {
                    submitOrder.popFront();
                    vectorBus.drive(now, {BusOpcode::VecRead, t.cmd, id});
                    if (checker)
                        checker->beginTxn(t.cmd);
                    bcScanFrom[id] = 0;
                    wakeAllBcs(now);
                    for (const auto &bc : bcs)
                        bc->observeVecCommand(now, t.cmd);
                    t.state = TxnState::Gathering;
                    tickActivity = true;
                    PVA_TRACE_INSTANT(txnTrack(id), now, "broadcast");
                } else if (t.state == TxnState::QueuedWrite) {
                    submitOrder.popFront();
                    vectorBus.drive(now,
                                    {BusOpcode::StageWrite, t.cmd, id});
                    wakeAllBcs(now);
                    for (const auto &bc : bcs)
                        bc->loadWriteLine(id, t.writeData);
                    t.state = TxnState::WriteData;
                    t.readyAt = now + vectorBus.dataCycles();
                    tickActivity = true;
                    PVA_TRACE_INSTANT(txnTrack(id), now, "write_data");
                }
            }
        }
    }

    // --- 3. Clock the bank controllers (and through them the DRAMs). --
    // Batched: skip controllers whose cached wake (their own
    // nextWakeAfter answer, reset to `now` by any broadcast above) is
    // still in the future — their state provably cannot change.
    const bool batching = cfg.batchTicking;
    for (std::size_t b = 0; b < bcs.size(); ++b) {
        if (batching && bcWake[b] > now)
            continue;
        BankController &bc = *bcs[b];
        bc.tick(now);
        bcWake[b] = bc.nextWakeAfter(now);
    }

    // Context-occupancy accounting (end-of-tick in-flight count).
    std::size_t active = activeTxns;
    statCtxOccupancy += active;
    if (active >= txns.size())
        ++statCtxFullCycles;
    lastProcessedTick = now;
    tickedYet = true;

    PVA_TRACE_BLOCK(
        if (traceTrack() != 0 && active != traceLastActive) {
            traceLastActive = active;
            PVA_TRACE_COUNTER(traceTrack(), now, "inFlight", active);
        });
}

void
PvaUnit::onCycleBegin(Cycle now)
{
    // Event clocking skipped (now - lastProcessedTick - 1) cycles with
    // all queues frozen; credit the per-cycle occupancy stats before
    // anything (trySubmit, observeVecCommand) mutates this cycle. Each
    // BC keeps its own accounting watermark, which also covers cycles
    // the batched tick loop let it sit out.
    if (tickedYet && now > lastProcessedTick + 1) {
        Cycle gap = now - lastProcessedTick - 1;
        std::size_t active = activeTxns;
        statCtxOccupancy += active * gap;
        if (active >= txns.size())
            statCtxFullCycles += gap;
    }
    // trySubmit stamps acceptedAt with the last *ticked* cycle, which
    // under the exhaustive stepper is always now - 1 at this point.
    lastTickCycle = now == 0 ? 0 : now - 1;
}

Cycle
PvaUnit::nextWakeAfter(Cycle now) const
{
    // A tick that changed state pins the wake at now + 1; nothing the
    // scans below find can come earlier, so skip them.
    if (tickActivity)
        return now + 1;
    Cycle wake = kNeverCycle;
    auto consider = [&](Cycle c) {
        if (c > now && c < wake)
            wake = c;
    };
    for (const Txn &t : txns) {
        switch (t.state) {
          case TxnState::Staging:
          case TxnState::WriteData:
            consider(t.readyAt > now ? t.readyAt : now + 1);
            break;
          case TxnState::QueuedRead:
          case TxnState::QueuedWrite:
          case TxnState::StagePending:
          case TxnState::VecWritePending: {
            // Waiting on the request bus.
            Cycle free_at = vectorBus.busyUntil();
            consider(free_at > now ? free_at : now + 1);
            break;
          }
          default:
            break; // Free / Gathering / Scattering: BC wakes cover it
        }
    }
    // The cached per-BC wakes are exactly the answers the controllers
    // gave at their last tick, so folding the cache is equivalent to
    // re-polling them — without M virtual calls per processed cycle.
    for (Cycle w : bcWake)
        consider(w);
    return wake;
}

void
PvaUnit::drainCompletionsInto(std::vector<Completion> &out)
{
    out.clear();
    std::swap(out, completions);
}

void
PvaUnit::recycleLine(std::vector<Word> &&line)
{
    if (line.capacity() != 0 && linePool.size() < txns.size())
        linePool.push_back(std::move(line));
}

bool
PvaUnit::busy() const
{
    return activeTxns != 0;
}

} // namespace pva
