#include "core/bit_reversal.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

std::vector<VectorCommand>
bitReversalCommands(WordAddr base, std::uint32_t count, unsigned line_words,
                    bool is_read)
{
    if (!isPowerOfTwo(count)) {
        throw SimError(SimErrorKind::Config, "bitrev", kNeverCycle,
                       csprintf("bit-reversal vector length %u must be a "
                                "power of two", count));
    }
    const unsigned bits = log2Exact(count);
    std::vector<VectorCommand> cmds;
    for (std::uint32_t off = 0; off < count; off += line_words) {
        VectorCommand c;
        c.mode = VectorCommand::Mode::BitReversal;
        c.base = base;
        c.length = std::min<std::uint32_t>(line_words, count - off);
        c.isRead = is_read;
        c.revBits = bits;
        c.revOffset = off;
        cmds.push_back(c);
    }
    return cmds;
}

BitReversalResult
runBitReversedGather(MemorySystem &sys, Simulation &sim, WordAddr base,
                     std::uint32_t count, unsigned line_words)
{
    Cycle start = sim.now();
    auto cmds = bitReversalCommands(base, count, line_words, true);

    std::vector<std::vector<Word>> lines(cmds.size());
    std::size_t submitted = 0;
    std::size_t completed = 0;
    sim.runUntil(
        [&] {
            while (submitted < cmds.size() &&
                   sys.trySubmit(cmds[submitted], submitted, nullptr)) {
                ++submitted;
            }
            for (Completion &c : sys.drainCompletions()) {
                lines[c.tag] = std::move(c.data);
                ++completed;
            }
            return completed == cmds.size();
        },
        10000000);

    BitReversalResult r;
    for (const auto &line : lines)
        r.data.insert(r.data.end(), line.begin(), line.end());
    r.cycles = sim.now() - start;
    return r;
}

} // namespace pva
