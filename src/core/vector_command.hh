/**
 * @file
 * The application-vector request broadcast on the Vector Bus.
 *
 * The primary mode is the base-stride tuple V = <B, S, L> of chapter 4.
 * Two further application-vector patterns from the paper's future-work
 * discussion (chapter 7) are supported as extension modes:
 *
 *  - Indirect: elements are addressed base + indices[i] (the two-phase
 *    vector-indirect scatter/gather; each BC selects its elements by
 *    snooping the broadcast index stream with a bank bit-mask).
 *  - BitReversal: element i lives at base + bitReverse(i, revBits), the
 *    FFT reordering pattern.
 */

#ifndef PVA_CORE_VECTOR_COMMAND_HH
#define PVA_CORE_VECTOR_COMMAND_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace pva
{

/** Reverse the low @p bits bits of @p v (the FFT access pattern). */
constexpr std::uint64_t
bitReverse(std::uint64_t v, unsigned bits)
{
    std::uint64_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

/**
 * A vector operation as broadcast on the Vector Bus.
 *
 * Addresses and strides are in 32-bit words (the paper's prototype
 * transfers 4-byte elements). A cache-line-sized command has
 * length == 32 (128 bytes).
 */
struct VectorCommand
{
    enum class Mode : std::uint8_t { Stride, Indirect, BitReversal };

    WordAddr base = 0;        ///< V.B, word address of element 0
    std::uint32_t stride = 1; ///< V.S in words, >= 1 (Stride mode)
    std::uint32_t length = 0; ///< V.L, element count
    bool isRead = true;       ///< VEC_READ vs VEC_WRITE
    std::uint8_t txn = 0;     ///< Bus transaction id (3 bits)
    Mode mode = Mode::Stride;
    std::vector<WordAddr> indices; ///< Word offsets (Indirect mode)
    unsigned revBits = 0;          ///< Reversed bit count (BitReversal)
    std::uint64_t revOffset = 0;   ///< Global index of element 0
                                   ///  (BitReversal chunking)

    /** Word address of element @p i. */
    WordAddr
    element(std::uint32_t i) const
    {
        switch (mode) {
          case Mode::Stride:
            return base + static_cast<WordAddr>(stride) * i;
          case Mode::Indirect:
            return base + indices[i];
          case Mode::BitReversal:
            return base + bitReverse(revOffset + i, revBits);
        }
        return base;
    }
};

} // namespace pva

#endif // PVA_CORE_VECTOR_COMMAND_HH
