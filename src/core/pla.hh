/**
 * @file
 * Lookup-table model of the FirstHit PLA (section 4.2 / 4.3.1).
 *
 * The hardware compiles the K values "into the circuitry in the form of
 * look-up tables". Two organizations are modelled:
 *
 *  - FullKi: the PLA takes (S mod M, d) and returns Ki directly. Its
 *    contents grow with M^2, which the paper says limits this design to
 *    around 16 banks.
 *  - K1Multiply: the PLA takes S mod M and returns (s, K1, delta); Ki is
 *    then computed as (K1 * (d >> s)) mod 2^(m-s) with a small multiplier
 *    (shift+mask when the stride is a power of two). PLA contents grow
 *    linearly with M.
 *
 * Both organizations produce identical FirstHit() results; tests verify
 * this, and bench_pla_scaling reproduces the section 4.3.1 growth claim.
 */

#ifndef PVA_CORE_PLA_HH
#define PVA_CORE_PLA_HH

#include <cstdint>
#include <vector>

#include "core/firsthit.hh"

namespace pva
{

/** Compile-time-filled FirstHit lookup table. */
class FirstHitPla
{
  public:
    enum class Variant { FullKi, K1Multiply };

    /** Build the table for an M = 2^m bank word-interleaved system. */
    FirstHitPla(unsigned m, Variant variant);

    unsigned bankBits() const { return mBits; }
    Variant variant() const { return plaVariant; }

    /**
     * FirstHit via table lookup: @p stride_mod_m is the low m bits of the
     * stride, @p d the modulo-M distance of this bank from the base bank,
     * @p length the vector length (for the Ki < L validity check).
     */
    FirstHit lookup(std::uint32_t stride_mod_m, std::uint32_t d,
                    std::uint32_t length) const;

    /** NextHit delta for @p stride_mod_m, encoded alongside the table. */
    std::uint32_t delta(std::uint32_t stride_mod_m) const;

    /** Number of stored table entries (PLA rows before minimization). */
    std::size_t tableEntries() const;

    /**
     * Modelled PLA product-term count: entries that encode a hit, i.e.
     * the minterms a two-level implementation must realize. This is the
     * quantity that scales quadratically (FullKi) or linearly
     * (K1Multiply) with the bank count.
     */
    std::size_t productTerms() const;

  private:
    struct KiEntry
    {
        bool hit = false;
        std::uint32_t ki = 0;
    };

    struct K1Entry
    {
        unsigned s = 0;
        std::uint32_t k1 = 0;
        std::uint32_t delta = 1;
        bool oneBank = false; ///< stride == 0 mod M
    };

    unsigned mBits;
    Variant plaVariant;
    /** FullKi: indexed [sm * M + d]. */
    std::vector<KiEntry> kiTable;
    /** K1Multiply (also used for delta()): indexed [sm]. */
    std::vector<K1Entry> k1Table;
};

} // namespace pva

#endif // PVA_CORE_PLA_HH
