/**
 * @file
 * Common interface all evaluated memory systems implement.
 *
 * The kernel harness drives each of the paper's four memory systems
 * (PVA SDRAM, cache-line interleaved serial SDRAM, gathering pipelined
 * serial SDRAM, PVA SRAM) through this interface: submit cache-line
 * vector commands, tick the clock, drain completions.
 */

#ifndef PVA_CORE_MEMORY_SYSTEM_HH
#define PVA_CORE_MEMORY_SYSTEM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/vector_command.hh"
#include "sim/component.hh"
#include "sim/memory.hh"
#include "sim/stats.hh"

namespace pva
{

/** A finished vector transaction returned to the issuing processor. */
struct Completion
{
    std::uint64_t tag;      ///< Caller-chosen identifier
    std::vector<Word> data; ///< Gathered line for reads; empty for writes
};

/** Abstract vector-capable memory system. */
class MemorySystem : public Component
{
  public:
    using Component::Component;

    /**
     * Submit a vector command. For writes, @p write_data supplies the
     * dense line to scatter (cmd.length words). Returns false if the
     * system has no free transaction resources this cycle; the caller
     * retries later.
     *
     * @param tag caller identifier reported back in the Completion.
     */
    virtual bool trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                           const std::vector<Word> *write_data) = 0;

    /**
     * Move the completions that matured since the last drain into
     * @p out (replacing its contents). The primitive drain operation:
     * callers that care about steady-state allocation (the vector
     * command unit, the traffic arbiter) keep one vector alive across
     * calls so buffers shuttle between caller and system instead of
     * cycling through the allocator.
     */
    virtual void drainCompletionsInto(std::vector<Completion> &out) = 0;

    /** Convenience drain returning a fresh vector. */
    std::vector<Completion>
    drainCompletions()
    {
        std::vector<Completion> out;
        drainCompletionsInto(out);
        return out;
    }

    /**
     * Hand a consumed completion's line buffer back to the system for
     * reuse by a future read completion. Optional — systems without a
     * buffer pool simply free it.
     */
    virtual void recycleLine(std::vector<Word> &&line) { (void)line; }

    /** Any transaction still in flight or queued? */
    virtual bool busy() const = 0;

    /**
     * Transactions currently accepted and not yet completed (queued or
     * in flight). Used by the traffic layer's occupancy sampling;
     * systems without a meaningful notion may keep the default 0.
     */
    virtual std::size_t inFlight() const { return 0; }

    /** Functional backing store (for test setup and verification). */
    virtual SparseMemory &memory() = 0;

    /** Registered statistics of this system. */
    virtual StatSet &stats() = 0;

    /**
     * Copy the driving Simulation's clocking counters into this
     * system's StatSet (sim.simTicks / sim.cyclesSkipped /
     * sim.cyclesPerSecond) so they survive the Simulation, which is
     * local to the run harness, and appear in every stats dump.
     */
    void
    recordSimPerf(std::uint64_t ticks, std::uint64_t skipped,
                  std::uint64_t cycles_per_second)
    {
        statSimTicks.set(ticks);
        statSimCyclesSkipped.set(skipped);
        statSimCyclesPerSecond.set(cycles_per_second);
    }

  protected:
    /** Concrete systems call this from their constructor. */
    void
    registerSimStats(StatSet &set)
    {
        set.addScalar("sim.simTicks", &statSimTicks);
        set.addScalar("sim.cyclesSkipped", &statSimCyclesSkipped);
        set.addScalar("sim.cyclesPerSecond", &statSimCyclesPerSecond);
    }

    Scalar statSimTicks;
    Scalar statSimCyclesSkipped;
    Scalar statSimCyclesPerSecond;
};

} // namespace pva

#endif // PVA_CORE_MEMORY_SYSTEM_HH
