#include "core/indirect.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

std::vector<VectorCommand>
indirectPhase1(WordAddr index_vec_base, std::uint32_t count,
               unsigned line_words)
{
    std::vector<VectorCommand> cmds;
    for (std::uint32_t off = 0; off < count; off += line_words) {
        VectorCommand c;
        c.base = index_vec_base + off;
        c.stride = 1;
        c.length = std::min<std::uint32_t>(line_words, count - off);
        c.isRead = true;
        cmds.push_back(c);
    }
    return cmds;
}

std::vector<VectorCommand>
indirectPhase2(WordAddr target_base, const std::vector<WordAddr> &indices,
               unsigned line_words, bool is_read)
{
    std::vector<VectorCommand> cmds;
    for (std::size_t off = 0; off < indices.size(); off += line_words) {
        VectorCommand c;
        c.mode = VectorCommand::Mode::Indirect;
        c.base = target_base;
        c.length = static_cast<std::uint32_t>(
            std::min<std::size_t>(line_words, indices.size() - off));
        c.isRead = is_read;
        c.indices.assign(indices.begin() + off,
                         indices.begin() + off + c.length);
        cmds.push_back(c);
    }
    return cmds;
}

namespace
{

/**
 * Drive a batch of commands to completion, preserving per-command data.
 * Returns the per-command completion lines in submission order.
 */
std::vector<std::vector<Word>>
driveBatch(MemorySystem &sys, Simulation &sim,
           const std::vector<VectorCommand> &cmds,
           const std::vector<std::vector<Word>> *write_lines)
{
    std::vector<std::vector<Word>> results(cmds.size());
    std::size_t submitted = 0;
    std::size_t completed = 0;
    sim.runUntil(
        [&] {
            while (submitted < cmds.size()) {
                const std::vector<Word> *wd =
                    write_lines ? &(*write_lines)[submitted] : nullptr;
                if (!sys.trySubmit(cmds[submitted], submitted, wd))
                    break;
                ++submitted;
            }
            for (Completion &c : sys.drainCompletions()) {
                results[c.tag] = std::move(c.data);
                ++completed;
            }
            return completed == cmds.size();
        },
        10000000);
    return results;
}

} // anonymous namespace

IndirectRunResult
runIndirectGather(MemorySystem &sys, Simulation &sim,
                  WordAddr index_vec_base, std::uint32_t count,
                  WordAddr target_base, unsigned line_words)
{
    Cycle start = sim.now();

    // Phase 1: load the indirection vector.
    auto phase1 = indirectPhase1(index_vec_base, count, line_words);
    auto lines = driveBatch(sys, sim, phase1, nullptr);
    std::vector<WordAddr> indices;
    indices.reserve(count);
    for (const auto &line : lines)
        for (Word w : line)
            indices.push_back(w);

    // Phase 2: broadcast the indices and gather in parallel.
    auto phase2 = indirectPhase2(target_base, indices, line_words, true);
    auto data_lines = driveBatch(sys, sim, phase2, nullptr);

    IndirectRunResult r;
    for (const auto &line : data_lines)
        r.data.insert(r.data.end(), line.begin(), line.end());
    r.cycles = sim.now() - start;
    return r;
}

Cycle
runIndirectScatter(MemorySystem &sys, Simulation &sim,
                   WordAddr index_vec_base, std::uint32_t count,
                   WordAddr target_base, const std::vector<Word> &values,
                   unsigned line_words)
{
    if (values.size() < count) {
        throw SimError(SimErrorKind::Config, "indirect", kNeverCycle,
                       "scatter values shorter than index count");
    }
    Cycle start = sim.now();

    auto phase1 = indirectPhase1(index_vec_base, count, line_words);
    auto lines = driveBatch(sys, sim, phase1, nullptr);
    std::vector<WordAddr> indices;
    for (const auto &line : lines)
        for (Word w : line)
            indices.push_back(w);

    auto phase2 = indirectPhase2(target_base, indices, line_words, false);
    std::vector<std::vector<Word>> write_lines;
    std::size_t off = 0;
    for (const VectorCommand &c : phase2) {
        write_lines.emplace_back(values.begin() + off,
                                 values.begin() + off + c.length);
        off += c.length;
    }
    driveBatch(sys, sim, phase2, &write_lines);
    return sim.now() - start;
}

} // namespace pva
