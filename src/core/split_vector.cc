#include "core/split_vector.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

void
MmcTlb::mapSuperpage(WordAddr vbase, WordAddr pbase, std::uint32_t size)
{
    if (!isPowerOfTwo(size)) {
        throw SimError(SimErrorKind::Config, "mmc.tlb", kNeverCycle,
                       csprintf("superpage size %u is not a power of two",
                                size));
    }
    if (vbase % size != 0 || pbase % size != 0) {
        throw SimError(SimErrorKind::Config, "mmc.tlb", kNeverCycle,
                       "superpage bases must be size-aligned");
    }
    entries.push_back({vbase, pbase, size});
}

MmcTlb::Translation
MmcTlb::lookup(WordAddr vaddr) const
{
    for (const Entry &e : entries) {
        if (vaddr >= e.vbase && vaddr < e.vbase + e.size)
            return {e.pbase + (vaddr - e.vbase), e.size};
    }
    throw SimError(SimErrorKind::Config, "mmc.tlb", kNeverCycle,
                   csprintf("TLB miss for word address %llu",
                            static_cast<unsigned long long>(vaddr)));
}

void
MmcTlb::identityMap(WordAddr base, std::uint64_t span,
                    std::uint32_t page_size)
{
    WordAddr first = (base / page_size) * page_size;
    WordAddr last = base + span;
    for (WordAddr p = first; p < last; p += page_size)
        mapSuperpage(p, p, page_size);
}

std::vector<VectorCommand>
splitVector(const VectorCommand &v, const MmcTlb &tlb)
{
    if (v.stride == 0) {
        throw SimError(SimErrorKind::Config, "mmc.split", kNeverCycle,
                       "splitVector requires stride >= 1");
    }

    // "index of most significant power of 2 in V.S", rounded up so the
    // shift is a safe lower bound: 2^shift >= stride.
    unsigned shift_val = 0;
    while ((1u << shift_val) < v.stride)
        ++shift_val;

    std::vector<VectorCommand> out;
    WordAddr base = v.base;
    std::uint32_t length = v.length;
    while (length > 0) {
        MmcTlb::Translation t = tlb.lookup(base);
        // terminate(phys_address): offset within the superpage.
        std::uint32_t offset =
            static_cast<std::uint32_t>(t.phys & (t.pageSize - 1));
        std::uint32_t remaining = t.pageSize - offset;
        std::uint32_t lower_bound = remaining >> shift_val;
        // The element at `base` itself is on the page, so at least one
        // element can always be issued (keeps the loop productive when
        // remaining < stride).
        if (lower_bound == 0)
            lower_bound = 1;
        if (lower_bound > length)
            lower_bound = length;

        VectorCommand sub = v;
        sub.base = t.phys;
        sub.length = lower_bound;
        out.push_back(sub);

        // "While banks are busy operating on the vector we issued,
        // compute new base address": multiply happens off the critical
        // path in hardware.
        length -= lower_bound;
        base += static_cast<WordAddr>(v.stride) * lower_bound;
    }
    return out;
}

} // namespace pva
