/**
 * @file
 * Unified construction-time configuration of the evaluated memory
 * systems.
 *
 * SystemConfig is the one knob bag every harness (benches, tests,
 * tools, the sweep executor) fills in and hands to makeSystem(): the
 * memory geometry (bank count, interleave factor), the SDRAM timing
 * parameters including auto-refresh, the bank-controller
 * microarchitecture (vector contexts, row policy, bypasses), and the
 * serial baselines' accounting knobs. Each concrete system consumes
 * the subset that applies to it; the PVA-specific projection is
 * PvaConfig (toPva()).
 */

#ifndef PVA_CORE_SYSTEM_CONFIG_HH
#define PVA_CORE_SYSTEM_CONFIG_HH

#include "core/bank_controller.hh"
#include "sdram/device.hh"
#include "sdram/geometry.hh"

namespace pva
{

/** Top-level configuration of a PVA memory system. */
struct PvaConfig
{
    Geometry geometry{16, 1, 9, 2, 13};
    SdramTiming timing{};
    BcConfig bc{};
    bool useSram = false; ///< Build the PVA-SRAM comparison system
};

/**
 * Configuration shared by all four evaluated memory systems.
 *
 * The default-constructed value is the paper's prototype point:
 * 16 word-interleaved banks, 2-2-2 SDRAM timing with refresh
 * disabled, 4 vector contexts with the ManageRow policy.
 */
struct SystemConfig
{
    /** Bank count and interleave factor (all systems). */
    Geometry geometry{16, 1, 9, 2, 13};
    /** SDRAM timing, including tREFI auto-refresh (SDRAM systems). */
    SdramTiming timing{};
    /** Bank-controller microarchitecture (PVA SDRAM / PVA SRAM). */
    BcConfig bc{};
    /** Outstanding bus-transaction limit of the serial baselines. */
    unsigned maxOutstanding = 8;
    /** Cache-line baseline accounting (see CacheLineConfig). */
    bool optimisticLineReuse = false;

    /** The PVA-specific projection of this configuration. */
    PvaConfig
    toPva(bool use_sram = false) const
    {
        PvaConfig p;
        p.geometry = geometry;
        p.timing = timing;
        p.bc = bc;
        p.useSram = use_sram;
        return p;
    }
};

} // namespace pva

#endif // PVA_CORE_SYSTEM_CONFIG_HH
