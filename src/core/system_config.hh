/**
 * @file
 * Unified construction-time configuration of the evaluated memory
 * systems.
 *
 * SystemConfig is the one knob bag every harness (benches, tests,
 * tools, the sweep executor) fills in and hands to makeSystem(): the
 * memory geometry (bank count, interleave factor), the SDRAM timing
 * parameters including auto-refresh, the bank-controller
 * microarchitecture (vector contexts, row policy, bypasses), the
 * serial baselines' accounting knobs, and the robustness layer (the
 * TimingChecker switch and the fault-injection plan). Each concrete
 * system consumes the subset that applies to it; the PVA-specific
 * projection is PvaConfig (toPva()).
 *
 * validate() rejects unsupportable values with a SimError(Config)
 * naming the offending field, so bad knobs fail fast with a clear
 * message instead of as undefined behavior deep inside a run.
 */

#ifndef PVA_CORE_SYSTEM_CONFIG_HH
#define PVA_CORE_SYSTEM_CONFIG_HH

#include "core/bank_controller.hh"
#include "sdram/device.hh"
#include "sdram/geometry.hh"
#include "sim/clocking.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

/** Top-level configuration of a PVA memory system. */
struct PvaConfig
{
    Geometry geometry{16, 1, 9, 2, 13};
    SdramTiming timing{};
    BcConfig bc{};
    bool useSram = false; ///< Build the PVA-SRAM comparison system
    bool timingCheck = false; ///< Attach the redundant TimingChecker
    FaultPlan faults{};       ///< Fault injection (disabled by default)
    /** Batched bank-controller ticking (see SystemConfig::batchTicking). */
    bool batchTicking = true;
    /** Device backend (see SystemConfig::backend; SRAM ignores it). */
    MemBackend backend = MemBackend::Legacy;
    unsigned salpSubarrays = 4;
    unsigned refreshDeferWindow = 0;

    /** The resolved backend policy (validated; SimError(Config) on a
     *  bad combination). */
    BackendPolicy
    backendPolicy() const
    {
        return resolveBackendPolicy(backend, geometry.rowBits(),
                                    timing.tREFI, timing.tRFC,
                                    salpSubarrays, refreshDeferWindow);
    }
};

/**
 * Configuration shared by all four evaluated memory systems.
 *
 * The default-constructed value is the paper's prototype point:
 * 16 word-interleaved banks, 2-2-2 SDRAM timing with refresh
 * disabled, 4 vector contexts with the ManageRow policy, no checker,
 * no fault injection.
 */
struct SystemConfig
{
    /** Bank count and interleave factor (all systems). */
    Geometry geometry{16, 1, 9, 2, 13};
    /** SDRAM timing, including tREFI auto-refresh (SDRAM systems). */
    SdramTiming timing{};
    /** Bank-controller microarchitecture (PVA SDRAM / PVA SRAM). */
    BcConfig bc{};
    /** Outstanding bus-transaction limit of the serial baselines. */
    unsigned maxOutstanding = 8;
    /** Cache-line baseline accounting (see CacheLineConfig). */
    bool optimisticLineReuse = false;
    /** Attach the redundant protocol/data checker (PVA systems). */
    bool timingCheck = false;
    /** Fault-injection plan (PVA systems; disabled by default). */
    FaultPlan faults{};
    /** Clocking discipline of the driving Simulation (all systems).
     *  Event is cycle-exact with Exhaustive; see docs/SIMULATION.md. */
    ClockingMode clocking = ClockingMode::Event;
    /**
     * Batched bank-controller ticking (PVA systems): the front end
     * keeps a cached wake cycle per bank controller and skips ticking
     * controllers that are provably quiescent until then, instead of
     * ticking all M controllers on every processed cycle. Cycle-exact
     * by the same wake contract the event core relies on
     * (docs/PERFORMANCE.md); off reproduces the every-BC-every-cycle
     * reference behaviour for differential testing.
     */
    bool batchTicking = true;
    /**
     * Memory-device backend (docs/DEVICE.md). Legacy is the paper's
     * part and the default; Salp gives every internal bank
     * salpSubarrays independent row buffers (Kim et al.); Deferred-
     * Refresh moves tREFI boundaries within refreshDeferWindow cycles
     * around in-flight work (Chang et al.). SDRAM systems only — the
     * SRAM comparison system and the serial baselines' analytic
     * timing ignore it.
     */
    MemBackend backend = MemBackend::Legacy;
    /** Row-buffer subarrays per internal bank (Salp; power of two). */
    unsigned salpSubarrays = 4;
    /** Max cycles a refresh may move (DeferredRefresh; 0 = tREFI/2). */
    unsigned refreshDeferWindow = 0;

    /** The PVA-specific projection of this configuration. */
    PvaConfig
    toPva(bool use_sram = false) const
    {
        PvaConfig p;
        p.geometry = geometry;
        p.timing = timing;
        p.bc = bc;
        p.useSram = use_sram;
        p.timingCheck = timingCheck;
        p.faults = faults;
        p.batchTicking = batchTicking;
        p.backend = backend;
        p.salpSubarrays = salpSubarrays;
        p.refreshDeferWindow = refreshDeferWindow;
        return p;
    }

    /**
     * Reject unsupportable configurations with a SimError(Config)
     * naming the offending knob. Called by makeSystem() so every
     * construction path — tools, benches, sweep points — fails fast
     * with a message instead of misbehaving downstream.
     *
     * (Geometry's own constructor already rejects non-power-of-two
     * bank counts and interleave factors.)
     */
    void
    validate() const
    {
        auto reject = [](const std::string &detail) {
            throw SimError(SimErrorKind::Config, "config", kNeverCycle,
                           detail);
        };
        if (bc.lineWords == 0)
            reject("bc.lineWords must be nonzero");
        if (bc.lineWords % 2 != 0)
            reject(csprintf("bc.lineWords %u must be even (two words "
                            "per bus data cycle)", bc.lineWords));
        if (bc.transactions == 0 || bc.transactions > 255)
            reject(csprintf("bc.transactions %u must be in 1..255 "
                            "(8-bit transaction ids; 256 would wrap "
                            "the id counters)",
                            bc.transactions));
        if (bc.vectorContexts == 0)
            reject("bc.vectorContexts must be nonzero");
        if (bc.fifoEntries == 0)
            reject("bc.fifoEntries must be nonzero");
        if (geometry.interleave() > bc.lineWords)
            reject(csprintf("interleave factor %u exceeds the %u-word "
                            "cache line", geometry.interleave(),
                            bc.lineWords));
        if (timing.tCL == 0 || timing.tRCD == 0 || timing.tRP == 0)
            reject("SDRAM timing tCL/tRCD/tRP must be nonzero");
        if (timing.tRAS == 0)
            reject("SDRAM timing tRAS must be nonzero");
        if (timing.tRC < timing.tRAS)
            reject(csprintf("tRC %u shorter than tRAS %u (activate-to-"
                            "activate cannot beat activate-to-"
                            "precharge)", timing.tRC, timing.tRAS));
        if (timing.tREFI != 0 && timing.tRFC == 0)
            reject("tRFC must be nonzero when tREFI refresh is "
                   "enabled");
        if (maxOutstanding == 0)
            reject("maxOutstanding must be nonzero");
        auto checkRate = [&](double rate, const char *field) {
            if (!(rate >= 0.0 && rate <= 1.0))
                reject(csprintf("fault rate %s = %g outside [0, 1]",
                                field, rate));
        };
        checkRate(faults.refreshStallRate, "refreshStallRate");
        checkRate(faults.bcStallRate, "bcStallRate");
        checkRate(faults.dropTransferRate, "dropTransferRate");
        checkRate(faults.corruptFirstHitRate, "corruptFirstHitRate");
        // Backend knobs: resolving throws SimError(Config) naming the
        // offending field on any unsupportable combination.
        (void)resolveBackendPolicy(backend, geometry.rowBits(),
                                   timing.tREFI, timing.tRFC,
                                   salpSubarrays, refreshDeferWindow);
    }
};

} // namespace pva

#endif // PVA_CORE_SYSTEM_CONFIG_HH
