#include "core/firsthit.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace pva
{

StrideDecomposition
decomposeStride(std::uint32_t stride, unsigned m)
{
    const std::uint32_t M = 1u << m;
    StrideDecomposition d;
    d.strideModM = stride & (M - 1);
    if (d.strideModM == 0) {
        // The whole vector stays in DecodeBank(V.B); the index increment
        // within that one bank is 1.
        d.s = m;
        d.sigma = 0;
        d.delta = 1;
        return d;
    }
    d.s = trailingZeros(d.strideModM);
    d.sigma = d.strideModM >> d.s;
    d.delta = 1u << (m - d.s);
    return d;
}

std::uint32_t
computeK1(std::uint32_t stride_mod_m, unsigned m)
{
    if (stride_mod_m == 0)
        panic("computeK1 undefined for stride == 0 mod M");
    const std::uint32_t M = 1u << m;
    const unsigned s = trailingZeros(stride_mod_m);
    const std::uint32_t target = 1u << s;
    const std::uint32_t delta = 1u << (m - s);
    // K1 = sigma^-1 mod 2^(m-s); found by scan exactly as a PLA would
    // have its contents enumerated at design time.
    for (std::uint32_t k = 1; k <= delta; ++k) {
        if ((static_cast<std::uint64_t>(k) * stride_mod_m) % M == target)
            return k;
    }
    panic("no K1 for stride %u mod 2^%u", stride_mod_m, m);
}

FirstHit
firstHitWord(const VectorCommand &v, unsigned bank, unsigned m)
{
    const std::uint32_t M = 1u << m;
    if (v.length == 0)
        return {};
    const unsigned b0 = static_cast<unsigned>(v.base & (M - 1));
    if (bank == b0)
        return {true, 0}; // case 0: V[0] lives here

    StrideDecomposition sd = decomposeStride(v.stride, m);
    if (sd.wholeVectorInOneBank())
        return {}; // every element stays in b0

    const std::uint32_t d = (bank + M - b0) & (M - 1);
    if (d & ((1u << sd.s) - 1))
        return {}; // lemma 4.2: only every 2^s-th bank is hit

    const std::uint32_t i = d >> sd.s;
    const std::uint32_t k1 = computeK1(sd.strideModM, m);
    const std::uint32_t ki =
        static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(k1) * i) % sd.delta);
    if (ki >= v.length)
        return {}; // the vector ends before reaching this bank
    return {true, ki};
}

std::uint32_t
nextHitWord(std::uint32_t stride, unsigned m)
{
    StrideDecomposition sd = decomposeStride(stride, m);
    return sd.delta; // theorem 4.4 (and 1 for the one-bank case)
}

SubVector
subVectorWord(const VectorCommand &v, unsigned bank, unsigned m)
{
    SubVector sv;
    FirstHit fh = firstHitWord(v, bank, m);
    if (!fh.hit)
        return sv;
    sv.hit = true;
    sv.firstIndex = fh.index;
    sv.delta = nextHitWord(v.stride, m);
    sv.count = 1 + (v.length - 1 - fh.index) / sv.delta;
    return sv;
}

FirstHit
firstHitBrute(const VectorCommand &v, unsigned bank, const Geometry &geo)
{
    for (std::uint32_t i = 0; i < v.length; ++i) {
        if (geo.bankOf(v.element(i)) == bank)
            return {true, i};
    }
    return {};
}

std::optional<std::uint32_t>
nextHitBrute(std::uint32_t theta, std::uint32_t stride, unsigned n_words,
             std::uint32_t nm)
{
    for (std::uint32_t p = 1; p <= nm; ++p) {
        if ((theta + static_cast<std::uint64_t>(p) * stride) % nm < n_words)
            return p;
    }
    return std::nullopt;
}

std::uint32_t
nextHitRecursive(std::uint32_t theta, std::uint32_t stride, unsigned n_words,
                 std::uint32_t nm)
{
    const std::uint32_t N = n_words;

    if (stride < N) {
        // Sub-block steps: the next block-frame hit is either immediate
        // or at the wrap around NM.
        if (theta + stride < N)
            return 1;
        std::uint32_t p3_plus_1 = (nm - theta) / stride;
        if (p3_plus_1 &&
            (theta + static_cast<std::uint64_t>(p3_plus_1) * stride) % nm <
                N) {
            return p3_plus_1;
        }
        return p3_plus_1 + 1;
    }

    std::uint32_t s1 = nm % stride;
    if (s1 <= theta)
        return nm / stride;

    std::uint32_t p2;
    if (s1 < N) {
        p2 = (stride - N + theta) / s1 + 1;
    } else {
        std::uint32_t s2 = stride % s1;
        if (s2 == 0) {
            // The paper's listing divides by s1 without guarding this
            // degenerate subcase (s1 divides stride). Solve condition (3)
            // of section 4.1.2 directly: find the least p2 whose
            // p2*NM mod stride falls within (stride-N+theta, stride+theta]
            // interpreted modulo stride.
            p2 = 0;
            for (std::uint32_t cand = 1; cand <= stride; ++cand) {
                std::uint64_t r =
                    (static_cast<std::uint64_t>(cand) * nm) % stride;
                bool in_wrapped_interval =
                    r > stride - N + theta || r <= theta;
                if (in_wrapped_interval) {
                    p2 = cand;
                    break;
                }
            }
            if (p2 == 0)
                panic("nextHitRecursive: no p2 (theta=%u stride=%u nm=%u)",
                      theta, stride, nm);
        } else {
            std::uint32_t p3_plus_1 = nextHitRecursive(theta, s2, N, s1);
            p2 = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(p3_plus_1) * stride + theta) /
                s1);
        }
    }

    std::uint32_t carry = 1;
    if ((static_cast<std::uint64_t>(p2) * nm) % stride <=
        stride - N + theta) {
        carry = 0;
    }
    std::uint32_t p1_minus_1 = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(p2) * nm) / stride);
    return p1_minus_1 + carry;
}

std::vector<std::uint32_t>
expandBankIndices(const VectorCommand &v, unsigned bank, const Geometry &geo)
{
    std::vector<std::uint32_t> indices;
    const unsigned m = geo.bankBits();
    const unsigned n = geo.interleaveBits();

    if (n == 0) {
        SubVector sv = subVectorWord(v, bank, m);
        for (std::uint32_t j = 0; j < sv.count; ++j)
            indices.push_back(sv.index(j));
        return indices;
    }

    // Section 4.1.3: physical bank b of an N-word-interleaved M-bank
    // system behaves as logical word-interleaved banks
    // [b*N, (b+1)*N) of an (N*M)-bank system.
    const unsigned logical_m = m + n;
    const unsigned N = geo.interleave();
    for (unsigned lb = bank * N; lb < (bank + 1) * N; ++lb) {
        SubVector sv = subVectorWord(v, lb, logical_m);
        for (std::uint32_t j = 0; j < sv.count; ++j)
            indices.push_back(sv.index(j));
    }
    std::sort(indices.begin(), indices.end());
    return indices;
}

} // namespace pva
