#include "core/complexity.hh"

namespace pva
{

namespace
{

/** Register-file entry width: base + stride + txn id + firsthit index +
 *  ACC flag + read/write flag. */
std::uint64_t
rfEntryBits(const BcParameters &p)
{
    unsigned idx_bits = log2Exact(p.banks) + 1; // firsthit index
    return 2ULL * p.addrBits + 3 + idx_bits + 1 + 1;
}

/** Vector-context state width: current address, remaining count, delta
 *  shift, txn id, FSM state. */
std::uint64_t
vcBits(const BcParameters &p)
{
    return p.addrBits + 6 + 5 + 3 + 3 + 1;
}

} // anonymous namespace

GateCounts
estimateBankController(const BcParameters &p)
{
    GateCounts g;

    // --- Sequential state ------------------------------------------------
    std::uint64_t rf_bits = p.fifoEntries * rfEntryBits(p);      // 592
    std::uint64_t vc_bits = p.vectorContexts * vcBits(p);        // 200
    std::uint64_t restimer_bits = 12ULL * p.internalBanks;       // 48
    std::uint64_t staging_ctrl_bits = 12ULL * p.transactions;    // 96
    // Fixed sequencing/control state (FHC pipeline registers, pointers,
    // bus interface): calibration constant.
    std::uint64_t misc_bits = 103;
    g.dff = rf_bits + vc_bits + restimer_bits + staging_ctrl_bits +
            misc_bits;

    // Bus-hold latches on the transaction-complete lines and command
    // capture.
    g.dlatch = 4ULL * p.transactions;

    // --- PLA -------------------------------------------------------------
    FirstHitPla pla(log2Exact(p.banks), p.plaVariant);
    std::uint64_t pla_terms = pla.productTerms();

    // --- Combinational fabric ---------------------------------------
    // Scaling terms follow structure (state width, PLA terms, datapath
    // widths); additive constants calibrate the default configuration to
    // the paper's Table 1.
    g.and2 = g.dff / 2 + pla_terms + 503;
    g.nand2 = 4 * g.dff + 6 * pla_terms + 306;
    g.inv = g.dff + 2 * pla_terms + 246;
    g.nor2 = g.dff / 2 + pla_terms + 153;
    g.or2 = 32ULL * p.vectorContexts + 66;
    // Adders: per-VC next-address shift-and-add plus the FHC
    // multiply-and-add.
    g.xor2 = 2ULL * p.addrBits * p.vectorContexts + 7ULL * p.addrBits + 20;
    g.mux2 = 32ULL * p.vectorContexts + 55;
    // Wired-OR opens: transaction-complete lines plus the per-internal-
    // bank hit/close predict lines.
    g.pulldown = p.transactions + p.internalBanks + 1;
    // Tristate drivers: the 128-bit BC bus per staging buffer plus the
    // register-file bit lines.
    g.tristate = 128ULL * p.transactions + rf_bits + 233;

    // Staging RAM: one line buffer per outstanding transaction for each
    // direction (read gather, write scatter).
    g.ramBytes = 2ULL * p.transactions * p.lineBytes;

    return g;
}

void
printTable1(std::ostream &os, const GateCounts &g)
{
    os << "Type             Count\n";
    os << "AND2             " << g.and2 << "\n";
    os << "D Flip-flop      " << g.dff << "\n";
    os << "D Latch          " << g.dlatch << "\n";
    os << "INV              " << g.inv << "\n";
    os << "MUX2             " << g.mux2 << "\n";
    os << "NAND2            " << g.nand2 << "\n";
    os << "NOR2             " << g.nor2 << "\n";
    os << "OR2              " << g.or2 << "\n";
    os << "XOR2             " << g.xor2 << "\n";
    os << "PULLDOWN         " << g.pulldown << "\n";
    os << "TRISTATE BUFFER  " << g.tristate << "\n";
    os << "On-chip RAM      " << g.ramBytes << " bytes\n";
}

} // namespace pva
