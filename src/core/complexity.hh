/**
 * @file
 * Analytic hardware-complexity model for the bank controller (Table 1).
 *
 * The paper reports gate counts from synthesizing the Verilog prototype
 * to the IKOS Xilinx library. We cannot run synthesis here, so this
 * module substitutes a structural cost model: each primitive count is a
 * function of the design parameters (bank count, VC count, FIFO depth,
 * outstanding transactions, PLA organization), with per-primitive
 * calibration constants chosen so that the *default* configuration
 * (M = 16, 4 VCs, 8-entry FIFO, 8 transactions, FullKi PLA) reproduces
 * the paper's Table 1. The value of the model is in how the counts
 * *scale* when parameters change (section 4.3.1), which follows the
 * structural terms, not the calibration constants.
 */

#ifndef PVA_CORE_COMPLEXITY_HH
#define PVA_CORE_COMPLEXITY_HH

#include <cstdint>
#include <ostream>

#include "core/pla.hh"

namespace pva
{

/** Structural parameters of one bank controller. */
struct BcParameters
{
    unsigned banks = 16;           ///< M
    unsigned vectorContexts = 4;   ///< VCs in the access scheduler
    unsigned fifoEntries = 8;      ///< Request FIFO / Register File depth
    unsigned transactions = 8;     ///< Outstanding bus transactions
    unsigned internalBanks = 4;    ///< SDRAM internal banks
    unsigned lineBytes = 128;      ///< Cache line (staging buffer) size
    unsigned addrBits = 32;
    FirstHitPla::Variant plaVariant = FirstHitPla::Variant::FullKi;
};

/** Primitive counts in the same categories as the paper's Table 1. */
struct GateCounts
{
    std::uint64_t and2 = 0;
    std::uint64_t dff = 0;
    std::uint64_t dlatch = 0;
    std::uint64_t inv = 0;
    std::uint64_t mux2 = 0;
    std::uint64_t nand2 = 0;
    std::uint64_t nor2 = 0;
    std::uint64_t or2 = 0;
    std::uint64_t xor2 = 0;
    std::uint64_t pulldown = 0;
    std::uint64_t tristate = 0;
    std::uint64_t ramBytes = 0;

    std::uint64_t
    totalGates() const
    {
        return and2 + dff + dlatch + inv + mux2 + nand2 + nor2 + or2 +
               xor2 + pulldown + tristate;
    }
};

/** Evaluate the cost model for one bank controller. */
GateCounts estimateBankController(const BcParameters &params);

/** Print in the paper's Table 1 format. */
void printTable1(std::ostream &os, const GateCounts &counts);

} // namespace pva

#endif // PVA_CORE_COMPLEXITY_HH
