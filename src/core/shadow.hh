/**
 * @file
 * Impulse-style shadow address spaces (section 3.2).
 *
 * "A region of memory may be remapped through a shadow address space...
 * One possible shadow space is a strided view of some other unit stride
 * region of memory. When the processor accesses data in the shadow
 * space, the memory controller does scatter/gather accesses from the
 * real memory region that backs the shadow address region and compacts
 * the strided data into dense cache lines."
 *
 * ShadowMemorySystem wraps any MemorySystem and rewrites commands that
 * fall in a configured shadow region: shadow word (base + k) maps to
 * real word (realBase + k * stride). A unit-stride cache-line fill in
 * shadow space therefore becomes a strided gather in real space — the
 * Impulse + PVA combination the paper was designed for.
 */

#ifndef PVA_CORE_SHADOW_HH
#define PVA_CORE_SHADOW_HH

#include <vector>

#include "core/memory_system.hh"

namespace pva
{

/** One shadow mapping: a dense view of a strided real region. */
struct ShadowRegion
{
    WordAddr shadowBase = 0;  ///< Start of the dense shadow region
    std::uint32_t length = 0; ///< Shadow words (elements)
    WordAddr realBase = 0;    ///< Element 0's real address
    std::uint32_t stride = 1; ///< Real-space stride
};

/** A MemorySystem decorator that applies shadow remappings. */
class ShadowMemorySystem : public MemorySystem
{
  public:
    ShadowMemorySystem(std::string name, MemorySystem &inner);

    /** Configure a shadow region (controller setup by the OS/compiler,
     *  as the paper describes). Regions must not overlap. */
    void mapShadow(const ShadowRegion &region);

    bool trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                   const std::vector<Word> *write_data) override;
    void drainCompletionsInto(std::vector<Completion> &out) override;
    void
    recycleLine(std::vector<Word> &&line) override
    {
        inner.recycleLine(std::move(line));
    }
    bool busy() const override;
    SparseMemory &memory() override { return inner.memory(); }
    StatSet &stats() override { return inner.stats(); }
    void tick(Cycle now) override { inner.tick(now); }

    /** Remapped commands seen so far (for tests/insight). */
    std::uint64_t remappedCommands() const { return remapped; }

  private:
    MemorySystem &inner;
    std::vector<ShadowRegion> regions;
    std::uint64_t remapped = 0;
};

} // namespace pva

#endif // PVA_CORE_SHADOW_HH
