#include "core/shadow.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

ShadowMemorySystem::ShadowMemorySystem(std::string name,
                                       MemorySystem &inner_)
    : MemorySystem(std::move(name)), inner(inner_)
{
}

void
ShadowMemorySystem::mapShadow(const ShadowRegion &region)
{
    if (region.stride == 0 || region.length == 0) {
        throw SimError(SimErrorKind::Config, name(), kNeverCycle,
                       "shadow region needs stride >= 1 and length >= 1");
    }
    for (const ShadowRegion &r : regions) {
        bool disjoint =
            region.shadowBase + region.length <= r.shadowBase ||
            r.shadowBase + r.length <= region.shadowBase;
        if (!disjoint) {
            throw SimError(SimErrorKind::Config, name(), kNeverCycle,
                           "overlapping shadow regions");
        }
    }
    regions.push_back(region);
}

bool
ShadowMemorySystem::trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                              const std::vector<Word> *write_data)
{
    if (cmd.mode == VectorCommand::Mode::Stride) {
        for (const ShadowRegion &r : regions) {
            if (cmd.base < r.shadowBase ||
                cmd.base >= r.shadowBase + r.length) {
                continue;
            }
            WordAddr last =
                cmd.base + static_cast<WordAddr>(cmd.stride) *
                               (cmd.length ? cmd.length - 1 : 0);
            if (last >= r.shadowBase + r.length) {
                throw SimError(SimErrorKind::Config, name(), kNeverCycle,
                               "vector command crosses a shadow region "
                               "boundary");
            }
            // Shadow word (shadowBase + k) backs real word
            // (realBase + k*stride): compose the strides.
            VectorCommand real = cmd;
            real.base = r.realBase + (cmd.base - r.shadowBase) * r.stride;
            real.stride = cmd.stride * r.stride;
            bool ok = inner.trySubmit(real, tag, write_data);
            if (ok)
                ++remapped;
            return ok;
        }
    }
    return inner.trySubmit(cmd, tag, write_data);
}

void
ShadowMemorySystem::drainCompletionsInto(std::vector<Completion> &out)
{
    inner.drainCompletionsInto(out);
}

bool
ShadowMemorySystem::busy() const
{
    return inner.busy();
}

} // namespace pva
