#include "core/bank_controller.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/trace.hh"

namespace pva
{

BankController::BankController(std::string name, unsigned bank,
                               const Geometry &geo_, const BcConfig &config,
                               BankDevice &dev_)
    : Component(std::move(name)), geo(geo_), cfg(config), dev(dev_),
      sdram(dynamic_cast<SdramDevice *>(&dev_)),
      bpol(dev_.backendPolicy()),
      pla(geo_.bankBits(), config.plaVariant),
      staging(config.transactions),
      autoPrePredict(bpol.slotCount(geo_.internalBanks()), false)
{
    if (bank >= geo.banks()) {
        throw SimError(SimErrorKind::Config, this->name(), kNeverCycle,
                       csprintf("bank index %u out of range (%u banks)",
                                bank, geo.banks()));
    }
    bankIndex = bank;
    fifo.reserve(cfg.fifoEntries);
    vcs.reserve(cfg.vectorContexts);
}

void
BankController::enableFaults(const FaultPlan &plan, std::uint64_t stream)
{
    injector = std::make_unique<FaultInjector>(plan, stream);
}

void
BankController::observeVecCommand(Cycle now, const VectorCommand &cmd)
{
    // The broadcast may grow the FIFO below: credit any cycles this BC
    // sat out first, while the queue sizes are still frozen.
    creditFrozen(now);
    ++statCommandsSeen;
    if (cmd.txn >= staging.size()) {
        throw SimError(SimErrorKind::Overflow, name(), now,
                       csprintf("transaction id %u out of range (%zu "
                                "staging units)",
                                cmd.txn, staging.size()));
    }
    Staging &st = staging[cmd.txn];
    if (st.active) {
        throw SimError(SimErrorKind::Protocol, name(), now,
                       csprintf("transaction id %u reused while active",
                                cmd.txn));
    }

    st.active = true;
    st.isRead = cmd.isRead;
    st.got = 0;
    if (injector)
        st.cmd = cmd;
    if (cmd.isRead) {
        st.line.assign(cfg.lineWords, 0);
        st.valid.assign(cfg.lineWords, 0);
    }

    if (cmd.mode != VectorCommand::Mode::Stride || geo.interleave() > 1) {
        // Extension modes (chapter 7) snoop the broadcast element stream
        // and select elements with a bank bit-mask; block-interleaved
        // systems (section 4.3.1) run N parallel FirstHit units whose
        // merged output is the same explicit list. Expand into the
        // scratch lists, then swap into the queued request so the list
        // capacity circulates through the FIFO ring.
        scratchAddrs.clear();
        scratchSlots.clear();
        if (cmd.mode != VectorCommand::Mode::Stride) {
            for (std::uint32_t i = 0; i < cmd.length; ++i) {
                WordAddr a = cmd.element(i);
                if (geo.bankOf(a) == bankIndex) {
                    scratchAddrs.push_back(a);
                    scratchSlots.push_back(
                        static_cast<std::uint8_t>(i));
                }
            }
        } else {
            for (std::uint32_t i :
                 expandBankIndices(cmd, bankIndex, geo)) {
                scratchAddrs.push_back(cmd.element(i));
                scratchSlots.push_back(static_cast<std::uint8_t>(i));
            }
        }
        st.expected = static_cast<std::uint32_t>(scratchAddrs.size());
        if (st.expected == 0)
            return; // nothing here; trivially complete
        ++statCommandsHit;
        if (fifo.size() >= cfg.fifoEntries) {
            throw SimError(SimErrorKind::Overflow, name(), now,
                           "request FIFO overflow");
        }
        if (injector) {
            st.respAddrs = scratchAddrs;
            st.respSlots = scratchSlots;
        }
        Request &req = fifo.pushBack();
        req.cmd = cmd;
        req.sub = SubVector{};
        req.explicitAddrs.swap(scratchAddrs);
        req.explicitSlots.swap(scratchSlots);
        if (cmd.mode == VectorCommand::Mode::Indirect) {
            // Indices broadcast two per cycle after the command.
            req.visibleAt = now + 1 + (cmd.length + 1) / 2;
        } else if (cmd.mode == VectorCommand::Mode::BitReversal) {
            // Pattern generated locally (one extra cycle, like the
            // power-of-two FHP path).
            req.visibleAt = now + 2;
        } else {
            req.visibleAt = isPowerOfTwo(cmd.stride)
                                ? now + 2
                                : now + 2 + cfg.fhcLatency;
        }
        PVA_TRACE_INSTANT(traceTrack(), now, "observe", "txn",
                          cmd.txn, "elems", st.expected);
        return;
    }

    // --- FirstHit Predictor (1 cycle) ---------------------------------
    const unsigned m = geo.bankBits();
    const std::uint32_t M = 1u << m;
    const unsigned b0 = static_cast<unsigned>(cmd.base & (M - 1));
    const std::uint32_t d = (bankIndex + M - b0) & (M - 1);
    const std::uint32_t sm = cmd.stride & (M - 1);

    FirstHit fh = pla.lookup(sm, d, cmd.length);
    if (!fh.hit) {
        // No element of this vector lives here: this BC's share of the
        // transaction is trivially complete.
        st.expected = 0;
        return;
    }
    ++statCommandsHit;

    SubVector sub;
    sub.hit = true;
    sub.firstIndex = fh.index;
    sub.delta = pla.delta(sm);
    sub.count = 1 + (cmd.length - 1 - fh.index) / sub.delta;

    if (injector && injector->corruptFirstHit()) {
        // Fault injection: the FHP yields a wrong sub-vector. The BC
        // proceeds in good faith; only the TimingChecker's shadow
        // gather model (or the end-of-run functional check) can tell.
        ++statCorruptedFirstHits;
        if (sub.count > 1) {
            --sub.count; // lost the tail element
        } else {
            st.expected = 0; // predicted no-hit: sub-vector dropped
            return;
        }
    }
    st.expected = sub.count;

    if (fifo.size() >= cfg.fifoEntries) {
        throw SimError(SimErrorKind::Overflow, name(), now,
                       "request FIFO overflow (bus transaction limit "
                       "violated?)");
    }
    if (injector) {
        st.respAddrs.clear();
        st.respSlots.clear();
        for (std::uint32_t j = 0; j < sub.count; ++j) {
            std::uint32_t idx = sub.index(j);
            st.respAddrs.push_back(
                cmd.base + static_cast<WordAddr>(cmd.stride) * idx);
            st.respSlots.push_back(static_cast<std::uint8_t>(idx));
        }
    }

    // --- Latency through FHP / RQF / FHC (sections 5.2.2-5.2.3) -------
    const Cycle enq = now + 1; // FHP takes one cycle
    Cycle visible;
    const bool pow2 = isPowerOfTwo(cmd.stride);
    if (pow2) {
        // FHP computed the address; ACC is set on entry.
        bool bypass = cfg.bypassEnabled && fifo.empty() &&
                      vcs.size() < cfg.vectorContexts;
        visible = bypass ? now + 1 : now + 2;
        if (bypass)
            ++statBypasses;
    } else {
        // FHC: 2-cycle multiply-and-add, serialized over queued
        // requests, plus a register-file writeback unless the bypass
        // path applies (single outstanding request).
        Cycle start = std::max(enq, fhcBusyUntil);
        Cycle fhc_done = start + cfg.fhcLatency;
        fhcBusyUntil = fhc_done;
        bool bypass = cfg.bypassEnabled && fifo.empty() && vcs.empty();
        visible = bypass ? fhc_done : fhc_done + 1;
        if (bypass)
            ++statBypasses;
    }

    Request &req = fifo.pushBack();
    req.cmd = cmd;
    req.sub = sub;
    req.visibleAt = visible;
    req.explicitAddrs.clear();
    req.explicitSlots.clear();
    PVA_TRACE_INSTANT(traceTrack(), now, "fh_hit", "txn", cmd.txn,
                      "elems", st.expected);
}

void
BankController::loadWriteLine(std::uint8_t txn, const std::vector<Word> &line)
{
    Staging &st = staging[txn];
    st.line = line;
    st.haveWriteData = true;
}

void
BankController::collectInto(std::uint8_t txn, std::vector<Word> &out) const
{
    const Staging &st = staging[txn];
    for (std::size_t i = 0; i < st.valid.size() && i < out.size(); ++i) {
        if (st.valid[i])
            out[i] = st.line[i];
    }
}

void
BankController::releaseTxn(std::uint8_t txn)
{
    staging[txn].reset();
}

void
BankController::drainDeviceReturns(Cycle now)
{
    ReadReturn r;
    while (dev.popReady(now, r)) {
        tickActivity = true;
        if (injector && injector->dropTransfer()) {
            // Fault injection: the word is lost between the device
            // pins and the staging unit. maybeRecover() re-fetches it
            // once the transaction is otherwise quiescent.
            ++statDroppedReturns;
            continue;
        }
        Staging &st = staging[r.txn];
        if (!st.active || !st.isRead) {
            throw SimError(SimErrorKind::Protocol, name(), now,
                           csprintf("stray read return for transaction "
                                    "%u", r.txn));
        }
        st.line[r.slot] = r.data;
        st.valid[r.slot] = 1;
        ++st.got;
        PVA_TRACE_BLOCK(
            if (st.got >= st.expected)
                PVA_TRACE_INSTANT(traceTrack(), now, "sub_complete",
                                  "txn", r.txn););
    }
}

bool
BankController::hasWorkFor(std::uint8_t txn) const
{
    for (std::size_t i = 0; i < fifo.size(); ++i) {
        if (fifo[i].cmd.txn == txn)
            return true;
    }
    for (std::size_t i = 0; i < vcs.size(); ++i) {
        if (vcs[i].cmd.txn == txn && !vcs[i].done())
            return true;
    }
    return false;
}

void
BankController::maybeRecover(Cycle now)
{
    if (!injector || !dev.quiescent())
        return;
    for (std::size_t t = 0; t < staging.size(); ++t) {
        Staging &st = staging[t];
        if (!st.active || !st.isRead || st.got >= st.expected)
            continue;
        if (st.respAddrs.empty() ||
            hasWorkFor(static_cast<std::uint8_t>(t)))
            continue;
        if (vcs.size() >= cfg.vectorContexts)
            return; // no free vector context; retry next cycle

        // Every element this BC owed is accounted for except the
        // dropped ones: re-expand exactly the missing slots into a
        // fresh explicit-list vector context.
        VectorContext &vc = vcs.pushBack();
        vc.cmd = st.cmd;
        vc.sub = SubVector{};
        vc.issued = 0;
        vc.firstAddr = 0;
        vc.stepWords = 0;
        vc.firstOpDone = false;
        vc.explicitAddrs.clear();
        vc.explicitSlots.clear();
        for (std::size_t i = 0; i < st.respSlots.size(); ++i) {
            if (!st.valid[st.respSlots[i]]) {
                vc.explicitAddrs.push_back(st.respAddrs[i]);
                vc.explicitSlots.push_back(st.respSlots[i]);
            }
        }
        if (vc.explicitAddrs.empty()) {
            vcs.popBack();
            continue;
        }
        ++statRecoveries;
        tickActivity = true;
        PVA_TRACE_INSTANT(traceTrack(), now, "recover", "txn",
                          vc.cmd.txn, "elems", vc.explicitAddrs.size());
        (void)now;
    }
}

void
BankController::dequeueIntoVc(Cycle now)
{
    if (fifo.empty() || vcs.size() >= cfg.vectorContexts)
        return;
    if (fifo.front().visibleAt > now)
        return;
    if (lastDequeue != kNeverCycle && lastDequeue == now)
        return; // one dequeue per cycle
    lastDequeue = now;
    tickActivity = true;

    Request &req = fifo.front();

    PVA_TRACE_INSTANT(traceTrack(), now, "vc_dequeue", "txn",
                      req.cmd.txn);

    VectorContext &vc = vcs.pushBack();
    vc.cmd = req.cmd;
    vc.sub = req.sub;
    vc.issued = 0;
    vc.firstOpDone = false;
    // Swap, don't move: the retired FIFO slot inherits the VC slot's
    // old list capacity and both keep circulating in their rings.
    vc.explicitAddrs.swap(req.explicitAddrs);
    vc.explicitSlots.swap(req.explicitSlots);
    if (vc.explicitAddrs.empty()) {
        vc.firstAddr =
            req.cmd.base +
            static_cast<WordAddr>(req.cmd.stride) * req.sub.firstIndex;
        vc.stepWords =
            static_cast<WordAddr>(req.cmd.stride) * req.sub.delta;
    } else {
        vc.firstAddr = 0;
        vc.stepWords = 0;
    }
    fifo.popFront();
}

bool
BankController::otherVcHitsOpenRow(const DeviceCoords &target,
                                   const VectorContext *except) const
{
    if (!devSlotRowOpen(target))
        return false;
    std::uint32_t open = devOpenRowAt(target);
    unsigned tslot = slotOf(target);
    for (std::size_t i = 0; i < vcs.size(); ++i) {
        const VectorContext &vc = vcs[i];
        if (&vc == except || vc.done())
            continue;
        DeviceCoords c = geo.decompose(vc.addrAt(vc.issued));
        if (slotOf(c) == tslot && c.row == open)
            return true;
    }
    return false;
}

bool
BankController::olderVcHitsOpenRow(const DeviceCoords &target,
                                   std::size_t vc_index) const
{
    if (!devSlotRowOpen(target))
        return false;
    std::uint32_t open = devOpenRowAt(target);
    unsigned tslot = slotOf(target);
    for (std::size_t i = 0; i < vc_index && i < vcs.size(); ++i) {
        const VectorContext &vc = vcs[i];
        if (vc.done())
            continue;
        DeviceCoords c = geo.decompose(vc.addrAt(vc.issued));
        if (slotOf(c) == tslot && c.row == open)
            return true;
    }
    return false;
}

bool
BankController::anyVcMissesOpenRow(const DeviceCoords &target) const
{
    if (!devSlotRowOpen(target))
        return false;
    std::uint32_t open = devOpenRowAt(target);
    unsigned tslot = slotOf(target);
    for (std::size_t i = 0; i < vcs.size(); ++i) {
        const VectorContext &vc = vcs[i];
        if (vc.done())
            continue;
        DeviceCoords c = geo.decompose(vc.addrAt(vc.issued));
        if (slotOf(c) == tslot && c.row != open)
            return true;
    }
    return false;
}

bool
BankController::tryActivatePrecharge(Cycle now)
{
    // "Promote row opens and precharges above read and write operations,
    // as long as they do not conflict with the open rows being used by
    // some other VC" — oldest VC first (the daisy chain). A precharge is
    // only vetoed by *older* VCs' hit predictions; a younger VC cannot
    // hold an older one hostage (it may itself be polarity-stalled
    // behind the older VC, which would deadlock).
    for (std::size_t vi = 0; vi < vcs.size(); ++vi) {
        VectorContext &vc = vcs[vi];
        if (vc.done())
            continue;
        DeviceCoords c = geo.decompose(vc.addrAt(vc.issued));
        if (devIsRowOpen(c.internalBank, c.row))
            continue; // ready, nothing to open

        if (!devSlotRowOpen(c)) {
            DeviceOp op;
            op.kind = DeviceOp::Kind::Activate;
            op.addr = vc.addrAt(vc.issued);
            if (devCanIssue(op, now)) {
                if (!vc.firstOpDone) {
                    // Autoprecharge predictor: a new request whose first
                    // row differs from the row last open in this row
                    // slot predicts "close after use".
                    autoPrePredict[slotOf(c)] = devLastRowAt(c) != c.row;
                    vc.firstOpDone = true;
                }
                devIssue(op, now);
                return true;
            }
        } else if (!olderVcHitsOpenRow(c, vi)) {
            // bank_hit_predict not asserted by any older VC: safe to
            // close the row.
            DeviceOp op;
            op.kind = DeviceOp::Kind::Precharge;
            op.internalBank = c.internalBank;
            op.subarray = bpol.subarrayOf(c.row);
            if (devCanIssue(op, now)) {
                devIssue(op, now);
                return true;
            }
        }
    }
    return false;
}

bool
BankController::decideAutoPrecharge(const VectorContext &vc,
                                    const DeviceCoords &c)
{
    if (cfg.rowPolicy == RowPolicy::AlwaysClose)
        return true;
    if (cfg.rowPolicy == RowPolicy::AlwaysOpen)
        return false;
    bool last_element = vc.issued + 1 >= vc.count();
    if (last_element) {
        if (otherVcHitsOpenRow(c, &vc))
            return false; // bank_morehit_predict: leave open
        if (anyVcMissesOpenRow(c))
            return true; // bank_close_predict: close it
        return autoPrePredict[slotOf(c)];
    }
    DeviceCoords nc = geo.decompose(vc.addrAt(vc.issued + 1));
    if (nc.internalBank == c.internalBank && nc.row == c.row)
        return false; // our own next access hits the same row
    if (otherVcHitsOpenRow(c, &vc))
        return false;
    return true;
}

bool
BankController::tryReadWrite(Cycle now)
{
    // Polarity rule (section 5.2.4): a VC may issue only if the SDRAM
    // data bus has the same polarity and no polarity reversal is pending
    // in any older VC. The oldest pending VC may always reverse.
    bool reversal_blocked = false;
    bool first_pending = true;
    for (std::size_t vi = 0; vi < vcs.size(); ++vi) {
        VectorContext &vc = vcs[vi];
        if (vc.done())
            continue;
        bool wants_reversal = anyDirYet && vc.cmd.isRead != lastDirRead;
        bool polarity_ok =
            first_pending || (!reversal_blocked && !wants_reversal);

        DeviceCoords c = geo.decompose(vc.addrAt(vc.issued));
        bool row_ready = devIsRowOpen(c.internalBank, c.row);
        bool data_ready =
            vc.cmd.isRead || staging[vc.cmd.txn].haveWriteData;

        if (polarity_ok && row_ready && data_ready) {
            std::uint32_t slot = vc.slotAt(vc.issued);
            DeviceOp op;
            op.kind = vc.cmd.isRead ? DeviceOp::Kind::Read
                                    : DeviceOp::Kind::Write;
            op.addr = vc.addrAt(vc.issued);
            op.txn = vc.cmd.txn;
            op.slot = static_cast<std::uint8_t>(slot);
            op.autoPrecharge = decideAutoPrecharge(vc, c);
            if (!vc.cmd.isRead)
                op.writeData = staging[vc.cmd.txn].line[slot];

            if (devCanIssue(op, now)) {
                if (!vc.firstOpDone) {
                    autoPrePredict[slotOf(c)] = devLastRowAt(c) != c.row;
                    vc.firstOpDone = true;
                }
                devIssue(op, now);
                lastDirRead = vc.cmd.isRead;
                anyDirYet = true;
                ++statElements;
                if (!vc.cmd.isRead) {
                    Staging &wst = staging[vc.cmd.txn];
                    ++wst.got; // committed to SDRAM
                    PVA_TRACE_BLOCK(
                        if (wst.got >= wst.expected)
                            PVA_TRACE_INSTANT(traceTrack(), now,
                                              "sub_complete", "txn",
                                              vc.cmd.txn););
                }
                ++vc.issued;
                if (vc.done())
                    vcs.eraseAt(vi);
                return true;
            }
        }

        if (wants_reversal)
            reversal_blocked = true;
        first_pending = false;
    }
    return false;
}

void
BankController::tick(Cycle now)
{
    creditFrozen(now); // bring occupancy stats current through now - 1
    tickActivity = false;
    devTick(now); // apply auto-refresh before scheduling decisions
    drainDeviceReturns(now);
    if (injector && injector->bcStall()) {
        // Fault injection: the scheduler loses this cycle (delayed
        // bank-controller response). Returns were still drained; all
        // dequeue/issue work waits for the next cycle.
        ++statStallCycles;
        PVA_TRACE_INSTANT(traceTrack(), now, "stall");
        accountCycle(now);
        return;
    }
    maybeRecover(now);
    dequeueIntoVc(now);
    bool issued = tryActivatePrecharge(now);
    if (!issued)
        issued = tryReadWrite(now);
    if (issued) {
        ++statSchedActiveCycles;
        tickActivity = true;
    }

    // Occupancy accounting (end-of-tick state, so a full pipeline
    // shows vectorContexts, not a transient).
    accountCycle(now);

    PVA_TRACE_BLOCK(
        // Occupancy counters, emitted only on change to bound the
        // trace volume on long runs.
        if (traceTrack() != 0) {
            if (vcs.size() != traceLastVcs) {
                traceLastVcs = vcs.size();
                PVA_TRACE_COUNTER(traceTrack(), now, "vcs",
                                  traceLastVcs);
            }
            if (fifo.size() != traceLastFifo) {
                traceLastFifo = fifo.size();
                PVA_TRACE_COUNTER(traceTrack(), now, "fifo",
                                  traceLastFifo);
            }
        });
}

bool
BankController::idle() const
{
    return fifo.empty() && vcs.empty() && dev.quiescent();
}

Cycle
BankController::nextWakeAfter(Cycle now) const
{
    if (injector)
        return now + 1; // keep the fault RNG stream tick-indexed
    if (tickActivity)
        return now + 1;
    if (idle()) {
        // The device's refresh clock runs from this controller's tick,
        // so even an idle controller wakes for the device's next timing
        // event — the tREFI boundary in particular. Stale per-bank
        // timers at worst wake it early, which is a no-op tick.
        return devNextTimingEventAfter(now);
    }
    Cycle wake = devNextTimingEventAfter(now);
    if (!fifo.empty()) {
        Cycle v = fifo.front().visibleAt;
        Cycle c = v > now ? v : now + 1;
        if (c < wake)
            wake = c;
    }
    // Pending work always has a device timer or FIFO visibility cycle
    // behind it; if the scoreboard reports none, fall back to stepping
    // (correct, merely slower).
    return wake == kNeverCycle ? now + 1 : wake;
}

void
BankController::registerStats(StatSet &set, const std::string &prefix) const
{
    set.addScalar(prefix + ".commandsSeen", &statCommandsSeen);
    set.addScalar(prefix + ".commandsHit", &statCommandsHit);
    set.addScalar(prefix + ".elements", &statElements);
    set.addScalar(prefix + ".bypasses", &statBypasses);
    set.addScalar(prefix + ".schedActiveCycles", &statSchedActiveCycles);
    set.addScalar(prefix + ".stallCycles", &statStallCycles);
    set.addScalar(prefix + ".droppedReturns", &statDroppedReturns);
    set.addScalar(prefix + ".recoveries", &statRecoveries);
    set.addScalar(prefix + ".corruptedFirstHits",
                  &statCorruptedFirstHits);
    set.addScalar(prefix + ".vcOccupancy", &statVcOccupancy);
    set.addScalar(prefix + ".vcFullCycles", &statVcFullCycles);
    set.addScalar(prefix + ".fifoOccupancy", &statFifoOccupancy);
    set.addScalar(prefix + ".fifoPeak", &statFifoPeak);
}

} // namespace pva
