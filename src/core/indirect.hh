/**
 * @file
 * Two-phase vector-indirect scatter/gather (chapter 7 extension).
 *
 * Phase 1 loads the indirection vector with ordinary unit-stride vector
 * reads. Phase 2 broadcasts the loaded indices across the vector bus
 * (two addresses per cycle); each bank controller selects the elements
 * whose addresses decode to its bank with a simple bit-mask and gathers
 * or scatters them in parallel, coalescing through the staging units
 * exactly like strided accesses.
 */

#ifndef PVA_CORE_INDIRECT_HH
#define PVA_CORE_INDIRECT_HH

#include <cstdint>
#include <vector>

#include "core/memory_system.hh"
#include "core/vector_command.hh"
#include "sim/simulation.hh"

namespace pva
{

/** Phase-1 commands: unit-stride reads covering @p count index words at
 *  @p index_vec_base, chunked into @p line_words-element lines. */
std::vector<VectorCommand> indirectPhase1(WordAddr index_vec_base,
                                          std::uint32_t count,
                                          unsigned line_words);

/** Phase-2 commands: indirect accesses at target_base + indices[i],
 *  chunked into line-sized commands. */
std::vector<VectorCommand> indirectPhase2(WordAddr target_base,
                                          const std::vector<WordAddr> &indices,
                                          unsigned line_words, bool is_read);

/** Result of a blocking indirect run. */
struct IndirectRunResult
{
    std::vector<Word> data; ///< Gathered element values (reads)
    Cycle cycles;           ///< Total cycles including phase 1
};

/**
 * Run a complete two-phase indirect gather: load @p count indices from
 * @p index_vec_base, then gather target_base + index for each. Drives
 * @p sys on @p sim until done.
 */
IndirectRunResult runIndirectGather(MemorySystem &sys, Simulation &sim,
                                    WordAddr index_vec_base,
                                    std::uint32_t count,
                                    WordAddr target_base,
                                    unsigned line_words = 32);

/**
 * Run a two-phase indirect scatter: load indices, then write
 * @p values[i] to target_base + index[i].
 */
Cycle runIndirectScatter(MemorySystem &sys, Simulation &sim,
                         WordAddr index_vec_base, std::uint32_t count,
                         WordAddr target_base,
                         const std::vector<Word> &values,
                         unsigned line_words = 32);

} // namespace pva

#endif // PVA_CORE_INDIRECT_HH
