/**
 * @file
 * The Parallel Vector Access unit: bank controllers + vector bus + the
 * memory-controller front end of section 5.2.6.
 *
 * Read transaction lifecycle:
 *   VEC_READ broadcast (1 request cycle) -> every BC gathers its
 *   sub-vector into its staging unit -> wired-OR transaction-complete
 *   line deasserts -> front end issues STAGE_READ -> 16 data cycles
 *   return the 128-byte line (2 words per cycle) -> completion.
 *
 * Write transaction lifecycle:
 *   STAGE_WRITE (1 request cycle) -> 16 data cycles push the line into
 *   the BCs' write staging -> VEC_WRITE broadcast -> BCs scatter ->
 *   transaction-complete deasserts when all data is committed to SDRAM
 *   -> completion.
 *
 * The same unit instantiated over SramDevice banks is the paper's
 * "parallel vector access SRAM" comparison system.
 *
 * Batched bank-controller ticking (docs/PERFORMANCE.md): the front end
 * caches each BC's wake cycle (the Component::nextWakeAfter contract)
 * and skips ticking controllers that are provably quiescent until
 * then. Saturated vector workloads concentrate on few banks at a time,
 * so most of the M controllers are skippable on most cycles. Every
 * external input to a BC — a VEC_READ/VEC_WRITE broadcast or a
 * STAGE_WRITE line delivery — resets that BC's cached wake to the
 * current cycle, preserving cycle-exactness by the same argument as
 * the event clocking core. cfg.batchTicking = false restores the
 * tick-every-BC-every-cycle reference behaviour.
 */

#ifndef PVA_CORE_PVA_UNIT_HH
#define PVA_CORE_PVA_UNIT_HH

#include <memory>
#include <vector>

#include "bus/vector_bus.hh"
#include "core/bank_controller.hh"
#include "core/memory_system.hh"
#include "core/system_config.hh"
#include "sdram/device.hh"
#include "sdram/geometry.hh"
#include "sim/pool.hh"

namespace pva
{

class TimingChecker;

/** The PVA unit as a complete memory system. */
class PvaUnit : public MemorySystem
{
  public:
    PvaUnit(std::string name, const PvaConfig &config);
    ~PvaUnit() override;

    bool trySubmit(const VectorCommand &cmd, std::uint64_t tag,
                   const std::vector<Word> *write_data) override;
    void drainCompletionsInto(std::vector<Completion> &out) override;
    void recycleLine(std::vector<Word> &&line) override;
    bool busy() const override;
    std::size_t inFlight() const override { return activeTxns; }
    SparseMemory &memory() override { return backing; }
    StatSet &stats() override { return statSet; }

    /** Final so the Simulation's typed dispatch is a direct call. */
    void tick(Cycle now) final;

    /**
     * Wake contract: earliest of the txn state machine's timed
     * transitions (readyAt), the vector bus freeing for a queued
     * request, and every bank controller's cached wake; now + 1
     * whenever the last tick changed state; kNeverCycle when fully
     * drained.
     */
    Cycle nextWakeAfter(Cycle now) const final;

    /**
     * Top-of-cycle hook: brings the per-cycle occupancy stats current
     * (front end and BCs) for any cycles not yet accounted — spans
     * skipped by event clocking and, per BC, by batched ticking; state
     * was frozen over those cycles, so the credit is exact — and
     * stamps the acceptedAt reference cycle trySubmit uses, keeping
     * submission timestamps identical to the exhaustive stepper's.
     */
    void onCycleBegin(Cycle now) final;

    /** Direct access for white-box tests. */
    BankController &bankController(unsigned i) { return *bcs[i]; }
    const PvaConfig &config() const { return cfg; }
    VectorBus &bus() { return vectorBus; }

  private:
    enum class TxnState
    {
        Free,
        QueuedRead,     ///< Waiting for a bus cycle to broadcast VEC_READ
        Gathering,      ///< BCs collecting; waiting on complete line
        StagePending,   ///< Complete; waiting for the bus for STAGE_READ
        Staging,        ///< Data cycles in progress
        QueuedWrite,    ///< Waiting for the bus to start STAGE_WRITE
        WriteData,      ///< Write data cycles in progress
        VecWritePending, ///< Data sent; waiting to broadcast VEC_WRITE
        Scattering,     ///< BCs writing to SDRAM
    };

    struct Txn
    {
        TxnState state = TxnState::Free;
        VectorCommand cmd;
        std::uint64_t tag = 0;
        std::vector<Word> writeData;
        Cycle readyAt = 0;   ///< Next state-transition time where timed
        Cycle acceptedAt = 0; ///< For the latency distributions
    };

    /**
     * All BCs finished transaction @p id (the wired-OR line)? Scans
     * from the per-txn resume index: a BC's completion is monotone
     * between broadcast and release, so controllers already seen
     * complete are never re-polled.
     */
    bool allBcsComplete(std::uint8_t id);

    /** Broadcast an external input to every BC's cached wake (the BC
     *  must tick this cycle to take it). */
    void
    wakeAllBcs(Cycle now)
    {
        for (Cycle &w : bcWake)
            w = now;
    }

    /** Trace track for transaction slot @p id (0 when untraced). */
    std::uint32_t
    txnTrack(std::uint8_t id) const
    {
        return id < txnTracks.size() ? txnTracks[id] : 0;
    }

    /** Take a recycled line buffer from the pool (or an empty one). */
    std::vector<Word>
    takeLine()
    {
        if (linePool.empty())
            return {};
        std::vector<Word> line = std::move(linePool.back());
        linePool.pop_back();
        return line;
    }

    void finishRead(std::uint8_t id, Cycle now);
    void finishWrite(std::uint8_t id, Cycle now);

    PvaConfig cfg;
    SparseMemory backing;
    VectorBus vectorBus;
    std::vector<std::unique_ptr<BankDevice>> devices;
    std::vector<std::unique_ptr<BankController>> bcs;
    /** Redundant protocol/data checker (present iff cfg.timingCheck). */
    std::unique_ptr<TimingChecker> checker;

    std::vector<Txn> txns;
    RingDeque<std::uint8_t> submitOrder; ///< FIFO of queued commands
    std::vector<Completion> completions;
    /** Recycled read-line buffers (recycleLine() -> finishRead()). */
    std::vector<std::vector<Word>> linePool;

    /** Cached per-BC wake cycle (see file comment); maintained in both
     *  batching modes, consulted by the tick loop only when batching. */
    std::vector<Cycle> bcWake;
    /** Per-txn first bank controller not yet seen complete. */
    std::vector<unsigned> bcScanFrom;
    std::size_t activeTxns = 0; ///< Txn slots not Free

    StatSet statSet;
    Scalar statReads;
    Scalar statWrites;
    Scalar statCtxOccupancy;  ///< Sum over ticks of in-flight txns
    Scalar statCtxFullCycles; ///< Ticks with no free transaction slot
    Cycle lastTickCycle = 0;
    Cycle lastProcessedTick = 0; ///< Last cycle tick() actually ran
    bool tickedYet = false;
    bool tickActivity = false; ///< Did the last tick change state?

    /** Per-transaction-slot trace tracks; empty when untraced. */
    std::vector<std::uint32_t> txnTracks;
    /** Last in-flight count traced (counter emitted on change only). */
    std::size_t traceLastActive = SIZE_MAX;
    Distribution statReadLatency{4};  ///< Submit-to-data, 4-cycle buckets
    Distribution statWriteLatency{4}; ///< Submit-to-commit
};

} // namespace pva

#endif // PVA_CORE_PVA_UNIT_HH
