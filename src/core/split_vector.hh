/**
 * @file
 * SplitVector and the memory-controller TLB model (section 4.3.2).
 *
 * Long application vectors can only be fetched in parallel while they
 * are physically contiguous, i.e. within one superpage. SplitVector
 * divides a virtual vector operation into per-superpage physical vector
 * operations using the paper's division-free lower-bound trick: instead
 * of dividing the words remaining on the page by the stride, it shifts
 * by ceil(log2(stride)), issuing a safe underestimate and looping.
 */

#ifndef PVA_CORE_SPLIT_VECTOR_HH
#define PVA_CORE_SPLIT_VECTOR_HH

#include <cstdint>
#include <vector>

#include "core/vector_command.hh"
#include "sim/types.hh"

namespace pva
{

/**
 * The memory controller's view of the page table: virtual superpages
 * mapped onto physical superpages. Sizes are powers of two (in words)
 * and both bases are size-aligned, as the paper assumes.
 */
class MmcTlb
{
  public:
    struct Translation
    {
        WordAddr phys;          ///< Physical word address
        std::uint32_t pageSize; ///< Superpage size in words (power of 2)
    };

    /** Map [vbase, vbase+size) to [pbase, pbase+size). */
    void mapSuperpage(WordAddr vbase, WordAddr pbase, std::uint32_t size);

    /** Translate @p vaddr; fatal() if unmapped (a user setup error). */
    Translation lookup(WordAddr vaddr) const;

    /** Convenience: identity-map [base, base+span) with @p page_size
     *  pages. */
    void identityMap(WordAddr base, std::uint64_t span,
                     std::uint32_t page_size);

  private:
    struct Entry
    {
        WordAddr vbase;
        WordAddr pbase;
        std::uint32_t size;
    };

    std::vector<Entry> entries;
};

/**
 * Split virtual vector @p v into physical per-superpage vector commands
 * (the paper's SplitVector algorithm). The result preserves element
 * order: concatenating the sub-commands' elements yields the physical
 * translations of v's elements.
 */
std::vector<VectorCommand> splitVector(const VectorCommand &v,
                                       const MmcTlb &tlb);

} // namespace pva

#endif // PVA_CORE_SPLIT_VECTOR_HH
