/**
 * @file
 * Multi-stream load generation: the request sources of the traffic
 * subsystem (docs/TRAFFIC.md).
 *
 * A StreamSource produces a deterministic sequence of vector commands
 * under one of three arrival disciplines:
 *
 *  - ClosedLoop: a fixed window of outstanding requests; a new request
 *    arrives the moment a slot frees (classic think-time-zero closed
 *    loop, the discipline of the kernel harness).
 *  - OpenLoop: requests arrive on a precomputed schedule drawn from
 *    the seeded splitmix64 streams (sim/random.hh), independent of
 *    completion — the discipline that exposes queueing and tail
 *    latency at a given offered load.
 *  - Trace: replay of a kernels/trace_file script, issued closed-loop
 *    with the stream's window and honouring barriers.
 *
 * Two RNG streams are derived from the stream seed: one for the
 * command pattern (<B,S,L> draws, read/write mix, write data), one for
 * inter-arrival times. The command sequence is therefore identical
 * across offered loads, which makes throughput-latency sweeps
 * apples-to-apples (and monotone: scaling the rate scales every
 * inter-arrival gap by the same per-draw factor).
 */

#ifndef PVA_TRAFFIC_STREAM_HH
#define PVA_TRAFFIC_STREAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/vector_command.hh"
#include "kernels/trace_file.hh"
#include "sim/memory.hh"
#include "sim/random.hh"
#include "sim/types.hh"

namespace pva
{

/** When do a stream's requests arrive? */
enum class ArrivalMode
{
    ClosedLoop, ///< Fixed outstanding-request window
    OpenLoop,   ///< Seeded deterministic arrival schedule
    Trace,      ///< kernels/trace_file replay (closed-loop + barriers)
};

/** The <B,S,L> distribution one stream draws its commands from. */
struct PatternConfig
{
    WordAddr regionBase = 0;        ///< Start of the stream's region
    WordAddr regionWords = 1 << 20; ///< Region size (commands fit inside)
    std::uint32_t minStride = 1;    ///< V.S lower bound (words)
    std::uint32_t maxStride = 8;    ///< V.S upper bound (inclusive)
    std::uint32_t minLength = 32;   ///< V.L lower bound (elements)
    std::uint32_t maxLength = 32;   ///< V.L upper bound (inclusive)
    double readFraction = 1.0;      ///< P(command is a gather)
    /** Stride (default) or Indirect (uniform indices in the region). */
    VectorCommand::Mode mode = VectorCommand::Mode::Stride;
};

/** Full configuration of one traffic stream. */
struct StreamConfig
{
    std::string name;            ///< Defaults to "s<id>" when empty
    ArrivalMode mode = ArrivalMode::ClosedLoop;
    unsigned window = 4;         ///< Closed-loop/trace outstanding limit
    double requestsPerKilocycle = 10.0; ///< Open-loop offered rate
    std::uint64_t requests = 256; ///< Requests to generate (non-trace)
    unsigned priority = 0;       ///< Larger = more urgent (Priority policy)
    unsigned queueCapacity = 16; ///< Arbiter per-stream queue bound
    /** Queueing-delay budget before a queued request is shed (cycles;
     *  0 inherits ShedConfig::defaultDeadline). Only consulted when
     *  shedding is enabled — see ArbiterConfig::shed. */
    Cycle deadline = 0;
    std::uint64_t seed = 1;      ///< Pattern + arrival RNG seed
    PatternConfig pattern;
    std::string tracePath;       ///< Trace mode input file
};

/** One generated request travelling through the arbiter. */
struct TrafficRequest
{
    unsigned stream = 0;       ///< Originating stream id
    std::uint64_t seqNo = 0;   ///< Per-stream sequence number
    Cycle arrival = 0;         ///< Scheduled arrival time
    VectorCommand cmd;
    std::vector<Word> writeData; ///< Dense line for scatters
};

/** One stream's deterministic request generator. */
class StreamSource
{
  public:
    /**
     * @param line_words the target system's cache-line element count
     *        (command lengths are validated against it).
     * Throws SimError(Config) on unsupportable configuration or an
     * unreadable/malformed trace file.
     */
    StreamSource(const StreamConfig &config, unsigned id,
                 unsigned line_words);

    const StreamConfig &config() const { return cfg; }
    unsigned id() const { return streamId; }
    const std::string &name() const { return cfg.name; }

    /** No further requests will ever arrive. */
    bool exhausted() const;

    /** Is a request available to admit at @p now? */
    bool arrivalReady(Cycle now) const;

    /** Pop the next request (call only when arrivalReady()). */
    TrafficRequest emit(Cycle now);

    /** A request of this stream completed (releases a window slot). */
    void onComplete();

    /** Requests generated so far. */
    std::uint64_t emitted() const { return emittedCount; }

    /** Requests currently outstanding (closed-loop accounting). */
    std::uint64_t inWindow() const { return outstanding; }

    /** Open-loop schedule head: when the next arrival is due (may be
     *  in the past while backpressured). Meaningful only in OpenLoop
     *  mode; closed-loop/trace arrivals are completion-driven. */
    Cycle nextArrivalCycle() const { return nextArrival; }

    /** Apply the trace's poke preamble to the functional memory
     *  (no-op for non-trace streams). */
    void applyPokes(SparseMemory &mem) const;

  private:
    TrafficRequest makePatternRequest(Cycle now);
    TrafficRequest makeTraceRequest(Cycle now);
    /** Advance past satisfied barriers; the next emittable trace op
     *  (if any) ends up at traceNext. */
    bool traceHeadReady() const;

    StreamConfig cfg;
    unsigned streamId;
    unsigned lineWords;

    Random patternRng; ///< <B,S,L>, read/write mix, write data
    Random arrivalRng; ///< Open-loop inter-arrival gaps

    std::uint64_t emittedCount = 0;
    std::uint64_t outstanding = 0; ///< Closed-loop / trace window
    Cycle nextArrival = 0;         ///< Open-loop schedule head

    TraceFile trace;               ///< Trace mode ops (pokes stripped)
    std::size_t traceNext = 0;
    std::vector<std::pair<WordAddr, Word>> tracePokes;
};

} // namespace pva

#endif // PVA_TRAFFIC_STREAM_HH
