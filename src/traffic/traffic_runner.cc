#include "traffic/traffic_runner.hh"

#include <algorithm>
#include <ostream>
#include <set>

#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"
#include "sim/trace.hh"

namespace pva
{

namespace
{

/** Fault-seed advance per retry attempt (matches SweepExecutor). */
constexpr std::uint64_t kRetrySeedStep = 0x9e3779b97f4a7c15ULL;

void
jsonSummary(std::ostream &os, const char *key, const LatencySummary &s)
{
    os << '"' << key << "\": {\"samples\": " << s.samples
       << ", \"min\": " << s.min << ", \"max\": " << s.max
       << ", \"mean\": " << s.mean << ", \"p50\": " << s.p50
       << ", \"p95\": " << s.p95 << ", \"p99\": " << s.p99
       << ", \"p999\": " << s.p999 << "}";
}

} // anonymous namespace

void
TrafficResult::dumpJson(std::ostream &os) const
{
    os << "{\"cycles\": " << cycles << ", \"completed\": " << completed
       << ", \"words\": " << words
       << ", \"requestsPerKilocycle\": " << requestsPerKilocycle
       << ", \"wordsPerCycle\": " << wordsPerCycle
       << ", \"meanInFlight\": " << meanInFlight
       << ", \"bcUtilization\": " << bcUtilization
       << ", \"shed\": " << shed << ", \"shedRate\": " << shedRate
       << ", \"simTicks\": " << simTicks
       << ", \"cyclesSkipped\": " << cyclesSkipped << ", ";
    jsonSummary(os, "queueDelay", queueDelay);
    os << ", ";
    jsonSummary(os, "serviceLatency", serviceLatency);
    os << ", ";
    jsonSummary(os, "totalLatency", totalLatency);
    os << ", \"streams\": [";
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const StreamResult &s = streams[i];
        os << (i ? ", " : "") << "{\"name\": \"" << s.name
           << "\", \"requests\": " << s.requests
           << ", \"completed\": " << s.completed
           << ", \"deferrals\": " << s.deferrals
           << ", \"shedDeadline\": " << s.shedDeadline
           << ", \"shedOverload\": " << s.shedOverload
           << ", \"queuePeak\": " << s.queuePeak
           << ", \"words\": " << s.words << ", ";
        jsonSummary(os, "queueDelay", s.queueDelay);
        os << ", ";
        jsonSummary(os, "serviceLatency", s.serviceLatency);
        os << ", ";
        jsonSummary(os, "totalLatency", s.totalLatency);
        os << "}";
    }
    os << "]}";
}

TrafficResult
runTraffic(const TrafficConfig &config, std::ostream *stats_dump)
{
    if (config.streams.empty()) {
        throw SimError(SimErrorKind::Config, "traffic", kNeverCycle,
                       "at least one stream is required");
    }

    // Build the sources first (they validate their own config) and
    // reject duplicate display names, which would collide in the
    // ServiceStats registry.
    std::vector<StreamSource> sources;
    std::vector<std::string> names;
    std::set<std::string> seen;
    sources.reserve(config.streams.size());
    for (unsigned i = 0; i < config.streams.size(); ++i) {
        sources.emplace_back(config.streams[i], i,
                             config.config.bc.lineWords);
        const std::string &name = sources.back().name();
        if (!seen.insert(name).second) {
            throw SimError(SimErrorKind::Config, "traffic", kNeverCycle,
                           csprintf("duplicate stream name '%s'",
                                    name.c_str()));
        }
        names.push_back(name);
    }

    auto sys = makeSystem(config.system, config.config);
    ServiceStats stats(names);
    StreamArbiter arbiter(config.arbiter, std::move(sources), stats);
    arbiter.applyPokes(sys->memory());
    PVA_TRACE_BLOCK(
        if (trace::TraceSession *ts = trace::session())
            arbiter.setTraceTrack(
                ts->registerTrack("traffic", "arbiter")););

    Simulation sim(config.config.clocking);
    sim.add(sys.get());
    sim.runUntil(
        [&] {
            bool done = arbiter.service(*sys, sim.now());
            // The arbiter is not a Component; its self-scheduled work
            // (open-loop arrivals, post-change cascades) is posted as
            // external wakes. No-op under exhaustive clocking.
            if (!done)
                sim.requestWake(arbiter.nextWake(sim.now()));
            return done;
        },
        config.limits.maxCycles, config.limits.timeoutMillis);

    TrafficResult r;
    r.cycles = sim.now();
    r.simTicks = sim.simTicks();
    r.cyclesSkipped = sim.cyclesSkipped();
    r.cyclesPerSecond = sim.cyclesPerSecond();
    sys->recordSimPerf(r.simTicks, r.cyclesSkipped, r.cyclesPerSecond);
    r.completed = stats.completedTotal();
    r.words = stats.wordsTotal();
    if (r.cycles > 0) {
        r.requestsPerKilocycle = static_cast<double>(r.completed) *
                                 1000.0 /
                                 static_cast<double>(r.cycles);
        r.wordsPerCycle = static_cast<double>(r.words) /
                          static_cast<double>(r.cycles);
    }
    r.meanInFlight = stats.meanInFlight();
    r.shed = stats.shedTotal();
    if (r.completed + r.shed > 0) {
        r.shedRate = static_cast<double>(r.shed) /
                     static_cast<double>(r.completed + r.shed);
    }
    r.queueDelay = stats.aggregateQueueDelay();
    r.serviceLatency = stats.aggregateServiceLatency();
    r.totalLatency = stats.aggregateTotalLatency();

    // Bank-controller utilization via the occupancy counters the PVA
    // systems register (bc<i>.schedActiveCycles); baselines have no
    // bank controllers and report 0.
    const StatSet &sys_stats = sys->stats();
    unsigned banks = config.config.geometry.banks();
    if (r.cycles > 0 && banks > 0 &&
        sys_stats.hasScalar("bc0.schedActiveCycles")) {
        double active = 0.0;
        for (unsigned b = 0; b < banks; ++b) {
            active += static_cast<double>(sys_stats.scalar(
                csprintf("bc%u.schedActiveCycles", b)));
        }
        r.bcUtilization = active / (static_cast<double>(banks) *
                                    static_cast<double>(r.cycles));
    }

    r.streams.reserve(names.size());
    for (unsigned i = 0; i < names.size(); ++i) {
        StreamResult s;
        s.name = names[i];
        s.requests = arbiter.source(i).emitted();
        s.completed = stats.completed(i);
        s.deferrals = stats.deferrals(i);
        s.shedDeadline = stats.shedDeadline(i);
        s.shedOverload = stats.shedOverload(i);
        s.queuePeak = stats.queuePeak(i);
        s.words =
            stats.set().scalar("traffic." + names[i] + ".wordsRead") +
            stats.set().scalar("traffic." + names[i] + ".wordsWritten");
        s.queueDelay = stats.queueDelay(i);
        s.serviceLatency = stats.serviceLatency(i);
        s.totalLatency = stats.totalLatency(i);
        r.streams.push_back(std::move(s));
    }
    if (stats_dump) {
        stats.set().dump(*stats_dump);
        sys_stats.dump(*stats_dump);
    }
    return r;
}

std::vector<LoadPoint>
runLoadSweep(const LoadSweepConfig &config)
{
    if (config.base.streams.empty()) {
        throw SimError(SimErrorKind::Config, "traffic", kNeverCycle,
                       "load sweep needs at least one stream");
    }
    if (config.offeredLoads.empty()) {
        throw SimError(SimErrorKind::Config, "traffic", kNeverCycle,
                       "load sweep needs at least one offered load");
    }

    // Ascending loads make each curve monotone in offered load.
    std::vector<double> loads = config.offeredLoads;
    std::sort(loads.begin(), loads.end());

    std::vector<LoadPoint> points;
    points.resize(config.systems.size() * loads.size());
    for (std::size_t si = 0; si < config.systems.size(); ++si) {
        for (std::size_t li = 0; li < loads.size(); ++li) {
            LoadPoint &p = points[si * loads.size() + li];
            p.system = config.systems[si];
            p.offered = loads[li];
        }
    }

    SweepExecutor executor(config.jobs);
    executor.setMaxAttempts(config.retries);

    auto task = [&](std::size_t i, unsigned attempt) {
        LoadPoint &p = points[i];
        TrafficConfig tc = config.base;
        tc.system = p.system;
        double per_stream =
            p.offered / static_cast<double>(tc.streams.size());
        for (StreamConfig &s : tc.streams) {
            s.mode = ArrivalMode::OpenLoop;
            s.requestsPerKilocycle = per_stream;
        }
        // A retry of a fault-injected point explores a different
        // fault timeline rather than replaying the failure.
        if (attempt > 0 && tc.config.faults.enabled())
            tc.config.faults.seed += kRetrySeedStep * attempt;
        p.result = runTraffic(tc);
    };

    auto observe = [&](const TaskProgress &tp) {
        points[tp.index].attempts = tp.attempts;
    };

    TaskReport report = executor.runTasks(points.size(), task, observe);
    for (const TaskFailure &f : report.failures) {
        LoadPoint &p = points[f.index];
        p.failed = true;
        p.error = f.error;
        p.result = TrafficResult{};
    }
    return points;
}

void
writeLoadCsvHeader(std::ostream &os)
{
    os << "system,offered_per_kc,achieved_per_kc,words_per_cycle,"
          "lat_mean,lat_p50,lat_p95,lat_p99,lat_p999,"
          "queue_mean,mean_in_flight,bc_utilization,shed,shed_rate,"
          "completed,cycles,status\n";
}

void
writeLoadCsvRow(std::ostream &os, const LoadPoint &point)
{
    const TrafficResult &r = point.result;
    os << systemShortName(point.system) << ',' << point.offered << ','
       << r.requestsPerKilocycle << ',' << r.wordsPerCycle << ','
       << r.totalLatency.mean << ',' << r.totalLatency.p50 << ','
       << r.totalLatency.p95 << ',' << r.totalLatency.p99 << ','
       << r.totalLatency.p999 << ',' << r.queueDelay.mean << ','
       << r.meanInFlight << ',' << r.bcUtilization << ','
       << r.shed << ',' << r.shedRate << ','
       << r.completed << ',' << r.cycles << ','
       << (point.failed ? "failed" : "ok") << '\n';
}

void
writeLoadCsv(std::ostream &os, const std::vector<LoadPoint> &points)
{
    writeLoadCsvHeader(os);
    for (const LoadPoint &p : points)
        writeLoadCsvRow(os, p);
}

void
writeLoadJson(std::ostream &os, const std::vector<LoadPoint> &points)
{
    os << "{\"points\": [";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const LoadPoint &p = points[i];
        os << (i ? ",\n  " : "\n  ") << "{\"system\": \""
           << systemShortName(p.system)
           << "\", \"offered\": " << p.offered << ", \"failed\": "
           << (p.failed ? "true" : "false") << ", \"result\": ";
        p.result.dumpJson(os);
        os << "}";
    }
    os << (points.empty() ? "]}\n" : "\n]}\n");
}

} // namespace pva
