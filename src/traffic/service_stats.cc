#include "traffic/service_stats.hh"

namespace pva
{

LatencySummary
summarize(const LogHistogram &h)
{
    LatencySummary s;
    s.samples = h.samples();
    s.min = h.minValue();
    s.max = h.maxValue();
    s.mean = h.mean();
    s.p50 = h.p50();
    s.p95 = h.p95();
    s.p99 = h.p99();
    s.p999 = h.p999();
    return s;
}

ServiceStats::ServiceStats(const std::vector<std::string> &names,
                           Detail detail, const std::string &prefix)
    : streamCount(names.size())
{
    // All traffic metrics live under the "traffic." namespace so the
    // tools' JSON envelope carries one predictable key shape (see
    // docs/API.md). Histograms are preallocated here so the per-cycle
    // hooks (onSubmit/onComplete, gap credits) never allocate.
    auto registerOne = [&](const std::string &prefix,
                           StreamCounters &c) {
        statSet.addScalar(prefix + ".arrivals", &c.arrivals);
        statSet.addScalar(prefix + ".submitted", &c.submitted);
        statSet.addScalar(prefix + ".completed", &c.completed);
        statSet.addScalar(prefix + ".deferrals", &c.deferrals);
        statSet.addScalar(prefix + ".shedDeadline", &c.shedDeadline);
        statSet.addScalar(prefix + ".shedOverload", &c.shedOverload);
        statSet.addScalar(prefix + ".queuePeak", &c.queuePeak);
        statSet.addScalar(prefix + ".wordsRead", &c.wordsRead);
        statSet.addScalar(prefix + ".wordsWritten", &c.wordsWritten);
        statSet.addHistogram(prefix + ".queueDelay", &c.queueDelay);
        statSet.addHistogram(prefix + ".serviceLatency",
                             &c.serviceLatency);
        statSet.addHistogram(prefix + ".totalLatency", &c.totalLatency);
        c.queueDelay.preallocate();
        c.serviceLatency.preallocate();
        c.totalLatency.preallocate();
    };

    if (detail == Detail::PerStream) {
        perStream.reserve(names.size());
        for (const std::string &name : names) {
            perStream.push_back(std::make_unique<StreamCounters>());
            registerOne(prefix + "." + name, *perStream.back());
        }
    }
    registerOne(prefix + ".agg", aggregate);
    statSet.addScalar(prefix + ".agg.cycles", &statCycles);
    statSet.addScalar(prefix + ".agg.occupancySum", &statOccupancySum);
}

void
ServiceStats::mergeFrom(const ServiceStats &other)
{
    auto mergeCounters = [](StreamCounters &into,
                            const StreamCounters &from) {
        into.arrivals += from.arrivals.value();
        into.submitted += from.submitted.value();
        into.completed += from.completed.value();
        into.deferrals += from.deferrals.value();
        into.shedDeadline += from.shedDeadline.value();
        into.shedOverload += from.shedOverload.value();
        if (from.queuePeak.value() > into.queuePeak.value())
            into.queuePeak.set(from.queuePeak.value());
        into.wordsRead += from.wordsRead.value();
        into.wordsWritten += from.wordsWritten.value();
        into.queueDelay.merge(from.queueDelay);
        into.serviceLatency.merge(from.serviceLatency);
        into.totalLatency.merge(from.totalLatency);
    };
    mergeCounters(aggregate, other.aggregate);
    if (perStream.size() == other.perStream.size()) {
        for (std::size_t i = 0; i < perStream.size(); ++i)
            mergeCounters(*perStream[i], *other.perStream[i]);
    }
    statCycles += other.statCycles.value();
    statOccupancySum += other.statOccupancySum.value();
}

void
ServiceStats::onArrival(unsigned stream)
{
    if (!perStream.empty())
        ++perStream[stream]->arrivals;
    ++aggregate.arrivals;
}

void
ServiceStats::onDeferred(unsigned stream)
{
    if (!perStream.empty())
        ++perStream[stream]->deferrals;
    ++aggregate.deferrals;
}

void
ServiceStats::onShedDeadline(unsigned stream)
{
    if (!perStream.empty())
        ++perStream[stream]->shedDeadline;
    ++aggregate.shedDeadline;
}

void
ServiceStats::onShedOverload(unsigned stream)
{
    if (!perStream.empty())
        ++perStream[stream]->shedOverload;
    ++aggregate.shedOverload;
}

void
ServiceStats::onQueueDepth(unsigned stream, std::size_t depth)
{
    if (!perStream.empty()) {
        StreamCounters &c = *perStream[stream];
        if (depth > c.queuePeak.value())
            c.queuePeak += depth - c.queuePeak.value();
    }
    if (depth > aggregate.queuePeak.value())
        aggregate.queuePeak += depth - aggregate.queuePeak.value();
}

void
ServiceStats::onSubmit(unsigned stream, Cycle queue_delay)
{
    if (!perStream.empty()) {
        StreamCounters &c = *perStream[stream];
        ++c.submitted;
        c.queueDelay.sample(queue_delay);
    }
    ++aggregate.submitted;
    aggregate.queueDelay.sample(queue_delay);
}

void
ServiceStats::onComplete(unsigned stream, Cycle service_latency,
                         Cycle total_latency, std::uint32_t words,
                         bool is_read)
{
    ++aggregate.completed;
    aggregate.serviceLatency.sample(service_latency);
    aggregate.totalLatency.sample(total_latency);
    if (is_read)
        aggregate.wordsRead += words;
    else
        aggregate.wordsWritten += words;
    if (perStream.empty())
        return;
    StreamCounters &c = *perStream[stream];
    ++c.completed;
    c.serviceLatency.sample(service_latency);
    c.totalLatency.sample(total_latency);
    if (is_read)
        c.wordsRead += words;
    else
        c.wordsWritten += words;
}

void
ServiceStats::onCycle(std::size_t in_flight)
{
    ++statCycles;
    statOccupancySum += in_flight;
}

void
ServiceStats::onCycleGap(Cycle cycles, std::size_t in_flight)
{
    statCycles += cycles;
    statOccupancySum += in_flight * cycles;
}

void
ServiceStats::onDeferredGap(unsigned stream, Cycle cycles)
{
    if (!perStream.empty())
        perStream[stream]->deferrals += cycles;
    aggregate.deferrals += cycles;
}

std::uint64_t
ServiceStats::completed(unsigned stream) const
{
    return perStream[stream]->completed.value();
}

std::uint64_t
ServiceStats::completedTotal() const
{
    return aggregate.completed.value();
}

std::uint64_t
ServiceStats::arrivalsTotal() const
{
    return aggregate.arrivals.value();
}

std::uint64_t
ServiceStats::deferralsTotal() const
{
    return aggregate.deferrals.value();
}

std::uint64_t
ServiceStats::shedDeadlineTotal() const
{
    return aggregate.shedDeadline.value();
}

std::uint64_t
ServiceStats::shedOverloadTotal() const
{
    return aggregate.shedOverload.value();
}

std::uint64_t
ServiceStats::queuePeakTotal() const
{
    return aggregate.queuePeak.value();
}

std::uint64_t
ServiceStats::wordsTotal() const
{
    return aggregate.wordsRead.value() + aggregate.wordsWritten.value();
}

std::uint64_t
ServiceStats::deferrals(unsigned stream) const
{
    return perStream[stream]->deferrals.value();
}

std::uint64_t
ServiceStats::shedDeadline(unsigned stream) const
{
    return perStream[stream]->shedDeadline.value();
}

std::uint64_t
ServiceStats::shedOverload(unsigned stream) const
{
    return perStream[stream]->shedOverload.value();
}

std::uint64_t
ServiceStats::shedTotal() const
{
    return aggregate.shedDeadline.value() +
           aggregate.shedOverload.value();
}

std::uint64_t
ServiceStats::queuePeak(unsigned stream) const
{
    return perStream[stream]->queuePeak.value();
}

LatencySummary
ServiceStats::queueDelay(unsigned stream) const
{
    return summarize(perStream[stream]->queueDelay);
}

LatencySummary
ServiceStats::serviceLatency(unsigned stream) const
{
    return summarize(perStream[stream]->serviceLatency);
}

LatencySummary
ServiceStats::totalLatency(unsigned stream) const
{
    return summarize(perStream[stream]->totalLatency);
}

LatencySummary
ServiceStats::aggregateQueueDelay() const
{
    return summarize(aggregate.queueDelay);
}

LatencySummary
ServiceStats::aggregateServiceLatency() const
{
    return summarize(aggregate.serviceLatency);
}

LatencySummary
ServiceStats::aggregateTotalLatency() const
{
    return summarize(aggregate.totalLatency);
}

double
ServiceStats::meanInFlight() const
{
    return statCycles.value() == 0
        ? 0.0
        : static_cast<double>(statOccupancySum.value()) /
              static_cast<double>(statCycles.value());
}

} // namespace pva
