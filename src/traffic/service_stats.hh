/**
 * @file
 * Service-level metrics for the traffic subsystem, built on sim/stats.
 *
 * ServiceStats owns, per stream and in aggregate, the counters a
 * serving stack would report: arrivals, admissions, completions,
 * backpressure deferrals, queue-depth peaks, words moved, and three
 * log-scale latency histograms with percentile queries —
 *
 *   queueDelay      arrival -> submit (admission + arbitration wait)
 *   serviceLatency  submit -> completion (the memory system itself)
 *   totalLatency    arrival -> completion (what a client observes)
 *
 * — plus per-cycle samples of the memory system's in-flight
 * transaction count (Vector Context occupancy on the PVA). Everything
 * registers into one StatSet ("traffic.<name>.*" per stream,
 * "traffic.agg.*" aggregate), so text/JSON dumps come for free and
 * tests can assert on named values.
 */

#ifndef PVA_TRAFFIC_SERVICE_STATS_HH
#define PVA_TRAFFIC_SERVICE_STATS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace pva
{

/** A latency histogram reduced to the reporting quartet. */
struct LatencySummary
{
    std::uint64_t samples = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
    std::uint64_t p50 = 0;
    std::uint64_t p95 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
};

LatencySummary summarize(const LogHistogram &h);

/** Per-stream and aggregate service accounting. */
class ServiceStats
{
  public:
    /**
     * How much per-stream state to keep. A fleet-scale tenant
     * (src/fleet/) modeling 10^4+ streams keeps AggregateOnly stats —
     * three preallocated histograms per *stream* would dominate its
     * memory footprint — while the classic traffic path keeps the
     * full per-stream registry.
     */
    enum class Detail
    {
        PerStream,     ///< Per-stream counters + histograms + aggregate
        AggregateOnly, ///< Aggregate counters/histograms only
    };

    /**
     * @param names one display name per stream (used as stat prefix).
     * @param detail per-stream registry or aggregate-only (see Detail).
     * @param prefix stat-name namespace ("traffic" for the classic
     *        arbiter; tenants use their own name so merged registries
     *        cannot collide).
     */
    explicit ServiceStats(const std::vector<std::string> &names,
                          Detail detail = Detail::PerStream,
                          const std::string &prefix = "traffic");

    /** @name Event hooks (called by the StreamArbiter) @{ */
    void onArrival(unsigned stream);
    void onDeferred(unsigned stream);       ///< Backpressure: queue full
    void onShedDeadline(unsigned stream);   ///< Dropped: deadline missed
    void onShedOverload(unsigned stream);   ///< Dropped: high watermark
    void onQueueDepth(unsigned stream, std::size_t depth);
    void onSubmit(unsigned stream, Cycle queue_delay);
    void onComplete(unsigned stream, Cycle service_latency,
                    Cycle total_latency, std::uint32_t words,
                    bool is_read);
    void onCycle(std::size_t in_flight); ///< Context-occupancy sample
    /** @} */

    /** @name Skipped-span credit (event clocking)
     * Under ClockingMode::Event the arbiter is not called on cycles
     * where nothing can change; these credit the per-cycle counters
     * for @p cycles skipped cycles whose state was frozen. @{ */
    void onCycleGap(Cycle cycles, std::size_t in_flight);
    void onDeferredGap(unsigned stream, Cycle cycles);
    /** @} */

    std::size_t streams() const { return streamCount; }

    /** Keeping per-stream counters (Detail::PerStream)? */
    bool perStreamDetail() const { return !perStream.empty(); }

    /**
     * Fold @p other into this instance: aggregate counters add,
     * aggregate histograms merge bucket-wise, occupancy samples add,
     * and — when both sides keep per-stream detail with the same
     * stream count — per-stream slots merge index-wise. Associative
     * and order-independent (see LogHistogram::merge), which is what
     * makes sharded fleet runs reduce to one deterministic result.
     */
    void mergeFrom(const ServiceStats &other);

    /** @name Aggregate histogram access (for cross-shard merging) @{ */
    const LogHistogram &aggregateQueueDelayHist() const
    {
        return aggregate.queueDelay;
    }
    const LogHistogram &aggregateServiceLatencyHist() const
    {
        return aggregate.serviceLatency;
    }
    const LogHistogram &aggregateTotalLatencyHist() const
    {
        return aggregate.totalLatency;
    }
    /** @} */

    /** The registered stat registry (for dump/dumpJson/queries). */
    StatSet &set() { return statSet; }
    const StatSet &set() const { return statSet; }

    /** @name Convenience queries
     * The per-stream overloads require Detail::PerStream; the *Total
     * forms work in either mode. @{ */
    std::uint64_t completed(unsigned stream) const;
    std::uint64_t completedTotal() const;
    std::uint64_t arrivalsTotal() const;
    std::uint64_t deferralsTotal() const;
    std::uint64_t shedDeadlineTotal() const;
    std::uint64_t shedOverloadTotal() const;
    std::uint64_t queuePeakTotal() const; ///< Deepest queue, any stream
    std::uint64_t wordsTotal() const;
    std::uint64_t deferrals(unsigned stream) const;
    std::uint64_t shedDeadline(unsigned stream) const;
    std::uint64_t shedOverload(unsigned stream) const;
    std::uint64_t shedTotal() const; ///< All streams, both causes
    std::uint64_t queuePeak(unsigned stream) const;
    LatencySummary queueDelay(unsigned stream) const;
    LatencySummary serviceLatency(unsigned stream) const;
    LatencySummary totalLatency(unsigned stream) const;
    LatencySummary aggregateQueueDelay() const;
    LatencySummary aggregateServiceLatency() const;
    LatencySummary aggregateTotalLatency() const;
    /** Mean in-flight transactions over the sampled cycles. */
    double meanInFlight() const;
    /** @} */

  private:
    struct StreamCounters
    {
        Scalar arrivals;
        Scalar submitted;
        Scalar completed;
        Scalar deferrals;
        Scalar shedDeadline; ///< Requests dropped past their deadline
        Scalar shedOverload; ///< Requests dropped at the high watermark
        Scalar queuePeak;
        Scalar wordsRead;
        Scalar wordsWritten;
        LogHistogram queueDelay;
        LogHistogram serviceLatency;
        LogHistogram totalLatency;
    };

    StatSet statSet;
    std::size_t streamCount = 0;
    /** unique_ptr keeps registered stat addresses stable. Empty under
     *  Detail::AggregateOnly. */
    std::vector<std::unique_ptr<StreamCounters>> perStream;
    StreamCounters aggregate;
    Scalar statCycles;          ///< Occupancy samples taken
    Scalar statOccupancySum;    ///< Sum of sampled in-flight counts
};

} // namespace pva

#endif // PVA_TRAFFIC_SERVICE_STATS_HH
