#include "traffic/stream.hh"

#include <fstream>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

namespace
{

/** Derivation constant separating the pattern and arrival streams. */
constexpr std::uint64_t kArrivalStreamSalt = 0xa55e55ed5eedULL;

/** Deterministic Bernoulli draw: P(true) == rate (cf. FaultInjector). */
bool
roll(Random &rng, double rate)
{
    std::uint64_t bits = rng.next(); // always consume one draw
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    double scaled = rate * 18446744073709551616.0; // 2^64
    std::uint64_t threshold =
        scaled >= 18446744073709549568.0 // largest double < 2^64
            ? ~0ULL
            : static_cast<std::uint64_t>(scaled);
    return bits < threshold;
}

} // anonymous namespace

StreamSource::StreamSource(const StreamConfig &config, unsigned id,
                           unsigned line_words)
    : cfg(config), streamId(id), lineWords(line_words),
      patternRng(config.seed),
      arrivalRng(config.seed ^ kArrivalStreamSalt)
{
    if (cfg.name.empty())
        cfg.name = csprintf("s%u", id);
    auto reject = [&](const std::string &detail) {
        throw SimError(SimErrorKind::Config, "traffic." + cfg.name,
                       kNeverCycle, detail);
    };

    if (cfg.queueCapacity == 0)
        reject("queueCapacity must be nonzero");
    if (cfg.mode != ArrivalMode::OpenLoop && cfg.window == 0)
        reject("window must be nonzero for closed-loop/trace streams");
    if (cfg.mode == ArrivalMode::OpenLoop &&
        !(cfg.requestsPerKilocycle > 0.0)) {
        reject("requestsPerKilocycle must be positive for open-loop "
               "streams");
    }

    if (cfg.mode == ArrivalMode::Trace) {
        std::ifstream in(cfg.tracePath);
        if (!in)
            reject(csprintf("cannot open trace '%s'",
                            cfg.tracePath.c_str()));
        TraceFile parsed;
        std::string error;
        if (!parseTrace(in, parsed, error))
            reject(csprintf("trace '%s': %s", cfg.tracePath.c_str(),
                            error.c_str()));
        for (const TraceOp &op : parsed.ops) {
            if (op.kind == TraceOp::Kind::Poke) {
                tracePokes.emplace_back(op.addr, op.value);
                continue;
            }
            if (op.kind != TraceOp::Kind::Barrier &&
                op.cmd.length > lineWords) {
                reject(csprintf("trace '%s' command length %u exceeds "
                                "the %u-word line",
                                cfg.tracePath.c_str(), op.cmd.length,
                                lineWords));
            }
            trace.ops.push_back(op);
        }
        return;
    }

    const PatternConfig &p = cfg.pattern;
    if (cfg.requests == 0)
        reject("requests must be nonzero");
    if (p.minLength == 0 || p.minLength > p.maxLength)
        reject(csprintf("pattern length bounds [%u, %u] invalid",
                        p.minLength, p.maxLength));
    if (p.maxLength > lineWords)
        reject(csprintf("pattern maxLength %u exceeds the %u-word line",
                        p.maxLength, lineWords));
    if (p.minStride == 0 || p.minStride > p.maxStride)
        reject(csprintf("pattern stride bounds [%u, %u] invalid",
                        p.minStride, p.maxStride));
    if (!(p.readFraction >= 0.0 && p.readFraction <= 1.0))
        reject(csprintf("readFraction %g outside [0, 1]",
                        p.readFraction));
    WordAddr span = static_cast<WordAddr>(p.maxStride) *
                        (p.maxLength - 1) + 1;
    if (p.regionWords < span)
        reject(csprintf("regionWords %llu cannot hold a "
                        "stride-%u x %u-element command",
                        static_cast<unsigned long long>(p.regionWords),
                        p.maxStride, p.maxLength));

    if (cfg.mode == ArrivalMode::OpenLoop) {
        // Schedule the first arrival one gap in, like every later one.
        double mean = 1000.0 / cfg.requestsPerKilocycle;
        double u = 0.5 + static_cast<double>(arrivalRng.next() >> 11) *
                             (1.0 / 9007199254740992.0); // 2^-53
        nextArrival = static_cast<Cycle>(u * mean + 0.5);
        if (nextArrival == 0)
            nextArrival = 1;
    }
}

bool
StreamSource::traceHeadReady() const
{
    std::size_t i = traceNext;
    while (i < trace.ops.size() &&
           trace.ops[i].kind == TraceOp::Kind::Barrier) {
        if (outstanding > 0)
            return false;
        ++i;
    }
    return i < trace.ops.size();
}

bool
StreamSource::exhausted() const
{
    if (cfg.mode == ArrivalMode::Trace) {
        for (std::size_t i = traceNext; i < trace.ops.size(); ++i) {
            if (trace.ops[i].kind != TraceOp::Kind::Barrier)
                return false;
        }
        return true;
    }
    return emittedCount >= cfg.requests;
}

bool
StreamSource::arrivalReady(Cycle now) const
{
    switch (cfg.mode) {
      case ArrivalMode::ClosedLoop:
        return emittedCount < cfg.requests && outstanding < cfg.window;
      case ArrivalMode::OpenLoop:
        return emittedCount < cfg.requests && nextArrival <= now;
      case ArrivalMode::Trace:
        return outstanding < cfg.window && traceHeadReady();
    }
    return false;
}

TrafficRequest
StreamSource::emit(Cycle now)
{
    return cfg.mode == ArrivalMode::Trace ? makeTraceRequest(now)
                                          : makePatternRequest(now);
}

TrafficRequest
StreamSource::makePatternRequest(Cycle now)
{
    const PatternConfig &p = cfg.pattern;
    TrafficRequest req;
    req.stream = streamId;
    req.seqNo = emittedCount;

    // Fixed draw order per request, so the command sequence is a pure
    // function of the pattern seed (independent of arrival timing).
    std::uint32_t stride = static_cast<std::uint32_t>(
        patternRng.range(p.minStride, p.maxStride));
    std::uint32_t length = static_cast<std::uint32_t>(
        patternRng.range(p.minLength, p.maxLength));
    bool is_read = roll(patternRng, p.readFraction);
    WordAddr span = static_cast<WordAddr>(stride) * (length - 1) + 1;
    WordAddr base =
        p.regionBase + patternRng.below(p.regionWords - span + 1);

    req.cmd.base = base;
    req.cmd.stride = stride;
    req.cmd.length = length;
    req.cmd.isRead = is_read;
    req.cmd.mode = p.mode;
    if (p.mode == VectorCommand::Mode::Indirect) {
        req.cmd.base = p.regionBase;
        req.cmd.stride = 1;
        req.cmd.indices.resize(length);
        for (std::uint32_t i = 0; i < length; ++i)
            req.cmd.indices[i] = patternRng.below(p.regionWords);
    }
    if (!is_read) {
        req.writeData.resize(length);
        for (std::uint32_t i = 0; i < length; ++i)
            req.writeData[i] = static_cast<Word>(patternRng.next());
    }

    if (cfg.mode == ArrivalMode::OpenLoop) {
        req.arrival = nextArrival;
        double mean = 1000.0 / cfg.requestsPerKilocycle;
        double u = 0.5 + static_cast<double>(arrivalRng.next() >> 11) *
                             (1.0 / 9007199254740992.0);
        Cycle gap = static_cast<Cycle>(u * mean + 0.5);
        nextArrival += gap == 0 ? 1 : gap;
    } else {
        req.arrival = now;
        ++outstanding;
    }
    ++emittedCount;
    return req;
}

TrafficRequest
StreamSource::makeTraceRequest(Cycle now)
{
    while (trace.ops[traceNext].kind == TraceOp::Kind::Barrier)
        ++traceNext; // traceHeadReady() guaranteed outstanding == 0
    const TraceOp &op = trace.ops[traceNext++];

    TrafficRequest req;
    req.stream = streamId;
    req.seqNo = emittedCount;
    req.arrival = now;
    req.cmd = op.cmd;
    if (op.kind == TraceOp::Kind::Write) {
        req.writeData.resize(op.cmd.length);
        for (std::uint32_t i = 0; i < op.cmd.length; ++i)
            req.writeData[i] = op.value + i;
    }
    ++outstanding;
    ++emittedCount;
    return req;
}

void
StreamSource::onComplete()
{
    if (cfg.mode != ArrivalMode::OpenLoop && outstanding > 0)
        --outstanding;
}

void
StreamSource::applyPokes(SparseMemory &mem) const
{
    for (const auto &[addr, value] : tracePokes)
        mem.write(addr, value);
}

} // namespace pva
