/**
 * @file
 * Orchestration of traffic runs and offered-load sweeps.
 *
 * runTraffic() wires one TrafficConfig — N stream sources, a
 * StreamArbiter policy, one memory system — into a Simulation, runs it
 * to drain under the standard watchdogs, and reduces ServiceStats into
 * a TrafficResult (throughput, latency percentiles, occupancy,
 * bank-controller utilization).
 *
 * runLoadSweep() evaluates a ladder of offered loads across memory
 * systems on the SweepExecutor's generic task engine, inheriting its
 * worker pool, retry policy, and determinism guarantees; the resulting
 * throughput-latency curves export as CSV or JSON for plotting.
 */

#ifndef PVA_TRAFFIC_TRAFFIC_RUNNER_HH
#define PVA_TRAFFIC_TRAFFIC_RUNNER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "kernels/sweep.hh"
#include "kernels/sweep_executor.hh"
#include "traffic/arbiter.hh"
#include "traffic/service_stats.hh"
#include "traffic/stream.hh"

namespace pva
{

/** Everything one traffic run needs. */
struct TrafficConfig
{
    SystemKind system = SystemKind::PvaSdram;
    SystemConfig config{};       ///< System construction knobs
    ArbiterConfig arbiter{};
    std::vector<StreamConfig> streams;
    RunLimits limits{};          ///< Watchdog budgets
};

/** One stream's slice of a TrafficResult. */
struct StreamResult
{
    std::string name;
    std::uint64_t requests = 0;  ///< Generated (admitted) requests
    std::uint64_t completed = 0;
    std::uint64_t deferrals = 0; ///< Backpressured admission cycles
    std::uint64_t shedDeadline = 0; ///< Dropped past the deadline budget
    std::uint64_t shedOverload = 0; ///< Dropped at the high watermark
    std::uint64_t queuePeak = 0; ///< Deepest bounded-queue occupancy
    std::uint64_t words = 0;     ///< Elements moved (read + written)
    LatencySummary queueDelay;
    LatencySummary serviceLatency;
    LatencySummary totalLatency;
};

/** Outcome of one traffic run. */
struct TrafficResult
{
    Cycle cycles = 0;
    std::uint64_t completed = 0;
    std::uint64_t words = 0;
    double requestsPerKilocycle = 0.0; ///< Achieved throughput
    double wordsPerCycle = 0.0;        ///< Achieved bandwidth
    double meanInFlight = 0.0;  ///< Mean context occupancy (sampled)
    double bcUtilization = 0.0; ///< Mean BC scheduler duty cycle (PVA)
    std::uint64_t shed = 0; ///< Requests dropped (both causes, all streams)
    /** shed / (completed + shed): the fraction of consumed work the
     *  arbiter dropped to protect the latency of the rest. */
    double shedRate = 0.0;
    std::uint64_t simTicks = 0;      ///< Cycles actually processed
    std::uint64_t cyclesSkipped = 0; ///< Cycles jumped (event clocking)
    std::uint64_t cyclesPerSecond = 0; ///< Simulated cycles per wall second
    LatencySummary queueDelay;
    LatencySummary serviceLatency;
    LatencySummary totalLatency;
    std::vector<StreamResult> streams;

    /** Deterministic single-object JSON dump. */
    void dumpJson(std::ostream &os) const;
};

/**
 * Run @p config to completion. Throws SimError on unsupportable
 * configuration or watchdog expiry (callers running point grids go
 * through SweepExecutor::runTasks for isolation). When @p stats_dump
 * is non-null, the full ServiceStats registry and the memory system's
 * own StatSet (context occupancy, FIFO depths, ...) are dumped to it
 * before teardown.
 */
TrafficResult runTraffic(const TrafficConfig &config,
                         std::ostream *stats_dump = nullptr);

/** An offered-load ladder across memory systems. */
struct LoadSweepConfig
{
    /** Template run: its streams are re-rated per point (every stream
     *  is forced open-loop; aggregate load splits evenly). */
    TrafficConfig base;
    /** Aggregate offered loads, requests per kilocycle. */
    std::vector<double> offeredLoads;
    /** Systems to sweep (curve per system). */
    std::vector<SystemKind> systems{SystemKind::PvaSdram,
                                    SystemKind::CacheLine,
                                    SystemKind::Gathering};
    unsigned jobs = 0;    ///< Worker threads (0 = hardware)
    unsigned retries = 3; ///< Attempt budget per point
};

/** One point of a throughput-latency curve. */
struct LoadPoint
{
    SystemKind system = SystemKind::PvaSdram;
    double offered = 0.0; ///< Aggregate requests per kilocycle
    TrafficResult result;
    bool failed = false;
    unsigned attempts = 1;
    std::string error;
};

/**
 * Run the ladder on a SweepExecutor worker pool (parallel,
 * fault-tolerant, deterministic across worker counts). Points are
 * ordered systems-outer, loads-inner (ascending offered load), so
 * curves come out monotone in offered load.
 */
std::vector<LoadPoint> runLoadSweep(const LoadSweepConfig &config);

/** @name Throughput-latency curve export
 * CSV: one row per point; JSON: {"points": [...]} with per-stream
 * detail. Both deterministic for a given input.
 * @{ */
void writeLoadCsvHeader(std::ostream &os);
void writeLoadCsvRow(std::ostream &os, const LoadPoint &point);
void writeLoadCsv(std::ostream &os,
                  const std::vector<LoadPoint> &points);
void writeLoadJson(std::ostream &os,
                   const std::vector<LoadPoint> &points);
/** @} */

} // namespace pva

#endif // PVA_TRAFFIC_TRAFFIC_RUNNER_HH
