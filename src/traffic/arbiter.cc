#include "traffic/arbiter.hh"

#include <cmath>

#include "sim/trace.hh"

namespace pva
{

const char *
arbPolicyName(ArbPolicy policy)
{
    switch (policy) {
      case ArbPolicy::Fifo:
        return "fifo";
      case ArbPolicy::RoundRobin:
        return "rr";
      case ArbPolicy::Priority:
        return "priority";
    }
    return "?";
}

bool
parseArbPolicy(const std::string &name, ArbPolicy &out)
{
    if (name == "fifo") {
        out = ArbPolicy::Fifo;
    } else if (name == "rr" || name == "roundrobin") {
        out = ArbPolicy::RoundRobin;
    } else if (name == "priority") {
        out = ArbPolicy::Priority;
    } else {
        return false;
    }
    return true;
}

StreamArbiter::StreamArbiter(const ArbiterConfig &config,
                             std::vector<StreamSource> sources_,
                             ServiceStats &stats_)
    : cfg(config), sources(std::move(sources_)), stats(stats_),
      queues(sources.size()), wasDeferred(sources.size(), false)
{
    if (!sources.empty())
        lastGranted = static_cast<unsigned>(sources.size()) - 1;
    if (cfg.shed.enabled) {
        shedDeadline.reserve(sources.size());
        shedDepth.reserve(sources.size());
        for (const StreamSource &s : sources) {
            shedDeadline.push_back(s.config().deadline > 0
                                       ? s.config().deadline
                                       : cfg.shed.defaultDeadline);
            const std::size_t cap = s.config().queueCapacity;
            std::size_t depth = cap;
            if (cfg.shed.queueHighWatermark < 1.0) {
                depth = static_cast<std::size_t>(std::ceil(
                    cfg.shed.queueHighWatermark *
                    static_cast<double>(cap)));
                depth = std::max<std::size_t>(1, std::min(depth, cap));
            }
            shedDepth.push_back(depth);
        }
    }
}

void
StreamArbiter::applyPokes(SparseMemory &mem) const
{
    for (const StreamSource &s : sources)
        s.applyPokes(mem);
}

bool
StreamArbiter::pick(Cycle now, unsigned &out) const
{
    const unsigned n = static_cast<unsigned>(sources.size());
    bool found = false;

    switch (cfg.policy) {
      case ArbPolicy::RoundRobin: {
        for (unsigned step = 1; step <= n; ++step) {
            unsigned i = (lastGranted + step) % n;
            if (!queues[i].empty()) {
                out = i;
                return true;
            }
        }
        return false;
      }
      case ArbPolicy::Fifo: {
        Cycle best = kNeverCycle;
        for (unsigned i = 0; i < n; ++i) {
            if (queues[i].empty())
                continue;
            Cycle a = queues[i].front().arrival;
            if (!found || a < best) {
                best = a;
                out = i;
                found = true;
            }
        }
        return found;
      }
      case ArbPolicy::Priority: {
        // Starvation guard first: any head past the aging threshold
        // is served strictly oldest-first, whatever its priority.
        Cycle best = kNeverCycle;
        for (unsigned i = 0; i < n; ++i) {
            if (queues[i].empty())
                continue;
            Cycle a = queues[i].front().arrival;
            if (now - a >= cfg.agingThreshold && (!found || a < best)) {
                best = a;
                out = i;
                found = true;
            }
        }
        if (found)
            return true;
        // Otherwise highest priority; ties broken oldest-first, then
        // by stream id (the iteration order).
        unsigned best_prio = 0;
        for (unsigned i = 0; i < n; ++i) {
            if (queues[i].empty())
                continue;
            Cycle a = queues[i].front().arrival;
            unsigned prio = sources[i].config().priority;
            if (!found || prio > best_prio ||
                (prio == best_prio && a < best)) {
                best_prio = prio;
                best = a;
                out = i;
                found = true;
            }
        }
        return found;
      }
    }
    return false;
}

bool
StreamArbiter::service(MemorySystem &sys, Cycle now)
{
    // --- 0. Credit any skipped span [lastServiceAt+1, now-1]. --------
    // Event clocking only reaches here with a gap when neither the
    // system nor the arbiter could change during it, so the occupancy
    // sample and per-stream backpressure flags recorded at the last
    // step held on every skipped cycle.
    if (everServiced && now > lastServiceAt + 1) {
        Cycle gap = now - lastServiceAt - 1;
        stats.onCycleGap(gap, lastInFlightSample);
        for (unsigned i = 0; i < sources.size(); ++i) {
            if (wasDeferred[i])
                stats.onDeferredGap(i, gap);
        }
    }
    bool changed = false;

    // --- 1. Completions. ---------------------------------------------
    sys.drainCompletionsInto(drainedCompletions);
    for (Completion &c : drainedCompletions) {
        sys.recycleLine(std::move(c.data));
        auto it = inFlight.find(c.tag);
        if (it == inFlight.end())
            continue; // not ours (defensive; tags are arbiter-issued)
        const InFlight &f = it->second;
        stats.onComplete(f.stream, now - f.submitted, now - f.arrival,
                         f.words, f.isRead);
        sources[f.stream].onComplete();
        PVA_TRACE_INSTANT(traceTrackId, now, "complete", "stream",
                          f.stream, "latency", now - f.arrival);
        inFlight.erase(it);
        changed = true;
    }

    // --- 2. Admission: pull arrivals into the bounded queues. --------
    for (unsigned i = 0; i < sources.size(); ++i) {
        StreamSource &src = sources[i];
        bool deferred = false;
        while (src.arrivalReady(now)) {
            if (queues[i].size() >=
                src.config().queueCapacity) {
                // Backpressure: the arrival stays pending in the
                // source; open-loop requests keep their scheduled
                // arrival stamp so the wait is visible as queue delay.
                deferred = true;
                break;
            }
            if (cfg.shed.enabled && queues[i].size() >= shedDepth[i]) {
                // Overload shed: the queue reached the high watermark,
                // so this arrival is consumed and dropped instead of
                // queued. Releasing the window slot keeps closed-loop
                // streams offering load; at most one drop per stream
                // per step bounds the cascade.
                src.emit(now);
                stats.onArrival(i);
                stats.onShedOverload(i);
                src.onComplete();
                PVA_TRACE_INSTANT(traceTrackId, now, "shed-overload",
                                  "stream", i);
                changed = true;
                break;
            }
            queues[i].push_back(src.emit(now));
            stats.onArrival(i);
            stats.onQueueDepth(i, queues[i].size());
            PVA_TRACE_INSTANT(traceTrackId, now, "enqueue", "stream",
                              i, "depth", queues[i].size());
            changed = true;
        }
        if (deferred) {
            stats.onDeferred(i);
            PVA_TRACE_INSTANT(traceTrackId, now, "defer", "stream", i);
        }
        wasDeferred[i] = deferred;
    }

    // --- 2b. Deadline shed: drop queue heads past their budget. ------
    // A head older than its stream's deadline can only add a stale
    // latency sample ahead of fresh work; dropping it (and releasing
    // the window slot) caps the queueing delay of everything served.
    if (cfg.shed.enabled) {
        for (unsigned i = 0; i < sources.size(); ++i) {
            const Cycle budget = shedDeadline[i];
            if (budget == 0)
                continue;
            while (!queues[i].empty() &&
                   now - queues[i].front().arrival > budget) {
                queues[i].pop_front();
                stats.onShedDeadline(i);
                sources[i].onComplete();
                PVA_TRACE_INSTANT(traceTrackId, now, "shed-deadline",
                                  "stream", i);
                changed = true;
            }
        }
    }

    // --- 3. Grant: submit queue heads until the system refuses. ------
    unsigned chosen = 0;
    while (pick(now, chosen)) {
        TrafficRequest &req = queues[chosen].front();
        std::uint64_t tag = nextTag;
        const std::vector<Word> *wd =
            req.cmd.isRead ? nullptr : &req.writeData;
        if (!sys.trySubmit(req.cmd, tag, wd))
            break; // transaction resources exhausted this cycle
        ++nextTag;
        inFlight.emplace(
            tag, InFlight{chosen, req.arrival, now, req.cmd.length,
                          req.cmd.isRead});
        stats.onSubmit(chosen, now - req.arrival);
        PVA_TRACE_INSTANT(traceTrackId, now, "grant", "stream",
                          chosen, "waited", now - req.arrival);
        queues[chosen].pop_front();
        lastGranted = chosen;
        changed = true;
    }

    // --- 4. Occupancy sample (end-of-step in-flight count). ----------
    stats.onCycle(sys.inFlight());

    changedLastService = changed;
    everServiced = true;
    lastServiceAt = now;
    lastInFlightSample = sys.inFlight();

    bool drained = inFlight.empty();
    for (unsigned i = 0; drained && i < sources.size(); ++i)
        drained = sources[i].exhausted() && queues[i].empty();
    return drained;
}

Cycle
StreamArbiter::nextWake(Cycle now) const
{
    if (changedLastService)
        return now + 1;
    Cycle wake = kNeverCycle;
    for (const StreamSource &s : sources) {
        if (s.config().mode != ArrivalMode::OpenLoop || s.exhausted())
            continue;
        Cycle a = s.nextArrivalCycle();
        // An arrival already due but deferred needs no wake of its
        // own: only a completion can free queue space, and completions
        // ride the memory system's wakes (via changedLastService).
        if (a > now && a < wake)
            wake = a;
    }
    // A queued head's deadline expiry is a state change with a clock
    // of its own: nothing else need happen for the shed to become due.
    if (cfg.shed.enabled) {
        for (unsigned i = 0; i < sources.size(); ++i) {
            if (shedDeadline[i] == 0 || queues[i].empty())
                continue;
            Cycle expiry =
                queues[i].front().arrival + shedDeadline[i] + 1;
            if (expiry > now && expiry < wake)
                wake = expiry;
        }
    }
    return wake;
}

} // namespace pva
