/**
 * @file
 * The StreamArbiter: admission control and multiplexing of N traffic
 * streams onto one memory system's limited transaction resources.
 *
 * Each stream owns a bounded queue. Every service cycle the arbiter
 *
 *  1. drains completions, crediting service/total latency to the
 *     owning stream and releasing closed-loop window slots;
 *  2. admits pending arrivals into the per-stream queues — a full
 *     queue defers the arrival (backpressure, counted per deferred
 *     cycle; open-loop requests keep their scheduled arrival stamp, so
 *     deferral shows up as queueing delay, not lost load);
 *  3. submits queue heads to MemorySystem::trySubmit under the
 *     configured policy until the system refuses (its Vector Contexts
 *     / transaction slots are full).
 *
 * Policies:
 *  - Fifo: globally oldest arrival first (ties: lowest stream id).
 *  - RoundRobin: rotate a grant cursor over non-empty queues.
 *  - Priority: highest StreamConfig::priority first — but any head
 *    request that has waited longer than agingThreshold cycles is
 *    served oldest-first regardless of priority, which bounds every
 *    stream's wait (starvation-freedom).
 *
 * All decisions are pure functions of (config, stream seeds, cycle),
 * so a traffic run is bit-reproducible anywhere, including under the
 * SweepExecutor worker pool.
 */

#ifndef PVA_TRAFFIC_ARBITER_HH
#define PVA_TRAFFIC_ARBITER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/memory_system.hh"
#include "traffic/service_stats.hh"
#include "traffic/stream.hh"

namespace pva
{

/** Stream-multiplexing policies. */
enum class ArbPolicy
{
    Fifo,
    RoundRobin,
    Priority,
};

/** Short lowercase identifier ("fifo", "rr", "priority"). */
const char *arbPolicyName(ArbPolicy policy);

/** Parse an identifier; returns false on unknown names. */
bool parseArbPolicy(const std::string &name, ArbPolicy &out);

/** Arbitration knobs. */
struct ArbiterConfig
{
    ArbPolicy policy = ArbPolicy::Fifo;
    /** Priority policy: a head request older than this many cycles is
     *  served FIFO ahead of any fresher higher-priority work. */
    Cycle agingThreshold = 1024;

    /**
     * Graceful degradation under overload (docs/TRAFFIC.md). Disabled
     * by default; with shedding off the arbiter's behaviour is
     * bit-identical to a build without this feature.
     *
     * Two shedding causes, accounted separately in ServiceStats:
     *
     *  - deadline: a queued request whose queueing delay exceeds its
     *    stream's budget is dropped instead of served, so stale work
     *    cannot clog the queue ahead of fresh work;
     *  - overload: when a stream's queue reaches the high watermark,
     *    one new arrival per service step is dropped on admission,
     *    relieving pressure before the queue hits capacity
     *    backpressure.
     *
     * A shed request releases its stream's window slot (closed loop
     * keeps offering load) and is excluded from latency histograms —
     * the p99 of *served* requests stays bounded by the deadline.
     */
    struct ShedConfig
    {
        bool enabled = false;
        /** Queueing-delay budget for streams that leave
         *  StreamConfig::deadline at 0 (cycles; 0 = no deadline). */
        Cycle defaultDeadline = 0;
        /** Queue-depth fraction (of queueCapacity) at which overload
         *  shedding starts; >= 1.0 disables overload shedding. */
        double queueHighWatermark = 1.0;
    };
    ShedConfig shed;
};

/** Multiplexes stream sources onto one MemorySystem. */
class StreamArbiter
{
  public:
    /** Takes ownership of @p sources; @p stats must outlive the
     *  arbiter and have one stream slot per source. */
    StreamArbiter(const ArbiterConfig &config,
                  std::vector<StreamSource> sources,
                  ServiceStats &stats);

    /**
     * One service step at cycle @p now (call once per simulated
     * cycle, before the system's tick if driven manually, or from a
     * Simulation::runUntil predicate).
     *
     * @return true when every stream is exhausted, every queue is
     *         empty, and no request is in flight.
     */
    bool service(MemorySystem &sys, Cycle now);

    /**
     * Earliest cycle after @p now at which the arbiter itself has work
     * that no system wake covers (for Simulation::requestWake under
     * ClockingMode::Event). Three cases:
     *
     *  - the last service changed something (completion, admission, or
     *    grant): now + 1, since follow-on admission/grant decisions may
     *    cascade next cycle;
     *  - otherwise the earliest pending open-loop arrival, the only
     *    arrival discipline with a clock of its own (closed-loop and
     *    trace arrivals are unblocked by completions, which the memory
     *    system's own wakes cover);
     *  - otherwise kNeverCycle.
     *
     * Skipped cycles are credited to the per-cycle counters (occupancy
     * samples, deferrals) at the next service via ServiceStats'
     * onCycleGap/onDeferredGap — exact because arbiter and system
     * state are provably frozen over the span.
     */
    Cycle nextWake(Cycle now) const;

    /** Apply all trace-stream pokes to the system's memory. */
    void applyPokes(SparseMemory &mem) const;

    std::size_t streamCount() const { return sources.size(); }
    const StreamSource &source(unsigned i) const { return sources[i]; }
    std::size_t queueDepth(unsigned i) const
    {
        return queues[i].size();
    }

    /** @name Trace track handle (see sim/trace.hh; 0 = untraced) @{ */
    void setTraceTrack(std::uint32_t id) { traceTrackId = id; }
    std::uint32_t traceTrack() const { return traceTrackId; }
    /** @} */

  private:
    /** Pick the next stream to grant; returns false if all empty. */
    bool pick(Cycle now, unsigned &out) const;

    struct InFlight
    {
        unsigned stream = 0;
        Cycle arrival = 0;
        Cycle submitted = 0;
        std::uint32_t words = 0;
        bool isRead = true;
    };

    ArbiterConfig cfg;
    std::vector<StreamSource> sources;
    ServiceStats &stats;
    /** @name Per-stream shedding thresholds (precomputed; empty
     *  vectors when shedding is disabled) @{ */
    std::vector<Cycle> shedDeadline;     ///< 0 = no deadline
    std::vector<std::size_t> shedDepth;  ///< >= capacity = no watermark
    /** @} */
    std::vector<std::deque<TrafficRequest>> queues;
    std::unordered_map<std::uint64_t, InFlight> inFlight;
    /** Drain buffer reused across service() steps (storage shuttles
     *  between arbiter and memory system; lines are recycled). */
    std::vector<Completion> drainedCompletions;
    std::uint64_t nextTag = 0;
    unsigned lastGranted = 0; ///< RoundRobin cursor
    std::uint32_t traceTrackId = 0;

    /** @name Event-clocking bookkeeping
     * service() records what the step did so nextWake() and the next
     * step's gap credit can reconstruct the skipped cycles. @{ */
    bool changedLastService = false; ///< Completion/admission/grant seen
    bool everServiced = false;
    Cycle lastServiceAt = 0;
    std::size_t lastInFlightSample = 0; ///< sys.inFlight() at last step
    std::vector<bool> wasDeferred;      ///< Per-stream backpressure flag
    /** @} */
};

} // namespace pva

#endif // PVA_TRAFFIC_ARBITER_HH
