/**
 * @file
 * The split-transaction Vector Bus of section 5.2.1.
 *
 * The bus multiplexes request cycles (VEC_READ / VEC_WRITE / STAGE_READ /
 * STAGE_WRITE, with a 32-bit address, 32-bit stride, 3-bit transaction id
 * and 2-bit command) and data cycles (64 bits per cycle toward the system
 * bus; physically a 128-bit BC bus driving alternate 64-bit halves every
 * other cycle to avoid turnaround cycles). A 128-byte cache line therefore
 * takes 16 data cycles. Eight wired-OR transaction-complete lines are
 * shared by all bank controllers.
 *
 * This class is a passive arbitration/occupancy model: the PVA front end
 * drives it, bank controllers snoop the command broadcast in the same
 * cycle (they tick after the front end).
 */

#ifndef PVA_BUS_VECTOR_BUS_HH
#define PVA_BUS_VECTOR_BUS_HH

#include <cstdint>
#include <optional>

#include "core/vector_command.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace pva
{

/** The four bus commands of section 5.2.6. */
enum class BusOpcode : std::uint8_t
{
    VecRead,
    VecWrite,
    StageRead,
    StageWrite,
};

/** One request-cycle broadcast. */
struct BusRequest
{
    BusOpcode opcode;
    VectorCommand vec; ///< Valid for VecRead/VecWrite
    std::uint8_t txn;
};

/** Occupancy and broadcast model of the shared vector bus. */
class VectorBus
{
  public:
    /** @param line_words words per cache line (data burst length / 2). */
    explicit VectorBus(unsigned line_words = 32);

    /** Number of data cycles one full line occupies. */
    unsigned dataCycles() const { return lineWords / 2; }

    /** Can a request cycle be driven at @p now? */
    bool
    requestFree(Cycle now) const
    {
        return now >= freeAt;
    }

    /**
     * Drive a one-cycle command broadcast. STAGE_READ / STAGE_WRITE also
     * reserve the following dataCycles() cycles for the line transfer.
     */
    void drive(Cycle now, const BusRequest &req);

    /** The request driven this cycle, if any (same-cycle snoop). */
    std::optional<BusRequest> snoop(Cycle now) const;

    /** Cycle at which the current reservation ends (for completions). */
    Cycle busyUntil() const { return freeAt; }

    /** @name Statistics @{ */
    Scalar statRequestCycles;
    Scalar statDataCycles;
    /** @} */

    void registerStats(StatSet &set, const std::string &prefix) const;

    /** @name Trace track handle (see sim/trace.hh; 0 = untraced) @{ */
    void setTraceTrack(std::uint32_t id) { traceTrackId = id; }
    std::uint32_t traceTrack() const { return traceTrackId; }
    /** @} */

  private:
    unsigned lineWords;
    std::uint32_t traceTrackId = 0;
    Cycle freeAt = 0;
    Cycle lastRequestCycle = kNeverCycle;
    BusRequest lastRequest{};
};

} // namespace pva

#endif // PVA_BUS_VECTOR_BUS_HH
