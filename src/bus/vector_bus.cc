#include "bus/vector_bus.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace pva
{

VectorBus::VectorBus(unsigned line_words) : lineWords(line_words)
{
    if (line_words % 2 != 0)
        fatal("line length must be an even number of words");
}

void
VectorBus::drive(Cycle now, const BusRequest &req)
{
    if (!requestFree(now))
        panic("vector bus driven while busy at cycle %llu",
              static_cast<unsigned long long>(now));
    lastRequestCycle = now;
    lastRequest = req;
    ++statRequestCycles;
    if (req.opcode == BusOpcode::StageRead ||
        req.opcode == BusOpcode::StageWrite) {
        freeAt = now + 1 + dataCycles();
        statDataCycles += dataCycles();
        PVA_TRACE_BLOCK(
            PVA_TRACE_BEGIN(traceTrackId, now,
                            req.opcode == BusOpcode::StageRead
                                ? "stage_read" : "stage_write",
                            "txn", req.txn);
            PVA_TRACE_END(traceTrackId, freeAt,
                          req.opcode == BusOpcode::StageRead
                              ? "stage_read" : "stage_write"););
    } else {
        freeAt = now + 1;
        PVA_TRACE_INSTANT(traceTrackId, now,
                          req.opcode == BusOpcode::VecRead
                              ? "vec_read" : "vec_write",
                          "txn", req.txn);
    }
}

std::optional<BusRequest>
VectorBus::snoop(Cycle now) const
{
    if (lastRequestCycle != kNeverCycle && lastRequestCycle == now)
        return lastRequest;
    return std::nullopt;
}

void
VectorBus::registerStats(StatSet &set, const std::string &prefix) const
{
    set.addScalar(prefix + ".requestCycles", &statRequestCycles);
    set.addScalar(prefix + ".dataCycles", &statDataCycles);
}

} // namespace pva
