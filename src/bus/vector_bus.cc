#include "bus/vector_bus.hh"

#include "sim/logging.hh"

namespace pva
{

VectorBus::VectorBus(unsigned line_words) : lineWords(line_words)
{
    if (line_words % 2 != 0)
        fatal("line length must be an even number of words");
}

void
VectorBus::drive(Cycle now, const BusRequest &req)
{
    if (!requestFree(now))
        panic("vector bus driven while busy at cycle %llu",
              static_cast<unsigned long long>(now));
    lastRequestCycle = now;
    lastRequest = req;
    ++statRequestCycles;
    if (req.opcode == BusOpcode::StageRead ||
        req.opcode == BusOpcode::StageWrite) {
        freeAt = now + 1 + dataCycles();
        statDataCycles += dataCycles();
    } else {
        freeAt = now + 1;
    }
}

std::optional<BusRequest>
VectorBus::snoop(Cycle now) const
{
    if (lastRequestCycle != kNeverCycle && lastRequestCycle == now)
        return lastRequest;
    return std::nullopt;
}

void
VectorBus::registerStats(StatSet &set, const std::string &prefix) const
{
    set.addScalar(prefix + ".requestCycles", &statRequestCycles);
    set.addScalar(prefix + ".dataCycles", &statDataCycles);
}

} // namespace pva
