/**
 * @file
 * A set-associative write-back L2 cache model.
 *
 * Chapter 1 motivates the PVA with cache and bus utilization: "the
 * application uses only some elements of a memory vector, but the whole
 * vector occupies space in the cache [and] is transferred across the
 * system bus". This substrate quantifies that argument: a processor-
 * side word-access interface whose misses become cache-line vector
 * commands on any MemorySystem. Driving it with raw strided addresses
 * reproduces the waste; driving it through a PVA-gathered dense shadow
 * region shows the remedy (examples/cache_utilization.cpp).
 *
 * The model is blocking (one outstanding miss), which matches the
 * utilization questions it answers; the overlapped-miss behaviour is
 * the kernel harness's job.
 */

#ifndef PVA_CACHE_L2_CACHE_HH
#define PVA_CACHE_L2_CACHE_HH

#include <cstdint>
#include <vector>

#include "core/memory_system.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace pva
{

/** Shape of the cache. */
struct CacheConfig
{
    unsigned lineWords = 32; ///< 128-byte lines, as the paper assumes
    unsigned sets = 64;
    unsigned ways = 4;

    std::uint64_t
    capacityWords() const
    {
        return static_cast<std::uint64_t>(lineWords) * sets * ways;
    }
};

/** Blocking set-associative write-back, write-allocate L2. */
class L2Cache
{
  public:
    /**
     * @param config cache shape.
     * @param mem    backing memory system (ticked via @p sim).
     * @param sim    simulation that owns @p mem's clock.
     */
    L2Cache(const CacheConfig &config, MemorySystem &mem,
            Simulation &sim);

    /** Processor word read; fills on miss (blocking). */
    Word read(WordAddr addr);

    /** Processor word write; write-allocate, dirty in cache. */
    void write(WordAddr addr, Word value);

    /** Write all dirty lines back to memory. */
    void flush();

    /** @name Statistics @{ */
    Scalar statHits;
    Scalar statMisses;
    Scalar statWritebacks;
    Scalar statWordsFetched; ///< Words moved over the bus for fills
    Scalar statWordsUsed;    ///< Distinct fetched words the CPU touched
    /** @} */

    /** Fraction of fetched words the processor actually used. */
    double
    busUtilization() const
    {
        return statWordsFetched.value() == 0
            ? 1.0
            : static_cast<double>(statWordsUsed.value()) /
                  static_cast<double>(statWordsFetched.value());
    }

    void registerStats(StatSet &set, const std::string &prefix) const;

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
        std::vector<Word> data;
        std::vector<bool> touched; ///< Words the CPU accessed
    };

    Line &lookup(WordAddr addr, bool allocate);
    void fill(Line &line, WordAddr line_base);
    void writeback(Line &line, unsigned set_index);
    void accountUse(Line &line, unsigned offset);

    /** Submit one line-sized command and block until completion. */
    std::vector<Word> lineOp(WordAddr base, bool is_read,
                             const std::vector<Word> *data);

    CacheConfig cfg;
    MemorySystem &memSystem;
    Simulation &sim;
    std::vector<std::vector<Line>> sets_; ///< [set][way]
    std::uint64_t lruCounter = 0;
};

} // namespace pva

#endif // PVA_CACHE_L2_CACHE_HH
