#include "cache/l2_cache.hh"

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

L2Cache::L2Cache(const CacheConfig &config, MemorySystem &mem,
                 Simulation &sim_)
    : cfg(config), memSystem(mem), sim(sim_)
{
    if (!isPowerOfTwo(cfg.lineWords) || !isPowerOfTwo(cfg.sets)) {
        throw SimError(SimErrorKind::Config, "l2cache", kNeverCycle,
                       "cache line words and set count must be powers "
                       "of two");
    }
    sets_.resize(cfg.sets, std::vector<Line>(cfg.ways));
}

std::vector<Word>
L2Cache::lineOp(WordAddr base, bool is_read, const std::vector<Word> *data)
{
    VectorCommand cmd;
    cmd.base = base;
    cmd.stride = 1;
    cmd.length = cfg.lineWords;
    cmd.isRead = is_read;
    if (!memSystem.trySubmit(cmd, 0, data))
        panic("blocking cache could not submit a line op");
    std::vector<Word> result;
    sim.runUntil([&] {
        auto done = memSystem.drainCompletions();
        if (done.empty())
            return false;
        result = std::move(done.front().data);
        return true;
    });
    return result;
}

void
L2Cache::fill(Line &line, WordAddr line_base)
{
    line.data = lineOp(line_base, true, nullptr);
    line.touched.assign(cfg.lineWords, false);
    line.valid = true;
    line.dirty = false;
    statWordsFetched += cfg.lineWords;
}

void
L2Cache::writeback(Line &line, unsigned set_index)
{
    WordAddr line_base =
        ((line.tag * cfg.sets) + set_index) *
        static_cast<WordAddr>(cfg.lineWords);
    lineOp(line_base, false, &line.data);
    ++statWritebacks;
    line.dirty = false;
}

void
L2Cache::accountUse(Line &line, unsigned offset)
{
    if (!line.touched[offset]) {
        line.touched[offset] = true;
        ++statWordsUsed;
    }
}

L2Cache::Line &
L2Cache::lookup(WordAddr addr, bool allocate)
{
    WordAddr line_no = addr / cfg.lineWords;
    unsigned set_index = static_cast<unsigned>(line_no % cfg.sets);
    std::uint64_t tag = line_no / cfg.sets;
    std::vector<Line> &set = sets_[set_index];

    for (Line &line : set) {
        if (line.valid && line.tag == tag) {
            ++statHits;
            line.lruStamp = ++lruCounter;
            return line;
        }
    }
    ++statMisses;
    if (!allocate)
        panic("lookup(allocate=false) missed");

    // Evict the least recently used way.
    Line *victim = &set[0];
    for (Line &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }
    if (victim->valid && victim->dirty)
        writeback(*victim, set_index);

    victim->tag = tag;
    victim->lruStamp = ++lruCounter;
    fill(*victim, line_no * cfg.lineWords);
    return *victim;
}

Word
L2Cache::read(WordAddr addr)
{
    Line &line = lookup(addr, true);
    unsigned offset = static_cast<unsigned>(addr % cfg.lineWords);
    accountUse(line, offset);
    return line.data[offset];
}

void
L2Cache::write(WordAddr addr, Word value)
{
    Line &line = lookup(addr, true);
    unsigned offset = static_cast<unsigned>(addr % cfg.lineWords);
    accountUse(line, offset);
    line.data[offset] = value;
    line.dirty = true;
}

void
L2Cache::flush()
{
    for (unsigned s = 0; s < cfg.sets; ++s) {
        for (Line &line : sets_[s]) {
            if (line.valid && line.dirty)
                writeback(line, s);
        }
    }
}

void
L2Cache::registerStats(StatSet &set, const std::string &prefix) const
{
    set.addScalar(prefix + ".hits", &statHits);
    set.addScalar(prefix + ".misses", &statMisses);
    set.addScalar(prefix + ".writebacks", &statWritebacks);
    set.addScalar(prefix + ".wordsFetched", &statWordsFetched);
    set.addScalar(prefix + ".wordsUsed", &statWordsUsed);
}

} // namespace pva
