/**
 * @file
 * Fleet scenario files: JSON in, FleetConfig out, result JSON back.
 *
 * A scenario is one JSON document describing a whole fleet run —
 * system, arbitration policy, shedding, sharding, and the tenant
 * groups — so capacity-planning runs are reviewable artifacts instead
 * of flag soup, and the loadgen daemon (fleet/daemon.hh) can ingest
 * them from a spool directory. Parsing is strict: unknown keys,
 * wrong types, and out-of-range values all throw SimError(Config)
 * with the offending key path, so a typo fails loudly instead of
 * silently running the default.
 *
 * The canonical shape (all keys except "kind" and "tenants" optional):
 *
 *   {
 *     "kind": "fleet",
 *     "name": "capacity-a",
 *     "system": "pva",
 *     "policy": "fifo",
 *     "aging": 1024,
 *     "clocking": "event",
 *     "check": false,
 *     "shards": 4,
 *     "seed": 1,
 *     "maxCycles": 50000000,
 *     "perStreamStats": false,
 *     "shed": {"enabled": true, "deadline": 200, "watermark": 0.75},
 *     "tenants": [
 *       {"name": "web", "count": 8, "streamsPerTenant": 4,
 *        "regionStrideWords": 4096,
 *        "stream": {"mode": "closed", "window": 4, "rate": 10.0,
 *                   "requests": 256, "priority": 0, "queueCap": 16,
 *                   "deadline": 0,
 *                   "pattern": {"regionBase": 0, "regionWords": 4096,
 *                               "minStride": 1, "maxStride": 8,
 *                               "minLength": 8, "maxLength": 8,
 *                               "readFraction": 1.0,
 *                               "indirect": false}}}
 *     ]
 *   }
 *
 * Execution knobs that belong to the invoking machine, not the
 * workload — worker threads, retry budget — stay on the command line;
 * callers set FleetConfig::jobs/retries after parsing.
 */

#ifndef PVA_FLEET_SCENARIO_HH
#define PVA_FLEET_SCENARIO_HH

#include <iosfwd>
#include <string>

#include "fleet/fleet_runner.hh"
#include "sim/json.hh"

namespace pva::fleet
{

/** A parsed scenario: its display name plus the run configuration. */
struct Scenario
{
    std::string name = "fleet";
    FleetConfig config;
};

/** Convert a parsed JSON document. Throws SimError(Config). */
Scenario parseScenario(const json::Value &doc);

/** Parse @p text as JSON and convert. Throws SimError(Config). */
Scenario parseScenarioText(const std::string &text);

/** Read @p path, parse, convert. Throws SimError(Config) on IO or
 *  parse failure. */
Scenario loadScenarioFile(const std::string &path);

/**
 * Write the versioned result document for one scenario run — one
 * line, newline-terminated:
 *   {"schemaVersion": 1, "tool": "pva_loadgen", "scenario": "...",
 *    "fleet": {...}}
 * The one-shot --scenario path and the daemon both emit results
 * through here, which is what makes their outputs byte-identical.
 */
void writeScenarioResult(std::ostream &os, const Scenario &scenario,
                         const FleetResult &result);

} // namespace pva::fleet

#endif // PVA_FLEET_SCENARIO_HH
