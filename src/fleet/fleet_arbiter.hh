/**
 * @file
 * Hierarchical stream arbitration for fleet-scale traffic.
 *
 * The flat StreamArbiter (traffic/arbiter.hh) scans every stream every
 * service step, which is perfect at paper scale (a handful of streams)
 * and hopeless at fleet scale (10^4-10^6 modeled streams). This file
 * splits the same arbitration semantics into two tiers:
 *
 *  - TenantArbiter: owns one tenant's streams, bounded queues, and
 *    ServiceStats. All per-step work is event-driven worklists plus
 *    lazy-deletion heaps (admission worklist, open-loop arrival heap,
 *    head/priority heaps for grant candidates, deadline-expiry heap),
 *    so a quiescent stream costs nothing and every mutation is
 *    O(log n_tenant).
 *  - FleetArbiter: drives the per-step phase order (gap credit,
 *    completions, admission, deadline shed, grant, occupancy sample)
 *    across tenants and picks grants globally through root-level
 *    lazy heaps over per-tenant candidates, O(log) per grant.
 *
 * The tiers never call each other directly for notifications: tenants
 * publish TenantDirty / TenantActivation / arrival and expiry
 * schedules on a MessageBus (fleet/message_bus.hh), and the root tier
 * (or any telemetry sink) subscribes. That keeps candidate caching,
 * round-robin occupancy sets, and stat sinks decoupled from the
 * tenant implementation.
 *
 * Semantics contract: with one tenant, a FleetArbiter is cycle-exact
 * against the flat StreamArbiter — same grant order, same tags, same
 * per-stream statistics, same drain cycle — across all policies,
 * shedding configurations, and both clocking modes (the differential
 * test in tests/test_fleet.cc holds this). The phase order, policy
 * tie-breaking, deferral accounting, and nextWake contract below are
 * therefore deliberate replicas of traffic/arbiter.cc; change them
 * together or not at all.
 */

#ifndef PVA_FLEET_FLEET_ARBITER_HH
#define PVA_FLEET_FLEET_ARBITER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/memory_system.hh"
#include "fleet/message_bus.hh"
#include "traffic/arbiter.hh"
#include "traffic/service_stats.hh"
#include "traffic/stream.hh"

namespace pva::fleet
{

/** One tenant's streams and name, ready to seat in a FleetArbiter. */
struct TenantSeat
{
    std::string name;
    std::vector<StreamSource> sources;
    ServiceStats *stats = nullptr; ///< Must outlive the arbiter
};

/**
 * One tenant's arbitration state: bounded queues plus the event-driven
 * index structures the root tier picks grants from. Constructed and
 * driven only by FleetArbiter.
 */
class TenantArbiter
{
  public:
    TenantArbiter(unsigned index, unsigned global_base,
                  const ArbiterConfig &config,
                  std::vector<StreamSource> sources_,
                  ServiceStats &stats_, MessageBus &bus_);

    unsigned index() const { return tenantIndex; }
    unsigned base() const { return globalBase; }
    std::size_t streamCount() const { return sources.size(); }
    const StreamSource &source(unsigned local) const
    {
        return sources[local];
    }
    void applyPokes(SparseMemory &mem) const;

    /** @name Per-step phases (called by FleetArbiter) @{ */
    /** Credit @p gap skipped cycles of backpressure to every stream
     *  that was deferred at the last processed step. */
    void creditDeferredGap(Cycle gap);
    /** Run admission for this step's worklist (due open-loop
     *  arrivals, freed closed-loop windows, deferred retries).
     *  @return true if anything changed (enqueue or overload shed). */
    bool admitStep(Cycle now);
    /** Drop queue heads whose deadline budget expired by @p now.
     *  @return true if anything was shed. */
    bool shedExpired(Cycle now);
    /** A completion for local stream @p local matured at @p now. */
    void onComplete(unsigned local, Cycle service_latency,
                    Cycle total_latency, std::uint32_t words,
                    bool is_read);
    /** @} */

    /** @name Grant candidates (lazy heap peeks, amortized O(log n)) @{ */
    /** Oldest queue head: (arrival, local), ties lowest local id. */
    bool fifoBest(Cycle &arrival, unsigned &local);
    /** Highest-priority head; ties oldest, then lowest local id. */
    bool prioBest(unsigned &prio, Cycle &arrival, unsigned &local);
    /** Round-robin: smallest non-empty local id >= @p from_local. */
    bool rrFirstAtLeast(unsigned from_local, unsigned &local) const;
    /** Round-robin wrap: smallest non-empty local id. */
    bool rrFirst(unsigned &local) const;
    /** @} */

    const TrafficRequest &head(unsigned local) const
    {
        return queues[local].front();
    }
    /** Pop the granted head of @p local (records onSubmit). */
    void popGranted(unsigned local, Cycle now);

    /** Earliest pending open-loop arrival (kNeverCycle if none). */
    Cycle minArrival() const;
    /** Earliest queued-head deadline expiry (kNeverCycle if none). */
    Cycle minExpiry();

    /** Any admission work queued for this or the next step? */
    bool admissionPending() const
    {
        return !admitWork.empty() || !nextStepWork.empty() ||
               !deferredList.empty();
    }
    bool hasDeferred() const { return !deferredList.empty(); }

  private:
    void processAdmission(unsigned local, Cycle now, bool &changed);
    /** The queue of @p local gained a (new) head: refresh candidate
     *  structures and publish the change. */
    void newHead(unsigned local);
    void queueBecameEmpty(unsigned local);
    /** Retire @p local once it is exhausted with an empty queue. */
    void checkRetired(unsigned local);
    void pushArrivalEntry(Cycle arrival, unsigned local);
    void addDeferred(unsigned local);
    void removeDeferred(unsigned local);

    unsigned tenantIndex;
    unsigned globalBase;
    ArbiterConfig cfg;
    std::vector<StreamSource> sources;
    ServiceStats &stats;
    MessageBus &bus;
    Channel<ShedEvent> *shedChannel; ///< Cached for the subscriber check

    /** Precomputed per-stream shed thresholds (traffic/arbiter.cc). */
    std::vector<Cycle> shedDeadline;
    std::vector<std::size_t> shedDepth;

    std::vector<std::deque<TrafficRequest>> queues;

    /** @name Admission worklists
     * A stream is processed at most once per step (admitStamp).
     * nextStepWork holds overload-shed streams that must retry at the
     * next step (the flat arbiter's per-step one-drop bound). @{ */
    std::vector<unsigned> admitWork;
    std::vector<unsigned> nextStepWork;
    std::vector<Cycle> admitStamp; ///< now + 1 when processed at now
    /** @} */

    /** @name Deferred (backpressured) streams
     * Swap-removable list + position index; iterated every step to
     * retry admission and count per-cycle deferrals, exactly like the
     * flat arbiter's full scan does. @{ */
    std::vector<unsigned> deferredList;
    std::vector<std::uint32_t> deferredPos; ///< kNotDeferred when absent
    std::vector<unsigned> deferredScratch;
    /** @} */

    /** Open-loop arrival schedule: (arrival, local) min-heap with at
     *  most one live entry per stream (hasArrivalEntry). */
    std::priority_queue<std::pair<Cycle, unsigned>,
                        std::vector<std::pair<Cycle, unsigned>>,
                        std::greater<>>
        arrivalHeap;
    std::vector<char> hasArrivalEntry;

    /** Lazy head heap: (arrival, local); an entry is live iff the
     *  stream's current front has that arrival. Fifo + aging pick. */
    std::priority_queue<std::pair<Cycle, unsigned>,
                        std::vector<std::pair<Cycle, unsigned>>,
                        std::greater<>>
        headHeap;

    /** Lazy priority heap: top = highest priority, then oldest, then
     *  lowest local id (Priority policy pick). */
    struct PrioWorse
    {
        bool
        operator()(const std::tuple<unsigned, Cycle, unsigned> &x,
                   const std::tuple<unsigned, Cycle, unsigned> &y) const
        {
            if (std::get<0>(x) != std::get<0>(y))
                return std::get<0>(x) < std::get<0>(y);
            if (std::get<1>(x) != std::get<1>(y))
                return std::get<1>(x) > std::get<1>(y);
            return std::get<2>(x) > std::get<2>(y);
        }
    };
    std::priority_queue<std::tuple<unsigned, Cycle, unsigned>,
                        std::vector<std::tuple<unsigned, Cycle,
                                               unsigned>>,
                        PrioWorse>
        prioHeap;

    /** Non-empty queues by local id (RoundRobin pick). */
    std::set<unsigned> rrSet;

    /** Lazy deadline-expiry heap: (expiry, local). */
    std::priority_queue<std::pair<Cycle, unsigned>,
                        std::vector<std::pair<Cycle, unsigned>>,
                        std::greater<>>
        expiryHeap;

    std::vector<char> retired;
    std::size_t nonEmptyCount = 0;

    friend class FleetArbiter;
};

/** Multiplexes a fleet of tenants onto one MemorySystem. */
class FleetArbiter
{
  public:
    /** Seats the tenants (taking ownership of their sources) and
     *  subscribes the root tier on @p bus_. The seats' ServiceStats
     *  must outlive the arbiter. */
    FleetArbiter(const ArbiterConfig &config,
                 std::vector<TenantSeat> seats, MessageBus &bus_);
    ~FleetArbiter();

    /**
     * One service step at cycle @p now, same contract as
     * StreamArbiter::service: returns true when every stream is
     * exhausted, every queue empty, and nothing is in flight.
     */
    bool service(MemorySystem &sys, Cycle now);

    /**
     * Earliest cycle after @p now with self-scheduled arbiter work
     * (StreamArbiter::nextWake contract). Non-const: validating the
     * fleet-level arrival/expiry heaps prunes stale entries, which is
     * what keeps the wake exact — never earlier or later than the
     * flat arbiter would report.
     */
    Cycle nextWake(Cycle now);

    void applyPokes(SparseMemory &mem) const;

    std::size_t tenantCount() const { return tenants.size(); }
    std::size_t streamCount() const { return totalStreams; }
    TenantArbiter &tenant(unsigned t) { return *tenants[t]; }
    const TenantArbiter &tenant(unsigned t) const
    {
        return *tenants[t];
    }

    /** @name Fleet-level occupancy sampling
     * Owned here (not per-tenant) so merged tenant stats never
     * multiply the cycle count by the tenant count. @{ */
    std::uint64_t occupancyCycles() const { return occCycles; }
    std::uint64_t occupancySum() const { return occSum; }
    double
    meanInFlight() const
    {
        return occCycles == 0 ? 0.0
                              : static_cast<double>(occSum) /
                                    static_cast<double>(occCycles);
    }
    /** @} */

    std::uint64_t grants() const { return grantCount; }

  private:
    struct FleetInFlight
    {
        unsigned tenant = 0;
        unsigned local = 0;
        Cycle arrival = 0;
        Cycle submitted = 0;
        std::uint32_t words = 0;
        bool isRead = true;
    };

    unsigned tenantOf(unsigned gid) const;
    void markPending(unsigned t);
    void markShedPending(unsigned t);
    void drainDirty();
    void refreshCandidate(unsigned t);
    /** Re-arm the fleet arrival/expiry heaps after processing @p t. */
    void reprimeArrival(unsigned t);
    void reprimeExpiry(unsigned t);

    bool pickFifo(unsigned &t, unsigned &local, Cycle &arrival);
    bool pickPriority(Cycle now, unsigned &t, unsigned &local);
    bool pickRoundRobin(unsigned &t, unsigned &local);

    ArbiterConfig cfg;
    MessageBus &bus;
    std::vector<std::unique_ptr<TenantArbiter>> tenants;
    std::vector<unsigned> bases; ///< bases[t] = first global id of t
    std::size_t totalStreams = 0;

    std::unordered_map<std::uint64_t, FleetInFlight> inFlight;
    std::vector<Completion> drainedCompletions;
    std::uint64_t nextTag = 0;
    std::uint64_t grantCount = 0;
    unsigned lastGrantedGid = 0;

    /** @name Root grant candidates (lazy heaps over tenant bests) @{ */
    std::priority_queue<std::pair<Cycle, unsigned>,
                        std::vector<std::pair<Cycle, unsigned>>,
                        std::greater<>>
        rootFifo; ///< (arrival, global id)
    struct RootPrioWorse
    {
        bool
        operator()(const std::tuple<unsigned, Cycle, unsigned> &x,
                   const std::tuple<unsigned, Cycle, unsigned> &y) const
        {
            if (std::get<0>(x) != std::get<0>(y))
                return std::get<0>(x) < std::get<0>(y);
            if (std::get<1>(x) != std::get<1>(y))
                return std::get<1>(x) > std::get<1>(y);
            return std::get<2>(x) > std::get<2>(y);
        }
    };
    std::priority_queue<std::tuple<unsigned, Cycle, unsigned>,
                        std::vector<std::tuple<unsigned, Cycle,
                                               unsigned>>,
                        RootPrioWorse>
        rootPrio; ///< (priority, arrival, global id)
    std::set<unsigned> nonEmptyTenants; ///< RoundRobin occupancy
    std::vector<char> dirtyFlag;
    std::vector<unsigned> dirtyList;
    /** @} */

    /** @name Fleet-level wake schedules
     * Lazy min-heaps of (cycle, tenant); the cache holds the smallest
     * outstanding entry per tenant so each tenant keeps at most one
     * live entry (plus prunable stale ones). @{ */
    std::priority_queue<std::pair<Cycle, unsigned>,
                        std::vector<std::pair<Cycle, unsigned>>,
                        std::greater<>>
        fleetArrival;
    std::vector<Cycle> arrivalCache;
    std::priority_queue<std::pair<Cycle, unsigned>,
                        std::vector<std::pair<Cycle, unsigned>>,
                        std::greater<>>
        fleetExpiry;
    std::vector<Cycle> expiryCache;
    /** @} */

    /** @name Per-step tenant worklists @{ */
    std::vector<unsigned> pendingTenants;
    std::vector<char> pendingFlag;
    std::vector<unsigned> pendingScratch;
    std::vector<unsigned> shedPending;
    std::vector<char> shedPendingFlag;
    /** Tenants with any deferred stream (gap credit set). */
    std::set<unsigned> deferredTenants;
    /** @} */

    std::size_t activeStreams = 0; ///< Streams not yet retired

    /** @name Fleet occupancy + event-clocking bookkeeping @{ */
    std::uint64_t occCycles = 0;
    std::uint64_t occSum = 0;
    bool changedLastService = false;
    bool everServiced = false;
    Cycle lastServiceAt = 0;
    std::size_t lastInFlightSample = 0;
    /** @} */
};

} // namespace pva::fleet

#endif // PVA_FLEET_FLEET_ARBITER_HH
