/**
 * @file
 * Sharded execution of fleet-scale traffic scenarios.
 *
 * runFleet() stamps a fleet of tenants out of TenantSpec templates,
 * partitions them across shards (tenant t lives on shard t % shards),
 * and runs one MemorySystem + FleetArbiter per shard on the
 * SweepExecutor's generic task engine — inheriting its worker pool,
 * retry policy, and index-addressed determinism. Shard results merge
 * in shard-index order with associative reductions (counter sums,
 * LogHistogram bucket adds), so a FleetResult is byte-identical for a
 * given (config, shards) at any --jobs.
 *
 * Stream seeding is derived from the global stream index, never from
 * the shard, so the offered load of every stream is a pure function of
 * the scenario — resharding changes only which streams contend for a
 * memory system, not what they ask of it.
 */

#ifndef PVA_FLEET_FLEET_RUNNER_HH
#define PVA_FLEET_FLEET_RUNNER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "kernels/sweep.hh"
#include "traffic/arbiter.hh"
#include "traffic/service_stats.hh"
#include "traffic/stream.hh"

namespace pva::fleet
{

/** A group of identically-shaped tenants. */
struct TenantSpec
{
    std::string name = "tenant"; ///< Group name; tenants get "<name><t>"
    unsigned count = 1;          ///< Tenants stamped from this spec
    unsigned streamsPerTenant = 1;
    /** Stream template. Per stream, the name becomes "s<local>", the
     *  seed is mixed with the global stream index (splitmix64 step),
     *  and — when regionStrideWords > 0 — the pattern region shifts by
     *  global_stream * regionStrideWords (disjoint regions, which is
     *  what keeps --check composable at fleet scale). */
    StreamConfig stream;
    std::uint64_t regionStrideWords = 0;
};

/** Everything one fleet run needs. */
struct FleetConfig
{
    SystemKind system = SystemKind::PvaSdram;
    SystemConfig config{};  ///< Per-shard system construction knobs
    ArbiterConfig arbiter{};
    std::vector<TenantSpec> tenants;
    RunLimits limits{};     ///< Per-shard watchdog budgets
    unsigned shards = 1;    ///< Clamped to the tenant count
    unsigned jobs = 0;      ///< Worker threads (0 = hardware)
    unsigned retries = 1;   ///< Attempt budget per shard
    /** Per-stream counters + histograms (memory-heavy; small fleets
     *  and differential tests only). Default keeps per-tenant
     *  aggregates, which is what fleet scale can afford. */
    bool perStreamStats = false;
};

/** One tenant's slice of a FleetResult. */
struct TenantResult
{
    std::string name;
    unsigned shard = 0;
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t deferrals = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t shedOverload = 0;
    std::uint64_t queuePeak = 0;
    std::uint64_t words = 0;
    LatencySummary queueDelay;
    LatencySummary serviceLatency;
    LatencySummary totalLatency;
};

/** Merged outcome of one fleet run. */
struct FleetResult
{
    Cycle cycles = 0; ///< Makespan: the slowest shard's drain cycle
    unsigned shards = 0;
    std::uint64_t tenants = 0;
    std::uint64_t streams = 0;
    std::uint64_t completed = 0;
    std::uint64_t words = 0;
    std::uint64_t grants = 0;
    std::uint64_t shed = 0;
    double shedRate = 0.0;
    double requestsPerKilocycle = 0.0; ///< Against the makespan
    double wordsPerCycle = 0.0;
    double meanInFlight = 0.0; ///< Occupancy-weighted across shards
    std::uint64_t simTicks = 0;      ///< Summed over shards
    std::uint64_t cyclesSkipped = 0; ///< Summed over shards
    /** Bus-telemetry cross-check: grants/sheds counted by a decoupled
     *  MessageBus subscriber, not the arbiter (must equal grants and
     *  shed above — the differential test holds this). */
    std::uint64_t busGrants = 0;
    std::uint64_t busSheds = 0;
    LatencySummary queueDelay;
    LatencySummary serviceLatency;
    LatencySummary totalLatency;
    std::vector<TenantResult> tenantResults; ///< Global tenant order

    /** Deterministic single-line JSON dump (no trailing newline). */
    void dumpJson(std::ostream &os) const;
};

/**
 * Run @p config to completion. Throws SimError on invalid
 * configuration, watchdog expiry, or any shard failing its attempt
 * budget.
 */
FleetResult runFleet(const FleetConfig &config);

} // namespace pva::fleet

#endif // PVA_FLEET_FLEET_RUNNER_HH
