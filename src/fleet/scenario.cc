#include "fleet/scenario.hh"

#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "kernels/sweep.hh"
#include "sim/clocking.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "traffic/arbiter.hh"

namespace pva::fleet
{

namespace
{

[[noreturn]] void
fail(const std::string &detail)
{
    throw SimError(SimErrorKind::Config, "scenario", kNeverCycle,
                   detail);
}

/** Reject keys outside @p allowed so typos fail loudly. */
void
checkKeys(const json::Value &obj, const char *where,
          std::initializer_list<const char *> allowed)
{
    for (const auto &[key, value] : obj.object()) {
        bool known = false;
        for (const char *a : allowed)
            known = known || key == a;
        if (!known) {
            fail(csprintf("unknown key '%s' in %s", key.c_str(),
                          where));
        }
    }
}

const json::Value &
requireObject(const json::Value &v, const char *where)
{
    if (!v.isObject())
        fail(csprintf("%s must be an object", where));
    return v;
}

std::uint64_t
u64Field(const json::Value &obj, const char *key, const char *where,
         std::uint64_t fallback)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return fallback;
    bool ok = true;
    std::uint64_t out = v->isNumber() ? v->asU64(ok) : (ok = false, 0);
    if (!ok) {
        fail(csprintf("%s.%s must be a non-negative integer", where,
                      key));
    }
    return out;
}

double
doubleField(const json::Value &obj, const char *key, const char *where,
            double fallback)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return fallback;
    bool ok = true;
    double out = v->isNumber() ? v->asDouble(ok) : (ok = false, 0.0);
    if (!ok)
        fail(csprintf("%s.%s must be a number", where, key));
    return out;
}

bool
boolField(const json::Value &obj, const char *key, const char *where,
          bool fallback)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return fallback;
    if (!v->isBool())
        fail(csprintf("%s.%s must be true or false", where, key));
    return v->boolean();
}

std::string
stringField(const json::Value &obj, const char *key, const char *where,
            const std::string &fallback)
{
    const json::Value *v = obj.find(key);
    if (!v)
        return fallback;
    if (!v->isString())
        fail(csprintf("%s.%s must be a string", where, key));
    return v->string();
}

PatternConfig
parsePattern(const json::Value &v, const char *where)
{
    requireObject(v, where);
    checkKeys(v, where,
              {"regionBase", "regionWords", "minStride", "maxStride",
               "minLength", "maxLength", "readFraction", "indirect"});
    PatternConfig p;
    p.regionBase = u64Field(v, "regionBase", where, p.regionBase);
    p.regionWords = u64Field(v, "regionWords", where, p.regionWords);
    p.minStride = static_cast<std::uint32_t>(
        u64Field(v, "minStride", where, p.minStride));
    p.maxStride = static_cast<std::uint32_t>(
        u64Field(v, "maxStride", where, p.maxStride));
    p.minLength = static_cast<std::uint32_t>(
        u64Field(v, "minLength", where, p.minLength));
    p.maxLength = static_cast<std::uint32_t>(
        u64Field(v, "maxLength", where, p.maxLength));
    p.readFraction =
        doubleField(v, "readFraction", where, p.readFraction);
    if (p.readFraction < 0.0 || p.readFraction > 1.0)
        fail(csprintf("%s.readFraction must be in [0, 1]", where));
    if (boolField(v, "indirect", where, false))
        p.mode = VectorCommand::Mode::Indirect;
    return p;
}

StreamConfig
parseStream(const json::Value &v, const char *where,
            std::uint64_t default_seed)
{
    requireObject(v, where);
    checkKeys(v, where,
              {"mode", "window", "rate", "requests", "priority",
               "queueCap", "deadline", "seed", "pattern"});
    StreamConfig s;
    s.seed = default_seed;
    const std::string mode = stringField(v, "mode", where, "closed");
    if (mode == "closed") {
        s.mode = ArrivalMode::ClosedLoop;
    } else if (mode == "open") {
        s.mode = ArrivalMode::OpenLoop;
    } else {
        fail(csprintf("%s.mode must be \"closed\" or \"open\", not "
                      "\"%s\"",
                      where, mode.c_str()));
    }
    s.window =
        static_cast<unsigned>(u64Field(v, "window", where, s.window));
    s.requestsPerKilocycle =
        doubleField(v, "rate", where, s.requestsPerKilocycle);
    s.requests = u64Field(v, "requests", where, s.requests);
    s.priority = static_cast<unsigned>(
        u64Field(v, "priority", where, s.priority));
    s.queueCapacity = static_cast<unsigned>(
        u64Field(v, "queueCap", where, s.queueCapacity));
    s.deadline = u64Field(v, "deadline", where, s.deadline);
    s.seed = u64Field(v, "seed", where, s.seed);
    if (const json::Value *p = v.find("pattern"))
        s.pattern = parsePattern(*p, where);
    return s;
}

TenantSpec
parseTenant(const json::Value &v, const char *where,
            std::uint64_t default_seed)
{
    requireObject(v, where);
    checkKeys(v, where,
              {"name", "count", "streamsPerTenant", "regionStrideWords",
               "stream"});
    TenantSpec spec;
    spec.name = stringField(v, "name", where, spec.name);
    spec.count =
        static_cast<unsigned>(u64Field(v, "count", where, spec.count));
    spec.streamsPerTenant = static_cast<unsigned>(u64Field(
        v, "streamsPerTenant", where, spec.streamsPerTenant));
    spec.regionStrideWords =
        u64Field(v, "regionStrideWords", where, spec.regionStrideWords);
    spec.stream.seed = default_seed;
    if (const json::Value *s = v.find("stream"))
        spec.stream = parseStream(*s, where, default_seed);
    if (spec.count == 0)
        fail(csprintf("%s.count must be at least 1", where));
    if (spec.streamsPerTenant == 0)
        fail(csprintf("%s.streamsPerTenant must be at least 1", where));
    return spec;
}

} // anonymous namespace

Scenario
parseScenario(const json::Value &doc)
{
    requireObject(doc, "scenario");
    checkKeys(doc, "scenario",
              {"kind", "name", "system", "policy", "aging", "clocking",
               "backend", "subarrays", "refreshWindow", "check",
               "shards", "seed", "maxCycles", "perStreamStats", "shed",
               "tenants"});

    const std::string kind = stringField(doc, "kind", "scenario", "");
    if (kind != "fleet") {
        fail(csprintf("scenario.kind must be \"fleet\", not \"%s\"",
                      kind.c_str()));
    }

    Scenario sc;
    sc.name = stringField(doc, "name", "scenario", sc.name);
    FleetConfig &fc = sc.config;

    const std::string system =
        stringField(doc, "system", "scenario", "pva");
    bool found = false;
    for (SystemKind k : allSystems()) {
        if (system == systemShortName(k)) {
            fc.system = k;
            found = true;
        }
    }
    if (!found)
        fail(csprintf("unknown scenario.system '%s'", system.c_str()));

    const std::string policy =
        stringField(doc, "policy", "scenario", "fifo");
    if (!parseArbPolicy(policy, fc.arbiter.policy)) {
        fail(csprintf("unknown scenario.policy '%s' "
                      "(try: fifo rr priority)",
                      policy.c_str()));
    }
    fc.arbiter.agingThreshold =
        u64Field(doc, "aging", "scenario", fc.arbiter.agingThreshold);

    const std::string clocking =
        stringField(doc, "clocking", "scenario", "event");
    if (!parseClockingMode(clocking, fc.config.clocking)) {
        fail(csprintf("unknown scenario.clocking '%s' "
                      "(try: event exhaustive)",
                      clocking.c_str()));
    }
    const std::string backend =
        stringField(doc, "backend", "scenario",
                    backendName(fc.config.backend));
    if (!parseMemBackend(backend, fc.config.backend)) {
        fail(csprintf("unknown scenario.backend '%s' "
                      "(try: legacy salp deferred)",
                      backend.c_str()));
    }
    fc.config.salpSubarrays = static_cast<unsigned>(u64Field(
        doc, "subarrays", "scenario", fc.config.salpSubarrays));
    fc.config.refreshDeferWindow = static_cast<unsigned>(u64Field(
        doc, "refreshWindow", "scenario",
        fc.config.refreshDeferWindow));
    fc.config.timingCheck =
        boolField(doc, "check", "scenario", fc.config.timingCheck);

    fc.shards = static_cast<unsigned>(
        u64Field(doc, "shards", "scenario", 1));
    if (fc.shards == 0)
        fail("scenario.shards must be at least 1");
    fc.limits.maxCycles =
        u64Field(doc, "maxCycles", "scenario", fc.limits.maxCycles);
    fc.perStreamStats = boolField(doc, "perStreamStats", "scenario",
                                  fc.perStreamStats);
    const std::uint64_t seed = u64Field(doc, "seed", "scenario", 1);

    if (const json::Value *shed = doc.find("shed")) {
        requireObject(*shed, "scenario.shed");
        checkKeys(*shed, "scenario.shed",
                  {"enabled", "deadline", "watermark"});
        fc.arbiter.shed.enabled =
            boolField(*shed, "enabled", "scenario.shed", true);
        fc.arbiter.shed.defaultDeadline = u64Field(
            *shed, "deadline", "scenario.shed",
            fc.arbiter.shed.defaultDeadline);
        fc.arbiter.shed.queueHighWatermark = doubleField(
            *shed, "watermark", "scenario.shed",
            fc.arbiter.shed.queueHighWatermark);
    }

    const json::Value *tenants = doc.find("tenants");
    if (!tenants || !tenants->isArray() || tenants->array().empty())
        fail("scenario.tenants must be a non-empty array");
    for (std::size_t i = 0; i < tenants->array().size(); ++i) {
        fc.tenants.push_back(
            parseTenant(tenants->array()[i],
                        csprintf("scenario.tenants[%zu]", i).c_str(),
                        seed));
    }
    return sc;
}

Scenario
parseScenarioText(const std::string &text)
{
    json::Value doc;
    std::string error;
    if (!json::parse(text, doc, error)) {
        fail(csprintf("scenario JSON parse failed: %s",
                      error.c_str()));
    }
    return parseScenario(doc);
}

Scenario
loadScenarioFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fail(csprintf("cannot open scenario file '%s'", path.c_str()));
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
        fail(csprintf("error reading scenario file '%s'",
                      path.c_str()));
    }
    return parseScenarioText(buf.str());
}

void
writeScenarioResult(std::ostream &os, const Scenario &scenario,
                    const FleetResult &result)
{
    os << "{\"schemaVersion\": 1, \"tool\": \"pva_loadgen\", "
          "\"scenario\": \""
       << json::escape(scenario.name) << "\", \"fleet\": ";
    result.dumpJson(os);
    os << "}\n";
}

} // namespace pva::fleet
