#include "fleet/fleet_runner.hh"

#include <algorithm>
#include <memory>
#include <ostream>
#include <utility>

#include "fleet/fleet_arbiter.hh"
#include "fleet/message_bus.hh"
#include "kernels/sweep_executor.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/simulation.hh"

namespace pva::fleet
{

namespace
{

/** Fault-seed advance per retry attempt (matches SweepExecutor). */
constexpr std::uint64_t kRetrySeedStep = 0x9e3779b97f4a7c15ULL;

void
jsonSummary(std::ostream &os, const char *key, const LatencySummary &s)
{
    os << '"' << key << "\": {\"samples\": " << s.samples
       << ", \"min\": " << s.min << ", \"max\": " << s.max
       << ", \"mean\": " << s.mean << ", \"p50\": " << s.p50
       << ", \"p95\": " << s.p95 << ", \"p99\": " << s.p99
       << ", \"p999\": " << s.p999 << "}";
}

/** Where tenant @p t's spec and global stream range live. */
struct TenantLayout
{
    std::size_t spec = 0;
    std::uint64_t firstStream = 0;
    std::string name;
};

/** Everything one shard task hands back for the merge. */
struct ShardOutcome
{
    std::unique_ptr<ServiceStats> merged; ///< Shard-level aggregate
    std::vector<TenantResult> tenantResults; ///< Local tenant order
    Cycle cycles = 0;
    std::uint64_t simTicks = 0;
    std::uint64_t cyclesSkipped = 0;
    std::uint64_t grants = 0;
    std::uint64_t occCycles = 0;
    std::uint64_t occSum = 0;
    std::uint64_t busGrants = 0;
    std::uint64_t busSheds = 0;
};

} // anonymous namespace

void
FleetResult::dumpJson(std::ostream &os) const
{
    os << "{\"cycles\": " << cycles << ", \"shards\": " << shards
       << ", \"tenants\": " << tenants << ", \"streams\": " << streams
       << ", \"completed\": " << completed << ", \"words\": " << words
       << ", \"grants\": " << grants << ", \"shed\": " << shed
       << ", \"shedRate\": " << shedRate
       << ", \"requestsPerKilocycle\": " << requestsPerKilocycle
       << ", \"wordsPerCycle\": " << wordsPerCycle
       << ", \"meanInFlight\": " << meanInFlight
       << ", \"simTicks\": " << simTicks
       << ", \"cyclesSkipped\": " << cyclesSkipped
       << ", \"busGrants\": " << busGrants
       << ", \"busSheds\": " << busSheds << ", ";
    jsonSummary(os, "queueDelay", queueDelay);
    os << ", ";
    jsonSummary(os, "serviceLatency", serviceLatency);
    os << ", ";
    jsonSummary(os, "totalLatency", totalLatency);
    os << ", \"tenantResults\": [";
    for (std::size_t i = 0; i < tenantResults.size(); ++i) {
        const TenantResult &t = tenantResults[i];
        os << (i ? ", " : "") << "{\"name\": \"" << t.name
           << "\", \"shard\": " << t.shard
           << ", \"arrivals\": " << t.arrivals
           << ", \"completed\": " << t.completed
           << ", \"deferrals\": " << t.deferrals
           << ", \"shedDeadline\": " << t.shedDeadline
           << ", \"shedOverload\": " << t.shedOverload
           << ", \"queuePeak\": " << t.queuePeak
           << ", \"words\": " << t.words << ", ";
        jsonSummary(os, "queueDelay", t.queueDelay);
        os << ", ";
        jsonSummary(os, "serviceLatency", t.serviceLatency);
        os << ", ";
        jsonSummary(os, "totalLatency", t.totalLatency);
        os << "}";
    }
    os << "]}";
}

FleetResult
runFleet(const FleetConfig &config)
{
    if (config.tenants.empty()) {
        throw SimError(SimErrorKind::Config, "fleet", kNeverCycle,
                       "at least one tenant spec is required");
    }
    for (const TenantSpec &spec : config.tenants) {
        if (spec.count == 0) {
            throw SimError(SimErrorKind::Config, "fleet", kNeverCycle,
                           csprintf("tenant spec '%s' has count 0",
                                    spec.name.c_str()));
        }
        if (spec.streamsPerTenant == 0) {
            throw SimError(
                SimErrorKind::Config, "fleet", kNeverCycle,
                csprintf("tenant spec '%s' has 0 streams per tenant",
                         spec.name.c_str()));
        }
    }

    // Lay the fleet out flat: tenant and stream indices are global,
    // assigned spec by spec, so seeds and regions are a pure function
    // of the scenario (not of sharding or scheduling).
    std::vector<TenantLayout> layout;
    std::uint64_t globalStream = 0;
    for (std::size_t si = 0; si < config.tenants.size(); ++si) {
        const TenantSpec &spec = config.tenants[si];
        for (unsigned c = 0; c < spec.count; ++c) {
            TenantLayout tl;
            tl.spec = si;
            tl.firstStream = globalStream;
            tl.name = csprintf("%s%zu", spec.name.c_str(),
                               layout.size());
            layout.push_back(std::move(tl));
            globalStream += spec.streamsPerTenant;
        }
    }
    const std::uint64_t totalTenants = layout.size();
    const std::uint64_t totalStreams = globalStream;

    unsigned shards = std::max(1u, config.shards);
    shards = static_cast<unsigned>(
        std::min<std::uint64_t>(shards, totalTenants));

    const ServiceStats::Detail detail = config.perStreamStats
        ? ServiceStats::Detail::PerStream
        : ServiceStats::Detail::AggregateOnly;

    std::vector<ShardOutcome> outcomes(shards);

    auto task = [&](std::size_t s, unsigned attempt) {
        SystemConfig sys_cfg = config.config;
        // A retry of a fault-injected shard explores a different
        // fault timeline rather than replaying the failure.
        if (attempt > 0 && sys_cfg.faults.enabled())
            sys_cfg.faults.seed += kRetrySeedStep * attempt;

        MessageBus bus;
        std::vector<std::unique_ptr<ServiceStats>> tenantStats;
        std::vector<TenantSeat> seats;
        for (std::uint64_t t = s; t < totalTenants;
             t += shards) {
            const TenantLayout &tl = layout[t];
            const TenantSpec &spec = config.tenants[tl.spec];
            std::vector<StreamSource> sources;
            std::vector<std::string> names;
            sources.reserve(spec.streamsPerTenant);
            names.reserve(spec.streamsPerTenant);
            for (unsigned k = 0; k < spec.streamsPerTenant; ++k) {
                const std::uint64_t g = tl.firstStream + k;
                StreamConfig sc = spec.stream;
                sc.name = csprintf("s%u", k);
                sc.seed =
                    spec.stream.seed + kRetrySeedStep * (g + 1);
                if (spec.regionStrideWords > 0) {
                    sc.pattern.regionBase =
                        spec.stream.pattern.regionBase +
                        g * spec.regionStrideWords;
                }
                sources.emplace_back(sc, k, sys_cfg.bc.lineWords);
                names.push_back(sources.back().name());
            }
            tenantStats.push_back(std::make_unique<ServiceStats>(
                names, detail, tl.name));
            TenantSeat seat;
            seat.name = tl.name;
            seat.sources = std::move(sources);
            seat.stats = tenantStats.back().get();
            seats.push_back(std::move(seat));
        }

        // A decoupled telemetry sink: counts grants and sheds off the
        // bus, never touching the arbiter (FleetResult cross-checks it
        // against the arbiter's own counters).
        std::uint64_t busGrants = 0, busSheds = 0;
        bus.subscribe<GrantEvent>(
            [&busGrants](const GrantEvent &) { ++busGrants; });
        bus.subscribe<ShedEvent>(
            [&busSheds](const ShedEvent &) { ++busSheds; });

        auto sys = makeSystem(config.system, sys_cfg);
        FleetArbiter arbiter(config.arbiter, std::move(seats), bus);
        arbiter.applyPokes(sys->memory());

        Simulation sim(sys_cfg.clocking);
        sim.add(sys.get());
        sim.runUntil(
            [&] {
                bool done = arbiter.service(*sys, sim.now());
                if (!done)
                    sim.requestWake(arbiter.nextWake(sim.now()));
                return done;
            },
            config.limits.maxCycles, config.limits.timeoutMillis);

        ShardOutcome out;
        out.cycles = sim.now();
        out.simTicks = sim.simTicks();
        out.cyclesSkipped = sim.cyclesSkipped();
        out.grants = arbiter.grants();
        out.occCycles = arbiter.occupancyCycles();
        out.occSum = arbiter.occupancySum();
        out.busGrants = busGrants;
        out.busSheds = busSheds;
        out.merged = std::make_unique<ServiceStats>(
            std::vector<std::string>{},
            ServiceStats::Detail::AggregateOnly, "fleet");
        out.tenantResults.reserve(tenantStats.size());
        for (std::size_t j = 0; j < tenantStats.size(); ++j) {
            const ServiceStats &st = *tenantStats[j];
            out.merged->mergeFrom(st);
            TenantResult tr;
            tr.name = layout[s + j * shards].name;
            tr.shard = static_cast<unsigned>(s);
            tr.arrivals = st.arrivalsTotal();
            tr.completed = st.completedTotal();
            tr.deferrals = st.deferralsTotal();
            tr.shedDeadline = st.shedDeadlineTotal();
            tr.shedOverload = st.shedOverloadTotal();
            tr.queuePeak = st.queuePeakTotal();
            tr.words = st.wordsTotal();
            tr.queueDelay = st.aggregateQueueDelay();
            tr.serviceLatency = st.aggregateServiceLatency();
            tr.totalLatency = st.aggregateTotalLatency();
            out.tenantResults.push_back(std::move(tr));
        }
        outcomes[s] = std::move(out);
    };

    SweepExecutor executor(config.jobs);
    executor.setMaxAttempts(std::max(1u, config.retries));
    TaskReport report = executor.runTasks(shards, task);
    if (!report.allOk()) {
        const TaskFailure &f = report.failures.front();
        throw SimError(
            SimErrorKind::Watchdog, "fleet", kNeverCycle,
            csprintf("shard %zu failed after %u attempts: %s", f.index,
                     f.attempts, f.error.c_str()));
    }

    // Merge in shard-index order: every reduction below is associative
    // and order-fixed, so the result is identical at any --jobs.
    FleetResult r;
    r.shards = shards;
    r.tenants = totalTenants;
    r.streams = totalStreams;
    r.tenantResults.resize(totalTenants);
    ServiceStats fleetStats(std::vector<std::string>{},
                            ServiceStats::Detail::AggregateOnly,
                            "fleet");
    std::uint64_t occCycles = 0, occSum = 0;
    for (unsigned s = 0; s < shards; ++s) {
        ShardOutcome &out = outcomes[s];
        r.cycles = std::max(r.cycles, out.cycles);
        r.simTicks += out.simTicks;
        r.cyclesSkipped += out.cyclesSkipped;
        r.grants += out.grants;
        r.busGrants += out.busGrants;
        r.busSheds += out.busSheds;
        occCycles += out.occCycles;
        occSum += out.occSum;
        fleetStats.mergeFrom(*out.merged);
        for (std::size_t j = 0; j < out.tenantResults.size(); ++j) {
            r.tenantResults[s + j * shards] =
                std::move(out.tenantResults[j]);
        }
    }
    r.completed = fleetStats.completedTotal();
    r.words = fleetStats.wordsTotal();
    r.shed = fleetStats.shedTotal();
    if (r.completed + r.shed > 0) {
        r.shedRate = static_cast<double>(r.shed) /
                     static_cast<double>(r.completed + r.shed);
    }
    if (r.cycles > 0) {
        r.requestsPerKilocycle = static_cast<double>(r.completed) *
                                 1000.0 /
                                 static_cast<double>(r.cycles);
        r.wordsPerCycle = static_cast<double>(r.words) /
                          static_cast<double>(r.cycles);
    }
    if (occCycles > 0) {
        r.meanInFlight = static_cast<double>(occSum) /
                         static_cast<double>(occCycles);
    }
    r.queueDelay = fleetStats.aggregateQueueDelay();
    r.serviceLatency = fleetStats.aggregateServiceLatency();
    r.totalLatency = fleetStats.aggregateTotalLatency();
    return r;
}

} // namespace pva::fleet
