#include "fleet/daemon.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <thread>
#include <vector>

#include "fleet/scenario.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva::fleet
{

namespace
{

namespace fs = std::filesystem;

volatile std::sig_atomic_t stopFlag = 0;

extern "C" void
daemonSignalHandler(int)
{
    stopFlag = 1;
}

/** Spool entries are processed in lexicographic filename order. */
std::vector<fs::path>
scanSpool(const fs::path &spool)
{
    std::vector<fs::path> files;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(spool, ec)) {
        if (!entry.is_regular_file())
            continue;
        const fs::path &p = entry.path();
        if (p.extension() == ".json")
            files.push_back(p);
    }
    std::sort(files.begin(), files.end());
    return files;
}

/** Rename the ingested file so it is never picked up again; on rename
 *  failure (e.g. read-only spool) fall back to deletion so the daemon
 *  cannot spin on one file. */
void
retireSpoolFile(const fs::path &file, const char *suffix)
{
    fs::path done = file;
    done += suffix;
    std::error_code ec;
    fs::rename(file, done, ec);
    if (ec)
        fs::remove(file, ec);
}

void
writeSidecar(const fs::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

} // anonymous namespace

void
installDaemonSignalHandlers()
{
    std::signal(SIGTERM, daemonSignalHandler);
    std::signal(SIGINT, daemonSignalHandler);
}

void
requestDaemonStop()
{
    stopFlag = 1;
}

bool
daemonStopRequested()
{
    return stopFlag != 0;
}

std::uint64_t
runDaemon(const DaemonConfig &config, std::ostream &out)
{
    if (config.spoolDir.empty()) {
        throw SimError(SimErrorKind::Config, "daemon", kNeverCycle,
                       "--serve requires --spool DIR");
    }
    const fs::path spool(config.spoolDir);
    std::error_code ec;
    fs::create_directories(spool, ec);
    if (!fs::is_directory(spool)) {
        throw SimError(SimErrorKind::Config, "daemon", kNeverCycle,
                       csprintf("spool directory '%s' is not usable",
                                config.spoolDir.c_str()));
    }
    fs::path outDir;
    if (!config.outDir.empty()) {
        outDir = fs::path(config.outDir);
        fs::create_directories(outDir, ec);
        if (!fs::is_directory(outDir)) {
            throw SimError(
                SimErrorKind::Config, "daemon", kNeverCycle,
                csprintf("output directory '%s' is not usable",
                         config.outDir.c_str()));
        }
    }

    stopFlag = 0;
    installDaemonSignalHandlers();

    std::uint64_t executed = 0;
    while (!daemonStopRequested()) {
        const std::vector<fs::path> batch = scanSpool(spool);
        if (batch.empty()) {
            if (config.maxScenarios > 0 &&
                executed >= config.maxScenarios) {
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config.pollMillis));
            continue;
        }
        for (const fs::path &file : batch) {
            // Drain point: finish the scenario in progress, then stop
            // before taking the next one.
            if (daemonStopRequested())
                break;
            try {
                Scenario scenario = loadScenarioFile(file.string());
                scenario.config.jobs = config.jobs;
                scenario.config.retries = config.retries;
                const FleetResult result = runFleet(scenario.config);
                writeScenarioResult(out, scenario, result);
                out.flush();
                if (!outDir.empty()) {
                    const fs::path sidecar =
                        outDir / (file.stem().string() +
                                  ".result.json");
                    std::ofstream rf(sidecar,
                                     std::ios::binary |
                                         std::ios::trunc);
                    writeScenarioResult(rf, scenario, result);
                }
                retireSpoolFile(file, ".done");
                ++executed;
            } catch (const SimError &err) {
                // A bad scenario must not take the service down: park
                // the file as .err with the diagnostic alongside and
                // keep draining the spool.
                retireSpoolFile(file, ".err");
                if (!outDir.empty()) {
                    writeSidecar(outDir / (file.stem().string() +
                                           ".error.txt"),
                                 std::string(err.what()) + "\n");
                }
            }
            if (config.maxScenarios > 0 &&
                executed >= config.maxScenarios) {
                return executed;
            }
        }
    }
    return executed;
}

} // namespace pva::fleet
