/**
 * @file
 * A minimal typed publish/subscribe bus for the fleet layer.
 *
 * The hierarchical arbiter (fleet/fleet_arbiter.hh) has two tiers —
 * per-tenant arbiters and a root arbiter — plus optional statistics
 * sinks, and none of them should hard-couple: a tenant announcing
 * "my best candidate changed" must not know whether a root heap, a
 * telemetry counter, or nothing at all is listening. The MessageBus
 * gives each message type its own Channel of subscribers; publishing
 * to a channel nobody subscribed to is one branch, so hot-path
 * notifications (per-grant, per-head-change) stay cheap.
 *
 * Everything is single-threaded by design: one FleetArbiter and its
 * tenants live on one simulation thread (shard parallelism happens at
 * the SweepExecutor level, one fleet per task), so no locking.
 */

#ifndef PVA_FLEET_MESSAGE_BUS_HH
#define PVA_FLEET_MESSAGE_BUS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pva::fleet
{

/** Subscribers of one message type, invoked in subscription order. */
template <typename Message>
class Channel
{
  public:
    using Handler = std::function<void(const Message &)>;

    void subscribe(Handler handler)
    {
        handlers.push_back(std::move(handler));
    }

    void publish(const Message &msg) const
    {
        for (const Handler &h : handlers)
            h(msg);
    }

    bool hasSubscribers() const { return !handlers.empty(); }

  private:
    std::vector<Handler> handlers;
};

/** Type-indexed registry of channels; one per message type. */
class MessageBus
{
  public:
    template <typename Message>
    Channel<Message> &channel()
    {
        auto it = channels.find(std::type_index(typeid(Message)));
        if (it == channels.end()) {
            it = channels
                     .emplace(std::type_index(typeid(Message)),
                              Entry{new Channel<Message>(),
                                    [](void *p) {
                                        delete static_cast<
                                            Channel<Message> *>(p);
                                    }})
                     .first;
        }
        return *static_cast<Channel<Message> *>(it->second.ptr);
    }

    template <typename Message>
    void subscribe(std::function<void(const Message &)> handler)
    {
        channel<Message>().subscribe(std::move(handler));
    }

    template <typename Message>
    void publish(const Message &msg)
    {
        channel<Message>().publish(msg);
    }

    MessageBus() = default;
    MessageBus(const MessageBus &) = delete;
    MessageBus &operator=(const MessageBus &) = delete;
    ~MessageBus()
    {
        for (auto &[type, entry] : channels)
            entry.deleter(entry.ptr);
    }

  private:
    struct Entry
    {
        void *ptr;
        void (*deleter)(void *);
    };
    std::unordered_map<std::type_index, Entry> channels;
};

/** @name Fleet arbitration messages (fleet/fleet_arbiter.hh) @{ */

/** A tenant's grant candidate may have changed (head enqueue, grant,
 *  or shed); the root tier refreshes its cached entry. */
struct TenantDirty
{
    unsigned tenant;
};

/** A tenant crossed the empty <-> non-empty boundary (any queued
 *  request at all); drives the root round-robin occupancy set. */
struct TenantActivation
{
    unsigned tenant;
    bool nonEmpty;
};

/** One request granted to the memory system (telemetry sinks). */
struct GrantEvent
{
    unsigned tenant;
    unsigned stream; ///< Tenant-local stream index
    std::uint64_t waited; ///< Queueing delay at grant (cycles)
};

/** One request shed (telemetry sinks). */
struct ShedEvent
{
    unsigned tenant;
    unsigned stream;  ///< Tenant-local stream index
    bool deadline;    ///< true = deadline shed, false = overload shed
};

/** A stream retired: exhausted with an empty queue. The root tier
 *  counts these down to detect fleet drain in O(1). */
struct StreamRetired
{
    unsigned tenant;
};

/** @} */

} // namespace pva::fleet

#endif // PVA_FLEET_MESSAGE_BUS_HH
