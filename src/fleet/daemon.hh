/**
 * @file
 * The loadgen daemon: a spool-directory scenario service.
 *
 * `pva_loadgen --serve` turns the one-shot scenario runner into a
 * long-lived service with a deliberately boring ingestion protocol —
 * files, not sockets. Producers drop scenario JSON documents
 * (fleet/scenario.hh) into a spool directory; the daemon polls it,
 * runs each scenario to completion in submission order (lexicographic
 * by filename, so producers control ordering with name prefixes), and
 * streams one result line per scenario:
 *
 *   - to stdout, as the same versioned single-line document the
 *     one-shot `--scenario` path prints (byte-identical by
 *     construction — both go through writeScenarioResult()), and
 *   - when an output directory is configured, to
 *     `<out>/<stem>.result.json` so results survive the pipe.
 *
 * Ingested spool files are renamed to `<name>.done` (or `<name>.err`
 * with the error text alongside when the scenario is invalid or the
 * run fails), so a crashed consumer never re-runs work and a human
 * can audit exactly what the daemon saw.
 *
 * Shutdown is cooperative: SIGTERM/SIGINT set a flag that is checked
 * between scenarios, never mid-run — the daemon drains the scenario it
 * is executing, skips the rest of the spool, and exits 0. That makes
 * `kill` followed by wait a lossless way to stop a fleet sweep.
 */

#ifndef PVA_FLEET_DAEMON_HH
#define PVA_FLEET_DAEMON_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace pva::fleet
{

/** Daemon knobs; all paths are used as given (no expansion). */
struct DaemonConfig
{
    std::string spoolDir;    ///< Required: directory to poll
    std::string outDir;      ///< Optional: per-scenario result files
    std::uint64_t pollMillis = 200; ///< Sleep between empty polls
    /** Exit after this many scenarios (0 = run until signalled).
     *  Bounded runs are what lets CI exercise the full ingest path
     *  without needing to race a signal against a poll loop. */
    std::uint64_t maxScenarios = 0;
    unsigned jobs = 0;       ///< Worker threads per fleet run
    unsigned retries = 1;    ///< Attempt budget per shard
};

/**
 * Run the daemon loop until a stop signal or the scenario budget is
 * exhausted. Results stream to @p out. Scenario-level failures
 * (unparseable file, failed run) are reported per-file and do not stop
 * the daemon; only a missing/uncreatable spool directory throws.
 *
 * @return the number of scenarios executed successfully.
 */
std::uint64_t runDaemon(const DaemonConfig &config, std::ostream &out);

/** Install the SIGTERM/SIGINT drain handler. Called by runDaemon();
 *  exposed so tests can simulate a signal via requestDaemonStop(). */
void installDaemonSignalHandlers();

/** Ask a running daemon loop to drain and exit (signal-safe). */
void requestDaemonStop();

/** True once a stop was requested (for tests; reset by runDaemon). */
bool daemonStopRequested();

} // namespace pva::fleet

#endif // PVA_FLEET_DAEMON_HH
