#include "fleet/fleet_arbiter.hh"

#include <algorithm>
#include <cmath>

namespace pva::fleet
{

namespace
{
constexpr std::uint32_t kNotDeferred = 0xffffffffu;
} // namespace

// ---------------------------------------------------------------------
// TenantArbiter
// ---------------------------------------------------------------------

TenantArbiter::TenantArbiter(unsigned index, unsigned global_base,
                             const ArbiterConfig &config,
                             std::vector<StreamSource> sources_,
                             ServiceStats &stats_, MessageBus &bus_)
    : tenantIndex(index), globalBase(global_base), cfg(config),
      sources(std::move(sources_)), stats(stats_), bus(bus_),
      shedChannel(&bus_.channel<ShedEvent>()), queues(sources.size()),
      admitStamp(sources.size(), 0),
      deferredPos(sources.size(), kNotDeferred),
      hasArrivalEntry(sources.size(), 0), retired(sources.size(), 0)
{
    if (cfg.shed.enabled) {
        shedDeadline.reserve(sources.size());
        shedDepth.reserve(sources.size());
        for (const StreamSource &s : sources) {
            shedDeadline.push_back(s.config().deadline > 0
                                       ? s.config().deadline
                                       : cfg.shed.defaultDeadline);
            const std::size_t cap = s.config().queueCapacity;
            std::size_t depth = cap;
            if (cfg.shed.queueHighWatermark < 1.0) {
                depth = static_cast<std::size_t>(std::ceil(
                    cfg.shed.queueHighWatermark *
                    static_cast<double>(cap)));
                depth = std::max<std::size_t>(1, std::min(depth, cap));
            }
            shedDepth.push_back(depth);
        }
    }
    // Every stream gets one initial admission pass (the flat arbiter's
    // first full scan); quiescent streams retire there and never cost
    // another cycle of work.
    admitWork.reserve(sources.size());
    for (unsigned i = 0; i < sources.size(); ++i)
        admitWork.push_back(i);
}

void
TenantArbiter::applyPokes(SparseMemory &mem) const
{
    for (const StreamSource &s : sources)
        s.applyPokes(mem);
}

void
TenantArbiter::creditDeferredGap(Cycle gap)
{
    for (unsigned local : deferredList)
        stats.onDeferredGap(local, gap);
}

void
TenantArbiter::addDeferred(unsigned local)
{
    if (deferredPos[local] != kNotDeferred)
        return;
    deferredPos[local] = static_cast<std::uint32_t>(deferredList.size());
    deferredList.push_back(local);
}

void
TenantArbiter::removeDeferred(unsigned local)
{
    const std::uint32_t pos = deferredPos[local];
    if (pos == kNotDeferred)
        return;
    const unsigned last = deferredList.back();
    deferredList[pos] = last;
    deferredPos[last] = pos;
    deferredList.pop_back();
    deferredPos[local] = kNotDeferred;
}

void
TenantArbiter::pushArrivalEntry(Cycle arrival, unsigned local)
{
    arrivalHeap.emplace(arrival, local);
    hasArrivalEntry[local] = 1;
}

void
TenantArbiter::checkRetired(unsigned local)
{
    if (retired[local] || !sources[local].exhausted() ||
        !queues[local].empty()) {
        return;
    }
    retired[local] = 1;
    bus.publish(StreamRetired{tenantIndex});
}

void
TenantArbiter::newHead(unsigned local)
{
    const TrafficRequest &req = queues[local].front();
    switch (cfg.policy) {
      case ArbPolicy::Fifo:
        headHeap.emplace(req.arrival, local);
        break;
      case ArbPolicy::Priority:
        // The head heap doubles as the aging (oldest-first) index.
        headHeap.emplace(req.arrival, local);
        prioHeap.emplace(sources[local].config().priority, req.arrival,
                         local);
        break;
      case ArbPolicy::RoundRobin:
        break;
    }
    if (cfg.shed.enabled && shedDeadline[local] > 0)
        expiryHeap.emplace(req.arrival + shedDeadline[local] + 1, local);
    bus.publish(TenantDirty{tenantIndex});
}

void
TenantArbiter::queueBecameEmpty(unsigned local)
{
    if (cfg.policy == ArbPolicy::RoundRobin)
        rrSet.erase(local);
    if (--nonEmptyCount == 0)
        bus.publish(TenantActivation{tenantIndex, false});
    bus.publish(TenantDirty{tenantIndex});
}

void
TenantArbiter::processAdmission(unsigned local, Cycle now, bool &changed)
{
    // At most one admission pass per stream per step, however many
    // worklists name it (completion + due arrival + deferred retry).
    if (admitStamp[local] == now + 1)
        return;
    admitStamp[local] = now + 1;

    StreamSource &src = sources[local];
    std::deque<TrafficRequest> &q = queues[local];
    bool deferred = false;
    while (src.arrivalReady(now)) {
        if (q.size() >= src.config().queueCapacity) {
            deferred = true;
            break;
        }
        if (cfg.shed.enabled && q.size() >= shedDepth[local]) {
            // Overload shed; one drop per stream per step, so the
            // retry rides the next-step worklist, not this one.
            src.emit(now);
            stats.onArrival(local);
            stats.onShedOverload(local);
            src.onComplete();
            if (shedChannel->hasSubscribers())
                shedChannel->publish(
                    ShedEvent{tenantIndex, local, false});
            changed = true;
            nextStepWork.push_back(local);
            break;
        }
        const bool wasEmpty = q.empty();
        q.push_back(src.emit(now));
        stats.onArrival(local);
        stats.onQueueDepth(local, q.size());
        changed = true;
        if (wasEmpty) {
            if (++nonEmptyCount == 1)
                bus.publish(TenantActivation{tenantIndex, true});
            if (cfg.policy == ArbPolicy::RoundRobin)
                rrSet.insert(local);
            newHead(local);
        }
    }
    if (deferred) {
        stats.onDeferred(local);
        addDeferred(local);
    } else {
        removeDeferred(local);
        if (src.config().mode == ArrivalMode::OpenLoop &&
            !src.exhausted()) {
            const Cycle a = src.nextArrivalCycle();
            if (a > now && !hasArrivalEntry[local])
                pushArrivalEntry(a, local);
        }
        checkRetired(local);
    }
}

bool
TenantArbiter::admitStep(Cycle now)
{
    bool changed = false;
    if (!nextStepWork.empty()) {
        admitWork.insert(admitWork.end(), nextStepWork.begin(),
                         nextStepWork.end());
        nextStepWork.clear();
    }
    while (!arrivalHeap.empty() && arrivalHeap.top().first <= now) {
        const unsigned local = arrivalHeap.top().second;
        arrivalHeap.pop();
        hasArrivalEntry[local] = 0;
        admitWork.push_back(local);
    }
    for (std::size_t i = 0; i < admitWork.size(); ++i)
        processAdmission(admitWork[i], now, changed);
    admitWork.clear();
    if (!deferredList.empty()) {
        // Deferred streams retry every step (and take their onDeferred
        // sample there), exactly like the flat arbiter's full scan.
        // Copy first: a successful retry mutates deferredList.
        deferredScratch.assign(deferredList.begin(), deferredList.end());
        for (unsigned local : deferredScratch)
            processAdmission(local, now, changed);
    }
    return changed;
}

bool
TenantArbiter::shedExpired(Cycle now)
{
    bool changed = false;
    while (!expiryHeap.empty() && expiryHeap.top().first <= now) {
        const auto [e, local] = expiryHeap.top();
        expiryHeap.pop();
        std::deque<TrafficRequest> &q = queues[local];
        const Cycle budget = shedDeadline[local];
        // Live iff the current head still carries this expiry (every
        // head change pushed a fresh entry, so no live one is missed).
        if (q.empty() || q.front().arrival + budget + 1 != e)
            continue;
        while (!q.empty() && now - q.front().arrival > budget) {
            q.pop_front();
            stats.onShedDeadline(local);
            sources[local].onComplete();
            if (shedChannel->hasSubscribers())
                shedChannel->publish(ShedEvent{tenantIndex, local, true});
            changed = true;
        }
        // The released window slot can re-admit a closed-loop/trace
        // arrival, but only at the next step (the flat phase order
        // runs admission before deadline shed).
        if (sources[local].config().mode != ArrivalMode::OpenLoop)
            nextStepWork.push_back(local);
        if (q.empty())
            queueBecameEmpty(local);
        else
            newHead(local);
        checkRetired(local);
    }
    return changed;
}

void
TenantArbiter::onComplete(unsigned local, Cycle service_latency,
                          Cycle total_latency, std::uint32_t words,
                          bool is_read)
{
    stats.onComplete(local, service_latency, total_latency, words,
                     is_read);
    sources[local].onComplete();
    // A freed window slot (or released trace barrier) can make a
    // closed-loop/trace stream ready this very step: completions are
    // phase 1, admission phase 2.
    if (sources[local].config().mode != ArrivalMode::OpenLoop)
        admitWork.push_back(local);
}

bool
TenantArbiter::fifoBest(Cycle &arrival, unsigned &local)
{
    while (!headHeap.empty()) {
        const auto [a, l] = headHeap.top();
        if (!queues[l].empty() && queues[l].front().arrival == a) {
            arrival = a;
            local = l;
            return true;
        }
        headHeap.pop();
    }
    return false;
}

bool
TenantArbiter::prioBest(unsigned &prio, Cycle &arrival, unsigned &local)
{
    while (!prioHeap.empty()) {
        const auto [p, a, l] = prioHeap.top();
        if (!queues[l].empty() && queues[l].front().arrival == a) {
            prio = p;
            arrival = a;
            local = l;
            return true;
        }
        prioHeap.pop();
    }
    return false;
}

bool
TenantArbiter::rrFirstAtLeast(unsigned from_local, unsigned &local) const
{
    auto it = rrSet.lower_bound(from_local);
    if (it == rrSet.end())
        return false;
    local = *it;
    return true;
}

bool
TenantArbiter::rrFirst(unsigned &local) const
{
    if (rrSet.empty())
        return false;
    local = *rrSet.begin();
    return true;
}

void
TenantArbiter::popGranted(unsigned local, Cycle now)
{
    std::deque<TrafficRequest> &q = queues[local];
    stats.onSubmit(local, now - q.front().arrival);
    q.pop_front();
    if (q.empty())
        queueBecameEmpty(local);
    else
        newHead(local);
    checkRetired(local);
}

Cycle
TenantArbiter::minArrival() const
{
    // Arrival entries never go stale: at most one per stream, popped
    // exactly when due.
    return arrivalHeap.empty() ? kNeverCycle : arrivalHeap.top().first;
}

Cycle
TenantArbiter::minExpiry()
{
    while (!expiryHeap.empty()) {
        const auto [e, local] = expiryHeap.top();
        const std::deque<TrafficRequest> &q = queues[local];
        if (!q.empty() && q.front().arrival + shedDeadline[local] + 1 == e)
            return e;
        expiryHeap.pop();
    }
    return kNeverCycle;
}

// ---------------------------------------------------------------------
// FleetArbiter
// ---------------------------------------------------------------------

FleetArbiter::FleetArbiter(const ArbiterConfig &config,
                           std::vector<TenantSeat> seats,
                           MessageBus &bus_)
    : cfg(config), bus(bus_)
{
    tenants.reserve(seats.size());
    bases.reserve(seats.size());
    unsigned base = 0;
    for (unsigned t = 0; t < seats.size(); ++t) {
        TenantSeat &seat = seats[t];
        bases.push_back(base);
        const unsigned n = static_cast<unsigned>(seat.sources.size());
        tenants.push_back(std::make_unique<TenantArbiter>(
            t, base, cfg, std::move(seat.sources), *seat.stats, bus));
        base += n;
    }
    totalStreams = base;
    activeStreams = totalStreams;
    if (totalStreams > 0)
        lastGrantedGid = static_cast<unsigned>(totalStreams) - 1;

    const unsigned tn = static_cast<unsigned>(tenants.size());
    dirtyFlag.assign(tn, 0);
    pendingFlag.assign(tn, 0);
    shedPendingFlag.assign(tn, 0);
    arrivalCache.assign(tn, kNeverCycle);
    expiryCache.assign(tn, kNeverCycle);
    pendingTenants.reserve(tn);

    // The root tier learns about tenant state changes the same way a
    // telemetry sink would: by subscribing. (Handlers capture `this`;
    // the bus must not outlive the arbiter's last use.)
    bus.subscribe<TenantDirty>([this](const TenantDirty &m) {
        if (!dirtyFlag[m.tenant]) {
            dirtyFlag[m.tenant] = 1;
            dirtyList.push_back(m.tenant);
        }
    });
    bus.subscribe<TenantActivation>([this](const TenantActivation &m) {
        if (m.nonEmpty)
            nonEmptyTenants.insert(m.tenant);
        else
            nonEmptyTenants.erase(m.tenant);
    });
    bus.subscribe<StreamRetired>(
        [this](const StreamRetired &) { --activeStreams; });

    for (unsigned t = 0; t < tn; ++t)
        markPending(t);
}

FleetArbiter::~FleetArbiter() = default;

void
FleetArbiter::applyPokes(SparseMemory &mem) const
{
    for (const auto &t : tenants)
        t->applyPokes(mem);
}

unsigned
FleetArbiter::tenantOf(unsigned gid) const
{
    // Empty tenants repeat a base value; upper_bound lands past all of
    // them, on the (sole) tenant that actually owns the id range.
    auto it = std::upper_bound(bases.begin(), bases.end(), gid);
    return static_cast<unsigned>((it - bases.begin()) - 1);
}

void
FleetArbiter::markPending(unsigned t)
{
    if (!pendingFlag[t]) {
        pendingFlag[t] = 1;
        pendingTenants.push_back(t);
    }
}

void
FleetArbiter::markShedPending(unsigned t)
{
    if (!shedPendingFlag[t]) {
        shedPendingFlag[t] = 1;
        shedPending.push_back(t);
    }
}

void
FleetArbiter::drainDirty()
{
    for (unsigned t : dirtyList) {
        dirtyFlag[t] = 0;
        refreshCandidate(t);
    }
    dirtyList.clear();
}

void
FleetArbiter::refreshCandidate(unsigned t)
{
    TenantArbiter &ten = *tenants[t];
    switch (cfg.policy) {
      case ArbPolicy::Fifo: {
        Cycle a;
        unsigned l;
        if (ten.fifoBest(a, l))
            rootFifo.emplace(a, bases[t] + l);
        break;
      }
      case ArbPolicy::Priority: {
        Cycle a;
        unsigned l;
        if (ten.fifoBest(a, l))
            rootFifo.emplace(a, bases[t] + l);
        unsigned p;
        if (ten.prioBest(p, a, l))
            rootPrio.emplace(p, a, bases[t] + l);
        break;
      }
      case ArbPolicy::RoundRobin:
        // The nonEmptyTenants set (activation messages) is the only
        // root-side candidate state round-robin needs.
        break;
    }
}

void
FleetArbiter::reprimeArrival(unsigned t)
{
    const Cycle m = tenants[t]->minArrival();
    if (m != kNeverCycle && m < arrivalCache[t]) {
        fleetArrival.emplace(m, t);
        arrivalCache[t] = m;
    }
}

void
FleetArbiter::reprimeExpiry(unsigned t)
{
    if (!cfg.shed.enabled)
        return;
    const Cycle m = tenants[t]->minExpiry();
    if (m != kNeverCycle && m < expiryCache[t]) {
        fleetExpiry.emplace(m, t);
        expiryCache[t] = m;
    }
}

bool
FleetArbiter::pickFifo(unsigned &t, unsigned &local, Cycle &arrival)
{
    while (!rootFifo.empty()) {
        const auto [a, gid] = rootFifo.top();
        const unsigned tt = tenantOf(gid);
        const unsigned ll = gid - bases[tt];
        Cycle a2;
        unsigned l2;
        // A stale entry that happens to match the tenant's current
        // best carries the exact (arrival, global id) pick key, so
        // granting through it is still the flat arbiter's choice.
        if (tenants[tt]->fifoBest(a2, l2) && a2 == a && l2 == ll) {
            t = tt;
            local = ll;
            arrival = a;
            return true;
        }
        rootFifo.pop();
    }
    return false;
}

bool
FleetArbiter::pickPriority(Cycle now, unsigned &t, unsigned &local)
{
    // Starvation guard: the globally oldest head is the aged pick if
    // any head is aged at all (max age = now - min arrival).
    unsigned tf, lf;
    Cycle af;
    if (pickFifo(tf, lf, af) && now - af >= cfg.agingThreshold) {
        t = tf;
        local = lf;
        return true;
    }
    while (!rootPrio.empty()) {
        const auto [p, a, gid] = rootPrio.top();
        const unsigned tt = tenantOf(gid);
        const unsigned ll = gid - bases[tt];
        unsigned p2, l2;
        Cycle a2;
        if (tenants[tt]->prioBest(p2, a2, l2) && p2 == p && a2 == a &&
            l2 == ll) {
            t = tt;
            local = ll;
            return true;
        }
        rootPrio.pop();
    }
    return false;
}

bool
FleetArbiter::pickRoundRobin(unsigned &t, unsigned &local)
{
    if (nonEmptyTenants.empty())
        return false;
    const unsigned cursor =
        (lastGrantedGid + 1) % static_cast<unsigned>(totalStreams);
    const unsigned t0 = tenantOf(cursor);
    // First non-empty stream at or after the cursor within its tenant,
    // then the first non-empty tenant after it, then wrap.
    if (tenants[t0]->rrFirstAtLeast(cursor - bases[t0], local)) {
        t = t0;
        return true;
    }
    auto it = nonEmptyTenants.lower_bound(t0 + 1);
    if (it != nonEmptyTenants.end()) {
        t = *it;
        tenants[t]->rrFirst(local);
        return true;
    }
    it = nonEmptyTenants.begin();
    t = *it;
    tenants[t]->rrFirst(local);
    return true;
}

bool
FleetArbiter::service(MemorySystem &sys, Cycle now)
{
    // --- 0. Credit any skipped span [lastServiceAt+1, now-1]. --------
    // (See traffic/arbiter.cc: the span is only skipped when nothing
    // could change, so the last step's samples held throughout it.)
    if (everServiced && now > lastServiceAt + 1) {
        const Cycle gap = now - lastServiceAt - 1;
        occCycles += gap;
        occSum += static_cast<std::uint64_t>(lastInFlightSample) * gap;
        for (unsigned t : deferredTenants)
            tenants[t]->creditDeferredGap(gap);
    }
    bool changed = false;

    // --- 1. Completions. ---------------------------------------------
    sys.drainCompletionsInto(drainedCompletions);
    for (Completion &c : drainedCompletions) {
        sys.recycleLine(std::move(c.data));
        auto it = inFlight.find(c.tag);
        if (it == inFlight.end())
            continue; // not ours (defensive; tags are arbiter-issued)
        const FleetInFlight &f = it->second;
        tenants[f.tenant]->onComplete(f.local, now - f.submitted,
                                      now - f.arrival, f.words,
                                      f.isRead);
        markPending(f.tenant);
        inFlight.erase(it);
        changed = true;
    }

    // --- 2. Admission, only for tenants with due or queued work. -----
    while (!fleetArrival.empty() && fleetArrival.top().first <= now) {
        const auto [cyc, t] = fleetArrival.top();
        fleetArrival.pop();
        if (arrivalCache[t] == cyc)
            arrivalCache[t] = kNeverCycle;
        markPending(t);
    }
    if (!pendingTenants.empty()) {
        pendingScratch.swap(pendingTenants);
        for (unsigned t : pendingScratch) {
            pendingFlag[t] = 0;
            TenantArbiter &ten = *tenants[t];
            changed |= ten.admitStep(now);
            reprimeArrival(t);
            reprimeExpiry(t);
            if (ten.hasDeferred())
                deferredTenants.insert(t);
            else
                deferredTenants.erase(t);
            if (ten.admissionPending())
                markPending(t);
        }
        pendingScratch.clear();
    }

    // --- 2b. Deadline shed: drop queue heads past their budget. ------
    if (cfg.shed.enabled) {
        while (!fleetExpiry.empty() && fleetExpiry.top().first <= now) {
            const auto [cyc, t] = fleetExpiry.top();
            fleetExpiry.pop();
            if (expiryCache[t] == cyc)
                expiryCache[t] = kNeverCycle;
            markShedPending(t);
        }
        if (!shedPending.empty()) {
            for (unsigned t : shedPending) {
                shedPendingFlag[t] = 0;
                TenantArbiter &ten = *tenants[t];
                changed |= ten.shedExpired(now);
                reprimeExpiry(t);
                if (ten.admissionPending())
                    markPending(t);
            }
            shedPending.clear();
        }
    }

    // --- 3. Grant: submit queue heads until the system refuses. ------
    drainDirty();
    if (totalStreams > 0) {
        Channel<GrantEvent> &grantChan = bus.channel<GrantEvent>();
        while (true) {
            unsigned t = 0, local = 0;
            Cycle arrival = 0;
            bool found = false;
            switch (cfg.policy) {
              case ArbPolicy::Fifo:
                found = pickFifo(t, local, arrival);
                break;
              case ArbPolicy::Priority:
                found = pickPriority(now, t, local);
                break;
              case ArbPolicy::RoundRobin:
                found = pickRoundRobin(t, local);
                break;
            }
            if (!found)
                break;
            TenantArbiter &ten = *tenants[t];
            const TrafficRequest &req = ten.head(local);
            const std::vector<Word> *wd =
                req.cmd.isRead ? nullptr : &req.writeData;
            if (!sys.trySubmit(req.cmd, nextTag, wd))
                break; // transaction resources exhausted this cycle
            inFlight.emplace(nextTag,
                             FleetInFlight{t, local, req.arrival, now,
                                           req.cmd.length,
                                           req.cmd.isRead});
            ++nextTag;
            ++grantCount;
            if (grantChan.hasSubscribers())
                grantChan.publish(
                    GrantEvent{t, local, now - req.arrival});
            ten.popGranted(local, now);
            reprimeExpiry(t);
            lastGrantedGid = bases[t] + local;
            changed = true;
            drainDirty();
        }
    }

    // --- 4. Occupancy sample (end-of-step in-flight count). ----------
    ++occCycles;
    occSum += sys.inFlight();

    changedLastService = changed;
    everServiced = true;
    lastServiceAt = now;
    lastInFlightSample = sys.inFlight();

    return activeStreams == 0 && inFlight.empty();
}

Cycle
FleetArbiter::nextWake(Cycle now)
{
    if (changedLastService)
        return now + 1;
    Cycle wake = kNeverCycle;

    // Validate heap tops against the owning tenant's true minimum so
    // the reported wake is exact (never a stale, earlier entry).
    while (!fleetArrival.empty()) {
        const auto [cyc, t] = fleetArrival.top();
        const Cycle m = tenants[t]->minArrival();
        if (m == cyc && cyc > now) {
            wake = cyc;
            break;
        }
        if (m != kNeverCycle && m <= now)
            return now + 1; // due work pending (defensive)
        fleetArrival.pop();
        if (arrivalCache[t] == cyc)
            arrivalCache[t] = kNeverCycle;
        if (m != kNeverCycle && m < arrivalCache[t]) {
            fleetArrival.emplace(m, t);
            arrivalCache[t] = m;
        }
    }

    if (cfg.shed.enabled) {
        while (!fleetExpiry.empty()) {
            const auto [cyc, t] = fleetExpiry.top();
            if (cyc >= wake)
                break; // cannot improve; prune lazily later
            const Cycle m = tenants[t]->minExpiry();
            if (m == cyc && cyc > now) {
                wake = cyc;
                break;
            }
            if (m != kNeverCycle && m <= now)
                return now + 1; // due shed pending (defensive)
            fleetExpiry.pop();
            if (expiryCache[t] == cyc)
                expiryCache[t] = kNeverCycle;
            if (m != kNeverCycle && m < expiryCache[t]) {
                fleetExpiry.emplace(m, t);
                expiryCache[t] = m;
            }
        }
    }
    return wake;
}

} // namespace pva::fleet
