/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * panic() is for simulator bugs (conditions that should never happen no
 * matter what the user does); fatal() is for user errors that make it
 * impossible to continue; warn()/inform() report status without stopping.
 */

#ifndef PVA_SIM_LOGGING_HH
#define PVA_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pva
{

/** Abort with a message: an internal simulator invariant was violated. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: the user asked for something unsupportable. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace pva

#endif // PVA_SIM_LOGGING_HH
