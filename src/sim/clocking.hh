/**
 * @file
 * Clocking discipline of a Simulation (docs/SIMULATION.md).
 *
 * Exhaustive is the legacy reference stepper: every registered
 * component ticks every cycle. Event is the wake-scheduled fast path:
 * the Simulation asks each component how long it is quiescent
 * (Component::nextWakeAfter), merges in externally requested wakes
 * (Simulation::requestWake), and advances the clock directly to the
 * earliest pending wake — skipping the idle cycles in between. The two
 * modes are cycle-exact equivalents; the differential tests
 * (tests/test_event_clocking.cc) hold them to byte-identical stats.
 */

#ifndef PVA_SIM_CLOCKING_HH
#define PVA_SIM_CLOCKING_HH

#include <string>

namespace pva
{

/** How Simulation::runUntil advances the clock. */
enum class ClockingMode
{
    Exhaustive, ///< Tick every component every cycle (reference)
    Event,      ///< Skip to the earliest pending wake (default)
};

/** Short lowercase identifier ("exhaustive", "event"). */
const char *clockingModeName(ClockingMode mode);

/** Parse an identifier; returns false on unknown names. */
bool parseClockingMode(const std::string &name, ClockingMode &out);

} // namespace pva

#endif // PVA_SIM_CLOCKING_HH
