#include "sim/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace pva::json
{

const Value *
Value::find(const std::string &key) const
{
    if (valueKind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

std::uint64_t
Value::asU64(bool &ok) const
{
    if (valueKind != Kind::Number || text.empty() || text[0] == '-') {
        ok = false;
        return 0;
    }
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size()) {
        ok = false;
        return 0;
    }
    return v;
}

double
Value::asDouble(bool &ok) const
{
    if (valueKind != Kind::Number) {
        ok = false;
        return 0.0;
    }
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size()) {
        ok = false;
        return 0.0;
    }
    return v;
}

/** Recursive-descent parser over the input string (see json.hh). */
class Parser
{
  public:
    Parser(const std::string &input, std::string &error)
        : in(input), err(error)
    {
    }

    bool
    parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos != in.size())
            return fail("trailing content after JSON document");
        return true;
    }

  private:
    /** Nested containers deeper than this indicate corruption, not a
     *  legitimate journal or capsule (their depth is ~4). */
    static constexpr unsigned kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        err = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < in.size() &&
               (in[pos] == ' ' || in[pos] == '\t' || in[pos] == '\n' ||
                in[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (in.compare(pos, len, word) != 0)
            return fail(std::string("invalid literal (expected ") +
                        word + ")");
        pos += len;
        return true;
    }

    bool
    parseValue(Value &out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos >= in.size())
            return fail("unexpected end of input");
        switch (in[pos]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.valueKind = Value::Kind::String;
            return parseString(out.text);
          case 't':
            out.valueKind = Value::Kind::Bool;
            out.boolValue = true;
            return literal("true", 4);
          case 'f':
            out.valueKind = Value::Kind::Bool;
            out.boolValue = false;
            return literal("false", 5);
          case 'n':
            out.valueKind = Value::Kind::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(Value &out, unsigned depth)
    {
        out.valueKind = Value::Kind::Object;
        ++pos; // '{'
        skipWs();
        if (pos < in.size() && in[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos >= in.size() || in[pos] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= in.size() || in[pos] != ':')
                return fail("expected ':' after object key");
            ++pos;
            skipWs();
            Value member;
            if (!parseValue(member, depth + 1))
                return false;
            out.members.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (pos >= in.size())
                return fail("unterminated object");
            if (in[pos] == ',') {
                ++pos;
                continue;
            }
            if (in[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(Value &out, unsigned depth)
    {
        out.valueKind = Value::Kind::Array;
        ++pos; // '['
        skipWs();
        if (pos < in.size() && in[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            Value element;
            if (!parseValue(element, depth + 1))
                return false;
            out.elements.push_back(std::move(element));
            skipWs();
            if (pos >= in.size())
                return fail("unterminated array");
            if (in[pos] == ',') {
                ++pos;
                continue;
            }
            if (in[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos; // opening '"'
        out.clear();
        while (pos < in.size()) {
            char c = in[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                ++pos;
                continue;
            }
            if (pos + 1 >= in.size())
                return fail("unterminated escape");
            char esc = in[pos + 1];
            pos += 2;
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > in.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = in[pos + i];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("invalid \\u escape digit");
                }
                pos += 4;
                // The writers only escape control characters, so
                // basic-plane UTF-8 encoding suffices here.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out +=
                        static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value &out)
    {
        std::size_t start = pos;
        if (pos < in.size() && in[pos] == '-')
            ++pos;
        auto digits = [&] {
            std::size_t before = pos;
            while (pos < in.size() &&
                   std::isdigit(static_cast<unsigned char>(in[pos]))) {
                ++pos;
            }
            return pos > before;
        };
        std::size_t int_start = pos;
        if (!digits())
            return fail("invalid number");
        // JSON forbids leading zeros ("01"); octal-looking literals
        // in a checkpoint are corruption, not a format choice.
        if (in[int_start] == '0' && pos - int_start > 1)
            return fail("invalid number (leading zero)");
        if (pos < in.size() && in[pos] == '.') {
            ++pos;
            if (!digits())
                return fail("invalid number (no fraction digits)");
        }
        if (pos < in.size() && (in[pos] == 'e' || in[pos] == 'E')) {
            ++pos;
            if (pos < in.size() && (in[pos] == '+' || in[pos] == '-'))
                ++pos;
            if (!digits())
                return fail("invalid number (no exponent digits)");
        }
        out.valueKind = Value::Kind::Number;
        out.text = in.substr(start, pos - start);
        return true;
    }

    const std::string &in;
    std::string &err;
    std::size_t pos = 0;
};

bool
parse(const std::string &input, Value &out, std::string &error)
{
    out = Value{};
    error.clear();
    return Parser(input, error).parseDocument(out);
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace pva::json
