#include "sim/simulation.hh"

#include <chrono>

#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace pva
{

void
Simulation::step()
{
    for (Component *c : components)
        c->tick(currentCycle);
    ++currentCycle;
}

Cycle
Simulation::runUntil(const std::function<bool()> &done, Cycle max_cycles,
                     double wall_limit_millis)
{
    using SteadyClock = std::chrono::steady_clock;
    // Check the wall clock only once per stripe of cycles; a
    // steady_clock read per simulated cycle would dominate the run.
    constexpr Cycle kWallCheckStride = 4096;

    Cycle start = currentCycle;
    const auto wall_start = SteadyClock::now();
    while (!done()) {
        if (currentCycle - start >= max_cycles) {
            throw SimError(SimErrorKind::Watchdog, "simulation",
                           currentCycle,
                           csprintf("cycle watchdog expired after %llu "
                                    "cycles",
                                    static_cast<unsigned long long>(
                                        max_cycles)));
        }
        if (wall_limit_millis > 0.0 &&
            (currentCycle - start) % kWallCheckStride == 0) {
            double elapsed_ms =
                std::chrono::duration<double, std::milli>(
                    SteadyClock::now() - wall_start)
                    .count();
            if (elapsed_ms >= wall_limit_millis) {
                throw SimError(
                    SimErrorKind::Watchdog, "simulation", currentCycle,
                    csprintf("wall-clock watchdog expired after %.0f ms "
                             "(%llu cycles simulated)",
                             elapsed_ms,
                             static_cast<unsigned long long>(
                                 currentCycle - start)));
            }
        }
        step();
    }
    return currentCycle;
}

} // namespace pva
