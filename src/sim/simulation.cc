#include "sim/simulation.hh"

#include "sim/logging.hh"

namespace pva
{

void
Simulation::step()
{
    for (Component *c : components)
        c->tick(currentCycle);
    ++currentCycle;
}

Cycle
Simulation::runUntil(const std::function<bool()> &done, Cycle max_cycles)
{
    Cycle start = currentCycle;
    while (!done()) {
        if (currentCycle - start >= max_cycles) {
            panic("simulation watchdog expired after %llu cycles",
                  static_cast<unsigned long long>(max_cycles));
        }
        step();
    }
    return currentCycle;
}

} // namespace pva
