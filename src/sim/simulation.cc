#include "sim/simulation.hh"

#include <algorithm>
#include <chrono>

#include "baselines/cacheline_system.hh"
#include "baselines/gathering_system.hh"
#include "core/pva_unit.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"
#include "sim/trace.hh"

namespace pva
{

namespace
{

using SteadyClock = std::chrono::steady_clock;

/** Accumulates wall time into a total even when runUntil throws. */
class WallTimer
{
  public:
    explicit WallTimer(double &total)
        : total(total), start(SteadyClock::now())
    {}

    ~WallTimer() { total += elapsedMillis(); }

    double
    elapsedMillis() const
    {
        return std::chrono::duration<double, std::milli>(
                   SteadyClock::now() - start)
            .count();
    }

  private:
    double &total;
    SteadyClock::time_point start;
};

} // anonymous namespace

Simulation::Simulation(ClockingMode mode) : mode(mode)
{
    PVA_TRACE_BLOCK(
        if (trace::TraceSession *s = trace::session())
            traceTrackId = s->registerTrack("sim", "clock"););
}

void
Simulation::add(Component *c)
{
    CompKind kind = CompKind::Generic;
    if (dynamic_cast<PvaUnit *>(c))
        kind = CompKind::Pva;
    else if (dynamic_cast<GatheringSystem *>(c))
        kind = CompKind::Gathering;
    else if (dynamic_cast<CacheLineSystem *>(c))
        kind = CompKind::CacheLine;
    components.push_back({c, kind});
}

void
Simulation::tickOne(const TickEntry &e, Cycle now)
{
    // The typed casts dispatch directly: the hot methods are declared
    // final on these classes, so no vtable load is involved.
    switch (e.kind) {
      case CompKind::Pva:
        static_cast<PvaUnit *>(e.c)->tick(now);
        return;
      case CompKind::Gathering:
        static_cast<GatheringSystem *>(e.c)->tick(now);
        return;
      case CompKind::CacheLine:
        static_cast<CacheLineSystem *>(e.c)->tick(now);
        return;
      case CompKind::Generic:
        break;
    }
    e.c->tick(now);
}

void
Simulation::beginOne(const TickEntry &e, Cycle now)
{
    switch (e.kind) {
      case CompKind::Pva:
        static_cast<PvaUnit *>(e.c)->onCycleBegin(now);
        return;
      case CompKind::Gathering:
        static_cast<GatheringSystem *>(e.c)->onCycleBegin(now);
        return;
      case CompKind::CacheLine:
        static_cast<CacheLineSystem *>(e.c)->onCycleBegin(now);
        return;
      case CompKind::Generic:
        break;
    }
    e.c->onCycleBegin(now);
}

Cycle
Simulation::wakeOne(const TickEntry &e, Cycle now)
{
    switch (e.kind) {
      case CompKind::Pva:
        return static_cast<const PvaUnit *>(e.c)->nextWakeAfter(now);
      case CompKind::Gathering:
        return static_cast<const GatheringSystem *>(e.c)
            ->nextWakeAfter(now);
      case CompKind::CacheLine:
        return static_cast<const CacheLineSystem *>(e.c)
            ->nextWakeAfter(now);
      case CompKind::Generic:
        break;
    }
    return e.c->nextWakeAfter(now);
}

void
Simulation::step()
{
    for (const TickEntry &e : components)
        tickOne(e, currentCycle);
    ++currentCycle;
    ++ticksProcessed;
}

void
Simulation::requestWake(Cycle cycle)
{
    // Exhaustive clocking processes every cycle anyway; dropping the
    // request keeps the heap from growing without bound under
    // predicates that re-post their schedule every cycle.
    if (mode == ClockingMode::Exhaustive)
        return;
    if (cycle == kNeverCycle || cycle <= currentCycle)
        return;
    wakeHeap.push(cycle);
}

std::uint64_t
Simulation::cyclesPerSecond() const
{
    if (accumWallMillis <= 0.0)
        return 0;
    double cycles =
        static_cast<double>(ticksProcessed + skippedCycles);
    return static_cast<std::uint64_t>(cycles * 1000.0 /
                                      accumWallMillis);
}

Cycle
Simulation::runUntil(const std::function<bool()> &done, Cycle max_cycles,
                     double wall_limit_millis)
{
    // Check the wall clock only once per stripe of work; a
    // steady_clock read per processed cycle would dominate the run.
    // The stripe is capped both in loop iterations (many same-cycle
    // external wakes) and in advanced cycles (event skips can cross
    // millions of cycles in one iteration).
    constexpr std::uint64_t kWallCheckStride = 4096;

    const Cycle start = currentCycle;
    // Saturating budget edge: event jumps are clamped here so the
    // cycle watchdog observes the same cycle as the exhaustive stepper.
    const Cycle limit = max_cycles > kNeverCycle - start
                            ? kNeverCycle
                            : start + max_cycles;

    WallTimer wall(accumWallMillis);
    // Force a wall check on the first iteration, matching the legacy
    // stepper's (cycle - start) % stride == 0 cadence at cycle 0.
    std::uint64_t iters_since = kWallCheckStride;
    std::uint64_t cycles_since = 0;

    while (true) {
        for (const TickEntry &e : components)
            beginOne(e, currentCycle);
        if (done())
            return currentCycle;
        if (currentCycle - start >= max_cycles) {
            throw SimError(SimErrorKind::Watchdog, "simulation",
                           currentCycle,
                           csprintf("cycle watchdog expired after %llu "
                                    "cycles",
                                    static_cast<unsigned long long>(
                                        max_cycles)));
        }
        if (wall_limit_millis > 0.0 &&
            (iters_since >= kWallCheckStride ||
             cycles_since >= kWallCheckStride)) {
            iters_since = 0;
            cycles_since = 0;
            double elapsed_ms = wall.elapsedMillis();
            if (elapsed_ms >= wall_limit_millis) {
                throw SimError(
                    SimErrorKind::Watchdog, "simulation", currentCycle,
                    csprintf("wall-clock watchdog expired after %.0f ms "
                             "(%llu cycles simulated)",
                             elapsed_ms,
                             static_cast<unsigned long long>(
                                 currentCycle - start)));
            }
        }

        for (const TickEntry &e : components)
            tickOne(e, currentCycle);
        ++ticksProcessed;

        Cycle next = currentCycle + 1;
        if (mode == ClockingMode::Event) {
            next = kNeverCycle;
            // Track the argmin so the trace can attribute the wake;
            // ties keep the first (registration-order) component,
            // matching the old std::min fold exactly.
            const Component *waker = nullptr;
            for (const TickEntry &e : components) {
                Cycle w = wakeOne(e, currentCycle);
                if (w < next) {
                    next = w;
                    waker = e.c;
                }
            }
            while (!wakeHeap.empty() && wakeHeap.top() <= currentCycle)
                wakeHeap.pop();
            if (!wakeHeap.empty() && wakeHeap.top() < next) {
                next = wakeHeap.top();
                waker = nullptr; // external wake (run predicate)
            }
            // No pending wake anywhere: the model is deadlocked. Step
            // one cycle at a time so the watchdogs fire exactly as
            // they would under the exhaustive stepper.
            if (next == kNeverCycle)
                next = currentCycle + 1;
            if (next > limit)
                next = limit;
            if (next <= currentCycle)
                next = currentCycle + 1;
            skippedCycles += next - currentCycle - 1;
            PVA_TRACE_BLOCK(
                if (trace::session() && next > currentCycle + 1) {
                    Cycle skipped = next - currentCycle - 1;
                    PVA_TRACE_INSTANT(traceTrackId, currentCycle,
                                      "skip", "cycles", skipped, "to",
                                      next);
                    if (waker) {
                        PVA_TRACE_INSTANT(waker->traceTrack(), next,
                                          "wake", "skipped", skipped);
                    } else {
                        PVA_TRACE_INSTANT(traceTrackId, next,
                                          "extern_wake", "skipped",
                                          skipped);
                    }
                });
            (void)waker;
        }
        cycles_since += next - currentCycle;
        ++iters_since;
        currentCycle = next;
    }
}

} // namespace pva
