/**
 * @file
 * Cycle-driven simulation driver.
 */

#ifndef PVA_SIM_SIMULATION_HH
#define PVA_SIM_SIMULATION_HH

#include <functional>
#include <vector>

#include "sim/component.hh"
#include "sim/types.hh"

namespace pva
{

/**
 * Owns the clock and ticks registered components in registration order.
 *
 * Components are not owned by the Simulation; the caller keeps them alive
 * for the duration of the run. This mirrors the structural composition of
 * the hardware: the top level wires up subcomponents, then the clock runs.
 */
class Simulation
{
  public:
    Simulation() = default;

    /** Register a component. Order of registration is tick order. */
    void add(Component *c) { components.push_back(c); }

    /** Current cycle (number of completed ticks). */
    Cycle now() const { return currentCycle; }

    /** Advance exactly one cycle. */
    void step();

    /**
     * Run until @p done returns true, checking after every cycle.
     *
     * Two watchdogs guard against a hung model: a cycle budget and an
     * optional wall-clock budget (checked every few thousand cycles to
     * keep the steady_clock reads off the fast path). Either expiring
     * throws SimError(Watchdog) so callers — notably the sweep
     * executor — can report the point and move on instead of aborting
     * the process.
     *
     * @param done              Completion predicate.
     * @param max_cycles        Simulated-cycle watchdog.
     * @param wall_limit_millis Wall-clock watchdog; 0 disables it.
     * @return the cycle count when @p done first held.
     */
    Cycle runUntil(const std::function<bool()> &done,
                   Cycle max_cycles = 100000000,
                   double wall_limit_millis = 0.0);

  private:
    std::vector<Component *> components;
    Cycle currentCycle = 0;
};

} // namespace pva

#endif // PVA_SIM_SIMULATION_HH
