/**
 * @file
 * Cycle-driven simulation driver with two clocking disciplines.
 *
 * ClockingMode::Exhaustive is the reference stepper (tick every
 * component every cycle). ClockingMode::Event keeps the same processed
 * cycles semantically identical but skips spans where every component
 * reports itself quiescent: after ticking cycle C it computes the
 * minimum of each component's nextWakeAfter(C) and any externally
 * requested wakes, and advances the clock directly there. Both modes
 * tick *all* registered components at every processed cycle, in
 * registration order, so intra-cycle signal visibility is untouched;
 * the speedup comes purely from not processing provably idle cycles.
 * See docs/SIMULATION.md for the wake contract and exactness argument.
 */

#ifndef PVA_SIM_SIMULATION_HH
#define PVA_SIM_SIMULATION_HH

#include <functional>
#include <queue>
#include <vector>

#include "sim/clocking.hh"
#include "sim/component.hh"
#include "sim/types.hh"

namespace pva
{

/**
 * Owns the clock and ticks registered components in registration order.
 *
 * Components are not owned by the Simulation; the caller keeps them alive
 * for the duration of the run. This mirrors the structural composition of
 * the hardware: the top level wires up subcomponents, then the clock runs.
 */
class Simulation
{
  public:
    explicit Simulation(ClockingMode mode = ClockingMode::Event);

    /**
     * Register a component. Order of registration is tick order.
     *
     * The concrete type is resolved once here (one dynamic_cast per
     * registration) so the per-cycle tick/wake loops dispatch through
     * a direct call for the known-final system types instead of three
     * virtual calls per component per processed cycle.
     */
    void add(Component *c);

    /** Current cycle (number of completed ticks). */
    Cycle now() const { return currentCycle; }

    /** Clocking discipline this simulation runs under. */
    ClockingMode clocking() const { return mode; }

    /**
     * Schedule an external wake at @p cycle. Used by run predicates
     * (e.g. the traffic arbiter's open-loop arrival schedule) that
     * know about future work no registered component can see yet.
     * Ignored under Exhaustive clocking (every cycle is processed
     * anyway), and for cycles not strictly in the future.
     */
    void requestWake(Cycle cycle);

    /**
     * Advance exactly one cycle, ticking every component (legacy
     * stepper semantics regardless of clocking mode). White-box tests
     * drive components manually through this.
     */
    void step();

    /**
     * Run until @p done returns true, checking at every processed
     * cycle.
     *
     * Two watchdogs guard against a hung model: a cycle budget and an
     * optional wall-clock budget. Either expiring throws
     * SimError(Watchdog) so callers — notably the sweep executor — can
     * report the point and move on instead of aborting the process.
     * Under Event clocking a jump is clamped to the cycle-budget edge,
     * so the watchdog observes the same cycle it would have under the
     * exhaustive stepper; a run with no pending wakes degrades to
     * stepping one cycle at a time until a watchdog fires, exactly as
     * the exhaustive stepper would on the same deadlock.
     *
     * @param done              Completion predicate.
     * @param max_cycles        Simulated-cycle watchdog.
     * @param wall_limit_millis Wall-clock watchdog; 0 disables it.
     * @return the cycle count when @p done first held.
     */
    Cycle runUntil(const std::function<bool()> &done,
                   Cycle max_cycles = 100000000,
                   double wall_limit_millis = 0.0);

    /** @name Clocking performance counters
     * Accumulated across all runUntil calls on this instance.
     * @{ */
    /** Processed cycles (every component ticked). */
    std::uint64_t simTicks() const { return ticksProcessed; }
    /** Cycles skipped by event clocking (0 under Exhaustive). */
    std::uint64_t cyclesSkipped() const { return skippedCycles; }
    /** Wall-clock time spent inside runUntil, in milliseconds. */
    double wallMillis() const { return accumWallMillis; }
    /** Simulated cycles (processed + skipped) per wall-clock second. */
    std::uint64_t cyclesPerSecond() const;
    /** @} */

  private:
    /** Concrete component type, resolved at registration (see add()). */
    enum class CompKind : std::uint8_t
    {
        Generic,   ///< Virtual dispatch (tests, wrappers, adapters)
        Pva,       ///< PvaUnit (hot virtuals are final)
        Gathering, ///< GatheringSystem (final class)
        CacheLine, ///< CacheLineSystem (final class)
    };

    /** One registered component with its pre-resolved dispatch tag. */
    struct TickEntry
    {
        Component *c;
        CompKind kind;
    };

    static void tickOne(const TickEntry &e, Cycle now);
    static void beginOne(const TickEntry &e, Cycle now);
    static Cycle wakeOne(const TickEntry &e, Cycle now);

    std::vector<TickEntry> components;
    Cycle currentCycle = 0;
    ClockingMode mode;

    /** External wakes (min-heap); drained as the clock passes them. */
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<Cycle>>
        wakeHeap;

    std::uint64_t ticksProcessed = 0;
    std::uint64_t skippedCycles = 0;
    double accumWallMillis = 0.0;

    /** Trace track for clock/wake decisions ("sim" process). */
    std::uint32_t traceTrackId = 0;
};

} // namespace pva

#endif // PVA_SIM_SIMULATION_HH
