#include "sim/stats.hh"

#include "sim/logging.hh"

namespace pva
{

Distribution::Distribution(std::uint64_t bucket_width)
    : width(bucket_width == 0 ? 1 : bucket_width)
{
}

void
Distribution::sample(std::uint64_t value)
{
    if (sampleCount == 0) {
        minSeen = value;
        maxSeen = value;
    } else {
        if (value < minSeen)
            minSeen = value;
        if (value > maxSeen)
            maxSeen = value;
    }
    ++sampleCount;
    sum += value;
    std::uint64_t bucket = value / width;
    // Cap the histogram resolution; the tail collapses into one bucket.
    constexpr std::uint64_t max_buckets = 4096;
    if (bucket >= max_buckets)
        bucket = max_buckets - 1;
    if (histogram.size() <= bucket)
        histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
}

void
Distribution::reset()
{
    sampleCount = 0;
    sum = 0;
    minSeen = 0;
    maxSeen = 0;
    histogram.clear();
}

double
Distribution::mean() const
{
    return sampleCount == 0
        ? 0.0
        : static_cast<double>(sum) / static_cast<double>(sampleCount);
}

unsigned
LogHistogram::bucketIndex(std::uint64_t value)
{
    constexpr std::uint64_t linear = 1ULL << kSubBits;
    if (value < linear)
        return static_cast<unsigned>(value);
    unsigned msb = 63;
    while (!(value & (1ULL << msb)))
        --msb;
    unsigned shift = msb - kSubBits;
    unsigned sub =
        static_cast<unsigned>((value >> shift) & (linear - 1));
    return ((msb - kSubBits + 1) << kSubBits) | sub;
}

std::uint64_t
LogHistogram::bucketLowerBound(unsigned index)
{
    constexpr std::uint64_t linear = 1ULL << kSubBits;
    if (index < linear)
        return index;
    unsigned top = index >> kSubBits;
    std::uint64_t sub = index & (linear - 1);
    return (1ULL << (kSubBits + top - 1)) | (sub << (top - 1));
}

void
LogHistogram::sample(std::uint64_t value)
{
    if (counts.empty())
        counts.assign(kBucketCount, 0);
    if (sampleCount == 0) {
        minSeen = value;
        maxSeen = value;
    } else {
        if (value < minSeen)
            minSeen = value;
        if (value > maxSeen)
            maxSeen = value;
    }
    ++sampleCount;
    sum += value;
    ++counts[bucketIndex(value)];
}

void
LogHistogram::reset()
{
    sampleCount = 0;
    sum = 0;
    minSeen = 0;
    maxSeen = 0;
    counts.clear();
}

void
LogHistogram::preallocate()
{
    if (counts.empty())
        counts.assign(kBucketCount, 0);
}

void
LogHistogram::merge(const LogHistogram &other)
{
    if (other.sampleCount == 0)
        return;
    if (sampleCount == 0) {
        minSeen = other.minSeen;
        maxSeen = other.maxSeen;
    } else {
        if (other.minSeen < minSeen)
            minSeen = other.minSeen;
        if (other.maxSeen > maxSeen)
            maxSeen = other.maxSeen;
    }
    sampleCount += other.sampleCount;
    sum += other.sum;
    preallocate();
    for (unsigned i = 0; i < kBucketCount; ++i)
        counts[i] += other.counts[i];
}

double
LogHistogram::mean() const
{
    return sampleCount == 0
        ? 0.0
        : static_cast<double>(sum) / static_cast<double>(sampleCount);
}

std::uint64_t
LogHistogram::percentile(double p) const
{
    if (sampleCount == 0)
        return 0;
    if (p <= 0.0)
        return minSeen;
    // The rank of the sample the percentile asks for (1-based,
    // ceiling), clamped to the population.
    auto rank = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(sampleCount) + 0.9999999);
    if (rank > sampleCount)
        rank = sampleCount;
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBucketCount; ++i) {
        seen += counts[i];
        if (seen >= rank) {
            // Report the bucket's inclusive upper edge (conservative
            // for latency SLOs), clamped to the observed range.
            std::uint64_t hi = i + 1 < kBucketCount
                ? bucketLowerBound(i + 1) - 1
                : maxSeen;
            if (hi > maxSeen)
                hi = maxSeen;
            if (hi < minSeen)
                hi = minSeen;
            return hi;
        }
    }
    return maxSeen;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
LogHistogram::nonZeroBuckets() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (unsigned i = 0; i < counts.size(); ++i) {
        if (counts[i])
            out.emplace_back(bucketLowerBound(i), counts[i]);
    }
    return out;
}

void
StatSet::addScalar(const std::string &name, const Scalar *stat)
{
    if (!scalars.emplace(name, stat).second)
        panic("duplicate scalar stat '%s'", name.c_str());
}

void
StatSet::addDistribution(const std::string &name, const Distribution *stat)
{
    if (!distributions.emplace(name, stat).second)
        panic("duplicate distribution stat '%s'", name.c_str());
}

void
StatSet::addHistogram(const std::string &name, const LogHistogram *stat)
{
    if (!histograms.emplace(name, stat).second)
        panic("duplicate histogram stat '%s'", name.c_str());
}

std::uint64_t
StatSet::scalar(const std::string &name) const
{
    auto it = scalars.find(name);
    if (it == scalars.end())
        panic("no scalar stat named '%s'", name.c_str());
    return it->second->value();
}

bool
StatSet::hasScalar(const std::string &name) const
{
    return scalars.find(name) != scalars.end();
}

const Distribution &
StatSet::distribution(const std::string &name) const
{
    auto it = distributions.find(name);
    if (it == distributions.end())
        panic("no distribution stat named '%s'", name.c_str());
    return *it->second;
}

bool
StatSet::hasDistribution(const std::string &name) const
{
    return distributions.find(name) != distributions.end();
}

const LogHistogram &
StatSet::histogram(const std::string &name) const
{
    auto it = histograms.find(name);
    if (it == histograms.end())
        panic("no histogram stat named '%s'", name.c_str());
    return *it->second;
}

bool
StatSet::hasHistogram(const std::string &name) const
{
    return histograms.find(name) != histograms.end();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : scalars)
        os << name << " " << stat->value() << "\n";
    for (const auto &[name, stat] : distributions) {
        os << name << ".samples " << stat->samples() << "\n";
        os << name << ".min " << stat->minValue() << "\n";
        os << name << ".max " << stat->maxValue() << "\n";
        os << name << ".mean " << stat->mean() << "\n";
    }
    for (const auto &[name, stat] : histograms) {
        os << name << ".samples " << stat->samples() << "\n";
        os << name << ".min " << stat->minValue() << "\n";
        os << name << ".max " << stat->maxValue() << "\n";
        os << name << ".mean " << stat->mean() << "\n";
        os << name << ".p50 " << stat->p50() << "\n";
        os << name << ".p95 " << stat->p95() << "\n";
        os << name << ".p99 " << stat->p99() << "\n";
        os << name << ".p999 " << stat->p999() << "\n";
    }
}

void
StatSet::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &[name, stat] : scalars)
        os << name << "," << stat->value() << "\n";
}

void
StatSet::dumpJson(std::ostream &os) const
{
    os << "{\"scalars\": {";
    bool first = true;
    for (const auto &[name, stat] : scalars) {
        os << (first ? "" : ", ") << '"' << name
           << "\": " << stat->value();
        first = false;
    }
    os << "}, \"distributions\": {";
    first = true;
    for (const auto &[name, stat] : distributions) {
        os << (first ? "" : ", ") << '"' << name << "\": {"
           << "\"samples\": " << stat->samples()
           << ", \"min\": " << stat->minValue()
           << ", \"max\": " << stat->maxValue()
           << ", \"mean\": " << stat->mean()
           << ", \"bucketWidth\": " << stat->bucketWidth()
           << ", \"buckets\": [";
        bool first_bucket = true;
        for (std::uint64_t b : stat->buckets()) {
            os << (first_bucket ? "" : ", ") << b;
            first_bucket = false;
        }
        os << "]}";
        first = false;
    }
    os << "}, \"histograms\": {";
    first = true;
    for (const auto &[name, stat] : histograms) {
        os << (first ? "" : ", ") << '"' << name << "\": {"
           << "\"samples\": " << stat->samples()
           << ", \"min\": " << stat->minValue()
           << ", \"max\": " << stat->maxValue()
           << ", \"mean\": " << stat->mean()
           << ", \"p50\": " << stat->p50()
           << ", \"p95\": " << stat->p95()
           << ", \"p99\": " << stat->p99()
           << ", \"p999\": " << stat->p999() << "}";
        first = false;
    }
    os << "}}\n";
}

} // namespace pva
