#include "sim/stats.hh"

#include "sim/logging.hh"

namespace pva
{

Distribution::Distribution(std::uint64_t bucket_width)
    : width(bucket_width == 0 ? 1 : bucket_width)
{
}

void
Distribution::sample(std::uint64_t value)
{
    if (sampleCount == 0) {
        minSeen = value;
        maxSeen = value;
    } else {
        if (value < minSeen)
            minSeen = value;
        if (value > maxSeen)
            maxSeen = value;
    }
    ++sampleCount;
    sum += value;
    std::uint64_t bucket = value / width;
    // Cap the histogram resolution; the tail collapses into one bucket.
    constexpr std::uint64_t max_buckets = 4096;
    if (bucket >= max_buckets)
        bucket = max_buckets - 1;
    if (histogram.size() <= bucket)
        histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
}

void
Distribution::reset()
{
    sampleCount = 0;
    sum = 0;
    minSeen = 0;
    maxSeen = 0;
    histogram.clear();
}

double
Distribution::mean() const
{
    return sampleCount == 0
        ? 0.0
        : static_cast<double>(sum) / static_cast<double>(sampleCount);
}

void
StatSet::addScalar(const std::string &name, const Scalar *stat)
{
    if (!scalars.emplace(name, stat).second)
        panic("duplicate scalar stat '%s'", name.c_str());
}

void
StatSet::addDistribution(const std::string &name, const Distribution *stat)
{
    if (!distributions.emplace(name, stat).second)
        panic("duplicate distribution stat '%s'", name.c_str());
}

std::uint64_t
StatSet::scalar(const std::string &name) const
{
    auto it = scalars.find(name);
    if (it == scalars.end())
        panic("no scalar stat named '%s'", name.c_str());
    return it->second->value();
}

bool
StatSet::hasScalar(const std::string &name) const
{
    return scalars.find(name) != scalars.end();
}

const Distribution &
StatSet::distribution(const std::string &name) const
{
    auto it = distributions.find(name);
    if (it == distributions.end())
        panic("no distribution stat named '%s'", name.c_str());
    return *it->second;
}

bool
StatSet::hasDistribution(const std::string &name) const
{
    return distributions.find(name) != distributions.end();
}

void
StatSet::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : scalars)
        os << name << " " << stat->value() << "\n";
    for (const auto &[name, stat] : distributions) {
        os << name << ".samples " << stat->samples() << "\n";
        os << name << ".min " << stat->minValue() << "\n";
        os << name << ".max " << stat->maxValue() << "\n";
        os << name << ".mean " << stat->mean() << "\n";
    }
}

void
StatSet::dumpCsv(std::ostream &os) const
{
    os << "stat,value\n";
    for (const auto &[name, stat] : scalars)
        os << name << "," << stat->value() << "\n";
}

void
StatSet::dumpJson(std::ostream &os) const
{
    os << "{\"scalars\": {";
    bool first = true;
    for (const auto &[name, stat] : scalars) {
        os << (first ? "" : ", ") << '"' << name
           << "\": " << stat->value();
        first = false;
    }
    os << "}, \"distributions\": {";
    first = true;
    for (const auto &[name, stat] : distributions) {
        os << (first ? "" : ", ") << '"' << name << "\": {"
           << "\"samples\": " << stat->samples()
           << ", \"min\": " << stat->minValue()
           << ", \"max\": " << stat->maxValue()
           << ", \"mean\": " << stat->mean()
           << ", \"bucketWidth\": " << stat->bucketWidth()
           << ", \"buckets\": [";
        bool first_bucket = true;
        for (std::uint64_t b : stat->buckets()) {
            os << (first_bucket ? "" : ", ") << b;
            first_bucket = false;
        }
        os << "]}";
        first = false;
    }
    os << "}}\n";
}

} // namespace pva
