/**
 * @file
 * Deterministic fault injection for robustness evaluation.
 *
 * A FaultPlan describes which asynchronous disturbances to inject and
 * at what per-event rates; it travels inside SystemConfig so every
 * harness (tools, benches, the sweep executor) can enable it uniformly.
 * Injection decisions are drawn from splitmix64 streams (sim/random.hh)
 * derived from the plan seed and a per-component stream id, so a run is
 * bit-reproducible for a given seed regardless of wall-clock timing or
 * sweep worker count.
 *
 * The four fault classes model real SDRAM-system disturbances:
 *
 *  - refresh stalls: a device spontaneously refreshes (all internal
 *    banks precharge, device busy for tRFC) outside the tREFI schedule;
 *  - bank-controller stalls: a BC's scheduler loses a cycle (arbitration
 *    or clock-domain delay), delaying its responses;
 *  - dropped transfers: a read word returning from the device is lost
 *    before reaching the staging unit (the BC must detect the hole and
 *    retry the missing sub-vector elements);
 *  - corrupted FirstHit results: the FirstHit predictor yields a wrong
 *    sub-vector, which must be caught by the TimingChecker's shadow
 *    gather model rather than silently producing a wrong line.
 */

#ifndef PVA_SIM_FAULT_HH
#define PVA_SIM_FAULT_HH

#include <cstdint>

#include "sim/random.hh"

namespace pva
{

/** What to inject, and how often. All rates are probabilities in
 *  [0, 1] per opportunity (cycle or event; see each field). */
struct FaultPlan
{
    /** Base seed; every component derives its own stream from it. */
    std::uint64_t seed = 0x5eed;
    /** Per device-cycle probability of a spontaneous refresh stall. */
    double refreshStallRate = 0.0;
    /** Per BC-cycle probability of the scheduler losing the cycle. */
    double bcStallRate = 0.0;
    /** Per read-return probability the word is dropped before staging. */
    double dropTransferRate = 0.0;
    /** Per sub-vector probability the FirstHit result is corrupted. */
    double corruptFirstHitRate = 0.0;

    /** Any injection enabled at all? */
    bool
    enabled() const
    {
        return refreshStallRate > 0.0 || bcStallRate > 0.0 ||
               dropTransferRate > 0.0 || corruptFirstHitRate > 0.0;
    }
};

/**
 * One component's private injection decision stream.
 *
 * Each injecting component owns one FaultInjector constructed with the
 * shared plan and a unique stream id; decisions are then drawn in the
 * component's own deterministic simulation order.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan_, std::uint64_t stream)
        : plan(plan_),
          rng(plan_.seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)))
    {
    }

    bool refreshStall() { return roll(plan.refreshStallRate); }
    bool bcStall() { return roll(plan.bcStallRate); }
    bool dropTransfer() { return roll(plan.dropTransferRate); }
    bool corruptFirstHit() { return roll(plan.corruptFirstHitRate); }

  private:
    bool
    roll(double rate)
    {
        if (rate <= 0.0)
            return false;
        if (rate >= 1.0) {
            rng.next(); // keep the stream position rate-independent
            return true;
        }
        // Compare against rate * 2^64, saturating to avoid the
        // undefined float-to-integer conversion at the top of range.
        double scaled = rate * 18446744073709551616.0; // 2^64
        std::uint64_t threshold =
            scaled >= 18446744073709549568.0 // largest double < 2^64
                ? ~0ULL
                : static_cast<std::uint64_t>(scaled);
        return rng.next() < threshold;
    }

    FaultPlan plan;
    Random rng;
};

} // namespace pva

#endif // PVA_SIM_FAULT_HH
