/**
 * @file
 * Base class for clocked hardware components.
 *
 * The simulator is cycle-driven: at every *processed* cycle the
 * Simulation calls tick() on each registered component in registration
 * order. Registration order therefore defines intra-cycle signal
 * visibility (a component ticked earlier exposes this cycle's outputs
 * to components ticked later), which is how we model the combinational
 * paths of the paper's design — e.g. the front end drives the vector
 * bus before the bank controllers sample it in the same cycle.
 *
 * Under ClockingMode::Event (sim/clocking.hh) not every cycle is
 * processed: after ticking a cycle, the Simulation polls each
 * component's nextWakeAfter() and jumps the clock directly to the
 * earliest wake. The wake contract a component must honor:
 *
 *  - nextWakeAfter(now) returns the earliest future cycle at which the
 *    component could change observable state, given no external input.
 *    Returning kNeverCycle means "quiescent until someone drives me".
 *    Waking *early* is always safe (an extra tick must be a no-op);
 *    waking *late* breaks cycle-exactness.
 *  - Any tick that changed observable state must be followed by a wake
 *    at now + 1 (the standard implementation returns now + 1 whenever
 *    the last tick did any work), so downstream components sample the
 *    change on the next cycle exactly as the exhaustive stepper would.
 *  - The default (now + 1) keeps unconverted components on the legacy
 *    every-cycle schedule, which is always correct, just slower.
 *
 * onCycleBegin() runs for every component at the top of each processed
 * cycle, before the run predicate and before any tick. Components use
 * it to settle bookkeeping that the exhaustive stepper got for free
 * from being ticked every cycle (e.g. crediting per-cycle occupancy
 * stats for the cycles skipped since the last tick).
 */

#ifndef PVA_SIM_COMPONENT_HH
#define PVA_SIM_COMPONENT_HH

#include <string>
#include <utility>

#include "sim/types.hh"

namespace pva
{

/**
 * A clocked component. Derived classes implement tick(), which is called
 * once per processed simulated cycle.
 */
class Component
{
  public:
    explicit Component(std::string name) : componentName(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance this component by one clock cycle. */
    virtual void tick(Cycle cycle) = 0;

    /**
     * Earliest future cycle (> @p now) at which this component could
     * change observable state without external input; kNeverCycle if
     * fully quiescent. Called after tick(@p now) under event clocking.
     * Conservative (early) answers are safe; late answers are bugs.
     */
    virtual Cycle nextWakeAfter(Cycle now) const { return now + 1; }

    /**
     * Hook run at the top of every processed cycle @p now, before the
     * run predicate and before any component ticks. State must be
     * exactly as of the end of the previous processed cycle when this
     * is called; implementations may account for skipped cycles here.
     */
    virtual void onCycleBegin(Cycle now) { (void)now; }

    /** Instance name, used in stats and diagnostics. */
    const std::string &name() const { return componentName; }

    /**
     * @name Trace track handle
     * The owning system assigns each component a trace track id at
     * construction (sim/trace.hh); 0 means untraced — either tracing
     * is off, no session is installed, or the component was excluded
     * by --trace-filter. Plain data, present in all builds, so wiring
     * code needs no conditional compilation.
     * @{
     */
    void setTraceTrack(std::uint32_t id) { traceTrackId = id; }
    std::uint32_t traceTrack() const { return traceTrackId; }
    /** @} */

  private:
    std::string componentName;
    std::uint32_t traceTrackId = 0;
};

} // namespace pva

#endif // PVA_SIM_COMPONENT_HH
