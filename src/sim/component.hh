/**
 * @file
 * Base class for clocked hardware components.
 *
 * The simulator is cycle-driven: every cycle the Simulation calls tick()
 * on each registered component in registration order. Registration order
 * therefore defines intra-cycle signal visibility (a component ticked
 * earlier exposes this cycle's outputs to components ticked later), which
 * is how we model the combinational paths of the paper's design — e.g.
 * the front end drives the vector bus before the bank controllers sample
 * it in the same cycle.
 */

#ifndef PVA_SIM_COMPONENT_HH
#define PVA_SIM_COMPONENT_HH

#include <string>
#include <utility>

#include "sim/types.hh"

namespace pva
{

/**
 * A clocked component. Derived classes implement tick(), which is called
 * once per simulated cycle.
 */
class Component
{
  public:
    explicit Component(std::string name) : componentName(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance this component by one clock cycle. */
    virtual void tick(Cycle cycle) = 0;

    /** Instance name, used in stats and diagnostics. */
    const std::string &name() const { return componentName; }

  private:
    std::string componentName;
};

} // namespace pva

#endif // PVA_SIM_COMPONENT_HH
