#include "sim/memory.hh"

namespace pva
{

Word
SparseMemory::read(WordAddr addr) const
{
    WordAddr page_no = addr / kPageWords;
    unsigned offset = static_cast<unsigned>(addr % kPageWords);
    auto it = pages.find(page_no);
    if (it == pages.end() || !it->second->written[offset])
        return backgroundPattern(addr);
    return it->second->data[offset];
}

void
SparseMemory::write(WordAddr addr, Word value)
{
    WordAddr page_no = addr / kPageWords;
    unsigned offset = static_cast<unsigned>(addr % kPageWords);
    auto &page = pages[page_no];
    if (!page) {
        page = std::make_unique<Page>();
        page->written.fill(false);
    }
    page->data[offset] = value;
    page->written[offset] = true;
}

} // namespace pva
