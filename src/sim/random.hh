/**
 * @file
 * Deterministic pseudo-random number generation for tests and workloads.
 *
 * Uses the splitmix64 generator so results are reproducible across
 * platforms and standard-library versions.
 */

#ifndef PVA_SIM_RANDOM_HH
#define PVA_SIM_RANDOM_HH

#include <cstdint>

namespace pva
{

/** splitmix64: tiny, fast, and high quality enough for workload data. */
class Random
{
  public:
    explicit Random(std::uint64_t seed) : state(seed) {}

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound) (bound > 0). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

  private:
    std::uint64_t state;
};

} // namespace pva

#endif // PVA_SIM_RANDOM_HH
