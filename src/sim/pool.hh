/**
 * @file
 * Capacity-preserving pooled containers for the simulator hot path.
 *
 * The busy-system tick path (docs/PERFORMANCE.md) is required to
 * perform zero heap allocations after warmup: every queue the bank
 * controllers and the PVA front end touch per cycle must reuse its
 * storage instead of cycling it through the allocator the way
 * std::deque block churn or std::vector move-from does.
 *
 * RingDeque<T> is the building block: a circular buffer over a flat
 * slot array whose elements are constructed once and then *reused in
 * place*. pushBack() hands back a reference to the next slot (whose
 * heap members — std::vector fields and the like — keep their
 * capacity from earlier occupancies); popFront() and eraseAt() retire
 * slots without destroying them. Erasure shuffles elements with
 * std::swap rather than move-assignment, so vector capacities rotate
 * around the ring instead of being freed. Capacity grows by powers of
 * two and never shrinks; a workload's steady state therefore touches
 * the allocator only until its high-water mark is reached.
 */

#ifndef PVA_SIM_POOL_HH
#define PVA_SIM_POOL_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace pva
{

/** Bounded-growth circular deque with slot reuse (see file comment). */
template <typename T>
class RingDeque
{
  public:
    explicit RingDeque(std::size_t capacity = 0) { reserve(capacity); }

    /** Grow the slot array to at least @p capacity (never shrinks). */
    void
    reserve(std::size_t capacity)
    {
        if (capacity > slots.size())
            grow(capacity);
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }
    std::size_t capacity() const { return slots.size(); }

    T &front() { return slots[head]; }
    const T &front() const { return slots[head]; }

    /** Element at logical position @p i (0 = oldest). */
    T &operator[](std::size_t i) { return slots[wrap(head + i)]; }
    const T &
    operator[](std::size_t i) const
    {
        return slots[wrap(head + i)];
    }

    /**
     * Append one element and return the reused slot. The caller must
     * overwrite every field it relies on: the slot holds whatever a
     * previous occupant left behind (by design — its heap members keep
     * their capacity).
     */
    T &
    pushBack()
    {
        if (count == slots.size())
            grow(slots.size() ? slots.size() * 2 : 4);
        T &slot = slots[wrap(head + count)];
        ++count;
        return slot;
    }

    /** Retire the oldest element. Its slot (and any heap capacity its
     *  members hold) stays in the ring for reuse. */
    void
    popFront()
    {
        head = wrap(head + 1);
        --count;
    }

    /** Retire the newest element (undo a pushBack); the slot stays. */
    void popBack() { --count; }

    /**
     * Remove the element at logical position @p i by swapping it step
     * by step to the back, then shrinking. O(size) swaps, but the ring
     * is small (FIFO depth, vector-context window) and swapping — not
     * moving — keeps every slot's heap capacity alive.
     */
    void
    eraseAt(std::size_t i)
    {
        for (std::size_t j = i; j + 1 < count; ++j)
            std::swap((*this)[j], (*this)[j + 1]);
        --count;
    }

    /** Drop all elements; slots and their capacities stay. */
    void clear() { count = 0; head = 0; }

  private:
    std::size_t
    wrap(std::size_t i) const
    {
        return i & (slots.size() - 1);
    }

    /** Re-seat the live elements into a larger power-of-two array.
     *  Growth moves elements (capacities travel with them); retired
     *  slots' capacity is dropped, which is fine — growth only happens
     *  on the way up to the steady-state high-water mark. */
    void
    grow(std::size_t at_least)
    {
        std::size_t cap = 4;
        while (cap < at_least)
            cap *= 2;
        std::vector<T> bigger(cap);
        for (std::size_t i = 0; i < count; ++i)
            std::swap(bigger[i], (*this)[i]);
        slots.swap(bigger);
        head = 0;
    }

    std::vector<T> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace pva

#endif // PVA_SIM_POOL_HH
