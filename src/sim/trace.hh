/**
 * @file
 * Cycle-level event tracing behind a compile-time gate.
 *
 * Build with -DPVA_TRACE=ON (CMake option) to compile the
 * instrumentation in; the default build defines none of the trace
 * machinery and every PVA_TRACE_* macro expands to nothing, so the
 * instrumented hot paths carry zero cost — no branch, no load, no
 * symbol (the CI symbol guard greps the default binaries for
 * pva::trace:: and fails if anything leaks through).
 *
 * With tracing compiled in, a tool opens a TraceSession, installs it
 * as the process-wide current session, runs the simulation, and
 * exports the buffer as Chrome trace JSON ("Trace Event Format") that
 * loads directly in Perfetto or chrome://tracing. The mapping:
 *
 *  - one trace "process" (pid) per MemorySystem (and one each for the
 *    simulation clock and the traffic arbiter),
 *  - one "track" (tid) per component: frontend, bus, per-transaction
 *    slots, bank controllers, devices,
 *  - duration events (B/E) for spans (a transaction's lifetime, a CAS
 *    data burst, a refresh), instant events (i) for point actions
 *    (activate, precharge, wake decisions), and counter events (C)
 *    for occupancies (FIFO depth, VCs in use).
 *
 * Timestamps are simulated cycles written as integer microseconds
 * (1 us == 1 cycle); Perfetto's timeline therefore reads directly in
 * cycles. See docs/OBSERVABILITY.md for the full schema and a
 * walkthrough.
 *
 * Hot-path contract (the "allocation-free" bound): record() is
 * lock-free — one relaxed fetch_add and a POD store into a buffer
 * pre-reserved at session construction. Event and argument names must
 * be string literals (interned const char*); no std::string is ever
 * constructed per event. When the buffer fills, later events are
 * counted as dropped but the run is otherwise unaffected
 * (keep-earliest semantics, reported in the export and the tool
 * summary).
 */

#ifndef PVA_SIM_TRACE_HH
#define PVA_SIM_TRACE_HH

#include <cstdint>

#include "sim/types.hh"

#if PVA_TRACE_ENABLED

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pva::trace
{

/** Tracing compiled in? Mirrors the PVA_TRACE CMake option. */
constexpr bool enabled() { return true; }

/** Chrome trace event phases we emit. */
enum class Phase : char
{
    Begin = 'B',   ///< Duration begin
    End = 'E',     ///< Duration end
    Instant = 'i', ///< Point event (thread scope)
    Counter = 'C', ///< Counter sample
};

/**
 * One recorded event. POD: names are interned string literals, never
 * owned. 'track' indexes the session's track registry (1-based; 0 is
 * the "disabled" sentinel and never recorded).
 */
struct Event
{
    Cycle ts = 0;
    std::uint32_t track = 0;
    Phase phase = Phase::Instant;
    const char *name = nullptr;
    const char *key1 = nullptr;
    std::uint64_t val1 = 0;
    const char *key2 = nullptr;
    std::uint64_t val2 = 0;
};

/** Session knobs, set once before the run. */
struct TraceConfig
{
    /** Buffer capacity in events; events past it are dropped. */
    std::size_t bufferCapacity = 1u << 19;
    /**
     * Component glob(s), comma separated, matched against both the
     * bare track name ("bc3") and "process/track" ("pva/bc3"). Tracks
     * that match nothing are disabled at registration, so filtered
     * components pay only the session-pointer check. Empty = trace
     * everything.
     */
    std::string filter;
    /**
     * Sampling-profiler period: every Nth record() call is tallied
     * into a per-(track, event) histogram (see profileReport()), so
     * the hot-path cost of profiling is one relaxed counter increment
     * per event plus rare sampled updates. 0 disables profiling.
     * Sampling keeps running after the event buffer fills, so the
     * profile covers the whole run even when the trace does not.
     */
    std::uint32_t profilePeriod = 0;
};

/** One row of the sampling profile (see TraceSession::profileReport). */
struct ProfileEntry
{
    std::string process;
    std::string track;
    const char *name = nullptr;
    std::uint64_t samples = 0;
    /** samples * period: the statistically expected event count. */
    std::uint64_t estimatedEvents = 0;
};

/**
 * A bounded in-memory event sink plus the track registry and the
 * Chrome-trace exporter. Thread-safe for record() (parallel sweep
 * workers share one session); registerTrack() takes a mutex and is
 * meant for construction time only.
 */
class TraceSession
{
  public:
    explicit TraceSession(TraceConfig config = {});

    /**
     * Register (or look up) the track @p track under process
     * @p process. Returns the 1-based track id to pass to record(),
     * or 0 if the session filter excludes this track.
     */
    std::uint32_t registerTrack(const std::string &process,
                                const std::string &track);

    /**
     * Record one event. Lock-free; drops (and counts) the event when
     * the buffer is full. @p name, @p key1 and @p key2 must be string
     * literals. A zero @p track is ignored (disabled/filtered).
     */
    void
    record(std::uint32_t track, Phase phase, Cycle ts, const char *name,
           const char *key1 = nullptr, std::uint64_t val1 = 0,
           const char *key2 = nullptr, std::uint64_t val2 = 0)
    {
        if (track == 0)
            return;
        if (profPeriod != 0 &&
            profClock.fetch_add(1, std::memory_order_relaxed) %
                    profPeriod ==
                0)
            profileSample(track, name);
        std::size_t slot =
            head.fetch_add(1, std::memory_order_relaxed);
        if (slot >= buffer.size())
            return; // counted as dropped via head overshoot
        Event &e = buffer[slot];
        e.ts = ts;
        e.track = track;
        e.phase = phase;
        e.name = name;
        e.key1 = key1;
        e.val1 = val1;
        e.key2 = key2;
        e.val2 = val2;
    }

    /** Events retained in the buffer. */
    std::uint64_t recorded() const;
    /** Events dropped because the buffer was full. */
    std::uint64_t dropped() const;
    /** Registered (including filtered-out) track count. */
    std::size_t trackCount() const;

    /** Copy of the retained events, in record order (for tests). */
    std::vector<Event> snapshot() const;

    /** @name Sampling profiler (TraceConfig::profilePeriod)
     * @{ */
    /** Sampling period in effect (0 = profiling off). */
    std::uint32_t profilePeriod() const { return profPeriod; }
    /** Samples taken so far. */
    std::uint64_t profileSamples() const;
    /** Per-(track, event) sample tallies, most-sampled first. */
    std::vector<ProfileEntry> profileReport() const;
    /** @} */

    /**
     * Write the whole session as Chrome trace JSON: a traceEvents
     * array (sorted by timestamp, stable within a cycle) plus
     * process_name/thread_name metadata and a top-level "pvaTrace"
     * object carrying recorded/dropped accounting.
     */
    void exportChromeJson(std::ostream &os) const;

  private:
    struct TrackMeta
    {
        std::string process;
        std::string track;
        std::uint32_t pid = 0; ///< 1-based process index
    };

    /** Tally one sampled event (rare: every profPeriod-th record). */
    void profileSample(std::uint32_t track, const char *name);

    TraceConfig cfg;
    std::vector<Event> buffer;
    std::atomic<std::uint64_t> head{0};

    std::uint32_t profPeriod = 0;
    std::atomic<std::uint64_t> profClock{0};
    mutable std::mutex profileMutex;
    /** (track id, interned event name) -> sample count. */
    std::map<std::pair<std::uint32_t, const char *>, std::uint64_t>
        profileCounts;

    mutable std::mutex registryMutex;
    std::vector<TrackMeta> tracks;      ///< index = id - 1
    std::vector<std::string> processes; ///< index = pid - 1
};

/** Current process-wide session; null when tracing is inactive. */
TraceSession *session();

/** Install (or clear, with nullptr) the current session. */
void setSession(TraceSession *s);

/**
 * Match @p text against a glob @p pattern ('*' any run, '?' any one
 * char). Exposed for tests.
 */
bool globMatch(const char *pattern, const char *text);

} // namespace pva::trace

/**
 * @name Instrumentation macros
 * All take effect only when a session is installed; each call is one
 * predictable pointer load + branch otherwise. Name/key arguments must
 * be string literals.
 * @{
 */

/** Run @p ... only in traced builds (registration, cached counters). */
#define PVA_TRACE_BLOCK(...)                                          \
    do {                                                              \
        __VA_ARGS__                                                   \
    } while (0)

#define PVA_TRACE_EMIT(track, phase, ts, ...)                         \
    do {                                                              \
        if (::pva::trace::TraceSession *pvaTraceS_ =                  \
                ::pva::trace::session())                              \
            pvaTraceS_->record((track), (phase), (ts), __VA_ARGS__);  \
    } while (0)

/** Duration begin. Optional trailing key/value pairs. */
#define PVA_TRACE_BEGIN(track, ts, ...)                               \
    PVA_TRACE_EMIT(track, ::pva::trace::Phase::Begin, ts, __VA_ARGS__)
/** Duration end; name must match the open PVA_TRACE_BEGIN. */
#define PVA_TRACE_END(track, ts, ...)                                 \
    PVA_TRACE_EMIT(track, ::pva::trace::Phase::End, ts, __VA_ARGS__)
/** Instant (point) event. Optional trailing key/value pairs. */
#define PVA_TRACE_INSTANT(track, ts, ...)                             \
    PVA_TRACE_EMIT(track, ::pva::trace::Phase::Instant, ts, __VA_ARGS__)
/** Counter sample: series @p name takes @p value at @p ts. */
#define PVA_TRACE_COUNTER(track, ts, name, value)                     \
    PVA_TRACE_EMIT(track, ::pva::trace::Phase::Counter, ts, name,     \
                   "value", (value))
/** @} */

#else // !PVA_TRACE_ENABLED

namespace pva::trace
{

/** Tracing compiled out; every macro below expands to nothing. */
constexpr bool enabled() { return false; }

} // namespace pva::trace

#define PVA_TRACE_BLOCK(...)                                          \
    do {                                                              \
    } while (0)
#define PVA_TRACE_EMIT(...)                                           \
    do {                                                              \
    } while (0)
#define PVA_TRACE_BEGIN(...)                                          \
    do {                                                              \
    } while (0)
#define PVA_TRACE_END(...)                                            \
    do {                                                              \
    } while (0)
#define PVA_TRACE_INSTANT(...)                                        \
    do {                                                              \
    } while (0)
#define PVA_TRACE_COUNTER(...)                                        \
    do {                                                              \
    } while (0)

#endif // PVA_TRACE_ENABLED

#endif // PVA_SIM_TRACE_HH
