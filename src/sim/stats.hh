/**
 * @file
 * Minimal gem5-flavoured statistics package.
 *
 * Components own Scalar and Distribution stats registered with a StatSet;
 * harnesses dump the set as text or CSV at the end of a run.
 */

#ifndef PVA_SIM_STATS_HH
#define PVA_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace pva
{

/** A named monotonically accumulated counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(std::uint64_t n) { count += n; return *this; }
    void reset() { count = 0; }

    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/** A sampled distribution tracking min/max/mean and a coarse histogram. */
class Distribution
{
  public:
    /** @param bucket_width width of each histogram bucket (>= 1). */
    explicit Distribution(std::uint64_t bucket_width = 1);

    void sample(std::uint64_t value);
    void reset();

    std::uint64_t samples() const { return sampleCount; }
    std::uint64_t minValue() const { return minSeen; }
    std::uint64_t maxValue() const { return maxSeen; }
    double mean() const;

    /** Histogram buckets: bucket i counts values in
     *  [i*width, (i+1)*width). */
    const std::vector<std::uint64_t> &buckets() const { return histogram; }
    std::uint64_t bucketWidth() const { return width; }

  private:
    std::uint64_t width;
    std::uint64_t sampleCount = 0;
    std::uint64_t sum = 0;
    std::uint64_t minSeen = 0;
    std::uint64_t maxSeen = 0;
    std::vector<std::uint64_t> histogram;
};

/**
 * A registry of named statistics belonging to one simulated system.
 *
 * Stats objects are owned by their components; the StatSet stores
 * non-owning pointers plus dotted names (e.g. "pva.bc3.rowHits").
 */
class StatSet
{
  public:
    void addScalar(const std::string &name, const Scalar *stat);
    void addDistribution(const std::string &name, const Distribution *stat);

    /** Look up a scalar's current value; panics if not registered. */
    std::uint64_t scalar(const std::string &name) const;

    /** True iff a scalar with this name is registered. */
    bool hasScalar(const std::string &name) const;

    /** Look up a distribution; panics if not registered. */
    const Distribution &distribution(const std::string &name) const;

    /** True iff a distribution with this name is registered. */
    bool hasDistribution(const std::string &name) const;

    /** Dump all stats, one per line, "name value" sorted by name. */
    void dump(std::ostream &os) const;

    /** Dump as CSV with a header row. */
    void dumpCsv(std::ostream &os) const;

    /**
     * Dump as a JSON object for structured harness export:
     * {"scalars": {name: value, ...},
     *  "distributions": {name: {"samples": n, "min": lo, "max": hi,
     *                           "mean": m, "bucketWidth": w,
     *                           "buckets": [...]}, ...}}
     * Keys are sorted (map order), so the output is deterministic.
     */
    void dumpJson(std::ostream &os) const;

  private:
    std::map<std::string, const Scalar *> scalars;
    std::map<std::string, const Distribution *> distributions;
};

} // namespace pva

#endif // PVA_SIM_STATS_HH
