/**
 * @file
 * Minimal gem5-flavoured statistics package.
 *
 * Components own Scalar and Distribution stats registered with a StatSet;
 * harnesses dump the set as text or CSV at the end of a run.
 */

#ifndef PVA_SIM_STATS_HH
#define PVA_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace pva
{

/** A named monotonically accumulated counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++count; return *this; }
    Scalar &operator+=(std::uint64_t n) { count += n; return *this; }
    /** Overwrite the value; for gauges copied in at end of run. */
    void set(std::uint64_t v) { count = v; }
    void reset() { count = 0; }

    std::uint64_t value() const { return count; }

  private:
    std::uint64_t count = 0;
};

/** A sampled distribution tracking min/max/mean and a coarse histogram. */
class Distribution
{
  public:
    /** @param bucket_width width of each histogram bucket (>= 1). */
    explicit Distribution(std::uint64_t bucket_width = 1);

    void sample(std::uint64_t value);
    void reset();

    std::uint64_t samples() const { return sampleCount; }
    std::uint64_t minValue() const { return minSeen; }
    std::uint64_t maxValue() const { return maxSeen; }
    double mean() const;

    /** Histogram buckets: bucket i counts values in
     *  [i*width, (i+1)*width). */
    const std::vector<std::uint64_t> &buckets() const { return histogram; }
    std::uint64_t bucketWidth() const { return width; }

  private:
    std::uint64_t width;
    std::uint64_t sampleCount = 0;
    std::uint64_t sum = 0;
    std::uint64_t minSeen = 0;
    std::uint64_t maxSeen = 0;
    std::vector<std::uint64_t> histogram;
};

/**
 * A fixed-bucket log-scale histogram with percentile queries.
 *
 * Values are binned HDR-style: 8 linear sub-buckets per power of two,
 * so relative bucket error is bounded at ~12.5% across the whole
 * 64-bit range while storage stays a fixed 512-slot array. Built for
 * latency samples (cycles), where percentile tails — p99/p999 — are
 * the interesting signal and a linear Distribution either loses the
 * tail or wastes thousands of buckets on it.
 */
class LogHistogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBits linear slots per octave. */
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kBucketCount =
        (64 - kSubBits + 1) << kSubBits;

    void sample(std::uint64_t value);
    void reset();

    /**
     * Allocate the bucket array now instead of on the first sample.
     * Hot-path callers (ServiceStats, per-cycle hooks) preallocate at
     * construction so sample() never allocates mid-run.
     */
    void preallocate();

    /**
     * Fold @p other into this histogram: bucket-wise count addition
     * plus combined min/max/sum/samples. Because buckets are a fixed
     * global partition of the value axis, merging is associative and
     * commutative — any merge tree over the same sample multiset
     * yields identical buckets, so percentile queries after a merge
     * carry the same ~12.5% relative bucket error bound as sampling
     * every value into one histogram directly. This is what lets the
     * fleet layer shard scenario fleets and still report exact
     * aggregate tail latencies (src/fleet/, docs/TRAFFIC.md).
     */
    void merge(const LogHistogram &other);

    std::uint64_t samples() const { return sampleCount; }
    std::uint64_t minValue() const { return minSeen; }
    std::uint64_t maxValue() const { return maxSeen; }
    double mean() const;

    /**
     * The smallest recorded-bucket upper edge v such that at least
     * p percent of the samples are <= v, clamped to [min, max] so
     * percentile(0) == min and percentile(100) == max. @p p in
     * [0, 100]; with no samples, returns 0.
     */
    std::uint64_t percentile(double p) const;

    /** Shorthands for the service-metric quartet. */
    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p95() const { return percentile(95.0); }
    std::uint64_t p99() const { return percentile(99.0); }
    std::uint64_t p999() const { return percentile(99.9); }

    /** Bucket index a value falls in (exposed for tests). */
    static unsigned bucketIndex(std::uint64_t value);

    /** Inclusive lower edge of bucket @p index. */
    static std::uint64_t bucketLowerBound(unsigned index);

    /** Non-empty (lowerBound, count) pairs in ascending value order. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
    nonZeroBuckets() const;

  private:
    std::uint64_t sampleCount = 0;
    std::uint64_t sum = 0;
    std::uint64_t minSeen = 0;
    std::uint64_t maxSeen = 0;
    std::vector<std::uint64_t> counts; ///< Allocated on first sample

};

/**
 * A registry of named statistics belonging to one simulated system.
 *
 * Stats objects are owned by their components; the StatSet stores
 * non-owning pointers plus dotted names (e.g. "pva.bc3.rowHits").
 */
class StatSet
{
  public:
    void addScalar(const std::string &name, const Scalar *stat);
    void addDistribution(const std::string &name, const Distribution *stat);
    void addHistogram(const std::string &name, const LogHistogram *stat);

    /** Look up a scalar's current value; panics if not registered. */
    std::uint64_t scalar(const std::string &name) const;

    /** True iff a scalar with this name is registered. */
    bool hasScalar(const std::string &name) const;

    /** Look up a distribution; panics if not registered. */
    const Distribution &distribution(const std::string &name) const;

    /** True iff a distribution with this name is registered. */
    bool hasDistribution(const std::string &name) const;

    /** Look up a log histogram; panics if not registered. */
    const LogHistogram &histogram(const std::string &name) const;

    /** True iff a log histogram with this name is registered. */
    bool hasHistogram(const std::string &name) const;

    /** Dump all stats, one per line, "name value" sorted by name. */
    void dump(std::ostream &os) const;

    /** Dump as CSV with a header row. */
    void dumpCsv(std::ostream &os) const;

    /**
     * Dump as a JSON object for structured harness export:
     * {"scalars": {name: value, ...},
     *  "distributions": {name: {"samples": n, "min": lo, "max": hi,
     *                           "mean": m, "bucketWidth": w,
     *                           "buckets": [...]}, ...},
     *  "histograms": {name: {"samples": n, "min": lo, "max": hi,
     *                        "mean": m, "p50": v, "p95": v, "p99": v,
     *                        "p999": v}, ...}}
     * Keys are sorted (map order), so the output is deterministic.
     */
    void dumpJson(std::ostream &os) const;

  private:
    std::map<std::string, const Scalar *> scalars;
    std::map<std::string, const Distribution *> distributions;
    std::map<std::string, const LogHistogram *> histograms;
};

} // namespace pva

#endif // PVA_SIM_STATS_HH
