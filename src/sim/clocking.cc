#include "sim/clocking.hh"

namespace pva
{

const char *
clockingModeName(ClockingMode mode)
{
    switch (mode) {
      case ClockingMode::Exhaustive:
        return "exhaustive";
      case ClockingMode::Event:
        return "event";
    }
    return "unknown";
}

bool
parseClockingMode(const std::string &name, ClockingMode &out)
{
    if (name == "exhaustive") {
        out = ClockingMode::Exhaustive;
        return true;
    }
    if (name == "event") {
        out = ClockingMode::Event;
        return true;
    }
    return false;
}

} // namespace pva
