/**
 * @file
 * Structured simulator error reporting.
 *
 * SimError replaces process-terminating fatal()/panic() calls on the
 * paths a sweep harness must survive: a violated SDRAM protocol
 * constraint, a corrupted gather, an unsupportable configuration, or a
 * hung simulation. Each error carries the reporting component's name
 * and the cycle it was detected at, so a SweepReport can attribute a
 * failed grid point without a debugger.
 *
 * panic() remains for invariants that indicate a bug in the simulator
 * itself (e.g. stat-registry misuse); SimError is for conditions the
 * surrounding harness is expected to isolate, report, and retry.
 */

#ifndef PVA_SIM_SIM_ERROR_HH
#define PVA_SIM_SIM_ERROR_HH

#include <stdexcept>
#include <string>

#include "sim/types.hh"

namespace pva
{

/** Broad classification of a recoverable simulator error. */
enum class SimErrorKind
{
    Config,     ///< Unsupportable user configuration or workload
    Protocol,   ///< SDRAM/bus timing or state-machine rule violated
    Corruption, ///< Gathered/scattered data diverges from the shadow model
    Overflow,   ///< Structural resource exceeded (FIFO, transaction ids)
    Watchdog,   ///< Simulation exceeded its cycle or wall-clock budget
};

/** Short lowercase tag for diagnostics ("protocol", "watchdog", ...). */
inline const char *
simErrorKindName(SimErrorKind kind)
{
    switch (kind) {
      case SimErrorKind::Config:
        return "config";
      case SimErrorKind::Protocol:
        return "protocol";
      case SimErrorKind::Corruption:
        return "corruption";
      case SimErrorKind::Overflow:
        return "overflow";
      case SimErrorKind::Watchdog:
        return "watchdog";
    }
    return "?";
}

/** A recoverable simulation error with component and cycle context. */
class SimError : public std::runtime_error
{
  public:
    /** @param cycle detection cycle, or kNeverCycle when no simulation
     *         clock applies (construction-time configuration errors). */
    SimError(SimErrorKind kind, std::string component, Cycle cycle,
             const std::string &detail)
        : std::runtime_error(format(kind, component, cycle, detail)),
          errorKind(kind), componentName(std::move(component)),
          errorCycle(cycle), detailText(detail)
    {
    }

    SimErrorKind kind() const { return errorKind; }
    const std::string &component() const { return componentName; }
    Cycle cycle() const { return errorCycle; }
    const std::string &detail() const { return detailText; }

  private:
    static std::string
    format(SimErrorKind kind, const std::string &component, Cycle cycle,
           const std::string &detail)
    {
        std::string msg = "[";
        msg += simErrorKindName(kind);
        msg += "] ";
        msg += component;
        if (cycle != kNeverCycle) {
            msg += " @ cycle ";
            msg += std::to_string(cycle);
        }
        msg += ": ";
        msg += detail;
        return msg;
    }

    SimErrorKind errorKind;
    std::string componentName;
    Cycle errorCycle;
    std::string detailText;
};

} // namespace pva

#endif // PVA_SIM_SIM_ERROR_HH
