/**
 * @file
 * Fundamental scalar types shared across the PVA simulator.
 */

#ifndef PVA_SIM_TYPES_HH
#define PVA_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace pva
{

/** A simulation cycle count (the 100 MHz memory clock of the paper). */
using Cycle = std::uint64_t;

/** A byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** A word address: byte address divided by the 4-byte word size. */
using WordAddr = std::uint64_t;

/** The 32-bit machine word the prototype memory system transfers. */
using Word = std::uint32_t;

/** Sentinel for "no cycle" / "never". */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Number of bytes in a machine word (the paper uses 4-byte elements). */
inline constexpr unsigned kWordBytes = 4;

/** Returns true iff @p x is a power of two (x > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
log2Exact(std::uint64_t x)
{
    unsigned n = 0;
    while (x > 1) {
        x >>= 1;
        ++n;
    }
    return n;
}

/** Count of trailing zero bits; the "s" of the paper's S = sigma * 2^s. */
constexpr unsigned
trailingZeros(std::uint64_t x)
{
    unsigned n = 0;
    while (x != 0 && (x & 1) == 0) {
        x >>= 1;
        ++n;
    }
    return n;
}

} // namespace pva

#endif // PVA_SIM_TYPES_HH
