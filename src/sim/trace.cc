#include "sim/trace.hh"

#if PVA_TRACE_ENABLED

#include <algorithm>
#include <numeric>
#include <ostream>

namespace pva::trace
{

namespace
{

std::atomic<TraceSession *> currentSession{nullptr};

/** Escape a registry string for JSON (names in events are literals). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                os << ' ';
            else
                os << c;
        }
    }
    os << '"';
}

} // anonymous namespace

TraceSession *
session()
{
    return currentSession.load(std::memory_order_acquire);
}

void
setSession(TraceSession *s)
{
    currentSession.store(s, std::memory_order_release);
}

bool
globMatch(const char *pattern, const char *text)
{
    // Iterative glob with single-star backtracking.
    const char *star = nullptr;
    const char *resume = nullptr;
    while (*text) {
        if (*pattern == '*') {
            star = pattern++;
            resume = text;
        } else if (*pattern == '?' || *pattern == *text) {
            ++pattern;
            ++text;
        } else if (star) {
            pattern = star + 1;
            text = ++resume;
        } else {
            return false;
        }
    }
    while (*pattern == '*')
        ++pattern;
    return *pattern == '\0';
}

TraceSession::TraceSession(TraceConfig config) : cfg(std::move(config))
{
    // Pre-reserve the whole buffer so record() never allocates.
    if (cfg.bufferCapacity == 0)
        cfg.bufferCapacity = 1;
    buffer.resize(cfg.bufferCapacity);
    profPeriod = cfg.profilePeriod;
}

void
TraceSession::profileSample(std::uint32_t track, const char *name)
{
    std::lock_guard<std::mutex> lock(profileMutex);
    ++profileCounts[{track, name}];
}

std::uint64_t
TraceSession::profileSamples() const
{
    if (profPeriod == 0)
        return 0;
    std::uint64_t clock = profClock.load(std::memory_order_relaxed);
    return (clock + profPeriod - 1) / profPeriod;
}

std::vector<ProfileEntry>
TraceSession::profileReport() const
{
    std::vector<ProfileEntry> report;
    {
        std::lock_guard<std::mutex> prof_lock(profileMutex);
        std::lock_guard<std::mutex> reg_lock(registryMutex);
        report.reserve(profileCounts.size());
        for (const auto &[key, samples] : profileCounts) {
            ProfileEntry e;
            std::uint32_t track = key.first;
            if (track >= 1 && track <= tracks.size()) {
                e.process = tracks[track - 1].process;
                e.track = tracks[track - 1].track;
            }
            e.name = key.second;
            e.samples = samples;
            e.estimatedEvents = samples * profPeriod;
            report.push_back(std::move(e));
        }
    }
    std::stable_sort(report.begin(), report.end(),
                     [](const ProfileEntry &a, const ProfileEntry &b) {
                         return a.samples > b.samples;
                     });
    return report;
}

std::uint32_t
TraceSession::registerTrack(const std::string &process,
                            const std::string &track)
{
    std::lock_guard<std::mutex> lock(registryMutex);
    for (std::size_t i = 0; i < tracks.size(); ++i) {
        if (tracks[i].process == process && tracks[i].track == track)
            return static_cast<std::uint32_t>(i + 1);
    }
    if (!cfg.filter.empty()) {
        // Comma-separated globs, matched against "track" and
        // "process/track"; no match disables the track (id 0).
        std::string qualified = process + "/" + track;
        bool matched = false;
        std::size_t begin = 0;
        while (begin <= cfg.filter.size() && !matched) {
            std::size_t end = cfg.filter.find(',', begin);
            if (end == std::string::npos)
                end = cfg.filter.size();
            std::string pat = cfg.filter.substr(begin, end - begin);
            if (!pat.empty() &&
                (globMatch(pat.c_str(), track.c_str()) ||
                 globMatch(pat.c_str(), qualified.c_str())))
                matched = true;
            begin = end + 1;
        }
        if (!matched)
            return 0;
    }
    std::uint32_t pid = 0;
    for (std::size_t i = 0; i < processes.size(); ++i) {
        if (processes[i] == process)
            pid = static_cast<std::uint32_t>(i + 1);
    }
    if (pid == 0) {
        processes.push_back(process);
        pid = static_cast<std::uint32_t>(processes.size());
    }
    tracks.push_back(TrackMeta{process, track, pid});
    return static_cast<std::uint32_t>(tracks.size());
}

std::uint64_t
TraceSession::recorded() const
{
    std::uint64_t h = head.load(std::memory_order_relaxed);
    return std::min<std::uint64_t>(h, buffer.size());
}

std::uint64_t
TraceSession::dropped() const
{
    std::uint64_t h = head.load(std::memory_order_relaxed);
    return h > buffer.size() ? h - buffer.size() : 0;
}

std::size_t
TraceSession::trackCount() const
{
    std::lock_guard<std::mutex> lock(registryMutex);
    return tracks.size();
}

std::vector<Event>
TraceSession::snapshot() const
{
    return std::vector<Event>(buffer.begin(),
                              buffer.begin() + recorded());
}

void
TraceSession::exportChromeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(registryMutex);
    const std::size_t n = static_cast<std::size_t>(recorded());

    // Stable sort by timestamp: Perfetto wants non-decreasing ts, and
    // record order breaks ties so B precedes E within one cycle.
    std::vector<std::uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return buffer[a].ts < buffer[b].ts;
                     });

    os << "{\n\"traceEvents\": [";
    bool first = true;
    auto sep = [&]() {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    // Metadata: names for every process and enabled track.
    for (std::size_t p = 0; p < processes.size(); ++p) {
        sep();
        os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
           << (p + 1) << ", \"tid\": 0, \"args\": {\"name\": ";
        writeJsonString(os, processes[p]);
        os << "}}";
    }
    for (std::size_t t = 0; t < tracks.size(); ++t) {
        sep();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
           << tracks[t].pid << ", \"tid\": " << (t + 1)
           << ", \"args\": {\"name\": ";
        writeJsonString(os, tracks[t].track);
        os << "}}";
    }

    for (std::uint32_t idx : order) {
        const Event &e = buffer[idx];
        if (e.track == 0 || e.track > tracks.size())
            continue; // defensive: never emit an unmapped tid
        const TrackMeta &meta = tracks[e.track - 1];
        sep();
        os << "{\"name\": \"" << (e.name ? e.name : "?")
           << "\", \"ph\": \"" << static_cast<char>(e.phase)
           << "\", \"ts\": " << e.ts << ", \"pid\": " << meta.pid
           << ", \"tid\": " << e.track;
        if (e.phase == Phase::Instant)
            os << ", \"s\": \"t\"";
        if (e.key1 || e.key2) {
            os << ", \"args\": {";
            if (e.key1)
                os << "\"" << e.key1 << "\": " << e.val1;
            if (e.key2)
                os << (e.key1 ? ", " : "") << "\"" << e.key2
                   << "\": " << e.val2;
            os << "}";
        }
        os << "}";
    }

    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"pvaTrace\": "
       << "{\"schemaVersion\": 1, \"recorded\": " << recorded()
       << ", \"dropped\": " << dropped()
       << ", \"tracks\": " << tracks.size() << "}\n}\n";
}

} // namespace pva::trace

#endif // PVA_TRACE_ENABLED
