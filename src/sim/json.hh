/**
 * @file
 * A minimal JSON reader for the durability layer.
 *
 * The checkpoint journal (kernels/sweep_journal.hh) and the repro
 * capsules (kernels/repro_capsule.hh) persist simulator state as JSON
 * and must read it back without any external dependency, so this file
 * provides the small recursive-descent parser they share. It parses
 * the full JSON grammar into a Value tree; numbers keep their source
 * text so 64-bit integers (seeds, fingerprints, cycle counts) round
 * trip exactly instead of passing through a double.
 *
 * This is a reader for trusted, tool-generated input with clear
 * diagnostics on corruption — not a general-purpose JSON library. The
 * writers stay hand-rolled ostream code as everywhere else in the
 * repo (deterministic byte-for-byte output is part of their contract).
 */

#ifndef PVA_SIM_JSON_HH
#define PVA_SIM_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pva::json
{

/** One parsed JSON value (a tree; object keys keep source order). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** @name Typed access (meaningful only for the matching kind) @{ */
    bool boolean() const { return boolValue; }
    /** The number's source text, e.g. "50000000" or "1e-3". */
    const std::string &numberText() const { return text; }
    const std::string &string() const { return text; }
    const std::vector<Value> &array() const { return elements; }
    const std::vector<std::pair<std::string, Value>> &object() const
    {
        return members;
    }
    /** @} */

    /** Object member lookup; nullptr when absent (or not an object). */
    const Value *find(const std::string &key) const;

    /** @name Number conversions
     * Valid only for Kind::Number (asU64 additionally requires a
     * non-negative integer literal); @p ok is cleared on failure and
     * left untouched on success, so one flag can guard a whole
     * extraction sequence. @{ */
    std::uint64_t asU64(bool &ok) const;
    double asDouble(bool &ok) const;
    /** @} */

  private:
    friend class Parser;

    Kind valueKind = Kind::Null;
    bool boolValue = false;
    std::string text; ///< Number source text or string payload
    std::vector<Value> elements;
    std::vector<std::pair<std::string, Value>> members;
};

/**
 * Parse @p input as one JSON document. Trailing non-whitespace after
 * the document, like any grammar violation, fails the parse.
 *
 * @return true on success (@p out holds the document); false with a
 *         one-line position-annotated message in @p error otherwise.
 */
bool parse(const std::string &input, Value &out, std::string &error);

/** Escape @p s for embedding inside a JSON string literal (quotes not
 *  included). The writer-side counterpart of parse(). */
std::string escape(const std::string &s);

} // namespace pva::json

#endif // PVA_SIM_JSON_HH
