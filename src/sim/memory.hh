/**
 * @file
 * Sparse word-addressed backing store for the simulated physical memory.
 *
 * The Micron-class devices we model hold 2^28+ words per bank; tests and
 * kernels touch only a sliver of that, so the store is a page-granular
 * hash map. Unwritten words read as a deterministic address-derived
 * pattern, which lets functional tests detect gather/scatter errors
 * without initialising whole arrays.
 */

#ifndef PVA_SIM_MEMORY_HH
#define PVA_SIM_MEMORY_HH

#include <array>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace pva
{

/** Sparse simulated memory, addressed in 32-bit words. */
class SparseMemory
{
  public:
    /** Read the word at @p addr (word address). */
    Word read(WordAddr addr) const;

    /** Write the word at @p addr (word address). */
    void write(WordAddr addr, Word value);

    /** The background pattern an unwritten word reads as. */
    static Word
    backgroundPattern(WordAddr addr)
    {
        // Cheap integer hash so distinct addresses yield distinct data.
        std::uint64_t z = addr + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        return static_cast<Word>(z ^ (z >> 27));
    }

    /** Number of resident backing pages (for tests). */
    std::size_t residentPages() const { return pages.size(); }

  private:
    static constexpr unsigned kPageWords = 1024;

    struct Page
    {
        std::array<Word, kPageWords> data;
        std::array<bool, kPageWords> written;
    };

    std::unordered_map<WordAddr, std::unique_ptr<Page>> pages;
};

} // namespace pva

#endif // PVA_SIM_MEMORY_HH
