#include "kernels/sweep_executor.hh"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace pva
{

SweepExecutor::SweepExecutor(unsigned jobs) : workerCount(jobs)
{
    if (workerCount == 0) {
        workerCount = std::thread::hardware_concurrency();
        if (workerCount == 0)
            workerCount = 1;
    }
    statSet.addScalar("sweep.points", &statPoints);
    statSet.addScalar("sweep.simCycles", &statSimCycles);
    statSet.addScalar("sweep.mismatches", &statMismatches);
    statSet.addDistribution("sweep.pointMillis", &statPointMillis);
}

std::vector<SweepPoint>
SweepExecutor::run(const std::vector<SweepRequest> &grid)
{
    std::vector<SweepPoint> results(grid.size());
    std::atomic<std::size_t> next{0};
    std::mutex lock;
    std::size_t done = 0;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= grid.size())
                return;
            auto t0 = std::chrono::steady_clock::now();
            SweepPoint p = runPoint(grid[i]);
            double millis =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            results[i] = p;

            std::lock_guard<std::mutex> guard(lock);
            ++statPoints;
            statSimCycles += p.cycles;
            statMismatches += p.mismatches;
            statPointMillis.sample(
                static_cast<std::uint64_t>(millis));
            ++done;
            if (progress)
                progress({done, grid.size(), p, millis});
        }
    };

    std::size_t n = std::min<std::size_t>(workerCount, grid.size());
    if (n <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return results;
}

std::vector<SweepRequest>
SweepExecutor::chapter6Grid(std::uint32_t elements,
                            const SystemConfig &config)
{
    std::vector<SweepRequest> grid;
    grid.reserve(allSystems().size() * allKernels().size() *
                 paperStrides().size() * alignmentPresets().size());
    for (SystemKind sys : allSystems()) {
        for (KernelId k : allKernels()) {
            for (std::uint32_t s : paperStrides()) {
                for (unsigned a = 0; a < alignmentPresets().size();
                     ++a) {
                    SweepRequest req;
                    req.system = sys;
                    req.kernel = k;
                    req.stride = s;
                    req.alignment = a;
                    req.elements = elements;
                    req.config = config;
                    grid.push_back(req);
                }
            }
        }
    }
    return grid;
}

void
writeCsvHeader(std::ostream &os)
{
    os << "system,kernel,stride,alignment,cycles,mismatches\n";
}

void
writeCsvRow(std::ostream &os, const SweepPoint &point)
{
    os << systemName(point.system) << ','
       << kernelSpec(point.kernel).name << ',' << point.stride << ','
       << alignmentPresets()[point.alignment].name << ',' << point.cycles
       << ',' << point.mismatches << '\n';
}

void
writeCsv(std::ostream &os, const std::vector<SweepPoint> &points)
{
    writeCsvHeader(os);
    for (const SweepPoint &p : points)
        writeCsvRow(os, p);
}

} // namespace pva
